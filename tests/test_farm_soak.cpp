// Farm-level supervised soak (ctest -L soak; DESIGN §14).
//
// Four seeds, three chaos classes per seed — a task-hang fault storm, a
// payload-corruption fault storm (both through the PR-4 injector against
// per-shell watchdogs) and a host-side worker hang — all running at once
// on a multi-worker supervised farm with retries armed. For every job the
// unarmed 1-worker run is the oracle: whatever the storm does (latch a
// fault, stall, complete dirty), the supervised, retried, possibly
// worker-hopping run must reproduce it bit for bit in every simulated
// field, per attempt. And the quarantine ledger must end exactly empty:
// hang-once jobs recover, storms are simulation-side, so any entry is a
// leak. Timing margins are generous on purpose — this file also runs on
// the ThreadSanitizer CI leg, where a heartbeat slice costs ~10x.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eclipse/farm/farm.hpp"
#include "eclipse/sim/fault.hpp"
#include "eclipse/sim/prng.hpp"

#include "decode_pin.hpp"

using namespace eclipse;
using farm::Job;
using farm::JobError;
using farm::JobResult;
using farm::JobStatus;

namespace {

/// Simulated fields under the determinism contract.
struct SimFields {
  sim::Cycle cycles;
  std::uint64_t events, macroblocks;
  bool bit_exact;
  std::uint64_t faults, stalls;
  bool operator==(const SimFields&) const = default;
};

SimFields fieldsOf(const JobResult& r) {
  return {r.sim_cycles, r.sim_events,     r.macroblocks,
          r.bit_exact,  r.faults_latched, r.stalls_latched};
}

Job stormJob(std::uint64_t seed, sim::FaultKind kind) {
  // The test_fuzz seeding idiom: every spec field is derived from the
  // (seed, kind) Prng stream, so a seed list reproduces the same storms.
  sim::Prng rng(seed * 977 + static_cast<std::uint64_t>(kind));
  sim::FaultSpec spec;
  spec.kind = kind;
  spec.at_cycle = 2'000 + rng.below(60'000);
  if (kind == sim::FaultKind::TaskHang) {
    spec.shell = static_cast<std::uint32_t>(rng.below(4));
    spec.task = 0;
    spec.delay_cycles = 10'000 + rng.below(100'000);
  } else {  // CorruptPayload at the VLD coefficient output
    spec.shell = 0;
    spec.task = 0;
    spec.port = 0;
    spec.xor_mask = static_cast<std::uint8_t>(1 + rng.below(255));
  }
  Job j;
  j.name = "storm-" + std::string(sim::faultKindName(kind)) + "-s" + std::to_string(seed);
  j.faults.seed = seed;
  j.faults.faults.push_back(spec);
  j.watchdog_timeout = 20'000;
  j.max_cycles = 800'000;
  return j;
}

Job hangOnceJob(std::uint64_t seed) {
  Job j;
  j.name = "hang-once-s" + std::to_string(seed);
  j.chaos.hang_ms = 5'000.0;
  j.chaos.attempts = 1;
  j.supervise_ms = 2'000.0;
  return j;
}

TEST(FarmSoak, SeededChaosRetriesAreDeterministicAndNothingLeaks) {
  const std::uint64_t seeds[] = {11, 23, 47, 91};
  std::vector<Job> armed;
  for (std::uint64_t seed : seeds) {
    armed.push_back(stormJob(seed, sim::FaultKind::TaskHang));
    armed.push_back(stormJob(seed, sim::FaultKind::CorruptPayload));
    armed.push_back(hangOnceJob(seed));
  }

  // Oracle pass: every job unarmed (no retries, no supervision, no hang)
  // on a single worker — the clean-first-run reference.
  auto cache = std::make_shared<farm::WorkloadCache>();
  std::vector<SimFields> oracle;
  {
    farm::FarmOptions opts;
    opts.workers = 1;
    opts.queue_capacity = armed.size() + 1;
    opts.cache = cache;
    farm::Farm f(opts);
    std::vector<Job> jobs;
    for (const Job& j : armed) {
      Job o = j;
      o.retry = farm::RetryPolicy{};
      o.supervise_ms = 0.0;
      o.chaos = farm::HostHangSpec{};
      jobs.push_back(std::move(o));
    }
    auto futs = f.submitBatch(std::move(jobs));
    for (auto& fut : futs) oracle.push_back(fieldsOf(fut.get()));
    EXPECT_EQ(f.metrics().supervisedJobs(), 0u);
  }

  // Chaos pass: everything armed, all classes interleaved across workers.
  farm::FarmOptions opts;
  opts.workers = 4;
  opts.queue_capacity = armed.size() + 8;
  opts.cache = cache;
  farm::Farm f(opts);
  for (Job& j : armed) {
    j.retry.max_attempts = 3;
    j.retry.backoff_ms = 0.5;
    if (j.supervise_ms == 0.0) j.supervise_ms = 2'000.0;
  }
  const std::size_t hang_stride = 3;  // every third job is the hang class
  auto futs = f.submitBatch(std::move(armed));
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const JobResult r = futs[i].get();
    EXPECT_NE(r.status, JobStatus::Quarantined) << r.name;
    if (i % hang_stride == hang_stride - 1) {
      // Hang-once: attempt 1 dies with its worker, the retry completes on
      // the pin — the hang is host-side noise, invisible to the sim.
      EXPECT_EQ(r.status, JobStatus::Completed) << r.name << ": " << r.error;
      EXPECT_GE(r.attempts, 2) << r.name;
      EXPECT_EQ(r.sim_cycles, pin::kDecodePinCycles) << r.name;
      EXPECT_EQ(r.sim_events, pin::kDecodePinEvents) << r.name;
      EXPECT_TRUE(r.bit_exact) << r.name;
    } else {
      EXPECT_EQ(fieldsOf(r) == oracle[i], true) << r.name;
    }
    // Per-attempt determinism: every prior attempt that actually ran the
    // simulation carries the terminal attempt's simulated fields.
    if (r.cause != JobError::WorkerLost) {
      for (const farm::AttemptRecord& a : r.attempts_log) {
        if (a.cause == JobError::WorkerLost) continue;
        EXPECT_EQ(a.sim_cycles, r.sim_cycles) << r.name << " attempt " << a.attempt;
        EXPECT_EQ(a.sim_events, r.sim_events) << r.name << " attempt " << a.attempt;
      }
    }
  }

  // No quarantine leaks: nothing here hangs twice, so the ledger must be
  // empty and the counters consistent.
  EXPECT_TRUE(f.quarantined().empty());
  const farm::FarmMetrics m = f.metrics();
  EXPECT_EQ(m.quarantined, 0u);
  EXPECT_EQ(m.completed + m.failed, m.accepted);
  EXPECT_GE(m.worker_lost, 4u);        // one per hang-once job
  EXPECT_GE(m.workers_replaced, 4u);
  EXPECT_EQ(f.workerCount(), 4);       // the pool recovered to strength
}

}  // namespace
