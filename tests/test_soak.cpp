// Negative-path shell coverage and a long-stream soak of the full system.

#include <gtest/gtest.h>

#include "shell_fixture.hpp"
#include "eclipse/eclipse.hpp"

namespace {

using namespace eclipse;
using eclipse::test::TwoShellFixture;
using shell::Shell;
using sim::Task;

class ShellNegative : public TwoShellFixture {};

Task<void> unknownPortRejected(Shell& prod) {
  EXPECT_THROW((void)co_await prod.getSpace(0, 7, 16), std::out_of_range);
  EXPECT_THROW((void)co_await prod.getSpace(3, 0, 16), std::out_of_range);
  std::uint8_t buf[4] = {};
  EXPECT_THROW(co_await prod.write(0, 7, 0, buf), std::out_of_range);
  EXPECT_THROW(co_await prod.putSpace(5, 5, 4), std::out_of_range);
}

TEST_F(ShellNegative, UnknownTaskOrPortThrows) {
  connect(256);
  run(unknownPortRejected(*prod));
}

Task<void> sharedAccessPoint(Shell& cons) {
  // The paper makes the coprocessor responsible for serializing requests
  // from its task ports: an access point is single-threaded state. Two
  // unserialized consumers both get the same 32-byte grant (GetSpace is a
  // query, not a reservation), so the second commit exceeds the remaining
  // window — which the shell must detect rather than corrupt the stream.
  co_await cons.waitSpace(0, 0, 32);              // the packet arrived
  EXPECT_TRUE(co_await cons.getSpace(0, 0, 32));  // same grant, not doubled
  std::uint8_t buf[32];
  co_await cons.read(0, 0, 0, buf);
  co_await cons.putSpace(0, 0, 32);
  EXPECT_THROW(co_await cons.putSpace(0, 0, 32), std::logic_error);
}

Task<void> oneBurst(Shell& prod) {
  std::uint8_t buf[32] = {};
  co_await prod.waitSpace(0, 0, 32);
  co_await prod.write(0, 0, 0, buf);
  co_await prod.putSpace(0, 0, 32);
}

TEST_F(ShellNegative, UnserializedAccessPointUseIsDetected) {
  connect(256);
  sim->spawn(oneBurst(*prod), "p");
  run(sharedAccessPoint(*cons));
}

TEST(Soak, LongStreamDecodeStaysBitExact) {
  // Several GOPs (36 frames) through the timed pipeline: exercises frame
  // store rotation across many reference generations, scheduler budgets
  // over a long horizon, and 64-bit stream position arithmetic.
  media::VideoGenParams vp;
  vp.width = 64;
  vp.height = 48;
  vp.frames = 36;
  vp.seed = 99;
  vp.scene_cut_period = 13;  // scene changes misaligned with the GOP
  const auto frames = media::generateVideo(vp);
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.gop = media::GopStructure{9, 3};
  media::Encoder enc(cp);
  const auto bits = enc.encode(frames);

  app::EclipseInstance inst;
  app::DecodeApp dec(inst, bits);
  const auto end = inst.run(8'000'000'000ULL);
  ASSERT_TRUE(dec.done()) << end;
  const auto out = dec.frames();
  ASSERT_EQ(out.size(), 36u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], enc.reconstructed()[i]) << "frame " << i;
  }
  // Scene cuts must have forced intra macroblocks inside P/B pictures.
  std::uint32_t inter_pic_intra = 0;
  for (const auto& ps : enc.pictureStats()) {
    if (ps.type != media::FrameType::I) inter_pic_intra += ps.intra_mbs;
  }
  EXPECT_GT(inter_pic_intra, 0u);
}

}  // namespace
