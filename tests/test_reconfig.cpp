// Tests for the declarative graph control plane: GraphSpec validation,
// free-list allocator reuse, and runtime reconfiguration through the
// Configurator/AppHandle — pause/resume, drain-to-quiescence, teardown
// with resource reclamation, relaunching a different application on the
// same instance, and a concurrent two-application launch/teardown sweep.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "eclipse/app/audio_app.hpp"
#include "eclipse/app/configurator.hpp"
#include "eclipse/app/decode_app.hpp"
#include "eclipse/app/encode_app.hpp"
#include "eclipse/app/graph_spec.hpp"
#include "eclipse/eclipse.hpp"

#include "decode_pin.hpp"

namespace {

using namespace eclipse;

coproc::SoftCpu::StepHandler nopStep() {
  return [](sim::TaskId, std::uint32_t) -> sim::Task<void> { co_return; };
}

/// Validates `g` against `inst` and expects a GraphSpecError whose message
/// contains `needle`.
void expectInvalid(const app::GraphSpec& g, app::EclipseInstance& inst,
                   const std::string& needle) {
  try {
    g.validate(inst);
    FAIL() << "expected GraphSpecError containing '" << needle << "'";
  } catch (const app::GraphSpecError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

media::VideoGenParams tinyVideo() {
  media::VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 7;
  vp.seed = 5;
  return vp;
}

media::CodecParams tinyCodec() {
  media::CodecParams cp;
  cp.width = 48;
  cp.height = 32;
  cp.gop = media::GopStructure{6, 3};
  return cp;
}

std::vector<std::uint8_t> tinyBitstream() {
  media::Encoder enc(tinyCodec());
  return enc.encode(media::generateVideo(tinyVideo()));
}

// ----------------------------------------------------- GraphSpec validation

TEST(GraphSpecValidation, RejectsEmptyGraph) {
  app::EclipseInstance inst;
  expectInvalid(app::GraphSpec("empty"), inst, "no tasks");
}

TEST(GraphSpecValidation, RejectsDanglingPort) {
  app::EclipseInstance inst;
  app::GraphSpec g("g");
  g.task({.name = "a", .shell = "dct", .software = {}});
  g.stream("s", "a", 0, "ghost", 0, 256);
  expectInvalid(g, inst, "dangling port");
}

TEST(GraphSpecValidation, RejectsDuplicateEndpoint) {
  app::EclipseInstance inst;
  app::GraphSpec g("g");
  g.task({.name = "a", .shell = "dct", .software = {}})
      .task({.name = "b", .shell = "mc", .software = {}})
      .task({.name = "c", .shell = "rlsq", .software = {}});
  g.stream("s1", "a", 1, "b", 0, 256).stream("s2", "a", 1, "c", 0, 256);
  expectInvalid(g, inst, "bound to more than one stream endpoint");

  // Direction-agnostic: reusing a consumer port as a producer port is just
  // as invalid — the shell's stream-table lookup ignores direction.
  app::GraphSpec g2("g2");
  g2.task({.name = "a", .shell = "dct", .software = {}})
      .task({.name = "b", .shell = "mc", .software = {}});
  g2.stream("s1", "a", 1, "b", 0, 256).stream("s2", "b", 0, "a", 2, 256);
  expectInvalid(g2, inst, "bound to more than one stream endpoint");
}

TEST(GraphSpecValidation, RejectsUnknownShell) {
  app::EclipseInstance inst;
  app::GraphSpec g("g");
  g.task({.name = "a", .shell = "quantum-fpu", .software = {}});
  expectInvalid(g, inst, "unknown shell");
}

TEST(GraphSpecValidation, RejectsSoftwareMismatch) {
  app::EclipseInstance inst;
  app::GraphSpec hw_with_sw("g");
  hw_with_sw.task({.name = "a", .shell = "dct", .software = nopStep()});
  expectInvalid(hw_with_sw, inst, "binds a software step to hardware shell");

  app::GraphSpec sw_without("g");
  sw_without.task({.name = "a", .shell = "dsp-cpu", .software = {}});
  expectInvalid(sw_without, inst, "no software step handler");
}

TEST(GraphSpecValidation, RejectsTaskSlotExhaustion) {
  app::InstanceParams ip;
  ip.max_tasks = 2;
  app::EclipseInstance inst(ip);
  app::GraphSpec g("g");
  g.task({.name = "a", .shell = "dct", .software = {}})
      .task({.name = "b", .shell = "dct", .software = {}})
      .task({.name = "c", .shell = "dct", .software = {}});
  expectInvalid(g, inst, "free task slots");
}

TEST(GraphSpecValidation, RejectsStreamRowExhaustion) {
  app::InstanceParams ip;
  ip.max_streams = 3;
  app::EclipseInstance inst(ip);
  // Two streams between DCT tasks need four rows on the DCT shell.
  app::GraphSpec g("g");
  g.task({.name = "a", .shell = "dct", .software = {}})
      .task({.name = "b", .shell = "dct", .software = {}});
  g.stream("s1", "a", 0, "b", 0, 256).stream("s2", "b", 1, "a", 1, 256);
  expectInvalid(g, inst, "free stream rows");
}

TEST(GraphSpecValidation, RejectsUndersizedBuffer) {
  app::EclipseInstance inst;
  app::GraphSpec g("g");
  g.task({.name = "a", .shell = "dct", .software = {}})
      .task({.name = "b", .shell = "mc", .software = {}});
  g.stream("s", "a", 0, "b", 0, 100);  // not a cache-line multiple
  expectInvalid(g, inst, "cache line");

  app::GraphSpec g0("g");
  g0.task({.name = "a", .shell = "dct", .software = {}})
      .task({.name = "b", .shell = "mc", .software = {}});
  g0.stream("s", "a", 0, "b", 0, 0);
  expectInvalid(g0, inst, "cache line");
}

TEST(GraphSpecValidation, RejectsSramExhaustion) {
  app::InstanceParams ip;
  ip.sram.size_bytes = 1024;
  app::EclipseInstance inst(ip);
  app::GraphSpec g("g");
  g.task({.name = "a", .shell = "dct", .software = {}})
      .task({.name = "b", .shell = "mc", .software = {}});
  g.stream("s", "a", 0, "b", 0, 4096);
  expectInvalid(g, inst, "bytes of SRAM");
}

// ------------------------------------------------------ free-list allocators

TEST(FreeList, SramReusesFreedHolesFirstFit) {
  app::EclipseInstance inst;
  const std::size_t free0 = inst.sramBytesFree();
  const auto a = inst.allocSram(128);
  const auto b = inst.allocSram(256);
  const auto c = inst.allocSram(128);
  inst.freeSram(b, 256);
  // First fit: the freed hole between a and c is reused.
  EXPECT_EQ(inst.allocSram(64), b);
  inst.freeSram(b, 64);
  inst.freeSram(a, 128);
  inst.freeSram(c, 128);
  // Full coalescing: everything merges back into one region.
  EXPECT_EQ(inst.sramBytesFree(), free0);
  const auto whole = inst.allocSram(static_cast<std::uint32_t>(free0));
  EXPECT_EQ(whole, a);
  inst.freeSram(whole, static_cast<std::uint32_t>(free0));
}

TEST(FreeList, DoubleFreeAndOverlapThrow) {
  app::EclipseInstance inst;
  const auto a = inst.allocSram(128);
  inst.freeSram(a, 128);
  EXPECT_THROW(inst.freeSram(a, 128), std::logic_error);
  const auto b = inst.allocDram(256);
  inst.freeDram(b, 256);
  EXPECT_THROW(inst.freeDram(b, 256), std::logic_error);
}

TEST(FreeList, DramRoundTripRestoresFreeBytes) {
  app::EclipseInstance inst;
  const std::size_t free0 = inst.dramBytesFree();
  const auto a = inst.allocDram(1000);  // rounded up internally
  const auto b = inst.allocDram(64);
  inst.freeDram(a, 1000);
  inst.freeDram(b, 64);
  EXPECT_EQ(inst.dramBytesFree(), free0);
}

// ------------------------------------------------- runtime reconfiguration

TEST(Reconfig, DecodeTimingViaGraphSpecStaysPinned) {
  // The control-plane acceptance pin: building the decode graph through
  // GraphSpec + Configurator MMIO writes must be cycle-identical to the
  // historical direct-wiring path.
  media::VideoGenParams vp;
  vp.width = 96;
  vp.height = 80;
  vp.frames = 5;
  vp.seed = 3;
  vp.detail = 8;
  vp.noise_level = 0.0;
  vp.motion_speed = 4;
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.qscale = 14;
  cp.gop = {9, 3};
  media::Encoder enc(cp);
  const auto bitstream = enc.encode(media::generateVideo(vp));

  app::EclipseInstance inst;
  app::DecodeApp dec(inst, bitstream);
  const sim::Cycle cycles = inst.run();
  ASSERT_TRUE(dec.done());
  EXPECT_EQ(cycles, pin::kDecodePinCycles);
  EXPECT_EQ(inst.simulator().eventsDispatched(), pin::kDecodePinEvents);
}

TEST(Reconfig, PauseFreezesProgressAndResumeCompletes) {
  app::EclipseInstance inst;
  app::DecodeApp dec(inst, tinyBitstream());
  inst.run(20'000);
  ASSERT_FALSE(dec.done());
  const auto mb_before = dec.macroblocksDecoded();

  dec.handle().pause();
  EXPECT_TRUE(dec.handle().paused());
  for (const auto& t : dec.handle().tasks()) {
    EXPECT_FALSE(t.shell->tasks().row(t.id).enabled) << t.spec.name;
  }
  inst.run(120'000);
  EXPECT_EQ(dec.macroblocksDecoded(), mb_before);  // nothing moved
  EXPECT_FALSE(dec.done());

  dec.handle().resume();
  EXPECT_FALSE(dec.handle().paused());
  inst.run();
  EXPECT_TRUE(dec.done());
  media::Encoder ref(tinyCodec());
  (void)ref.encode(media::generateVideo(tinyVideo()));
  const auto frames = dec.frames();
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i], ref.reconstructed()[i]);
  }
}

TEST(Reconfig, DecodeDrainTeardownThenLaunchEncode) {
  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);

  const std::size_t sram0 = inst.sramBytesFree();
  const std::size_t dram0 = inst.dramBytesFree();
  std::vector<std::uint32_t> slots0;
  for (auto* sh : {&inst.vldShell(), &inst.rlsqShell(), &inst.dctShell(), &inst.mcShell(),
                   &inst.cpuShell()}) {
    slots0.push_back(inst.freeTaskSlots(*sh));
  }

  // Launch a decode, stop it mid-stream, drain to quiescence, tear down.
  auto dec = std::make_unique<app::DecodeApp>(inst, tinyBitstream());
  inst.run(30'000);
  ASSERT_FALSE(dec->done());
  EXPECT_TRUE(dec->handle().drain());
  EXPECT_TRUE(dec->handle().quiesced());
  dec->teardown();
  EXPECT_TRUE(dec->handle().tornDown());
  EXPECT_THROW(dec->handle().setTaskEnabled("vld", true), std::logic_error);
  dec->teardown();  // idempotent
  dec.reset();

  // Every resource went back to the instance allocators.
  EXPECT_EQ(inst.sramBytesFree(), sram0);
  EXPECT_EQ(inst.dramBytesFree(), dram0);
  std::size_t i = 0;
  for (auto* sh : {&inst.vldShell(), &inst.rlsqShell(), &inst.dctShell(), &inst.mcShell(),
                   &inst.cpuShell()}) {
    EXPECT_EQ(inst.freeTaskSlots(*sh), slots0[i++]) << sh->name();
  }
  EXPECT_EQ(inst.pendingApps(), 0);

  // The freed slots, rows and SRAM now carry a full encode application.
  const auto video = media::generateVideo(tinyVideo());
  app::EncodeApp enc(inst, video, tinyCodec());
  inst.run();
  ASSERT_TRUE(enc.done());
  media::Decoder check;
  EXPECT_GT(media::averagePsnr(video, check.decode(enc.bitstream())), 28.0);

  enc.handle().teardown();
  EXPECT_EQ(inst.sramBytesFree(), sram0);
  EXPECT_EQ(inst.dramBytesFree(), dram0);
}

TEST(Reconfig, TwoAppConcurrentLaunchTeardownSweep) {
  app::InstanceParams ip;
  ip.sram.size_bytes = 128 * 1024;
  app::EclipseInstance inst(ip);
  const auto bits = tinyBitstream();
  const auto tone = media::audio::encode(media::audio::generateTone(4096, 11));

  const std::size_t sram0 = inst.sramBytesFree();

  for (int iter = 0; iter < 3; ++iter) {
    // Two applications configured and running concurrently.
    auto dec = std::make_unique<app::DecodeApp>(inst, bits);
    auto aud = std::make_unique<app::AudioDecodeApp>(inst, tone);
    const sim::Cycle base = inst.simulator().now();
    inst.run(base + 20'000);

    // Tear the audio application down mid-run; the decode keeps going.
    EXPECT_TRUE(aud->handle().drain());
    aud->teardown();
    aud.reset();
    ASSERT_FALSE(dec->done());

    // Relaunch audio into the freed rows/slots/SRAM, run both to the end.
    auto aud2 = std::make_unique<app::AudioDecodeApp>(inst, tone);
    inst.run();
    ASSERT_TRUE(dec->done());
    ASSERT_TRUE(aud2->done());
    EXPECT_GT(media::audio::snrDb(media::audio::generateTone(4096, 11), aud2->pcm()), 25.0);

    // Alternate teardown order across iterations.
    if (iter % 2 == 0) {
      dec->teardown();
      aud2->teardown();
    } else {
      aud2->teardown();
      dec->teardown();
    }
    dec.reset();
    aud2.reset();
    EXPECT_EQ(inst.sramBytesFree(), sram0) << "iteration " << iter;
    EXPECT_EQ(inst.pendingApps(), 0) << "iteration " << iter;
  }
}

}  // namespace
