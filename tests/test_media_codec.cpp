// Unit + property tests for the codec layer: syntax round trips, coded
// order, packets, encoder/decoder consistency, video generator and metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "eclipse/media/codec.hpp"
#include "eclipse/media/metrics.hpp"
#include "eclipse/media/video_gen.hpp"
#include "eclipse/sim/prng.hpp"

namespace {

using namespace eclipse::media;
using eclipse::sim::Prng;

// ---------------------------------------------------------------- syntax

TEST(Syntax, SeqHeaderRoundTrip) {
  SeqHeader sh;
  sh.width = 320;
  sh.height = 240;
  sh.gop_n = 12;
  sh.gop_m = 3;
  sh.qscale = 13;
  sh.frame_count = 77;
  sh.scan_order = 1;
  sh.use_intra_matrix = 0;
  BitWriter bw;
  stages::writeSeqHeader(bw, sh);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(stages::parseSeqHeader(br), sh);
}

TEST(Syntax, BadMagicRejected) {
  std::vector<std::uint8_t> junk{0x00, 0x01, 0x02, 0x03};
  BitReader br(junk);
  EXPECT_THROW((void)stages::parseSeqHeader(br), BitstreamError);
}

TEST(Syntax, PicHeaderRoundTrip) {
  for (const auto t : {FrameType::I, FrameType::P, FrameType::B}) {
    PicHeader ph;
    ph.type = t;
    ph.temporal_ref = 5;
    ph.qscale = 9;
    BitWriter bw;
    stages::writePicHeader(bw, ph);
    const auto bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(stages::parsePicHeader(br), ph);
  }
}

/// Property sweep: random macroblocks survive write/parse for every mode.
class MbSyntaxRoundTrip : public ::testing::TestWithParam<MbMode> {};

TEST_P(MbSyntaxRoundTrip, Survives) {
  const MbMode mode = GetParam();
  Prng rng(static_cast<std::uint64_t>(mode) + 100);
  for (int trial = 0; trial < 30; ++trial) {
    MbHeader h;
    h.mb_x = 3;
    h.mb_y = 4;
    h.mode = mode;
    h.qscale = 8;
    if (mode == MbMode::Forward || mode == MbMode::Bidirectional) {
      h.mv_fwd = {static_cast<std::int16_t>(rng.range(-32, 32)),
                  static_cast<std::int16_t>(rng.range(-32, 32))};
    }
    if (mode == MbMode::Backward || mode == MbMode::Bidirectional) {
      h.mv_bwd = {static_cast<std::int16_t>(rng.range(-32, 32)),
                  static_cast<std::int16_t>(rng.range(-32, 32))};
    }
    MbCoefs coefs;
    coefs.cbp = 0;
    for (int b = 0; b < kBlocksPerMacroblock; ++b) {
      if (!rng.chance(0.6)) continue;
      coefs.cbp |= static_cast<std::uint8_t>(1u << b);
      const int n = static_cast<int>(rng.below(10)) + 1;
      int run_total = 0;
      for (int k = 0; k < n && run_total < 60; ++k) {
        rle::RunLevel p;
        p.run = static_cast<std::uint8_t>(rng.below(3));
        p.level = static_cast<std::int16_t>(rng.range(1, 100) * (rng.chance(0.5) ? 1 : -1));
        run_total += p.run + 1;
        coefs.blocks[static_cast<std::size_t>(b)].push_back(p);
      }
    }
    h.cbp = coefs.cbp;

    BitWriter bw;
    stages::writeMb(bw, h, coefs);
    const auto bytes = bw.finish();
    BitReader br(bytes);
    const FrameType pic_type = mode == MbMode::Intra ? FrameType::I : FrameType::B;
    const auto parsed = stages::parseMb(br, pic_type, 3, 4, 8);
    EXPECT_EQ(parsed.header.mode, h.mode);
    EXPECT_EQ(parsed.header.mv_fwd, h.mv_fwd);
    EXPECT_EQ(parsed.header.mv_bwd, h.mv_bwd);
    EXPECT_EQ(parsed.header.cbp, h.cbp);
    for (int b = 0; b < kBlocksPerMacroblock; ++b) {
      EXPECT_EQ(parsed.coefs.blocks[static_cast<std::size_t>(b)],
                coefs.blocks[static_cast<std::size_t>(b)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, MbSyntaxRoundTrip,
                         ::testing::Values(MbMode::Intra, MbMode::Forward, MbMode::Backward,
                                           MbMode::Bidirectional));

TEST(Syntax, IFrameRejectsInterMb) {
  MbHeader h;
  h.mode = MbMode::Forward;
  MbCoefs coefs;
  BitWriter bw;
  stages::writeMb(bw, h, coefs);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_THROW((void)stages::parseMb(br, FrameType::I, 0, 0, 8), BitstreamError);
}

TEST(Syntax, PFrameRejectsBackwardMb) {
  MbHeader h;
  h.mode = MbMode::Backward;
  MbCoefs coefs;
  BitWriter bw;
  stages::writeMb(bw, h, coefs);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_THROW((void)stages::parseMb(br, FrameType::P, 0, 0, 8), BitstreamError);
}

// ----------------------------------------------------------------- GOP

TEST(Gop, PatternMatchesTypeAt) {
  const GopStructure g{9, 3};
  EXPECT_EQ(g.pattern(), "IBBPBBPBB");
  EXPECT_EQ(g.typeAt(0), FrameType::I);
  EXPECT_EQ(g.typeAt(3), FrameType::P);
  EXPECT_EQ(g.typeAt(9), FrameType::I);
  EXPECT_EQ(g.typeAt(10), FrameType::B);
}

TEST(Gop, NoBFramesWhenMIs1) {
  const GopStructure g{4, 1};
  EXPECT_EQ(g.pattern(), "IPPP");
}

class CodedOrderProperty : public ::testing::TestWithParam<std::pair<int, GopStructure>> {};

TEST_P(CodedOrderProperty, CoversAllFramesWithValidReferences) {
  const auto [count, gop] = GetParam();
  const auto order = codedOrder(count, gop);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(count));

  std::set<int> seen;
  std::set<int> decoded;
  for (const auto& cp : order) {
    EXPECT_TRUE(seen.insert(cp.display_idx).second) << "duplicate frame";
    // References must already be coded.
    if (cp.fwd_ref_display >= 0) EXPECT_TRUE(decoded.count(cp.fwd_ref_display)) << cp.display_idx;
    if (cp.bwd_ref_display >= 0) EXPECT_TRUE(decoded.count(cp.bwd_ref_display)) << cp.display_idx;
    // B pictures reference both temporal sides.
    if (cp.type == FrameType::B) {
      EXPECT_LT(cp.fwd_ref_display, cp.display_idx);
      EXPECT_GT(cp.bwd_ref_display, cp.display_idx);
    }
    if (cp.type == FrameType::P) EXPECT_GE(cp.fwd_ref_display, -1);
    decoded.insert(cp.display_idx);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(count));
  // The first coded picture is always an I frame.
  EXPECT_EQ(order.front().type, FrameType::I);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodedOrderProperty,
    ::testing::Values(std::pair{1, GopStructure{9, 3}}, std::pair{2, GopStructure{9, 3}},
                      std::pair{7, GopStructure{6, 3}}, std::pair{9, GopStructure{9, 3}},
                      std::pair{20, GopStructure{9, 3}}, std::pair{10, GopStructure{4, 1}},
                      std::pair{13, GopStructure{12, 4}}, std::pair{8, GopStructure{6, 2}}));

// ----------------------------------------------------------- packets

TEST(Packets, MbCoefsRoundTrip) {
  MbCoefs in;
  in.cbp = 0b101001;
  in.intra = 1;
  in.blocks[0] = {rle::RunLevel{0, 5}, rle::RunLevel{2, -7}};
  in.blocks[3] = {rle::RunLevel{63, 1}};
  in.blocks[5] = {};
  ByteWriter w;
  put(w, in);
  auto bytes = w.take();
  ByteReader r(bytes);
  MbCoefs out;
  get(r, out);
  EXPECT_EQ(out.cbp, in.cbp);
  EXPECT_EQ(out.intra, in.intra);
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    EXPECT_EQ(out.blocks[static_cast<std::size_t>(b)], in.blocks[static_cast<std::size_t>(b)]);
  }
  EXPECT_TRUE(r.atEnd());
}

TEST(Packets, MbBlocksAndPixelsRoundTrip) {
  Prng rng(3);
  MbBlocks blocks;
  blocks.cbp = 0x3F;
  blocks.intra = 1;
  for (auto& b : blocks.blocks) {
    for (auto& v : b) v = static_cast<std::int16_t>(rng.range(-1000, 1000));
  }
  ByteWriter w;
  put(w, blocks);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), kMbBlocksBytes);
  ByteReader r(bytes);
  MbBlocks back;
  get(r, back);
  EXPECT_EQ(back.cbp, blocks.cbp);
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    EXPECT_EQ(back.blocks[static_cast<std::size_t>(b)], blocks.blocks[static_cast<std::size_t>(b)]);
  }

  MbPixels px;
  for (auto& v : px.y) v = static_cast<std::uint8_t>(rng.below(256));
  ByteWriter w2;
  put(w2, px);
  auto bytes2 = w2.take();
  EXPECT_EQ(bytes2.size(), kMbPixelsBytes);
  ByteReader r2(bytes2);
  MbPixels back_px;
  get(r2, back_px);
  EXPECT_EQ(back_px, px);
}

TEST(Packets, UnderrunThrows) {
  std::vector<std::uint8_t> tiny{1, 2};
  ByteReader r(tiny);
  MbHeader h;
  EXPECT_THROW(get(r, h), std::runtime_error);
}

// ---------------------------------------------------- pixel plumbing

TEST(Stages, ExtractPlaceRoundTrip) {
  const auto frames = generateVideo(VideoGenParams{});
  const Frame& src = frames[0];
  Frame dst(src.width(), src.height());
  for (int mb_y = 0; mb_y < src.mbHeight(); ++mb_y) {
    for (int mb_x = 0; mb_x < src.mbWidth(); ++mb_x) {
      MbPixels px;
      stages::extractMb(src, mb_x, mb_y, px);
      stages::placeMb(dst, mb_x, mb_y, px);
    }
  }
  EXPECT_EQ(src, dst);
}

TEST(Stages, ResidualAddInverts) {
  Prng rng(7);
  MbPixels cur, pred;
  for (std::size_t i = 0; i < cur.y.size(); ++i) {
    cur.y[i] = static_cast<std::uint8_t>(rng.below(256));
    pred.y[i] = static_cast<std::uint8_t>(rng.below(256));
  }
  for (std::size_t i = 0; i < cur.cb.size(); ++i) {
    cur.cb[i] = static_cast<std::uint8_t>(rng.below(256));
    pred.cb[i] = static_cast<std::uint8_t>(rng.below(256));
    cur.cr[i] = static_cast<std::uint8_t>(rng.below(256));
    pred.cr[i] = static_cast<std::uint8_t>(rng.below(256));
  }
  MbBlocks res;
  stages::residualMb(cur, pred, res);
  MbPixels back;
  stages::addResidualMb(pred, res, back);
  EXPECT_EQ(back, cur);
}

// ------------------------------------------------- encoder / decoder

struct CodecCase {
  int qscale;
  GopStructure gop;
  int frames;
};

class CodecRoundTrip : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecRoundTrip, DecoderMatchesEncoderReconstruction) {
  const auto c = GetParam();
  VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = c.frames;
  vp.seed = static_cast<std::uint64_t>(c.qscale) * 31 + static_cast<std::uint64_t>(c.frames);
  const auto frames = generateVideo(vp);

  CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.qscale = c.qscale;
  cp.gop = c.gop;
  Encoder enc(cp);
  const auto bits = enc.encode(frames);
  Decoder dec;
  const auto out = dec.decode(bits);
  ASSERT_EQ(out.size(), frames.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], enc.reconstructed()[i]) << "frame " << i;
  }
  EXPECT_EQ(dec.seqHeader(), cp.toSeqHeader(c.frames));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTrip,
    ::testing::Values(CodecCase{2, {9, 3}, 9}, CodecCase{8, {9, 3}, 10}, CodecCase{16, {9, 3}, 5},
                      CodecCase{31, {9, 3}, 9}, CodecCase{8, {4, 1}, 8}, CodecCase{8, {6, 2}, 7},
                      CodecCase{8, {12, 4}, 13}, CodecCase{8, {9, 3}, 1},
                      CodecCase{8, {9, 3}, 2}));

TEST(Codec, LowerQscaleGivesHigherPsnr) {
  VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 5;
  const auto frames = generateVideo(vp);
  auto psnrAt = [&](int q) {
    CodecParams cp;
    cp.width = vp.width;
    cp.height = vp.height;
    cp.qscale = q;
    Encoder enc(cp);
    (void)enc.encode(frames);
    return averagePsnr(frames, enc.reconstructed());
  };
  const double fine = psnrAt(2);
  const double coarse = psnrAt(24);
  EXPECT_GT(fine, coarse + 3.0);
}

TEST(Codec, CoarserQscaleGivesSmallerStream) {
  VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 5;
  const auto frames = generateVideo(vp);
  auto sizeAt = [&](int q) {
    CodecParams cp;
    cp.width = vp.width;
    cp.height = vp.height;
    cp.qscale = q;
    Encoder enc(cp);
    return enc.encode(frames).size();
  };
  EXPECT_GT(sizeAt(2), sizeAt(24));
}

TEST(Codec, StatsAreConsistentBetweenEncoderAndDecoder) {
  VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 7;
  const auto frames = generateVideo(vp);
  CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  Encoder enc(cp);
  const auto bits = enc.encode(frames);
  Decoder dec;
  (void)dec.decode(bits);
  ASSERT_EQ(enc.pictureStats().size(), dec.pictureStats().size());
  for (std::size_t i = 0; i < enc.pictureStats().size(); ++i) {
    EXPECT_EQ(enc.pictureStats()[i].type, dec.pictureStats()[i].type);
    EXPECT_EQ(enc.pictureStats()[i].temporal_ref, dec.pictureStats()[i].temporal_ref);
    EXPECT_EQ(enc.pictureStats()[i].coded_blocks, dec.pictureStats()[i].coded_blocks);
    const auto mbs = [&](const PictureStats& s) {
      return s.intra_mbs + s.fwd_mbs + s.bwd_mbs + s.bidi_mbs;
    };
    EXPECT_EQ(mbs(enc.pictureStats()[i]), mbs(dec.pictureStats()[i]));
    EXPECT_EQ(mbs(dec.pictureStats()[i]), 6u);  // 48x32 = 3x2 MBs
  }
}

TEST(Codec, TruncatedStreamThrows) {
  VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 3;
  const auto frames = generateVideo(vp);
  CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  Encoder enc(cp);
  auto bits = enc.encode(frames);
  bits.resize(bits.size() / 3);
  Decoder dec;
  EXPECT_THROW((void)dec.decode(bits), BitstreamError);
}

TEST(Codec, RejectsMismatchedFrameSize) {
  CodecParams cp;
  cp.width = 48;
  cp.height = 32;
  Encoder enc(cp);
  std::vector<Frame> wrong{Frame(64, 64)};
  EXPECT_THROW((void)enc.encode(wrong), std::invalid_argument);
  EXPECT_THROW((void)enc.encode({}), std::invalid_argument);
}

TEST(Codec, AlternateScanAndFlatMatrixWork) {
  VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 4;
  const auto frames = generateVideo(vp);
  CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.scan_order = eclipse::media::scan::Order::Alternate;
  cp.use_intra_matrix = false;
  Encoder enc(cp);
  const auto bits = enc.encode(frames);
  Decoder dec;
  const auto out = dec.decode(bits);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], enc.reconstructed()[i]);
}

// --------------------------------------------------- video generator

TEST(VideoGen, DeterministicPerSeed) {
  VideoGenParams vp;
  vp.frames = 3;
  const auto a = generateVideo(vp);
  const auto b = generateVideo(vp);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(VideoGen, FramesActuallyChangeOverTime) {
  VideoGenParams vp;
  vp.frames = 2;
  const auto v = generateVideo(vp);
  EXPECT_FALSE(v[0] == v[1]);
}

TEST(VideoGen, RandomAccessMatchesSequential) {
  VideoGenParams vp;
  vp.frames = 5;
  const auto seq = generateVideo(vp);
  EXPECT_EQ(generateFrame(vp, 3), seq[3]);
}

TEST(VideoGen, SceneCutCreatesDiscontinuity) {
  VideoGenParams vp;
  vp.frames = 6;
  vp.scene_cut_period = 3;
  vp.noise_level = 0;
  const auto v = generateVideo(vp);
  const double within = psnrLuma(v[1], v[2]);   // same scene
  const double across = psnrLuma(v[2], v[3]);   // scene cut
  EXPECT_GT(within, across);
}

// ----------------------------------------------------------- metrics

TEST(Metrics, IdenticalFramesHaveInfinitePsnr) {
  const auto v = generateVideo(VideoGenParams{});
  EXPECT_TRUE(std::isinf(psnrLuma(v[0], v[0])));
  EXPECT_TRUE(std::isinf(psnr(v[0], v[0])));
}

TEST(Metrics, KnownMse) {
  std::vector<std::uint8_t> a{0, 0, 0, 0};
  std::vector<std::uint8_t> b{2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(mse(a, b), 4.0);
}

TEST(Metrics, MismatchedSizesThrow) {
  Frame a(16, 16), b(32, 32);
  EXPECT_THROW((void)psnrLuma(a, b), std::invalid_argument);
}

}  // namespace
