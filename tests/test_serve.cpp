// eclipse_serve: the network-facing multi-tenant serving tier (DESIGN §15).
//
// The load-bearing properties checked here:
//   * wire fidelity — frames and result blobs decode to exactly what was
//     encoded, and torn streams throw instead of mis-parsing;
//   * served identity — a result that traveled admission -> QoS queue ->
//     farm -> result frame is bit-identical in every simulated field to a
//     direct Farm::submitWait of the same jobspec (the pinned decode lands
//     exactly on the suite-wide pin constants);
//   * QoS — quotas, token buckets and DRR weights shed/pace a misbehaving
//     tenant without starving a compliant one, and deadline slack promotes
//     a waiting job one farm lane (the mirror of retry demotion);
//   * lifecycle — a rolling drain delivers every accepted result and a
//     live reload (tenant quotas + worker resize) drops nothing.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eclipse/farm/farm.hpp"
#include "eclipse/serve/client.hpp"
#include "eclipse/serve/dispatcher.hpp"
#include "eclipse/serve/histogram.hpp"
#include "eclipse/serve/jobspec.hpp"
#include "eclipse/serve/protocol.hpp"
#include "eclipse/serve/server.hpp"
#include "eclipse/serve/tenant.hpp"

#include "decode_pin.hpp"

using namespace eclipse;

namespace {

/// Shared prepared-workload cache: video generation + golden encodes are
/// the dominant cost of these tiny jobs, and the descriptors repeat.
std::shared_ptr<farm::WorkloadCache> sharedCache() {
  static auto cache = std::make_shared<farm::WorkloadCache>();
  return cache;
}

constexpr const char* kTinySpec = "tiny width=32 height=32 frames=1";

serve::ServeOptions baseOptions(int workers = 2) {
  serve::ServeOptions so;
  so.farm.workers = workers;
  so.farm.queue_capacity = 32;
  so.farm.cache = sharedCache();
  return so;
}

}  // namespace

// ---------------------------------------------------------------- wire --

TEST(ServeProtocol, ByteCodecRoundTrips) {
  serve::ByteWriter w;
  w.putU8(7);
  w.putU32(0xdeadbeefu);
  w.putU64(0x0123456789abcdefULL);
  w.putF64(-1234.5625);
  w.putStr("tenant/α");

  serve::ByteReader r(w.bytes());
  EXPECT_EQ(r.getU8(), 7u);
  EXPECT_EQ(r.getU32(), 0xdeadbeefu);
  EXPECT_EQ(r.getU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.getF64(), -1234.5625);
  EXPECT_EQ(r.getStr(), "tenant/α");
  EXPECT_TRUE(r.empty());
}

TEST(ServeProtocol, UnderrunThrowsInsteadOfMisparsing) {
  serve::ByteWriter w;
  w.putU32(42);
  serve::ByteReader r(w.bytes());
  (void)r.getU8();
  (void)r.getU8();
  EXPECT_THROW((void)r.getU64(), serve::ProtocolError);

  // A declared string length past the end of the buffer must also throw.
  serve::ByteWriter w2;
  w2.putU32(1000);  // str length prefix with no payload behind it
  serve::ByteReader r2(w2.bytes());
  EXPECT_THROW((void)r2.getStr(), serve::ProtocolError);
}

TEST(ServeProtocol, ResultBlobRoundTrips) {
  serve::WireResult in;
  in.req_id = 991;
  in.name = "job-x";
  in.tenant = "alice";
  in.status = farm::JobStatus::Completed;
  in.sim_cycles = pin::kDecodePinCycles;
  in.sim_events = pin::kDecodePinEvents;
  in.macroblocks = pin::kDecodePinMacroblocks;
  in.bit_exact = true;
  in.psnr_db = 37.25;
  in.faults_latched = 2;
  in.attempts = 3;
  in.lanes = 4;
  in.wall_ms = 12.5;
  in.latency_ms = 20.25;
  in.queue_ms = 5.75;
  in.serve_ms = 26.0;
  in.promoted = true;
  in.error = "none";

  serve::ByteWriter w;
  serve::encodeResult(w, in);
  serve::ByteReader r(w.bytes());
  const serve::WireResult out = serve::decodeResult(r);

  // req_id travels in the Result frame header, not the blob.
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.sim_cycles, in.sim_cycles);
  EXPECT_EQ(out.sim_events, in.sim_events);
  EXPECT_EQ(out.macroblocks, in.macroblocks);
  EXPECT_EQ(out.bit_exact, in.bit_exact);
  EXPECT_EQ(out.psnr_db, in.psnr_db);
  EXPECT_EQ(out.faults_latched, in.faults_latched);
  EXPECT_EQ(out.attempts, in.attempts);
  EXPECT_EQ(out.lanes, in.lanes);
  EXPECT_EQ(out.wall_ms, in.wall_ms);
  EXPECT_EQ(out.queue_ms, in.queue_ms);
  EXPECT_EQ(out.serve_ms, in.serve_ms);
  EXPECT_EQ(out.promoted, in.promoted);
  EXPECT_EQ(out.error, in.error);
}

// ------------------------------------------------------------- jobspec --

TEST(ServeJobspec, ParsesTheFarmDriverGrammarPlusServeExtensions) {
  serve::ParsedSpec ps;
  std::string err;
  ASSERT_TRUE(serve::parseJobSpec(
      "clip kind=decode+encode width=48 height=32 frames=2 seed=9 qscale=20 "
      "priority=high retries=2 deadline_ms=250 config:sram.size_bytes=65536",
      ps, err))
      << err;
  EXPECT_EQ(ps.job.name, "clip");
  ASSERT_EQ(ps.job.apps.size(), 2u);
  EXPECT_EQ(ps.job.apps[0].kind, farm::AppKind::Decode);
  EXPECT_EQ(ps.job.apps[1].kind, farm::AppKind::Encode);
  EXPECT_EQ(ps.job.apps[0].workload.width, 48);
  EXPECT_EQ(ps.job.apps[0].workload.frames, 2);
  EXPECT_EQ(ps.job.apps[0].workload.seed, 9u);
  EXPECT_EQ(ps.job.priority, farm::Priority::High);
  EXPECT_EQ(ps.deadline_ms, 250.0);
}

TEST(ServeJobspec, RejectsMalformedSpecs) {
  serve::ParsedSpec ps;
  std::string err;
  EXPECT_FALSE(serve::parseJobSpec("", ps, err));
  EXPECT_FALSE(serve::parseJobSpec("   ", ps, err));
  EXPECT_FALSE(serve::parseJobSpec("j width=banana", ps, err));
  EXPECT_FALSE(serve::parseJobSpec("j nosuchkey=1", ps, err));
  EXPECT_FALSE(err.empty());
}

TEST(ServeJobspec, DefaultSpecIsThePinnedDecode) {
  serve::ParsedSpec ps;
  std::string err;
  ASSERT_TRUE(serve::parseJobSpec("pin", ps, err)) << err;
  farm::FarmOptions fo;
  fo.workers = 1;
  fo.cache = sharedCache();
  farm::Farm f(fo);
  const farm::JobResult r = f.submitWait(std::move(ps.job)).get();
  EXPECT_EQ(r.status, farm::JobStatus::Completed);
  EXPECT_EQ(r.sim_cycles, pin::kDecodePinCycles);
  EXPECT_EQ(r.sim_events, pin::kDecodePinEvents);
  EXPECT_EQ(r.macroblocks, pin::kDecodePinMacroblocks);
  EXPECT_TRUE(r.bit_exact);
}

// -------------------------------------------------------------- tenant --

TEST(ServeTenant, SpecParsing) {
  serve::TenantConfig cfg;
  std::string err;
  ASSERT_TRUE(serve::parseTenantSpec(
      "alice:rate=20,burst=5,quota=3,pending=32,weight=2.5,policy=queue", cfg, err))
      << err;
  EXPECT_EQ(cfg.name, "alice");
  EXPECT_EQ(cfg.rate, 20.0);
  EXPECT_EQ(cfg.burst, 5.0);
  EXPECT_EQ(cfg.max_inflight, 3);
  EXPECT_EQ(cfg.max_pending, 32u);
  EXPECT_EQ(cfg.weight, 2.5);
  EXPECT_EQ(cfg.policy, serve::OverloadPolicy::Queue);

  ASSERT_TRUE(serve::parseTenantSpec("bob", cfg, err)) << err;
  EXPECT_EQ(cfg.name, "bob");

  EXPECT_FALSE(serve::parseTenantSpec("", cfg, err));
  EXPECT_FALSE(serve::parseTenantSpec("x:rate=-3", cfg, err));
  EXPECT_FALSE(serve::parseTenantSpec("x:quota=0", cfg, err));
  EXPECT_FALSE(serve::parseTenantSpec("x:policy=maybe", cfg, err));
  EXPECT_FALSE(serve::parseTenantSpec("x:nosuchkey=1", cfg, err));
}

TEST(ServeTenant, TokenBucketStartsFullThenPaces) {
  serve::TenantConfig cfg;
  cfg.rate = 10.0;  // 10 jobs/s
  cfg.burst = 3.0;
  serve::TokenBucket b;
  const auto t0 = std::chrono::steady_clock::now();
  b.refill(cfg, t0);
  EXPECT_TRUE(b.tryTake(cfg));
  EXPECT_TRUE(b.tryTake(cfg));
  EXPECT_TRUE(b.tryTake(cfg));
  EXPECT_FALSE(b.tryTake(cfg)) << "burst exhausted";

  // 250 ms at 10/s refills 2.5 tokens: exactly two more dispatches.
  b.refill(cfg, t0 + std::chrono::milliseconds(250));
  EXPECT_TRUE(b.tryTake(cfg));
  EXPECT_TRUE(b.tryTake(cfg));
  EXPECT_FALSE(b.tryTake(cfg));

  b.refund(cfg);  // a failed release puts the token back
  EXPECT_TRUE(b.tryTake(cfg));

  // Refill clamps at the burst, not unbounded accumulation.
  b.refill(cfg, t0 + std::chrono::hours(1));
  EXPECT_TRUE(b.tryTake(cfg));
  EXPECT_TRUE(b.tryTake(cfg));
  EXPECT_TRUE(b.tryTake(cfg));
  EXPECT_FALSE(b.tryTake(cfg));

  // Unlimited tenants never block on the bucket.
  serve::TenantConfig open;
  open.rate = 0.0;
  serve::TokenBucket ob;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ob.tryTake(open));
}

TEST(ServeHistogram, PercentilesOnKnownData) {
  serve::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);

  // 100 samples at 1 ms, 10 at 100 ms: p50 lands in the 1 ms bucket, p99+
  // in the 100 ms one, and the max is tracked exactly.
  for (int i = 0; i < 100; ++i) h.record(0.9);
  for (int i = 0; i < 10; ++i) h.record(90.0);
  EXPECT_EQ(h.count(), 110u);
  EXPECT_LE(h.percentile(0.5), 1.0);
  EXPECT_GE(h.percentile(0.99), 50.0);
  EXPECT_DOUBLE_EQ(h.maxMs(), 90.0);
  EXPECT_NEAR(h.sumMs(), 100 * 0.9 + 10 * 90.0, 1e-9);
}

// ---------------------------------------------------------- dispatcher --

namespace {

/// Collects dispatcher results without a waiter thread per job.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  int completed = 0;
  int promoted = 0;

  serve::Dispatcher::ResultFn fn() {
    return [this](const farm::JobResult& r, const serve::DispatchInfo& info) {
      std::lock_guard<std::mutex> lk(mu);
      ++done;
      if (r.status == farm::JobStatus::Completed) ++completed;
      if (info.promoted) ++promoted;
      cv.notify_all();
    };
  }

  void awaitDone(int n) {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(120), [&] { return done >= n; }))
        << "only " << done << " of " << n << " results arrived";
  }
};

farm::Job tinyJob(std::string name) {
  serve::ParsedSpec ps;
  std::string err;
  EXPECT_TRUE(serve::parseJobSpec(name + " width=32 height=32 frames=1", ps, err)) << err;
  return std::move(ps.job);
}

}  // namespace

TEST(ServeDispatcher, FloodingTenantShedsWhileCompliantTenantCompletes) {
  farm::FarmOptions fo;
  fo.workers = 2;
  fo.queue_capacity = 8;
  fo.cache = sharedCache();
  farm::Farm f(fo);

  serve::DispatcherOptions dopts;
  serve::Dispatcher d(f, dopts);
  serve::TenantConfig mallory;
  mallory.name = "mallory";
  mallory.rate = 50.0;
  mallory.burst = 4.0;
  mallory.max_inflight = 1;
  mallory.max_pending = 4;
  mallory.policy = serve::OverloadPolicy::Shed;
  serve::TenantConfig alice;
  alice.name = "alice";
  alice.max_inflight = 4;
  alice.max_pending = 128;
  alice.weight = 4.0;
  d.configureTenant(mallory);
  d.configureTenant(alice);

  Collector mc, ac;
  int mallory_admitted = 0, mallory_shed = 0, alice_admitted = 0;
  for (int n = 0; n < 60; ++n) {
    const auto v = d.admit("mallory", tinyJob("flood-" + std::to_string(n)), 0.0, mc.fn());
    if (v == serve::Dispatcher::Verdict::Accepted) {
      ++mallory_admitted;
    } else {
      EXPECT_TRUE(v == serve::Dispatcher::Verdict::RateLimited ||
                  v == serve::Dispatcher::Verdict::QueueFull);
      ++mallory_shed;
    }
    if (n % 6 == 0) {
      ASSERT_EQ(d.admit("alice", tinyJob("steady-" + std::to_string(n)), 0.0, ac.fn()),
                serve::Dispatcher::Verdict::Accepted);
      ++alice_admitted;
    }
  }
  EXPECT_GT(mallory_shed, 0) << "the flood must be shed, not buffered";
  ac.awaitDone(alice_admitted);
  EXPECT_EQ(ac.completed, alice_admitted) << "the compliant tenant must not starve";
  mc.awaitDone(mallory_admitted);  // what was admitted still completes
  EXPECT_EQ(d.outstanding(), 0u);

  const auto stats = d.tenantStats();
  ASSERT_EQ(stats.size(), 2u);  // stable name order: alice, mallory
  EXPECT_EQ(stats[0].config.name, "alice");
  EXPECT_EQ(stats[0].completed, static_cast<std::uint64_t>(alice_admitted));
  EXPECT_EQ(stats[1].config.name, "mallory");
  EXPECT_EQ(stats[1].shed(), static_cast<std::uint64_t>(mallory_shed));
}

TEST(ServeDispatcher, DeadlineSlackPromotesTheFarmLane) {
  farm::FarmOptions fo;
  fo.workers = 1;
  fo.queue_capacity = 8;
  fo.cache = sharedCache();
  farm::Farm f(fo);

  serve::DispatcherOptions dopts;
  dopts.promote_slack_ms = 10'000.0;  // any waiting deadline job promotes
  serve::Dispatcher d(f, dopts);
  serve::TenantConfig t;
  t.name = "edge";
  t.max_inflight = 1;  // the quota parks the second job in the serve queue
  d.configureTenant(t);

  Collector c;
  // First job occupies the tenant's only in-flight slot; the second waits
  // in the dispatcher with a deadline and must be promoted Low -> Normal
  // before release.
  ASSERT_EQ(d.admit("edge", tinyJob("occupier"), 0.0, c.fn()),
            serve::Dispatcher::Verdict::Accepted);
  farm::Job low = tinyJob("urgent");
  low.priority = farm::Priority::Low;
  ASSERT_EQ(d.admit("edge", std::move(low), 500.0, c.fn()),
            serve::Dispatcher::Verdict::Accepted);

  c.awaitDone(2);
  EXPECT_EQ(c.completed, 2);
  EXPECT_EQ(c.promoted, 1) << "exactly the deadline job is promoted";
  const auto stats = d.tenantStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].promoted, 1u);
}

// -------------------------------------------------------------- server --

TEST(ServeServer, ServedResultsMatchDirectOraclesBitForBit) {
  const std::vector<std::string> specs = {
      "pin",  // the pinned reference decode
      std::string(kTinySpec),
      "coarse width=32 height=32 frames=1 qscale=20",
      "enc kind=encode width=32 height=32 frames=1",
  };

  // Direct oracles first (1 worker, same cache).
  struct Fields {
    std::uint64_t cycles, events, mbs;
    bool bit_exact;
    double psnr;
  };
  std::vector<Fields> oracle;
  {
    farm::FarmOptions fo;
    fo.workers = 1;
    fo.cache = sharedCache();
    farm::Farm f(fo);
    for (const std::string& s : specs) {
      serve::ParsedSpec ps;
      std::string err;
      ASSERT_TRUE(serve::parseJobSpec(s, ps, err)) << err;
      const farm::JobResult r = f.submitWait(std::move(ps.job)).get();
      ASSERT_EQ(r.status, farm::JobStatus::Completed) << s;
      oracle.push_back({r.sim_cycles, r.sim_events, r.macroblocks, r.bit_exact, r.psnr_db});
    }
  }
  ASSERT_EQ(oracle[0].cycles, pin::kDecodePinCycles);
  ASSERT_EQ(oracle[0].events, pin::kDecodePinEvents);

  serve::Server server(baseOptions());
  server.start();
  serve::Client c;
  c.connect("127.0.0.1", server.port(), "alice");
  std::vector<std::uint64_t> ids;
  for (const std::string& s : specs) {
    const auto sub = c.submit(s);
    ASSERT_TRUE(sub.accepted) << serve::rejectReasonName(sub.reason);
    ids.push_back(sub.req_id);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const serve::WireResult r = c.await(ids[i]);
    EXPECT_EQ(r.status, farm::JobStatus::Completed) << specs[i];
    EXPECT_EQ(r.tenant, "alice");
    EXPECT_EQ(r.sim_cycles, oracle[i].cycles) << specs[i];
    EXPECT_EQ(r.sim_events, oracle[i].events) << specs[i];
    EXPECT_EQ(r.macroblocks, oracle[i].mbs) << specs[i];
    EXPECT_EQ(r.bit_exact, oracle[i].bit_exact) << specs[i];
    EXPECT_EQ(r.psnr_db, oracle[i].psnr) << specs[i];
  }
  // Serving never arms supervision on its own: the unarmed batch path
  // stays zero-overhead (the decode pin above is the other half of this).
  EXPECT_EQ(server.farm().metrics().supervisedJobs(), 0u);
  c.close();
  server.shutdown();
  EXPECT_EQ(server.resultsDropped(), 0u);
}

TEST(ServeServer, BadSpecAndUnknownTenantAreRejectedNotFatal) {
  serve::ServeOptions so = baseOptions();
  so.auto_register = false;  // nobody is pre-registered
  serve::Server server(so);
  server.start();
  serve::Client c;
  c.connect("127.0.0.1", server.port(), "ghost");
  const auto s1 = c.submit(kTinySpec);
  EXPECT_FALSE(s1.accepted);
  EXPECT_EQ(s1.reason, serve::RejectReason::UnknownTenant);

  serve::ServeOptions so2 = baseOptions();
  serve::Server server2(so2);
  server2.start();
  serve::Client c2;
  c2.connect("127.0.0.1", server2.port(), "alice");
  const auto s2 = c2.submit("bad width=banana");
  EXPECT_FALSE(s2.accepted);
  EXPECT_EQ(s2.reason, serve::RejectReason::BadSpec);
  // The connection survives a rejection: the next submit works.
  const auto s3 = c2.submit(kTinySpec);
  ASSERT_TRUE(s3.accepted);
  EXPECT_EQ(c2.await(s3.req_id).status, farm::JobStatus::Completed);
}

TEST(ServeServer, TextModeSpeaksLineProtocol) {
  serve::Server server(baseOptions());
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  std::string buf;
  auto sendAll = [&](const std::string& s) {
    ASSERT_EQ(::send(fd, s.data(), s.size(), 0), static_cast<ssize_t>(s.size()));
  };
  auto readLine = [&]() -> std::string {
    for (;;) {
      const auto nl = buf.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return line;
      }
      char chunk[512];
      const ssize_t k = ::recv(fd, chunk, sizeof chunk, 0);
      if (k <= 0) return "<EOF>";
      buf.append(chunk, static_cast<std::size_t>(k));
    }
  };

  sendAll("HELLO texty\n");
  EXPECT_EQ(readLine(), "OK hello texty");
  sendAll("PING\n");
  EXPECT_EQ(readLine(), "PONG");
  sendAll(std::string("SUBMIT 5 ") + kTinySpec + "\n");
  EXPECT_EQ(readLine(), "OK accepted 5");
  const std::string result = readLine();
  EXPECT_EQ(result.rfind("RESULT 5 ", 0), 0u) << result;
  EXPECT_NE(result.find("completed"), std::string::npos) << result;
  sendAll("NOSUCH\n");
  EXPECT_EQ(readLine().rfind("ERR 0 bad-command", 0), 0u);
  sendAll("QUIT\n");
  EXPECT_EQ(readLine(), "BYE");
  ::close(fd);
  server.shutdown();
  EXPECT_EQ(server.resultsDropped(), 0u);
}

TEST(ServeServer, RollingDrainDeliversEveryAcceptedResult) {
  serve::Server server(baseOptions());
  server.start();
  serve::Client c;
  c.connect("127.0.0.1", server.port(), "drainee");
  const int n = 8;
  std::uint64_t accepted = 0;
  for (int i = 0; i < n; ++i) {
    if (c.submit(std::string(kTinySpec) + " seed=" + std::to_string(i % 4)).accepted) {
      ++accepted;
    }
  }
  ASSERT_EQ(accepted, static_cast<std::uint64_t>(n));

  server.beginDrain();  // results still in flight
  const auto late = c.submit(kTinySpec);
  EXPECT_FALSE(late.accepted);
  EXPECT_EQ(late.reason, serve::RejectReason::Draining);

  std::uint64_t results = 0;
  for (const serve::WireResult& r : c.awaitAll()) {
    EXPECT_EQ(r.status, farm::JobStatus::Completed);
    ++results;
  }
  EXPECT_EQ(results, accepted) << "rolling drain must lose nothing";
  server.shutdown();
  EXPECT_EQ(server.resultsDropped(), 0u);
}

TEST(ServeServer, ReloadUpdatesQuotasAndResizesWorkersWithoutLoss) {
  serve::ServeOptions so = baseOptions(1);
  serve::Server server(so);
  server.start();
  serve::Client c;
  c.connect("127.0.0.1", server.port(), "alice");

  // Work is flowing before, during and after the reload.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(c.submit(kTinySpec).accepted);

  serve::ReloadConfig cfg;
  serve::TenantConfig alice;
  alice.name = "alice";
  alice.max_inflight = 1;
  alice.max_pending = 2;  // tightened pending bound takes effect live
  cfg.tenants.push_back(alice);
  cfg.workers = 2;
  server.reload(cfg);
  EXPECT_EQ(server.farm().workerCount(), 2);

  for (int i = 0; i < 4; ++i) c.submit(kTinySpec);  // some may hit the new bound
  std::uint64_t results = 0;
  for (const serve::WireResult& r : c.awaitAll()) {
    EXPECT_EQ(r.status, farm::JobStatus::Completed);
    ++results;
  }
  EXPECT_GE(results, 4u) << "everything accepted before the reload survives it";

  bool found = false;
  for (const serve::TenantStats& t : server.dispatcher().tenantStats()) {
    if (t.config.name == "alice") {
      found = true;
      EXPECT_EQ(t.config.max_pending, 2u) << "reload must upsert the live config";
    }
  }
  EXPECT_TRUE(found);
  c.close();
  server.shutdown();
  EXPECT_EQ(server.resultsDropped(), 0u);
}

TEST(ServeServer, MetricsExpositionCoversFarmAndTenants) {
  serve::Server server(baseOptions());
  server.start();
  serve::Client c;
  c.connect("127.0.0.1", server.port(), "alice");
  const auto s = c.submit(kTinySpec);
  ASSERT_TRUE(s.accepted);
  (void)c.await(s.req_id);

  const std::string text = c.metricsText();
  EXPECT_NE(text.find("eclipse_farm_completed_total"), std::string::npos);
  EXPECT_NE(text.find("eclipse_farm_lane_depth{lane=\"high\"}"), std::string::npos);
  EXPECT_NE(text.find("eclipse_serve_admitted_total{tenant=\"alice\"} 1"), std::string::npos);
  EXPECT_NE(text.find("eclipse_serve_latency_ms"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  c.close();
  server.shutdown();
}
