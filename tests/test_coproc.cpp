// Tests for the coprocessor layer: packet framing over streams, worst-case
// frame bounds, coprocessor stage behaviour against the functional stages,
// and end-of-stream task retirement.

#include <gtest/gtest.h>

#include <vector>

#include "eclipse/coproc/limits.hpp"
#include "eclipse/coproc/packet_io.hpp"
#include "eclipse/media/codec.hpp"
#include "eclipse/sim/prng.hpp"
#include "shell_fixture.hpp"

namespace {

using namespace eclipse;
using namespace eclipse::coproc;
using eclipse::test::TwoShellFixture;
using shell::Shell;
using sim::Task;

class PacketIo : public TwoShellFixture {};

Task<void> writeThenRead(Shell& prod, Shell& cons, const std::vector<std::uint8_t>& pkt) {
  co_await packet_io::write(prod, 0, 0, pkt, /*wait=*/true);
  std::vector<std::uint8_t> got;
  co_await packet_io::blockingRead(cons, 0, 0, got);
  EXPECT_EQ(got, pkt);
}

TEST_F(PacketIo, FramedRoundTrip) {
  connect(256);
  std::vector<std::uint8_t> pkt{static_cast<std::uint8_t>(media::PacketTag::Mb), 1, 2, 3, 4, 5};
  run(writeThenRead(*prod, *cons, pkt));
}

Task<void> tryReadOnEmpty(Shell& cons, packet_io::ReadStatus& st) {
  std::vector<std::uint8_t> got;
  st = co_await packet_io::tryRead(cons, 0, 0, got);
}

TEST_F(PacketIo, TryReadReportsBlockedWithoutCommitting) {
  connect(256);
  auto st = packet_io::ReadStatus::Ok;
  run(tryReadOnEmpty(*cons, st));
  EXPECT_EQ(st, packet_io::ReadStatus::Blocked);
  EXPECT_EQ(cons->streams().row(cons_row).putspace_calls, 0u);
}

Task<void> peekDoesNotConsume(Shell& prod, Shell& cons) {
  const std::vector<std::uint8_t> pkt{static_cast<std::uint8_t>(media::PacketTag::Pic), 7, 7};
  co_await packet_io::write(prod, 0, 0, pkt, true);

  std::vector<std::uint8_t> a, b;
  const auto r1 = co_await packet_io::tryPeek(cons, 0, 0, a);
  EXPECT_EQ(r1.status, packet_io::ReadStatus::Ok);
  // A second peek sees the same packet: nothing was committed.
  const auto r2 = co_await packet_io::tryPeek(cons, 0, 0, b);
  EXPECT_EQ(r2.status, packet_io::ReadStatus::Ok);
  EXPECT_EQ(a, b);
  co_await cons.putSpace(0, 0, r2.frame_bytes);
  // Now the stream is empty again.
  std::vector<std::uint8_t> c;
  const auto r3 = co_await packet_io::tryPeek(cons, 0, 0, c);
  EXPECT_EQ(r3.status, packet_io::ReadStatus::Blocked);
}

TEST_F(PacketIo, PeekIsRepeatableUntilCommit) {
  connect(256);
  run(peekDoesNotConsume(*prod, *cons));
}

Task<void> partialPacketBlocks(Shell& prod, Shell& cons) {
  // Write only the length word of a large frame: the reader must see the
  // length, fail the second GetSpace, and leave the length uncommitted —
  // the Section 4.2 conditional-input abort.
  const std::uint32_t fake_len = 100;
  std::uint8_t hdr[4];
  std::memcpy(hdr, &fake_len, sizeof fake_len);
  EXPECT_TRUE(co_await prod.getSpace(0, 0, 4));
  co_await prod.write(0, 0, 0, hdr);
  co_await prod.putSpace(0, 0, 4);

  std::vector<std::uint8_t> got;
  const auto r1 = co_await packet_io::tryRead(cons, 0, 0, got);
  EXPECT_EQ(r1, packet_io::ReadStatus::Blocked);

  // Producer completes the packet; the reader restarts from the beginning.
  std::vector<std::uint8_t> body(fake_len, 0xCD);
  co_await prod.waitSpace(0, 0, static_cast<std::uint32_t>(body.size()));
  co_await prod.write(0, 0, 0, body);
  co_await prod.putSpace(0, 0, static_cast<std::uint32_t>(body.size()));

  const auto r2 = co_await packet_io::tryRead(cons, 0, 0, got);
  EXPECT_EQ(r2, packet_io::ReadStatus::Ok);
  EXPECT_EQ(got, body);
}

TEST_F(PacketIo, ConditionalInputAbortAndRestart) {
  connect(256);
  run(partialPacketBlocks(*prod, *cons));
}

// ------------------------------------------------------- frame bounds

TEST(Limits, CoefsBoundCoversWorstCase) {
  // Worst-case macroblock: every block coded with 64 escape pairs.
  media::MbCoefs worst;
  worst.cbp = 0x3F;
  worst.intra = 1;
  for (auto& b : worst.blocks) {
    for (int i = 0; i < 64; ++i) b.push_back(media::rle::RunLevel{0, 2047});
  }
  media::ByteWriter w;
  media::put(w, worst);
  EXPECT_LE(packet_io::frameBytes(static_cast<std::uint32_t>(w.size() + 1)), kMaxCoefsFrame);
}

TEST(Limits, BlocksAndPixelBoundsCoverSerialisedSizes) {
  media::MbBlocks blocks;
  media::ByteWriter wb;
  media::put(wb, blocks);
  EXPECT_LE(packet_io::frameBytes(static_cast<std::uint32_t>(wb.size() + 1)), kMaxBlocksFrame);

  media::MbPixels px;
  media::ByteWriter wp;
  media::put(wp, px);
  EXPECT_LE(packet_io::frameBytes(static_cast<std::uint32_t>(wp.size() + 1)), kMaxPixelsFrame);

  media::MbHeader h;
  media::ByteWriter wh;
  media::put(wh, h);
  EXPECT_LE(packet_io::frameBytes(static_cast<std::uint32_t>(wh.size() + 1)), kMaxHeaderFrame);

  media::SeqHeader sh;
  media::ByteWriter ws;
  media::put(ws, sh);
  EXPECT_LE(packet_io::frameBytes(static_cast<std::uint32_t>(ws.size() + 1)), kMaxCtlFrame);
}

}  // namespace
