// Stage-equivalence tests: each coprocessor, run in isolation behind its
// shell, must transform packet streams exactly like the functional
// media::stages it models (the refinement-correctness property).

#include <gtest/gtest.h>

#include <vector>

#include "eclipse/coproc/dct_coproc.hpp"
#include "eclipse/coproc/limits.hpp"
#include "eclipse/coproc/packet_io.hpp"
#include "eclipse/coproc/rlsq.hpp"
#include "eclipse/coproc/vld.hpp"
#include "eclipse/media/video_gen.hpp"
#include "shell_fixture.hpp"

namespace {

using namespace eclipse;
using coproc::packet_io::blockingRead;
using coproc::packet_io::write;
using shell::Shell;
using sim::Task;

/// Harness: one coprocessor shell plus feeder/collector shells around it.
class StageHarness : public ::testing::Test {
 protected:
  void SetUp() override {
    sim = std::make_unique<sim::Simulator>();
    mem::SramParams sp;
    sp.size_bytes = 128 * 1024;
    sram = std::make_unique<mem::SharedSram>(*sim, sp);
    dram = std::make_unique<mem::OffChipMemory>(*sim, mem::DramParams{});
    net = std::make_unique<mem::MessageNetwork>(*sim, 2);
  }

  Shell& makeShell(const std::string& name) {
    shell::ShellParams p;
    p.id = static_cast<std::uint32_t>(shells.size());
    p.name = name;
    shells.push_back(std::make_unique<Shell>(*sim, p, *sram, *net));
    shells.back()->configureTask(0, shell::TaskConfig{});
    return *shells.back();
  }

  void connect(Shell& prod, sim::PortId pp, Shell& cons, sim::PortId cp,
               std::uint32_t bytes = 4096) {
    shell::StreamConfig c;
    c.task = 0;
    c.port = pp;
    c.is_producer = true;
    c.buffer_base = next_buf;
    c.buffer_bytes = bytes;
    c.remote_shell = cons.id();
    c.initial_space = bytes;
    const auto prow = prod.configureStream(c);
    c.port = cp;
    c.is_producer = false;
    c.remote_shell = prod.id();
    c.remote_row = prow;
    c.initial_space = 0;
    const auto crow = cons.configureStream(c);
    prod.streams().row(prow).remote_row = crow;
    next_buf += bytes;
  }

  /// Collects whole packets from a port until Eos (inclusive).
  static Task<void> collector(Shell& sh, sim::PortId port,
                              std::vector<std::vector<std::uint8_t>>& out) {
    while (true) {
      std::vector<std::uint8_t> pkt;
      co_await blockingRead(sh, 0, port, pkt);
      const bool eos = static_cast<media::PacketTag>(pkt.at(0)) == media::PacketTag::Eos;
      out.push_back(std::move(pkt));
      if (eos) co_return;
    }
  }

  static Task<void> feeder(Shell& sh, sim::PortId port,
                           std::vector<std::vector<std::uint8_t>> packets) {
    for (auto& pkt : packets) {
      co_await write(sh, 0, port, pkt, /*wait=*/true);
    }
  }

  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<mem::SharedSram> sram;
  std::unique_ptr<mem::OffChipMemory> dram;
  std::unique_ptr<mem::MessageNetwork> net;
  std::vector<std::unique_ptr<Shell>> shells;
  sim::Addr next_buf = 0;
};

/// A small encoded stream plus its functional parse.
struct ParsedStream {
  std::vector<std::uint8_t> bits;
  media::SeqHeader seq;
  std::vector<media::PicHeader> pics;
  std::vector<media::stages::ParsedMb> mbs;  // concatenated over pictures
};

ParsedStream makeStream() {
  media::VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 5;
  vp.seed = 17;
  const auto frames = media::generateVideo(vp);
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.gop = media::GopStructure{5, 1};
  media::Encoder enc(cp);
  ParsedStream ps;
  ps.bits = enc.encode(frames);
  media::BitReader br(ps.bits);
  ps.seq = media::stages::parseSeqHeader(br);
  const int mbs = (ps.seq.width / 16) * (ps.seq.height / 16);
  for (int p = 0; p < ps.seq.frame_count; ++p) {
    const auto ph = media::stages::parsePicHeader(br);
    ps.pics.push_back(ph);
    for (int m = 0; m < mbs; ++m) {
      ps.mbs.push_back(media::stages::parseMb(br, ph.type, static_cast<std::uint16_t>(m % 3),
                                              static_cast<std::uint16_t>(m / 3), ph.qscale));
    }
  }
  return ps;
}

// --------------------------------------------------------------- VLD

TEST_F(StageHarness, VldCoprocMatchesFunctionalParse) {
  const auto golden = makeStream();

  Shell& vld_sh = makeShell("vld");
  Shell& coef_sh = makeShell("coef-sink");
  Shell& hdr_sh = makeShell("hdr-sink");
  connect(vld_sh, coproc::VldCoproc::kOutCoef, coef_sh, 0);
  connect(vld_sh, coproc::VldCoproc::kOutHdr, hdr_sh, 0);

  coproc::VldCoproc vld(*sim, vld_sh, *dram, coproc::VldParams{});
  const sim::Addr addr = 0x1000;
  dram->storage().write(addr, golden.bits);
  vld.configureTask(0, coproc::VldTaskConfig{addr, static_cast<std::uint32_t>(golden.bits.size())});
  vld.start();

  std::vector<std::vector<std::uint8_t>> coef_pkts, hdr_pkts;
  sim->spawn(collector(coef_sh, 0, coef_pkts), "c");
  sim->spawn(collector(hdr_sh, 0, hdr_pkts), "h");
  sim->run(200'000'000);
  ASSERT_EQ(sim->liveProcesses(), 1u);  // only the parked coprocessor loop remains

  // Expected framing: Seq, then per picture Pic + MBs, then Eos.
  const std::size_t n_mb = golden.mbs.size();
  ASSERT_EQ(coef_pkts.size(), 1 + golden.pics.size() + n_mb + 1);
  ASSERT_EQ(hdr_pkts.size(), coef_pkts.size());

  std::size_t mb_i = 0;
  for (std::size_t i = 0; i < coef_pkts.size(); ++i) {
    const auto tag = static_cast<media::PacketTag>(coef_pkts[i].at(0));
    ASSERT_EQ(tag, static_cast<media::PacketTag>(hdr_pkts[i].at(0)));
    if (tag != media::PacketTag::Mb) continue;
    media::MbCoefs coefs;
    media::ByteReader rc(std::span<const std::uint8_t>(coef_pkts[i]).subspan(1));
    media::get(rc, coefs);
    media::MbHeader h;
    media::ByteReader rh(std::span<const std::uint8_t>(hdr_pkts[i]).subspan(1));
    media::get(rh, h);
    const auto& g = golden.mbs[mb_i++];
    EXPECT_EQ(h.mode, g.header.mode);
    EXPECT_EQ(h.cbp, g.header.cbp);
    EXPECT_EQ(h.mv_fwd, g.header.mv_fwd);
    EXPECT_EQ(coefs.cbp, g.coefs.cbp);
    for (int b = 0; b < media::kBlocksPerMacroblock; ++b) {
      EXPECT_EQ(coefs.blocks[static_cast<std::size_t>(b)],
                g.coefs.blocks[static_cast<std::size_t>(b)]);
    }
  }
  EXPECT_EQ(mb_i, n_mb);
  EXPECT_EQ(vld.symbolsDecoded() > 0, true);
}

// --------------------------------------------------------------- RLSQ

TEST_F(StageHarness, RlsqDecodeMatchesStageFunction) {
  const auto golden = makeStream();

  Shell& rlsq_sh = makeShell("rlsq");
  Shell& src_sh = makeShell("src");
  Shell& snk_sh = makeShell("snk");
  connect(src_sh, 0, rlsq_sh, coproc::RlsqCoproc::kIn);
  connect(rlsq_sh, coproc::RlsqCoproc::kOut, snk_sh, 0);

  coproc::RlsqCoproc rlsq(*sim, rlsq_sh, coproc::RlsqParams{});
  rlsq.start();

  // Feed: Seq + the first picture's MBs + Eos.
  std::vector<std::vector<std::uint8_t>> feed;
  feed.push_back(media::packPacket(media::PacketTag::Seq, golden.seq));
  feed.push_back(media::packPacket(media::PacketTag::Pic, golden.pics[0]));
  const int mbs = (golden.seq.width / 16) * (golden.seq.height / 16);
  for (int m = 0; m < mbs; ++m) {
    feed.push_back(media::packPacket(media::PacketTag::Mb, golden.mbs[static_cast<std::size_t>(m)].coefs));
  }
  feed.push_back(media::packTag(media::PacketTag::Eos));

  std::vector<std::vector<std::uint8_t>> out;
  sim->spawn(feeder(src_sh, 0, feed), "f");
  sim->spawn(collector(snk_sh, 0, out), "c");
  sim->run(200'000'000);
  ASSERT_EQ(sim->liveProcesses(), 1u);  // only the parked coprocessor loop remains
  ASSERT_EQ(out.size(), feed.size());

  int mb_i = 0;
  for (const auto& pkt : out) {
    if (static_cast<media::PacketTag>(pkt.at(0)) != media::PacketTag::Mb) continue;
    media::MbBlocks got;
    media::ByteReader r(std::span<const std::uint8_t>(pkt).subspan(1));
    media::get(r, got);
    const auto& g = golden.mbs[static_cast<std::size_t>(mb_i)];
    media::MbBlocks want;
    media::stages::rlsqDecode(g.coefs, g.coefs.intra != 0, golden.seq, want);
    for (int b = 0; b < media::kBlocksPerMacroblock; ++b) {
      ASSERT_EQ(got.blocks[static_cast<std::size_t>(b)], want.blocks[static_cast<std::size_t>(b)])
          << "mb " << mb_i << " block " << b;
    }
    ++mb_i;
  }
  EXPECT_EQ(mb_i, mbs);
}

// --------------------------------------------------------------- DCT

TEST_F(StageHarness, DctCoprocBothDirectionsMatchStageFunctions) {
  Shell& dct_sh = makeShell("dct");
  Shell& src_sh = makeShell("src");
  Shell& snk_sh = makeShell("snk");
  connect(src_sh, 0, dct_sh, coproc::DctCoproc::kIn);
  connect(dct_sh, coproc::DctCoproc::kOut, snk_sh, 0);

  coproc::DctCoproc dct(*sim, dct_sh, coproc::DctParams{});
  dct.start();
  // Two tasks would need two port sets; use task_info on task 0 instead:
  // first run inverse (info 0), checked against idctMb.
  sim::Prng rng(9);
  media::MbBlocks in;
  in.cbp = 0x2D;
  in.intra = 1;
  for (auto& b : in.blocks) {
    for (auto& v : b) v = static_cast<std::int16_t>(rng.range(-300, 300));
  }
  std::vector<std::vector<std::uint8_t>> feed;
  feed.push_back(media::packPacket(media::PacketTag::Mb, in));
  feed.push_back(media::packTag(media::PacketTag::Eos));

  std::vector<std::vector<std::uint8_t>> out;
  sim->spawn(feeder(src_sh, 0, feed), "f");
  sim->spawn(collector(snk_sh, 0, out), "c");
  sim->run(50'000'000);
  ASSERT_EQ(sim->liveProcesses(), 1u);  // only the parked coprocessor loop remains
  ASSERT_EQ(out.size(), 2u);

  media::MbBlocks got, want;
  media::ByteReader r(std::span<const std::uint8_t>(out[0]).subspan(1));
  media::get(r, got);
  media::stages::idctMb(in, want);
  for (int b = 0; b < media::kBlocksPerMacroblock; ++b) {
    EXPECT_EQ(got.blocks[static_cast<std::size_t>(b)], want.blocks[static_cast<std::size_t>(b)]);
  }
  EXPECT_EQ(dct.blocksTransformed(), 4u);  // popcount(0x2D)
}

TEST_F(StageHarness, DctForwardDirectionViaTaskInfo) {
  Shell& dct_sh = makeShell("dct");
  Shell& src_sh = makeShell("src");
  Shell& snk_sh = makeShell("snk");
  connect(src_sh, 0, dct_sh, coproc::DctCoproc::kIn);
  connect(dct_sh, coproc::DctCoproc::kOut, snk_sh, 0);
  dct_sh.configureTask(0, shell::TaskConfig{true, 2000, coproc::kDctInfoForward});

  coproc::DctCoproc dct(*sim, dct_sh, coproc::DctParams{});
  dct.start();

  sim::Prng rng(10);
  media::MbBlocks in;
  in.cbp = 0x3F;
  for (auto& b : in.blocks) {
    for (auto& v : b) v = static_cast<std::int16_t>(rng.range(-255, 255));
  }
  std::vector<std::vector<std::uint8_t>> feed;
  feed.push_back(media::packPacket(media::PacketTag::Mb, in));
  feed.push_back(media::packTag(media::PacketTag::Eos));
  std::vector<std::vector<std::uint8_t>> out;
  sim->spawn(feeder(src_sh, 0, feed), "f");
  sim->spawn(collector(snk_sh, 0, out), "c");
  sim->run(50'000'000);
  ASSERT_EQ(sim->liveProcesses(), 1u);  // only the parked coprocessor loop remains

  media::MbBlocks got, want;
  media::ByteReader r(std::span<const std::uint8_t>(out.at(0)).subspan(1));
  media::get(r, got);
  media::stages::fdctMb(in, want);
  for (int b = 0; b < media::kBlocksPerMacroblock; ++b) {
    EXPECT_EQ(got.blocks[static_cast<std::size_t>(b)], want.blocks[static_cast<std::size_t>(b)]);
  }
}

}  // namespace
