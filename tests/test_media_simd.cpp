// Differential tests for the SIMD media substrate (DESIGN.md §11): every
// vector backend must be bit-identical to the scalar oracle on every
// kernel, including clamp extremes, frame-border windows, truncated or
// corrupt bitstreams, and the end-to-end decode cycle pin.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "eclipse/app/decode_app.hpp"
#include "eclipse/app/instance.hpp"
#include "eclipse/media/codec.hpp"
#include "eclipse/media/kernels.hpp"
#include "eclipse/media/motion.hpp"
#include "eclipse/media/video_gen.hpp"
#include "eclipse/media/vlc.hpp"
#include "eclipse/sim/prng.hpp"

#include "decode_pin.hpp"

namespace {

using namespace eclipse;
using namespace eclipse::media;
using eclipse::sim::Prng;

namespace k = eclipse::media::kernels;

/// Restores the backend active at construction (tests mutate the global
/// dispatch pointer).
class BackendGuard {
 public:
  BackendGuard() : saved_(k::backend()) {}
  ~BackendGuard() { k::setBackend(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  k::Backend saved_;
};

std::vector<k::Backend> simdBackends() {
  std::vector<k::Backend> out;
  for (const auto b : k::availableBackends()) {
    if (b != k::Backend::Scalar) out.push_back(b);
  }
  return out;
}

Block randomBlock(Prng& rng, int magnitude) {
  Block b{};
  for (auto& v : b) {
    v = static_cast<std::int16_t>(static_cast<int>(rng.range(-magnitude, magnitude)));
  }
  return b;
}

Frame noiseFrame(int w, int h, std::uint64_t seed) {
  Frame f(w, h);
  Prng rng(seed);
  for (auto& v : f.yPlane()) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : f.cbPlane()) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : f.crPlane()) v = static_cast<std::uint8_t>(rng.below(256));
  return f;
}

// --------------------------------------------------------------- registry

TEST(SimdRegistry, ScalarAlwaysAvailableAndNamed) {
  const auto avail = k::availableBackends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), k::Backend::Scalar);
  for (const auto b : avail) {
    EXPECT_EQ(k::parseBackendName(k::backendName(b)), b);
  }
  EXPECT_THROW((void)k::parseBackendName("avx512"), std::invalid_argument);
}

TEST(SimdRegistry, SetBackendSwitchesAndUnavailableThrows) {
  BackendGuard guard;
  for (const auto b : k::availableBackends()) {
    k::setBackend(b);
    EXPECT_EQ(k::backend(), b);
    EXPECT_STREQ(k::active().name, k::backendName(b));
  }
  for (int i = 0; i < k::kBackendCount; ++i) {
    const auto b = static_cast<k::Backend>(i);
    if (!k::available(b)) EXPECT_THROW(k::setBackend(b), std::invalid_argument);
  }
}

TEST(SimdRegistry, EnvOverrideSelectsScalar) {
  BackendGuard guard;
  ASSERT_EQ(setenv("ECLIPSE_SIMD", "scalar", 1), 0);
  k::resetBackendFromEnv();
  EXPECT_EQ(k::backend(), k::Backend::Scalar);
  ASSERT_EQ(unsetenv("ECLIPSE_SIMD"), 0);
  k::resetBackendFromEnv();  // back to best-available
  EXPECT_EQ(k::backend(), k::availableBackends().back());
}

// -------------------------------------------------------------- bitreader

TEST(BitReaderMultiBit, PeekIsNonConsumingAndZeroPadded) {
  const std::vector<std::uint8_t> bytes{0xA5, 0x3C};
  BitReader br(bytes);
  EXPECT_EQ(br.peekBits(8), 0xA5u);
  EXPECT_EQ(br.peekBits(16), 0xA53Cu);
  EXPECT_EQ(br.peekBits(0), 0u);
  EXPECT_EQ(br.bitPosition(), 0u);
  // Past-the-end bits read as zero.
  EXPECT_EQ(br.peekBits(32), 0xA53C0000u);
  br.skipBits(4);
  EXPECT_EQ(br.peekBits(8), 0x53u);
  EXPECT_EQ(br.bitPosition(), 4u);
}

TEST(BitReaderMultiBit, GetMatchesBitAtATime) {
  Prng rng(0xB17Eull);
  std::vector<std::uint8_t> bytes(64);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  BitReader a(bytes);
  BitReader b(bytes);
  Prng widths(7);
  while (a.bitsRemaining() >= 32) {
    const int n = static_cast<int>(widths.range(0, 32));
    std::uint32_t ref = 0;
    for (int i = 0; i < n; ++i) ref = (ref << 1) | b.getBit();
    EXPECT_EQ(a.get(n), ref);
    EXPECT_EQ(a.bitPosition(), b.bitPosition());
  }
}

TEST(BitReaderMultiBit, GetPastEndThrowsAtEndPosition) {
  const std::vector<std::uint8_t> bytes{0xFF};
  BitReader br(bytes);
  (void)br.get(5);
  EXPECT_THROW((void)br.get(7), BitstreamError);
  EXPECT_EQ(br.bitPosition(), 8u);  // parked at end, like bit-at-a-time reads
  EXPECT_TRUE(br.exhausted());
}

// ------------------------------------------------------------ block kernels

TEST(SimdBlocks, DctMatchesScalarIncludingClampExtremes) {
  Prng rng(0xDC7ull);
  std::vector<Block> inputs;
  for (int i = 0; i < 500; ++i) inputs.push_back(randomBlock(rng, 255));
  for (int i = 0; i < 500; ++i) inputs.push_back(randomBlock(rng, 32767));
  Block extreme{};
  extreme.fill(32767);
  inputs.push_back(extreme);
  extreme.fill(-32768);
  inputs.push_back(extreme);

  BackendGuard guard;
  for (const auto b : simdBackends()) {
    for (const auto& in : inputs) {
      Block want_f, want_i, got_f, got_i;
      k::setBackend(k::Backend::Scalar);
      k::active().dct_forward(in, want_f);
      k::active().dct_inverse(in, want_i);
      k::setBackend(b);
      k::active().dct_forward(in, got_f);
      k::active().dct_inverse(in, got_i);
      ASSERT_EQ(got_f, want_f) << "forward, backend " << k::backendName(b);
      ASSERT_EQ(got_i, want_i) << "inverse, backend " << k::backendName(b);
    }
  }
}

TEST(SimdBlocks, QuantDequantMatchScalarForAllQscales) {
  Prng rng(0x9A57ull);
  BackendGuard guard;
  const quant::Matrix* mats[] = {&quant::flatMatrix(), &quant::defaultIntraMatrix()};
  for (const auto b : simdBackends()) {
    for (int qscale = 1; qscale <= 31; ++qscale) {
      for (const auto* m : mats) {
        for (int rep = 0; rep < 40; ++rep) {
          const Block coefs = randomBlock(rng, rep % 2 == 0 ? 2048 : 32767);
          const Block levels = randomBlock(rng, 2047);
          Block want_q, want_d, got_q, got_d;
          k::setBackend(k::Backend::Scalar);
          k::active().quantize(coefs, want_q, qscale, *m);
          k::active().dequantize(levels, want_d, qscale, *m);
          k::setBackend(b);
          k::active().quantize(coefs, got_q, qscale, *m);
          k::active().dequantize(levels, got_d, qscale, *m);
          ASSERT_EQ(got_q, want_q) << "quantize q=" << qscale << " " << k::backendName(b);
          ASSERT_EQ(got_d, want_d) << "dequantize q=" << qscale << " " << k::backendName(b);
        }
      }
    }
  }
}

TEST(SimdBlocks, ScanAndRleMatchScalar) {
  Prng rng(0x5CA2ull);
  BackendGuard guard;
  for (const auto b : simdBackends()) {
    for (int rep = 0; rep < 300; ++rep) {
      Block in = randomBlock(rng, 32767);
      if (rep == 0) in.fill(0);            // zero-length-run edge: empty RLE
      if (rep == 1) in.fill(1);            // fully dense block
      if (rep % 3 == 0) {
        // Sparse block: mostly zeros, the common case after quantization.
        for (auto& v : in) {
          if (rng.below(4) != 0) v = 0;
        }
      }
      for (const auto order : {scan::Order::Zigzag, scan::Order::Alternate}) {
        Block want_s, got_s, want_r, got_r;
        std::vector<rle::RunLevel> want_p, got_p;
        k::setBackend(k::Backend::Scalar);
        k::active().to_scan(in, want_s, order);
        k::active().from_scan(in, want_r, order);
        k::active().rle_encode(in, want_p);
        k::setBackend(b);
        k::active().to_scan(in, got_s, order);
        k::active().from_scan(in, got_r, order);
        k::active().rle_encode(in, got_p);
        ASSERT_EQ(got_s, want_s) << "to_scan " << k::backendName(b);
        ASSERT_EQ(got_r, want_r) << "from_scan " << k::backendName(b);
        ASSERT_EQ(got_p.size(), want_p.size()) << "rle " << k::backendName(b);
        for (std::size_t i = 0; i < want_p.size(); ++i) {
          ASSERT_EQ(got_p[i].run, want_p[i].run);
          ASSERT_EQ(got_p[i].level, want_p[i].level);
        }
      }
    }
  }
}

// ------------------------------------------------------------ pixel kernels

TEST(SimdPixels, SadAndInterpMatchScalarOnRawBuffers) {
  Prng rng(0x5ADull);
  constexpr int kW = 40, kH = 24;  // strides wider than the block
  std::vector<std::uint8_t> ref(kW * kH), cur(kW * kH);
  for (auto& v : ref) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : cur) v = static_cast<std::uint8_t>(rng.below(256));

  BackendGuard guard;
  for (const auto b : simdBackends()) {
    for (int fy = 0; fy <= 1; ++fy) {
      for (int fx = 0; fx <= 1; ++fx) {
        for (const int h : {1, 3, 7, 8, 15, 16}) {  // odd heights hit tails
          std::vector<std::uint8_t> want16(16 * h), got16(16 * h);
          std::vector<std::uint8_t> want8(8 * h), got8(8 * h);
          k::setBackend(k::Backend::Scalar);
          const auto want_sad = k::active().sad_16xh(cur.data(), kW, ref.data(), kW, h, fx, fy);
          k::active().interp_16xh(want16.data(), 16, ref.data(), kW, h, fx, fy);
          k::active().interp_8xh(want8.data(), 8, ref.data(), kW, h, fx, fy);
          k::setBackend(b);
          const auto got_sad = k::active().sad_16xh(cur.data(), kW, ref.data(), kW, h, fx, fy);
          k::active().interp_16xh(got16.data(), 16, ref.data(), kW, h, fx, fy);
          k::active().interp_8xh(got8.data(), 8, ref.data(), kW, h, fx, fy);
          ASSERT_EQ(got_sad, want_sad)
              << k::backendName(b) << " h=" << h << " fx=" << fx << " fy=" << fy;
          ASSERT_EQ(got16, want16) << k::backendName(b) << " h=" << h;
          ASSERT_EQ(got8, want8) << k::backendName(b) << " h=" << h;
        }
      }
    }
  }
}

TEST(SimdPixels, AvgDiffAddResClampMatchScalar) {
  Prng rng(0xAD2ull);
  BackendGuard guard;
  std::vector<std::uint8_t> a(257), c(257);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : c) v = static_cast<std::uint8_t>(rng.below(256));
  std::array<std::int16_t, 64> res{};
  for (auto& v : res) v = static_cast<std::int16_t>(static_cast<int>(rng.range(-32768, 32767)));
  std::vector<std::int32_t> wide(100);
  for (auto& v : wide) v = static_cast<std::int32_t>(rng.range(-5000, 5000));

  for (const auto b : simdBackends()) {
    for (const std::size_t n : {1u, 7u, 16u, 63u, 255u, 257u}) {  // odd tails
      std::vector<std::uint8_t> want(n), got(n);
      k::setBackend(k::Backend::Scalar);
      k::active().avg_u8(a.data(), c.data(), want.data(), n);
      k::setBackend(b);
      k::active().avg_u8(a.data(), c.data(), got.data(), n);
      ASSERT_EQ(got, want) << "avg_u8 n=" << n << " " << k::backendName(b);
    }
    std::array<std::uint8_t, 256> want_px{}, got_px{};
    std::array<std::int16_t, 64> want_res{}, got_res{};
    std::vector<std::uint8_t> want_row(wide.size()), got_row(wide.size());
    k::setBackend(k::Backend::Scalar);
    k::active().add_res_8x8(want_px.data(), 16, a.data(), 16, res.data());
    k::active().diff_8x8(want_res.data(), c.data(), 16, a.data(), 16);
    k::active().clamp_store_row(wide.data(), want_row.data(), wide.size());
    k::setBackend(b);
    k::active().add_res_8x8(got_px.data(), 16, a.data(), 16, res.data());
    k::active().diff_8x8(got_res.data(), c.data(), 16, a.data(), 16);
    k::active().clamp_store_row(wide.data(), got_row.data(), wide.size());
    ASSERT_EQ(got_px, want_px) << "add_res_8x8 " << k::backendName(b);
    ASSERT_EQ(got_res, want_res) << "diff_8x8 " << k::backendName(b);
    ASSERT_EQ(got_row, want_row) << "clamp_store_row " << k::backendName(b);
  }
}

TEST(SimdPixels, MotionApiMatchesScalarIncludingFrameBorders) {
  const Frame cur = noiseFrame(64, 48, 11);
  const Frame ref = noiseFrame(64, 48, 22);
  // Vectors that keep the window inside, straddle the edge, and leave the
  // frame entirely (fully clamped), at all half-pel phases.
  std::vector<MotionVector> mvs;
  for (const int v : {-70, -33, -17, -2, -1, 0, 1, 2, 15, 31, 64, 90}) {
    mvs.push_back({static_cast<std::int16_t>(v), static_cast<std::int16_t>(-v / 2)});
    mvs.push_back({static_cast<std::int16_t>(v / 3), static_cast<std::int16_t>(v)});
  }

  BackendGuard guard;
  for (const auto b : simdBackends()) {
    for (int mb_y = 0; mb_y < 3; ++mb_y) {
      for (int mb_x = 0; mb_x < 4; ++mb_x) {
        for (const auto mv : mvs) {
          motion::LumaMb want_l{}, got_l{};
          motion::ChromaMb want_c{}, got_c{};
          k::setBackend(k::Backend::Scalar);
          const auto want_sad = motion::sadLuma(cur, ref, mb_x, mb_y, mv);
          motion::predictLuma(ref, mb_x * 16, mb_y * 16, mv, want_l);
          motion::predictChroma(ref.cbPlane(), 32, 24, mb_x * 8, mb_y * 8, mv, want_c);
          const auto want_act = motion::intraActivity(cur, mb_x, mb_y);
          k::setBackend(b);
          const auto got_sad = motion::sadLuma(cur, ref, mb_x, mb_y, mv);
          motion::predictLuma(ref, mb_x * 16, mb_y * 16, mv, got_l);
          motion::predictChroma(ref.cbPlane(), 32, 24, mb_x * 8, mb_y * 8, mv, got_c);
          const auto got_act = motion::intraActivity(cur, mb_x, mb_y);
          ASSERT_EQ(got_sad, want_sad) << k::backendName(b) << " mv=(" << mv.x << "," << mv.y
                                       << ") mb=(" << mb_x << "," << mb_y << ")";
          ASSERT_EQ(got_l, want_l) << k::backendName(b);
          ASSERT_EQ(got_c, want_c) << k::backendName(b);
          ASSERT_EQ(got_act, want_act) << k::backendName(b);
        }
      }
    }
  }
}

// --------------------------------------------------------------------- vlc

struct VlcOutcome {
  bool threw = false;
  std::string what;
  std::vector<rle::RunLevel> pairs;
  std::size_t end_pos = 0;

  bool operator==(const VlcOutcome& o) const {
    if (threw != o.threw || what != o.what || end_pos != o.end_pos ||
        pairs.size() != o.pairs.size()) {
      return false;
    }
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (pairs[i].run != o.pairs[i].run || pairs[i].level != o.pairs[i].level) return false;
    }
    return true;
  }
};

VlcOutcome decodeWith(k::Backend b, const std::vector<std::uint8_t>& bytes) {
  BackendGuard guard;
  k::setBackend(b);
  BitReader br(bytes);
  VlcOutcome o;
  try {
    o.pairs = vlc::getBlock(br);
  } catch (const std::exception& e) {
    o.threw = true;
    o.what = e.what();
  }
  o.end_pos = br.bitPosition();  // fault recovery resyncs from here
  return o;
}

TEST(SimdVlc, RoundTripMatchesScalarOnValidStreams) {
  Prng rng(0x1Cull);
  for (int rep = 0; rep < 400; ++rep) {
    // Random pair list spanning common and escape symbols.
    std::vector<rle::RunLevel> pairs;
    const int n = static_cast<int>(rng.below(12));
    for (int i = 0; i < n; ++i) {
      const int run = static_cast<int>(rng.below(rng.chance(0.8) ? 4 : 64));
      int level = static_cast<int>(rng.range(1, rng.chance(0.8) ? 4 : 32767));
      if (rng.chance(0.5)) level = -level;
      pairs.push_back(rle::RunLevel{static_cast<std::uint8_t>(run),
                                    static_cast<std::int16_t>(level)});
    }
    BitWriter bw;
    vlc::putBlock(bw, pairs);
    if (rng.chance(0.5)) bw.put(0x2A, 7);  // trailing bits must be untouched
    const auto bytes = bw.finish();

    const VlcOutcome want = decodeWith(k::Backend::Scalar, bytes);
    ASSERT_FALSE(want.threw);
    ASSERT_EQ(want.pairs.size(), pairs.size());
    for (const auto b : simdBackends()) {
      const VlcOutcome got = decodeWith(b, bytes);
      ASSERT_TRUE(got == want) << k::backendName(b) << " rep=" << rep;
    }
  }
}

TEST(SimdVlc, CorruptAndTruncatedStreamsMatchScalarExactly) {
  Prng rng(0xBADull);
  for (int rep = 0; rep < 600; ++rep) {
    std::vector<std::uint8_t> bytes(rng.below(40));
    for (auto& v : bytes) v = static_cast<std::uint8_t>(rng.below(256));
    // Bias some cases toward long zero runs (malformed Exp-Golomb) and
    // all-ones (escape floods).
    if (rep % 5 == 0) std::fill(bytes.begin(), bytes.end(), 0x00);
    if (rep % 7 == 0) std::fill(bytes.begin(), bytes.end(), 0xFF);

    const VlcOutcome want = decodeWith(k::Backend::Scalar, bytes);
    for (const auto b : simdBackends()) {
      const VlcOutcome got = decodeWith(b, bytes);
      ASSERT_TRUE(got == want) << k::backendName(b) << " rep=" << rep << " threw=" << want.threw
                               << " what=" << want.what << "/" << got.what << " pos="
                               << want.end_pos << "/" << got.end_pos;
    }
  }
}

// -------------------------------------------------------------- decode pin

TEST(SimdDecodePin, CyclePinHoldsUnderEveryBackend) {
  VideoGenParams vp;
  vp.width = 96;
  vp.height = 80;
  vp.frames = 5;
  vp.seed = 3;
  vp.detail = 8;
  vp.noise_level = 0.0;
  vp.motion_speed = 4;
  CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.qscale = 14;
  cp.gop = {9, 3};

  BackendGuard guard;
  for (const auto b : k::availableBackends()) {
    k::setBackend(b);
    // Re-generate and re-encode under this backend too: the whole producer
    // side must be bit-identical for the pinned stream to even exist.
    const auto frames = generateVideo(vp);
    Encoder enc(cp);
    const auto bitstream = enc.encode(frames);

    app::EclipseInstance inst;
    app::DecodeApp dec(inst, bitstream);
    const sim::Cycle cycles = inst.run();
    ASSERT_TRUE(dec.done()) << k::backendName(b);
    EXPECT_EQ(cycles, pin::kDecodePinCycles) << k::backendName(b);
    EXPECT_EQ(inst.simulator().eventsDispatched(), pin::kDecodePinEvents) << k::backendName(b);
    EXPECT_EQ(dec.macroblocksDecoded(), pin::kDecodePinMacroblocks) << k::backendName(b);
  }
}

}  // namespace
