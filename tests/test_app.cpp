// Tests for the application layer: instance building, resource allocation,
// setup-file loading, KPN decoder, trace rendering and run determinism.

#include <gtest/gtest.h>

#include "eclipse/app/kpn_media.hpp"
#include "eclipse/eclipse.hpp"

namespace {

using namespace eclipse;

media::VideoGenParams tinyVideo() {
  media::VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 7;
  vp.seed = 5;
  return vp;
}

media::CodecParams tinyCodec() {
  media::CodecParams cp;
  cp.width = 48;
  cp.height = 32;
  cp.gop = media::GopStructure{6, 3};
  return cp;
}

std::vector<std::uint8_t> tinyStream(media::Encoder& enc) {
  return enc.encode(media::generateVideo(tinyVideo()));
}

// ----------------------------------------------------------- instance

TEST(Instance, SramAllocatorAlignsAndExhausts) {
  app::InstanceParams ip;
  ip.sram.size_bytes = 1024;
  app::EclipseInstance inst(ip);
  const auto a = inst.allocSram(100);  // rounded to 128
  const auto b = inst.allocSram(64);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 128u);
  EXPECT_EQ(b % 64, 0u);
  (void)inst.allocSram(832);
  EXPECT_THROW((void)inst.allocSram(64), std::runtime_error);
}

TEST(Instance, TaskAllocatorExhaustsPerShell) {
  app::InstanceParams ip;
  ip.max_tasks = 2;
  app::EclipseInstance inst(ip);
  EXPECT_EQ(inst.allocTask(inst.dctShell()), 0);
  EXPECT_EQ(inst.allocTask(inst.dctShell()), 1);
  EXPECT_THROW((void)inst.allocTask(inst.dctShell()), std::runtime_error);
  EXPECT_EQ(inst.allocTask(inst.mcShell()), 0);  // independent tables
}

TEST(Instance, ConnectStreamLinksRemoteRows) {
  app::EclipseInstance inst;
  const auto h = inst.connectStream({&inst.vldShell(), 0, 0}, {&inst.rlsqShell(), 0, 0}, 256);
  const auto& prow = inst.vldShell().streams().row(h.producer_row);
  const auto& crow = inst.rlsqShell().streams().row(h.consumer_row);
  EXPECT_EQ(prow.remote_shell, inst.rlsqShell().id());
  EXPECT_EQ(prow.remote_row, h.consumer_row);
  EXPECT_EQ(crow.remote_shell, inst.vldShell().id());
  EXPECT_EQ(crow.remote_row, h.producer_row);
  EXPECT_TRUE(prow.is_producer);
  EXPECT_FALSE(crow.is_producer);
  EXPECT_EQ(prow.space, 256u);
  EXPECT_EQ(crow.space, 0u);
}

TEST(Instance, FromConfigAppliesOverrides) {
  const auto cfg = sim::Config::fromString(
      "[sram]\nsize_bytes = 65536\nbus_width_bytes = 8\n"
      "[shell]\nprefetch = false\ncache_line_bytes = 32\n"
      "[dct]\npipelined = true\n");
  const auto ip = app::InstanceParams::fromConfig(cfg);
  EXPECT_EQ(ip.sram.size_bytes, 65536u);
  EXPECT_EQ(ip.sram.bus_width_bytes, 8u);
  EXPECT_FALSE(ip.prefetch);
  EXPECT_EQ(ip.cache_line_bytes, 32u);
  EXPECT_TRUE(ip.dct.pipelined);
  // Untouched fields keep defaults.
  EXPECT_EQ(ip.dram.access_latency, app::InstanceParams{}.dram.access_latency);
}

// ---------------------------------------------------------- KPN level

TEST(KpnDecoder, BitExactAgainstGolden) {
  media::Encoder enc(tinyCodec());
  const auto bits = tinyStream(enc);
  app::KpnDecoder dec(bits);
  const auto out = dec.run();
  ASSERT_EQ(out.size(), enc.reconstructed().size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], enc.reconstructed()[i]);
}

TEST(KpnDecoder, EdgeStatisticsAccumulate) {
  media::Encoder enc(tinyCodec());
  const auto bits = tinyStream(enc);
  app::KpnDecoder dec(bits);
  (void)dec.run();
  EXPECT_GT(dec.graph().edge(dec.coefEdge()).totalProduced(), 0u);
  EXPECT_EQ(dec.graph().edge(dec.pixEdge()).totalProduced(),
            dec.graph().edge(dec.pixEdge()).totalConsumed());
}

TEST(KpnDecoder, SmallFifosStillComplete) {
  media::Encoder enc(tinyCodec());
  const auto bits = tinyStream(enc);
  app::KpnDecoder dec(bits, 2048);  // just above the largest packet
  const auto out = dec.run();
  EXPECT_EQ(out.size(), 7u);
  EXPECT_LE(dec.graph().edge(dec.coefEdge()).maxFill(), 2048u);
}

// ------------------------------------------------------------- traces

TEST(Trace, RenderSeriesShowsNameAndScale) {
  sim::TimeSeries s("demo series");
  for (sim::Cycle c = 0; c < 100; ++c) s.sample(c, static_cast<double>(c % 10));
  const auto txt = app::renderSeries(s);
  EXPECT_NE(txt.find("demo series"), std::string::npos);
  EXPECT_NE(txt.find('#'), std::string::npos);
}

TEST(Trace, CsvHasHeaderAndRows) {
  sim::TimeSeries a("a"), b("b");
  a.sample(10, 1.5);
  b.sample(20, 2.5);
  const auto csv = app::toCsv({&a, &b});
  EXPECT_NE(csv.find("cycle,a,b"), std::string::npos);
  EXPECT_NE(csv.find("10,1.5,"), std::string::npos);
  EXPECT_NE(csv.find("20,,2.5"), std::string::npos);
}

TEST(Trace, DifferentiateComputesRates) {
  sim::TimeSeries cum("c");
  cum.sample(0, 0);
  cum.sample(10, 50);   // rate 5
  cum.sample(20, 50);   // rate 0
  const auto rate = app::differentiate(cum, "rate");
  ASSERT_EQ(rate.size(), 2u);
  EXPECT_DOUBLE_EQ(rate.points()[0].second, 5.0);
  EXPECT_DOUBLE_EQ(rate.points()[1].second, 0.0);
}

TEST(Trace, ActivityStripsQuantizeCorrectly) {
  sim::TimeSeries busy("busy"), idle("idle"), half("half");
  for (sim::Cycle c = 0; c < 100; ++c) {
    busy.sample(c, 1.0);
    idle.sample(c, 0.0);
    half.sample(c, c % 2 == 0 ? 1.0 : 0.0);
  }
  const auto txt = app::renderActivityStrips({&busy, &idle, &half}, 20);
  // One '#' lane, one blank lane, one '.'/':' lane.
  EXPECT_NE(txt.find("busy |####################|"), std::string::npos);
  EXPECT_NE(txt.find("idle |                    |"), std::string::npos);
  EXPECT_NE(txt.find("half |"), std::string::npos);
  EXPECT_EQ(txt.find("half |####"), std::string::npos);
}

TEST(Trace, EmptySeriesRendersSafely) {
  sim::TimeSeries s("empty");
  EXPECT_NO_THROW((void)app::renderSeries(s));
  EXPECT_NO_THROW((void)app::renderStack({&s, nullptr}));
}

// ----------------------------------------------------- timed decoding

TEST(Apps, ProfilerCollectsSeries) {
  media::Encoder enc(tinyCodec());
  const auto bits = tinyStream(enc);
  app::InstanceParams ip;
  ip.profiler_period = 200;
  app::EclipseInstance inst(ip);
  app::DecodeApp dec(inst, bits);
  inst.run();
  ASSERT_TRUE(dec.done());
  const auto& row = dec.coefStream().consumer_shell->streams().row(dec.coefStream().consumer_row);
  EXPECT_GT(row.fill_series.size(), 10u);
  EXPECT_GT(row.fill_series.maxValue(), 0.0);
}

TEST(Apps, ProcessingStepGranularityMatchesThePaper) {
  // Section 5.3: "The target granularity for processing steps within the
  // Eclipse architecture is in the range of 10-1000 clock cycles."
  media::Encoder enc(tinyCodec());
  const auto bits = tinyStream(enc);
  app::EclipseInstance inst;
  app::DecodeApp dec(inst, bits);
  inst.run();
  ASSERT_TRUE(dec.done());
  for (shell::Shell* sh :
       {&inst.vldShell(), &inst.rlsqShell(), &inst.dctShell(), &inst.mcShell()}) {
    const auto& t = sh->tasks().row(0);
    ASSERT_GT(t.step_cycles.count(), 0u) << sh->name();
    EXPECT_GE(t.step_cycles.mean(), 10.0) << sh->name();
    EXPECT_LE(t.step_cycles.mean(), 2000.0) << sh->name();
  }
}

TEST(Apps, RunIsCycleDeterministic) {
  media::Encoder enc(tinyCodec());
  const auto bits = tinyStream(enc);
  auto runOnce = [&] {
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, bits);
    return inst.run();
  };
  const auto a = runOnce();
  EXPECT_EQ(a, runOnce());
  EXPECT_EQ(a, runOnce());
}

TEST(Apps, ThreeSimultaneousDecodes) {
  media::Encoder enc(tinyCodec());
  const auto bits = tinyStream(enc);
  app::InstanceParams ip;
  ip.sram.size_bytes = 96 * 1024;
  app::EclipseInstance inst(ip);
  std::vector<std::unique_ptr<app::DecodeApp>> apps;
  for (int i = 0; i < 3; ++i) apps.push_back(std::make_unique<app::DecodeApp>(inst, bits));
  inst.run(2'000'000'000);
  for (auto& a : apps) {
    ASSERT_TRUE(a->done());
    const auto frames = a->frames();
    for (std::size_t i = 0; i < frames.size(); ++i) {
      ASSERT_EQ(frames[i], enc.reconstructed()[i]);
    }
  }
}

TEST(Apps, BlockedStreamsShowDenialsUnderTinyBuffers) {
  media::Encoder enc(tinyCodec());
  const auto bits = tinyStream(enc);
  app::DecodeAppConfig cfg;
  cfg.coef_buffer = 1280;   // just above the worst-case coef frame
  cfg.blocks_buffer = 832;  // just above the blocks frame
  cfg.res_buffer = 832;
  cfg.pix_buffer = 448;
  app::EclipseInstance inst;
  app::DecodeApp dec(inst, bits);
  app::EclipseInstance inst2;
  app::DecodeApp dec2(inst2, bits, cfg);
  inst.run();
  inst2.run();
  ASSERT_TRUE(dec.done());
  ASSERT_TRUE(dec2.done());
  auto denials = [](app::DecodeApp& d) {
    return d.coefStream().producer_shell->streams().row(d.coefStream().producer_row).getspace_denied;
  };
  EXPECT_GT(denials(dec2), denials(dec));
}

}  // namespace
