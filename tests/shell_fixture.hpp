#pragma once

// Shared fixture for shell-level tests: a simulator with SRAM, message
// network and two shells (producer side / consumer side) connected by one
// configurable stream.

#include <gtest/gtest.h>

#include <memory>

#include "eclipse/mem/message_network.hpp"
#include "eclipse/mem/sram.hpp"
#include "eclipse/shell/shell.hpp"

namespace eclipse::test {

class TwoShellFixture : public ::testing::Test {
 protected:
  void SetUp() override { rebuild(shell::ShellParams{}); }

  void TearDown() override {
    // Frames suspended inside bus transfers hold guards into the SRAM
    // semaphores; destroy them before the models (see
    // Simulator::destroyProcesses).
    if (sim) sim->destroyProcesses();
  }

  /// Rebuilds the harness with custom shell parameters (same for both).
  void rebuild(shell::ShellParams base) {
    sim = std::make_unique<sim::Simulator>();
    sram = std::make_unique<mem::SharedSram>(*sim, mem::SramParams{});
    net = std::make_unique<mem::MessageNetwork>(*sim, 2);
    base.id = 0;
    base.name = "prod";
    prod = std::make_unique<shell::Shell>(*sim, base, *sram, *net);
    base.id = 1;
    base.name = "cons";
    cons = std::make_unique<shell::Shell>(*sim, base, *sram, *net);
  }

  /// Configures one stream between task 0 port 0 on both shells.
  void connect(std::uint32_t buffer_bytes, sim::Addr base_addr = 0x400) {
    shell::StreamConfig pc;
    pc.task = 0;
    pc.port = 0;
    pc.is_producer = true;
    pc.buffer_base = base_addr;
    pc.buffer_bytes = buffer_bytes;
    pc.remote_shell = 1;
    pc.remote_row = 0;
    pc.initial_space = buffer_bytes;
    prod_row = prod->configureStream(pc);

    shell::StreamConfig cc = pc;
    cc.is_producer = false;
    cc.remote_shell = 0;
    cc.remote_row = prod_row;
    cc.initial_space = 0;
    cons_row = cons->configureStream(cc);
    prod->streams().row(prod_row).remote_row = cons_row;

    prod->configureTask(0, shell::TaskConfig{});
    cons->configureTask(0, shell::TaskConfig{});
  }

  /// Runs a test coroutine to completion; fails the test on timeout or if
  /// any spawned process is still blocked when the event queue drains.
  void run(sim::Task<void> t, sim::Cycle horizon = 10'000'000) {
    sim->spawn(std::move(t), "test");
    const sim::Cycle end = sim->run(horizon);
    ASSERT_LT(end, horizon) << "simulation hit the horizon";
    ASSERT_EQ(sim->liveProcesses(), 0u) << "a process is blocked forever (deadlock)";
  }

  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<mem::SharedSram> sram;
  std::unique_ptr<mem::MessageNetwork> net;
  std::unique_ptr<shell::Shell> prod;
  std::unique_ptr<shell::Shell> cons;
  std::uint32_t prod_row = 0;
  std::uint32_t cons_row = 0;
};

}  // namespace eclipse::test
