// Tests for the stream caches and the explicit sync-driven coherency
// protocol of Section 5.2: invalidate-on-GetSpace, flush-before-putspace,
// read-modify-write partial lines, prefetching and hit/miss accounting.

#include <gtest/gtest.h>

#include <vector>

#include "eclipse/sim/prng.hpp"
#include "shell_fixture.hpp"

namespace {

using namespace eclipse;
using eclipse::test::TwoShellFixture;
using shell::Shell;
using shell::ShellParams;
using sim::Task;

class ShellCache : public TwoShellFixture {};

Task<void> repeatReadsHitCache(Shell& prod, Shell& cons) {
  std::uint8_t data[64];
  for (std::size_t i = 0; i < 64; ++i) data[i] = static_cast<std::uint8_t>(i);
  EXPECT_TRUE(co_await prod.getSpace(0, 0, 64));
  co_await prod.write(0, 0, 0, data);
  co_await prod.putSpace(0, 0, 64);

  co_await cons.waitSpace(0, 0, 64);
  std::uint8_t buf[16];
  for (int k = 0; k < 4; ++k) co_await cons.read(0, 0, 0, buf);  // same line
  EXPECT_EQ(buf[0], 0);
}

TEST_F(ShellCache, RepeatedReadsOfOneLineMissOnce) {
  // Disable prefetch so the miss accounting is exact.
  ShellParams p;
  p.prefetch = false;
  rebuild(p);
  connect(256);
  run(repeatReadsHitCache(*prod, *cons));
  const auto& row = cons->streams().row(cons_row);
  EXPECT_EQ(row.cache_misses, 1u);
  EXPECT_EQ(row.cache_hits, 3u);
}

Task<void> wraparoundStaleness(Shell& prod, Shell& cons, int rounds) {
  // Buffer = exactly two cache lines; every round rewrites the same SRAM
  // addresses. If invalidate-on-GetSpace or flush-before-putspace were
  // missing, the consumer would observe stale data from an earlier round.
  for (int r = 0; r < rounds; ++r) {
    std::uint8_t data[128];
    for (std::size_t i = 0; i < sizeof data; ++i) {
      data[i] = static_cast<std::uint8_t>(r * 31 + i);
    }
    co_await prod.waitSpace(0, 0, 128);
    co_await prod.write(0, 0, 0, data);
    co_await prod.putSpace(0, 0, 128);

    std::uint8_t got[128];
    co_await cons.waitSpace(0, 0, 128);
    co_await cons.read(0, 0, 0, got);
    for (std::size_t i = 0; i < sizeof got; ++i) {
      EXPECT_EQ(got[i], static_cast<std::uint8_t>(r * 31 + i)) << "round " << r << " byte " << i;
    }
    co_await cons.putSpace(0, 0, 128);
  }
}

TEST_F(ShellCache, CoherencyAcrossBufferWraparound) {
  connect(128);  // two 64-byte lines
  run(wraparoundStaleness(*prod, *cons, 50));
  EXPECT_GT(cons->streams().row(cons_row).cache_invalidations, 0u);
  EXPECT_GT(prod->streams().row(prod_row).cache_flushes, 0u);
}

// Producer commits in 24-byte pieces (crossing 64-byte cache lines), so
// flushes perform read-modify-write on shared lines. The consumer, with
// its own offset phase, must still see every byte correctly.
Task<void> partialWriter(Shell& prod) {
  std::uint32_t counter = 0;
  for (int p = 0; p < 40; ++p) {
    std::uint8_t chunk[24];
    for (auto& c : chunk) c = static_cast<std::uint8_t>(counter++);
    co_await prod.waitSpace(0, 0, 24);
    co_await prod.write(0, 0, 0, chunk);
    co_await prod.putSpace(0, 0, 24);
  }
}

Task<void> partialReader(Shell& cons) {
  std::uint32_t check = 0;
  for (int p = 0; p < 40; ++p) {
    std::uint8_t chunk[24];
    co_await cons.waitSpace(0, 0, 24);
    co_await cons.read(0, 0, 0, chunk);
    for (const auto c : chunk) EXPECT_EQ(c, static_cast<std::uint8_t>(check++));
    co_await cons.putSpace(0, 0, 24);
  }
}

TEST_F(ShellCache, PartialLineCommitsAreCoherent) {
  connect(192);
  sim->spawn(partialWriter(*prod), "w");
  sim->spawn(partialReader(*cons), "r");
  sim->run(10'000'000);
  ASSERT_EQ(sim->liveProcesses(), 0u);
}

Task<void> onePacket(Shell& prod, Shell& cons, std::uint32_t n) {
  std::vector<std::uint8_t> data(n, 0x5A);
  co_await prod.waitSpace(0, 0, n);
  co_await prod.write(0, 0, 0, data);
  co_await prod.putSpace(0, 0, n);
  co_await cons.waitSpace(0, 0, n);
  std::vector<std::uint8_t> got(n);
  co_await cons.read(0, 0, 0, got);
  co_await cons.putSpace(0, 0, n);
}

TEST_F(ShellCache, PrefetchReducesMissesOnSequentialReads) {
  auto missesWith = [&](bool prefetch) {
    ShellParams p;
    p.prefetch = prefetch;
    p.cache_lines_per_port = 2;
    rebuild(p);
    connect(512);
    sim->spawn(onePacket(*prod, *cons, 512), "t");
    sim->run(1'000'000);
    return cons->streams().row(cons_row).cache_misses;
  };
  const auto without = missesWith(false);
  const auto with = missesWith(true);
  EXPECT_LT(with, without);
}

TEST_F(ShellCache, PrefetchCounterAdvances) {
  connect(512);
  run(onePacket(*prod, *cons, 512));
  EXPECT_GT(cons->streams().row(cons_row).prefetches, 0u);
}

Task<void> bigBurst(Shell& prod, std::uint32_t n) {
  std::vector<std::uint8_t> data(n, 1);
  co_await prod.waitSpace(0, 0, n);
  co_await prod.write(0, 0, 0, data);
  co_await prod.putSpace(0, 0, n);
}

TEST_F(ShellCache, EvictionHandlesTransfersLargerThanCache) {
  // 2 lines of cache, 8-line transfer: forces eviction of dirty lines.
  connect(512);
  run(bigBurst(*prod, 512));
  const auto& row = prod->streams().row(prod_row);
  // All eight lines were written; flushes happen on eviction and commit.
  EXPECT_GE(row.cache_flushes, 8u);
  // Everything must have reached SRAM.
  for (sim::Addr a = 0; a < 512; ++a) {
    ASSERT_EQ(sram->storage().peek(0x400 + a), 1);
  }
}

TEST_F(ShellCache, SingleLineCacheStillCorrect) {
  ShellParams p;
  p.cache_lines_per_port = 1;
  p.prefetch = false;
  rebuild(p);
  connect(128);
  run(wraparoundStaleness(*prod, *cons, 20));
}

TEST_F(ShellCache, TinyLinesStillCorrect) {
  ShellParams p;
  p.cache_line_bytes = 16;
  p.cache_lines_per_port = 4;
  rebuild(p);
  connect(128);
  run(wraparoundStaleness(*prod, *cons, 20));
}

Task<void> statsAccumulate(Shell& prod, Shell& cons) {
  co_await onePacket(prod, cons, 128);
  co_await onePacket(prod, cons, 128);
}

TEST_F(ShellCache, TransferCountersTrackBytes) {
  connect(256);
  run(statsAccumulate(*prod, *cons));
  EXPECT_EQ(prod->streams().row(prod_row).bytes_transferred, 256u);
  EXPECT_EQ(cons->streams().row(cons_row).bytes_transferred, 256u);
  EXPECT_EQ(prod->streams().row(prod_row).write_calls, 2u);
  EXPECT_EQ(cons->streams().row(cons_row).read_calls, 2u);
}

// Stress: random interleavings of variable-size commits through a small
// buffer with aggressive cache pressure — data must survive bit-exactly.
Task<void> stressProducer(Shell& sh, int packets, std::uint64_t seed) {
  sim::Prng rng(seed);
  std::uint32_t counter = 0;
  for (int p = 0; p < packets; ++p) {
    const auto n = static_cast<std::uint32_t>(rng.range(1, 96));
    std::vector<std::uint8_t> buf(n);
    for (auto& b : buf) b = static_cast<std::uint8_t>(counter * 7 + 1), ++counter;
    co_await sh.waitSpace(0, 0, n);
    // Write in random sub-chunks at random offsets covering [0, n).
    std::uint32_t off = 0;
    while (off < n) {
      const auto k = static_cast<std::uint32_t>(rng.range(1, static_cast<std::int64_t>(n - off)));
      co_await sh.write(0, 0, off, std::span<const std::uint8_t>(buf).subspan(off, k));
      off += k;
    }
    co_await sh.putSpace(0, 0, n);
  }
}

Task<void> stressConsumer(Shell& sh, int packets, std::uint64_t seed, bool& ok) {
  sim::Prng rng(seed);
  std::uint32_t counter = 0;
  ok = true;
  for (int p = 0; p < packets; ++p) {
    const auto n = static_cast<std::uint32_t>(rng.range(1, 96));
    std::vector<std::uint8_t> buf(n);
    co_await sh.waitSpace(0, 0, n);
    co_await sh.read(0, 0, 0, buf);
    std::uint32_t off = 0;
    while (off < n) {  // consume the same sub-chunk pattern from the rng
      const auto k = static_cast<std::uint32_t>(rng.range(1, static_cast<std::int64_t>(n - off)));
      off += k;
    }
    for (const auto b : buf) {
      if (b != static_cast<std::uint8_t>(counter * 7 + 1)) ok = false;
      ++counter;
    }
    co_await sh.putSpace(0, 0, n);
  }
}

TEST_F(ShellCache, RandomizedStressIsBitExact) {
  ShellParams p;
  p.cache_line_bytes = 32;
  p.cache_lines_per_port = 2;
  rebuild(p);
  connect(128);
  bool ok = false;
  sim->spawn(stressProducer(*prod, 300, 9), "p");
  sim->spawn(stressConsumer(*cons, 300, 9, ok), "c");
  sim->run(100'000'000);
  ASSERT_EQ(sim->liveProcesses(), 0u);
  EXPECT_TRUE(ok);
}

}  // namespace
