// Mode-set applications and diff-based live reconfiguration (DESIGN §12):
// ModeSet cross-mode validation, the diffGraphs classification rules,
// field-only (drain-free) transitions, seamless mid-clip SD<->HD segment
// switching, live audio subgraph detach/attach, teardown lifecycle
// enforcement, fault containment across a mode switch, and the farm's
// mode-scheduled adaptive-decode jobs.

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "eclipse/app/audio_app.hpp"
#include "eclipse/app/configurator.hpp"
#include "eclipse/app/decode_app.hpp"
#include "eclipse/app/encode_app.hpp"
#include "eclipse/app/graph_spec.hpp"
#include "eclipse/app/mode_set.hpp"
#include "eclipse/eclipse.hpp"
#include "eclipse/farm/farm.hpp"

#include "decode_pin.hpp"

namespace {

using namespace eclipse;

/// One synthetic clip with its encoded bitstream and golden (encoder
/// reconstruction) frames — the same deterministic recipe the rest of the
/// suite uses.
struct Clip {
  std::vector<media::Frame> video;
  std::vector<std::uint8_t> bitstream;
  std::vector<media::Frame> golden;
};

Clip makeClip(int w, int h, int frames, std::uint64_t seed = 3) {
  media::VideoGenParams vp;
  vp.width = w;
  vp.height = h;
  vp.frames = frames;
  vp.seed = seed;
  vp.detail = 8;
  vp.noise_level = 0.0;
  vp.motion_speed = 4;
  media::CodecParams cp;
  cp.width = w;
  cp.height = h;
  cp.qscale = 14;
  cp.gop = {9, 3};
  media::Encoder enc(cp);
  Clip c;
  c.video = media::generateVideo(vp);
  c.bitstream = enc.encode(c.video);
  c.golden = enc.reconstructed();
  return c;
}

/// The HD decode mode of the tests/bench: wider stream FIFOs, same graph
/// topology, so an SD->HD transition re-binds four streams and keeps hdr.
app::DecodeAppConfig hdConfig() {
  app::DecodeAppConfig cfg;
  cfg.coef_buffer = 6144;
  cfg.blocks_buffer = 3072;
  cfg.res_buffer = 3072;
  cfg.pix_buffer = 3072;
  return cfg;
}

/// A reduced-budget decode mode over the identical topology: transitions
/// to/from it are field-only (no stream touched, no drain).
app::DecodeAppConfig ecoConfig() {
  app::DecodeAppConfig cfg;
  cfg.budget_cycles = 500;
  return cfg;
}

void expectFramesEqual(const std::vector<media::Frame>& got,
                       const std::vector<media::Frame>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << what << " frame " << i;
  }
}

// ------------------------------------------------------ ModeSet validation

TEST(ModeSet, RejectsDuplicateModeName) {
  app::GraphSpec a("sd");
  a.task({.name = "t", .shell = "dct", .software = {}});
  app::GraphSpec b("sd");
  b.task({.name = "t", .shell = "dct", .software = {}});
  app::ModeSet ms("fam");
  ms.mode(std::move(a));
  EXPECT_THROW(ms.mode(std::move(b)), app::GraphSpecError);
}

TEST(ModeSet, RejectsCrossModeShellMove) {
  // A task name shared by two modes must keep its shell: transitions keep
  // the task slot in place, they never migrate it.
  app::EclipseInstance inst;
  app::GraphSpec a("sd");
  a.task({.name = "x", .shell = "dct", .software = {}});
  app::GraphSpec b("hd");
  b.task({.name = "x", .shell = "mc", .software = {}});
  app::ModeSet ms("fam");
  ms.mode(std::move(a)).mode(std::move(b));
  try {
    ms.validate(inst);
    FAIL() << "expected GraphSpecError for a cross-mode shell move";
  } catch (const app::GraphSpecError& e) {
    EXPECT_NE(std::string(e.what()).find("rename the task if it moves"), std::string::npos)
        << e.what();
  }
}

TEST(ModeSet, AtThrowsOnUnknownModeAndListsKnownOnes) {
  app::GraphSpec a("sd");
  a.task({.name = "t", .shell = "dct", .software = {}});
  app::ModeSet ms("fam");
  ms.mode(std::move(a));
  try {
    (void)ms.at("4k");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("sd"), std::string::npos) << e.what();
  }
}

// --------------------------------------------------- diffGraphs semantics

TEST(GraphDiff, ClassifiesTasksByNameAndScalarFields) {
  app::GraphSpec cur("cur");
  cur.task({.name = "a", .shell = "dct", .software = {}})
      .task({.name = "b", .shell = "mc", .budget_cycles = 1000, .software = {}})
      .task({.name = "gone", .shell = "rlsq", .software = {}});
  app::GraphSpec tgt("tgt");
  tgt.task({.name = "a", .shell = "dct", .software = {}})               // kept
      .task({.name = "b", .shell = "mc", .budget_cycles = 250, .software = {}})  // updated
      .task({.name = "fresh", .shell = "vld", .software = {}});         // added

  const app::GraphDiff d = app::diffGraphs(cur, tgt);
  ASSERT_EQ(d.tasks_kept.size(), 1u);
  EXPECT_EQ(d.tasks_kept[0], "a");
  ASSERT_EQ(d.tasks_updated.size(), 1u);
  EXPECT_EQ(d.tasks_updated[0], "b");
  ASSERT_EQ(d.tasks_added.size(), 1u);
  EXPECT_EQ(d.tasks_added[0].name, "fresh");
  ASSERT_EQ(d.tasks_removed.size(), 1u);
  EXPECT_EQ(d.tasks_removed[0], "gone");
}

TEST(GraphDiff, StreamKeptOnlyWhenEndpointsAndBufferMatch) {
  app::GraphSpec cur("cur");
  cur.task({.name = "a", .shell = "dct", .software = {}})
      .task({.name = "b", .shell = "mc", .software = {}});
  cur.stream("same", "a", 0, "b", 0, 256)
      .stream("grown", "a", 1, "b", 1, 256)
      .stream("orphan", "a", 2, "b", 2, 256);
  app::GraphSpec tgt("tgt");
  tgt.task({.name = "a", .shell = "dct", .software = {}})
      .task({.name = "b", .shell = "mc", .software = {}});
  // "grown" keeps its name and endpoints but doubles its buffer: that is a
  // re-bind, reported as a remove+add pair, never an in-place mutation.
  tgt.stream("same", "a", 0, "b", 0, 256).stream("grown", "a", 1, "b", 1, 512);

  const app::GraphDiff d = app::diffGraphs(cur, tgt);
  ASSERT_EQ(d.streams_kept.size(), 1u);
  EXPECT_EQ(d.streams_kept[0], "same");
  ASSERT_EQ(d.streams_added.size(), 1u);
  EXPECT_EQ(d.streams_added[0].name, "grown");
  EXPECT_EQ(d.streams_added[0].buffer_bytes, 512u);
  ASSERT_EQ(d.streams_removed.size(), 2u);  // grown (re-bind) + orphan
  EXPECT_TRUE(d.touchesStreams());
  EXPECT_FALSE(d.empty());

  // Identical graphs: an empty, stream-free diff.
  const app::GraphDiff none = app::diffGraphs(cur, cur);
  EXPECT_TRUE(none.empty());
  EXPECT_FALSE(none.touchesStreams());
}

// ------------------------------------------- live transitions (tentpole)

TEST(ModeSwitch, MultiModeConstructorKeepsDecodePinWhenNoSwitchOccurs) {
  // Carrying a whole validated mode family must be timing-free: a
  // multi-mode decode that never switches is cycle-identical to the pin.
  const Clip clip = makeClip(96, 80, 5);
  app::EclipseInstance inst;
  app::DecodeApp dec(inst, clip.bitstream,
                     {{"sd", app::DecodeAppConfig{}}, {"hd", hdConfig()}, {"eco", ecoConfig()}});
  const sim::Cycle cycles = inst.run();
  ASSERT_TRUE(dec.done());
  EXPECT_EQ(cycles, pin::kDecodePinCycles);
  EXPECT_EQ(inst.simulator().eventsDispatched(), pin::kDecodePinEvents);
  EXPECT_EQ(dec.macroblocksDecoded(), pin::kDecodePinMacroblocks);
}

TEST(ModeSwitch, FieldOnlyTransitionIsDrainFreeAndInstant) {
  const Clip clip = makeClip(96, 80, 3);
  app::EclipseInstance inst;
  app::DecodeApp dec(inst, clip.bitstream, {{"sd", app::DecodeAppConfig{}}, {"eco", ecoConfig()}});
  inst.run(20'000);
  ASSERT_FALSE(dec.done());
  const sim::Cycle t0 = inst.simulator().now();

  const app::TransitionStats st = dec.switchMode("eco");
  EXPECT_EQ(st.from, "sd");
  EXPECT_EQ(st.to, "eco");
  EXPECT_EQ(st.cycles, 0u) << "field-only transitions must not advance the simulation";
  EXPECT_FALSE(st.drained);
  EXPECT_EQ(st.streams_kept, 5u);
  EXPECT_EQ(st.streams_removed, 0u);
  EXPECT_EQ(st.tasks_updated + st.tasks_kept, 5u);
  EXPECT_EQ(inst.simulator().now(), t0);
  EXPECT_EQ(dec.currentMode(), "eco");
  EXPECT_EQ(dec.handle().lastTransition().mmio_writes, st.mmio_writes);

  // The new budget is visible over the PI-bus, same path the CPU reads.
  EXPECT_EQ(inst.piBus().read(app::mmio::taskReg(inst.vldShell(), dec.vldTask(),
                                                 app::mmio::kTaskBudget)),
            500u);

  inst.run();
  ASSERT_TRUE(dec.done());
  expectFramesEqual(dec.frames(), clip.golden, "eco-mode tail");
}

TEST(ModeSwitch, MidClipSegmentSwitchSdToHdIsSeamless) {
  const Clip sd = makeClip(96, 80, 2);
  const Clip hd = makeClip(128, 96, 2, /*seed=*/4);

  app::EclipseInstance inst;
  app::DecodeApp dec(inst, sd.bitstream, {{"sd", app::DecodeAppConfig{}}, {"hd", hdConfig()}});
  inst.run();
  ASSERT_TRUE(dec.done());

  // The hdr stream is identical in both modes: its rows and SRAM buffer
  // must be reused in place across the transition.
  const app::AppStream hdr_before = dec.handle().stream("hdr");

  const app::TransitionStats st = dec.switchSegment("hd", hd.bitstream);
  EXPECT_EQ(st.tasks_kept, 5u);
  EXPECT_EQ(st.streams_kept, 1u);
  EXPECT_EQ(st.streams_removed, 4u);
  EXPECT_EQ(st.streams_added, 4u);
  EXPECT_GT(st.mmio_writes, 0u);
  EXPECT_EQ(dec.currentMode(), "hd");

  const app::AppStream hdr_after = dec.handle().stream("hdr");
  EXPECT_EQ(hdr_after.buffer_base, hdr_before.buffer_base);
  EXPECT_EQ(hdr_after.producer_row, hdr_before.producer_row);
  EXPECT_EQ(hdr_after.consumer_row, hdr_before.consumer_row);

  inst.run();
  ASSERT_TRUE(dec.done());

  // Seamless: bit-exact per segment, zero dropped frames, and the
  // macroblock count accumulates across both segments.
  ASSERT_EQ(dec.segmentsCompleted(), 1u);
  expectFramesEqual(dec.segmentFrames(0), sd.golden, "SD segment");
  expectFramesEqual(dec.frames(), hd.golden, "HD segment");
  EXPECT_EQ(dec.framesDropped(), 0u);
  EXPECT_EQ(dec.macroblocksDecoded(), 60u + 96u);
}

TEST(ModeSwitch, EncodeEcoModeIsFieldOnly) {
  media::VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 5;
  vp.seed = 5;
  const auto video = media::generateVideo(vp);
  media::CodecParams cp;
  cp.width = 48;
  cp.height = 32;
  cp.gop = media::GopStructure{6, 3};

  app::EncodeAppConfig eco;
  eco.budget_cycles = 500;
  app::EclipseInstance inst;
  app::EncodeApp enc(inst, video, cp, {{"hq", app::EncodeAppConfig{}}, {"eco", eco}});
  inst.run(30'000);
  ASSERT_FALSE(enc.done());

  // The encode reconstruction loop never fully drains mid-clip, so only
  // field-only modes are reachable while it runs — and they must be.
  const app::TransitionStats st = enc.switchMode("eco");
  EXPECT_EQ(st.cycles, 0u);
  EXPECT_FALSE(st.drained);
  EXPECT_EQ(st.streams_removed, 0u);
  EXPECT_EQ(enc.currentMode(), "eco");

  inst.run();
  ASSERT_TRUE(enc.done());
  media::Decoder check;
  EXPECT_GT(media::averagePsnr(video, check.decode(enc.bitstream())), 28.0);
}

TEST(ModeSwitch, AudioDecoderDetachReattachRoundTrip) {
  const auto tone = media::audio::generateTone(16384, 11);
  app::AudioAppConfig bypass;
  bypass.bypass = true;

  app::EclipseInstance inst;
  app::AudioDecodeApp aud(inst, media::audio::encode(tone),
                          {{"play", app::AudioAppConfig{}}, {"bypass", bypass}});
  inst.run(30'000);
  ASSERT_FALSE(aud.done());

  // Detach: the decoder task and its two streams leave the graph; the
  // partial drain finishes the in-flight blocks first, so nothing is lost.
  const app::TransitionStats detach = aud.switchMode("bypass");
  EXPECT_EQ(detach.tasks_removed, 1u);
  EXPECT_EQ(detach.streams_removed, 2u);
  EXPECT_EQ(detach.streams_added, 1u);
  EXPECT_EQ(aud.currentMode(), "bypass");

  // Re-attach before running again: the decoder comes back live and the
  // clip completes losslessly through the reattached subgraph.
  const app::TransitionStats attach = aud.switchMode("play");
  EXPECT_EQ(attach.tasks_added, 1u);
  EXPECT_EQ(attach.streams_added, 2u);
  EXPECT_EQ(aud.currentMode(), "play");

  inst.run();
  ASSERT_TRUE(aud.done());
  EXPECT_GT(media::audio::snrDb(tone, aud.pcm()), 25.0);
}

// --------------------------------------------- teardown lifecycle (asserts)

TEST(AppLifecycle, TeardownThrowsOnUndrainedRunningApp) {
  const Clip clip = makeClip(96, 80, 3);
  app::EclipseInstance inst;
  app::DecodeApp dec(inst, clip.bitstream);
  inst.run(20'000);
  ASSERT_FALSE(dec.done());
  ASSERT_FALSE(dec.handle().quiesced());

  // teardown() on a live, undrained graph is a programming error: stream
  // FIFOs still hold data and tasks are still scheduled against the rows.
  EXPECT_THROW(dec.teardown(), std::logic_error);
  EXPECT_TRUE(dec.handle().live()) << "a refused teardown must not half-destroy the app";

  // The documented sequence works: drain to quiescence, then tear down.
  EXPECT_TRUE(dec.handle().drain());
  dec.teardown();
  EXPECT_TRUE(dec.handle().tornDown());
}

TEST(AppLifecycle, ForcedTeardownDiscardsWedgedGraph) {
  const Clip clip = makeClip(96, 80, 3);
  app::EclipseInstance inst;
  const std::size_t sram0 = inst.sramBytesFree();
  app::DecodeApp dec(inst, clip.bitstream);
  inst.run(20'000);
  ASSERT_FALSE(dec.handle().quiesced());

  // The escape hatch for a graph that cannot drain (e.g. after a fault):
  // force-teardown discards in-flight data but still reclaims resources.
  dec.handle().teardown(/*force=*/true);
  EXPECT_TRUE(dec.handle().tornDown());
  EXPECT_EQ(inst.sramBytesFree(), sram0);
}

// ------------------------------------- fault injection across a transition

TEST(ModeFaults, InjectedHangIsContainedAcrossAFieldOnlySwitch) {
  const Clip clip = makeClip(96, 80, 3);
  const auto tone = media::audio::generateTone(2048, 7);

  app::EclipseInstance inst;
  app::DecodeApp dec(inst, clip.bitstream, {{"sd", app::DecodeAppConfig{}}, {"eco", ecoConfig()}});
  app::AudioDecodeApp aud(inst, media::audio::encode(tone));

  // PR-4 injector: wedge the RLSQ task mid-clip for longer than the
  // watchdog timeout, so a Hang fault latches and disables it.
  sim::FaultPlan plan;
  sim::FaultSpec f;
  f.kind = sim::FaultKind::TaskHang;
  f.shell = inst.rlsqShell().id();
  f.task = dec.rlsqTask();
  f.at_cycle = 10'000;
  f.delay_cycles = 5'000'000;  // never resumes within the test
  plan.faults.push_back(f);
  inst.armFaults(plan);
  inst.armWatchdogs(/*timeout=*/20'000, /*period=*/256);

  inst.run(200'000);
  ASSERT_FALSE(dec.done());
  const app::AppHealth before = dec.handle().health();
  ASSERT_EQ(before.faults.size(), 1u) << "hang was not detected";
  EXPECT_EQ(before.faults[0].task, "rlsq");

  // A live mode transition while the fault is latched: the field-only
  // switch must succeed without touching the faulted subgraph.
  const app::TransitionStats st = dec.switchMode("eco");
  EXPECT_EQ(st.cycles, 0u);
  EXPECT_FALSE(st.drained);
  EXPECT_EQ(dec.currentMode(), "eco");

  // Containment: the fault stays on the one task — the switch neither
  // cleared nor spread it — and the concurrent audio app is unaffected.
  const app::AppHealth after = dec.handle().health();
  ASSERT_EQ(after.faults.size(), 1u);
  EXPECT_EQ(after.faults[0].task, "rlsq");
  inst.run(2'000'000);
  EXPECT_TRUE(aud.done()) << "fault on the video pipeline leaked into audio";
  EXPECT_GT(media::audio::snrDb(tone, aud.pcm()), 25.0);

  // Classification: the decode pipeline is starved behind the disabled
  // RLSQ task, not deadlocked and not done.
  EXPECT_FALSE(dec.done());
  EXPECT_EQ(inst.classifyQuiescence(), app::Quiescence::Starved);

  // The wedged graph refuses a polite teardown but yields to force.
  EXPECT_THROW(dec.teardown(), std::logic_error);
  dec.handle().teardown(/*force=*/true);
  EXPECT_TRUE(dec.handle().tornDown());
}

// ------------------------------------------------- farm mode schedules

farm::ModeSegment seg(const std::string& mode, int w, int h, int frames) {
  farm::ModeSegment s;
  s.mode = mode;
  s.workload.width = w;
  s.workload.height = h;
  s.workload.frames = frames;
  return s;
}

TEST(FarmModes, ScheduledJobSwitchesLiveAndStaysDeterministic) {
  farm::Job job;
  job.name = "abr";
  job.schedule = {seg("sd", 96, 80, 2), seg("hd", 128, 96, 2), seg("sd", 96, 80, 2)};

  auto runOn = [&](int workers) {
    farm::FarmOptions opts;
    opts.workers = workers;
    farm::Farm f(opts);
    return f.submit(job).result.get();
  };

  const farm::JobResult r1 = runOn(1);
  EXPECT_EQ(r1.status, farm::JobStatus::Completed) << r1.error;
  EXPECT_TRUE(r1.bit_exact);
  EXPECT_EQ(r1.mode_switches, 2u);
  EXPECT_GT(r1.switch_mmio_writes, 0u);
  EXPECT_EQ(r1.macroblocks, 60u + 96u + 60u);
  EXPECT_EQ(r1.frames_dropped, 0u);

  // Determinism contract: the simulated fields — including the transition
  // accounting — are a pure function of the Job, worker count aside.
  const farm::JobResult r4 = runOn(4);
  EXPECT_EQ(r4.sim_cycles, r1.sim_cycles);
  EXPECT_EQ(r4.sim_events, r1.sim_events);
  EXPECT_EQ(r4.macroblocks, r1.macroblocks);
  EXPECT_EQ(r4.mode_switches, r1.mode_switches);
  EXPECT_EQ(r4.switch_mmio_writes, r1.switch_mmio_writes);
  EXPECT_EQ(r4.bit_exact, r1.bit_exact);
}

TEST(FarmModes, UnknownModeInScheduleFailsTheJobCleanly) {
  farm::Job job;
  job.name = "bad-mode";
  job.schedule = {seg("sd", 96, 80, 2), seg("4k", 96, 80, 2)};

  farm::FarmOptions opts;
  opts.workers = 1;
  farm::Farm f(opts);
  const farm::JobResult r = f.submit(job).result.get();
  EXPECT_EQ(r.status, farm::JobStatus::Error);
  EXPECT_NE(r.error.find("unknown decode mode"), std::string::npos) << r.error;

  // The worker survives the bad job: the next one completes normally.
  farm::Job ok;
  ok.name = "after";
  ok.schedule = {seg("sd", 96, 80, 2)};
  const farm::JobResult r2 = f.submit(ok).result.get();
  EXPECT_EQ(r2.status, farm::JobStatus::Completed) << r2.error;
  EXPECT_EQ(r2.mode_switches, 0u);
}

}  // namespace
