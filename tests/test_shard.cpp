// Sharded conservative-PDES kernel (DESIGN §13): ShardEngine semantics
// (lane-affine scheduling, run-until, quiescence), cross-shard injection
// legality (lookahead validation), seeded determinism stress under thread
// jitter at shards 1/2/4, the decode pin at every shard count (fusion
// rule), bus-silent split-plan traffic over the message network, and the
// fault-injection interaction: a lost-sync fault across a shard boundary
// must latch on the owning shard's task registers and classify as a true
// cross-shard deadlock.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "eclipse/eclipse.hpp"

#include "decode_pin.hpp"

namespace {

using namespace eclipse;

// ---------------------------------------------------------------------
// Raw-kernel helpers
// ---------------------------------------------------------------------

sim::Task<void> ticker(sim::Simulator& sim, int steps, sim::Cycle stride, std::uint64_t& acc) {
  for (int i = 0; i < steps; ++i) {
    co_await sim.delay(stride);
    acc += sim.now();
  }
}

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes, std::uint64_t h = 1469598103934665603ULL) {
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

// ---------------------------------------------------------------------
// Engine semantics
// ---------------------------------------------------------------------

TEST(Shard, SerialOracleIsTheDefaultAndShardCountOneStaysSerial) {
  sim::Simulator sim;
  EXPECT_FALSE(sim.sharded());
  EXPECT_EQ(sim.shardCount(), 1u);
  sim.setShardCount(1);  // explicit 1 must not build an engine
  EXPECT_FALSE(sim.sharded());

  std::uint64_t acc = 0;
  sim.spawn(ticker(sim, 10, 7, acc));
  EXPECT_EQ(sim.run(), 70u);
  EXPECT_EQ(sim.eventsDispatched(), 11u);  // initial resume + 10 delays
  EXPECT_TRUE(sim.quiescent());
  EXPECT_EQ(sim.liveProcesses(), 0u);
}

TEST(Shard, IndependentLanesMatchSerialTotals) {
  // The same six processes, distributed over 1, 2 and 4 lanes, must land
  // on the same final cycle, the same dispatched-event total and the same
  // per-process accumulators: per-lane clocks advance independently but
  // every event runs at the same simulated cycle as in the serial oracle.
  struct Totals {
    sim::Cycle end;
    std::uint64_t events;
    std::array<std::uint64_t, 6> acc;
  };
  auto runAt = [](std::uint32_t shards) -> Totals {
    sim::Simulator sim;
    sim.setShardCount(shards);
    Totals t{};
    t.acc = {};
    for (int i = 0; i < 6; ++i) {
      const auto lane = static_cast<sim::ShardId>(i % static_cast<int>(shards));
      sim.spawn(ticker(sim, 20 + i, 3 + static_cast<sim::Cycle>(i), t.acc[static_cast<std::size_t>(i)]),
                "ticker", lane);
    }
    t.end = sim.run();
    t.events = sim.eventsDispatched();
    return t;
  };

  const Totals serial = runAt(1);
  for (std::uint32_t shards : {2u, 4u}) {
    const Totals sharded = runAt(shards);
    EXPECT_EQ(sharded.end, serial.end) << "shards=" << shards;
    EXPECT_EQ(sharded.events, serial.events) << "shards=" << shards;
    EXPECT_EQ(sharded.acc, serial.acc) << "shards=" << shards;
  }
}

TEST(Shard, RunUntilQuiescenceAndLiveProcesses) {
  sim::Simulator sim;
  sim.setShardCount(2);
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  sim.spawn(ticker(sim, 100, 10, a), "a", 0);
  sim.spawn(ticker(sim, 100, 10, b), "b", 1);

  EXPECT_EQ(sim.run(100), 100u);
  EXPECT_FALSE(sim.quiescent());
  EXPECT_EQ(sim.liveProcesses(), 2u);

  EXPECT_EQ(sim.run(), 1000u);
  EXPECT_TRUE(sim.quiescent());
  EXPECT_EQ(sim.liveProcesses(), 0u);
  EXPECT_EQ(a, b);
}

TEST(Shard, SetShardCountRequiresPristineSimulatorAndIsIdempotent) {
  sim::Simulator dirty;
  std::uint64_t acc = 0;
  dirty.spawn(ticker(dirty, 1, 1, acc));
  EXPECT_THROW(dirty.setShardCount(2), std::logic_error);

  sim::Simulator sim;
  sim.setShardCount(2);
  sim.setShardCount(2);  // idempotent: same count on a live engine is a no-op
  EXPECT_EQ(sim.shardCount(), 2u);
  std::uint64_t x = 0;
  sim.spawn(ticker(sim, 5, 4, x), "x", 1);
  sim.run();
  sim.setShardCount(2);  // still fine mid-life with the same count
  EXPECT_EQ(sim.shardCount(), 2u);
  sim.setShardCount(4);  // drained + no live processes = pristine enough
  EXPECT_EQ(sim.shardCount(), 4u);
  sim.setShardCount(1);
  EXPECT_FALSE(sim.sharded());
}

// ---------------------------------------------------------------------
// Cross-shard injection legality
// ---------------------------------------------------------------------

sim::Task<void> injector(sim::Simulator& sim, sim::Cycle delay, std::uint64_t& delivered) {
  co_await sim.delay(1);
  std::uint64_t* slot = &delivered;
  sim.scheduleOnShard(1, delay, [slot] { ++*slot; });
}

TEST(Shard, CrossShardPushWithoutDeclaredLookaheadThrows) {
  sim::Simulator sim;
  sim.setShardCount(2);
  std::uint64_t delivered = 0;
  sim.spawn(injector(sim, 1, delivered), "inj", 0);
  EXPECT_THROW(sim.run(), std::logic_error);
  EXPECT_EQ(delivered, 0u);
}

TEST(Shard, CrossShardPushBelowLookaheadThrows) {
  sim::Simulator sim;
  sim.setShardCount(2);
  sim.declareCrossShardLatency(4);
  EXPECT_EQ(sim.crossShardLookahead(), 4u);
  std::uint64_t delivered = 0;
  sim.spawn(injector(sim, 2, delivered), "inj", 0);
  EXPECT_THROW(sim.run(), std::logic_error);
  EXPECT_EQ(delivered, 0u);
}

TEST(Shard, CrossShardPushAtLookaheadDelivers) {
  sim::Simulator sim;
  sim.setShardCount(2);
  sim.declareCrossShardLatency(4);
  std::uint64_t delivered = 0;
  sim.spawn(injector(sim, 4, delivered), "inj", 0);
  sim.run();
  EXPECT_EQ(delivered, 1u);
  const sim::ShardStats stats = sim.shardStats();
  EXPECT_EQ(stats.cross_events, 1u);
  EXPECT_EQ(stats.channel_overflows, 0u);
}

TEST(Shard, ExplicitRemoteSpawnFromInsideAWindowThrows) {
  sim::Simulator sim;
  sim.setShardCount(2);
  std::uint64_t unused = 0;
  auto offender = [](sim::Simulator& s, std::uint64_t& acc) -> sim::Task<void> {
    co_await s.delay(1);
    s.spawn(ticker(s, 1, 1, acc), "remote", 1);  // lane 0 -> lane 1 mid-window
  };
  sim.spawn(offender(sim, unused), "offender", 0);
  EXPECT_THROW(sim.run(), std::logic_error);
}

// ---------------------------------------------------------------------
// Determinism stress: shards x jitter (ISSUE 8 satellite)
// ---------------------------------------------------------------------

// Four process groups arranged in a ring; group g streams tokens to group
// (g+1) % 4 through explicit cross-shard injections at exactly the
// declared lookahead. The receiving accumulators fold with XOR/sum —
// commutative, so arrivals that share a cycle are order-insensitive and
// the totals must be bit-identical for every shard count and every
// thread interleaving the jitter provokes.
struct RingTotals {
  sim::Cycle end = 0;
  std::uint64_t events = 0;
  std::array<std::uint64_t, 4> hash{};
  std::array<std::uint64_t, 4> count{};

  bool operator==(const RingTotals&) const = default;
};

sim::Task<void> ringGen(sim::Simulator& sim, int g, int rounds, std::uint32_t shards,
                        std::array<std::uint64_t, 4>& hash, std::array<std::uint64_t, 4>& count) {
  for (int k = 0; k < rounds; ++k) {
    co_await sim.delay(1 + static_cast<sim::Cycle>((g + k) % 3));
    const int dst = (g + 1) % 4;
    const auto dst_lane = static_cast<sim::ShardId>(dst % static_cast<int>(shards));
    const std::uint64_t token = (static_cast<std::uint64_t>(g) << 32) ^
                                (static_cast<std::uint64_t>(k) * 0x9E3779B97F4A7C15ULL);
    std::uint64_t* h = &hash[static_cast<std::size_t>(dst)];
    std::uint64_t* c = &count[static_cast<std::size_t>(dst)];
    sim.scheduleOnShard(dst_lane, 2, [h, c, token] {
      *h ^= token;
      *c += 1;
    });
  }
}

RingTotals runRing(std::uint32_t shards, std::uint64_t jitter_seed) {
  sim::Simulator sim;
  sim.setShardCount(shards);
  if (shards > 1) {
    sim.declareCrossShardLatency(2);
    sim.setShardJitter(jitter_seed);
  }
  RingTotals t;
  for (int g = 0; g < 4; ++g) {
    const auto lane = static_cast<sim::ShardId>(g % static_cast<int>(shards));
    sim.spawn(ringGen(sim, g, 40, shards, t.hash, t.count), "ring", lane);
  }
  t.end = sim.run();
  t.events = sim.eventsDispatched();
  return t;
}

TEST(Shard, DeterminismStressAcrossShardCountsAndJitter) {
  const RingTotals serial = runRing(1, 0);
  for (std::uint64_t g : serial.count) EXPECT_EQ(g, 40u);

  for (std::uint32_t shards : {2u, 4u}) {
    for (std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{0xC0FFEE}, std::uint64_t{977}}) {
      const RingTotals t = runRing(shards, seed);
      EXPECT_EQ(t, serial) << "shards=" << shards << " jitter=" << seed;
    }
  }
}

// ---------------------------------------------------------------------
// The decode pin at every shard count (fusion rule)
// ---------------------------------------------------------------------

std::vector<std::uint8_t> pinnedBitstream() {
  media::VideoGenParams vp;
  vp.width = 96;
  vp.height = 80;
  vp.frames = 5;
  vp.seed = 3;
  vp.detail = 8;
  vp.noise_level = 0.0;
  vp.motion_speed = 4;
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.qscale = 14;
  cp.gop = {9, 3};
  media::Encoder enc(cp);
  return enc.encode(media::generateVideo(vp));
}

std::uint64_t framesHash(const std::vector<media::Frame>& frames) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const media::Frame& f : frames) {
    h = fnv1a(f.yPlane(), h);
    h = fnv1a(f.cbPlane(), h);
    h = fnv1a(f.crPlane(), h);
  }
  return h;
}

TEST(Shard, DecodePinHoldsAtEveryShardCount) {
  const auto bitstream = pinnedBitstream();
  std::uint64_t serial_hash = 0;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    app::EclipseInstance inst;
    app::ShardPlan plan;
    plan.shards = shards;
    const app::ShardAssignment& asg = inst.applyShardPlan(plan);
    if (shards > 1) {
      EXPECT_EQ(inst.simulator().shardCount(), shards);
      // Fusion rule: the decode shells all share the SRAM buses, so the
      // partitioner must fuse them onto the hub lane.
      EXPECT_EQ(asg.lanesUsed(), 1u) << "shards=" << shards;
    }

    app::DecodeApp dec(inst, bitstream);
    const sim::Cycle cycles = inst.run();
    ASSERT_TRUE(dec.done()) << "shards=" << shards;
    EXPECT_EQ(cycles, pin::kDecodePinCycles) << "shards=" << shards;
    EXPECT_EQ(inst.simulator().eventsDispatched(), pin::kDecodePinEvents) << "shards=" << shards;
    EXPECT_EQ(dec.macroblocksDecoded(), pin::kDecodePinMacroblocks) << "shards=" << shards;

    const std::uint64_t h = framesHash(dec.frames());
    if (shards == 1) {
      serial_hash = h;
    } else {
      EXPECT_EQ(h, serial_hash) << "sink payload diverged at shards=" << shards;
      // A fused plan executes on one populated lane; the engine must never
      // have gone parallel (that is what makes the pin structural).
      EXPECT_EQ(inst.simulator().shardStats().parallel_rounds, 0u);
    }
  }
}

// ---------------------------------------------------------------------
// Split plans: bus-silent cross-shard sync traffic
// ---------------------------------------------------------------------

// Drives one task slot through the shell's five-primitive interface the
// way a coprocessor control loop does: GetTask -> GetSpace -> PutSpace.
// No data is read or written, so nothing touches the SRAM buses and the
// scenario is legal under a split (non-fused) shard plan.
sim::Task<void> pump(shell::Shell& sh, sim::PortId port, std::uint32_t chunk, std::uint64_t rounds,
                     std::uint64_t& done) {
  while (done < rounds) {
    const shell::GetTaskResult r = co_await sh.getTask();
    if (co_await sh.getSpace(r.task, port, chunk)) {
      co_await sh.putSpace(r.task, port, chunk);
      ++done;
    }
  }
}

app::InstanceParams busSilentParams() {
  app::InstanceParams p;
  p.prefetch = false;  // a granted-window prefetch would touch the read bus
  return p;
}

struct SplitTotals {
  sim::Cycle cycles = 0;
  std::uint64_t events = 0;
  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
  std::uint64_t cross_msgs = 0;
};

SplitTotals runSplitPipeline(std::uint32_t shards, std::uint64_t rounds, std::uint64_t jitter) {
  app::EclipseInstance inst(busSilentParams());
  app::ShardPlan plan;
  plan.shards = shards;
  plan.split_memory_hub = true;
  if (shards > 1) {
    plan.pin["vld"] = 0;
    plan.pin["dct"] = 1;
  }
  inst.applyShardPlan(plan);
  if (jitter != 0) inst.simulator().setShardJitter(jitter);

  shell::Shell& prod = inst.vldShell();
  shell::Shell& cons = inst.dctShell();
  inst.connectStream({&prod, 0, 0}, {&cons, 0, 0}, 256);
  prod.configureTask(0, {});
  cons.configureTask(0, {});

  SplitTotals t;
  inst.simulator().spawn(pump(prod, 0, 64, rounds, t.produced), "producer", prod.shard());
  inst.simulator().spawn(pump(cons, 0, 64, rounds, t.consumed), "consumer", cons.shard());
  t.cycles = inst.simulator().run(2'000'000);
  t.events = inst.simulator().eventsDispatched();
  t.cross_msgs = inst.network().crossShardMessages();
  return t;
}

TEST(Shard, SplitPlanSyncTrafficMatchesSerialUnderJitter) {
  const SplitTotals serial = runSplitPipeline(1, 200, 0);
  EXPECT_EQ(serial.produced, 200u);
  EXPECT_EQ(serial.consumed, 200u);
  EXPECT_EQ(serial.cross_msgs, 0u);

  for (std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{0xDECAF}}) {
    const SplitTotals split = runSplitPipeline(2, 200, seed);
    EXPECT_EQ(split.produced, serial.produced) << "jitter=" << seed;
    EXPECT_EQ(split.consumed, serial.consumed) << "jitter=" << seed;
    EXPECT_EQ(split.cycles, serial.cycles) << "jitter=" << seed;
    EXPECT_EQ(split.events, serial.events) << "jitter=" << seed;
    EXPECT_GT(split.cross_msgs, 0u) << "the putspace ring must actually cross lanes";
  }
}

TEST(Shard, SplitPlanShardAffinityGuardsTheMemoryHub) {
  // A split plan homes the SRAM buses on the hub lane; touching them from
  // a remote lane is the exact violation the fusion rule exists to
  // prevent, and the bus guard must call it out rather than corrupt
  // arbitration state.
  app::EclipseInstance inst(busSilentParams());
  app::ShardPlan plan;
  plan.shards = 2;
  plan.split_memory_hub = true;
  plan.pin["vld"] = 0;
  plan.pin["dct"] = 1;
  inst.applyShardPlan(plan);

  shell::Shell& prod = inst.vldShell();
  shell::Shell& cons = inst.dctShell();
  inst.connectStream({&prod, 0, 0}, {&cons, 0, 0}, 256);
  prod.configureTask(0, {});
  cons.configureTask(0, {});

  // The consumer *reads payload* this time: the read walks the stream
  // cache into the SRAM read bus from lane 1 -> shard-affinity violation.
  auto readingConsumer = [](shell::Shell& sh) -> sim::Task<void> {
    for (;;) {
      const shell::GetTaskResult r = co_await sh.getTask();
      if (co_await sh.getSpace(r.task, 0, 64)) {
        std::array<std::uint8_t, 64> buf{};
        co_await sh.read(r.task, 0, 0, buf);
        co_await sh.putSpace(r.task, 0, 64);
      }
    }
  };
  std::uint64_t produced = 0;
  inst.simulator().spawn(pump(prod, 0, 64, 10, produced), "producer", prod.shard());
  inst.simulator().spawn(readingConsumer(cons), "consumer", cons.shard());
  EXPECT_THROW(inst.simulator().run(1'000'000), std::logic_error);
}

TEST(Shard, SplitPlanWithZeroMessageLatencyFailsAtPlanTime) {
  // With the putspace latency at 0 there is no legal conservative window
  // width for cross-lane traffic; the partitioner must say so when the
  // plan is applied, not via a logic_error on the first putspace mid-run.
  app::InstanceParams p = busSilentParams();
  p.message_latency = 0;
  app::EclipseInstance inst(p);
  app::ShardPlan plan;
  plan.shards = 2;
  plan.split_memory_hub = true;
  plan.pin["vld"] = 0;
  plan.pin["dct"] = 1;
  EXPECT_THROW(inst.applyShardPlan(plan), std::logic_error);
}

TEST(Shard, FusedPlanRejectsLateCreatedShellPinnedOffTheHub) {
  // computePartition rejects fused-plan pins off the hub lane for shells
  // that exist at plan time; a shell created *after* the plan (application
  // sinks) must hit the same wall instead of silently landing on a remote
  // lane where only the run-time bus guards could catch it — and a
  // bus-silent sink would never be caught at all.
  app::EclipseInstance inst(busSilentParams());
  app::ShardPlan plan;
  plan.shards = 2;  // fused: split_memory_hub stays false
  plan.pin["byte-sink-5"] = 1;  // the first late-created shell's name
  inst.applyShardPlan(plan);
  EXPECT_THROW(inst.createByteSink([] {}), std::logic_error);
}

TEST(Shard, LateCreatedShellPinBeyondPlanLanesThrows) {
  app::EclipseInstance inst(busSilentParams());
  app::ShardPlan plan;
  plan.shards = 2;
  plan.split_memory_hub = true;
  plan.pin["vld"] = 0;
  plan.pin["dct"] = 1;
  plan.pin["byte-sink-5"] = 7;  // out of range; the shell appears post-plan
  inst.applyShardPlan(plan);
  EXPECT_THROW(inst.createByteSink([] {}), std::logic_error);
}

// ---------------------------------------------------------------------
// Fault injection across shard boundaries (ISSUE 8 satellite)
// ---------------------------------------------------------------------

TEST(Shard, ConcurrentFaultHooksOnSplitLanesStayDeterministic) {
  // Both pumps send putspace messages from their own lanes inside the same
  // barrier window, and every send queries the armed injector: the hooks
  // must survive real lane concurrency (the TSan leg runs this), and the
  // per-spec trigger budgets must not depend on the interleaving — each
  // spec keys on a lane-affine shell, so the counts and the simulated
  // timing must match the serial oracle exactly.
  auto runWithDelayFaults = [](std::uint32_t shards, std::uint64_t jitter) {
    app::EclipseInstance inst(busSilentParams());
    app::ShardPlan plan;
    plan.shards = shards;
    plan.split_memory_hub = true;
    if (shards > 1) {
      plan.pin["vld"] = 0;
      plan.pin["dct"] = 1;
    }
    inst.applyShardPlan(plan);
    if (jitter != 0) inst.simulator().setShardJitter(jitter);

    shell::Shell& prod = inst.vldShell();
    shell::Shell& cons = inst.dctShell();
    inst.connectStream({&prod, 0, 0}, {&cons, 0, 0}, 256);
    prod.configureTask(0, {});
    cons.configureTask(0, {});

    sim::FaultPlan fp;
    for (const shell::Shell* sh : {&prod, &cons}) {
      sim::FaultSpec delay;
      delay.kind = sim::FaultKind::DelayPutspace;
      delay.shell = sh->id();
      delay.count = 25;  // first 25 messages from each shell arrive late
      delay.delay_cycles = 7;
      fp.faults.push_back(delay);
    }
    inst.armFaults(fp);

    SplitTotals t;
    inst.simulator().spawn(pump(prod, 0, 64, 200, t.produced), "producer", prod.shard());
    inst.simulator().spawn(pump(cons, 0, 64, 200, t.consumed), "consumer", cons.shard());
    t.cycles = inst.simulator().run(2'000'000);
    t.events = inst.simulator().eventsDispatched();
    t.cross_msgs = inst.faults().triggerCount(sim::FaultKind::DelayPutspace);
    return t;
  };

  const SplitTotals serial = runWithDelayFaults(1, 0);
  EXPECT_EQ(serial.produced, 200u);
  EXPECT_EQ(serial.consumed, 200u);
  EXPECT_EQ(serial.cross_msgs, 50u);
  for (std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{0xFAB}}) {
    const SplitTotals split = runWithDelayFaults(2, seed);
    EXPECT_EQ(split.produced, serial.produced) << "jitter=" << seed;
    EXPECT_EQ(split.consumed, serial.consumed) << "jitter=" << seed;
    EXPECT_EQ(split.cycles, serial.cycles) << "jitter=" << seed;
    EXPECT_EQ(split.events, serial.events) << "jitter=" << seed;
    EXPECT_EQ(split.cross_msgs, serial.cross_msgs) << "jitter=" << seed;
  }
}

TEST(Shard, CrossShardLostSyncDeadlockIsClassifiedDeadlocked) {
  // Drop every putspace leaving the producer's shell (lane 0). The
  // consumer on lane 1 blocks waiting for data it will never hear about;
  // the producer fills the FIFO and blocks waiting for space the consumer
  // will never return. Each task's blocked-on edge points at the *other*
  // shard's shell, and classifyQuiescence() must follow the chain across
  // the boundary and find the cycle.
  app::EclipseInstance inst(busSilentParams());
  app::ShardPlan plan;
  plan.shards = 2;
  plan.split_memory_hub = true;
  plan.pin["vld"] = 0;
  plan.pin["dct"] = 1;
  inst.applyShardPlan(plan);

  shell::Shell& prod = inst.vldShell();
  shell::Shell& cons = inst.dctShell();
  ASSERT_NE(prod.shard(), cons.shard());
  inst.connectStream({&prod, 0, 0}, {&cons, 0, 0}, 256);
  prod.configureTask(0, {});
  cons.configureTask(0, {});

  sim::FaultPlan fp;
  sim::FaultSpec drop;
  drop.kind = sim::FaultKind::DropPutspace;
  drop.shell = prod.id();
  drop.count = 0;  // unlimited: every sync message from the producer dies
  fp.faults.push_back(drop);
  inst.armFaults(fp);

  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
  inst.simulator().spawn(pump(prod, 0, 64, 1'000'000, produced), "producer", prod.shard());
  inst.simulator().spawn(pump(cons, 0, 64, 1'000'000, consumed), "consumer", cons.shard());
  inst.simulator().run(500'000);

  EXPECT_EQ(produced, 4u) << "producer commits exactly one FIFO of chunks, then starves";
  EXPECT_EQ(consumed, 0u);
  EXPECT_GT(inst.network().messagesDropped(), 0u);
  EXPECT_EQ(inst.classifyQuiescence(), app::Quiescence::Deadlocked);
}

TEST(Shard, WatchdogLatchesStallOnTheRemoteShardsTaskRegisters) {
  // Same lost-sync scenario, with every shell's watchdog armed over the
  // PI-bus. The stall must latch in the task/stream registers of the
  // shell that *owns* the blocked task — including the consumer shell on
  // the remote lane — not merely on the hub.
  app::EclipseInstance inst(busSilentParams());
  app::ShardPlan plan;
  plan.shards = 2;
  plan.split_memory_hub = true;
  plan.pin["vld"] = 0;
  plan.pin["dct"] = 1;
  inst.applyShardPlan(plan);

  shell::Shell& prod = inst.vldShell();
  shell::Shell& cons = inst.dctShell();
  inst.connectStream({&prod, 0, 0}, {&cons, 0, 0}, 256);
  prod.configureTask(0, {});
  cons.configureTask(0, {});

  sim::FaultPlan fp;
  sim::FaultSpec drop;
  drop.kind = sim::FaultKind::DropPutspace;
  drop.shell = prod.id();
  drop.count = 0;
  fp.faults.push_back(drop);
  inst.armFaults(fp);
  inst.armWatchdogs(5'000, 512);

  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
  inst.simulator().spawn(pump(prod, 0, 64, 1'000'000, produced), "producer", prod.shard());
  inst.simulator().spawn(pump(cons, 0, 64, 1'000'000, consumed), "consumer", cons.shard());
  inst.simulator().run(100'000);  // watchdog scans keep the queue alive

  EXPECT_GE(cons.stallsLatched(), 1u) << "stall must latch on the remote shard's shell";
  EXPECT_GE(prod.stallsLatched(), 1u);
  const shell::TaskRow& blocked = cons.tasks().row(0);
  EXPECT_TRUE(blocked.blocked);
  ASSERT_GE(blocked.blocked_row, 0);
  EXPECT_TRUE(cons.streams().row(static_cast<std::uint32_t>(blocked.blocked_row)).stalled);
  // Stall latching is detection-only: the cycle is still a deadlock.
  EXPECT_EQ(inst.classifyQuiescence(), app::Quiescence::Deadlocked);
}

}  // namespace
