// Unit tests for the simulation kernel: event queue, simulator, coroutine
// tasks, events/semaphores, PRNG, config parser and statistics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eclipse/sim/config.hpp"
#include "eclipse/sim/event_queue.hpp"
#include "eclipse/sim/prng.hpp"
#include "eclipse/sim/sim_event.hpp"
#include "eclipse/sim/simulator.hpp"
#include "eclipse/sim/stats.hpp"

namespace {

using namespace eclipse::sim;

// ---------------------------------------------------------------- events

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameCycleIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ReportsNextCycle) {
  EventQueue q;
  q.push(42, [] {});
  EXPECT_EQ(q.nextCycle(), 42u);
  EXPECT_EQ(q.size(), 1u);
}

// ------------------------------------------------------------- simulator

TEST(Simulator, AdvancesTimeToEvents) {
  Simulator sim;
  Cycle seen = 0;
  sim.schedule(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  bool late_ran = false;
  sim.schedule(10, [] {});
  sim.schedule(1000, [&] { late_ran = true; });
  const Cycle end = sim.run(500);
  EXPECT_EQ(end, 500u);
  EXPECT_FALSE(late_ran);
  EXPECT_FALSE(sim.quiescent());
  sim.run();
  EXPECT_TRUE(late_ran);
}

TEST(Simulator, StopRequestHonored) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(static_cast<Cycle>(i), [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
}

Task<void> delayer(Simulator& sim, Cycle n, Cycle& done_at) {
  co_await sim.delay(n);
  done_at = sim.now();
}

TEST(Simulator, SpawnedProcessRuns) {
  Simulator sim;
  Cycle done_at = 0;
  sim.spawn(delayer(sim, 25, done_at), "p");
  sim.run();
  EXPECT_EQ(done_at, 25u);
  EXPECT_EQ(sim.liveProcesses(), 0u);
}

Task<void> thrower(Simulator& sim) {
  co_await sim.delay(1);
  throw std::runtime_error("boom");
}

TEST(Simulator, ProcessExceptionPropagatesFromRun) {
  Simulator sim;
  sim.spawn(thrower(sim), "bad");
  EXPECT_THROW(sim.run(), std::runtime_error);
}

Task<int> inner(Simulator& sim) {
  co_await sim.delay(3);
  co_return 7;
}

Task<void> outer(Simulator& sim, int& result) {
  const int a = co_await inner(sim);
  const int b = co_await inner(sim);
  result = a + b;
}

TEST(Simulator, NestedTasksComposeAndAccumulateTime) {
  Simulator sim;
  int result = 0;
  sim.spawn(outer(sim, result), "outer");
  const Cycle end = sim.run();
  EXPECT_EQ(result, 14);
  EXPECT_EQ(end, 6u);
}

Task<void> zeroDelay(Simulator& sim, int& steps) {
  for (int i = 0; i < 5; ++i) {
    co_await sim.delay(0);  // must not suspend or advance time
    ++steps;
  }
}

TEST(Simulator, ZeroDelayCompletesImmediately) {
  Simulator sim;
  int steps = 0;
  sim.spawn(zeroDelay(sim, steps), "z");
  const Cycle end = sim.run();
  EXPECT_EQ(steps, 5);
  EXPECT_EQ(end, 0u);
}

TEST(Simulator, ManySpawnsReclaimFinishedFrames) {
  Simulator sim;
  Cycle sink = 0;
  for (int i = 0; i < 5000; ++i) {
    sim.spawn(delayer(sim, 1, sink), "burst");
  }
  sim.run();
  EXPECT_EQ(sim.liveProcesses(), 0u);
}

// ------------------------------------------------------------- sim events

Task<void> waiter(Simulator& sim, SimEvent& ev, int& got, const int& value) {
  co_await ev.wait();
  got = value;
  (void)sim;
}

Task<void> notifier(Simulator& sim, SimEvent& ev, int& value) {
  co_await sim.delay(10);
  value = 42;
  ev.notifyAll();
}

TEST(SimEvent, NotifyAllWakesAllWaiters) {
  Simulator sim;
  SimEvent ev(sim);
  int a = 0, b = 0, value = 0;
  sim.spawn(waiter(sim, ev, a, value), "a");
  sim.spawn(waiter(sim, ev, b, value), "b");
  sim.spawn(notifier(sim, ev, value), "n");
  sim.run();
  EXPECT_EQ(a, 42);
  EXPECT_EQ(b, 42);
  EXPECT_EQ(ev.waiterCount(), 0u);
}

TEST(SimEvent, NotifyOneWakesOldestOnly) {
  Simulator sim;
  SimEvent ev(sim);
  int a = 0, b = 0, value = 1;
  sim.spawn(waiter(sim, ev, a, value), "a");
  sim.spawn(waiter(sim, ev, b, value), "b");
  sim.schedule(5, [&] { ev.notifyOne(); });
  sim.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 0);
  EXPECT_EQ(ev.waiterCount(), 1u);
}

Task<void> semUser(Simulator& sim, Semaphore& sem, std::vector<int>& order, int id, Cycle hold) {
  co_await sem.acquire();
  order.push_back(id);
  co_await sim.delay(hold);
  sem.release();
}

TEST(Semaphore, GrantsInArrivalOrder) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(semUser(sim, sem, order, i, 10), "u");
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sem.available(), 1u);
}

TEST(Semaphore, CountedAllowsParallelHolders) {
  Simulator sim;
  Semaphore sem(sim, 2);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(semUser(sim, sem, order, i, 10), "u");
  }
  const Cycle end = sim.run();
  // 4 holders of 10 cycles each with 2 slots: finishes at 20, not 40.
  EXPECT_EQ(end, 20u);
}

// ------------------------------------------------------------------ prng

TEST(Prng, DeterministicForSeed) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, RangeIsInclusive) {
  Prng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// ---------------------------------------------------------------- config

TEST(Config, ParsesSectionsAndTypes) {
  const auto cfg = Config::fromString(
      "top = 1\n"
      "[bus]\n"
      "width_bytes = 16   # inline comment\n"
      "ratio = 2.5\n"
      "fast = true\n"
      "; full-line comment\n"
      "[cache]\n"
      "prefetch = off\n");
  EXPECT_EQ(cfg.getInt("top"), 1);
  EXPECT_EQ(cfg.getInt("bus.width_bytes"), 16);
  EXPECT_DOUBLE_EQ(cfg.getDouble("bus.ratio"), 2.5);
  EXPECT_TRUE(cfg.getBool("bus.fast"));
  EXPECT_FALSE(cfg.getBool("cache.prefetch"));
  EXPECT_FALSE(cfg.has("bus.nonexistent"));
  EXPECT_EQ(cfg.getInt("missing", -7), -7);
}

TEST(Config, RejectsMalformedInput) {
  EXPECT_THROW((void)Config::fromString("[unterminated\n"), std::runtime_error);
  EXPECT_THROW((void)Config::fromString("no equals sign\n"), std::runtime_error);
  EXPECT_THROW((void)Config::fromString("= novalue\n"), std::runtime_error);
}

TEST(Config, RejectsWrongTypes) {
  const auto cfg = Config::fromString("x = hello\n");
  EXPECT_THROW((void)cfg.getInt("x"), std::runtime_error);
  EXPECT_THROW((void)cfg.getBool("x"), std::runtime_error);
  EXPECT_THROW((void)cfg.getDouble("x"), std::runtime_error);
  EXPECT_EQ(cfg.getString("x"), "hello");
}

TEST(Config, MergeOverrides) {
  auto a = Config::fromString("x = 1\ny = 2\n");
  const auto b = Config::fromString("y = 3\nz = 4\n");
  a.merge(b);
  EXPECT_EQ(a.getInt("x"), 1);
  EXPECT_EQ(a.getInt("y"), 3);
  EXPECT_EQ(a.getInt("z"), 4);
}

TEST(Config, RoundTripsThroughToString) {
  const auto a = Config::fromString("[s]\nk = v\nn = 5\n");
  const auto b = Config::fromString(a.toString());
  EXPECT_EQ(b.getString("s.k"), "v");
  EXPECT_EQ(b.getInt("s.n"), 5);
}

// ----------------------------------------------------------------- stats

TEST(Stats, AccumulatorBasics) {
  Accumulator a;
  for (double v : {1.0, 2.0, 3.0, 4.0}) a.add(v);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_NEAR(a.variance(), 1.25, 1e-9);
}

TEST(Stats, AccumulatorEmptyIsSafe) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Stats, TimeSeriesWindows) {
  TimeSeries s("x");
  for (Cycle c = 0; c < 10; ++c) s.sample(c * 10, static_cast<double>(c));
  EXPECT_EQ(s.size(), 10u);
  EXPECT_DOUBLE_EQ(s.maxValue(), 9.0);
  EXPECT_DOUBLE_EQ(s.meanValueIn(0, 50), 2.0);   // samples 0..4
  EXPECT_DOUBLE_EQ(s.meanValueIn(50, 100), 7.0);  // samples 5..9
}

TEST(Stats, UtilizationClamped) {
  Utilization u;
  u.addBusy(150);
  EXPECT_DOUBLE_EQ(u.fraction(100), 1.0);
  EXPECT_DOUBLE_EQ(u.fraction(300), 0.5);
  EXPECT_DOUBLE_EQ(u.fraction(0), 0.0);
}

// Determinism property: identical seeds and schedules produce identical
// event orderings — the foundation of every reproducibility claim.
TEST(Simulator, DeterministicAcrossRuns) {
  auto runOnce = [] {
    Simulator sim;
    Prng rng(77);
    std::vector<Cycle> trace;
    for (int i = 0; i < 50; ++i) {
      sim.schedule(rng.below(100), [&trace, &sim] { trace.push_back(sim.now()); });
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
