// Tests for the shell task scheduler (Section 5.3): weighted round-robin
// with budgets, 'best guess' readiness from denied GetSpace requests, and
// idle/wake behaviour.

#include <gtest/gtest.h>

#include <vector>

#include "shell_fixture.hpp"

namespace {

using namespace eclipse;
using eclipse::test::TwoShellFixture;
using shell::Shell;
using shell::TaskConfig;
using sim::Task;
using sim::TaskId;

class ShellSched : public TwoShellFixture {};

Task<void> collectSchedule(Shell& sh, sim::Simulator& sim, int steps, sim::Cycle step_cost,
                           std::vector<TaskId>& order) {
  for (int i = 0; i < steps; ++i) {
    const auto r = co_await sh.getTask();
    order.push_back(r.task);
    co_await sim.delay(step_cost);
  }
}

TEST_F(ShellSched, RoundRobinAcrossEqualTasks) {
  connect(256);
  // Three always-ready tasks (no streams consulted: never blocked).
  for (TaskId t : {1, 2, 3}) prod->configureTask(t, TaskConfig{true, 100, 0});
  prod->setTaskEnabled(0, false);
  std::vector<TaskId> order;
  // Budget 100, step cost 100: each GetTask exhausts the budget => rotate.
  run(collectSchedule(*prod, *sim, 9, 100, order));
  ASSERT_EQ(order.size(), 9u);
  for (std::size_t i = 3; i < order.size(); ++i) {
    EXPECT_NE(order[i], order[i - 1]) << "budget-expired task was not rotated";
    EXPECT_EQ(order[i], order[i - 3]) << "rotation is not round-robin";
  }
}

TEST_F(ShellSched, BudgetKeepsTaskRunning) {
  connect(256);
  for (TaskId t : {1, 2}) prod->configureTask(t, TaskConfig{true, 1000, 0});
  prod->setTaskEnabled(0, false);
  std::vector<TaskId> order;
  // Step cost 100 with budget 1000: ~10 consecutive steps per task.
  run(collectSchedule(*prod, *sim, 20, 100, order));
  int switches = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] != order[i - 1]) ++switches;
  }
  EXPECT_LE(switches, 3);  // roughly one switch per 10 steps
}

TEST_F(ShellSched, TaskInfoWordDeliveredByGetTask) {
  connect(256);
  prod->configureTask(1, TaskConfig{true, 100, 0xDEAD});
  prod->setTaskEnabled(0, false);
  bool checked = false;
  run([](Shell& sh, bool& done) -> Task<void> {
    const auto r = co_await sh.getTask();
    EXPECT_EQ(r.task, 1);
    EXPECT_EQ(r.task_info, 0xDEADu);
    done = true;
  }(*prod, checked));
  EXPECT_TRUE(checked);
}

Task<void> blockedTaskSkipped(Shell& cons, std::vector<TaskId>& order, sim::Simulator& sim) {
  // Task 0's GetSpace fails (empty stream): best guess marks it blocked.
  const auto first = co_await cons.getTask();
  EXPECT_EQ(first.task, 0);
  EXPECT_FALSE(co_await cons.getSpace(0, 0, 16));
  // From now on only task 1 may be scheduled.
  for (int i = 0; i < 6; ++i) {
    const auto r = co_await cons.getTask();
    order.push_back(r.task);
    co_await sim.delay(50);
  }
}

TEST_F(ShellSched, DeniedTaskNotRescheduledUntilSpaceArrives) {
  connect(256);
  cons->configureTask(1, TaskConfig{true, 100, 0});
  std::vector<TaskId> order;
  run(blockedTaskSkipped(*cons, order, *sim));
  for (const auto t : order) EXPECT_EQ(t, 1);
}

Task<void> producerSide(Shell& prod, sim::Simulator& sim) {
  co_await sim.delay(500);
  std::uint8_t data[32] = {};
  EXPECT_TRUE(co_await prod.getSpace(0, 0, 32));
  co_await prod.write(0, 0, 0, data);
  co_await prod.putSpace(0, 0, 32);
}

Task<void> consumerSide(Shell& cons, sim::Simulator& sim, sim::Cycle& woke_at) {
  const auto r0 = co_await cons.getTask();
  EXPECT_EQ(r0.task, 0);
  EXPECT_FALSE(co_await cons.getSpace(0, 0, 32));
  // Only task 0 exists and it is blocked: GetTask must park the
  // coprocessor until the putspace message arrives.
  const auto r1 = co_await cons.getTask();
  EXPECT_EQ(r1.task, 0);
  woke_at = sim.now();
  EXPECT_TRUE(co_await cons.getSpace(0, 0, 32));
}

TEST_F(ShellSched, GetTaskParksUntilPutspaceMessage) {
  connect(256);
  sim::Cycle woke_at = 0;
  sim->spawn(producerSide(*prod, *sim), "p");
  sim->spawn(consumerSide(*cons, *sim, woke_at), "c");
  sim->run(1'000'000);
  ASSERT_EQ(sim->liveProcesses(), 0u);
  EXPECT_GE(woke_at, 500u);
  EXPECT_GT(cons->idleCycles(), 400u);
}

TEST_F(ShellSched, UtilizationReflectsIdleTime) {
  connect(256);
  sim::Cycle woke_at = 0;
  sim->spawn(producerSide(*prod, *sim), "p");
  sim->spawn(consumerSide(*cons, *sim, woke_at), "c");
  const auto end = sim->run(1'000'000);
  EXPECT_LT(cons->utilization(end), 0.5);
}

TEST_F(ShellSched, DisabledTasksAreNeverScheduled) {
  connect(256);
  prod->configureTask(1, TaskConfig{true, 100, 0});
  prod->setTaskEnabled(0, false);
  std::vector<TaskId> order;
  run(collectSchedule(*prod, *sim, 8, 10, order));
  for (const auto t : order) EXPECT_NE(t, 0);
}

TEST_F(ShellSched, SwitchCountsAreTracked) {
  connect(256);
  for (TaskId t : {1, 2}) prod->configureTask(t, TaskConfig{true, 50, 0});
  prod->setTaskEnabled(0, false);
  std::vector<TaskId> order;
  run(collectSchedule(*prod, *sim, 10, 60, order));
  EXPECT_GT(prod->taskSwitches(), 4u);
  EXPECT_EQ(prod->tasks().row(1).schedule_count + prod->tasks().row(2).schedule_count, 10u);
}

TEST_F(ShellSched, BusyCyclesChargedToRunningTask) {
  connect(256);
  prod->configureTask(1, TaskConfig{true, 1000, 0});
  prod->setTaskEnabled(0, false);
  std::vector<TaskId> order;
  run(collectSchedule(*prod, *sim, 5, 200, order));
  // 5 steps of 200 cycles; the last step's cycles are charged at the next
  // GetTask, so at least 4 steps are visible.
  EXPECT_GE(prod->tasks().row(1).busy_cycles, 800u);
}

}  // namespace
