// Unit + property tests for motion estimation and compensation.

#include <gtest/gtest.h>

#include "eclipse/media/motion.hpp"
#include "eclipse/media/video_gen.hpp"
#include "eclipse/sim/prng.hpp"

namespace {

using namespace eclipse::media;
using namespace eclipse::media::motion;
using eclipse::sim::Prng;

Frame noiseFrame(int w, int h, std::uint64_t seed) {
  Frame f(w, h);
  Prng rng(seed);
  for (auto& v : f.yPlane()) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : f.cbPlane()) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : f.crPlane()) v = static_cast<std::uint8_t>(rng.below(256));
  return f;
}

/// Copy of `src` translated by (dx, dy) full pels with edge clamping.
Frame translated(const Frame& src, int dx, int dy) {
  Frame out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      const int sx = std::clamp(x + dx, 0, src.width() - 1);
      const int sy = std::clamp(y + dy, 0, src.height() - 1);
      out.setY(x, y, src.yAt(sx, sy));
    }
  }
  return out;
}

TEST(SampleHalfPel, FullPelIsIdentity) {
  const Frame f = noiseFrame(32, 32, 1);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      ASSERT_EQ(sampleHalfPel(f.yPlane(), 32, 32, 2 * x, 2 * y), f.yAt(x, y));
    }
  }
}

TEST(SampleHalfPel, HalfPelIsRoundedAverage) {
  Frame f(16, 16);
  f.setY(3, 5, 10);
  f.setY(4, 5, 13);
  f.setY(3, 6, 20);
  f.setY(4, 6, 25);
  EXPECT_EQ(sampleHalfPel(f.yPlane(), 16, 16, 7, 10), (10 + 13 + 1) / 2);
  EXPECT_EQ(sampleHalfPel(f.yPlane(), 16, 16, 6, 11), (10 + 20 + 1) / 2);
  EXPECT_EQ(sampleHalfPel(f.yPlane(), 16, 16, 7, 11), (10 + 13 + 20 + 25 + 2) / 4);
}

TEST(SampleHalfPel, ClampsAtEdges) {
  const Frame f = noiseFrame(16, 16, 2);
  EXPECT_EQ(sampleHalfPel(f.yPlane(), 16, 16, -10, -10), f.yAt(0, 0));
  EXPECT_EQ(sampleHalfPel(f.yPlane(), 16, 16, 100, 100), f.yAt(15, 15));
}

TEST(PredictLuma, ZeroVectorIsCopy) {
  const Frame f = noiseFrame(48, 32, 3);
  LumaMb pred;
  predictLuma(f, 16, 16, MotionVector{0, 0}, pred);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      ASSERT_EQ(pred[static_cast<std::size_t>(y * 16 + x)], f.yAt(16 + x, 16 + y));
    }
  }
}

TEST(Sad, ZeroForIdenticalContent) {
  const Frame f = noiseFrame(48, 48, 4);
  EXPECT_EQ(sadLuma(f, f, 1, 1, MotionVector{0, 0}), 0u);
}

TEST(Average, RoundsUp) {
  LumaMb a, b, out;
  a.fill(10);
  b.fill(11);
  average(a, b, out);
  for (const auto v : out) EXPECT_EQ(v, 11);  // (10+11+1)/2
}

TEST(IntraActivity, FlatBlockIsZero) {
  Frame f(32, 32);
  for (auto& v : f.yPlane()) v = 77;
  EXPECT_EQ(intraActivity(f, 0, 0), 0u);
}

TEST(IntraActivity, TexturedBlockIsPositive) {
  const Frame f = noiseFrame(32, 32, 5);
  EXPECT_GT(intraActivity(f, 1, 1), 1000u);
}

// Property: full search recovers a known translation (interior MBs, away
// from the clamped borders).
class SearchRecovery : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SearchRecovery, FindsKnownShift) {
  const auto [dx, dy] = GetParam();
  const Frame ref = noiseFrame(96, 96, 77);
  // cur(x) = ref(x + d)  =>  prediction from ref needs mv = +d.
  const Frame cur = translated(ref, dx, dy);
  SearchParams sp;
  sp.range = 6;
  sp.half_pel = false;
  const auto r = search(cur, ref, 2, 2, sp);
  EXPECT_EQ(r.mv.x, 2 * dx);
  EXPECT_EQ(r.mv.y, 2 * dy);
  EXPECT_EQ(r.sad, 0u);
}

INSTANTIATE_TEST_SUITE_P(Shifts, SearchRecovery,
                         ::testing::Values(std::pair{0, 0}, std::pair{1, 0}, std::pair{0, 1},
                                           std::pair{-2, 3}, std::pair{4, -4}, std::pair{-5, -5},
                                           std::pair{6, 6}));

TEST(Search, ThreeStepFindsLargeShiftCheaply) {
  const Frame ref = noiseFrame(128, 128, 88);
  const Frame cur = translated(ref, 6, -6);
  SearchParams sp;
  sp.range = 8;
  sp.half_pel = false;
  sp.algo = SearchParams::Algo::ThreeStep;
  const auto r = search(cur, ref, 3, 3, sp);
  EXPECT_EQ(r.mv.x, 12);
  EXPECT_EQ(r.mv.y, -12);
}

TEST(Search, HalfPelRefinementNeverWorsens) {
  const auto frames = generateVideo(VideoGenParams{});
  ASSERT_GE(frames.size(), 2u);
  SearchParams full, half;
  full.half_pel = false;
  half.half_pel = true;
  for (int mb = 0; mb < 6; ++mb) {
    const auto rf = search(frames[1], frames[0], mb, 1, full);
    const auto rh = search(frames[1], frames[0], mb, 1, half);
    EXPECT_LE(rh.sad, rf.sad);
  }
}

TEST(PredictChroma, HalvesVector) {
  const Frame f = noiseFrame(32, 32, 9);
  ChromaMb a, b;
  // mv (4,0) half-pel -> chroma vector 2 half-pel -> 1 full chroma pel.
  predictChroma(f.cbPlane(), 16, 16, 4, 4, MotionVector{4, 0}, a);
  predictChroma(f.cbPlane(), 16, 16, 5, 4, MotionVector{0, 0}, b);
  EXPECT_EQ(a, b);
}

}  // namespace
