// Fault containment, watchdogs and control-plane recovery (DESIGN §9):
// injector window/budget semantics, the per-task fault register over the
// PI-bus, watchdog stall latching, quiescence classification (deadlock vs
// starvation vs clean drain) and the end-to-end decode recovery policy.

#include <gtest/gtest.h>

#include "eclipse/eclipse.hpp"

namespace {

using namespace eclipse;

std::vector<std::uint8_t> validStream(int frames = 5, int gop_n = 0) {
  media::VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = frames;
  vp.seed = 31;
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  if (gop_n > 0) cp.gop = media::GopStructure{gop_n, 2};
  media::Encoder enc(cp);
  return enc.encode(media::generateVideo(vp));
}

// ---------------------------------------------------------------------
// FaultInjector semantics
// ---------------------------------------------------------------------

TEST(Faults, InjectorHonorsWindowAndBudget) {
  sim::FaultInjector inj;
  sim::FaultSpec f;
  f.kind = sim::FaultKind::DropPutspace;
  f.shell = 3;
  f.at_cycle = 100;
  f.until_cycle = 200;
  f.count = 2;
  inj.arm(f);

  EXPECT_FALSE(inj.shouldDropPutspace(3, 50));   // before the window
  EXPECT_FALSE(inj.shouldDropPutspace(2, 150));  // wrong shell
  EXPECT_TRUE(inj.shouldDropPutspace(3, 150));
  EXPECT_TRUE(inj.shouldDropPutspace(3, 160));
  EXPECT_FALSE(inj.shouldDropPutspace(3, 170));  // budget exhausted
  EXPECT_FALSE(inj.shouldDropPutspace(3, 250));  // window closed

  inj.clear();
  inj.arm(f);
  EXPECT_TRUE(inj.shouldDropPutspace(3, 150)) << "clear() must reset trigger budgets";
}

// ---------------------------------------------------------------------
// Fault register over the PI-bus
// ---------------------------------------------------------------------

TEST(Faults, FaultRegistersReadableAndClearableOverPiBus) {
  app::EclipseInstance inst;
  shell::Shell& sh = inst.vldShell();
  sh.configureTask(0, shell::TaskConfig{});
  sh.latchFault(0, shell::FaultCause::Protocol, /*row=*/2, "unit-test fault");

  mem::PiBus& bus = inst.piBus();
  EXPECT_EQ(bus.read(app::mmio::taskReg(sh, 0, app::mmio::kTaskFaulted)), 1u);
  EXPECT_EQ(bus.read(app::mmio::taskReg(sh, 0, app::mmio::kTaskFaultCause)),
            static_cast<std::uint32_t>(shell::FaultCause::Protocol));
  EXPECT_EQ(bus.read(app::mmio::taskReg(sh, 0, app::mmio::kTaskFaultRow)), 2u);
  EXPECT_EQ(bus.read(app::mmio::taskReg(sh, 0, app::mmio::kTaskFaultCount)), 1u);
  // Latching a fault disables the task so siblings keep running.
  EXPECT_EQ(bus.read(app::mmio::taskReg(sh, 0, app::mmio::kTaskEnabled)), 0u);
  EXPECT_EQ(bus.read(app::mmio::ctlReg(sh, app::mmio::kCtlFaultsLatched)), 1u);

  // First fault wins; repeats only bump the count.
  sh.latchFault(0, shell::FaultCause::Bitstream, -1, "second fault");
  EXPECT_EQ(bus.read(app::mmio::taskReg(sh, 0, app::mmio::kTaskFaultCause)),
            static_cast<std::uint32_t>(shell::FaultCause::Protocol));
  EXPECT_EQ(bus.read(app::mmio::taskReg(sh, 0, app::mmio::kTaskFaultCount)), 2u);

  // Recovery step 1: clearing the latch does NOT re-enable (step 2 is a
  // separate, deliberate enable-bit write).
  bus.write(app::mmio::taskReg(sh, 0, app::mmio::kTaskFaulted), 0);
  EXPECT_EQ(bus.read(app::mmio::taskReg(sh, 0, app::mmio::kTaskFaulted)), 0u);
  EXPECT_EQ(bus.read(app::mmio::taskReg(sh, 0, app::mmio::kTaskEnabled)), 0u);
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

TEST(Faults, WatchdogLatchesStallOnStarvedStreamWithoutKillingTasks) {
  app::EclipseInstance inst;
  app::DecodeApp dec(inst, validStream());
  dec.handle().setTaskEnabled("rlsq", false);  // starve the coef stream
  inst.armWatchdogs(/*timeout=*/10'000, /*period=*/256);

  inst.run(200'000);
  EXPECT_FALSE(dec.done());
  const app::AppHealth h = dec.handle().health();
  ASSERT_FALSE(h.stalls.empty()) << "watchdog latched no stall";
  EXPECT_EQ(inst.classifyQuiescence(), app::Quiescence::Starved);
  // The stall latch is detection-only: no task may be faulted by a slow
  // (here: paused) peer.
  EXPECT_TRUE(h.faults.empty());

  // Un-starving the stream completes the clip — detection was harmless.
  dec.handle().setTaskEnabled("rlsq", true);
  inst.run(10'000'000);
  EXPECT_TRUE(dec.done());
}

TEST(Faults, WatchdogLatchesHangFaultOnWedgedTask) {
  app::EclipseInstance inst;
  app::DecodeApp dec(inst, validStream());

  sim::FaultPlan plan;
  sim::FaultSpec f;
  f.kind = sim::FaultKind::TaskHang;
  f.shell = inst.rlsqShell().id();
  f.task = dec.rlsqTask();
  f.at_cycle = 10'000;
  f.delay_cycles = 300'000;  // well past the watchdog timeout
  plan.faults.push_back(f);
  inst.armFaults(plan);
  inst.armWatchdogs(/*timeout=*/20'000, /*period=*/256);

  inst.run(600'000);
  const app::AppHealth h = dec.handle().health();
  ASSERT_FALSE(h.faults.empty()) << "hang was not detected";
  EXPECT_EQ(h.faults[0].task, "rlsq");
  EXPECT_EQ(h.faults[0].cause, static_cast<std::uint32_t>(shell::FaultCause::Hang));
  EXPECT_EQ(inst.faults().triggerCount(sim::FaultKind::TaskHang), 1u);
}

// ---------------------------------------------------------------------
// Quiescence classification
// ---------------------------------------------------------------------

TEST(Faults, ClassifierReportsCleanDrainAsDone) {
  app::EclipseInstance inst;
  app::DecodeApp dec(inst, validStream());
  inst.run(10'000'000);
  ASSERT_TRUE(dec.done());
  EXPECT_EQ(inst.classifyQuiescence(), app::Quiescence::Done);
}

TEST(Faults, ClassifierReportsDisabledSourceAsStarvation) {
  app::EclipseInstance inst;
  app::DecodeAppConfig cfg;
  cfg.vld_enabled = false;  // source never runs: everyone waits on it
  app::DecodeApp dec(inst, validStream(), cfg);
  inst.run(200'000);
  EXPECT_FALSE(dec.done());
  EXPECT_EQ(inst.classifyQuiescence(), app::Quiescence::Starved);
}

TEST(Faults, ClassifierDetectsTrueDeadlockCycle) {
  app::EclipseInstance inst;
  coproc::SoftCpu& cpu = inst.cpu();

  // Two software tasks, each needing a byte from the other before it will
  // produce one: a genuine circular wait, undetectable as starvation.
  auto need_input_first = [&cpu](sim::TaskId task, std::uint32_t) -> sim::Task<void> {
    if (!co_await cpu.shell().getSpace(task, /*port=*/0, 1)) co_return;
  };

  app::GraphSpec g("loop");
  g.task({.name = "x", .shell = "dsp-cpu", .software = need_input_first})
      .task({.name = "y", .shell = "dsp-cpu", .software = need_input_first});
  g.stream("xy", "x", /*out=*/1, "y", /*in=*/0, 256).stream("yx", "y", 1, "x", 0, 256);

  app::Configurator cfg(inst);
  app::AppHandle h = cfg.apply(g);
  inst.run(100'000);
  EXPECT_EQ(inst.classifyQuiescence(), app::Quiescence::Deadlocked);
}

// ---------------------------------------------------------------------
// End-to-end recovery: corruption mid-clip, resync at the next I-frame
// ---------------------------------------------------------------------

TEST(Faults, DecodeRecoversFromMidClipCorruption) {
  const int total_frames = 10;
  const auto bits = validStream(total_frames, /*gop=*/4);  // I-frames recur

  app::EclipseInstance inst;
  app::DecodeApp dec(inst, bits);

  std::vector<app::TaskFault> seen;
  dec.handle().onFault([&seen](const app::TaskFault& f) { seen.push_back(f); });
  dec.enableRecovery();

  sim::FaultPlan plan;
  plan.seed = 7;
  sim::FaultSpec f;
  f.kind = sim::FaultKind::CorruptPayload;
  f.shell = inst.vldShell().id();
  f.task = dec.vldTask();
  f.port = coproc::VldCoproc::kOutCoef;
  f.at_cycle = 30'000;  // mid-clip
  f.count = 2;
  f.xor_mask = 0xff;
  plan.faults.push_back(f);
  inst.armFaults(plan);

  const auto end = inst.run(50'000'000);
  ASSERT_LT(end, 50'000'000u) << "recovery hung";
  ASSERT_TRUE(dec.done()) << "clip did not finish after recovery";

  // The fault latched, was observable, and the policy recovered from it.
  ASSERT_FALSE(seen.empty()) << "corruption caused no fault";
  EXPECT_NE(seen[0].cause, 0u);
  EXPECT_GE(dec.recoveries(), 1u);
  EXPECT_GE(inst.faults().triggerCount(sim::FaultKind::CorruptPayload), 1u);

  // Graceful degradation accounting: pictures were lost, not invented.
  EXPECT_GE(dec.framesDropped() + inst.vld().picturesSkipped(), 1u);
  EXPECT_LT(dec.frames().size(), static_cast<std::size_t>(total_frames));
  EXPECT_GT(dec.frames().size(), 0u);

  // After recovery the latch was acknowledged over the PI-bus.
  EXPECT_TRUE(dec.handle().health().faults.empty());
}

}  // namespace
