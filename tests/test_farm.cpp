// eclipse_farm: deterministic batch serving on worker threads (DESIGN §10).
//
// The load-bearing property checked here is the determinism contract: a
// job's *simulated* result (cycles, events, macroblocks, bit-exactness) is
// a pure function of the Job — independent of worker count, submission
// order, and whether it executes on a cold or a recycled instance. The
// pinned decode job must land on the same 144885 cycles / 48109 events the
// rest of the suite pins.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "eclipse/app/decode_app.hpp"
#include "eclipse/farm/farm.hpp"
#include "eclipse/sim/fault.hpp"

#include "decode_pin.hpp"

using namespace eclipse;
using farm::Admission;
using farm::AppKind;
using farm::AppSpec;
using farm::Job;
using farm::JobResult;
using farm::JobStatus;

namespace {

// The suite-wide decode pin (tests/decode_pin.hpp): default 96x80x5
// workload on the default instance.
constexpr sim::Cycle kPinCycles = pin::kDecodePinCycles;
constexpr std::uint64_t kPinEvents = pin::kDecodePinEvents;
constexpr std::uint64_t kPinMacroblocks = pin::kDecodePinMacroblocks;

Job decodeJob(std::string name, int qscale = 14) {
  Job j;
  j.name = std::move(name);
  j.apps = {AppSpec{AppKind::Decode, farm::WorkloadDesc{}}};
  j.apps[0].workload.qscale = qscale;
  return j;
}

Job encodeJob(std::string name) {
  Job j;
  j.name = std::move(name);
  j.apps = {AppSpec{AppKind::Encode, farm::WorkloadDesc{}}};
  return j;
}

/// A mixed job list exercising decode, encode, a dual-decode mix with a
/// different instance shape, and a distinct workload descriptor.
std::vector<Job> mixedJobs() {
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(decodeJob("dec-" + std::to_string(i)));
  for (int i = 0; i < 2; ++i) jobs.push_back(decodeJob("dec-q20-" + std::to_string(i), 20));
  for (int i = 0; i < 2; ++i) jobs.push_back(encodeJob("enc-" + std::to_string(i)));
  for (int i = 0; i < 2; ++i) {
    Job j;
    j.name = "dual-dec-" + std::to_string(i);
    j.apps = {AppSpec{}, AppSpec{}};
    j.config.set("sram.size_bytes", std::int64_t{64 * 1024});
    jobs.push_back(j);
  }
  return jobs;
}

struct SimFields {
  JobStatus status;
  sim::Cycle cycles;
  std::uint64_t events;
  std::uint64_t macroblocks;
  bool bit_exact;
  double psnr_db;

  bool operator==(const SimFields&) const = default;
};

SimFields simFields(const JobResult& r) {
  return {r.status, r.sim_cycles, r.sim_events, r.macroblocks, r.bit_exact, r.psnr_db};
}

std::map<std::string, SimFields> runAll(std::vector<Job> jobs, int workers,
                                        std::shared_ptr<farm::WorkloadCache> cache = {}) {
  farm::FarmOptions opts;
  opts.workers = workers;
  opts.queue_capacity = jobs.size() + 1;
  opts.cache = std::move(cache);
  farm::Farm f(opts);
  auto futs = f.submitBatch(std::move(jobs));
  std::map<std::string, SimFields> out;
  for (auto& fut : futs) {
    const JobResult r = fut.get();
    out.emplace(r.name, simFields(r));
  }
  return out;
}

// Shared across tests: video generation + golden encode is the dominant
// cost of these small jobs, and the descriptors repeat.
std::shared_ptr<farm::WorkloadCache> sharedCache() {
  static auto cache = std::make_shared<farm::WorkloadCache>();
  return cache;
}

}  // namespace

TEST(Farm, DecodePinOnSingleWorker) {
  farm::FarmOptions opts;
  opts.workers = 1;
  opts.cache = sharedCache();
  farm::Farm f(opts);
  auto t = f.submit(decodeJob("pin"));
  ASSERT_EQ(t.admission, Admission::Accepted);
  const JobResult r = t.result.get();
  EXPECT_EQ(r.status, JobStatus::Completed);
  EXPECT_EQ(r.sim_cycles, kPinCycles);
  EXPECT_EQ(r.sim_events, kPinEvents);
  EXPECT_EQ(r.macroblocks, kPinMacroblocks);
  EXPECT_TRUE(r.bit_exact);
  EXPECT_EQ(r.worker, 0);
  EXPECT_FALSE(r.reused_instance);
}

TEST(Farm, BitIdenticalAcrossWorkerCountsAndOrder) {
  const std::vector<Job> jobs = mixedJobs();
  const auto serial = runAll(jobs, 1, sharedCache());

  std::vector<Job> reversed(jobs.rbegin(), jobs.rend());
  const auto parallel = runAll(std::move(reversed), 4, sharedCache());

  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, fields] : serial) {
    auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << name;
    EXPECT_EQ(fields, it->second) << "simulated result diverged for job " << name;
    EXPECT_EQ(fields.status, JobStatus::Completed) << name;
    EXPECT_TRUE(fields.bit_exact || fields.psnr_db > 25.0) << name;
  }
  // The pinned decode jobs land on the pinned numbers in both sweeps.
  EXPECT_EQ(serial.at("dec-0").cycles, kPinCycles);
  EXPECT_EQ(serial.at("dec-0").events, kPinEvents);
  EXPECT_EQ(parallel.at("dec-3").cycles, kPinCycles);
}

// Shard lanes compose with worker parallelism: a job may request lanes, the
// farm clamps them to its lane-thread budget (max(1, lane_threads/workers)
// per worker), and the simulated result — including the decode pin — never
// moves, whatever was granted. Lane count is part of the reuse shape, so a
// recycled sharded instance only serves jobs with the same grant.
TEST(Farm, ShardedJobsStayOnThePinAndComposeWithWorkers) {
  farm::FarmOptions opts;
  opts.workers = 1;
  opts.lane_threads = 4;  // budget of 4 => this worker may grant up to 4 lanes
  opts.cache = sharedCache();
  farm::Farm f(opts);

  Job serial = decodeJob("serial");
  Job two = decodeJob("two-lanes");
  two.shards = 2;
  Job eight = decodeJob("eight-lanes");  // over budget: clamped to 4
  eight.shards = 8;
  auto futs = f.submitBatch({serial, two, eight, two});
  std::vector<JobResult> rs;
  for (auto& fut : futs) rs.push_back(fut.get());

  EXPECT_EQ(rs[0].lanes, 1u);
  EXPECT_EQ(rs[1].lanes, 2u);
  EXPECT_EQ(rs[2].lanes, 4u);
  for (const JobResult& r : rs) {
    EXPECT_EQ(r.status, JobStatus::Completed) << r.name;
    EXPECT_EQ(r.sim_cycles, kPinCycles) << r.name;
    EXPECT_EQ(r.sim_events, kPinEvents) << r.name;
    EXPECT_EQ(r.macroblocks, kPinMacroblocks) << r.name;
    EXPECT_TRUE(r.bit_exact) << r.name;
  }
  // Same config but a different lane grant is a different shape (cold
  // rebuild); the repeated two-lane job reuses the recycled instance only
  // if it is still the live shape — here the 4-lane job displaced it.
  EXPECT_FALSE(rs[1].reused_instance);
  EXPECT_FALSE(rs[2].reused_instance);
  EXPECT_FALSE(rs[3].reused_instance);
  EXPECT_EQ(rs[3].lanes, 2u);
}

TEST(Farm, InstanceReuseIsBitIdenticalToColdBuild) {
  farm::FarmOptions opts;
  opts.workers = 1;
  opts.cache = sharedCache();
  farm::Farm f(opts);
  auto futs = f.submitBatch({decodeJob("first"), decodeJob("second"), decodeJob("third")});
  std::vector<JobResult> rs;
  for (auto& fut : futs) rs.push_back(fut.get());

  EXPECT_FALSE(rs[0].reused_instance);
  EXPECT_TRUE(rs[1].reused_instance);
  EXPECT_TRUE(rs[2].reused_instance);
  for (const JobResult& r : rs) {
    EXPECT_EQ(r.sim_cycles, kPinCycles) << r.name;
    EXPECT_EQ(r.sim_events, kPinEvents) << r.name;
    EXPECT_TRUE(r.bit_exact) << r.name;
  }
  const farm::FarmMetrics m = f.metrics();
  EXPECT_EQ(m.coldBuilds(), 1u);
  EXPECT_EQ(m.reused(), 2u);
}

TEST(Farm, ShapeChangeForcesColdRebuild) {
  farm::FarmOptions opts;
  opts.workers = 1;
  opts.cache = sharedCache();
  farm::Farm f(opts);
  Job wide = decodeJob("wide");
  wide.config.set("sram.bus_width_bytes", std::int64_t{8});
  auto futs = f.submitBatch({decodeJob("a"), std::move(wide), decodeJob("b")});
  std::vector<JobResult> rs;
  for (auto& fut : futs) rs.push_back(fut.get());

  EXPECT_FALSE(rs[0].reused_instance);
  EXPECT_FALSE(rs[1].reused_instance) << "different Config must not reuse the instance";
  EXPECT_FALSE(rs[2].reused_instance) << "shape changed back: cold again";
  EXPECT_EQ(rs[0].sim_cycles, kPinCycles);
  EXPECT_EQ(rs[2].sim_cycles, kPinCycles);
  EXPECT_GT(rs[1].sim_cycles, kPinCycles) << "narrow bus must cost cycles";
  for (const JobResult& r : rs) EXPECT_TRUE(r.bit_exact) << r.name;
}

TEST(Farm, MultiAppMixJobMatchesDirectRun) {
  // The dual-decode Section-6 mix as one farm job vs. the same mix run
  // directly on a hand-built instance.
  Job j;
  j.name = "dual";
  j.apps = {AppSpec{}, AppSpec{}};
  j.config.set("sram.size_bytes", std::int64_t{64 * 1024});

  farm::FarmOptions opts;
  opts.workers = 1;
  opts.cache = sharedCache();
  farm::Farm f(opts);
  const JobResult r = f.submit(std::move(j)).result.get();
  ASSERT_EQ(r.status, JobStatus::Completed);

  const auto w = sharedCache()->get(farm::WorkloadDesc{});
  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);
  app::DecodeApp a(inst, w->bitstream);
  app::DecodeApp b(inst, w->bitstream);
  const sim::Cycle cycles = inst.run();
  ASSERT_TRUE(a.done() && b.done());
  EXPECT_EQ(r.sim_cycles, cycles);
  EXPECT_EQ(r.macroblocks, a.macroblocksDecoded() + b.macroblocksDecoded());
}

TEST(Farm, BackpressureRejectsThenAcceptsAfterDrain) {
  // Queue-level admission is deterministic; check it directly first.
  farm::JobQueue q(2);
  farm::PendingJob pj;
  EXPECT_EQ(q.tryPush(std::move(pj)), Admission::Accepted);
  EXPECT_EQ(q.tryPush(std::move(pj)), Admission::Accepted);
  EXPECT_EQ(q.tryPush(std::move(pj)), Admission::QueueFull);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_EQ(q.tryPush(std::move(pj)), Admission::Accepted);
  q.close();
  EXPECT_EQ(q.tryPush(std::move(pj)), Admission::ShuttingDown);

  // Farm-level: a single slow worker behind a capacity-1 queue must shed
  // load from a fast submission burst, then accept again once drained.
  farm::FarmOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.cache = sharedCache();
  farm::Farm f(opts);
  std::vector<std::future<JobResult>> accepted;
  int rejected = 0;
  for (int i = 0; i < 10; ++i) {
    auto t = f.submit(decodeJob("burst-" + std::to_string(i)));
    if (t.admission == Admission::Accepted) {
      accepted.push_back(std::move(t.result));
    } else {
      EXPECT_EQ(t.admission, Admission::QueueFull);
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1) << "burst of 10 into a capacity-1 queue must shed load";
  for (auto& fut : accepted) EXPECT_EQ(fut.get().status, JobStatus::Completed);
  auto t = f.submit(decodeJob("after-drain"));
  EXPECT_EQ(t.admission, Admission::Accepted);
  EXPECT_EQ(t.result.get().sim_cycles, kPinCycles);
  const farm::FarmMetrics m = f.metrics();
  EXPECT_EQ(m.rejected, static_cast<std::uint64_t>(rejected));
}

TEST(Farm, PriorityLanesPopInOrder) {
  farm::JobQueue q(8);
  auto push = [&](const char* name, farm::Priority p) {
    farm::PendingJob pj;
    pj.job.name = name;
    pj.job.priority = p;
    ASSERT_EQ(q.tryPush(std::move(pj)), Admission::Accepted);
  };
  push("low-0", farm::Priority::Low);
  push("normal-0", farm::Priority::Normal);
  push("high-0", farm::Priority::High);
  push("normal-1", farm::Priority::Normal);
  push("high-1", farm::Priority::High);

  std::vector<std::string> order;
  for (int i = 0; i < 5; ++i) order.push_back(q.pop()->job.name);
  EXPECT_EQ(order,
            (std::vector<std::string>{"high-0", "high-1", "normal-0", "normal-1", "low-0"}));
}

TEST(Farm, FaultyJobFailsInIsolation) {
  farm::FarmOptions opts;
  opts.workers = 1;
  opts.cache = sharedCache();
  farm::Farm f(opts);

  const JobResult before = f.submit(decodeJob("before")).result.get();
  ASSERT_EQ(before.sim_cycles, kPinCycles);

  // A task hang long enough that the armed watchdog latches Hang; the
  // job reports its faults and must not poison the worker for successors.
  Job faulty = decodeJob("faulty");
  {
    sim::FaultSpec hang;
    hang.kind = sim::FaultKind::TaskHang;
    hang.shell = 1;  // rlsq; the single decode app's task sits in slot 0
    hang.task = 0;
    hang.at_cycle = 10'000;
    hang.delay_cycles = 600'000;  // well past the watchdog timeout
    faulty.faults.faults.push_back(hang);
  }
  faulty.watchdog_timeout = 20'000;
  faulty.max_cycles = 800'000;
  const JobResult rf = f.submit(std::move(faulty)).result.get();
  EXPECT_GT(rf.faults_latched + rf.stalls_latched, 0u)
      << "injected hang must be observed by the health summary";

  const JobResult after = f.submit(decodeJob("after")).result.get();
  EXPECT_EQ(after.status, JobStatus::Completed);
  EXPECT_EQ(after.sim_cycles, kPinCycles);
  EXPECT_EQ(after.sim_events, kPinEvents);
  EXPECT_TRUE(after.bit_exact);
  EXPECT_FALSE(after.reused_instance) << "a faulted job must retire its instance";
}

TEST(Farm, ConfigurationErrorIsContainedPerJob) {
  farm::FarmOptions opts;
  opts.workers = 1;
  opts.cache = sharedCache();
  farm::Farm f(opts);

  Job tiny = decodeJob("tiny-sram");
  tiny.config.set("sram.size_bytes", std::int64_t{4096});  // graph cannot fit
  const JobResult re = f.submit(std::move(tiny)).result.get();
  EXPECT_EQ(re.status, JobStatus::Error);
  EXPECT_FALSE(re.error.empty());

  const JobResult ok = f.submit(decodeJob("recovered")).result.get();
  EXPECT_EQ(ok.status, JobStatus::Completed);
  EXPECT_EQ(ok.sim_cycles, kPinCycles);
}

TEST(Farm, SubmitForBoundsTheWaitAndReportsTheOutcome) {
  // Queue level, where the full/closed states are under test control (no
  // worker draining behind our back): a bounded wait on a full queue times
  // out as QueueFull with the job returned untouched; once the queue
  // closes, the same call reports ShuttingDown instead of blocking.
  {
    farm::JobQueue q(1);
    farm::PendingJob filler;
    filler.job = decodeJob("filler");
    ASSERT_EQ(q.tryPush(std::move(filler)), Admission::Accepted);

    farm::PendingJob waiter;
    waiter.job = decodeJob("impatient");
    EXPECT_EQ(q.waitPushFor(std::move(waiter), std::chrono::milliseconds(5)),
              Admission::QueueFull);
    EXPECT_EQ(waiter.job.name, "impatient") << "a timed-out job is returned untouched";

    q.close();
    EXPECT_EQ(q.waitPushFor(std::move(waiter), std::chrono::milliseconds(5)),
              Admission::ShuttingDown);
  }

  // Farm level: the happy path is Accepted with a live future, and after
  // close() the ticket is ShuttingDown with a dead one.
  farm::FarmOptions opts;
  opts.workers = 1;
  opts.cache = sharedCache();
  farm::Farm f(opts);
  farm::SubmitTicket t = f.submitFor(decodeJob("patient"), std::chrono::seconds(60));
  ASSERT_EQ(t.admission, Admission::Accepted);
  ASSERT_TRUE(t.result.valid());
  const JobResult r = t.result.get();
  EXPECT_EQ(r.status, JobStatus::Completed);
  EXPECT_EQ(r.sim_cycles, kPinCycles);

  f.close();
  farm::SubmitTicket late = f.submitFor(decodeJob("late"), std::chrono::milliseconds(5));
  EXPECT_EQ(late.admission, Admission::ShuttingDown);
  EXPECT_FALSE(late.result.valid());
}

TEST(Farm, LaneGaugesTrackQueuedDepthsAndDrainToZero) {
  // Queue level first — no worker racing the reads, so depths are exact.
  farm::JobQueue q(8);
  auto pend = [](std::string name, farm::Priority p) {
    farm::PendingJob pj;
    pj.job.name = std::move(name);
    pj.job.priority = p;
    pj.queued = std::chrono::steady_clock::now();
    return pj;
  };
  ASSERT_EQ(q.tryPush(pend("h", farm::Priority::High)), Admission::Accepted);
  ASSERT_EQ(q.tryPush(pend("n-0", farm::Priority::Normal)), Admission::Accepted);
  ASSERT_EQ(q.tryPush(pend("n-1", farm::Priority::Normal)), Admission::Accepted);
  ASSERT_EQ(q.tryPush(pend("l", farm::Priority::Low)), Admission::Accepted);

  const auto g = q.gauges();
  EXPECT_EQ(g[static_cast<int>(farm::Priority::High)].depth, 1u);
  EXPECT_EQ(g[static_cast<int>(farm::Priority::Normal)].depth, 2u);
  EXPECT_EQ(g[static_cast<int>(farm::Priority::Low)].depth, 1u);
  EXPECT_GE(g[static_cast<int>(farm::Priority::Normal)].oldest_ms, 0.0)
      << "a non-empty lane reports its head job's age";
  for (int i = 0; i < 4; ++i) (void)q.pop();
  for (const farm::LaneGauge& lg : q.gauges()) {
    EXPECT_EQ(lg.depth, 0u);
    EXPECT_EQ(lg.oldest_ms, 0.0);
  }

  // Farm level: metrics() surfaces the same gauges, and a drained farm
  // reads all-zero.
  farm::FarmOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  opts.cache = sharedCache();
  farm::Farm f(opts);
  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 3; ++i) futs.push_back(f.submit(decodeJob("g-" + std::to_string(i))).result);
  for (auto& fut : futs) EXPECT_EQ(fut.get().status, JobStatus::Completed);
  f.drain();
  for (const farm::LaneGauge& lg : f.metrics().lanes) {
    EXPECT_EQ(lg.depth, 0u);
    EXPECT_EQ(lg.oldest_ms, 0.0);
  }
}

TEST(Farm, CloseRacingConcurrentSubmittersLosesNothing) {
  // Three producer threads hammer the three admission paths (submitWait,
  // submitFor, submitBatch) while the main thread closes the farm.
  // Whatever the interleaving: every future handed out resolves
  // terminally, and the metrics ledger balances exactly.
  farm::FarmOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 4;
  opts.cache = sharedCache();
  farm::Farm f(opts);

  auto tiny = [](std::string name) {
    Job j;
    j.name = std::move(name);
    j.apps = {AppSpec{AppKind::Decode, farm::WorkloadDesc{}}};
    j.apps[0].workload.width = 32;
    j.apps[0].workload.height = 32;
    j.apps[0].workload.frames = 1;
    return j;
  };

  std::vector<std::future<JobResult>> futs[3];
  std::thread producers[3];
  for (int t = 0; t < 3; ++t) {
    producers[t] = std::thread([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string name = "race-" + std::to_string(t) + "-" + std::to_string(i);
        try {
          if (t == 0) {
            futs[t].push_back(f.submitWait(tiny(name)));
          } else if (t == 1) {
            farm::SubmitTicket tk = f.submitFor(tiny(name), std::chrono::milliseconds(20));
            if (tk.admission == Admission::ShuttingDown) break;
            if (tk.admission == Admission::Accepted) futs[t].push_back(std::move(tk.result));
          } else {
            // NB: a close landing mid-batch throws out of submitBatch and
            // strands the handle to an already-accepted first job — the job
            // itself still runs and is delivered, which is exactly what the
            // ledger assertions below pin down (resolved <= accepted).
            auto batch = f.submitBatch({tiny(name + "a"), tiny(name + "b")});
            for (auto& fut : batch) futs[t].push_back(std::move(fut));
          }
        } catch (const std::runtime_error&) {
          break;  // submitWait/submitBatch throw once the farm is closing
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  f.close();
  for (auto& p : producers) p.join();

  std::uint64_t resolved = 0;
  for (auto& lane : futs) {
    for (auto& fut : lane) {
      const JobResult r = fut.get();  // must not hang or break the promise
      EXPECT_EQ(r.status, JobStatus::Completed) << r.name << ": " << r.error;
      ++resolved;
    }
  }
  EXPECT_GT(resolved, 0u) << "the race must admit at least something before close";
  f.drain();  // wait for delivery of accepted jobs whose batch handle was stranded
  const farm::FarmMetrics m = f.metrics();
  EXPECT_LE(resolved, m.accepted) << "no future without an accepted job behind it";
  EXPECT_EQ(m.completed + m.failed, m.accepted) << "every accepted job resolved terminally";
  EXPECT_EQ(m.failed, 0u) << "close never fails an already-accepted job";
}
