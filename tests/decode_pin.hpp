#pragma once

// The suite-wide decode determinism pin.
//
// The standard fixed-seed workload (96x80, 5 frames, qscale 14, GOP {9,3},
// seed 3, detail 8, no noise, motion speed 4) decoded on a default
// EclipseInstance must land on exactly these simulated numbers. They were
// captured from the seed build and may only change when the *timing model*
// changes — never from kernel data structures, SIMD backends, farm
// scheduling, or control-plane refactors. Every pin assertion in the test
// suite and the bench gates references these constants, so a deliberate
// timing-model change is a one-line update reviewed in one place.

#include <cstdint>

namespace eclipse::pin {

inline constexpr std::uint64_t kDecodePinCycles = 144885;
inline constexpr std::uint64_t kDecodePinEvents = 48109;
inline constexpr std::uint64_t kDecodePinMacroblocks = 150;

}  // namespace eclipse::pin
