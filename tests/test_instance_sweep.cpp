// Template-parameter property sweep (Section 2.3: "architecture templates
// provide a set of parameterized rules for the composition of a
// (sub)system"): functional correctness of the full decode application
// must be invariant across the architectural parameter space — timing
// changes, contents never do.

#include <gtest/gtest.h>

#include "eclipse/eclipse.hpp"

namespace {

using namespace eclipse;

struct SweepPoint {
  const char* name;
  app::InstanceParams ip;
};

std::vector<SweepPoint> sweepPoints() {
  std::vector<SweepPoint> pts;
  {
    SweepPoint p{"default", {}};
    pts.push_back(p);
  }
  {
    SweepPoint p{"tiny_caches", {}};
    p.ip.cache_line_bytes = 16;
    p.ip.cache_lines_per_port = 1;
    p.ip.prefetch = false;
    pts.push_back(p);
  }
  {
    SweepPoint p{"big_caches", {}};
    p.ip.cache_line_bytes = 128;
    p.ip.cache_lines_per_port = 8;
    pts.push_back(p);
  }
  {
    SweepPoint p{"narrow_everything", {}};
    p.ip.sram.bus_width_bytes = 2;
    p.ip.dram.bus_width_bytes = 2;
    p.ip.port_width_bytes = 4;
    pts.push_back(p);
  }
  {
    SweepPoint p{"slow_sync", {}};
    p.ip.sync_latency = 12;
    p.ip.gettask_latency = 9;
    p.ip.message_latency = 20;
    pts.push_back(p);
  }
  {
    SweepPoint p{"min_latency_handshakes", {}};
    p.ip.sync_latency = 1;
    p.ip.gettask_latency = 1;
    p.ip.io_latency = 1;
    p.ip.message_latency = 1;
    pts.push_back(p);
  }
  {
    SweepPoint p{"naive_scheduler", {}};
    p.ip.best_guess = false;
    pts.push_back(p);
  }
  {
    SweepPoint p{"slow_dram_pipelined_dct", {}};
    p.ip.dram.access_latency = 150;
    p.ip.dct.pipelined = true;
    pts.push_back(p);
  }
  {
    SweepPoint p{"line32_single", {}};
    p.ip.cache_line_bytes = 32;
    p.ip.cache_lines_per_port = 1;
    pts.push_back(p);
  }
  return pts;
}

class InstanceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InstanceSweep, DecodeBitExactAcrossParameterSpace) {
  media::VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 6;
  vp.seed = 77;
  const auto frames = media::generateVideo(vp);
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.gop = media::GopStructure{6, 3};
  media::Encoder enc(cp);
  const auto bits = enc.encode(frames);

  const auto pt = sweepPoints()[GetParam()];
  app::EclipseInstance inst(pt.ip);
  app::DecodeApp dec(inst, bits);
  const auto end = inst.run(8'000'000'000ULL);
  ASSERT_TRUE(dec.done()) << pt.name << " incomplete at " << end;
  const auto out = dec.frames();
  ASSERT_EQ(out.size(), frames.size()) << pt.name;
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], enc.reconstructed()[i]) << pt.name << " frame " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Points, InstanceSweep,
                         ::testing::Range<std::size_t>(0, sweepPoints().size()),
                         [](const auto& info) { return sweepPoints()[info.param].name; });

}  // namespace
