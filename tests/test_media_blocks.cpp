// Unit + property tests for the block-level codec primitives: bitstream
// I/O, DCT, scan orders, quantisation, run-length and VLC coding.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "eclipse/media/bitstream.hpp"
#include "eclipse/media/dct.hpp"
#include "eclipse/media/quant.hpp"
#include "eclipse/media/rle.hpp"
#include "eclipse/media/scan.hpp"
#include "eclipse/media/vlc.hpp"
#include "eclipse/sim/prng.hpp"

namespace {

using namespace eclipse::media;
using eclipse::sim::Prng;

// -------------------------------------------------------------- bitstream

TEST(Bitstream, BitRoundTrip) {
  BitWriter bw;
  bw.put(0b1011, 4);
  bw.put(0x3FF, 10);
  bw.putBit(1);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.get(4), 0b1011u);
  EXPECT_EQ(br.get(10), 0x3FFu);
  EXPECT_EQ(br.getBit(), 1u);
}

TEST(Bitstream, AlignPadsWithZeros) {
  BitWriter bw;
  bw.put(0b101, 3);
  bw.align();
  bw.put(0xAB, 8);
  const auto bytes = bw.finish();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0b10100000);
  EXPECT_EQ(bytes[1], 0xAB);
}

TEST(Bitstream, ReadPastEndThrows) {
  const std::vector<std::uint8_t> one{0xFF};
  BitReader br(one);
  (void)br.get(8);
  EXPECT_THROW((void)br.getBit(), BitstreamError);
}

TEST(Bitstream, DrainFullBytesKeepsPartial) {
  BitWriter bw;
  bw.put(0xAB, 8);
  bw.put(0b110, 3);  // partial byte stays behind
  const auto drained = bw.drainFullBytes();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], 0xAB);
  bw.put(0b01010, 5);
  const auto rest = bw.finish();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], 0b11001010);
}

class ExpGolombRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ExpGolombRoundTrip, Unsigned) {
  const std::uint32_t v = GetParam();
  BitWriter bw;
  bw.putUe(v);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.getUe(), v);
}

TEST_P(ExpGolombRoundTrip, SignedBothPolarities) {
  const auto v = static_cast<std::int32_t>(GetParam());
  for (const std::int32_t s : {v, -v}) {
    BitWriter bw;
    bw.putSe(s);
    const auto bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(br.getSe(), s);
  }
}

INSTANTIATE_TEST_SUITE_P(Values, ExpGolombRoundTrip,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 8u, 100u, 255u, 1023u, 65535u,
                                           1000000u));

TEST(Bitstream, ExpGolombSequenceProperty) {
  Prng rng(5);
  BitWriter bw;
  std::vector<std::uint32_t> vals;
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.below(1 << 16));
    vals.push_back(v);
    bw.putUe(v);
  }
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (const auto v : vals) ASSERT_EQ(br.getUe(), v);
}

// ------------------------------------------------------------------- DCT

Block randomBlock(Prng& rng, int amplitude) {
  Block b;
  for (auto& v : b) v = static_cast<std::int16_t>(rng.range(-amplitude, amplitude));
  return b;
}

TEST(Dct, RoundTripAccuracy) {
  Prng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Block in = randomBlock(rng, 255);
    Block coefs, back;
    dct::forward(in, coefs);
    dct::inverse(coefs, back);
    for (int i = 0; i < 64; ++i) {
      ASSERT_NEAR(in[static_cast<std::size_t>(i)], back[static_cast<std::size_t>(i)], 2)
          << "trial " << trial << " index " << i;
    }
  }
}

TEST(Dct, ConstantBlockHasOnlyDc) {
  Block in;
  in.fill(100);
  Block coefs;
  dct::forward(in, coefs);
  // DC = 8 * value for the orthonormal-ish scaling used (alpha/2 per dim).
  EXPECT_NEAR(coefs[0], 800, 2);
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(coefs[static_cast<std::size_t>(i)], 0, 1);
}

TEST(Dct, Linearity) {
  Prng rng(2);
  const Block a = randomBlock(rng, 100);
  const Block b = randomBlock(rng, 100);
  Block sum;
  for (int i = 0; i < 64; ++i) {
    sum[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
        a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)]);
  }
  Block fa, fb, fsum;
  dct::forward(a, fa);
  dct::forward(b, fb);
  dct::forward(sum, fsum);
  for (int i = 0; i < 64; ++i) {
    ASSERT_NEAR(fsum[static_cast<std::size_t>(i)],
                fa[static_cast<std::size_t>(i)] + fb[static_cast<std::size_t>(i)], 3);
  }
}

TEST(Dct, EnergyRoughlyPreserved) {
  Prng rng(3);
  const Block in = randomBlock(rng, 200);
  Block coefs;
  dct::forward(in, coefs);
  double e_in = 0, e_out = 0;
  for (int i = 0; i < 64; ++i) {
    e_in += static_cast<double>(in[static_cast<std::size_t>(i)]) * in[static_cast<std::size_t>(i)];
    e_out += static_cast<double>(coefs[static_cast<std::size_t>(i)]) * coefs[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(e_out / e_in, 1.0, 0.05);  // orthonormal transform (Parseval)
}

// ------------------------------------------------------------------ scan

class ScanOrderTest : public ::testing::TestWithParam<scan::Order> {};

TEST_P(ScanOrderTest, TableIsAPermutation) {
  const auto& t = scan::table(GetParam());
  std::set<int> seen(t.begin(), t.end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 63);
}

TEST_P(ScanOrderTest, RoundTrips) {
  Prng rng(4);
  Block in = randomBlock(rng, 1000);
  Block scanned, back;
  scan::toScan(in, scanned, GetParam());
  scan::fromScan(scanned, back, GetParam());
  EXPECT_EQ(in, back);
}

INSTANTIATE_TEST_SUITE_P(Orders, ScanOrderTest,
                         ::testing::Values(scan::Order::Zigzag, scan::Order::Alternate));

TEST(Scan, ZigzagStartsAsExpected) {
  const auto& t = scan::table(scan::Order::Zigzag);
  EXPECT_EQ(t[0], 0);
  EXPECT_EQ(t[1], 1);
  EXPECT_EQ(t[2], 8);
  EXPECT_EQ(t[63], 63);
}

// ----------------------------------------------------------------- quant

TEST(Quant, ZeroStaysZero) {
  Block in{}, levels, back;
  quant::quantize(in, levels, 8, quant::flatMatrix());
  for (const auto v : levels) EXPECT_EQ(v, 0);
  quant::dequantize(levels, back, 8, quant::flatMatrix());
  for (const auto v : back) EXPECT_EQ(v, 0);
}

class QuantRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QuantRoundTrip, ErrorBoundedByHalfStep) {
  const int qscale = GetParam();
  Prng rng(static_cast<std::uint64_t>(qscale));
  const Block in = randomBlock(rng, 2000);
  Block levels, back;
  quant::quantize(in, levels, qscale, quant::flatMatrix());
  quant::dequantize(levels, back, qscale, quant::flatMatrix());
  for (int i = 0; i < 64; ++i) {
    const int err = std::abs(in[static_cast<std::size_t>(i)] - back[static_cast<std::size_t>(i)]);
    // step = qscale for the flat matrix; levels also clamp at +-2047.
    if (std::abs(in[static_cast<std::size_t>(i)]) < 2000 * qscale) {
      ASSERT_LE(err, qscale / 2 + 1) << "qscale " << qscale << " i " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Qscales, QuantRoundTrip, ::testing::Values(1, 2, 4, 8, 16, 31));

TEST(Quant, CoarserQscaleZeroesMore) {
  Prng rng(6);
  const Block in = randomBlock(rng, 60);
  auto zeros = [&](int q) {
    Block levels;
    quant::quantize(in, levels, q, quant::flatMatrix());
    int n = 0;
    for (const auto v : levels) n += v == 0 ? 1 : 0;
    return n;
  };
  EXPECT_LE(zeros(2), zeros(8));
  EXPECT_LE(zeros(8), zeros(31));
}

TEST(Quant, IntraMatrixWeighsHighFrequencies) {
  const auto& m = quant::defaultIntraMatrix();
  EXPECT_LT(m[0], m[63]);  // DC quantised finer than the highest frequency
}

TEST(Quant, RejectsBadQscale) {
  Block in{}, out;
  EXPECT_THROW(quant::quantize(in, out, 0, quant::flatMatrix()), std::invalid_argument);
  EXPECT_THROW(quant::dequantize(in, out, 32, quant::flatMatrix()), std::invalid_argument);
}

TEST(Quant, LevelsClampAt2047) {
  Block in;
  in.fill(32767);
  Block levels;
  quant::quantize(in, levels, 1, quant::flatMatrix());
  for (const auto v : levels) EXPECT_EQ(v, 2047);
}

// ------------------------------------------------------------------- RLE

TEST(Rle, EmptyBlockHasNoPairs) {
  Block scanned{};
  EXPECT_TRUE(rle::encode(scanned).empty());
}

TEST(Rle, SingleTrailingCoefficient) {
  Block scanned{};
  scanned[63] = -5;
  const auto pairs = rle::encode(scanned);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].run, 63);
  EXPECT_EQ(pairs[0].level, -5);
}

TEST(Rle, DenseBlockHasZeroRuns) {
  Block scanned;
  for (int i = 0; i < 64; ++i) scanned[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(i + 1);
  const auto pairs = rle::encode(scanned);
  ASSERT_EQ(pairs.size(), 64u);
  for (const auto& p : pairs) EXPECT_EQ(p.run, 0);
}

TEST(Rle, RoundTripProperty) {
  Prng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    Block scanned{};
    const int nz = static_cast<int>(rng.below(20));
    for (int k = 0; k < nz; ++k) {
      scanned[rng.below(64)] = static_cast<std::int16_t>(rng.range(-500, 500));
    }
    const auto pairs = rle::encode(scanned);
    Block back;
    rle::decode(pairs, back);
    ASSERT_EQ(scanned, back) << "trial " << trial;
  }
}

TEST(Rle, OverflowingPairsThrow) {
  std::vector<rle::RunLevel> pairs(65, rle::RunLevel{0, 1});
  Block out;
  EXPECT_THROW(rle::decode(pairs, out), std::runtime_error);
}

// ------------------------------------------------------------------- VLC

TEST(Vlc, EobOnlyBlock) {
  BitWriter bw;
  vlc::putBlock(bw, {});
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_TRUE(vlc::getBlock(br).empty());
}

TEST(Vlc, CommonPairsAreShort) {
  const rle::RunLevel common{1, -3};
  const rle::RunLevel rare{40, 900};
  EXPECT_EQ(vlc::pairBits(common), 6);
  EXPECT_GT(vlc::pairBits(rare), 20);
}

TEST(Vlc, PairBitsMatchesActualEncoding) {
  Prng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    rle::RunLevel p;
    p.run = static_cast<std::uint8_t>(rng.below(64));
    p.level = static_cast<std::int16_t>(rng.range(1, 2000) * (rng.chance(0.5) ? 1 : -1));
    BitWriter bw;
    vlc::putBlock(bw, {p});
    EXPECT_EQ(static_cast<int>(bw.bitCount()), vlc::pairBits(p) + vlc::kEobBits);
  }
}

TEST(Vlc, RoundTripProperty) {
  Prng rng(10);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<rle::RunLevel> pairs;
    const int n = static_cast<int>(rng.below(30));
    int total_run = 0;
    for (int k = 0; k < n && total_run < 63; ++k) {
      rle::RunLevel p;
      p.run = static_cast<std::uint8_t>(rng.below(4));
      p.level = static_cast<std::int16_t>(rng.range(1, 300) * (rng.chance(0.5) ? 1 : -1));
      total_run += p.run + 1;
      pairs.push_back(p);
    }
    BitWriter bw;
    vlc::putBlock(bw, pairs);
    const auto bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(vlc::getBlock(br), pairs) << "trial " << trial;
  }
}

TEST(Vlc, TruncatedStreamThrows) {
  BitWriter bw;
  vlc::putBlock(bw, {rle::RunLevel{10, 500}});
  auto bytes = bw.finish();
  bytes.resize(bytes.size() / 2);
  BitReader br(bytes);
  EXPECT_THROW((void)vlc::getBlock(br), BitstreamError);
}

}  // namespace
