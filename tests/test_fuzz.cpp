// Robustness (fuzz) tests: corrupted, truncated and random bitstreams must
// surface as BitstreamError — never hangs, crashes or silent garbage
// acceptance — in both the functional decoder and the timed Eclipse run.

#include <gtest/gtest.h>

#include "eclipse/app/kpn_media.hpp"
#include "eclipse/eclipse.hpp"

namespace {

using namespace eclipse;

std::vector<std::uint8_t> validStream() {
  media::VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 5;
  vp.seed = 31;
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  media::Encoder enc(cp);
  return enc.encode(media::generateVideo(vp));
}

TEST(Fuzz, GoldenDecoderRejectsRandomBytes) {
  sim::Prng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> junk(64 + rng.below(512));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    media::Decoder dec;
    EXPECT_THROW((void)dec.decode(junk), media::BitstreamError) << "trial " << trial;
  }
}

TEST(Fuzz, GoldenDecoderSurvivesSingleByteCorruption) {
  const auto bits = validStream();
  sim::Prng rng(2);
  int threw = 0, decoded = 0;
  for (int trial = 0; trial < 60; ++trial) {
    auto corrupted = bits;
    // Corrupt a byte after the sequence header so the geometry stays sane.
    const std::size_t pos = 8 + rng.below(corrupted.size() - 8);
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    media::Decoder dec;
    try {
      const auto out = dec.decode(corrupted);
      ++decoded;  // corruption that still parses: acceptable (garbage pixels)
      EXPECT_FALSE(out.empty());
    } catch (const media::BitstreamError&) {
      ++threw;
    } catch (const std::logic_error&) {
      ++threw;  // e.g. prediction from a missing reference
    }
  }
  // Both outcomes must occur across trials; what must never occur is a
  // crash or an uncaught foreign exception.
  EXPECT_GT(threw + decoded, 0);
}

TEST(Fuzz, GoldenDecoderRejectsTruncations) {
  const auto bits = validStream();
  for (const double frac : {0.1, 0.35, 0.6, 0.85, 0.99}) {
    auto cut = bits;
    cut.resize(static_cast<std::size_t>(static_cast<double>(cut.size()) * frac));
    media::Decoder dec;
    EXPECT_THROW((void)dec.decode(cut), media::BitstreamError) << "fraction " << frac;
  }
}

TEST(Fuzz, EclipseDecodeSurfacesCorruptionAsError) {
  const auto bits = validStream();
  sim::Prng rng(3);
  int threw = 0, completed = 0;
  for (int trial = 0; trial < 12; ++trial) {
    auto corrupted = bits;
    const std::size_t pos = 8 + rng.below(corrupted.size() - 8);
    corrupted[pos] ^= 0x40;
    try {
      app::EclipseInstance inst;
      app::DecodeApp dec(inst, corrupted);
      const auto end = inst.run(500'000'000);
      ASSERT_LT(end, 500'000'000u) << "corrupted stream hung the simulation";
      if (dec.done()) ++completed;
    } catch (const std::exception&) {
      ++threw;  // VLD parse error propagated out of Simulator::run
    }
  }
  EXPECT_EQ(threw + completed, 12);
}

TEST(Fuzz, EmptyAndTinyInputsRejected) {
  media::Decoder dec;
  EXPECT_THROW((void)dec.decode(std::vector<std::uint8_t>{}), media::BitstreamError);
  EXPECT_THROW((void)dec.decode(std::vector<std::uint8_t>{0x45}), media::BitstreamError);
  EXPECT_THROW(
      [] {
        app::EclipseInstance inst;
        app::DecodeApp d(inst, {0x00, 0x01});
      }(),
      media::BitstreamError);
}

TEST(Fuzz, KpnDecoderPropagatesParseErrors) {
  auto bits = validStream();
  bits.resize(bits.size() / 2);
  app::KpnDecoder dec(bits);
  EXPECT_THROW((void)dec.run(), media::BitstreamError);
}

}  // namespace
