// Robustness (fuzz) tests: corrupted, truncated and random bitstreams must
// surface as BitstreamError — never hangs, crashes or silent garbage
// acceptance — in both the functional decoder and the timed Eclipse run.

#include <gtest/gtest.h>

#include "eclipse/app/kpn_media.hpp"
#include "eclipse/eclipse.hpp"

namespace {

using namespace eclipse;

std::vector<std::uint8_t> validStream() {
  media::VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 5;
  vp.seed = 31;
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  media::Encoder enc(cp);
  return enc.encode(media::generateVideo(vp));
}

TEST(Fuzz, GoldenDecoderRejectsRandomBytes) {
  sim::Prng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> junk(64 + rng.below(512));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    media::Decoder dec;
    EXPECT_THROW((void)dec.decode(junk), media::BitstreamError) << "trial " << trial;
  }
}

TEST(Fuzz, GoldenDecoderSurvivesSingleByteCorruption) {
  const auto bits = validStream();
  sim::Prng rng(2);
  int threw = 0, decoded = 0;
  for (int trial = 0; trial < 60; ++trial) {
    auto corrupted = bits;
    // Corrupt a byte after the sequence header so the geometry stays sane.
    const std::size_t pos = 8 + rng.below(corrupted.size() - 8);
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    media::Decoder dec;
    try {
      const auto out = dec.decode(corrupted);
      ++decoded;  // corruption that still parses: acceptable (garbage pixels)
      EXPECT_FALSE(out.empty());
    } catch (const media::BitstreamError&) {
      ++threw;
    } catch (const std::logic_error&) {
      ++threw;  // e.g. prediction from a missing reference
    }
  }
  // Both outcomes must occur across trials; what must never occur is a
  // crash or an uncaught foreign exception.
  EXPECT_GT(threw + decoded, 0);
}

TEST(Fuzz, GoldenDecoderRejectsTruncations) {
  const auto bits = validStream();
  for (const double frac : {0.1, 0.35, 0.6, 0.85, 0.99}) {
    auto cut = bits;
    cut.resize(static_cast<std::size_t>(static_cast<double>(cut.size()) * frac));
    media::Decoder dec;
    EXPECT_THROW((void)dec.decode(cut), media::BitstreamError) << "fraction " << frac;
  }
}

TEST(Fuzz, EclipseDecodeContainsCorruption) {
  // Task-level containment: a corrupted stream must never unwind the
  // simulator. Either the decode completes (harmless corruption), or a
  // fault latches on the failing task and the rest of the graph quiesces
  // in a classifiable state. Constructor-time rejection (corrupted
  // sequence header) is the only acceptable throw.
  const auto bits = validStream();
  sim::Prng rng(3);
  int completed = 0, contained = 0, rejected = 0;
  for (int trial = 0; trial < 12; ++trial) {
    auto corrupted = bits;
    const std::size_t pos = 8 + rng.below(corrupted.size() - 8);
    corrupted[pos] ^= 0x40;
    try {
      app::EclipseInstance inst;
      app::DecodeApp dec(inst, corrupted);
      const auto end = inst.run(500'000'000);
      ASSERT_LT(end, 500'000'000u) << "corrupted stream hung the simulation";
      if (dec.done()) {
        ++completed;
        continue;
      }
      const app::AppHealth health = dec.handle().health();
      EXPECT_FALSE(health.faults.empty())
          << "trial " << trial << ": decode stopped early with no latched fault";
      const app::Quiescence q = inst.classifyQuiescence();
      EXPECT_TRUE(q == app::Quiescence::Starved || q == app::Quiescence::Done)
          << "trial " << trial << ": " << app::quiescenceName(q);
      ++contained;
    } catch (const media::BitstreamError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(completed + contained + rejected, 12);
  EXPECT_GT(contained, 0) << "no trial exercised the containment path";
}

TEST(Fuzz, SeededFaultInjectionSweep) {
  // Seeded sweep over four fault classes: every (class, seed) run must
  // terminate with a classified outcome — completed, fault latched, or a
  // starved/deadlocked quiescence — never an unclassified hang.
  const auto bits = validStream();
  const sim::FaultKind kinds[] = {sim::FaultKind::DropPutspace, sim::FaultKind::CorruptPayload,
                                  sim::FaultKind::TaskHang, sim::FaultKind::BitFlipSram};
  for (const sim::FaultKind kind : kinds) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      sim::Prng rng(seed * 977 + static_cast<std::uint64_t>(kind));
      app::EclipseInstance inst;
      app::DecodeApp dec(inst, bits);

      sim::FaultPlan plan;
      plan.seed = seed;
      sim::FaultSpec f;
      f.kind = kind;
      f.at_cycle = 2'000 + rng.below(60'000);
      switch (kind) {
        case sim::FaultKind::DropPutspace:
          f.shell = static_cast<std::uint32_t>(rng.below(4));  // vld/rlsq/dct/mc
          break;
        case sim::FaultKind::CorruptPayload:
          f.shell = inst.vldShell().id();
          f.task = dec.vldTask();
          f.port = coproc::VldCoproc::kOutCoef;
          f.xor_mask = static_cast<std::uint8_t>(1 + rng.below(255));
          break;
        case sim::FaultKind::TaskHang:
          f.shell = static_cast<std::uint32_t>(rng.below(4));
          f.task = 0;
          f.delay_cycles = 10'000 + rng.below(100'000);
          break;
        default:  // BitFlipSram
          f.addr = rng.below(inst.sram().storage().size());
          f.bit = static_cast<std::uint32_t>(rng.below(8));
          break;
      }
      plan.faults.push_back(f);
      inst.armFaults(plan);
      inst.armWatchdogs(/*timeout=*/50'000);

      const auto end = inst.run(5'000'000);
      ASSERT_LE(end, 5'000'000u);

      const app::AppHealth health = dec.handle().health();
      const app::Quiescence q = inst.classifyQuiescence();
      const bool classified = dec.done() || !health.faults.empty() || !health.stalls.empty() ||
                              q == app::Quiescence::Starved || q == app::Quiescence::Deadlocked;
      EXPECT_TRUE(classified) << sim::faultKindName(kind) << " seed " << seed
                              << ": unclassified outcome, quiescence="
                              << app::quiescenceName(q);
    }
  }
}

TEST(Fuzz, EmptyAndTinyInputsRejected) {
  media::Decoder dec;
  EXPECT_THROW((void)dec.decode(std::vector<std::uint8_t>{}), media::BitstreamError);
  EXPECT_THROW((void)dec.decode(std::vector<std::uint8_t>{0x45}), media::BitstreamError);
  EXPECT_THROW(
      [] {
        app::EclipseInstance inst;
        app::DecodeApp d(inst, {0x00, 0x01});
      }(),
      media::BitstreamError);
}

TEST(Fuzz, KpnDecoderPropagatesParseErrors) {
  auto bits = validStream();
  bits.resize(bits.size() / 2);
  app::KpnDecoder dec(bits);
  EXPECT_THROW((void)dec.run(), media::BitstreamError);
}

}  // namespace
