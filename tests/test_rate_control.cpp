// Tests for per-picture quantiser adaptation (rate control) and its
// interaction with every decode path.

#include <gtest/gtest.h>

#include <cmath>

#include "eclipse/app/kpn_media.hpp"
#include "eclipse/eclipse.hpp"

namespace {

using namespace eclipse;

media::VideoGenParams vid() {
  media::VideoGenParams vp;
  vp.width = 64;
  vp.height = 48;
  vp.frames = 18;
  vp.seed = 41;
  vp.detail = 6;
  return vp;
}

media::CodecParams rcCodec(std::uint32_t target) {
  media::CodecParams cp;
  cp.width = 64;
  cp.height = 48;
  cp.qscale = 4;  // deliberately far from the steady-state value
  cp.gop = media::GopStructure{6, 3};
  cp.target_bits_per_picture = target;
  return cp;
}

TEST(RateControl, SteersPictureSizesTowardTarget) {
  const auto frames = media::generateVideo(vid());
  const std::uint32_t target = 4000;
  media::Encoder enc(rcCodec(target));
  (void)enc.encode(frames);
  const auto& stats = enc.pictureStats();
  ASSERT_GE(stats.size(), 12u);

  // The second half of the sequence must track the target much better
  // than the (mis-tuned) start.
  double early_err = 0, late_err = 0;
  const std::size_t half = stats.size() / 2;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const double err = std::abs(static_cast<double>(stats[i].bits) - target) / target;
    (i < half ? early_err : late_err) += err;
  }
  early_err /= static_cast<double>(half);
  late_err /= static_cast<double>(stats.size() - half);
  EXPECT_LT(late_err, early_err);
  EXPECT_LT(late_err, 0.5) << "late pictures should be within 50% of target on average";
}

TEST(RateControl, HigherTargetGivesHigherQuality) {
  const auto frames = media::generateVideo(vid());
  auto psnrAt = [&](std::uint32_t target) {
    media::Encoder enc(rcCodec(target));
    (void)enc.encode(frames);
    return media::averagePsnr(frames, enc.reconstructed());
  };
  EXPECT_GT(psnrAt(12000), psnrAt(1500) + 2.0);
}

TEST(RateControl, DisabledMeansConstantQscale) {
  const auto frames = media::generateVideo(vid());
  auto cp = rcCodec(0);
  media::Encoder enc(cp);
  const auto bits = enc.encode(frames);
  media::BitReader br(bits);
  const auto sh = media::stages::parseSeqHeader(br);
  const int mbs = (sh.width / 16) * (sh.height / 16);
  for (int p = 0; p < sh.frame_count; ++p) {
    const auto ph = media::stages::parsePicHeader(br);
    EXPECT_EQ(ph.qscale, cp.qscale);
    for (int m = 0; m < mbs; ++m) {
      (void)media::stages::parseMb(br, ph.type, 0, 0, ph.qscale);
    }
  }
}

TEST(RateControl, VaryingQscaleDecodesBitExactEverywhere) {
  const auto frames = media::generateVideo(vid());
  media::Encoder enc(rcCodec(3000));
  const auto bits = enc.encode(frames);

  // Picture qscales must actually vary for this test to mean anything.
  media::Decoder golden;
  const auto golden_frames = golden.decode(bits);
  bool varied = false;
  {
    media::BitReader br(bits);
    const auto sh = media::stages::parseSeqHeader(br);
    const int mbs = (sh.width / 16) * (sh.height / 16);
    std::uint8_t first_q = 0;
    for (int p = 0; p < sh.frame_count; ++p) {
      const auto ph = media::stages::parsePicHeader(br);
      if (p == 0) first_q = ph.qscale;
      varied = varied || ph.qscale != first_q;
      for (int m = 0; m < mbs; ++m) (void)media::stages::parseMb(br, ph.type, 0, 0, ph.qscale);
    }
  }
  ASSERT_TRUE(varied) << "rate control did not change qscale; test is vacuous";

  // Golden decode equals encoder reconstruction.
  for (std::size_t i = 0; i < golden_frames.size(); ++i) {
    ASSERT_EQ(golden_frames[i], enc.reconstructed()[i]);
  }
  // KPN decode.
  app::KpnDecoder kpn(bits);
  const auto kpn_frames = kpn.run();
  for (std::size_t i = 0; i < kpn_frames.size(); ++i) {
    ASSERT_EQ(kpn_frames[i], enc.reconstructed()[i]);
  }
  // Cycle-level Eclipse decode.
  app::EclipseInstance inst;
  app::DecodeApp dec(inst, bits);
  inst.run(4'000'000'000ULL);
  ASSERT_TRUE(dec.done());
  const auto eframes = dec.frames();
  for (std::size_t i = 0; i < eframes.size(); ++i) {
    ASSERT_EQ(eframes[i], enc.reconstructed()[i]);
  }
}

TEST(RateControl, BadQscaleInCoefsRejected) {
  media::MbCoefs coefs;
  coefs.cbp = 1;
  coefs.qscale = 0;  // malformed
  coefs.blocks[0] = {media::rle::RunLevel{0, 5}};
  media::MbBlocks out;
  media::SeqHeader sh;
  sh.width = 16;
  sh.height = 16;
  EXPECT_THROW(media::stages::rlsqDecode(coefs, false, sh, out), media::BitstreamError);
}

}  // namespace
