// Tests for the memory-mapped shell tables on the PI-bus (Section 5.4):
// the CPU configures applications and collects measurements through these
// registers.

#include <gtest/gtest.h>

#include "eclipse/mem/pi_bus.hpp"
#include "shell_fixture.hpp"

namespace {

using namespace eclipse;
using eclipse::test::TwoShellFixture;
using shell::Shell;
using sim::Task;

class ShellMmio : public TwoShellFixture {};

constexpr sim::Addr kStreamRowBytes = 32 * 4;
constexpr sim::Addr taskBase(const shell::ShellParams& p) {
  return static_cast<sim::Addr>(p.max_streams) * kStreamRowBytes;
}
constexpr sim::Addr kTaskRowBytes = 16 * 4;

TEST_F(ShellMmio, StreamConfigReadsBack) {
  connect(256);
  const auto& p = prod->params();
  (void)p;
  // Row 0 of the producer shell.
  EXPECT_EQ(prod->mmioRead(0 * 4), 1u);          // valid
  EXPECT_EQ(prod->mmioRead(3 * 4), 1u);          // is_producer
  EXPECT_EQ(prod->mmioRead(4 * 4), 0x400u);      // base
  EXPECT_EQ(prod->mmioRead(5 * 4), 256u);        // size
  EXPECT_EQ(prod->mmioRead(6 * 4), 256u);        // space = whole buffer
  EXPECT_EQ(prod->mmioRead(7 * 4), 1u);          // remote shell
  EXPECT_EQ(cons->mmioRead(6 * 4), 0u);          // consumer space = 0
}

TEST_F(ShellMmio, ConfigureStreamEntirelyViaRegisters) {
  // Build the same stream as connect(), but through raw register writes —
  // the path the control CPU uses in hardware.
  auto writeRow = [&](Shell& sh, std::uint32_t row, bool producer, std::uint32_t remote_shell,
                      std::uint32_t remote_row, std::uint32_t space) {
    const sim::Addr base = static_cast<sim::Addr>(row) * kStreamRowBytes;
    sh.mmioWrite(base + 1 * 4, 0);             // task
    sh.mmioWrite(base + 2 * 4, 0);             // port
    sh.mmioWrite(base + 3 * 4, producer);      // direction
    sh.mmioWrite(base + 4 * 4, 0x800);         // buffer base
    sh.mmioWrite(base + 5 * 4, 128);           // buffer size
    sh.mmioWrite(base + 6 * 4, space);         // initial space
    sh.mmioWrite(base + 7 * 4, remote_shell);  // stream ID: remote shell
    sh.mmioWrite(base + 8 * 4, remote_row);    //            remote row
    sh.mmioWrite(base + 0 * 4, 1);             // valid last
  };
  writeRow(*prod, 0, true, 1, 0, 128);
  writeRow(*cons, 0, false, 0, 0, 0);
  // Task tables via registers too.
  const sim::Addr tb = taskBase(prod->params());
  for (Shell* sh : {prod.get(), cons.get()}) {
    sh->mmioWrite(tb + 2 * 4, 500);  // budget
    sh->mmioWrite(tb + 0 * 4, 1);    // valid
    sh->mmioWrite(tb + 1 * 4, 1);    // enabled
  }

  run([](Shell& prod, Shell& cons) -> Task<void> {
    std::uint8_t data[32];
    for (std::size_t i = 0; i < sizeof data; ++i) data[i] = static_cast<std::uint8_t>(i ^ 0x2F);
    EXPECT_TRUE(co_await prod.getSpace(0, 0, 32));
    co_await prod.write(0, 0, 0, data);
    co_await prod.putSpace(0, 0, 32);
    co_await cons.waitSpace(0, 0, 32);
    std::uint8_t got[32];
    co_await cons.read(0, 0, 0, got);
    for (std::size_t i = 0; i < sizeof got; ++i) EXPECT_EQ(got[i], data[i]);
  }(*prod, *cons));
}

TEST_F(ShellMmio, MeasurementFieldsVisibleAfterTraffic) {
  connect(256);
  run([](Shell& prod, Shell& cons) -> Task<void> {
    std::uint8_t data[64] = {};
    EXPECT_TRUE(co_await prod.getSpace(0, 0, 64));
    co_await prod.write(0, 0, 0, data);
    co_await prod.putSpace(0, 0, 64);
    co_await cons.waitSpace(0, 0, 64);
    std::uint8_t got[64];
    co_await cons.read(0, 0, 0, got);
    co_await cons.putSpace(0, 0, 64);
  }(*prod, *cons));

  EXPECT_EQ(prod->mmioRead(12 * 4), 64u);  // bytes transferred (lo)
  EXPECT_EQ(prod->mmioRead(14 * 4), 1u);   // getspace calls
  EXPECT_EQ(prod->mmioRead(16 * 4), 1u);   // putspace calls
  EXPECT_EQ(prod->mmioRead(18 * 4), 1u);   // write calls
  EXPECT_EQ(cons->mmioRead(17 * 4), 1u);   // read calls
  // Consumer-side GetSpace denials appear too (waitSpace's first attempt
  // may or may not be denied depending on message timing; just read it).
  (void)cons->mmioRead(15 * 4);
}

TEST_F(ShellMmio, AccessLatencyMeasurementExposed) {
  connect(256);
  run([](Shell& prod, Shell& cons) -> Task<void> {
    std::uint8_t data[64] = {};
    EXPECT_TRUE(co_await prod.getSpace(0, 0, 64));
    co_await prod.write(0, 0, 0, data);
    co_await prod.putSpace(0, 0, 64);
    co_await cons.waitSpace(0, 0, 64);
    std::uint8_t got[64];
    co_await cons.read(0, 0, 0, got);
    co_await cons.putSpace(0, 0, 64);
  }(*prod, *cons));
  EXPECT_EQ(prod->mmioRead(24 * 4), 1u);             // one timed write access
  EXPECT_GT(prod->mmioRead(25 * 4), 0u);             // nonzero mean latency
  EXPECT_GE(prod->mmioRead(26 * 4), prod->mmioRead(25 * 4));  // max >= mean
  EXPECT_EQ(cons->mmioRead(24 * 4), 1u);
  // The consumer's cold read misses in the cache, so its latency exceeds
  // the port-transfer floor.
  EXPECT_GT(cons->streams().row(0).access_latency.mean(), 5.0);
}

TEST_F(ShellMmio, TaskRegistersRoundTrip) {
  connect(256);
  const sim::Addr tb = taskBase(prod->params());
  prod->mmioWrite(tb + 2 * 4, 12345);   // budget
  prod->mmioWrite(tb + 3 * 4, 0xBEEF);  // task_info
  EXPECT_EQ(prod->mmioRead(tb + 2 * 4), 12345u);
  EXPECT_EQ(prod->mmioRead(tb + 3 * 4), 0xBEEFu);
  EXPECT_EQ(prod->tasks().row(0).budget_cycles, 12345u);
}

TEST_F(ShellMmio, ReadOnlyFieldsRejectWrites) {
  connect(256);
  EXPECT_THROW(prod->mmioWrite(12 * 4, 1), std::invalid_argument);  // stats field
  const sim::Addr tb = taskBase(prod->params());
  EXPECT_THROW(prod->mmioWrite(tb + 4 * 4, 1), std::invalid_argument);  // busy cycles
}

TEST_F(ShellMmio, OutOfWindowAccessThrows) {
  connect(256);
  EXPECT_THROW((void)prod->mmioRead(prod->mmioWindowBytes() + 64), std::out_of_range);
}

TEST_F(ShellMmio, PiBusRoutesToBothShells) {
  connect(256);
  mem::PiBus bus;
  prod->mapMmio(bus, 0x0000);
  cons->mapMmio(bus, 0x10000);
  EXPECT_EQ(bus.read(0x0000 + 3 * 4), 1u);   // producer row direction
  EXPECT_EQ(bus.read(0x10000 + 3 * 4), 0u);  // consumer row direction
  bus.write(0x0000 + taskBase(prod->params()) + 2 * 4, 999);
  EXPECT_EQ(prod->tasks().row(0).budget_cycles, 999u);
}

}  // namespace
