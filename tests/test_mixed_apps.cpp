// Mixed-application tests: the flexibility claim of Section 3 — "each
// coprocessor can execute multiple Kahn tasks from a single Kahn network
// or from multiple and possibly different networks in a time-shared
// fashion" — exercised with three different application graphs at once.

#include <gtest/gtest.h>

#include "eclipse/eclipse.hpp"

namespace {

using namespace eclipse;

media::VideoGenParams vid(std::uint64_t seed) {
  media::VideoGenParams vp;
  vp.width = 64;
  vp.height = 48;
  vp.frames = 6;
  vp.seed = seed;
  return vp;
}

TEST(MixedApps, ThreeDifferentGraphsShareTheCoprocessors) {
  // App 1: normal IBBP decode. App 2: intra-only decode (a "still texture"
  // style graph with no MC prediction work). App 3: encode.
  const auto video_a = media::generateVideo(vid(1));
  const auto video_b = media::generateVideo(vid(2));
  const auto video_c = media::generateVideo(vid(3));

  media::CodecParams ibbp;
  ibbp.width = 64;
  ibbp.height = 48;
  ibbp.gop = media::GopStructure{6, 3};
  media::CodecParams intra = ibbp;
  intra.gop = media::GopStructure{1, 1};

  media::Encoder enc_a(ibbp);
  const auto bits_a = enc_a.encode(video_a);
  media::Encoder enc_b(intra);
  const auto bits_b = enc_b.encode(video_b);

  app::InstanceParams ip;
  ip.sram.size_bytes = 128 * 1024;
  app::EclipseInstance inst(ip);
  app::DecodeApp dec_a(inst, bits_a);
  app::DecodeApp dec_b(inst, bits_b);
  app::EncodeApp enc_c(inst, video_c, ibbp);
  inst.run(8'000'000'000ULL);

  ASSERT_TRUE(dec_a.done());
  ASSERT_TRUE(dec_b.done());
  ASSERT_TRUE(enc_c.done());

  const auto fa = dec_a.frames();
  for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], enc_a.reconstructed()[i]);
  const auto fb = dec_b.frames();
  for (std::size_t i = 0; i < fb.size(); ++i) EXPECT_EQ(fb[i], enc_b.reconstructed()[i]);

  media::Decoder check;
  const auto fc = check.decode(enc_c.bitstream());
  EXPECT_GT(media::averagePsnr(video_c, fc), 28.0);

  // Every hardware coprocessor carried tasks from several applications.
  for (shell::Shell* sh :
       {&inst.rlsqShell(), &inst.dctShell(), &inst.mcShell(), &inst.vldShell()}) {
    int tasks = 0;
    for (std::uint32_t t = 0; t < sh->tasks().capacity(); ++t) {
      if (sh->tasks().row(static_cast<sim::TaskId>(t)).valid) ++tasks;
    }
    EXPECT_GE(tasks, 2) << sh->name();
  }
  EXPECT_GT(inst.dctShell().taskSwitches(), 50u);
}

TEST(MixedApps, IntraOnlyDecodeNeverTouchesTheFrameStore) {
  // The intra graph exercises the DCT/RLSQ reuse claim: no prediction
  // fetches should happen at all.
  const auto video = media::generateVideo(vid(4));
  media::CodecParams intra;
  intra.width = 64;
  intra.height = 48;
  intra.gop = media::GopStructure{1, 1};
  media::Encoder enc(intra);
  const auto bits = enc.encode(video);

  app::EclipseInstance inst;
  app::DecodeApp dec(inst, bits);
  inst.run(2'000'000'000ULL);
  ASSERT_TRUE(dec.done());
  EXPECT_EQ(inst.mc().predictionsFetched(), 0u);
}

TEST(MixedApps, LateConfigurationWhileRunning) {
  // Run-time reconfiguration: a second application is configured onto the
  // instance while the first is already half-way through its stream.
  const auto video = media::generateVideo(vid(5));
  media::CodecParams cp;
  cp.width = 64;
  cp.height = 48;
  cp.gop = media::GopStructure{6, 3};
  media::Encoder enc(cp);
  const auto bits = enc.encode(video);

  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);
  app::DecodeApp first(inst, bits);
  inst.start();
  inst.run(20'000);  // let the first app make some progress
  ASSERT_FALSE(first.done());

  app::DecodeApp second(inst, bits);  // configured mid-flight
  inst.run();
  ASSERT_TRUE(first.done());
  ASSERT_TRUE(second.done());
  const auto f1 = first.frames();
  const auto f2 = second.frames();
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i], enc.reconstructed()[i]);
    EXPECT_EQ(f2[i], enc.reconstructed()[i]);
  }
}

}  // namespace
