// Integration test: the full Eclipse decode pipeline (Figure 2/8 mapping)
// must reproduce the golden functional decoder bit-exactly, and the encode
// pipeline must produce a stream the golden decoder accepts.

#include <gtest/gtest.h>

#include "eclipse/eclipse.hpp"

namespace {

using namespace eclipse;

media::VideoGenParams smallVideo() {
  media::VideoGenParams vp;
  vp.width = 64;
  vp.height = 48;
  vp.frames = 7;
  vp.seed = 42;
  return vp;
}

media::CodecParams smallCodec() {
  media::CodecParams cp;
  cp.width = 64;
  cp.height = 48;
  cp.qscale = 6;
  cp.gop = media::GopStructure{6, 3};
  return cp;
}

TEST(Pipeline, DecodeMatchesGoldenDecoder) {
  const auto frames = media::generateVideo(smallVideo());
  media::Encoder enc(smallCodec());
  const auto bits = enc.encode(frames);

  app::EclipseInstance inst;
  app::DecodeApp dec(inst, bits);
  const sim::Cycle end = inst.run(500'000'000);

  ASSERT_TRUE(dec.done()) << "decode did not complete by cycle " << end;
  const auto out = dec.frames();
  ASSERT_EQ(out.size(), frames.size());
  const auto& golden = enc.reconstructed();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], golden[i]) << "frame " << i << " differs from golden reconstruction";
  }
}

TEST(Pipeline, DualDecodeSharesCoprocessors) {
  const auto frames = media::generateVideo(smallVideo());
  media::Encoder enc(smallCodec());
  const auto bits = enc.encode(frames);

  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);
  app::DecodeApp a(inst, bits);
  app::DecodeApp b(inst, bits);
  inst.run(1'000'000'000);

  ASSERT_TRUE(a.done());
  ASSERT_TRUE(b.done());
  const auto& golden = enc.reconstructed();
  const auto fa = a.frames();
  const auto fb = b.frames();
  ASSERT_EQ(fa.size(), golden.size());
  ASSERT_EQ(fb.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(fa[i], golden[i]);
    EXPECT_EQ(fb[i], golden[i]);
  }
  // Both applications time-shared the same coprocessors.
  EXPECT_GT(inst.vldShell().taskSwitches(), 0u);
}

TEST(Pipeline, EncodeProducesDecodableStream) {
  const auto frames = media::generateVideo(smallVideo());

  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);
  app::EncodeApp enc_app(inst, frames, smallCodec());
  const sim::Cycle end = inst.run(2'000'000'000);

  ASSERT_TRUE(enc_app.done()) << "encode did not complete by cycle " << end;
  media::Decoder dec;
  const auto out = dec.decode(enc_app.bitstream());
  ASSERT_EQ(out.size(), frames.size());
  const double psnr = media::averagePsnr(frames, out);
  EXPECT_GT(psnr, 28.0) << "Eclipse-encoded stream quality too low";
}

}  // namespace

namespace {

// Geometry sweep: the pipeline must handle any whole-macroblock frame size
// down to a single macroblock, with and without B pictures.
struct GeometryCase {
  int width;
  int height;
  media::GopStructure gop;
};

class GeometrySweep : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(GeometrySweep, EclipseDecodeBitExact) {
  const auto g = GetParam();
  media::VideoGenParams vp;
  vp.width = g.width;
  vp.height = g.height;
  vp.frames = 5;
  vp.seed = static_cast<std::uint64_t>(g.width * 131 + g.height);
  const auto frames = media::generateVideo(vp);
  media::CodecParams cp;
  cp.width = g.width;
  cp.height = g.height;
  cp.gop = g.gop;
  media::Encoder enc(cp);
  const auto bits = enc.encode(frames);

  app::EclipseInstance inst;
  app::DecodeApp dec(inst, bits);
  const auto end = inst.run(4'000'000'000ULL);
  ASSERT_TRUE(dec.done()) << "incomplete at " << end;
  const auto out = dec.frames();
  ASSERT_EQ(out.size(), frames.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], enc.reconstructed()[i]) << "frame " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(GeometryCase{16, 16, {5, 1}},     // a single macroblock
                      GeometryCase{16, 16, {3, 3}},     // single MB with B pictures
                      GeometryCase{160, 16, {3, 3}},    // one MB row
                      GeometryCase{16, 160, {3, 3}},    // one MB column
                      GeometryCase{48, 80, {5, 1}},     // tall, P-only
                      GeometryCase{128, 96, {4, 2}}),   // IBPB
    [](const auto& info) {
      return std::to_string(info.param.width) + "x" + std::to_string(info.param.height) + "_n" +
             std::to_string(info.param.gop.n) + "m" + std::to_string(info.param.gop.m);
    });

}  // namespace
