// Unit tests for the memory subsystem: storage, buses, SRAM/DRAM models,
// the putspace message network and the PI control bus.

#include <gtest/gtest.h>

#include <vector>

#include "eclipse/mem/bus.hpp"
#include "eclipse/mem/message_network.hpp"
#include "eclipse/mem/pi_bus.hpp"
#include "eclipse/mem/sram.hpp"
#include "eclipse/mem/storage.hpp"
#include "eclipse/sim/simulator.hpp"

namespace {

using namespace eclipse;
using namespace eclipse::mem;
using eclipse::sim::Cycle;
using eclipse::sim::Simulator;
using eclipse::sim::Task;

// --------------------------------------------------------------- storage

TEST(Storage, ReadWriteRoundTrip) {
  Storage s(256);
  std::vector<std::uint8_t> in{1, 2, 3, 4, 5};
  s.write(100, in);
  std::vector<std::uint8_t> out(5);
  s.read(100, out);
  EXPECT_EQ(in, out);
}

TEST(Storage, BoundsChecked) {
  Storage s(16);
  std::vector<std::uint8_t> buf(8);
  EXPECT_THROW(s.read(10, buf), std::out_of_range);
  EXPECT_THROW(s.write(16, buf), std::out_of_range);
  EXPECT_NO_THROW(s.read(8, buf));
  EXPECT_THROW((void)s.peek(16), std::out_of_range);
}

TEST(Storage, FillAndPoke) {
  Storage s(8);
  s.fill(0xAB);
  EXPECT_EQ(s.peek(7), 0xAB);
  s.poke(3, 0x11);
  EXPECT_EQ(s.peek(3), 0x11);
}

// ------------------------------------------------------------------- bus

Task<void> doTransfer(Bus& bus, std::size_t bytes, int client, Cycle& done_at, Simulator& sim) {
  co_await bus.transfer(bytes, client);
  done_at = sim.now();
}

TEST(Bus, TransferTimingMatchesWidth) {
  Simulator sim;
  Bus bus(sim, "b", 16, 2);  // 16B wide, 2-cycle arbitration
  Cycle done = 0;
  sim.spawn(doTransfer(bus, 64, 0, done, sim), "t");
  sim.run();
  EXPECT_EQ(done, 2u + 64 / 16);  // arb + 4 data cycles
  EXPECT_EQ(bus.stats().transactions, 1u);
  EXPECT_EQ(bus.stats().bytes, 64u);
}

TEST(Bus, PartialWordRoundsUp) {
  Simulator sim;
  Bus bus(sim, "b", 16, 0);
  EXPECT_EQ(bus.dataCycles(1), 1u);
  EXPECT_EQ(bus.dataCycles(16), 1u);
  EXPECT_EQ(bus.dataCycles(17), 2u);
}

TEST(Bus, ContendersSerialize) {
  Simulator sim;
  Bus bus(sim, "b", 8, 1);
  Cycle a = 0, b = 0;
  sim.spawn(doTransfer(bus, 32, 0, a, sim), "a");  // 1 + 4 = 5 cycles
  sim.spawn(doTransfer(bus, 32, 1, b, sim), "b");
  sim.run();
  EXPECT_EQ(a, 5u);
  EXPECT_EQ(b, 10u);  // waits for the first transfer
  EXPECT_EQ(bus.stats().busy_cycles, 10u);
  EXPECT_EQ(bus.perClientStats().at(0).bytes, 32u);
  EXPECT_EQ(bus.perClientStats().at(1).bytes, 32u);
}

TEST(Bus, UtilizationFraction) {
  Simulator sim;
  Bus bus(sim, "b", 8, 0);
  Cycle done = 0;
  sim.spawn(doTransfer(bus, 80, 0, done, sim), "t");  // 10 cycles
  sim.run();
  EXPECT_DOUBLE_EQ(bus.utilization(20), 0.5);
}

// ------------------------------------------------------------ SRAM / DRAM

Task<void> sramRoundTrip(SharedSram& sram, bool& ok, Simulator& sim) {
  std::vector<std::uint8_t> in(100);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<std::uint8_t>(i);
  co_await sram.write(0x40, in, 1);
  std::vector<std::uint8_t> out(100);
  co_await sram.read(0x40, out, 2);
  ok = in == out;
  (void)sim;
}

TEST(SharedSram, TimedRoundTrip) {
  Simulator sim;
  SramParams p;
  SharedSram sram(sim, p);
  bool ok = false;
  sim.spawn(sramRoundTrip(sram, ok, sim), "rt");
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(sram.readBus().stats().bytes, 100u);
  EXPECT_EQ(sram.writeBus().stats().bytes, 100u);
}

Task<void> concurrentReadWrite(SharedSram& sram, Cycle& r_done, Cycle& w_done, Simulator& sim) {
  // Split read/write buses: a read and a write of the same size do not
  // contend (the paper's separate 150 MHz read and write buses).
  std::vector<std::uint8_t> buf(64);
  co_await sram.write(0, buf, 0);
  w_done = sim.now();
  co_await sram.read(0, buf, 0);
  r_done = sim.now();
}

TEST(SharedSram, SplitBusesDoNotContend) {
  Simulator sim;
  SramParams p;
  p.bus_width_bytes = 16;
  p.bus_arbitration_latency = 1;
  p.access_latency = 1;
  SharedSram sram(sim, p);
  Cycle r1 = 0, w1 = 0;
  sim.spawn(concurrentReadWrite(sram, r1, w1, sim), "a");
  sim.run();
  // write: 1 arb + 4 data + 1 access = 6; read likewise after it: 12.
  EXPECT_EQ(w1, 6u);
  EXPECT_EQ(r1, 12u);
}

Task<void> dramAccess(OffChipMemory& dram, Cycle& done, Simulator& sim) {
  std::vector<std::uint8_t> buf(64);
  co_await dram.read(0, buf, 0);
  done = sim.now();
}

TEST(OffChipMemory, HasLongLatency) {
  Simulator sim;
  DramParams p;
  p.bus_width_bytes = 8;
  p.bus_arbitration_latency = 2;
  p.access_latency = 20;
  OffChipMemory dram(sim, p);
  Cycle done = 0;
  sim.spawn(dramAccess(dram, done, sim), "d");
  sim.run();
  EXPECT_EQ(done, 2u + 8 + 20);
}

Task<void> touchOnly(OffChipMemory& dram, Cycle& done, Simulator& sim) {
  dram.storage().poke(5, 0x77);
  co_await dram.touchRead(64, 0);
  co_await dram.touchWrite(64, 0);
  done = sim.now();
}

TEST(OffChipMemory, TouchChargesTimeWithoutDataEffects) {
  Simulator sim;
  OffChipMemory dram(sim, DramParams{});
  Cycle done = 0;
  sim.spawn(touchOnly(dram, done, sim), "t");
  sim.run();
  EXPECT_GT(done, 0u);
  EXPECT_EQ(dram.storage().peek(5), 0x77);  // touches never alter contents
  EXPECT_EQ(dram.bus().stats().transactions, 2u);
}

// --------------------------------------------------------- message network

TEST(MessageNetwork, DeliversWithLatency) {
  Simulator sim;
  MessageNetwork net(sim, 3);
  Cycle delivered_at = 0;
  SyncMessage got{};
  net.attach(7, [&](const SyncMessage& m) {
    got = m;
    delivered_at = sim.now();
  });
  sim.schedule(10, [&] { net.send(SyncMessage{1, 7, 2, 48}); });
  sim.run();
  EXPECT_EQ(delivered_at, 13u);
  EXPECT_EQ(got.src_shell, 1u);
  EXPECT_EQ(got.dst_row, 2u);
  EXPECT_EQ(got.bytes, 48u);
  EXPECT_EQ(net.messagesSent(), 1u);
  EXPECT_EQ(net.bytesSignalled(), 48u);
}

TEST(MessageNetwork, PreservesOrderPerDestination) {
  Simulator sim;
  MessageNetwork net(sim, 5);
  std::vector<std::uint32_t> seen;
  net.attach(0, [&](const SyncMessage& m) { seen.push_back(m.bytes); });
  sim.schedule(0, [&] {
    net.send(SyncMessage{1, 0, 0, 1});
    net.send(SyncMessage{1, 0, 0, 2});
    net.send(SyncMessage{1, 0, 0, 3});
  });
  sim.run();
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(MessageNetwork, UnattachedDestinationThrows) {
  Simulator sim;
  MessageNetwork net(sim, 1);
  EXPECT_THROW(net.send(SyncMessage{0, 9, 0, 1}), std::runtime_error);
}

// ----------------------------------------------------------------- PI-bus

TEST(PiBus, DispatchesByAddress) {
  PiBus bus;
  std::uint32_t reg_a = 0, reg_b = 0;
  bus.attach(
      "a", 0x0, 0x100, [&](sim::Addr off) { return reg_a + static_cast<std::uint32_t>(off); },
      [&](sim::Addr, std::uint32_t v) { reg_a = v; });
  bus.attach(
      "b", 0x100, 0x100, [&](sim::Addr) { return reg_b; },
      [&](sim::Addr, std::uint32_t v) { reg_b = v; });
  bus.write(0x0, 11);
  bus.write(0x100, 22);
  EXPECT_EQ(bus.read(0x4), 15u);  // device-relative offset
  EXPECT_EQ(bus.read(0x100), 22u);
  EXPECT_EQ(bus.readCount(), 2u);
  EXPECT_EQ(bus.writeCount(), 2u);
}

TEST(PiBus, RejectsOverlapsAndHoles) {
  PiBus bus;
  bus.attach("a", 0x0, 0x100, [](sim::Addr) { return 0u; }, [](sim::Addr, std::uint32_t) {});
  EXPECT_THROW(bus.attach("b", 0x80, 0x100, [](sim::Addr) { return 0u; },
                          [](sim::Addr, std::uint32_t) {}),
               std::runtime_error);
  EXPECT_THROW((void)bus.read(0x200), std::out_of_range);
}

}  // namespace
