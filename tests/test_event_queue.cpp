// Tests for the timing-wheel event kernel: the allocation-free Event type,
// same-cycle FIFO order across the bucket/overflow-heap boundary, wheel
// wrap-around at large cycle deltas, teardown with pending events, and a
// determinism regression against the seed (binary-heap) kernel.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "eclipse/app/decode_app.hpp"
#include "eclipse/app/instance.hpp"
#include "eclipse/media/codec.hpp"
#include "eclipse/media/video_gen.hpp"
#include "eclipse/sim/event.hpp"
#include "eclipse/sim/event_queue.hpp"
#include "eclipse/sim/sim_event.hpp"
#include "eclipse/sim/simulator.hpp"

#include "decode_pin.hpp"

namespace {

using namespace eclipse;
using namespace eclipse::sim;

constexpr Cycle kSpan = EventQueue::kWheelSpan;

// ----------------------------------------------------------------- event

TEST(Event, InlineCallableRunsWithoutAllocation) {
  int hits = 0;
  int* p = &hits;
  Event ev([p] { ++*p; });  // small + trivially copyable: stored inline
  Event moved = std::move(ev);
  moved();
  EXPECT_EQ(hits, 1);
  EXPECT_FALSE(static_cast<bool>(ev));  // NOLINT(bugprone-use-after-move)
}

TEST(Event, LargeOrNonTrivialCallableFallsBackToHeap) {
  auto token = std::make_shared<int>(7);
  int got = 0;
  {
    Event ev([token, &got] { got = *token; });  // shared_ptr: non-trivial copy
    EXPECT_EQ(token.use_count(), 2);
    ev();
  }
  EXPECT_EQ(got, 7);
  EXPECT_EQ(token.use_count(), 1);  // holder destroyed with the event
}

TEST(Event, DroppingHeapEventReleasesWithoutInvoking) {
  auto token = std::make_shared<int>(1);
  bool ran = false;
  {
    Event ev([token, &ran] { ran = true; });
    EXPECT_EQ(token.use_count(), 2);
  }  // destroyed, never invoked
  EXPECT_FALSE(ran);
  EXPECT_EQ(token.use_count(), 1);
}

// ----------------------------------------------------- wheel fundamentals

TEST(EventQueueWheel, PopsAcrossWheelAndOverflowInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(kSpan * 3, [&] { order.push_back(3); });  // overflow heap
  q.push(1, [&] { order.push_back(1); });          // wheel
  q.push(kSpan + 5, [&] { order.push_back(2); });  // overflow heap
  q.push(0, [&] { order.push_back(0); });          // wheel, current cycle
  Cycle prev = 0;
  while (!q.empty()) {
    Cycle at = 0;
    auto ev = q.pop(&at);
    EXPECT_GE(at, prev);
    prev = at;
    ev();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueWheel, SameCycleFifoAcrossBucketHeapBoundary) {
  EventQueue q;
  std::vector<int> order;
  const Cycle x = kSpan + 4;  // beyond the horizon while base is 0
  q.push(x, [&] { order.push_back(0); });  // lands in the overflow heap
  q.push(x, [&] { order.push_back(1); });  // FIFO within the heap too
  q.push(10, [&] { order.push_back(-1); });
  // Draining cycle 10 advances the window; x now fits and both heap
  // entries must migrate into their bucket *before* any later push.
  q.pop()();
  q.push(x, [&] { order.push_back(2); });  // direct wheel push, same cycle
  q.push(x, [&] { order.push_back(3); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3}));
}

TEST(EventQueueWheel, WrapAroundAtLargeCycleDeltas) {
  EventQueue q;
  std::vector<Cycle> popped;
  // Cycles crossing many wheel spans; several alias to the same bucket
  // index mod kSpan, so ordering must come from the window logic alone.
  std::vector<Cycle> cycles;
  for (int k = 12; k >= 0; --k) cycles.push_back(static_cast<Cycle>(k) * (kSpan - 1));
  for (Cycle c : cycles) {
    q.push(c, [&popped, c] { popped.push_back(c); });
  }
  while (!q.empty()) {
    Cycle at = 0;
    q.pop(&at)();
    ASSERT_EQ(at, popped.back());
  }
  EXPECT_EQ(popped.size(), cycles.size());
  for (std::size_t i = 1; i < popped.size(); ++i) EXPECT_LT(popped[i - 1], popped[i]);
}

TEST(EventQueueWheel, WindowJumpOverEmptySpans) {
  EventQueue q;
  Cycle seen = 0;
  q.push(1'000'000'000, [&] { seen = 1; });  // far beyond any wheel span
  Cycle at = 0;
  q.pop(&at)();
  EXPECT_EQ(at, 1'000'000'000u);
  EXPECT_EQ(seen, 1u);
  EXPECT_TRUE(q.empty());
  // The queue stays usable after the jump; earlier pushes clamp forward.
  q.push(5, [&] { seen = 2; });
  q.pop(&at)();
  EXPECT_EQ(seen, 2u);
}

TEST(EventQueueWheel, PushDuringDrainOfSameCycleKeepsFifo) {
  EventQueue q;
  std::vector<int> order;
  q.push(7, [&] {
    order.push_back(0);
    q.push(7, [&] { order.push_back(2); });  // same cycle, while draining it
  });
  q.push(7, [&] { order.push_back(1); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueWheel, ClearDropsPendingHeapEventsWithoutInvoking) {
  EventQueue q;
  auto token = std::make_shared<int>(0);
  bool ran = false;
  q.push(3, [token, &ran] { ran = true; });       // heap-held callable
  q.push(kSpan * 2, [token, &ran] { ran = true; });  // pending in overflow
  EXPECT_EQ(token.use_count(), 3);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(ran);
  EXPECT_EQ(token.use_count(), 1);
}

// ------------------------------------------------------------- teardown

Task<void> sleeper(Simulator& sim, Cycle n) { co_await sim.delay(n); }

TEST(SimulatorTeardown, DestroyProcessesWithPendingInlineEvents) {
  Simulator sim;
  // Coroutine resumes pending in the wheel and in the overflow heap.
  sim.spawn(sleeper(sim, 3), "near");
  sim.spawn(sleeper(sim, kSpan * 5), "far");
  sim.run(1);  // start both; they are now suspended in delay()
  EXPECT_EQ(sim.liveProcesses(), 2u);
  EXPECT_FALSE(sim.quiescent());
  sim.destroyProcesses();  // must drop events before frames, no crash
  EXPECT_EQ(sim.liveProcesses(), 0u);
  EXPECT_TRUE(sim.quiescent());
  // The simulator stays usable after teardown.
  Cycle done = 0;
  sim.spawn(sleeper(sim, 2), "again");
  sim.schedule(4, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, sim.now());
  EXPECT_EQ(sim.liveProcesses(), 0u);
}

// ---------------------------------------------------------- determinism

// Regression pin against the seed kernel (std::function + binary heap):
// the queue swap must not change simulation results. These constants were
// captured from the seed build for the standard fixed-seed workload
// (96x80, 5 frames, qscale 14, GOP {9,3}, seed 3) and may only change
// when the *timing model* changes — never from kernel data structures.
TEST(Determinism, TimedDecodeMatchesSeedKernel) {
  media::VideoGenParams vp;
  vp.width = 96;
  vp.height = 80;
  vp.frames = 5;
  vp.seed = 3;
  vp.detail = 8;
  vp.noise_level = 0.0;
  vp.motion_speed = 4;
  const auto frames = media::generateVideo(vp);
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.qscale = 14;
  cp.gop = {9, 3};
  media::Encoder enc(cp);
  const auto bitstream = enc.encode(frames);

  app::EclipseInstance inst;
  app::DecodeApp dec(inst, bitstream);
  const Cycle cycles = inst.run();
  ASSERT_TRUE(dec.done());
  EXPECT_EQ(cycles, pin::kDecodePinCycles);
  EXPECT_EQ(inst.simulator().eventsDispatched(), pin::kDecodePinEvents);
  EXPECT_EQ(dec.macroblocksDecoded(), pin::kDecodePinMacroblocks);

  // And identical across runs in the same process (no hidden state).
  app::EclipseInstance inst2;
  app::DecodeApp dec2(inst2, bitstream);
  const Cycle cycles2 = inst2.run();
  ASSERT_TRUE(dec2.done());
  EXPECT_EQ(cycles2, cycles);
  EXPECT_EQ(inst2.simulator().eventsDispatched(), inst.simulator().eventsDispatched());
}

}  // namespace
