// Tests for the shell's distributed stream synchronization (Section 5.1):
// GetSpace/PutSpace semantics, space accounting, putspace messages, window
// enforcement and cyclic-buffer data transport.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "eclipse/sim/prng.hpp"
#include "shell_fixture.hpp"

namespace {

using namespace eclipse;
using eclipse::test::TwoShellFixture;
using shell::Shell;
using sim::Task;

class ShellSync : public TwoShellFixture {};

Task<void> checkInitialSpace(Shell& prod, Shell& cons, std::uint32_t size) {
  // Producer starts with the whole buffer as room, consumer with nothing.
  EXPECT_TRUE(co_await prod.getSpace(0, 0, size));
  EXPECT_FALSE(co_await cons.getSpace(0, 0, 1));
}

TEST_F(ShellSync, InitialSpaceIsBufferForProducerOnly) {
  connect(256);
  run(checkInitialSpace(*prod, *cons, 256));
}

Task<void> produceThenConsume(Shell& prod, Shell& cons) {
  std::uint8_t data[100];
  for (std::size_t i = 0; i < sizeof data; ++i) data[i] = static_cast<std::uint8_t>(i * 3);
  EXPECT_TRUE(co_await prod.getSpace(0, 0, 100));
  co_await prod.write(0, 0, 0, data);
  co_await prod.putSpace(0, 0, 100);

  // After the putspace message propagates, the consumer sees the data.
  co_await cons.waitSpace(0, 0, 100);
  std::uint8_t got[100];
  co_await cons.read(0, 0, 0, got);
  for (std::size_t i = 0; i < sizeof got; ++i) EXPECT_EQ(got[i], data[i]);
  co_await cons.putSpace(0, 0, 100);
}

TEST_F(ShellSync, DataFlowsProducerToConsumer) {
  connect(256);
  run(produceThenConsume(*prod, *cons));
  EXPECT_EQ(net->messagesSent(), 2u);
  // After the consumer commits, the producer's space is replenished.
  EXPECT_EQ(prod->streams().row(prod_row).space, 256u);
}

Task<void> getSpaceDenialIsSticky(Shell& cons) {
  EXPECT_FALSE(co_await cons.getSpace(0, 0, 64));
  // The denial must be recorded for best-guess scheduling.
  EXPECT_TRUE(cons.tasks().row(0).blocked);
  EXPECT_EQ(cons.tasks().row(0).blocked_need, 64u);
}

TEST_F(ShellSync, DenialMarksTaskBlocked) {
  connect(256);
  run(getSpaceDenialIsSticky(*cons));
  EXPECT_EQ(cons->streams().row(cons_row).getspace_denied, 1u);
}

Task<void> oversizeRequest(Shell& prod) {
  EXPECT_THROW((void)co_await prod.getSpace(0, 0, 1024), std::invalid_argument);
}

TEST_F(ShellSync, RequestLargerThanBufferThrows) {
  connect(256);
  run(oversizeRequest(*prod));
}

Task<void> commitBeyondGrant(Shell& prod) {
  EXPECT_TRUE(co_await prod.getSpace(0, 0, 32));
  EXPECT_THROW(co_await prod.putSpace(0, 0, 64), std::logic_error);
}

TEST_F(ShellSync, PutSpaceBeyondGrantedThrows) {
  connect(256);
  run(commitBeyondGrant(*prod));
}

Task<void> accessOutsideWindow(Shell& prod) {
  EXPECT_TRUE(co_await prod.getSpace(0, 0, 32));
  std::uint8_t buf[16];
  EXPECT_THROW(co_await prod.write(0, 0, 20, buf), std::logic_error);  // 20+16 > 32
  co_await prod.write(0, 0, 16, buf);  // 16+16 == 32: allowed
}

TEST_F(ShellSync, ReadWriteEnforceGrantedWindow) {
  connect(256);
  run(accessOutsideWindow(*prod));
}

Task<void> directionEnforced(Shell& prod, Shell& cons) {
  std::uint8_t buf[8] = {};
  EXPECT_TRUE(co_await prod.getSpace(0, 0, 8));
  EXPECT_THROW(co_await prod.read(0, 0, 0, buf), std::logic_error);
  EXPECT_THROW(co_await cons.write(0, 0, 0, buf), std::logic_error);
}

TEST_F(ShellSync, PortDirectionIsEnforced) {
  connect(256);
  run(directionEnforced(*prod, *cons));
}

Task<void> randomAccessWithinWindow(Shell& prod, Shell& cons) {
  // The paper allows Read/Write at random offsets inside the window.
  EXPECT_TRUE(co_await prod.getSpace(0, 0, 64));
  std::uint8_t a[16], b[16];
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = static_cast<std::uint8_t>(i);
    b[i] = static_cast<std::uint8_t>(100 + i);
  }
  co_await prod.write(0, 0, 48, b);  // out of order
  co_await prod.write(0, 0, 0, a);
  co_await prod.putSpace(0, 0, 64);

  co_await cons.waitSpace(0, 0, 64);
  std::uint8_t got[16];
  co_await cons.read(0, 0, 48, got);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(got[i], b[i]);
  co_await cons.read(0, 0, 0, got);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(got[i], a[i]);
}

TEST_F(ShellSync, RandomAccessInsideGrantedWindow) {
  connect(256);
  run(randomAccessWithinWindow(*prod, *cons));
}

Task<void> decoupledSyncGranularity(Shell& prod, Shell& cons) {
  // One GetSpace, many writes, one PutSpace: synchronization granularity
  // is independent of transport granularity (Section 2.2).
  EXPECT_TRUE(co_await prod.getSpace(0, 0, 96));
  for (int k = 0; k < 12; ++k) {
    std::uint8_t chunk[8];
    for (auto& c : chunk) c = static_cast<std::uint8_t>(k);
    co_await prod.write(0, 0, static_cast<std::uint64_t>(k) * 8, chunk);
  }
  co_await prod.putSpace(0, 0, 96);

  co_await cons.waitSpace(0, 0, 96);
  std::uint8_t all[96];
  co_await cons.read(0, 0, 0, all);
  for (int k = 0; k < 12; ++k) {
    for (int i = 0; i < 8; ++i) EXPECT_EQ(all[k * 8 + i], k);
  }
  co_await cons.putSpace(0, 0, 96);
}

TEST_F(ShellSync, SyncGranularityDecoupledFromTransport) {
  connect(256);
  run(decoupledSyncGranularity(*prod, *cons));
  // 1 producer commit + 1 consumer commit = 2 messages, despite 12 writes.
  EXPECT_EQ(net->messagesSent(), 2u);
  EXPECT_EQ(prod->streams().row(prod_row).write_calls, 12u);
}

// Property: random packet sizes through a small cyclic buffer arrive
// intact, in order, with producer back-pressure.
struct WrapCase {
  std::uint32_t buffer;
  std::uint32_t max_packet;
  int packets;
};

class ShellWrapProperty : public eclipse::test::TwoShellFixture,
                          public ::testing::WithParamInterface<WrapCase> {};

Task<void> pump(Shell& sh, std::uint32_t max_packet, int packets, std::uint64_t seed) {
  sim::Prng rng(seed);
  std::uint32_t counter = 0;
  for (int p = 0; p < packets; ++p) {
    const auto n = static_cast<std::uint32_t>(rng.range(1, max_packet));
    std::vector<std::uint8_t> buf(n);
    for (auto& b : buf) b = static_cast<std::uint8_t>(counter++);
    co_await sh.waitSpace(0, 0, n);
    co_await sh.write(0, 0, 0, buf);
    co_await sh.putSpace(0, 0, n);
  }
}

Task<void> drain(Shell& sh, std::uint32_t max_packet, int packets, std::uint64_t seed, bool& ok) {
  sim::Prng rng(seed);  // same sequence of sizes as the producer
  std::uint32_t counter = 0;
  ok = true;
  for (int p = 0; p < packets; ++p) {
    const auto n = static_cast<std::uint32_t>(rng.range(1, max_packet));
    std::vector<std::uint8_t> buf(n);
    co_await sh.waitSpace(0, 0, n);
    co_await sh.read(0, 0, 0, buf);
    for (const auto b : buf) {
      if (b != static_cast<std::uint8_t>(counter++)) ok = false;
    }
    co_await sh.putSpace(0, 0, n);
  }
}

TEST_P(ShellWrapProperty, StreamsSurviveWraparound) {
  const auto c = GetParam();
  connect(c.buffer);
  bool ok = false;
  sim->spawn(pump(*prod, c.max_packet, c.packets, 42), "pump");
  sim->spawn(drain(*cons, c.max_packet, c.packets, 42, ok), "drain");
  const auto end = sim->run(100'000'000);
  ASSERT_EQ(sim->liveProcesses(), 0u) << "deadlocked at " << end;
  EXPECT_TRUE(ok);
  EXPECT_EQ(prod->streams().row(prod_row).space, c.buffer);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShellWrapProperty,
                         ::testing::Values(WrapCase{64, 16, 200}, WrapCase{64, 63, 100},
                                           WrapCase{128, 100, 150}, WrapCase{256, 64, 300},
                                           WrapCase{1024, 700, 60}, WrapCase{64, 1, 100}));

Task<void> misalignedBufferRejected(Shell& prod) {
  shell::StreamConfig cfg;
  cfg.task = 1;
  cfg.port = 0;
  cfg.buffer_base = 0x10;  // not cache-line aligned
  cfg.buffer_bytes = 128;
  EXPECT_THROW((void)prod.configureStream(cfg), std::invalid_argument);
  cfg.buffer_base = 0x40;
  cfg.buffer_bytes = 100;  // not a line multiple
  EXPECT_THROW((void)prod.configureStream(cfg), std::invalid_argument);
  co_return;
}

TEST_F(ShellSync, MisalignedBuffersRejected) {
  connect(256);
  run(misalignedBufferRejected(*prod));
}

TEST_F(ShellSync, MessageForUnconfiguredRowIsDroppedAndCounted) {
  // A putspace message racing a teardown can legitimately arrive after its
  // row was invalidated; the shell must absorb it (dropping the simulation
  // would turn a benign race into a crash) and expose a sticky counter so
  // the control plane can still observe the event.
  connect(256);
  net->send(mem::SyncMessage{0, 1, 9, 4});  // row 9 was never configured
  EXPECT_NO_THROW(sim->run());
  EXPECT_EQ(cons->lateSyncDrops(), 1u);
  net->send(mem::SyncMessage{0, 1, 9, 4});
  sim->run();
  EXPECT_EQ(cons->lateSyncDrops(), 2u);
}

}  // namespace
