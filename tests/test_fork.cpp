// Tests for the fork (multicast) coprocessor: one producer, several
// consumers, each with independent back-pressure.

#include <gtest/gtest.h>

#include "eclipse/coproc/fork.hpp"
#include "eclipse/coproc/packet_io.hpp"
#include "eclipse/media/packets.hpp"
#include "shell_fixture.hpp"

namespace {

using namespace eclipse;
using coproc::ForkCoproc;
using coproc::packet_io::blockingRead;
using coproc::packet_io::write;
using shell::Shell;
using sim::Task;

class ForkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim = std::make_unique<sim::Simulator>();
    mem::SramParams sp;
    sp.size_bytes = 64 * 1024;
    sram = std::make_unique<mem::SharedSram>(*sim, sp);
    net = std::make_unique<mem::MessageNetwork>(*sim, 2);
    for (std::uint32_t id = 0; id < 4; ++id) {
      shell::ShellParams p;
      p.id = id;
      p.name = "s" + std::to_string(id);
      shells.push_back(std::make_unique<Shell>(*sim, p, *sram, *net));
    }
    // producer shell 0 -> fork shell 1 -> sink shells 2, 3
    connect(*shells[0], 0, 0, *shells[1], 0, ForkCoproc::kIn, 0x0000);
    connect(*shells[1], 0, 1, *shells[2], 0, 0, 0x1000);
    connect(*shells[1], 0, 2, *shells[3], 0, 0, 0x2000);
    for (auto& sh : shells) sh->configureTask(0, shell::TaskConfig{});
    fork = std::make_unique<ForkCoproc>(*sim, *shells[1], 2, 512);
    fork->start();
  }

  void connect(Shell& prod, sim::TaskId pt, sim::PortId pp, Shell& cons, sim::TaskId ct,
               sim::PortId cp, sim::Addr base) {
    shell::StreamConfig pc;
    pc.task = pt;
    pc.port = pp;
    pc.is_producer = true;
    pc.buffer_base = base;
    pc.buffer_bytes = 2048;
    pc.remote_shell = cons.id();
    pc.initial_space = 2048;
    const auto prow = prod.configureStream(pc);
    pc.task = ct;
    pc.port = cp;
    pc.is_producer = false;
    pc.remote_shell = prod.id();
    pc.remote_row = prow;
    pc.initial_space = 0;
    const auto crow = cons.configureStream(pc);
    prod.streams().row(prow).remote_row = crow;
  }

  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<mem::SharedSram> sram;
  std::unique_ptr<mem::MessageNetwork> net;
  std::vector<std::unique_ptr<Shell>> shells;
  std::unique_ptr<ForkCoproc> fork;
};

Task<void> produceN(Shell& sh, int n) {
  for (int i = 0; i < n; ++i) {
    std::vector<std::uint8_t> pkt{static_cast<std::uint8_t>(media::PacketTag::Mb)};
    for (int b = 0; b < 40; ++b) pkt.push_back(static_cast<std::uint8_t>(i * 40 + b));
    co_await write(sh, 0, 0, pkt, /*wait=*/true);
  }
  co_await write(sh, 0, 0, media::packTag(media::PacketTag::Eos), /*wait=*/true);
}

Task<void> collect(Shell& sh, std::vector<std::vector<std::uint8_t>>& out, sim::Simulator& sim,
                   sim::Cycle delay_per_packet) {
  while (true) {
    std::vector<std::uint8_t> pkt;
    co_await blockingRead(sh, 0, 0, pkt);
    const bool eos = static_cast<media::PacketTag>(pkt.at(0)) == media::PacketTag::Eos;
    out.push_back(std::move(pkt));
    if (eos) co_return;
    co_await sim.delay(delay_per_packet);
  }
}

TEST_F(ForkTest, BothConsumersReceiveIdenticalStreams) {
  std::vector<std::vector<std::uint8_t>> a, b;
  sim->spawn(produceN(*shells[0], 50), "prod");
  sim->spawn(collect(*shells[2], a, *sim, 0), "c0");
  sim->spawn(collect(*shells[3], b, *sim, 0), "c1");
  sim->run(50'000'000);
  ASSERT_EQ(sim->liveProcesses(), 1u);  // only the parked coprocessor loop remains
  ASSERT_EQ(a.size(), 51u);  // 50 packets + Eos
  EXPECT_EQ(a, b);
  EXPECT_EQ(fork->packetsForwarded(), 51u);
}

TEST_F(ForkTest, SlowConsumerThrottlesTheMulticast) {
  std::vector<std::vector<std::uint8_t>> a, b;
  sim->spawn(produceN(*shells[0], 50), "prod");
  sim->spawn(collect(*shells[2], a, *sim, 0), "fast");
  sim->spawn(collect(*shells[3], b, *sim, 3000), "slow");
  sim->run(50'000'000);
  ASSERT_EQ(sim->liveProcesses(), 1u);  // only the parked coprocessor loop remains
  EXPECT_EQ(a, b);
  // The fast consumer can never run ahead by more than the FIFO capacity.
  EXPECT_EQ(a.size(), 51u);
}

}  // namespace
