// Tests for the audio substrate (software decoding on the media processor,
// Section 6) and its Eclipse application.

#include <gtest/gtest.h>

#include "eclipse/app/audio_app.hpp"
#include "eclipse/eclipse.hpp"

namespace {

using namespace eclipse;
using namespace eclipse::media;

TEST(Audio, RoundTripQuality) {
  const auto pcm = audio::generateTone(48000, 7);
  const auto coded = audio::encode(pcm);
  const auto out = audio::decode(coded);
  ASSERT_EQ(out.size(), pcm.size());
  EXPECT_GT(audio::snrDb(pcm, out), 25.0);
  // 4-bit ADPCM: about 4.1 bits/sample incl. block headers.
  EXPECT_LT(coded.size(), pcm.size());
}

TEST(Audio, SilenceCodesCleanly) {
  std::vector<std::int16_t> silence(2048, 0);
  const auto out = audio::decode(audio::encode(silence));
  for (const auto s : out) EXPECT_NEAR(s, 0, 8);
}

TEST(Audio, BlocksAreIndependentlyDecodable) {
  const auto pcm = audio::generateTone(1024, 9);
  audio::AudioParams p;
  p.block_samples = 256;
  const auto coded = audio::encode(pcm, p);
  // Decode only the third block via the block API.
  const std::size_t bb = audio::blockBytes(p.block_samples);
  std::vector<std::int16_t> block;
  audio::decodeBlock(std::span<const std::uint8_t>(coded).subspan(16 + 2 * bb, bb),
                     p.block_samples, block);
  const auto full = audio::decode(coded);
  for (std::size_t i = 0; i < p.block_samples; ++i) {
    EXPECT_EQ(block[i], full[512 + i]);
  }
}

TEST(Audio, MalformedStreamsRejected) {
  EXPECT_THROW((void)audio::decode(std::vector<std::uint8_t>{1, 2, 3}), std::runtime_error);
  auto coded = audio::encode(audio::generateTone(512, 1));
  coded.resize(coded.size() / 2);
  EXPECT_THROW((void)audio::decode(coded), std::runtime_error);
  EXPECT_THROW((void)audio::encode(std::vector<std::int16_t>(16), audio::AudioParams{48000, 3}),
               std::invalid_argument);
}

TEST(Audio, ToneGeneratorDeterministic) {
  EXPECT_EQ(audio::generateTone(1000, 3), audio::generateTone(1000, 3));
  EXPECT_NE(audio::generateTone(1000, 3), audio::generateTone(1000, 4));
}

// ------------------------------------------------------------ Eclipse app

TEST(AudioApp, SoftwareDecodeMatchesGolden) {
  const auto pcm = audio::generateTone(8192, 21);
  const auto coded = audio::encode(pcm);
  const auto golden = audio::decode(coded);

  app::EclipseInstance inst;
  app::AudioDecodeApp app(inst, coded);
  inst.run(2'000'000'000ULL);
  ASSERT_TRUE(app.done());
  EXPECT_EQ(app.pcm(), golden);
}

TEST(AudioApp, RunsAlongsideVideoDecodeOnTheCpu) {
  // The Figure-8 mix: hardware coprocessors decode video while the DSP-CPU
  // decodes audio, all on one instance.
  media::VideoGenParams vp;
  vp.width = 64;
  vp.height = 48;
  vp.frames = 6;
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.gop = media::GopStructure{6, 3};
  media::Encoder enc(cp);
  const auto vbits = enc.encode(media::generateVideo(vp));

  const auto pcm = audio::generateTone(16384, 33);
  const auto abits = audio::encode(pcm);

  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);
  app::DecodeApp video(inst, vbits);
  app::AudioDecodeApp audio_app(inst, abits);
  const auto cycles = inst.run(4'000'000'000ULL);
  (void)cycles;

  ASSERT_TRUE(video.done());
  ASSERT_TRUE(audio_app.done());
  const auto vframes = video.frames();
  for (std::size_t i = 0; i < vframes.size(); ++i) {
    EXPECT_EQ(vframes[i], enc.reconstructed()[i]);
  }
  EXPECT_EQ(audio_app.pcm(), audio::decode(abits));
  // The CPU really multi-tasked its two audio tasks.
  EXPECT_GT(inst.cpuShell().taskSwitches(), 10u);
}

}  // namespace
