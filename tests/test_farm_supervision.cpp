// eclipse_farm supervision tier (DESIGN §14): deadlines, deterministic
// retries, hung-worker replacement and quarantine.
//
// The load-bearing properties checked here:
//  * a simulated-cycle deadline fails at *exactly* that cycle on every
//    worker, every attempt — deterministic, hence retryable;
//  * retried runs are bit-identical to a clean first run in all simulated
//    fields (the recycle()/cold-rebuild contract extended to attempt N);
//  * a worker that stops heartbeating is replaced and its job fail-fasts
//    to the retry path (WorkerLost) without touching any simulated field;
//  * a job that kills two workers is quarantined — terminal, never
//    re-admitted, recorded in the ledger;
//  * none of this costs anything unless a job arms it: an unarmed farm
//    never enters the sliced heartbeat path and stays on the decode pin.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eclipse/farm/farm.hpp"
#include "eclipse/sim/fault.hpp"

#include "decode_pin.hpp"

using namespace eclipse;
using farm::Job;
using farm::JobError;
using farm::JobResult;
using farm::JobStatus;
using farm::RetryPolicy;

namespace {

constexpr sim::Cycle kPinCycles = pin::kDecodePinCycles;
constexpr std::uint64_t kPinEvents = pin::kDecodePinEvents;
constexpr std::uint64_t kPinMacroblocks = pin::kDecodePinMacroblocks;

Job pinJob(std::string name) {
  Job j;
  j.name = std::move(name);
  return j;
}

void expectOnPin(const JobResult& r) {
  EXPECT_EQ(r.status, JobStatus::Completed) << r.error;
  EXPECT_EQ(r.sim_cycles, kPinCycles);
  EXPECT_EQ(r.sim_events, kPinEvents);
  EXPECT_EQ(r.macroblocks, kPinMacroblocks);
  EXPECT_TRUE(r.bit_exact);
}

JobResult runOne(Job job, int workers = 1) {
  farm::FarmOptions opts;
  opts.workers = workers;
  farm::Farm f(opts);
  return f.submitWait(std::move(job)).get();
}

TEST(FarmSupervision, DeadlineFailsAtExactCycleOnEveryWorkerCount) {
  JobResult ref;
  for (int workers : {1, 2}) {
    Job j = pinJob("deadline");
    j.deadline = 60'000;  // the pin decode needs 144885 cycles
    const JobResult r = runOne(std::move(j), workers);
    EXPECT_EQ(r.status, JobStatus::Incomplete);
    EXPECT_EQ(r.cause, JobError::DeadlineExceeded);
    EXPECT_EQ(r.sim_cycles, 60'000u);
    if (workers == 1) {
      ref = r;
    } else {
      EXPECT_EQ(r.sim_events, ref.sim_events);
      EXPECT_EQ(r.macroblocks, ref.macroblocks);
    }
  }
}

TEST(FarmSupervision, RetriedDeadlineAttemptsAreBitIdentical) {
  Job j = pinJob("deadline-retry");
  j.deadline = 60'000;
  j.retry.max_attempts = 3;
  j.retry.backoff_ms = 0.5;
  const JobResult r = runOne(std::move(j), 2);
  EXPECT_EQ(r.status, JobStatus::Incomplete);
  EXPECT_EQ(r.cause, JobError::DeadlineExceeded);
  EXPECT_EQ(r.attempts, 3);
  ASSERT_EQ(r.attempts_log.size(), 2u);
  for (const farm::AttemptRecord& a : r.attempts_log) {
    EXPECT_EQ(a.cause, JobError::DeadlineExceeded);
    EXPECT_EQ(a.sim_cycles, r.sim_cycles);
    EXPECT_EQ(a.sim_events, r.sim_events);
  }
}

TEST(FarmSupervision, SupervisedCleanRunStaysOnPin) {
  farm::FarmOptions opts;
  opts.workers = 2;
  farm::Farm f(opts);
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) {
    Job j = pinJob("clean-" + std::to_string(i));
    j.supervise_ms = 5'000.0;  // armed, but no worker ever goes silent
    j.retry.max_attempts = 2;
    jobs.push_back(std::move(j));
  }
  auto futs = f.submitBatch(std::move(jobs));
  for (auto& fut : futs) {
    const JobResult r = fut.get();
    expectOnPin(r);
    EXPECT_EQ(r.attempts, 1);
  }
  const farm::FarmMetrics m = f.metrics();
  EXPECT_EQ(m.supervisedJobs(), 4u);  // heartbeat-sliced, same result
  EXPECT_EQ(m.workers_replaced, 0u);
  EXPECT_EQ(m.worker_lost, 0u);
}

TEST(FarmSupervision, UnarmedFarmNeverEntersTheSlicedPath) {
  farm::FarmOptions opts;
  opts.workers = 2;
  farm::Farm f(opts);
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(pinJob("plain-" + std::to_string(i)));
  auto futs = f.submitBatch(std::move(jobs));
  for (auto& fut : futs) expectOnPin(fut.get());
  EXPECT_EQ(f.metrics().supervisedJobs(), 0u);
}

TEST(FarmSupervision, HungWorkerIsReplacedAndTheRetryLandsOnThePin) {
  farm::FarmOptions opts;
  opts.workers = 2;
  farm::Farm f(opts);
  Job j = pinJob("hang-once");
  // Generous margins so sanitizer-built slices never false-positive: the
  // injected hang (2.5 s of heartbeat silence) is well past the 1 s
  // supervision window, which itself is far above any slice cost.
  j.chaos.hang_ms = 2'500.0;
  j.chaos.attempts = 1;
  j.supervise_ms = 1'000.0;
  j.retry.max_attempts = 3;
  const JobResult r = f.submitWait(std::move(j)).get();
  expectOnPin(r);
  EXPECT_GE(r.attempts, 2);  // attempt 1 died with its worker
  ASSERT_FALSE(r.attempts_log.empty());
  EXPECT_EQ(r.attempts_log.front().cause, JobError::WorkerLost);
  const farm::FarmMetrics m = f.metrics();
  EXPECT_GE(m.worker_lost, 1u);
  EXPECT_GE(m.workers_replaced, 1u);
  EXPECT_GE(m.retried, 1u);
  EXPECT_GE(m.retry_succeeded, 1u);
  EXPECT_FALSE(m.zombies.empty());
  EXPECT_EQ(f.workerCount(), 2);  // the pool is back to strength
}

TEST(FarmSupervision, JobThatKillsTwoWorkersIsQuarantined) {
  farm::FarmOptions opts;
  opts.workers = 2;
  farm::Farm f(opts);
  Job j = pinJob("hang-always");
  j.chaos.hang_ms = 2'500.0;
  j.chaos.attempts = 99;  // every attempt wedges its worker
  j.supervise_ms = 1'000.0;
  j.retry.max_attempts = 6;  // budget left over: quarantine overrides it
  const JobResult r = f.submitWait(std::move(j)).get();
  EXPECT_EQ(r.status, JobStatus::Quarantined);
  EXPECT_EQ(r.cause, JobError::WorkerLost);
  EXPECT_EQ(r.attempts, 2);  // two kills, then barred
  const auto ledger = f.quarantined();
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger.front().name, "hang-always");
  EXPECT_GE(ledger.front().worker_kills, 2);
  const farm::FarmMetrics m = f.metrics();
  EXPECT_EQ(m.quarantined, 1u);
  EXPECT_GE(m.workers_replaced, 2u);
}

TEST(FarmSupervision, ConfigErrorsAreNeverRetried) {
  Job j;
  j.name = "bad-mode";
  j.schedule.push_back(farm::ModeSegment{"no-such-mode", farm::WorkloadDesc{}});
  j.retry.max_attempts = 5;
  const JobResult r = runOne(std::move(j));
  EXPECT_EQ(r.status, JobStatus::Error);
  EXPECT_EQ(r.cause, JobError::Config);
  EXPECT_EQ(r.attempts, 1);  // deterministic rejection: retrying is futile
  EXPECT_TRUE(r.attempts_log.empty());
}

TEST(FarmSupervision, FaultLatchRetriesAreBitIdenticalToACleanRun) {
  // A seeded task-hang storm against per-shell watchdogs: the fault
  // latches at a deterministic cycle, so a retry must reproduce the
  // failure bit for bit — and match an unsupervised clean first run.
  Job j = pinJob("storm");
  sim::FaultSpec spec;
  spec.kind = sim::FaultKind::TaskHang;
  spec.shell = 0;
  spec.task = 0;
  spec.at_cycle = 10'000;
  spec.delay_cycles = 120'000;
  j.faults.faults.push_back(spec);
  j.watchdog_timeout = 20'000;
  j.max_cycles = 800'000;

  Job oracle_job = j;  // unarmed: the clean-first-run oracle
  const JobResult oracle = runOne(std::move(oracle_job));
  EXPECT_NE(oracle.status, JobStatus::Completed);
  EXPECT_GT(oracle.faults_latched, 0u);

  j.retry.max_attempts = 2;
  j.retry.backoff_ms = 0.5;
  j.supervise_ms = 5'000.0;
  const JobResult r = runOne(std::move(j), 2);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.cause, JobError::FaultLatched);
  EXPECT_EQ(r.sim_cycles, oracle.sim_cycles);
  EXPECT_EQ(r.sim_events, oracle.sim_events);
  EXPECT_EQ(r.faults_latched, oracle.faults_latched);
  ASSERT_EQ(r.attempts_log.size(), 1u);
  EXPECT_EQ(r.attempts_log.front().sim_cycles, r.sim_cycles);
  EXPECT_EQ(r.attempts_log.front().sim_events, r.sim_events);
}

TEST(FarmSupervision, BackoffIsDeterministicBoundedAndGrows) {
  RetryPolicy p;
  p.backoff_ms = 2.0;
  p.backoff_multiplier = 2.0;
  p.max_backoff_ms = 100.0;
  p.jitter_frac = 0.25;
  for (int attempt = 2; attempt <= 8; ++attempt) {
    const double a = farm::retryBackoffMs(p, 42, attempt);
    const double b = farm::retryBackoffMs(p, 42, attempt);
    EXPECT_EQ(a, b);  // pure function of (policy, key, attempt)
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, p.max_backoff_ms * (1.0 + p.jitter_frac));
  }
  // Different keys jitter differently (the whole point of the hash).
  bool any_differs = false;
  for (std::uint64_t key = 0; key < 16; ++key) {
    if (farm::retryBackoffMs(p, key, 2) != farm::retryBackoffMs(p, key + 16, 2)) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
  // Exponential growth below the cap.
  p.jitter_frac = 0.0;
  EXPECT_LT(farm::retryBackoffMs(p, 7, 2), farm::retryBackoffMs(p, 7, 4));
}

TEST(FarmSupervision, LaneDemotionClampsAtLow) {
  EXPECT_EQ(farm::demoted(farm::Priority::High), farm::Priority::Normal);
  EXPECT_EQ(farm::demoted(farm::Priority::Normal), farm::Priority::Low);
  EXPECT_EQ(farm::demoted(farm::Priority::Low), farm::Priority::Low);
}

}  // namespace
