// Serving-tier soak (ctest -L soak; DESIGN §15 over §14).
//
// A chaos tenant submits seeded fault storms (task hangs, payload
// corruption through the PR-4 injector against per-shell watchdogs) and
// host-side worker hangs over the wire, with retries armed — while clean
// tenants stream the pinned reference decode through the same server. The
// properties under test:
//   * every served chaos result is bit-identical in all simulated fields
//     (and terminal status) to its unarmed 1-worker in-process oracle —
//     the serving tier adds nothing to the §14 determinism story;
//   * the clean tenants land exactly on the suite-wide decode pin, every
//     single job, no matter what the chaos tenant does to the workers;
//   * the quarantine ledger ends empty (hang-once jobs recover; storms
//     are simulation-side) and the drain loses nothing.
// Margins are generous: this file also runs on the ThreadSanitizer leg.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "eclipse/farm/farm.hpp"
#include "eclipse/serve/client.hpp"
#include "eclipse/serve/jobspec.hpp"
#include "eclipse/serve/server.hpp"

#include "decode_pin.hpp"

using namespace eclipse;

namespace {

/// Simulated fields under the determinism contract.
struct SimFields {
  farm::JobStatus status;
  sim::Cycle cycles;
  std::uint64_t events, macroblocks;
  bool bit_exact;
  std::uint64_t faults, stalls;
  bool operator==(const SimFields&) const = default;
};

SimFields fieldsOf(const farm::JobResult& r) {
  return {r.status,     r.sim_cycles,     r.sim_events,     r.macroblocks,
          r.bit_exact,  r.faults_latched, r.stalls_latched};
}

SimFields fieldsOf(const serve::WireResult& r) {
  return {r.status,     static_cast<sim::Cycle>(r.sim_cycles),
          r.sim_events, r.macroblocks,
          r.bit_exact,  r.faults_latched,
          r.stalls_latched};
}

}  // namespace

TEST(ServeSoak, ChaosTenantOverTheWireMatchesOraclesAndStarvesNobody) {
  // The same (seed, kind) -> spec derivation the farm soak uses lives in
  // the jobspec grammar (storm= / storm_seed=), so the wire spec and the
  // in-process oracle build the *same* Job value by construction.
  const std::uint64_t seeds[] = {11, 23};
  std::vector<std::string> chaos_specs;
  for (std::uint64_t seed : seeds) {
    const std::string s = std::to_string(seed);
    chaos_specs.push_back("storm-hang-s" + s + " storm=hang storm_seed=" + s +
                          " watchdog=20000 max_cycles=800000 retries=2 backoff_ms=50");
    chaos_specs.push_back("storm-corrupt-s" + s + " storm=corrupt storm_seed=" + s +
                          " watchdog=20000 max_cycles=800000 retries=2 backoff_ms=50");
    chaos_specs.push_back("hang-once-s" + s +
                          " hang_ms=5000 hang_attempts=1 supervise_ms=2000 retries=2");
  }
  const int clean_jobs = 6;

  // Oracle pass: each chaos spec parsed, then *disarmed* (no retries, no
  // host supervision, no injected worker hang — exactly the farm soak's
  // clean-first-run reference) on an unarmed 1-worker farm.
  auto cache = std::make_shared<farm::WorkloadCache>();
  std::map<std::string, SimFields> oracle;
  {
    farm::FarmOptions fo;
    fo.workers = 1;
    fo.queue_capacity = chaos_specs.size() + 1;
    fo.cache = cache;
    farm::Farm f(fo);
    for (const std::string& spec : chaos_specs) {
      serve::ParsedSpec ps;
      std::string err;
      ASSERT_TRUE(serve::parseJobSpec(spec, ps, err)) << spec << ": " << err;
      farm::Job o = std::move(ps.job);
      const std::string name = o.name;
      o.retry = farm::RetryPolicy{};
      o.supervise_ms = 0.0;
      o.chaos = farm::HostHangSpec{};
      oracle.emplace(name, fieldsOf(f.submitWait(std::move(o)).get()));
    }
  }

  // Serve pass: chaos and clean tenants share one server. The chaos
  // tenant's quota keeps it to a bounded worker share even while it is
  // busy killing them.
  serve::ServeOptions so;
  so.farm.workers = 3;
  so.farm.queue_capacity = 32;
  so.farm.cache = cache;
  serve::TenantConfig chaos_cfg;
  chaos_cfg.name = "chaos";
  chaos_cfg.max_inflight = 2;
  chaos_cfg.max_pending = 32;
  serve::TenantConfig clean_cfg;
  clean_cfg.name = "clean";
  clean_cfg.max_inflight = 2;
  clean_cfg.max_pending = 32;
  clean_cfg.weight = 2.0;
  so.tenants = {chaos_cfg, clean_cfg};
  serve::Server server(so);
  server.start();

  serve::Client chaos, clean;
  chaos.connect("127.0.0.1", server.port(), "chaos");
  clean.connect("127.0.0.1", server.port(), "clean");

  std::map<std::uint64_t, std::string> chaos_sent;
  for (const std::string& spec : chaos_specs) {
    const auto s = chaos.submit(spec);
    ASSERT_TRUE(s.accepted) << spec << ": " << serve::rejectReasonName(s.reason);
    chaos_sent.emplace(s.req_id, spec.substr(0, spec.find(' ')));
  }
  for (int i = 0; i < clean_jobs; ++i) {
    ASSERT_TRUE(clean.submit("clean-" + std::to_string(i)).accepted);
  }

  // Every served chaos result must be bit-identical to its oracle.
  std::size_t chaos_results = 0;
  for (const serve::WireResult& r : chaos.awaitAll()) {
    ++chaos_results;
    const auto it = chaos_sent.find(r.req_id);
    ASSERT_NE(it, chaos_sent.end());
    const auto ref = oracle.find(it->second);
    ASSERT_NE(ref, oracle.end()) << it->second;
    EXPECT_TRUE(fieldsOf(r) == ref->second)
        << it->second << ": served (status=" << farm::jobStatusName(r.status)
        << " cycles=" << r.sim_cycles << " events=" << r.sim_events
        << " faults=" << r.faults_latched << ") diverged from its unarmed oracle (status="
        << farm::jobStatusName(ref->second.status) << " cycles=" << ref->second.cycles
        << " events=" << ref->second.events << " faults=" << ref->second.faults << ")";
  }
  EXPECT_EQ(chaos_results, chaos_specs.size());

  // The clean tenant must land on the pin, every job, despite the storm.
  std::size_t clean_results = 0;
  for (const serve::WireResult& r : clean.awaitAll()) {
    ++clean_results;
    EXPECT_EQ(r.status, farm::JobStatus::Completed);
    EXPECT_EQ(r.sim_cycles, pin::kDecodePinCycles);
    EXPECT_EQ(r.sim_events, pin::kDecodePinEvents);
    EXPECT_EQ(r.macroblocks, pin::kDecodePinMacroblocks);
    EXPECT_TRUE(r.bit_exact);
  }
  EXPECT_EQ(clean_results, static_cast<std::size_t>(clean_jobs));

  // Nothing leaks: no quarantined jobs (hang-once recovers, storms are
  // simulation-side), and the drain delivers everything.
  EXPECT_TRUE(server.farm().quarantined().empty());
  chaos.close();
  clean.close();
  server.shutdown();
  EXPECT_EQ(server.resultsDropped(), 0u);
}
