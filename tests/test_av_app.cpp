// Tests for the transport mux substrate and the full A/V playback
// application (software demux + audio decode on the CPU, hardware video).

#include <gtest/gtest.h>

#include "eclipse/app/av_app.hpp"
#include "eclipse/eclipse.hpp"
#include "eclipse/media/audio.hpp"
#include "eclipse/media/mux.hpp"
#include "eclipse/sim/prng.hpp"

namespace {

using namespace eclipse;
using namespace eclipse::media;

TEST(Mux, RoundTripsStreams) {
  sim::Prng rng(5);
  std::vector<std::vector<std::uint8_t>> streams(3);
  streams[0].resize(5000);
  streams[1].resize(1200);
  streams[2].resize(333);
  for (auto& s : streams) {
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.below(256));
  }
  const auto ts = mux::interleave(streams);
  EXPECT_EQ(ts.size() % mux::kPacketBytes, 0u);
  const auto back = mux::split(ts);
  ASSERT_EQ(back.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(back[static_cast<std::size_t>(i)], streams[static_cast<std::size_t>(i)]);
}

TEST(Mux, InterleavingIsActuallyInterleaved) {
  std::vector<std::vector<std::uint8_t>> streams(2);
  streams[0].assign(4000, 1);
  streams[1].assign(4000, 2);
  const auto ts = mux::interleave(streams);
  // Count transitions between stream ids: round-robin => many.
  int transitions = 0;
  int last = -1;
  for (std::size_t at = 0; at < ts.size(); at += mux::kPacketBytes) {
    const int id = ts[at];
    if (last >= 0 && id != last) ++transitions;
    last = id;
  }
  EXPECT_GT(transitions, 10);
}

TEST(Mux, MalformedInputRejected) {
  EXPECT_THROW((void)mux::split(std::vector<std::uint8_t>(100)), std::runtime_error);
  std::vector<std::uint8_t> bad(mux::kPacketBytes, 0);
  bad[0] = 99;  // stream id out of range
  EXPECT_THROW((void)mux::parsePacket(bad), std::runtime_error);
  EXPECT_THROW((void)mux::interleave({}), std::invalid_argument);
}

TEST(AvPlayback, EndToEndAvDecode) {
  // Video ES.
  media::VideoGenParams vp;
  vp.width = 64;
  vp.height = 48;
  vp.frames = 6;
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.gop = media::GopStructure{6, 3};
  media::Encoder enc(cp);
  const auto vbits = enc.encode(media::generateVideo(vp));
  // Audio ES.
  const auto pcm = audio::generateTone(12288, 55);
  const auto abits = audio::encode(pcm);
  // Multiplex.
  const auto ts = mux::interleave({vbits, abits});

  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);
  app::AvPlaybackApp av(inst, ts);
  const auto cycles = inst.run(8'000'000'000ULL);
  (void)cycles;

  ASSERT_TRUE(av.done());
  EXPECT_EQ(av.packetsDemuxed(), ts.size() / mux::kPacketBytes);
  const auto frames = av.frames();
  ASSERT_EQ(frames.size(), 6u);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i], enc.reconstructed()[i]);
  }
  EXPECT_EQ(av.pcm(), audio::decode(abits));
  // Three software tasks shared the CPU: demux, audio feeder, audio decoder.
  int cpu_tasks = 0;
  for (std::uint32_t t = 0; t < inst.cpuShell().tasks().capacity(); ++t) {
    if (inst.cpuShell().tasks().row(static_cast<sim::TaskId>(t)).valid) ++cpu_tasks;
  }
  EXPECT_EQ(cpu_tasks, 3);
}

TEST(AvPlayback, VideoWaitsForDemuxToEnableIt) {
  media::VideoGenParams vp;
  vp.width = 48;
  vp.height = 32;
  vp.frames = 4;
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  media::Encoder enc(cp);
  const auto vbits = enc.encode(media::generateVideo(vp));
  const auto abits = audio::encode(audio::generateTone(4096, 2));
  const auto ts = mux::interleave({vbits, abits});

  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);
  app::AvPlaybackApp av(inst, ts);
  inst.start();
  inst.run(2'000);  // long before the demux can finish staging
  // VLD must still be disabled (no video packets decoded yet).
  EXPECT_FALSE(inst.vldShell().tasks().row(av.video().vldTask()).enabled);
  inst.run(8'000'000'000ULL);
  ASSERT_TRUE(av.done());
}

}  // namespace
