// Unit tests for the functional Kahn Process Network runtime: FIFO
// semantics, graph construction, determinism and deadlock detection.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>

#include "eclipse/kpn/fifo.hpp"
#include "eclipse/kpn/graph.hpp"

namespace {

using namespace eclipse::kpn;

// ------------------------------------------------------------------ fifo

TEST(ByteFifo, BasicRoundTrip) {
  ByteFifo f(64);
  std::uint8_t in[5] = {1, 2, 3, 4, 5};
  f.write(in);
  std::uint8_t out[5] = {};
  EXPECT_TRUE(f.readAll(out));
  EXPECT_EQ(0, std::memcmp(in, out, 5));
  EXPECT_EQ(f.totalProduced(), 5u);
  EXPECT_EQ(f.totalConsumed(), 5u);
}

TEST(ByteFifo, WrapsAroundCapacity) {
  ByteFifo f(8);
  std::uint8_t buf[6];
  for (int round = 0; round < 10; ++round) {
    for (auto& b : buf) b = static_cast<std::uint8_t>(round);
    f.write(buf);
    std::uint8_t out[6];
    ASSERT_TRUE(f.readAll(out));
    for (auto b : out) ASSERT_EQ(b, round);
  }
}

TEST(ByteFifo, EofAfterClose) {
  ByteFifo f(16);
  std::uint8_t in[3] = {9, 9, 9};
  f.write(in);
  f.close();
  std::uint8_t out[3];
  EXPECT_TRUE(f.readAll(out));   // drains remaining data
  EXPECT_FALSE(f.readAll(out));  // then EOF
  EXPECT_EQ(f.readSome(out), 0u);
}

TEST(ByteFifo, WriteAfterCloseThrows) {
  ByteFifo f(16);
  f.close();
  std::uint8_t b[1] = {0};
  EXPECT_THROW(f.write(b), std::logic_error);
}

TEST(ByteFifo, BlockingProducerConsumer) {
  ByteFifo f(4);  // smaller than the transfer: forces blocking both ways
  std::vector<std::uint8_t> data(1000);
  std::iota(data.begin(), data.end(), 0);
  std::thread producer([&] {
    f.write(data);
    f.close();
  });
  std::vector<std::uint8_t> got(1000);
  EXPECT_TRUE(f.readAll(got));
  producer.join();
  EXPECT_EQ(data, got);
  EXPECT_LE(f.maxFill(), 4u);
}

TEST(ByteFifo, TimeoutDetectsDeadlock) {
  ByteFifo f(4);
  f.setTimeout(std::chrono::milliseconds(50));
  std::uint8_t out[1];
  EXPECT_THROW((void)f.readAll(out), DeadlockError);
}

TEST(ByteFifo, ZeroCapacityRejected) { EXPECT_THROW(ByteFifo f(0), std::invalid_argument); }

// ----------------------------------------------------------------- graph

TEST(Graph, SimplePipelineRuns) {
  Graph g;
  const int src = g.addTask("src", [](TaskContext& ctx) {
    for (std::uint32_t i = 0; i < 100; ++i) ctx.write(0, i);
  });
  const int dbl = g.addTask("dbl", [](TaskContext& ctx) {
    std::uint32_t v = 0;
    while (ctx.read(0, v)) ctx.write(0, v * 2);
  });
  std::vector<std::uint32_t> got;
  const int snk = g.addTask("snk", [&](TaskContext& ctx) {
    std::uint32_t v = 0;
    while (ctx.read(0, v)) got.push_back(v);
  });
  g.connect(src, 0, dbl, 0, 64);
  g.connect(dbl, 0, snk, 0, 64);
  g.run();
  ASSERT_EQ(got.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(got[i], 2 * i);
}

TEST(Graph, ForkAndJoin) {
  Graph g;
  const int src = g.addTask("src", [](TaskContext& ctx) {
    for (std::uint32_t i = 0; i < 50; ++i) {
      ctx.write(0, i);
      ctx.write(1, i * 10);
    }
  });
  const int pass_a = g.addTask("a", [](TaskContext& ctx) {
    std::uint32_t v;
    while (ctx.read(0, v)) ctx.write(0, v + 1);
  });
  const int pass_b = g.addTask("b", [](TaskContext& ctx) {
    std::uint32_t v;
    while (ctx.read(0, v)) ctx.write(0, v + 2);
  });
  std::uint64_t sum = 0;
  const int join = g.addTask("join", [&](TaskContext& ctx) {
    std::uint32_t x, y;
    while (ctx.read(0, x) && ctx.read(1, y)) sum += x + y;
  });
  g.connect(src, 0, pass_a, 0, 64);
  g.connect(src, 1, pass_b, 0, 64);
  g.connect(pass_a, 0, join, 0, 64);
  g.connect(pass_b, 0, join, 1, 64);
  g.run();
  // sum of (i+1) + (10i+2) for i in 0..49
  std::uint64_t expect = 0;
  for (std::uint32_t i = 0; i < 50; ++i) expect += (i + 1) + (10 * i + 2);
  EXPECT_EQ(sum, expect);
}

TEST(Graph, RejectsDoubleConnections) {
  Graph g;
  const int a = g.addTask("a", [](TaskContext&) {});
  const int b = g.addTask("b", [](TaskContext&) {});
  const int c = g.addTask("c", [](TaskContext&) {});
  g.connect(a, 0, b, 0, 16);
  EXPECT_THROW(g.connect(a, 0, c, 0, 16), std::logic_error);  // output reused
  EXPECT_THROW(g.connect(c, 0, b, 0, 16), std::logic_error);  // input reused
  EXPECT_THROW(g.connect(9, 0, b, 1, 16), std::out_of_range);
}

TEST(Graph, TaskExceptionPropagates) {
  Graph g;
  const int src = g.addTask("src", [](TaskContext& ctx) {
    for (std::uint32_t i = 0; i < 10; ++i) ctx.write(0, i);
  });
  const int bad = g.addTask("bad", [](TaskContext& ctx) {
    std::uint32_t v;
    (void)ctx.read(0, v);
    throw std::runtime_error("task failure");
  });
  g.connect(src, 0, bad, 0, 1024);
  EXPECT_THROW(g.run(), std::runtime_error);
}

TEST(Graph, UnknownPortThrowsInsideTask) {
  Graph g;
  g.addTask("lonely", [](TaskContext& ctx) { (void)ctx.in(0); });
  EXPECT_THROW(g.run(), std::out_of_range);
}

TEST(Graph, DeadlockSurfacesAsError) {
  Graph g;
  // A cycle with no initial tokens: classic Kahn deadlock.
  const int a = g.addTask("a", [](TaskContext& ctx) {
    std::uint32_t v;
    while (ctx.read(0, v)) ctx.write(0, v);
  });
  const int b = g.addTask("b", [](TaskContext& ctx) {
    std::uint32_t v;
    while (ctx.read(0, v)) ctx.write(0, v);
  });
  g.connect(a, 0, b, 0, 16);
  g.connect(b, 0, a, 0, 16);
  g.setTimeout(std::chrono::milliseconds(50));
  EXPECT_THROW(g.run(), DeadlockError);
}

TEST(Graph, DescribeListsStructure) {
  Graph g;
  const int a = g.addTask("alpha", [](TaskContext&) {});
  const int b = g.addTask("beta", [](TaskContext&) {});
  g.connect(a, 0, b, 0, 128);
  const auto d = g.describe();
  EXPECT_NE(d.find("alpha"), std::string::npos);
  EXPECT_NE(d.find("beta"), std::string::npos);
  EXPECT_NE(d.find("128"), std::string::npos);
}

// Kahn determinism: the observable stream contents are independent of
// scheduling. Run the same randomized-delay network several times and
// check identical results.
TEST(Graph, DeterministicUnderSchedulingNoise) {
  auto runOnce = [](int run) {
    Graph g;
    const int src = g.addTask("src", [run](TaskContext& ctx) {
      for (std::uint32_t i = 0; i < 200; ++i) {
        if ((i * 7 + static_cast<std::uint32_t>(run)) % 13 == 0) {
          std::this_thread::yield();
        }
        ctx.write(0, i * 3 + 1);
      }
    });
    const int mid = g.addTask("mid", [](TaskContext& ctx) {
      std::uint32_t v;
      while (ctx.read(0, v)) {
        if (v % 5 == 0) std::this_thread::yield();
        ctx.write(0, v ^ 0x5a5a);
      }
    });
    std::vector<std::uint32_t> out;
    const int snk = g.addTask("snk", [&](TaskContext& ctx) {
      std::uint32_t v;
      while (ctx.read(0, v)) out.push_back(v);
    });
    g.connect(src, 0, mid, 0, 32);
    g.connect(mid, 0, snk, 0, 32);
    g.run();
    return out;
  };
  const auto first = runOnce(0);
  for (int r = 1; r < 4; ++r) EXPECT_EQ(first, runOnce(r));
}

}  // namespace
