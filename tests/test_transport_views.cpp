// Zero-copy transport path: acquire/commit window views (DESIGN.md §7).
//
// Covers the scatter-gather geometry (two-segment views where the cyclic
// FIFO wraps, at cache-line-misaligned offsets), write-through visibility
// of view stores in the shared SRAM, zero-length edge cases of acquire and
// the span read/write adapters, and the PutSpace accounting of commit().

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "eclipse/shell/window_view.hpp"
#include "shell_fixture.hpp"

namespace eclipse::test {
namespace {

constexpr sim::Addr kBase = 0x400;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), seed);
  return v;
}

using TransportViews = TwoShellFixture;

TEST_F(TransportViews, WrapAroundTwoSegmentsAtMisalignedOffsets) {
  connect(/*buffer_bytes=*/128);  // two 64-byte cache lines
  run([this]() -> sim::Task<void> {
    // Advance the stream position to 60 — misaligned within the first
    // cache line — so the next full-window acquire wraps the buffer.
    const auto first = pattern(60, 0x11);
    EXPECT_TRUE(co_await prod->getSpace(0, 0, 60));
    co_await prod->write(0, 0, 0, first);
    co_await prod->putSpace(0, 0, 60);
    co_await cons->waitSpace(0, 0, 60);
    shell::WindowView rv = co_await cons->acquireRead(0, 0, 0, 60);
    EXPECT_TRUE(rv.contiguous());
    EXPECT_EQ(rv.bytes(), 60u);
    std::vector<std::uint8_t> got(60);
    rv.copyTo(got);
    EXPECT_EQ(got, first);
    co_await rv.commit();

    // A 100-byte write window starting at position 60 must split into
    // [60, 128) and [0, 32) — two segments, the first one line-misaligned.
    co_await prod->waitSpace(0, 0, 100);
    shell::WindowView wv = co_await prod->acquireWrite(0, 0, 0, 100);
    EXPECT_EQ(wv.bytes(), 100u);
    EXPECT_FALSE(wv.contiguous());
    EXPECT_EQ(wv.chunks().size(), 2u);
    EXPECT_EQ(wv.chunks()[0].size, 68u);
    EXPECT_EQ(wv.chunks()[1].size, 32u);
    EXPECT_THROW((void)wv.span(), std::logic_error);

    const auto pat = pattern(100, 0x40);
    wv.copyFrom(pat);
    // Write-through: the bytes land in the stream FIFO immediately, laid
    // out cyclically around the wrap point.
    const auto storage = sram->storage().view();
    for (std::size_t i = 0; i < 68; ++i) EXPECT_EQ(storage[kBase + 60 + i], pat[i]);
    for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(storage[kBase + i], pat[68 + i]);
    co_await wv.commit();

    // The consumer's view wraps identically; gather() must fall back to
    // the scratch copy for the fragmented geometry.
    co_await cons->waitSpace(0, 0, 100);
    shell::WindowView rv2 = co_await cons->acquireRead(0, 0, 0, 100);
    EXPECT_FALSE(rv2.contiguous());
    std::vector<std::uint8_t> round(100);
    rv2.copyTo(round);
    EXPECT_EQ(round, pat);
    std::vector<std::uint8_t> scratch;
    const auto g = rv2.gather(scratch);
    EXPECT_EQ(std::vector<std::uint8_t>(g.begin(), g.end()), pat);
    EXPECT_EQ(scratch.size(), 100u);  // fragmented: gathered via scratch

    // A misaligned sub-window inside the granted window reads through the
    // same wrap: offset 3, length 80 spans both segments.
    shell::WindowView sub = co_await cons->acquireRead(0, 0, 3, 80);
    std::vector<std::uint8_t> subgot(80);
    sub.copyTo(subgot);
    EXPECT_EQ(subgot, std::vector<std::uint8_t>(pat.begin() + 3, pat.begin() + 83));
    co_await rv2.commit();
  }());
}

TEST_F(TransportViews, ZeroLengthAcquireAndSpanAdapters) {
  connect(/*buffer_bytes=*/64);
  run([this]() -> sim::Task<void> {
    EXPECT_TRUE(co_await prod->getSpace(0, 0, 0));
    shell::WindowView wv = co_await prod->acquireWrite(0, 0, 0, 0);
    EXPECT_EQ(wv.bytes(), 0u);
    EXPECT_TRUE(wv.contiguous());
    EXPECT_TRUE(wv.chunks().empty());
    EXPECT_TRUE(wv.span().empty());
    wv.copyFrom({});  // size 0 matches
    EXPECT_EQ(wv.commitBytes(), 0u);
    co_await wv.commit();  // PutSpace(0): legal no-op commit

    // Committing twice is a protocol violation.
    EXPECT_THROW(
        { co_await wv.commit(); }, std::logic_error);

    // Zero-length span adapters complete without touching the cache.
    EXPECT_TRUE(co_await prod->getSpace(0, 0, 16));
    co_await prod->write(0, 0, 0, std::span<const std::uint8_t>{});
    const auto pat = pattern(16, 0x80);
    co_await prod->write(0, 0, 0, pat);
    co_await prod->putSpace(0, 0, 16);

    co_await cons->waitSpace(0, 0, 16);
    std::vector<std::uint8_t> none;
    co_await cons->read(0, 0, 0, none);  // zero-length read
    shell::WindowView zr = co_await cons->acquireRead(0, 0, 16, 0);  // at window end
    EXPECT_EQ(zr.bytes(), 0u);
    std::vector<std::uint8_t> got(16);
    co_await cons->read(0, 0, 0, got);
    EXPECT_EQ(got, pat);
    co_await cons->putSpace(0, 0, 16);
  }());
}

TEST_F(TransportViews, CommitPerformsPutSpaceAccounting) {
  connect(/*buffer_bytes=*/128);
  run([this]() -> sim::Task<void> {
    EXPECT_TRUE(co_await prod->getSpace(0, 0, 48));
    shell::WindowView wv = co_await prod->acquireWrite(0, 0, 16, 24);
    // commit() releases everything up to the end of the view: offset + n.
    EXPECT_EQ(wv.commitBytes(), 40u);
    const auto pat = pattern(24, 0x01);
    wv.copyFrom(pat);
    co_await wv.commit();

    auto& prow = prod->streams().row(prod_row);
    EXPECT_EQ(prow.pos, 40u);
    EXPECT_EQ(prow.granted, 8u);  // 48 granted - 40 committed
    EXPECT_EQ(prow.putspace_calls, 1u);
    EXPECT_EQ(prow.write_calls, 1u);
    EXPECT_EQ(prow.bytes_transferred, 24u);

    co_await cons->waitSpace(0, 0, 40);
    shell::WindowView rv = co_await cons->acquireRead(0, 0, 16, 24);
    std::vector<std::uint8_t> got(24);
    rv.copyTo(got);
    EXPECT_EQ(got, pat);
    co_await rv.commit();
    EXPECT_EQ(cons->streams().row(cons_row).pos, 40u);
  }());
}

TEST_F(TransportViews, AcquireOutsideGrantedWindowThrows) {
  connect(/*buffer_bytes=*/64);
  run([this]() -> sim::Task<void> {
    EXPECT_TRUE(co_await prod->getSpace(0, 0, 16));
    EXPECT_THROW(
        { co_await prod->acquireWrite(0, 0, 8, 16); }, std::logic_error);
    EXPECT_THROW(
        { co_await prod->acquireRead(0, 0, 0, 8); }, std::logic_error);  // wrong direction
    co_await prod->putSpace(0, 0, 0);
  }());
}

}  // namespace
}  // namespace eclipse::test
