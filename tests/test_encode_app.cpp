// Tests for the Eclipse encoding application: determinism, quality
// ordering, transcode chains and coprocessor sharing.

#include <gtest/gtest.h>

#include "eclipse/app/kpn_media.hpp"
#include "eclipse/eclipse.hpp"

namespace {

using namespace eclipse;

media::VideoGenParams vid() {
  media::VideoGenParams vp;
  vp.width = 64;
  vp.height = 48;
  vp.frames = 7;
  vp.seed = 23;
  return vp;
}

media::CodecParams codec(int qscale = 8) {
  media::CodecParams cp;
  cp.width = 64;
  cp.height = 48;
  cp.qscale = qscale;
  cp.gop = media::GopStructure{6, 3};
  return cp;
}

std::vector<std::uint8_t> encodeOnEclipse(const std::vector<media::Frame>& frames,
                                          const media::CodecParams& cp, sim::Cycle* cycles = nullptr) {
  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);
  app::EncodeApp enc(inst, frames, cp);
  const auto end = inst.run(4'000'000'000ULL);
  if (cycles != nullptr) *cycles = end;
  EXPECT_TRUE(enc.done());
  return enc.bitstream();
}

TEST(EncodeApp, BitIdenticalToFunctionalEncoder) {
  // The strongest refinement-correctness statement for the encode side:
  // with matching motion-search parameters, the distributed 9-task Eclipse
  // encoding application (source, ME, FDCT, QRLE, VLE, DEQ, IDCT, RECON,
  // sink — including the feedback reconstruction loop and frame-done
  // token gating) produces the *bit-identical* elementary stream of the
  // sequential functional encoder. Kahn determinism, end to end.
  const auto frames = media::generateVideo(vid());
  auto cp = codec();
  cp.search.range = 4;  // the MC/ME coprocessor's window search parameters
  cp.search.half_pel = true;
  media::Encoder golden(cp);
  const auto golden_bits = golden.encode(frames);
  const auto eclipse_bits = encodeOnEclipse(frames, cp);
  EXPECT_EQ(golden_bits, eclipse_bits);
}

TEST(EncodeApp, AllThreeRefinementLevelsAreBitIdentical) {
  // golden functional encoder == KPN encoder == cycle-level Eclipse
  // encoder: the complete refinement trajectory of Section 4 for the
  // encoding application.
  const auto frames = media::generateVideo(vid());
  auto cp = codec();
  cp.search.range = 4;
  cp.search.half_pel = true;
  media::Encoder golden(cp);
  const auto golden_bits = golden.encode(frames);

  app::KpnEncoder kpn(frames, cp);
  const auto kpn_bits = kpn.run();
  EXPECT_EQ(golden_bits, kpn_bits);

  const auto eclipse_bits = encodeOnEclipse(frames, cp);
  EXPECT_EQ(kpn_bits, eclipse_bits);
}

TEST(EncodeApp, DeterministicAcrossRuns) {
  const auto frames = media::generateVideo(vid());
  sim::Cycle c1 = 0, c2 = 0;
  const auto a = encodeOnEclipse(frames, codec(), &c1);
  const auto b = encodeOnEclipse(frames, codec(), &c2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(c1, c2);
}

TEST(EncodeApp, QscaleOrderingHoldsOnHardwarePath) {
  const auto frames = media::generateVideo(vid());
  auto measure = [&](int q) {
    const auto bits = encodeOnEclipse(frames, codec(q));
    media::Decoder dec;
    const auto out = dec.decode(bits);
    return std::pair{bits.size(), media::averagePsnr(frames, out)};
  };
  const auto [size_fine, psnr_fine] = measure(3);
  const auto [size_coarse, psnr_coarse] = measure(20);
  EXPECT_GT(size_fine, size_coarse);
  EXPECT_GT(psnr_fine, psnr_coarse + 2.0);
}

TEST(EncodeApp, TranscodeChainEclipseToEclipse) {
  // Encode on Eclipse, then decode the result on Eclipse, and check
  // against the golden decoder of the same stream — the full time-shift
  // transcoding path with no functional components in the loop.
  const auto frames = media::generateVideo(vid());
  const auto bits = encodeOnEclipse(frames, codec());

  media::Decoder golden;
  const auto golden_frames = golden.decode(bits);

  app::EclipseInstance inst;
  app::DecodeApp dec(inst, bits);
  inst.run(4'000'000'000ULL);
  ASSERT_TRUE(dec.done());
  const auto eclipse_frames = dec.frames();
  ASSERT_EQ(eclipse_frames.size(), golden_frames.size());
  for (std::size_t i = 0; i < eclipse_frames.size(); ++i) {
    EXPECT_EQ(eclipse_frames[i], golden_frames[i]) << "frame " << i;
  }
}

TEST(EncodeApp, IntraOnlyGopWorks) {
  auto cp = codec();
  cp.gop = media::GopStructure{1, 1};  // III...
  const auto frames = media::generateVideo(vid());
  const auto bits = encodeOnEclipse(frames, cp);
  media::Decoder dec;
  const auto out = dec.decode(bits);
  EXPECT_GT(media::averagePsnr(frames, out), 30.0);
}

TEST(EncodeApp, NoBFramesGopWorks) {
  auto cp = codec();
  cp.gop = media::GopStructure{4, 1};  // IPPP
  const auto frames = media::generateVideo(vid());
  const auto bits = encodeOnEclipse(frames, cp);
  media::Decoder dec;
  const auto out = dec.decode(bits);
  EXPECT_GT(media::averagePsnr(frames, out), 28.0);
}

TEST(EncodeApp, SingleFrameSequence) {
  auto v = vid();
  v.frames = 1;
  const auto frames = media::generateVideo(v);
  const auto bits = encodeOnEclipse(frames, codec());
  media::Decoder dec;
  const auto out = dec.decode(bits);
  ASSERT_EQ(out.size(), 1u);
}

TEST(EncodeApp, SharedCoprocessorsCarryEncodeAndDecodeDirections) {
  const auto frames = media::generateVideo(vid());
  media::Encoder golden_enc(codec());
  const auto dec_bits = golden_enc.encode(frames);

  app::InstanceParams ip;
  ip.sram.size_bytes = 96 * 1024;
  app::EclipseInstance inst(ip);
  app::EncodeApp enc(inst, frames, codec());
  app::DecodeApp dec(inst, dec_bits);
  inst.run(4'000'000'000ULL);
  ASSERT_TRUE(enc.done());
  ASSERT_TRUE(dec.done());

  // The DCT coprocessor must have run forward, inverse (encode loop) and
  // inverse (decode) tasks: three valid task slots.
  int dct_tasks = 0;
  for (std::uint32_t t = 0; t < inst.dctShell().tasks().capacity(); ++t) {
    if (inst.dctShell().tasks().row(static_cast<sim::TaskId>(t)).valid) ++dct_tasks;
  }
  EXPECT_EQ(dct_tasks, 3);
  EXPECT_GT(inst.dctShell().taskSwitches(), 10u);

  const auto out = dec.frames();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], golden_enc.reconstructed()[i]);
  }
}

}  // namespace

namespace {

TEST(KpnEncoder, SmallFifosStillCompleteTheFeedbackLoop) {
  // The encoder graph contains a cycle (recon -> src tokens); bounded
  // FIFOs must not deadlock it as long as one worst-case packet fits.
  const auto frames = media::generateVideo(vid());
  auto cp = codec();
  cp.search.range = 4;
  media::Encoder golden(cp);
  const auto golden_bits = golden.encode(frames);
  app::KpnEncoder small(frames, cp, 4096);
  EXPECT_EQ(small.run(), golden_bits);
}

TEST(KpnEncoder, GraphHasTheNineTaskShape) {
  const auto frames = media::generateVideo(vid());
  app::KpnEncoder enc(frames, codec());
  const auto d = enc.graph().describe();
  for (const char* task : {"src", "me", "fdct", "qrle", "vle", "deq", "idct", "recon"}) {
    EXPECT_NE(d.find(task), std::string::npos) << task;
  }
  EXPECT_EQ(enc.graph().edgeCount(), 10u);
}

}  // namespace
