// E1 — Figure 2: "MPEG-2 decoder process network."
//
// Reproduces the decoder's Kahn network structure and validates the
// refinement trajectory: the functional KPN decode and the cycle-level
// Eclipse decode must both be bit-exact with the golden decoder, and the
// per-picture workload must show the data-dependent irregularity
// (Section 2.2: worst/average load ratios up to ~10x).

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "eclipse/app/kpn_media.hpp"

using namespace eclipse;

int main() {
  eclipse::bench::printHeader("E1: MPEG-2 decoder process network", "Figure 2");

  const auto w = eclipse::bench::makeWorkload(176, 144, 18, 14, {9, 3});

  // --- network structure ------------------------------------------------
  app::KpnDecoder kpn_dec(w.bitstream);
  std::printf("\n%s\n", kpn_dec.graph().describe().c_str());

  // --- functional KPN run ------------------------------------------------
  const auto kpn_frames = kpn_dec.run();
  bool kpn_exact = kpn_frames.size() == w.golden.size();
  for (std::size_t i = 0; kpn_exact && i < kpn_frames.size(); ++i) {
    kpn_exact = kpn_frames[i] == w.golden[i];
  }
  std::printf("KPN decode bit-exact vs golden decoder: %s\n", kpn_exact ? "yes" : "NO");

  // --- timed Eclipse run --------------------------------------------------
  app::EclipseInstance inst;
  const auto run = eclipse::bench::runDecode(inst, w);
  std::printf("Eclipse decode bit-exact: %s (%llu cycles, %.1f cycles/MB)\n",
              run.bit_exact ? "yes" : "NO", static_cast<unsigned long long>(run.cycles),
              static_cast<double>(run.cycles) / static_cast<double>(run.macroblocks));

  // --- data-dependent load irregularity ----------------------------------
  std::printf("\nper-picture load (coded order) — the irregularity Eclipse targets:\n");
  std::printf("%5s %4s %9s %11s %8s\n", "pic", "type", "symbols", "coded_blks", "bits");
  std::uint32_t min_sym = ~0u, max_sym = 0;
  double sum_sym = 0;
  for (const auto& ps : w.picture_stats) {
    std::printf("%5u %4c %9u %11u %8u\n", ps.temporal_ref, media::frameTypeChar(ps.type),
                ps.symbols, ps.coded_blocks, ps.bits);
    min_sym = std::min(min_sym, ps.symbols);
    max_sym = std::max(max_sym, ps.symbols);
    sum_sym += ps.symbols;
  }
  const double avg = sum_sym / static_cast<double>(w.picture_stats.size());
  std::printf("\nVLD/RLSQ load (symbols): worst %u, average %.0f, worst/average = %.2fx, "
              "worst/best = %.2fx\n",
              max_sym, avg, max_sym / avg, static_cast<double>(max_sym) / min_sym);
  return (kpn_exact && run.bit_exact) ? 0 : 1;
}
