// E4 — Figure 10: "Available data for RLSQ, DCT, and MC input streams."
//
// The paper's headline simulation result: the amount of available data in
// the input stream buffers of the RLSQ, DCT and MC coprocessors fluctuates
// with the IPB structure of the MPEG-2 stream, and the bottleneck task
// shifts per frame type — RLSQ for I frames, DCT for P frames, MC for B
// frames. We reproduce the three buffer-fill time series and derive the
// per-picture bottleneck from the mean relative fill of each input buffer
// over that picture's processing interval (a full input buffer means the
// consumer cannot keep up with its producer).

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace eclipse;
using eclipse::bench::Workload;

int main() {
  eclipse::bench::printHeader("E4: buffer filling per frame type (bottleneck shifts)",
                              "Figure 10");

  const Workload w = eclipse::bench::makeWorkload();

  std::printf("\ncoded-order picture workload (from the encoder):\n");
  std::printf("%5s %4s %10s %12s %9s\n", "pic", "type", "symbols", "coded_blks", "bits");
  for (const auto& ps : w.picture_stats) {
    std::printf("%5u %4c %10u %12u %9u\n", ps.temporal_ref, media::frameTypeChar(ps.type),
                ps.symbols, ps.coded_blocks, ps.bits);
  }

  app::InstanceParams ip;
  ip.profiler_period = 200;
  app::EclipseInstance inst(ip);
  app::DecodeAppConfig dcfg;
  dcfg.coef_buffer = 4096;
  dcfg.blocks_buffer = 4096;
  dcfg.res_buffer = 4096;
  app::DecodeApp dec(inst, w.bitstream, dcfg);
  const sim::Cycle cycles = inst.run();
  if (!dec.done()) {
    std::fprintf(stderr, "decode incomplete\n");
    return 1;
  }

  const auto& rlsq_row =
      dec.coefStream().consumer_shell->streams().row(dec.coefStream().consumer_row);
  const auto& dct_row =
      dec.blocksStream().consumer_shell->streams().row(dec.blocksStream().consumer_row);
  const auto& mc_row = dec.resStream().consumer_shell->streams().row(dec.resStream().consumer_row);

  // Charts (the paper's Figure 10 panels).
  sim::TimeSeries rlsq_s("RLSQ input: available data [bytes]");
  sim::TimeSeries dct_s("DCT input: available data [bytes]");
  sim::TimeSeries mc_s("MC input: available data [bytes]");
  for (auto& [c, v] : rlsq_row.fill_series.points()) rlsq_s.sample(c, v);
  for (auto& [c, v] : dct_row.fill_series.points()) dct_s.sample(c, v);
  for (auto& [c, v] : mc_row.fill_series.points()) mc_s.sample(c, v);
  app::ChartOptions opts;
  opts.width = 110;
  opts.height = 6;
  std::printf("\n%s", app::renderStack({&rlsq_s, &dct_s, &mc_s}, opts).c_str());

  // Per-picture intervals from the MC (last-stage) picture boundaries.
  const auto& events = inst.mc().picEvents();
  std::printf("\nper-picture mean relative buffer fill (input of each coprocessor):\n");
  std::printf("%5s %4s %10s %10s %10s   %s\n", "pic", "type", "rlsq", "dct", "mc", "bottleneck");

  std::map<char, std::map<std::string, int>> wins;
  for (std::size_t k = 0; k < events.size(); ++k) {
    const sim::Cycle t0 = events[k].at;
    const sim::Cycle t1 = k + 1 < events.size() ? events[k + 1].at : cycles;
    const double fr = rlsq_row.fill_series.meanValueIn(t0, t1) / rlsq_row.size;
    const double fd = dct_row.fill_series.meanValueIn(t0, t1) / dct_row.size;
    const double fm = mc_row.fill_series.meanValueIn(t0, t1) / mc_row.size;
    // The bottleneck is the most-downstream stage whose input buffer is
    // saturated: everything upstream of the slow stage backs up, so fill
    // alone cannot discriminate — downstream emptiness can.
    const char* bottleneck = fm >= 0.5 ? "MC" : (fd >= 0.5 ? "DCT" : "RLSQ");
    const char type = media::frameTypeChar(events[k].pic.type);
    wins[type][bottleneck] += 1;
    std::printf("%5u %4c %9.1f%% %9.1f%% %9.1f%%   %s\n", events[k].pic.temporal_ref, type,
                100 * fr, 100 * fd, 100 * fm, bottleneck);
  }

  std::printf("\nbottleneck votes per frame type (paper: I->RLSQ, P->DCT, B->MC):\n");
  for (const auto& [type, votes] : wins) {
    std::printf("  %c frames: ", type);
    for (const auto& [who, n] : votes) std::printf("%s=%d ", who.c_str(), n);
    std::printf("\n");
  }

  std::printf("\ntotal decode: %llu cycles, bit-exact output, %llu sync messages\n",
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(inst.network().messagesSent()));
  return 0;
}
