// Host-side microbenchmarks (google-benchmark): throughput of the codec
// kernels and the simulation kernel itself. These measure the *simulator*
// (wall-clock), complementing the simulated-cycle experiments E1-E11.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "eclipse/media/dct.hpp"
#include "eclipse/media/vlc.hpp"
#include "eclipse/sim/sim_event.hpp"

using namespace eclipse;

namespace {

media::Block randomBlock(sim::Prng& rng) {
  media::Block b;
  for (auto& v : b) v = static_cast<std::int16_t>(rng.range(-255, 255));
  return b;
}

void BM_DctForward(benchmark::State& state) {
  sim::Prng rng(1);
  const auto in = randomBlock(rng);
  media::Block out;
  for (auto _ : state) {
    media::dct::forward(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DctForward);

void BM_DctInverse(benchmark::State& state) {
  sim::Prng rng(2);
  const auto in = randomBlock(rng);
  media::Block out;
  for (auto _ : state) {
    media::dct::inverse(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DctInverse);

void BM_VlcBlockRoundTrip(benchmark::State& state) {
  sim::Prng rng(3);
  std::vector<media::rle::RunLevel> pairs;
  for (int i = 0; i < 20; ++i) {
    pairs.push_back(media::rle::RunLevel{static_cast<std::uint8_t>(rng.below(3)),
                                         static_cast<std::int16_t>(rng.range(1, 40))});
  }
  for (auto _ : state) {
    media::BitWriter bw;
    media::vlc::putBlock(bw, pairs);
    const auto bytes = bw.finish();
    media::BitReader br(bytes);
    auto back = media::vlc::getBlock(br);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(pairs.size()));
}
BENCHMARK(BM_VlcBlockRoundTrip);

void BM_EncodeQcifFrame(benchmark::State& state) {
  media::VideoGenParams vp;
  vp.width = 176;
  vp.height = 144;
  vp.frames = 1;
  const auto frames = media::generateVideo(vp);
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  for (auto _ : state) {
    media::Encoder enc(cp);
    auto bits = enc.encode(frames);
    benchmark::DoNotOptimize(bits);
  }
  state.SetItemsProcessed(state.iterations() * 99);  // macroblocks
}
BENCHMARK(BM_EncodeQcifFrame)->Unit(benchmark::kMillisecond);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int sink = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule(static_cast<sim::Cycle>(i % 97), [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_EclipseDecodeQcif(benchmark::State& state) {
  const auto w = eclipse::bench::makeWorkload(96, 80, 5);
  for (auto _ : state) {
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, w.bitstream);
    const auto cycles = inst.run();
    benchmark::DoNotOptimize(cycles);
    if (!dec.done()) state.SkipWithError("decode incomplete");
  }
  state.SetLabel("simulated cycles per run reported by E-benches");
  state.SetItemsProcessed(state.iterations() * 5 * 30);  // MBs
}
BENCHMARK(BM_EclipseDecodeQcif)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
