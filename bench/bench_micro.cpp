// Host-side microbenchmarks (google-benchmark): throughput of the codec
// kernels and the simulation kernel itself. These measure the *simulator*
// (wall-clock), complementing the simulated-cycle experiments E1-E11.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "eclipse/media/dct.hpp"
#include "eclipse/media/vlc.hpp"
#include "eclipse/sim/sim_event.hpp"

using namespace eclipse;

namespace {

media::Block randomBlock(sim::Prng& rng) {
  media::Block b;
  for (auto& v : b) v = static_cast<std::int16_t>(rng.range(-255, 255));
  return b;
}

void BM_DctForward(benchmark::State& state) {
  sim::Prng rng(1);
  const auto in = randomBlock(rng);
  media::Block out;
  for (auto _ : state) {
    media::dct::forward(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DctForward);

void BM_DctInverse(benchmark::State& state) {
  sim::Prng rng(2);
  const auto in = randomBlock(rng);
  media::Block out;
  for (auto _ : state) {
    media::dct::inverse(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DctInverse);

void BM_VlcBlockRoundTrip(benchmark::State& state) {
  sim::Prng rng(3);
  std::vector<media::rle::RunLevel> pairs;
  for (int i = 0; i < 20; ++i) {
    pairs.push_back(media::rle::RunLevel{static_cast<std::uint8_t>(rng.below(3)),
                                         static_cast<std::int16_t>(rng.range(1, 40))});
  }
  for (auto _ : state) {
    media::BitWriter bw;
    media::vlc::putBlock(bw, pairs);
    const auto bytes = bw.finish();
    media::BitReader br(bytes);
    auto back = media::vlc::getBlock(br);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(pairs.size()));
}
BENCHMARK(BM_VlcBlockRoundTrip);

void BM_EncodeQcifFrame(benchmark::State& state) {
  media::VideoGenParams vp;
  vp.width = 176;
  vp.height = 144;
  vp.frames = 1;
  const auto frames = media::generateVideo(vp);
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  for (auto _ : state) {
    media::Encoder enc(cp);
    auto bits = enc.encode(frames);
    benchmark::DoNotOptimize(bits);
  }
  state.SetItemsProcessed(state.iterations() * 99);  // macroblocks
}
BENCHMARK(BM_EncodeQcifFrame)->Unit(benchmark::kMillisecond);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int sink = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule(static_cast<sim::Cycle>(i % 97), [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

// --------------------------------------------------------------- kernel
// Wall-clock throughput of the event kernel itself (the bottleneck of all
// E1-E12 experiments). The same scenarios run under tools/bench_json,
// which emits BENCH_kernel.json for tracking across PRs.

sim::Task<void> storm(sim::Simulator& sim, sim::Cycle stride, int hops) {
  for (int i = 0; i < hops; ++i) co_await sim.delay(stride);
}

// Pure-delay storm: every event is a coroutine resume from DelayAwaiter —
// the allocation-free fast path. Mixed strides exercise both the wheel
// (short) and, at the widest strides times many processes, bucket reuse.
void BM_KernelPureDelayStorm(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    for (int p = 0; p < 64; ++p) {
      sim.spawn(storm(sim, static_cast<sim::Cycle>(p % 13) + 1, 5000), "storm");
    }
    sim.run();
    events += sim.eventsDispatched();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_KernelPureDelayStorm);

// Long-delay storm: strides beyond the wheel span force the overflow heap
// and window-jump path; guards against regressions in the slow path.
void BM_KernelLongDelayStorm(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    for (int p = 0; p < 64; ++p) {
      sim.spawn(storm(sim, static_cast<sim::Cycle>(4096 + 977 * p), 500), "far");
    }
    sim.run();
    events += sim.eventsDispatched();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_KernelLongDelayStorm);

sim::Task<void> fanoutWaiter(sim::SimEvent& ev, int rounds, std::uint64_t& wakes) {
  for (int i = 0; i < rounds; ++i) {
    co_await ev.wait();
    ++wakes;
  }
}

sim::Task<void> fanoutNotifier(sim::Simulator& sim, sim::SimEvent& ev, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.delay(1);
    ev.notifyAll();
  }
}

sim::Task<void> semWorker(sim::Simulator& sim, sim::Semaphore& sem, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sem.acquire();
    sim::SemaphoreGuard guard(sem);
    co_await sim.delay(2);
  }
}

// Mixed-fanout resume pattern: one notifier waking 32 waiters each cycle
// plus 16 workers contending on a 4-slot semaphore — the wake shapes of
// shells (sched/space events) and buses (grant semaphores).
void BM_KernelMixedFanout(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    sim::SimEvent ev(sim);
    sim::Semaphore sem(sim, 4);
    std::uint64_t wakes = 0;
    for (int p = 0; p < 32; ++p) sim.spawn(fanoutWaiter(ev, 500, wakes), "waiter");
    sim.spawn(fanoutNotifier(sim, ev, 500), "notifier");
    for (int p = 0; p < 16; ++p) sim.spawn(semWorker(sim, sem, 500), "sem");
    sim.run();
    benchmark::DoNotOptimize(wakes);
    events += sim.eventsDispatched();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_KernelMixedFanout);

// Reference timed decode, reported as simulated cycles per wall second —
// the end-to-end number every E-bench inherits.
void BM_KernelTimedDecode(benchmark::State& state) {
  const auto w = eclipse::bench::makeWorkload(96, 80, 5);
  std::uint64_t cycles_total = 0;
  for (auto _ : state) {
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, w.bitstream);
    const auto cycles = inst.run();
    benchmark::DoNotOptimize(cycles);
    if (!dec.done()) state.SkipWithError("decode incomplete");
    cycles_total += cycles;
  }
  state.counters["sim_cycles_per_sec"] =
      benchmark::Counter(static_cast<double>(cycles_total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelTimedDecode)->Unit(benchmark::kMillisecond);

void BM_EclipseDecodeQcif(benchmark::State& state) {
  const auto w = eclipse::bench::makeWorkload(96, 80, 5);
  for (auto _ : state) {
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, w.bitstream);
    const auto cycles = inst.run();
    benchmark::DoNotOptimize(cycles);
    if (!dec.done()) state.SkipWithError("decode incomplete");
  }
  state.SetLabel("simulated cycles per run reported by E-benches");
  state.SetItemsProcessed(state.iterations() * 5 * 30);  // MBs
}
BENCHMARK(BM_EclipseDecodeQcif)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
