// E10 — Section 5.2: explicit sync-driven cache coherency.
//
// "Using local GetSpace and PutSpace events for explicit cache coherency
// control results in a simple and efficient implementation in comparison
// with existing generic coherency mechanisms such as bus snooping."
//
// We decode a stream and account every coherency action the shells
// actually performed (invalidations on window extension, flushes before
// putspace), then compare against what a snooping protocol would cost on
// the same run: every cached write would have to be broadcast for lookup
// in every other cache.

#include <cstdio>

#include "bench_util.hpp"

using namespace eclipse;

int main() {
  eclipse::bench::printHeader("E10: explicit coherency vs snooping cost accounting",
                              "Section 5.2");

  const auto w = eclipse::bench::makeWorkload();
  app::EclipseInstance inst;
  const auto r = eclipse::bench::runDecode(inst, w);
  std::printf("\ndecode: %llu cycles, bit-exact: %s\n",
              static_cast<unsigned long long>(r.cycles), r.bit_exact ? "yes" : "NO");

  std::printf("\nper-stream coherency actions (driven purely by GetSpace/PutSpace):\n");
  std::printf("%-10s %5s %6s %10s %10s %12s %10s %12s\n", "shell", "row", "dir", "hits",
              "misses", "invalidates", "flushes", "bytes");
  std::uint64_t invals = 0, flushes = 0, hits = 0, misses = 0, writes = 0, getspace = 0,
                putspace = 0;
  for (auto& sh : inst.shells()) {
    for (std::uint32_t i = 0; i < sh->streams().capacity(); ++i) {
      const auto& row = sh->streams().row(i);
      if (!row.valid) continue;
      std::printf("%-10s %5u %6s %10llu %10llu %12llu %10llu %12llu\n", sh->name().c_str(), i,
                  row.is_producer ? "out" : "in", static_cast<unsigned long long>(row.cache_hits),
                  static_cast<unsigned long long>(row.cache_misses),
                  static_cast<unsigned long long>(row.cache_invalidations),
                  static_cast<unsigned long long>(row.cache_flushes),
                  static_cast<unsigned long long>(row.bytes_transferred));
      invals += row.cache_invalidations;
      flushes += row.cache_flushes;
      hits += row.cache_hits;
      misses += row.cache_misses;
      writes += row.write_calls;
      getspace += row.getspace_calls;
      putspace += row.putspace_calls;
    }
  }

  const std::uint64_t sync_msgs = inst.network().messagesSent();
  std::printf("\ntotals: %llu hits, %llu misses, %llu invalidations, %llu flushes\n",
              static_cast<unsigned long long>(hits), static_cast<unsigned long long>(misses),
              static_cast<unsigned long long>(invals), static_cast<unsigned long long>(flushes));

  // Hypothetical snooping cost on the same run: every cached write is a
  // potential remote hit, so each Write call broadcasts an address lookup
  // to every other shell's caches. Note the asymmetry: the explicit
  // scheme's invalidations and flushes are *local* cache operations (no
  // shared wiring); the only inter-shell coherency traffic is the putspace
  // message stream, which the application needs for synchronization
  // anyway. Snooping, by contrast, puts every broadcast on shared wiring
  // that every cache must monitor.
  const std::uint64_t shells = inst.shells().size();
  const std::uint64_t snoop_lookups = writes * (shells - 1);
  std::printf("\ncoherency traffic comparison:\n");
  std::printf("  %-52s %12llu\n", "explicit: inter-shell messages (putspace, dual-use)",
              static_cast<unsigned long long>(sync_msgs));
  std::printf("  %-52s %12llu\n", "explicit: local-only actions (invalidate + flush)",
              static_cast<unsigned long long>(invals + flushes));
  std::printf("  %-52s %12llu\n", "snooping: broadcast lookups on shared wiring",
              static_cast<unsigned long long>(snoop_lookups));
  std::printf("  shared-wiring events, explicit vs snoop: %.1f%%\n",
              100.0 * static_cast<double>(sync_msgs) / static_cast<double>(snoop_lookups));
  std::printf("  (getspace=%llu putspace=%llu: sync calls double as coherency points)\n",
              static_cast<unsigned long long>(getspace),
              static_cast<unsigned long long>(putspace));

  // Window privacy invariant (observation 1): hits never needed any
  // inter-shell communication, so the hit count is "free" concurrency.
  std::printf("\nwindow-privacy payoff: %llu cache hits (%.1f%% of accesses) required no\n"
              "coherency traffic at all because granted windows are private.\n",
              static_cast<unsigned long long>(hits),
              100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses));
  return r.bit_exact ? 0 : 1;
}
