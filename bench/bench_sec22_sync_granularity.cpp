// E9 — Section 2.2: synchronization granularity versus buffer size.
//
// "Eclipse reduces communication buffer requirements by changing the grain
// of synchronization to a finer level (e.g. from picture to macroblock
// level in MPEG). The resulting small communication buffers can be kept
// on-chip."
//
// A producer/consumer pair streams pictures worth of macroblock data while
// synchronising at different grains (whole picture, slice, macroblock).
// For each grain we report the minimum workable buffer and, at a fixed
// generous buffer, the stall behaviour and message cost.

#include <cstdio>

#include "bench_util.hpp"

using namespace eclipse;
using shell::Shell;
using sim::Task;

namespace {

constexpr std::uint32_t kMbBytes = 384;    // one 4:2:0 macroblock
constexpr int kMbsPerPicture = 99;         // QCIF
constexpr int kPictures = 12;

struct Harness {
  sim::Simulator sim;
  mem::SharedSram sram;
  mem::MessageNetwork net{sim, 2};
  std::unique_ptr<Shell> prod;
  std::unique_ptr<Shell> cons;

  Harness(std::uint32_t buffer)
      : sram(sim, [] {
          mem::SramParams p;
          p.size_bytes = 1024 * 1024;  // generous: the experiment varies the FIFO size only
          return p;
        }()) {
    shell::ShellParams p;
    p.id = 0;
    prod = std::make_unique<Shell>(sim, p, sram, net);
    p.id = 1;
    cons = std::make_unique<Shell>(sim, p, sram, net);
    shell::StreamConfig pc;
    pc.task = 0;
    pc.port = 0;
    pc.is_producer = true;
    pc.buffer_base = 0;
    pc.buffer_bytes = buffer;
    pc.remote_shell = 1;
    pc.remote_row = 0;
    pc.initial_space = buffer;
    (void)prod->configureStream(pc);
    pc.is_producer = false;
    pc.remote_shell = 0;
    pc.initial_space = 0;
    (void)cons->configureStream(pc);
    prod->configureTask(0, shell::TaskConfig{});
    cons->configureTask(0, shell::TaskConfig{});
  }
};

/// Producer: writes MBs one by one but synchronises every `grain_mbs`.
Task<void> producer(Shell& sh, int grain_mbs, sim::Simulator& sim) {
  std::vector<std::uint8_t> mb(kMbBytes, 0x33);
  const std::uint32_t grain_bytes = static_cast<std::uint32_t>(grain_mbs) * kMbBytes;
  for (int pic = 0; pic < kPictures; ++pic) {
    for (int g = 0; g < kMbsPerPicture; g += grain_mbs) {
      const int mbs = std::min(grain_mbs, kMbsPerPicture - g);
      const std::uint32_t bytes = static_cast<std::uint32_t>(mbs) * kMbBytes;
      co_await sh.waitSpace(0, 0, bytes == grain_bytes ? grain_bytes : bytes);
      for (int m = 0; m < mbs; ++m) {
        co_await sh.write(0, 0, static_cast<std::uint64_t>(m) * kMbBytes, mb);
        co_await sim.delay(80);  // per-MB production work
      }
      co_await sh.putSpace(0, 0, bytes);
    }
  }
}

Task<void> consumer(Shell& sh, int grain_mbs, sim::Simulator& sim) {
  std::vector<std::uint8_t> mb(kMbBytes);
  for (int pic = 0; pic < kPictures; ++pic) {
    for (int g = 0; g < kMbsPerPicture; g += grain_mbs) {
      const int mbs = std::min(grain_mbs, kMbsPerPicture - g);
      const std::uint32_t bytes = static_cast<std::uint32_t>(mbs) * kMbBytes;
      co_await sh.waitSpace(0, 0, bytes);
      for (int m = 0; m < mbs; ++m) {
        co_await sh.read(0, 0, static_cast<std::uint64_t>(m) * kMbBytes, mb);
        co_await sim.delay(80);  // per-MB consumption work
      }
      co_await sh.putSpace(0, 0, bytes);
    }
  }
}

struct GrainResult {
  sim::Cycle cycles = 0;
  std::uint64_t messages = 0;
  bool completed = false;
};

GrainResult runGrain(int grain_mbs, std::uint32_t buffer_bytes) {
  Harness h(buffer_bytes);
  h.sim.spawn(producer(*h.prod, grain_mbs, h.sim), "prod");
  h.sim.spawn(consumer(*h.cons, grain_mbs, h.sim), "cons");
  GrainResult r;
  r.cycles = h.sim.run(1'000'000'000);
  r.completed = h.sim.liveProcesses() == 0;
  r.messages = h.net.messagesSent();
  return r;
}

std::uint32_t roundLine(std::uint32_t b) { return (b + 63) / 64 * 64; }

}  // namespace

int main() {
  eclipse::bench::printHeader("E9: synchronization granularity vs buffer requirements",
                              "Section 2.2");

  const struct {
    const char* name;
    int mbs;
  } grains[] = {{"picture (99 MB)", 99}, {"slice (11 MB)", 11}, {"4 macroblocks", 4},
                {"macroblock", 1}};

  std::printf("\n-- minimum workable on-chip buffer per grain --\n");
  std::printf("%-18s %14s %16s\n", "sync grain", "min buffer[B]", "vs picture grain");
  std::uint32_t pic_buffer = 0;
  for (const auto& g : grains) {
    // The minimum buffer is one synchronization unit (GetSpace cannot ask
    // for more than the buffer): probe increasing line-rounded sizes.
    std::uint32_t min_ok = 0;
    for (std::uint32_t units = 1; units <= 4; ++units) {
      const std::uint32_t candidate = roundLine(static_cast<std::uint32_t>(g.mbs) * kMbBytes);
      const auto r = runGrain(g.mbs, candidate * units);
      if (r.completed) {
        min_ok = candidate * units;
        break;
      }
    }
    if (pic_buffer == 0) pic_buffer = min_ok;
    std::printf("%-18s %14u %15.1f%%\n", g.name, min_ok,
                100.0 * min_ok / static_cast<double>(pic_buffer));
  }

  std::printf("\n-- behaviour at a fixed 2-picture buffer --\n");
  std::printf("%-18s %12s %12s %14s\n", "sync grain", "cycles", "sync msgs", "msgs/picture");
  const std::uint32_t big = roundLine(2 * kMbsPerPicture * kMbBytes);
  for (const auto& g : grains) {
    const auto r = runGrain(g.mbs, big);
    std::printf("%-18s %12llu %12llu %14.1f\n", g.name,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.messages),
                static_cast<double>(r.messages) / kPictures);
  }

  std::printf("\nshape check vs paper: macroblock-grain sync runs in a buffer ~1%% the size\n"
              "of picture-grain sync at comparable throughput — the property that lets\n"
              "Eclipse keep its stream FIFOs in a small on-chip SRAM — at the price of a\n"
              "two-orders-of-magnitude higher synchronization message rate (hence the\n"
              "hardware shell implementation).\n");
  return 0;
}
