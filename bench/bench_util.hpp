#pragma once

// Shared helpers for the experiment-reproduction benches (DESIGN.md E1-E11).

#include <cstdio>
#include <string>
#include <vector>

#include "eclipse/eclipse.hpp"

namespace eclipse::bench {

/// Standard workload for the decode experiments: a synthetic sequence with
/// strong texture (rich I-frames), moderate object motion (P residuals) and
/// low noise (cheap B residuals) — the load profile Figure 10 relies on.
struct Workload {
  media::VideoGenParams video;
  media::CodecParams codec;
  std::vector<media::Frame> frames;
  std::vector<std::uint8_t> bitstream;
  std::vector<media::PictureStats> picture_stats;  // coded order
  std::vector<media::Frame> golden;                // encoder reconstruction
};

inline Workload makeWorkload(int width = 176, int height = 144, int frame_count = 9,
                             int qscale = 14, media::GopStructure gop = {9, 3},
                             std::uint64_t seed = 3) {
  Workload w;
  w.video.width = width;
  w.video.height = height;
  w.video.frames = frame_count;
  w.video.seed = seed;
  w.video.detail = 8;        // heavy texture: expensive I frames
  w.video.noise_level = 0.0; // no noise: inter residuals stay cheap
  w.video.motion_speed = 4;
  w.frames = media::generateVideo(w.video);
  w.codec.width = width;
  w.codec.height = height;
  w.codec.qscale = qscale;
  w.codec.gop = gop;
  media::Encoder enc(w.codec);
  w.bitstream = enc.encode(w.frames);
  w.picture_stats = enc.pictureStats();
  w.golden = enc.reconstructed();
  return w;
}

/// Result of one timed decode run.
struct DecodeRun {
  sim::Cycle cycles = 0;
  bool bit_exact = false;
  std::uint64_t macroblocks = 0;
};

inline DecodeRun runDecode(app::EclipseInstance& inst, const Workload& w) {
  app::DecodeApp dec(inst, w.bitstream);
  DecodeRun r;
  r.cycles = inst.run();
  if (!dec.done()) {
    std::fprintf(stderr, "warning: decode incomplete at cycle %llu\n",
                 static_cast<unsigned long long>(r.cycles));
    return r;
  }
  r.macroblocks = dec.macroblocksDecoded();
  const auto out = dec.frames();
  r.bit_exact = out.size() == w.golden.size();
  for (std::size_t i = 0; r.bit_exact && i < out.size(); ++i) {
    r.bit_exact = out[i] == w.golden[i];
  }
  return r;
}

inline void printHeader(const char* experiment, const char* paper_artifact) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper artifact: %s\n", paper_artifact);
  std::printf("==================================================================\n");
}

}  // namespace eclipse::bench
