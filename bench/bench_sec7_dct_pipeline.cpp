// E12 — Section 7, closing the design loop: "Based on this feedback, we
// decided to increase performance by pipelining the DCT coprocessor and
// improving the prefetching strategy of the data caches in the shell."
//
// This bench replays that design iteration: baseline instance vs pipelined
// DCT vs pipelined DCT + prefetching, and shows how the Figure-10
// per-picture bottleneck distribution responds (the P-frame DCT bottleneck
// should melt away, shifting pressure to the remaining stages).

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"

using namespace eclipse;

namespace {

struct Variant {
  const char* name;
  bool pipelined_dct;
  bool prefetch;
};

struct Outcome {
  sim::Cycle cycles = 0;
  std::map<char, std::map<std::string, int>> votes;  // frame type -> bottleneck -> count
  bool ok = false;
};

Outcome runVariant(const eclipse::bench::Workload& w, const Variant& v) {
  app::InstanceParams ip;
  ip.dct.pipelined = v.pipelined_dct;
  ip.prefetch = v.prefetch;
  ip.profiler_period = 200;
  app::EclipseInstance inst(ip);
  app::DecodeAppConfig dcfg;
  dcfg.coef_buffer = 4096;
  dcfg.blocks_buffer = 4096;
  dcfg.res_buffer = 4096;
  app::DecodeApp dec(inst, w.bitstream, dcfg);
  Outcome o;
  o.cycles = inst.run();
  o.ok = dec.done();
  if (!o.ok) return o;

  const auto& rlsq_row =
      dec.coefStream().consumer_shell->streams().row(dec.coefStream().consumer_row);
  const auto& dct_row =
      dec.blocksStream().consumer_shell->streams().row(dec.blocksStream().consumer_row);
  const auto& mc_row = dec.resStream().consumer_shell->streams().row(dec.resStream().consumer_row);
  const auto& events = inst.mc().picEvents();
  for (std::size_t k = 0; k < events.size(); ++k) {
    const sim::Cycle t0 = events[k].at;
    const sim::Cycle t1 = k + 1 < events.size() ? events[k + 1].at : o.cycles;
    const double fr = rlsq_row.fill_series.meanValueIn(t0, t1) / rlsq_row.size;
    const double fd = dct_row.fill_series.meanValueIn(t0, t1) / dct_row.size;
    const double fm = mc_row.fill_series.meanValueIn(t0, t1) / mc_row.size;
    const char* b = fm >= 0.5 ? "MC" : (fd >= 0.5 ? "DCT" : "RLSQ");
    (void)fr;
    o.votes[media::frameTypeChar(events[k].pic.type)][b] += 1;
  }
  return o;
}

}  // namespace

int main() {
  eclipse::bench::printHeader("E12: the Section-7 design iteration (pipelined DCT + prefetch)",
                              "Section 7, closing paragraph");

  const auto w = eclipse::bench::makeWorkload();

  const Variant variants[] = {
      {"baseline (Fig. 10 instance)", false, true},
      {"baseline, prefetch off", false, false},
      {"pipelined DCT", true, true},
      {"pipelined DCT, prefetch off", true, false},
  };

  sim::Cycle base = 0;
  std::printf("\n%-30s %12s %10s   %s\n", "variant", "cycles", "speedup",
              "bottleneck votes per frame type");
  for (const auto& v : variants) {
    const auto o = runVariant(w, v);
    if (!o.ok) {
      std::printf("%-30s FAILED\n", v.name);
      return 1;
    }
    if (base == 0) base = o.cycles;
    std::printf("%-30s %12llu %9.2fx   ", v.name, static_cast<unsigned long long>(o.cycles),
                static_cast<double>(base) / static_cast<double>(o.cycles));
    for (const auto& [type, per] : o.votes) {
      std::printf("%c:(", type);
      bool first = true;
      for (const auto& [who, n] : per) {
        std::printf("%s%s=%d", first ? "" : " ", who.c_str(), n);
        first = false;
      }
      std::printf(") ");
    }
    std::printf("\n");
  }

  std::printf("\nshape check vs paper: pipelining the DCT removes the P-frame DCT\n"
              "bottleneck identified in Figure 10 and speeds up the whole decode; the\n"
              "bottleneck redistributes to RLSQ/MC, which is exactly what directed the\n"
              "authors' next steps (MC caching, prefetch strategy).\n");
  return 0;
}
