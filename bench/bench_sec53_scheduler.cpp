// E8 — Section 5.3 / ref [13]: the weighted round-robin task scheduler.
//
// Two experiments on a dual-decode mix (every coprocessor time-shares two
// tasks): (a) a sweep of the cycle budget (the paper quotes useful budgets
// of 1,000-10,000 cycles), and (b) the 'best guess' ablation — scheduling
// without denied-GetSpace readiness prediction wastes processing-step
// attempts on blocked tasks.

#include <cstdio>

#include "bench_util.hpp"

using namespace eclipse;

namespace {

struct RunStats {
  sim::Cycle cycles = 0;
  std::uint64_t switches = 0;
  std::uint64_t steps = 0;
  bool ok = false;
};

RunStats runDual(const eclipse::bench::Workload& w, std::uint32_t budget, bool best_guess) {
  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  ip.best_guess = best_guess;
  app::EclipseInstance inst(ip);
  app::DecodeAppConfig cfg;
  cfg.budget_cycles = budget;
  app::DecodeApp a(inst, w.bitstream, cfg);
  app::DecodeApp b(inst, w.bitstream, cfg);
  RunStats r;
  r.cycles = inst.run(4'000'000'000ULL);
  r.ok = a.done() && b.done();
  for (auto& sh : inst.shells()) r.switches += sh->taskSwitches();
  r.steps = inst.vld().stepsExecuted() + inst.rlsq().stepsExecuted() +
            inst.dct().stepsExecuted() + inst.mc().stepsExecuted();
  return r;
}

}  // namespace

int main() {
  eclipse::bench::printHeader("E8: weighted round-robin budgets and best-guess scheduling",
                              "Section 5.3 / ref [13]");

  const auto w = eclipse::bench::makeWorkload();

  std::printf("\n-- budget sweep (dual decode, best guess on) --\n");
  std::printf("(switch rate in kHz assumes the paper's 150 MHz coprocessor clock;\n");
  std::printf(" the paper quotes 10-100 kHz task switch rates, Section 5.3)\n");
  std::printf("%10s %12s %12s %12s %14s %8s\n", "budget", "cycles", "switches", "steps",
              "switch[kHz]", "ok");
  for (const std::uint32_t budget : {100u, 500u, 1000u, 2000u, 5000u, 10000u, 50000u}) {
    const auto r = runDual(w, budget, true);
    const double khz = static_cast<double>(r.switches) /
                       (static_cast<double>(r.cycles) / 150e6) / 1e3;
    std::printf("%10u %12llu %12llu %12llu %14.1f %8s\n", budget,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.switches),
                static_cast<unsigned long long>(r.steps), khz, r.ok ? "yes" : "NO");
  }

  std::printf("\n-- best-guess ablation (budget 2000) --\n");
  std::printf("%-24s %12s %12s %12s\n", "scheduler", "cycles", "switches", "steps");
  const auto smart = runDual(w, 2000, true);
  const auto naive = runDual(w, 2000, false);
  std::printf("%-24s %12llu %12llu %12llu\n", "best guess (paper)",
              static_cast<unsigned long long>(smart.cycles),
              static_cast<unsigned long long>(smart.switches),
              static_cast<unsigned long long>(smart.steps));
  std::printf("%-24s %12llu %12llu %12llu\n", "naive round-robin",
              static_cast<unsigned long long>(naive.cycles),
              static_cast<unsigned long long>(naive.switches),
              static_cast<unsigned long long>(naive.steps));
  std::printf("\nnaive scheduling executes %.1f%% more processing-step attempts (wasted\n"
              "GetTask/GetSpace work on blocked tasks) and finishes %.1f%% slower.\n",
              100.0 * (static_cast<double>(naive.steps) / smart.steps - 1.0),
              100.0 * (static_cast<double>(naive.cycles) / smart.cycles - 1.0));
  return (smart.ok && naive.ok) ? 0 : 1;
}
