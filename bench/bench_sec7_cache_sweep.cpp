// E6 — Section 7: design-space exploration of the shell stream caches
// ("Experiments include caching strategies in the shell (e.g. varying
// cache size, cache prefetching or not)").
//
// Sweeps cache line size, lines per port and prefetching, reporting decode
// time, hit rate and SRAM bus traffic for each point.

#include <cstdio>

#include "bench_util.hpp"

using namespace eclipse;

int main() {
  eclipse::bench::printHeader("E6: shell cache design-space sweep", "Section 7");

  const auto w = eclipse::bench::makeWorkload();

  struct Point {
    std::uint32_t line;
    std::uint32_t lines;
    bool prefetch;
  };
  std::vector<Point> points = {
      {64, 2, true},  {64, 2, false}, {64, 1, true},  {64, 1, false}, {64, 4, true},
      {32, 2, true},  {32, 2, false}, {32, 4, true},  {128, 2, true}, {128, 2, false},
      {16, 4, true},  {16, 4, false},
  };

  std::printf("\n%8s %7s %9s %12s %10s %10s %10s %10s\n", "line[B]", "lines", "prefetch",
              "cycles", "hit-rate", "rd-bus%", "wr-bus%", "prefetches");
  sim::Cycle baseline = 0;
  for (const auto& p : points) {
    app::InstanceParams ip;
    ip.cache_line_bytes = p.line;
    ip.cache_lines_per_port = p.lines;
    ip.prefetch = p.prefetch;
    app::EclipseInstance inst(ip);
    const auto r = eclipse::bench::runDecode(inst, w);
    if (!r.bit_exact) {
      std::printf("CONFIG FAILED CORRECTNESS line=%u lines=%u\n", p.line, p.lines);
      return 1;
    }
    std::uint64_t hits = 0, misses = 0, prefetches = 0;
    for (auto& sh : inst.shells()) {
      for (std::uint32_t i = 0; i < sh->streams().capacity(); ++i) {
        const auto& row = sh->streams().row(i);
        if (!row.valid) continue;
        hits += row.cache_hits;
        misses += row.cache_misses;
        prefetches += row.prefetches;
      }
    }
    if (baseline == 0) baseline = r.cycles;
    std::printf("%8u %7u %9s %12llu %9.1f%% %9.1f%% %9.1f%% %10llu   (%+.1f%%)\n", p.line,
                p.lines, p.prefetch ? "on" : "off", static_cast<unsigned long long>(r.cycles),
                100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses),
                100.0 * inst.sram().readBus().utilization(r.cycles),
                100.0 * inst.sram().writeBus().utilization(r.cycles),
                static_cast<unsigned long long>(prefetches),
                100.0 * (static_cast<double>(r.cycles) / static_cast<double>(baseline) - 1.0));
  }

  std::printf("\nshape check vs paper: prefetching and larger lines trade SRAM bandwidth\n"
              "for fewer coprocessor stalls; every configuration stays bit-exact because\n"
              "coherency is driven by the synchronization events, not by cache geometry.\n");
  return 0;
}
