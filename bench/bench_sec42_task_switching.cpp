// E11 — Section 4.2: coprocessor designs on denied GetSpace.
//
// "The coprocessor designer can decide to let the coprocessor wait for the
// space to arrive, and effectively block the coprocessor. Alternatively,
// the coprocessor can call GetTask and give the shell the opportunity to
// provide a new task."
//
// A multi-tasking coprocessor runs two independent pass-through tasks fed
// by *bursty* producers (data-dependent arrival, the Eclipse application
// domain). Design A aborts the processing step on denial and asks GetTask
// for other work; design B blocks inside the step. With bursty inputs the
// blocking design wastes the coprocessor whenever the task it happens to
// hold is starved while the other task has a burst queued.

#include <cstdio>

#include "bench_util.hpp"
#include "eclipse/coproc/coprocessor.hpp"

using namespace eclipse;
using shell::Shell;
using sim::Task;

namespace {

constexpr std::uint32_t kPacket = 192;
constexpr int kPacketsPerTask = 300;
constexpr sim::Cycle kComputePerPacket = 300;
constexpr int kBurst = 20;
constexpr sim::Cycle kGap = 12000;

/// Pass-through coprocessor with two tasks; `blocking` selects design B.
class PassThrough final : public coproc::Coprocessor {
 public:
  PassThrough(sim::Simulator& sim, Shell& sh, bool blocking)
      : Coprocessor(sim, sh, "passthrough"), blocking_(blocking) {}

  int done_packets[2] = {0, 0};

 protected:
  Task<void> step(sim::TaskId task, std::uint32_t) override {
    // Output space first (deadlock-free order), then input.
    if (blocking_) {
      co_await shell_.waitSpace(task, 1, kPacket);
      co_await shell_.waitSpace(task, 0, kPacket);
    } else {
      if (!co_await shell_.getSpace(task, 1, kPacket)) co_return;
      if (!co_await shell_.getSpace(task, 0, kPacket)) co_return;
    }
    std::uint8_t buf[kPacket];
    co_await shell_.read(task, 0, 0, buf);
    co_await sim_.delay(kComputePerPacket);
    co_await shell_.write(task, 1, 0, buf);
    co_await shell_.putSpace(task, 0, kPacket);
    co_await shell_.putSpace(task, 1, kPacket);
    if (++done_packets[task] >= kPacketsPerTask) finishTask(task);
  }

 private:
  bool blocking_;
};

/// Bursty producer: long idle gaps, then a burst of packets. The two tasks
/// get anti-phased bursts so there is almost always work for *some* task.
Task<void> burstyProducer(Shell& sh, sim::Simulator& sim, int phase) {
  std::uint8_t buf[kPacket] = {};
  int sent = 0;
  if (phase != 0) co_await sim.delay(static_cast<sim::Cycle>(phase));
  while (sent < kPacketsPerTask) {
    const int burst = std::min(kBurst, kPacketsPerTask - sent);
    for (int i = 0; i < burst; ++i) {
      co_await sh.waitSpace(0, 0, kPacket);
      co_await sh.write(0, 0, 0, buf);
      co_await sh.putSpace(0, 0, kPacket);
      ++sent;
    }
    co_await sim.delay(kGap);  // inter-burst gap (data-dependent starvation)
  }
}

Task<void> fastSink(Shell& sh, int packets) {
  std::uint8_t buf[kPacket];
  for (int p = 0; p < packets; ++p) {
    co_await sh.waitSpace(0, 0, kPacket);
    co_await sh.read(sh.streams().row(0).task, 0, 0, buf);
    co_await sh.putSpace(0, 0, kPacket);
  }
}

struct StyleResult {
  sim::Cycle cycles = 0;
  double utilization = 0;
  std::uint64_t switches = 0;
  bool ok = false;
};

StyleResult runStyle(bool blocking) {
  sim::Simulator sim;
  mem::SramParams sp;
  sp.size_bytes = 512 * 1024;
  mem::SharedSram sram(sim, sp);
  mem::MessageNetwork net(sim, 2);

  // Shells: 0 = the coprocessor under test, 1/2 = producers, 3/4 = sinks.
  std::vector<std::unique_ptr<Shell>> shells;
  for (std::uint32_t id = 0; id < 5; ++id) {
    shell::ShellParams p;
    p.id = id;
    p.name = "s" + std::to_string(id);
    shells.push_back(std::make_unique<Shell>(sim, p, sram, net));
  }
  Shell& cp = *shells[0];

  auto connect = [&](Shell& prod, sim::TaskId ptask, sim::PortId pport, Shell& cons,
                     sim::TaskId ctask, sim::PortId cport, sim::Addr base) {
    shell::StreamConfig pc;
    pc.task = ptask;
    pc.port = pport;
    pc.is_producer = true;
    pc.buffer_base = base;
    pc.buffer_bytes = 4096;
    pc.remote_shell = cons.id();
    pc.initial_space = 4096;
    const auto prow = prod.configureStream(pc);
    pc.task = ctask;
    pc.port = cport;
    pc.is_producer = false;
    pc.remote_shell = prod.id();
    pc.remote_row = prow;
    pc.initial_space = 0;
    const auto crow = cons.configureStream(pc);
    prod.streams().row(prow).remote_row = crow;
  };

  // producer i -> coproc task i -> sink i
  connect(*shells[1], 0, 0, cp, 0, 0, 0x0000);
  connect(*shells[2], 0, 0, cp, 1, 0, 0x2000);
  connect(cp, 0, 1, *shells[3], 0, 0, 0x4000);
  connect(cp, 1, 1, *shells[4], 0, 0, 0x6000);

  for (auto& sh : shells) sh->configureTask(0, shell::TaskConfig{true, 2000, 0});
  // Generous budgets: the contrast under test is what happens at a denied
  // GetSpace, not budget-driven preemption.
  cp.configureTask(0, shell::TaskConfig{true, 100000, 0});
  cp.configureTask(1, shell::TaskConfig{true, 100000, 0});

  PassThrough coproc(sim, cp, blocking);
  coproc.start();
  sim.spawn(burstyProducer(*shells[1], sim, 0), "p0");
  sim.spawn(burstyProducer(*shells[2], sim, 0), "p1");
  sim.spawn(fastSink(*shells[3], kPacketsPerTask), "s0");
  sim.spawn(fastSink(*shells[4], kPacketsPerTask), "s1");

  StyleResult r;
  r.cycles = sim.run(1'000'000'000);
  r.ok = coproc.done_packets[0] == kPacketsPerTask && coproc.done_packets[1] == kPacketsPerTask;
  r.utilization = cp.utilization(r.cycles);
  r.switches = cp.taskSwitches();
  return r;
}

}  // namespace

int main() {
  eclipse::bench::printHeader("E11: switch-on-denied vs block-and-wait coprocessor designs",
                              "Section 4.2");

  const auto switching = runStyle(false);
  const auto blocking = runStyle(true);

  std::printf("\n%-30s %12s %12s %12s %8s\n", "coprocessor design", "cycles", "busy%",
              "switches", "ok");
  std::printf("%-30s %12llu %11.1f%% %12llu %8s\n", "A: abort step, switch task",
              static_cast<unsigned long long>(switching.cycles), 100 * switching.utilization,
              static_cast<unsigned long long>(switching.switches), switching.ok ? "yes" : "NO");
  std::printf("%-30s %12llu %11.1f%% %12llu %8s\n", "B: block inside the step",
              static_cast<unsigned long long>(blocking.cycles), 100 * blocking.utilization,
              static_cast<unsigned long long>(blocking.switches), blocking.ok ? "yes" : "NO");

  std::printf("\nshape check vs paper: with bursty (data-dependent) arrivals, the\n"
              "task-switching design finishes %.1f%% sooner because denied GetSpace\n"
              "requests hand the coprocessor to the other task instead of idling.\n",
              100.0 * (1.0 - static_cast<double>(switching.cycles) / blocking.cycles));
  return (switching.ok && blocking.ok) ? 0 : 1;
}
