// E7 — Section 7: design-space exploration of the communication network
// ("bus latency and width, etc."). The paper's instance chose a wide
// (128-bit) on-chip bus pair; this sweep shows why.
//
// With --parallel [N] every sweep point is additionally batch-served
// through an eclipse::farm::Farm on N workers (one job per point, the
// swept parameter carried as a config override) and the simulated cycle
// counts are checked against the serial sweep — exit 1 on any mismatch.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.hpp"

using namespace eclipse;

namespace {

/// One serial sweep point, kept for the farm cross-check.
struct SweepPoint {
  const char* key;          // InstanceParams config key being swept
  std::int64_t value;
  sim::Cycle cycles = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int parallel = 0;  // 0 = serial only
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--parallel") == 0) {
      parallel = i + 1 < argc && argv[i + 1][0] != '-' ? std::atoi(argv[++i]) : 4;
    } else {
      std::fprintf(stderr, "usage: %s [--parallel [N]]\n", argv[0]);
      return 2;
    }
  }

  eclipse::bench::printHeader("E7: stream-bus width and latency sweep", "Section 7");

  const auto w = eclipse::bench::makeWorkload();
  std::vector<SweepPoint> points;

  std::printf("\n-- width sweep (arbitration latency 1) --\n");
  std::printf("%12s %12s %10s %10s %12s\n", "width[bits]", "cycles", "rd-bus%", "wr-bus%",
              "slowdown");
  sim::Cycle base = 0;
  for (const std::uint32_t width : {32u, 16u, 8u, 4u, 2u}) {
    app::InstanceParams ip;
    ip.sram.bus_width_bytes = width;
    app::EclipseInstance inst(ip);
    const auto r = eclipse::bench::runDecode(inst, w);
    if (!r.bit_exact) {
      std::printf("CONFIG FAILED CORRECTNESS width=%u\n", width);
      return 1;
    }
    if (base == 0) base = r.cycles;
    points.push_back({"sram.bus_width_bytes", width, r.cycles});
    std::printf("%12u %12llu %9.1f%% %9.1f%% %11.2fx\n", width * 8,
                static_cast<unsigned long long>(r.cycles),
                100.0 * inst.sram().readBus().utilization(r.cycles),
                100.0 * inst.sram().writeBus().utilization(r.cycles),
                static_cast<double>(r.cycles) / static_cast<double>(base));
  }

  std::printf("\n-- arbitration latency sweep (width 128 bits) --\n");
  std::printf("%12s %12s %10s %12s\n", "arb[cycles]", "cycles", "rd-bus%", "slowdown");
  base = 0;
  for (const sim::Cycle arb : {1u, 2u, 4u, 8u, 16u, 32u}) {
    app::InstanceParams ip;
    ip.sram.bus_arbitration_latency = arb;
    app::EclipseInstance inst(ip);
    const auto r = eclipse::bench::runDecode(inst, w);
    if (!r.bit_exact) return 1;
    if (base == 0) base = r.cycles;
    points.push_back({"sram.bus_arbitration_latency", static_cast<std::int64_t>(arb), r.cycles});
    std::printf("%12llu %12llu %9.1f%% %11.2fx\n", static_cast<unsigned long long>(arb),
                static_cast<unsigned long long>(r.cycles),
                100.0 * inst.sram().readBus().utilization(r.cycles),
                static_cast<double>(r.cycles) / static_cast<double>(base));
  }

  std::printf("\n-- off-chip (system bus) latency sweep --\n");
  std::printf("%12s %12s %12s %12s\n", "lat[cycles]", "cycles", "sysbus%", "slowdown");
  base = 0;
  for (const sim::Cycle lat : {20u, 40u, 60u, 90u, 140u}) {
    app::InstanceParams ip;
    ip.dram.access_latency = lat;
    app::EclipseInstance inst(ip);
    const auto r = eclipse::bench::runDecode(inst, w);
    if (!r.bit_exact) return 1;
    if (base == 0) base = r.cycles;
    points.push_back({"dram.access_latency", static_cast<std::int64_t>(lat), r.cycles});
    std::printf("%12llu %12llu %11.1f%% %11.2fx\n", static_cast<unsigned long long>(lat),
                static_cast<unsigned long long>(r.cycles),
                100.0 * inst.dram().bus().utilization(r.cycles),
                static_cast<double>(r.cycles) / static_cast<double>(base));
  }

  std::printf("\nshape check vs paper: decode time is insensitive to the stream bus until\n"
              "the width drops enough to saturate it (the wide-bus rationale of Section 3),\n"
              "while off-chip latency feeds straight into the MC-bound pictures.\n");

  if (parallel > 0) {
    std::printf("\n-- farm cross-check: all %zu sweep points on %d worker(s) --\n",
                points.size(), parallel);
    farm::WorkloadDesc wd;  // defaults == makeWorkload(176, 144, 9)
    wd.width = 176;
    wd.height = 144;
    wd.frames = 9;
    std::vector<farm::Job> jobs;
    for (const SweepPoint& p : points) {
      farm::Job j;
      j.name = std::string(p.key) + "=" + std::to_string(p.value);
      j.apps = {farm::AppSpec{farm::AppKind::Decode, wd}};
      j.config.set(p.key, p.value);
      jobs.push_back(std::move(j));
    }
    farm::FarmOptions opts;
    opts.workers = parallel;
    farm::Farm f(opts);
    auto futs = f.submitBatch(std::move(jobs));
    bool match = true;
    for (std::size_t i = 0; i < futs.size(); ++i) {
      const farm::JobResult jr = futs[i].get();
      const bool ok = jr.status == farm::JobStatus::Completed && jr.bit_exact &&
                      jr.sim_cycles == points[i].cycles;
      match = match && ok;
      if (!ok) {
        std::printf("MISMATCH %-34s farm %llu cycles vs serial %llu\n", jr.name.c_str(),
                    static_cast<unsigned long long>(jr.sim_cycles),
                    static_cast<unsigned long long>(points[i].cycles));
      }
    }
    if (!match) {
      std::printf("FARM RESULTS DIVERGE FROM SERIAL SWEEP\n");
      return 1;
    }
    std::printf("all %zu points bit-identical to the serial sweep.\n", points.size());
  }
  return 0;
}
