// E7 — Section 7: design-space exploration of the communication network
// ("bus latency and width, etc."). The paper's instance chose a wide
// (128-bit) on-chip bus pair; this sweep shows why.

#include <cstdio>

#include "bench_util.hpp"

using namespace eclipse;

int main() {
  eclipse::bench::printHeader("E7: stream-bus width and latency sweep", "Section 7");

  const auto w = eclipse::bench::makeWorkload();

  std::printf("\n-- width sweep (arbitration latency 1) --\n");
  std::printf("%12s %12s %10s %10s %12s\n", "width[bits]", "cycles", "rd-bus%", "wr-bus%",
              "slowdown");
  sim::Cycle base = 0;
  for (const std::uint32_t width : {32u, 16u, 8u, 4u, 2u}) {
    app::InstanceParams ip;
    ip.sram.bus_width_bytes = width;
    app::EclipseInstance inst(ip);
    const auto r = eclipse::bench::runDecode(inst, w);
    if (!r.bit_exact) {
      std::printf("CONFIG FAILED CORRECTNESS width=%u\n", width);
      return 1;
    }
    if (base == 0) base = r.cycles;
    std::printf("%12u %12llu %9.1f%% %9.1f%% %11.2fx\n", width * 8,
                static_cast<unsigned long long>(r.cycles),
                100.0 * inst.sram().readBus().utilization(r.cycles),
                100.0 * inst.sram().writeBus().utilization(r.cycles),
                static_cast<double>(r.cycles) / static_cast<double>(base));
  }

  std::printf("\n-- arbitration latency sweep (width 128 bits) --\n");
  std::printf("%12s %12s %10s %12s\n", "arb[cycles]", "cycles", "rd-bus%", "slowdown");
  base = 0;
  for (const sim::Cycle arb : {1u, 2u, 4u, 8u, 16u, 32u}) {
    app::InstanceParams ip;
    ip.sram.bus_arbitration_latency = arb;
    app::EclipseInstance inst(ip);
    const auto r = eclipse::bench::runDecode(inst, w);
    if (!r.bit_exact) return 1;
    if (base == 0) base = r.cycles;
    std::printf("%12llu %12llu %9.1f%% %11.2fx\n", static_cast<unsigned long long>(arb),
                static_cast<unsigned long long>(r.cycles),
                100.0 * inst.sram().readBus().utilization(r.cycles),
                static_cast<double>(r.cycles) / static_cast<double>(base));
  }

  std::printf("\n-- off-chip (system bus) latency sweep --\n");
  std::printf("%12s %12s %12s %12s\n", "lat[cycles]", "cycles", "sysbus%", "slowdown");
  base = 0;
  for (const sim::Cycle lat : {20u, 40u, 60u, 90u, 140u}) {
    app::InstanceParams ip;
    ip.dram.access_latency = lat;
    app::EclipseInstance inst(ip);
    const auto r = eclipse::bench::runDecode(inst, w);
    if (!r.bit_exact) return 1;
    if (base == 0) base = r.cycles;
    std::printf("%12llu %12llu %11.1f%% %11.2fx\n", static_cast<unsigned long long>(lat),
                static_cast<unsigned long long>(r.cycles),
                100.0 * inst.dram().bus().utilization(r.cycles),
                static_cast<double>(r.cycles) / static_cast<double>(base));
  }

  std::printf("\nshape check vs paper: decode time is insensitive to the stream bus until\n"
              "the width drops enough to saturate it (the wide-bus rationale of Section 3),\n"
              "while off-chip latency feeds straight into the MC-bound pictures.\n");
  return 0;
}
