// E5 — Section 6: the Figure-8 instance's application mixes.
//
// The paper's instance targets decoding two HD streams simultaneously, or
// SD encoding in parallel with SD decoding, plus transcoding combinations.
// Our substrate is a laptop-scale simulator, so runs use scaled (QCIF/SD-
// tile) resolutions; the quantities of interest are relative: how the
// shared coprocessors sustain several simultaneous applications, cycles
// per macroblock per mix, and the derived operation-rate estimate standing
// in for the paper's "36 Gops for two HD streams".

// With --parallel [N] the same four mixes are additionally batch-served
// through an eclipse::farm::Farm on N workers and each mix's simulated
// numbers are checked against the serial run — exercising the farm's
// determinism contract on multi-application jobs (exit 1 on any mismatch).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "bench_util.hpp"

using namespace eclipse;
using eclipse::bench::Workload;

namespace {

/// Rough arithmetic-operation count of decoding one macroblock (used for
/// the Gops estimate): IDCT ~ 6 blocks * 1024 mul/add, RLSQ ~ pairs*4,
/// MC ~ 384 adds + interpolation ~ 3*384, VLD ~ symbols*8 bit ops.
double opsPerPicture(const media::PictureStats& ps, int mbs) {
  return 6.0 * 1024 * mbs + ps.symbols * 12.0 + 4.0 * 384 * mbs;
}

struct MixResult {
  const char* name;
  sim::Cycle cycles = 0;
  std::uint64_t mbs = 0;
  bool ok = false;
  double gops_at_150mhz = 0;
};

/// The four mixes as farm jobs (the workload descriptor reproduces
/// bench_util::makeWorkload(176, 144, 9) field for field).
std::vector<farm::Job> mixJobs() {
  farm::WorkloadDesc wd;
  wd.width = 176;
  wd.height = 144;
  wd.frames = 9;

  std::vector<farm::Job> jobs(4);
  jobs[0].name = "decode x1";
  jobs[0].apps = {farm::AppSpec{farm::AppKind::Decode, wd}};
  jobs[1].name = "decode x2";
  jobs[1].apps = {farm::AppSpec{farm::AppKind::Decode, wd},
                  farm::AppSpec{farm::AppKind::Decode, wd}};
  jobs[1].config.set("sram.size_bytes", std::int64_t{64 * 1024});
  jobs[2].name = "encode x1";
  jobs[2].apps = {farm::AppSpec{farm::AppKind::Encode, wd}};
  jobs[2].config.set("sram.size_bytes", std::int64_t{64 * 1024});
  jobs[3].name = "encode + decode";
  jobs[3].apps = {farm::AppSpec{farm::AppKind::Encode, wd},
                  farm::AppSpec{farm::AppKind::Decode, wd}};
  jobs[3].config.set("sram.size_bytes", std::int64_t{96 * 1024});
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  int parallel = 0;  // 0 = serial only
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--parallel") == 0) {
      parallel = i + 1 < argc && argv[i + 1][0] != '-' ? std::atoi(argv[++i]) : 4;
    } else {
      std::fprintf(stderr, "usage: %s [--parallel [N]]\n", argv[0]);
      return 2;
    }
  }

  eclipse::bench::printHeader("E5: simultaneous application mixes on one instance",
                              "Section 6 (Figure 8 instance)");

  const Workload w = eclipse::bench::makeWorkload(176, 144, 9);
  const int mbs_per_frame = (176 / 16) * (144 / 16);
  double ops_per_stream = 0;
  for (const auto& ps : w.picture_stats) ops_per_stream += opsPerPicture(ps, mbs_per_frame);

  std::vector<MixResult> results;

  // --- mix 1: single decode ------------------------------------------------
  {
    app::EclipseInstance inst;
    const auto r = eclipse::bench::runDecode(inst, w);
    results.push_back({"decode x1", r.cycles, r.macroblocks, r.bit_exact,
                       ops_per_stream / static_cast<double>(r.cycles) * 0.15});
  }

  // --- mix 2: dual decode (the paper's "two streams simultaneously") -------
  {
    app::InstanceParams ip;
    ip.sram.size_bytes = 64 * 1024;
    app::EclipseInstance inst(ip);
    app::DecodeApp a(inst, w.bitstream);
    app::DecodeApp b(inst, w.bitstream);
    const auto cycles = inst.run();
    const bool ok = a.done() && b.done();
    results.push_back({"decode x2", cycles, a.macroblocksDecoded() + b.macroblocksDecoded(), ok,
                       2 * ops_per_stream / static_cast<double>(cycles) * 0.15});
  }

  // --- mix 3: encode only ----------------------------------------------------
  {
    app::InstanceParams ip;
    ip.sram.size_bytes = 64 * 1024;
    app::EclipseInstance inst(ip);
    app::EncodeApp enc(inst, w.frames, w.codec);
    const auto cycles = inst.run();
    media::Decoder check;
    bool ok = enc.done();
    double psnr = 0;
    if (ok) {
      const auto out = check.decode(enc.bitstream());
      psnr = media::averagePsnr(w.frames, out);
      ok = psnr > 25.0;
    }
    results.push_back({"encode x1", cycles,
                       static_cast<std::uint64_t>(mbs_per_frame) * w.frames.size(), ok,
                       2.5 * ops_per_stream / static_cast<double>(cycles) * 0.15});
    std::printf("encode-only quality check: %.2f dB luma PSNR\n", psnr);
  }

  // --- mix 4: encode + decode (time-shift, Section 6) -----------------------
  {
    app::InstanceParams ip;
    ip.sram.size_bytes = 96 * 1024;
    app::EclipseInstance inst(ip);
    app::EncodeApp enc(inst, w.frames, w.codec);
    app::DecodeApp dec(inst, w.bitstream);
    const auto cycles = inst.run();
    const bool ok = enc.done() && dec.done();
    results.push_back({"encode + decode", cycles,
                       dec.macroblocksDecoded() + static_cast<std::uint64_t>(mbs_per_frame) * w.frames.size(),
                       ok, 3.5 * ops_per_stream / static_cast<double>(cycles) * 0.15});
    std::printf("time-shift mix: DCT ran %llu steps across its tasks, %llu task switches\n",
                static_cast<unsigned long long>(inst.dct().stepsExecuted()),
                static_cast<unsigned long long>(inst.dctShell().taskSwitches()));
  }

  std::printf("\n%-18s %12s %10s %12s %10s %12s\n", "mix", "cycles", "MBs", "cycles/MB", "ok",
              "~Gops@150MHz");
  for (const auto& r : results) {
    std::printf("%-18s %12llu %10llu %12.1f %10s %12.2f\n", r.name,
                static_cast<unsigned long long>(r.cycles), static_cast<unsigned long long>(r.mbs),
                static_cast<double>(r.cycles) / static_cast<double>(r.mbs), r.ok ? "yes" : "NO",
                r.gops_at_150mhz);
  }

  std::printf("\nshape check vs paper: two streams on one instance cost < 2x one stream\n"
              "(coprocessor time-sharing absorbs the second application's slack).\n");

  if (parallel > 0) {
    std::printf("\n-- farm cross-check: same mixes on %d worker(s) --\n", parallel);
    farm::FarmOptions opts;
    opts.workers = parallel;
    farm::Farm f(opts);
    auto futs = f.submitBatch(mixJobs());
    bool match = true;
    for (std::size_t i = 0; i < futs.size(); ++i) {
      const farm::JobResult jr = futs[i].get();
      const bool ok = jr.status == farm::JobStatus::Completed &&
                      jr.sim_cycles == results[i].cycles && jr.macroblocks == results[i].mbs;
      match = match && ok;
      std::printf("%-18s %12llu cycles %10llu MBs  worker %d  %s\n", jr.name.c_str(),
                  static_cast<unsigned long long>(jr.sim_cycles),
                  static_cast<unsigned long long>(jr.macroblocks), jr.worker,
                  ok ? "== serial" : "!= serial  MISMATCH");
    }
    if (!match) {
      std::printf("FARM RESULTS DIVERGE FROM SERIAL RUN\n");
      return 1;
    }
    std::printf("all mixes bit-identical to the serial run.\n");
  }
  return 0;
}
