// E2 — Figures 5-7: the GetSpace/PutSpace synchronization mechanics.
//
// Measures the simulated cost of each task-level primitive (Section 3.2's
// master-slave handshake) and the distributed synchronization behaviour of
// Figure 7: local GetSpace answering, putspace message traffic, and the
// rate sustainable through a small cyclic buffer. The paper motivates a
// hardware implementation by synchronization rates software cannot reach
// (Section 5.3: 10-100 kHz task switch rates, GByte/s streams).

#include <cstdio>

#include "bench_util.hpp"

using namespace eclipse;
using shell::Shell;
using sim::Task;

namespace {

struct Harness {
  sim::Simulator sim;
  mem::SharedSram sram{sim, mem::SramParams{}};
  mem::MessageNetwork net{sim, 2};
  std::unique_ptr<Shell> prod;
  std::unique_ptr<Shell> cons;

  explicit Harness(std::uint32_t buffer = 1024) {
    shell::ShellParams p;
    p.id = 0;
    p.name = "prod";
    prod = std::make_unique<Shell>(sim, p, sram, net);
    p.id = 1;
    p.name = "cons";
    cons = std::make_unique<Shell>(sim, p, sram, net);

    shell::StreamConfig pc;
    pc.task = 0;
    pc.port = 0;
    pc.is_producer = true;
    pc.buffer_base = 0;
    pc.buffer_bytes = buffer;
    pc.remote_shell = 1;
    pc.remote_row = 0;
    pc.initial_space = buffer;
    (void)prod->configureStream(pc);
    pc.is_producer = false;
    pc.remote_shell = 0;
    pc.initial_space = 0;
    (void)cons->configureStream(pc);
    prod->configureTask(0, shell::TaskConfig{});
    cons->configureTask(0, shell::TaskConfig{});
  }
};

/// Measures the simulated latency of one co_awaited operation.
template <typename Fn>
sim::Cycle measure(Harness& h, Fn&& op) {
  sim::Cycle cost = 0;
  h.sim.spawn([](Harness& h, Fn& op, sim::Cycle& cost) -> Task<void> {
    const sim::Cycle t0 = h.sim.now();
    co_await op();
    cost = h.sim.now() - t0;
  }(h, op, cost), "measure");
  h.sim.run(1'000'000);
  return cost;
}

Task<void> pumpPackets(Shell& sh, int packets, std::uint32_t bytes) {
  std::vector<std::uint8_t> buf(bytes, 0xA5);
  for (int p = 0; p < packets; ++p) {
    co_await sh.waitSpace(0, 0, bytes);
    co_await sh.write(0, 0, 0, buf);
    co_await sh.putSpace(0, 0, bytes);
  }
}

Task<void> drainPackets(Shell& sh, int packets, std::uint32_t bytes) {
  std::vector<std::uint8_t> buf(bytes);
  for (int p = 0; p < packets; ++p) {
    co_await sh.waitSpace(0, 0, bytes);
    co_await sh.read(0, 0, 0, buf);
    co_await sh.putSpace(0, 0, bytes);
  }
}

}  // namespace

int main() {
  eclipse::bench::printHeader("E2: task-level interface primitive costs and sync throughput",
                              "Figures 5-7 / Section 3.2");

  // --- per-primitive simulated latency -----------------------------------
  std::printf("\nprimitive latencies (cycles, default shell parameters):\n");
  {
    Harness h;
    const auto c = measure(h, [&]() { return h.prod->getSpace(0, 0, 64); });
    std::printf("  %-34s %4llu\n", "GetSpace (hit, local answer)", static_cast<unsigned long long>(c));
  }
  {
    Harness h;
    const auto c = measure(h, [&]() { return h.cons->getSpace(0, 0, 64); });
    std::printf("  %-34s %4llu\n", "GetSpace (miss, still local)", static_cast<unsigned long long>(c));
  }
  {
    Harness h;
    const auto c = measure(h, [&]() -> Task<void> {
      (void)co_await h.prod->getSpace(0, 0, 64);
      std::uint8_t buf[64] = {};
      const sim::Cycle t0 = h.sim.now();
      co_await h.prod->write(0, 0, 0, buf);
      (void)t0;
    });
    std::printf("  %-34s %4llu\n", "GetSpace + Write 64B (cold cache)", static_cast<unsigned long long>(c));
  }
  {
    Harness h;
    const auto c = measure(h, [&]() -> Task<void> {
      (void)co_await h.prod->getSpace(0, 0, 64);
      std::uint8_t buf[64] = {};
      co_await h.prod->write(0, 0, 0, buf);
      co_await h.prod->putSpace(0, 0, 64);  // includes the dirty-line flush
    });
    std::printf("  %-34s %4llu\n", "... + PutSpace (flush + message)", static_cast<unsigned long long>(c));
  }
  {
    Harness h;
    const auto c = measure(h, [&]() -> Task<void> {
      const auto r = co_await h.prod->getTask();
      (void)r;
    });
    std::printf("  %-34s %4llu\n", "GetTask (task ready)", static_cast<unsigned long long>(c));
  }

  // --- sustained synchronization rate vs packet size ----------------------
  std::printf("\nsustained stream throughput through a 1 kB cyclic buffer\n");
  std::printf("(synchronization granularity sweep — cost of fine-grain sync):\n");
  std::printf("%12s %12s %14s %16s %14s\n", "packet[B]", "cycles", "bytes/cycle",
              "sync msgs", "msgs/KB");
  for (const std::uint32_t bytes : {16u, 64u, 256u, 512u}) {
    Harness h;
    const int packets = static_cast<int>(64 * 1024 / bytes);
    h.sim.spawn(pumpPackets(*h.prod, packets, bytes), "pump");
    h.sim.spawn(drainPackets(*h.cons, packets, bytes), "drain");
    const sim::Cycle end = h.sim.run(100'000'000);
    const double total = static_cast<double>(packets) * bytes;
    std::printf("%12u %12llu %14.3f %16llu %14.1f\n", bytes,
                static_cast<unsigned long long>(end), total / static_cast<double>(end),
                static_cast<unsigned long long>(h.net.messagesSent()),
                static_cast<double>(h.net.messagesSent()) / (total / 1024.0));
  }

  std::printf("\ninterpretation: GetSpace answers from the local space field (Figure 7)\n"
              "in a handful of cycles; committing costs a flush plus one putspace\n"
              "message; coarser synchronization amortises both (Section 2.2).\n");
  return 0;
}
