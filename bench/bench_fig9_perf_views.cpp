// E3 — Figure 9: "Eclipse performance visualization example."
//
// Regenerates the performance viewer's two view classes for a decode run:
//   * architecture views — per-coprocessor utilization and bus occupancy,
//   * application views — per-stream buffer filling and per-task stall
//     traces (sampled by the Section 5.4 measurement process in the shells
//     and read back through the memory-mapped tables).

#include <cstdio>

#include "bench_util.hpp"

using namespace eclipse;

int main() {
  eclipse::bench::printHeader("E3: performance measurement views", "Figure 9 / Section 5.4");

  const auto w = eclipse::bench::makeWorkload();
  app::InstanceParams ip;
  ip.profiler_period = 250;
  app::EclipseInstance inst(ip);
  app::DecodeApp dec(inst, w.bitstream);
  const sim::Cycle cycles = inst.run();
  if (!dec.done()) {
    std::fprintf(stderr, "decode incomplete\n");
    return 1;
  }

  // --- application views: stream buffer filling ---------------------------
  auto named = [](const sim::TimeSeries& src, std::string name) {
    sim::TimeSeries s(std::move(name));
    for (auto& [c, v] : src.points()) s.sample(c, v);
    return s;
  };
  const auto& coef = dec.coefStream();
  const auto& blocks = dec.blocksStream();
  const auto& res = dec.resStream();
  const auto rlsq_fill = named(coef.consumer_shell->streams().row(coef.consumer_row).fill_series,
                               "app view: RLSQ input buffer filling [bytes]");
  const auto dct_fill = named(blocks.consumer_shell->streams().row(blocks.consumer_row).fill_series,
                              "app view: DCT input buffer filling [bytes]");
  const auto mc_fill = named(res.consumer_shell->streams().row(res.consumer_row).fill_series,
                             "app view: MC input buffer filling [bytes]");

  // --- application views: task stall traces --------------------------------
  const auto rlsq_stall = named(inst.rlsqShell().tasks().row(dec.rlsqTask()).stall_series,
                                "app view: RLSQ task stalled (1 = waiting for data/room)");
  const auto mc_stall = named(inst.mcShell().tasks().row(dec.mcTask()).stall_series,
                              "app view: MC task stalled");

  app::ChartOptions opts;
  opts.width = 110;
  opts.height = 5;
  std::printf("\n%s", app::renderStack({&rlsq_fill, &dct_fill, &mc_fill}, opts).c_str());

  // Task stall lanes ('#' = blocked on stream space, ' ' = running).
  const auto vld_stall = named(inst.vldShell().tasks().row(dec.vldTask()).stall_series,
                               "vld  task stalled");
  const auto dct_stall = named(inst.dctShell().tasks().row(dec.dctTask()).stall_series,
                               "dct  task stalled");
  sim::TimeSeries rl2("rlsq task stalled"), mc2("mc   task stalled");
  for (auto& [c, v] : rlsq_stall.points()) rl2.sample(c, v);
  for (auto& [c, v] : mc_stall.points()) mc2.sample(c, v);
  std::printf("\n%s", app::renderActivityStrips({&vld_stall, &rl2, &dct_stall, &mc2}, 110).c_str());

  // --- architecture views ---------------------------------------------------
  std::printf("architecture view: coprocessor utilization and scheduling\n");
  std::printf("%-14s %12s %14s %14s %12s\n", "coprocessor", "utilization", "busy cycles",
              "steps (est.)", "switches");
  for (auto& sh : inst.shells()) {
    sim::Cycle busy = 0;
    std::uint64_t steps = 0;
    for (std::uint32_t t = 0; t < sh->tasks().capacity(); ++t) {
      const auto& row = sh->tasks().row(static_cast<sim::TaskId>(t));
      if (row.valid) {
        busy += row.busy_cycles;
        steps += row.gettask_count;
      }
    }
    std::printf("%-14s %11.1f%% %14llu %14llu %12llu\n", sh->name().c_str(),
                100.0 * sh->utilization(cycles), static_cast<unsigned long long>(busy),
                static_cast<unsigned long long>(steps),
                static_cast<unsigned long long>(sh->taskSwitches()));
  }

  std::printf("\narchitecture view: processing-step granularity (Section 5.3: 10-1000 cycles)\n");
  std::printf("%-14s %6s %10s %12s %10s %10s\n", "coprocessor", "task", "steps", "mean[cyc]",
              "min[cyc]", "max[cyc]");
  for (auto& sh : inst.shells()) {
    for (std::uint32_t t = 0; t < sh->tasks().capacity(); ++t) {
      const auto& row = sh->tasks().row(static_cast<sim::TaskId>(t));
      if (!row.valid || row.step_cycles.count() == 0) continue;
      std::printf("%-14s %6u %10llu %12.1f %10.0f %10.0f\n", sh->name().c_str(), t,
                  static_cast<unsigned long long>(row.step_cycles.count()),
                  row.step_cycles.mean(), row.step_cycles.min(), row.step_cycles.max());
    }
  }

  std::printf("\napplication view: data access latency per stream (Section 5.4 list)\n");
  std::printf("%-12s %5s %6s %10s %12s %10s\n", "shell", "row", "dir", "accesses",
              "mean[cyc]", "max[cyc]");
  for (auto& sh : inst.shells()) {
    for (std::uint32_t i = 0; i < sh->streams().capacity(); ++i) {
      const auto& row = sh->streams().row(i);
      if (!row.valid || row.access_latency.count() == 0) continue;
      std::printf("%-12s %5u %6s %10llu %12.1f %10.0f\n", sh->name().c_str(), i,
                  row.is_producer ? "out" : "in",
                  static_cast<unsigned long long>(row.access_latency.count()),
                  row.access_latency.mean(), row.access_latency.max());
    }
  }

  std::printf("\narchitecture view: interconnect\n");
  const auto& rb = inst.sram().readBus();
  const auto& wb = inst.sram().writeBus();
  const auto& sb = inst.dram().bus();
  std::printf("  %-22s %6.1f%% busy, %llu bytes\n", "SRAM read bus", 100 * rb.utilization(cycles),
              static_cast<unsigned long long>(rb.stats().bytes));
  std::printf("  %-22s %6.1f%% busy, %llu bytes\n", "SRAM write bus", 100 * wb.utilization(cycles),
              static_cast<unsigned long long>(wb.stats().bytes));
  std::printf("  %-22s %6.1f%% busy, %llu bytes\n", "system (off-chip) bus",
              100 * sb.utilization(cycles), static_cast<unsigned long long>(sb.stats().bytes));
  std::printf("  %-22s %llu messages\n", "sync network",
              static_cast<unsigned long long>(inst.network().messagesSent()));

  // --- CSV export (the separated viewer consumes files, Section 7) --------
  const auto csv = app::toCsv({&rlsq_fill, &dct_fill, &mc_fill});
  std::printf("\nCSV export of the three buffer-fill series: %zu rows (printing first 3)\n",
              static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')) - 1);
  std::size_t pos = 0;
  for (int line = 0; line < 4 && pos != std::string::npos; ++line) {
    const auto next = csv.find('\n', pos);
    std::printf("  %s\n", csv.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  return 0;
}
