# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_kpn[1]_include.cmake")
include("/root/repo/build/tests/test_media_blocks[1]_include.cmake")
include("/root/repo/build/tests/test_media_motion[1]_include.cmake")
include("/root/repo/build/tests/test_media_codec[1]_include.cmake")
include("/root/repo/build/tests/test_shell_sync[1]_include.cmake")
include("/root/repo/build/tests/test_shell_cache[1]_include.cmake")
include("/root/repo/build/tests/test_shell_sched[1]_include.cmake")
include("/root/repo/build/tests/test_shell_mmio[1]_include.cmake")
include("/root/repo/build/tests/test_coproc[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
include("/root/repo/build/tests/test_fork[1]_include.cmake")
include("/root/repo/build/tests/test_coproc_stages[1]_include.cmake")
include("/root/repo/build/tests/test_encode_app[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_mixed_apps[1]_include.cmake")
include("/root/repo/build/tests/test_instance_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_rate_control[1]_include.cmake")
include("/root/repo/build/tests/test_audio[1]_include.cmake")
include("/root/repo/build/tests/test_av_app[1]_include.cmake")
include("/root/repo/build/tests/test_soak[1]_include.cmake")
