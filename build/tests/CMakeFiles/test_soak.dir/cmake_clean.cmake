file(REMOVE_RECURSE
  "CMakeFiles/test_soak.dir/test_soak.cpp.o"
  "CMakeFiles/test_soak.dir/test_soak.cpp.o.d"
  "test_soak"
  "test_soak.pdb"
  "test_soak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
