file(REMOVE_RECURSE
  "CMakeFiles/test_encode_app.dir/test_encode_app.cpp.o"
  "CMakeFiles/test_encode_app.dir/test_encode_app.cpp.o.d"
  "test_encode_app"
  "test_encode_app.pdb"
  "test_encode_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encode_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
