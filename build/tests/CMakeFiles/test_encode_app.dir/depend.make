# Empty dependencies file for test_encode_app.
# This may be replaced when dependencies are built.
