file(REMOVE_RECURSE
  "CMakeFiles/test_media_codec.dir/test_media_codec.cpp.o"
  "CMakeFiles/test_media_codec.dir/test_media_codec.cpp.o.d"
  "test_media_codec"
  "test_media_codec.pdb"
  "test_media_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_media_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
