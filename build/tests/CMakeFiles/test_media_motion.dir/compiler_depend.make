# Empty compiler generated dependencies file for test_media_motion.
# This may be replaced when dependencies are built.
