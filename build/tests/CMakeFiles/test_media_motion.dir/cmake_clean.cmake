file(REMOVE_RECURSE
  "CMakeFiles/test_media_motion.dir/test_media_motion.cpp.o"
  "CMakeFiles/test_media_motion.dir/test_media_motion.cpp.o.d"
  "test_media_motion"
  "test_media_motion.pdb"
  "test_media_motion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_media_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
