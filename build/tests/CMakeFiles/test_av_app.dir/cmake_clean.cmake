file(REMOVE_RECURSE
  "CMakeFiles/test_av_app.dir/test_av_app.cpp.o"
  "CMakeFiles/test_av_app.dir/test_av_app.cpp.o.d"
  "test_av_app"
  "test_av_app.pdb"
  "test_av_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_av_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
