# Empty dependencies file for test_kpn.
# This may be replaced when dependencies are built.
