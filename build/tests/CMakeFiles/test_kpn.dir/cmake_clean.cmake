file(REMOVE_RECURSE
  "CMakeFiles/test_kpn.dir/test_kpn.cpp.o"
  "CMakeFiles/test_kpn.dir/test_kpn.cpp.o.d"
  "test_kpn"
  "test_kpn.pdb"
  "test_kpn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
