file(REMOVE_RECURSE
  "CMakeFiles/test_shell_sync.dir/test_shell_sync.cpp.o"
  "CMakeFiles/test_shell_sync.dir/test_shell_sync.cpp.o.d"
  "test_shell_sync"
  "test_shell_sync.pdb"
  "test_shell_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shell_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
