# Empty dependencies file for test_shell_sync.
# This may be replaced when dependencies are built.
