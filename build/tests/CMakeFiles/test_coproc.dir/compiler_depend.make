# Empty compiler generated dependencies file for test_coproc.
# This may be replaced when dependencies are built.
