file(REMOVE_RECURSE
  "CMakeFiles/test_coproc.dir/test_coproc.cpp.o"
  "CMakeFiles/test_coproc.dir/test_coproc.cpp.o.d"
  "test_coproc"
  "test_coproc.pdb"
  "test_coproc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
