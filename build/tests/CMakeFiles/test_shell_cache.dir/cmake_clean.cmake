file(REMOVE_RECURSE
  "CMakeFiles/test_shell_cache.dir/test_shell_cache.cpp.o"
  "CMakeFiles/test_shell_cache.dir/test_shell_cache.cpp.o.d"
  "test_shell_cache"
  "test_shell_cache.pdb"
  "test_shell_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shell_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
