file(REMOVE_RECURSE
  "CMakeFiles/test_coproc_stages.dir/test_coproc_stages.cpp.o"
  "CMakeFiles/test_coproc_stages.dir/test_coproc_stages.cpp.o.d"
  "test_coproc_stages"
  "test_coproc_stages.pdb"
  "test_coproc_stages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coproc_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
