# Empty compiler generated dependencies file for test_coproc_stages.
# This may be replaced when dependencies are built.
