file(REMOVE_RECURSE
  "CMakeFiles/test_media_blocks.dir/test_media_blocks.cpp.o"
  "CMakeFiles/test_media_blocks.dir/test_media_blocks.cpp.o.d"
  "test_media_blocks"
  "test_media_blocks.pdb"
  "test_media_blocks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_media_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
