# Empty dependencies file for test_media_blocks.
# This may be replaced when dependencies are built.
