# Empty dependencies file for test_shell_mmio.
# This may be replaced when dependencies are built.
