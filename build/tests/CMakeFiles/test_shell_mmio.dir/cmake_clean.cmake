file(REMOVE_RECURSE
  "CMakeFiles/test_shell_mmio.dir/test_shell_mmio.cpp.o"
  "CMakeFiles/test_shell_mmio.dir/test_shell_mmio.cpp.o.d"
  "test_shell_mmio"
  "test_shell_mmio.pdb"
  "test_shell_mmio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shell_mmio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
