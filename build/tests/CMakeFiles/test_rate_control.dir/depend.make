# Empty dependencies file for test_rate_control.
# This may be replaced when dependencies are built.
