file(REMOVE_RECURSE
  "CMakeFiles/test_rate_control.dir/test_rate_control.cpp.o"
  "CMakeFiles/test_rate_control.dir/test_rate_control.cpp.o.d"
  "test_rate_control"
  "test_rate_control.pdb"
  "test_rate_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
