file(REMOVE_RECURSE
  "CMakeFiles/test_mixed_apps.dir/test_mixed_apps.cpp.o"
  "CMakeFiles/test_mixed_apps.dir/test_mixed_apps.cpp.o.d"
  "test_mixed_apps"
  "test_mixed_apps.pdb"
  "test_mixed_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixed_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
