# Empty compiler generated dependencies file for test_instance_sweep.
# This may be replaced when dependencies are built.
