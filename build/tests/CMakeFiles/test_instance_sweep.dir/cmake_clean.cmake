file(REMOVE_RECURSE
  "CMakeFiles/test_instance_sweep.dir/test_instance_sweep.cpp.o"
  "CMakeFiles/test_instance_sweep.dir/test_instance_sweep.cpp.o.d"
  "test_instance_sweep"
  "test_instance_sweep.pdb"
  "test_instance_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instance_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
