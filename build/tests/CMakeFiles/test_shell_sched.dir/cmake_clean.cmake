file(REMOVE_RECURSE
  "CMakeFiles/test_shell_sched.dir/test_shell_sched.cpp.o"
  "CMakeFiles/test_shell_sched.dir/test_shell_sched.cpp.o.d"
  "test_shell_sched"
  "test_shell_sched.pdb"
  "test_shell_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shell_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
