
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fork.cpp" "tests/CMakeFiles/test_fork.dir/test_fork.cpp.o" "gcc" "tests/CMakeFiles/test_fork.dir/test_fork.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/eclipse_app.dir/DependInfo.cmake"
  "/root/repo/build/src/coproc/CMakeFiles/eclipse_coproc.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/eclipse_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eclipse_media.dir/DependInfo.cmake"
  "/root/repo/build/src/kpn/CMakeFiles/eclipse_kpn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eclipse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
