file(REMOVE_RECURSE
  "CMakeFiles/test_fork.dir/test_fork.cpp.o"
  "CMakeFiles/test_fork.dir/test_fork.cpp.o.d"
  "test_fork"
  "test_fork.pdb"
  "test_fork[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
