# Empty compiler generated dependencies file for test_fork.
# This may be replaced when dependencies are built.
