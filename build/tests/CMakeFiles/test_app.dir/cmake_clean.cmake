file(REMOVE_RECURSE
  "CMakeFiles/test_app.dir/test_app.cpp.o"
  "CMakeFiles/test_app.dir/test_app.cpp.o.d"
  "test_app"
  "test_app.pdb"
  "test_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
