# Empty dependencies file for test_app.
# This may be replaced when dependencies are built.
