file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_buffer_filling.dir/bench_fig10_buffer_filling.cpp.o"
  "CMakeFiles/bench_fig10_buffer_filling.dir/bench_fig10_buffer_filling.cpp.o.d"
  "bench_fig10_buffer_filling"
  "bench_fig10_buffer_filling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_buffer_filling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
