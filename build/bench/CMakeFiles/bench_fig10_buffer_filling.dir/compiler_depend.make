# Empty compiler generated dependencies file for bench_fig10_buffer_filling.
# This may be replaced when dependencies are built.
