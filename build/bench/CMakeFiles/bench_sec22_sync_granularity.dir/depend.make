# Empty dependencies file for bench_sec22_sync_granularity.
# This may be replaced when dependencies are built.
