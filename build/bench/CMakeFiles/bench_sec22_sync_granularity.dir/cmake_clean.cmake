file(REMOVE_RECURSE
  "CMakeFiles/bench_sec22_sync_granularity.dir/bench_sec22_sync_granularity.cpp.o"
  "CMakeFiles/bench_sec22_sync_granularity.dir/bench_sec22_sync_granularity.cpp.o.d"
  "bench_sec22_sync_granularity"
  "bench_sec22_sync_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec22_sync_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
