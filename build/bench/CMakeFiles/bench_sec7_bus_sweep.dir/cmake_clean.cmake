file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_bus_sweep.dir/bench_sec7_bus_sweep.cpp.o"
  "CMakeFiles/bench_sec7_bus_sweep.dir/bench_sec7_bus_sweep.cpp.o.d"
  "bench_sec7_bus_sweep"
  "bench_sec7_bus_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_bus_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
