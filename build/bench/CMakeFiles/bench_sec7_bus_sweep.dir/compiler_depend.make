# Empty compiler generated dependencies file for bench_sec7_bus_sweep.
# This may be replaced when dependencies are built.
