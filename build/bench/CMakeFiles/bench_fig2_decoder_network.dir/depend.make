# Empty dependencies file for bench_fig2_decoder_network.
# This may be replaced when dependencies are built.
