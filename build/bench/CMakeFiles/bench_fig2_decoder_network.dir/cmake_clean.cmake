file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_decoder_network.dir/bench_fig2_decoder_network.cpp.o"
  "CMakeFiles/bench_fig2_decoder_network.dir/bench_fig2_decoder_network.cpp.o.d"
  "bench_fig2_decoder_network"
  "bench_fig2_decoder_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_decoder_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
