# Empty compiler generated dependencies file for bench_sec7_cache_sweep.
# This may be replaced when dependencies are built.
