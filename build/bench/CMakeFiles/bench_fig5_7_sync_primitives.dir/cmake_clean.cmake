file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_7_sync_primitives.dir/bench_fig5_7_sync_primitives.cpp.o"
  "CMakeFiles/bench_fig5_7_sync_primitives.dir/bench_fig5_7_sync_primitives.cpp.o.d"
  "bench_fig5_7_sync_primitives"
  "bench_fig5_7_sync_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_7_sync_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
