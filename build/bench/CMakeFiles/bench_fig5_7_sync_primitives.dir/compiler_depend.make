# Empty compiler generated dependencies file for bench_fig5_7_sync_primitives.
# This may be replaced when dependencies are built.
