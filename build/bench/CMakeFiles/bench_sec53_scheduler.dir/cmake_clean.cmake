file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_scheduler.dir/bench_sec53_scheduler.cpp.o"
  "CMakeFiles/bench_sec53_scheduler.dir/bench_sec53_scheduler.cpp.o.d"
  "bench_sec53_scheduler"
  "bench_sec53_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
