# Empty dependencies file for bench_sec53_scheduler.
# This may be replaced when dependencies are built.
