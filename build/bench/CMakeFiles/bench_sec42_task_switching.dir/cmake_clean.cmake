file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_task_switching.dir/bench_sec42_task_switching.cpp.o"
  "CMakeFiles/bench_sec42_task_switching.dir/bench_sec42_task_switching.cpp.o.d"
  "bench_sec42_task_switching"
  "bench_sec42_task_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_task_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
