# Empty compiler generated dependencies file for bench_sec42_task_switching.
# This may be replaced when dependencies are built.
