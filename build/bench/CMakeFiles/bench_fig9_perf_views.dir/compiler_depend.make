# Empty compiler generated dependencies file for bench_fig9_perf_views.
# This may be replaced when dependencies are built.
