file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_perf_views.dir/bench_fig9_perf_views.cpp.o"
  "CMakeFiles/bench_fig9_perf_views.dir/bench_fig9_perf_views.cpp.o.d"
  "bench_fig9_perf_views"
  "bench_fig9_perf_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_perf_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
