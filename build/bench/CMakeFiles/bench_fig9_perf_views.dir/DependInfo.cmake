
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_perf_views.cpp" "bench/CMakeFiles/bench_fig9_perf_views.dir/bench_fig9_perf_views.cpp.o" "gcc" "bench/CMakeFiles/bench_fig9_perf_views.dir/bench_fig9_perf_views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/eclipse_app.dir/DependInfo.cmake"
  "/root/repo/build/src/coproc/CMakeFiles/eclipse_coproc.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/eclipse_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eclipse_media.dir/DependInfo.cmake"
  "/root/repo/build/src/kpn/CMakeFiles/eclipse_kpn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eclipse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
