# Empty compiler generated dependencies file for bench_sec52_coherency.
# This may be replaced when dependencies are built.
