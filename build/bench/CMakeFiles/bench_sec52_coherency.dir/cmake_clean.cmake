file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_coherency.dir/bench_sec52_coherency.cpp.o"
  "CMakeFiles/bench_sec52_coherency.dir/bench_sec52_coherency.cpp.o.d"
  "bench_sec52_coherency"
  "bench_sec52_coherency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_coherency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
