# Empty compiler generated dependencies file for bench_sec7_dct_pipeline.
# This may be replaced when dependencies are built.
