file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_dct_pipeline.dir/bench_sec7_dct_pipeline.cpp.o"
  "CMakeFiles/bench_sec7_dct_pipeline.dir/bench_sec7_dct_pipeline.cpp.o.d"
  "bench_sec7_dct_pipeline"
  "bench_sec7_dct_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_dct_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
