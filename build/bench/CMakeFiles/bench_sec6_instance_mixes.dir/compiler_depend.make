# Empty compiler generated dependencies file for bench_sec6_instance_mixes.
# This may be replaced when dependencies are built.
