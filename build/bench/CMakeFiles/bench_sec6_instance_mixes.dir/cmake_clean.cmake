file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_instance_mixes.dir/bench_sec6_instance_mixes.cpp.o"
  "CMakeFiles/bench_sec6_instance_mixes.dir/bench_sec6_instance_mixes.cpp.o.d"
  "bench_sec6_instance_mixes"
  "bench_sec6_instance_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_instance_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
