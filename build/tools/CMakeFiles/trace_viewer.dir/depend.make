# Empty dependencies file for trace_viewer.
# This may be replaced when dependencies are built.
