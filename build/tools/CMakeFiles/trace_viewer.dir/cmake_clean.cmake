file(REMOVE_RECURSE
  "CMakeFiles/trace_viewer.dir/trace_viewer.cpp.o"
  "CMakeFiles/trace_viewer.dir/trace_viewer.cpp.o.d"
  "trace_viewer"
  "trace_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
