# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_trace_viewer "/usr/bin/cmake" "-DSIM_DRIVER=/root/repo/build/examples/sim_driver" "-DVIEWER=/root/repo/build/tools/trace_viewer" "-DWORK_DIR=/root/repo/build/tools" "-P" "/root/repo/tools/run_viewer_test.cmake")
set_tests_properties(tool_trace_viewer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
