file(REMOVE_RECURSE
  "libeclipse_shell.a"
)
