# Empty compiler generated dependencies file for eclipse_shell.
# This may be replaced when dependencies are built.
