
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shell/shell.cpp" "src/shell/CMakeFiles/eclipse_shell.dir/shell.cpp.o" "gcc" "src/shell/CMakeFiles/eclipse_shell.dir/shell.cpp.o.d"
  "/root/repo/src/shell/stream_cache.cpp" "src/shell/CMakeFiles/eclipse_shell.dir/stream_cache.cpp.o" "gcc" "src/shell/CMakeFiles/eclipse_shell.dir/stream_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/eclipse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
