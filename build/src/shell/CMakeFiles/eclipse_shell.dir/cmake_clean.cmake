file(REMOVE_RECURSE
  "CMakeFiles/eclipse_shell.dir/shell.cpp.o"
  "CMakeFiles/eclipse_shell.dir/shell.cpp.o.d"
  "CMakeFiles/eclipse_shell.dir/stream_cache.cpp.o"
  "CMakeFiles/eclipse_shell.dir/stream_cache.cpp.o.d"
  "libeclipse_shell.a"
  "libeclipse_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
