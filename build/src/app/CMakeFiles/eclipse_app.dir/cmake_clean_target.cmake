file(REMOVE_RECURSE
  "libeclipse_app.a"
)
