
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/audio_app.cpp" "src/app/CMakeFiles/eclipse_app.dir/audio_app.cpp.o" "gcc" "src/app/CMakeFiles/eclipse_app.dir/audio_app.cpp.o.d"
  "/root/repo/src/app/av_app.cpp" "src/app/CMakeFiles/eclipse_app.dir/av_app.cpp.o" "gcc" "src/app/CMakeFiles/eclipse_app.dir/av_app.cpp.o.d"
  "/root/repo/src/app/decode_app.cpp" "src/app/CMakeFiles/eclipse_app.dir/decode_app.cpp.o" "gcc" "src/app/CMakeFiles/eclipse_app.dir/decode_app.cpp.o.d"
  "/root/repo/src/app/encode_app.cpp" "src/app/CMakeFiles/eclipse_app.dir/encode_app.cpp.o" "gcc" "src/app/CMakeFiles/eclipse_app.dir/encode_app.cpp.o.d"
  "/root/repo/src/app/instance.cpp" "src/app/CMakeFiles/eclipse_app.dir/instance.cpp.o" "gcc" "src/app/CMakeFiles/eclipse_app.dir/instance.cpp.o.d"
  "/root/repo/src/app/kpn_media.cpp" "src/app/CMakeFiles/eclipse_app.dir/kpn_media.cpp.o" "gcc" "src/app/CMakeFiles/eclipse_app.dir/kpn_media.cpp.o.d"
  "/root/repo/src/app/trace.cpp" "src/app/CMakeFiles/eclipse_app.dir/trace.cpp.o" "gcc" "src/app/CMakeFiles/eclipse_app.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coproc/CMakeFiles/eclipse_coproc.dir/DependInfo.cmake"
  "/root/repo/build/src/kpn/CMakeFiles/eclipse_kpn.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/eclipse_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eclipse_media.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eclipse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
