file(REMOVE_RECURSE
  "CMakeFiles/eclipse_app.dir/audio_app.cpp.o"
  "CMakeFiles/eclipse_app.dir/audio_app.cpp.o.d"
  "CMakeFiles/eclipse_app.dir/av_app.cpp.o"
  "CMakeFiles/eclipse_app.dir/av_app.cpp.o.d"
  "CMakeFiles/eclipse_app.dir/decode_app.cpp.o"
  "CMakeFiles/eclipse_app.dir/decode_app.cpp.o.d"
  "CMakeFiles/eclipse_app.dir/encode_app.cpp.o"
  "CMakeFiles/eclipse_app.dir/encode_app.cpp.o.d"
  "CMakeFiles/eclipse_app.dir/instance.cpp.o"
  "CMakeFiles/eclipse_app.dir/instance.cpp.o.d"
  "CMakeFiles/eclipse_app.dir/kpn_media.cpp.o"
  "CMakeFiles/eclipse_app.dir/kpn_media.cpp.o.d"
  "CMakeFiles/eclipse_app.dir/trace.cpp.o"
  "CMakeFiles/eclipse_app.dir/trace.cpp.o.d"
  "libeclipse_app.a"
  "libeclipse_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
