# Empty compiler generated dependencies file for eclipse_app.
# This may be replaced when dependencies are built.
