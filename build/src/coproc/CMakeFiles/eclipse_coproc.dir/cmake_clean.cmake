file(REMOVE_RECURSE
  "CMakeFiles/eclipse_coproc.dir/dct_coproc.cpp.o"
  "CMakeFiles/eclipse_coproc.dir/dct_coproc.cpp.o.d"
  "CMakeFiles/eclipse_coproc.dir/fork.cpp.o"
  "CMakeFiles/eclipse_coproc.dir/fork.cpp.o.d"
  "CMakeFiles/eclipse_coproc.dir/mc.cpp.o"
  "CMakeFiles/eclipse_coproc.dir/mc.cpp.o.d"
  "CMakeFiles/eclipse_coproc.dir/packet_io.cpp.o"
  "CMakeFiles/eclipse_coproc.dir/packet_io.cpp.o.d"
  "CMakeFiles/eclipse_coproc.dir/rlsq.cpp.o"
  "CMakeFiles/eclipse_coproc.dir/rlsq.cpp.o.d"
  "CMakeFiles/eclipse_coproc.dir/sinks.cpp.o"
  "CMakeFiles/eclipse_coproc.dir/sinks.cpp.o.d"
  "CMakeFiles/eclipse_coproc.dir/soft_tasks.cpp.o"
  "CMakeFiles/eclipse_coproc.dir/soft_tasks.cpp.o.d"
  "CMakeFiles/eclipse_coproc.dir/vld.cpp.o"
  "CMakeFiles/eclipse_coproc.dir/vld.cpp.o.d"
  "libeclipse_coproc.a"
  "libeclipse_coproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_coproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
