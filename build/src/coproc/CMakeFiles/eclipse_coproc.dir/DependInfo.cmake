
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coproc/dct_coproc.cpp" "src/coproc/CMakeFiles/eclipse_coproc.dir/dct_coproc.cpp.o" "gcc" "src/coproc/CMakeFiles/eclipse_coproc.dir/dct_coproc.cpp.o.d"
  "/root/repo/src/coproc/fork.cpp" "src/coproc/CMakeFiles/eclipse_coproc.dir/fork.cpp.o" "gcc" "src/coproc/CMakeFiles/eclipse_coproc.dir/fork.cpp.o.d"
  "/root/repo/src/coproc/mc.cpp" "src/coproc/CMakeFiles/eclipse_coproc.dir/mc.cpp.o" "gcc" "src/coproc/CMakeFiles/eclipse_coproc.dir/mc.cpp.o.d"
  "/root/repo/src/coproc/packet_io.cpp" "src/coproc/CMakeFiles/eclipse_coproc.dir/packet_io.cpp.o" "gcc" "src/coproc/CMakeFiles/eclipse_coproc.dir/packet_io.cpp.o.d"
  "/root/repo/src/coproc/rlsq.cpp" "src/coproc/CMakeFiles/eclipse_coproc.dir/rlsq.cpp.o" "gcc" "src/coproc/CMakeFiles/eclipse_coproc.dir/rlsq.cpp.o.d"
  "/root/repo/src/coproc/sinks.cpp" "src/coproc/CMakeFiles/eclipse_coproc.dir/sinks.cpp.o" "gcc" "src/coproc/CMakeFiles/eclipse_coproc.dir/sinks.cpp.o.d"
  "/root/repo/src/coproc/soft_tasks.cpp" "src/coproc/CMakeFiles/eclipse_coproc.dir/soft_tasks.cpp.o" "gcc" "src/coproc/CMakeFiles/eclipse_coproc.dir/soft_tasks.cpp.o.d"
  "/root/repo/src/coproc/vld.cpp" "src/coproc/CMakeFiles/eclipse_coproc.dir/vld.cpp.o" "gcc" "src/coproc/CMakeFiles/eclipse_coproc.dir/vld.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shell/CMakeFiles/eclipse_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eclipse_media.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eclipse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
