file(REMOVE_RECURSE
  "libeclipse_coproc.a"
)
