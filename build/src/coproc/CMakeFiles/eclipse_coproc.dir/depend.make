# Empty dependencies file for eclipse_coproc.
# This may be replaced when dependencies are built.
