file(REMOVE_RECURSE
  "CMakeFiles/eclipse_media.dir/audio.cpp.o"
  "CMakeFiles/eclipse_media.dir/audio.cpp.o.d"
  "CMakeFiles/eclipse_media.dir/codec.cpp.o"
  "CMakeFiles/eclipse_media.dir/codec.cpp.o.d"
  "CMakeFiles/eclipse_media.dir/dct.cpp.o"
  "CMakeFiles/eclipse_media.dir/dct.cpp.o.d"
  "CMakeFiles/eclipse_media.dir/metrics.cpp.o"
  "CMakeFiles/eclipse_media.dir/metrics.cpp.o.d"
  "CMakeFiles/eclipse_media.dir/motion.cpp.o"
  "CMakeFiles/eclipse_media.dir/motion.cpp.o.d"
  "CMakeFiles/eclipse_media.dir/mux.cpp.o"
  "CMakeFiles/eclipse_media.dir/mux.cpp.o.d"
  "CMakeFiles/eclipse_media.dir/packets.cpp.o"
  "CMakeFiles/eclipse_media.dir/packets.cpp.o.d"
  "CMakeFiles/eclipse_media.dir/quant.cpp.o"
  "CMakeFiles/eclipse_media.dir/quant.cpp.o.d"
  "CMakeFiles/eclipse_media.dir/rle.cpp.o"
  "CMakeFiles/eclipse_media.dir/rle.cpp.o.d"
  "CMakeFiles/eclipse_media.dir/scan.cpp.o"
  "CMakeFiles/eclipse_media.dir/scan.cpp.o.d"
  "CMakeFiles/eclipse_media.dir/video_gen.cpp.o"
  "CMakeFiles/eclipse_media.dir/video_gen.cpp.o.d"
  "CMakeFiles/eclipse_media.dir/vlc.cpp.o"
  "CMakeFiles/eclipse_media.dir/vlc.cpp.o.d"
  "libeclipse_media.a"
  "libeclipse_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
