# Empty dependencies file for eclipse_media.
# This may be replaced when dependencies are built.
