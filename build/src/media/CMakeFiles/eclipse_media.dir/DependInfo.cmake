
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/audio.cpp" "src/media/CMakeFiles/eclipse_media.dir/audio.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/audio.cpp.o.d"
  "/root/repo/src/media/codec.cpp" "src/media/CMakeFiles/eclipse_media.dir/codec.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/codec.cpp.o.d"
  "/root/repo/src/media/dct.cpp" "src/media/CMakeFiles/eclipse_media.dir/dct.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/dct.cpp.o.d"
  "/root/repo/src/media/metrics.cpp" "src/media/CMakeFiles/eclipse_media.dir/metrics.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/metrics.cpp.o.d"
  "/root/repo/src/media/motion.cpp" "src/media/CMakeFiles/eclipse_media.dir/motion.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/motion.cpp.o.d"
  "/root/repo/src/media/mux.cpp" "src/media/CMakeFiles/eclipse_media.dir/mux.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/mux.cpp.o.d"
  "/root/repo/src/media/packets.cpp" "src/media/CMakeFiles/eclipse_media.dir/packets.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/packets.cpp.o.d"
  "/root/repo/src/media/quant.cpp" "src/media/CMakeFiles/eclipse_media.dir/quant.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/quant.cpp.o.d"
  "/root/repo/src/media/rle.cpp" "src/media/CMakeFiles/eclipse_media.dir/rle.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/rle.cpp.o.d"
  "/root/repo/src/media/scan.cpp" "src/media/CMakeFiles/eclipse_media.dir/scan.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/scan.cpp.o.d"
  "/root/repo/src/media/video_gen.cpp" "src/media/CMakeFiles/eclipse_media.dir/video_gen.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/video_gen.cpp.o.d"
  "/root/repo/src/media/vlc.cpp" "src/media/CMakeFiles/eclipse_media.dir/vlc.cpp.o" "gcc" "src/media/CMakeFiles/eclipse_media.dir/vlc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/eclipse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
