file(REMOVE_RECURSE
  "libeclipse_media.a"
)
