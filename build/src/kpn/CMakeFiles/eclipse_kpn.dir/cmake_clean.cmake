file(REMOVE_RECURSE
  "CMakeFiles/eclipse_kpn.dir/graph.cpp.o"
  "CMakeFiles/eclipse_kpn.dir/graph.cpp.o.d"
  "libeclipse_kpn.a"
  "libeclipse_kpn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_kpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
