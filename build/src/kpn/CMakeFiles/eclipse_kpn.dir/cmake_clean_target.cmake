file(REMOVE_RECURSE
  "libeclipse_kpn.a"
)
