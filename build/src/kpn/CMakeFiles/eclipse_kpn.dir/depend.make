# Empty dependencies file for eclipse_kpn.
# This may be replaced when dependencies are built.
