file(REMOVE_RECURSE
  "libeclipse_sim.a"
)
