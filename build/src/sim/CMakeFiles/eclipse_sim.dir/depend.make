# Empty dependencies file for eclipse_sim.
# This may be replaced when dependencies are built.
