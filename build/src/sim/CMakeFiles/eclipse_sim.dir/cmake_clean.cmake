file(REMOVE_RECURSE
  "CMakeFiles/eclipse_sim.dir/config.cpp.o"
  "CMakeFiles/eclipse_sim.dir/config.cpp.o.d"
  "CMakeFiles/eclipse_sim.dir/simulator.cpp.o"
  "CMakeFiles/eclipse_sim.dir/simulator.cpp.o.d"
  "libeclipse_sim.a"
  "libeclipse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
