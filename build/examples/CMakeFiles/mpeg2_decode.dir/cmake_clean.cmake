file(REMOVE_RECURSE
  "CMakeFiles/mpeg2_decode.dir/mpeg2_decode.cpp.o"
  "CMakeFiles/mpeg2_decode.dir/mpeg2_decode.cpp.o.d"
  "mpeg2_decode"
  "mpeg2_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpeg2_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
