# Empty dependencies file for mpeg2_decode.
# This may be replaced when dependencies are built.
