file(REMOVE_RECURSE
  "CMakeFiles/av_playback.dir/av_playback.cpp.o"
  "CMakeFiles/av_playback.dir/av_playback.cpp.o.d"
  "av_playback"
  "av_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
