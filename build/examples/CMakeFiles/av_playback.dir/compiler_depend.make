# Empty compiler generated dependencies file for av_playback.
# This may be replaced when dependencies are built.
