file(REMOVE_RECURSE
  "CMakeFiles/qos_control.dir/qos_control.cpp.o"
  "CMakeFiles/qos_control.dir/qos_control.cpp.o.d"
  "qos_control"
  "qos_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
