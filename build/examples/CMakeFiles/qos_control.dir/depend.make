# Empty dependencies file for qos_control.
# This may be replaced when dependencies are built.
