# Empty compiler generated dependencies file for timeshift_transcode.
# This may be replaced when dependencies are built.
