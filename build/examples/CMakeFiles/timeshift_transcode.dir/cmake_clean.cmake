file(REMOVE_RECURSE
  "CMakeFiles/timeshift_transcode.dir/timeshift_transcode.cpp.o"
  "CMakeFiles/timeshift_transcode.dir/timeshift_transcode.cpp.o.d"
  "timeshift_transcode"
  "timeshift_transcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeshift_transcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
