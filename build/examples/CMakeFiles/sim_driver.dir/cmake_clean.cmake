file(REMOVE_RECURSE
  "CMakeFiles/sim_driver.dir/sim_driver.cpp.o"
  "CMakeFiles/sim_driver.dir/sim_driver.cpp.o.d"
  "sim_driver"
  "sim_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
