# Empty dependencies file for sim_driver.
# This may be replaced when dependencies are built.
