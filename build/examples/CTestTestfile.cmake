# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mpeg2_decode "/root/repo/build/examples/mpeg2_decode")
set_tests_properties(example_mpeg2_decode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_timeshift_transcode "/root/repo/build/examples/timeshift_transcode")
set_tests_properties(example_timeshift_transcode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_qos_control "/root/repo/build/examples/qos_control")
set_tests_properties(example_qos_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sim_driver "/root/repo/build/examples/sim_driver" "--width" "64" "--height" "48" "--frames" "4")
set_tests_properties(example_sim_driver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_av_playback "/root/repo/build/examples/av_playback")
set_tests_properties(example_av_playback PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sim_driver_setup "/root/repo/build/examples/sim_driver" "--setup" "/root/repo/examples/setups/pipelined_dct.cfg" "--width" "64" "--height" "48" "--frames" "4")
set_tests_properties(example_sim_driver_setup PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
