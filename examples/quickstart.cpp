// Quickstart: encode a synthetic video with the golden encoder, decode it
// on a cycle-level Eclipse instance, and check the result bit-exactly.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "eclipse/eclipse.hpp"

using namespace eclipse;

int main() {
  // 1. A synthetic test sequence (no external test material needed).
  media::VideoGenParams video;
  video.width = 96;
  video.height = 64;
  video.frames = 9;
  const auto frames = media::generateVideo(video);

  // 2. Encode it functionally (the golden model).
  media::CodecParams codec;
  codec.width = video.width;
  codec.height = video.height;
  codec.qscale = 8;
  media::Encoder encoder(codec);
  const auto bitstream = encoder.encode(frames);
  std::printf("encoded %d frames (GOP %s) into %zu bytes\n", video.frames,
              codec.gop.pattern().c_str(), bitstream.size());

  // 3. Build an Eclipse instance (Figure 8) and configure the MPEG-2
  //    decoding application (Figure 2) onto it at run time.
  app::EclipseInstance instance;
  app::DecodeApp decode(instance, bitstream);

  // 4. Run the cycle-level simulation to completion.
  const sim::Cycle cycles = instance.run();
  std::printf("decoded %llu macroblocks in %llu cycles (%.1f cycles/MB)\n",
              static_cast<unsigned long long>(decode.macroblocksDecoded()),
              static_cast<unsigned long long>(cycles),
              static_cast<double>(cycles) / static_cast<double>(decode.macroblocksDecoded()));

  // 5. The Eclipse output must match the encoder's closed-loop
  //    reconstruction bit-exactly (Kahn determinism across refinement).
  const auto out = decode.frames();
  bool exact = out.size() == frames.size();
  for (std::size_t i = 0; exact && i < out.size(); ++i) {
    exact = out[i] == encoder.reconstructed()[i];
  }
  std::printf("bit-exact vs golden reconstruction: %s\n", exact ? "yes" : "NO");
  std::printf("decoded quality vs source: %.2f dB luma PSNR\n",
              media::averagePsnr(frames, out));

  // 6. Architecture-view statistics from the shells (Section 5.4).
  for (auto& sh : instance.shells()) {
    std::printf("  %-12s utilization %5.1f%%  task switches %llu\n", sh->name().c_str(),
                100.0 * sh->utilization(cycles),
                static_cast<unsigned long long>(sh->taskSwitches()));
  }
  return exact ? 0 : 1;
}
