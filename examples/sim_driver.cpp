// Stand-alone simulator driver — the Section 7 workflow as a tool:
// "the simulator parses a setup file that contains these architectural
// parameters and collects measurement data such as the filling of
// communication buffers and the execution time of a coprocessor."
//
// Usage:
//   sim_driver [--setup FILE] [--width N] [--height N] [--frames N]
//              [--qscale N] [--gop-n N] [--gop-m N] [--seed N]
//              [--streams N] [--csv PREFIX] [--charts]
//
// Runs N simultaneous decode applications of a synthetic sequence on one
// Eclipse instance configured from the setup file, prints the measurement
// summary, and optionally writes the buffer-fill series as CSV files.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "eclipse/eclipse.hpp"

using namespace eclipse;

namespace {

struct Options {
  std::string setup_file;
  int width = 176, height = 144, frames = 9, qscale = 14;
  int gop_n = 9, gop_m = 3;
  std::uint64_t seed = 3;
  int streams = 1;
  std::string csv_prefix;
  bool charts = false;
};

bool parseArgs(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--setup") o.setup_file = next("--setup");
    else if (a == "--width") o.width = std::atoi(next("--width"));
    else if (a == "--height") o.height = std::atoi(next("--height"));
    else if (a == "--frames") o.frames = std::atoi(next("--frames"));
    else if (a == "--qscale") o.qscale = std::atoi(next("--qscale"));
    else if (a == "--gop-n") o.gop_n = std::atoi(next("--gop-n"));
    else if (a == "--gop-m") o.gop_m = std::atoi(next("--gop-m"));
    else if (a == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    else if (a == "--streams") o.streams = std::atoi(next("--streams"));
    else if (a == "--csv") o.csv_prefix = next("--csv");
    else if (a == "--charts") o.charts = true;
    else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parseArgs(argc, argv, o)) return 2;

  // Workload.
  media::VideoGenParams vp;
  vp.width = o.width;
  vp.height = o.height;
  vp.frames = o.frames;
  vp.seed = o.seed;
  vp.detail = 8;
  vp.motion_speed = 4;
  vp.noise_level = 0;
  const auto frames = media::generateVideo(vp);
  media::CodecParams cp;
  cp.width = o.width;
  cp.height = o.height;
  cp.qscale = o.qscale;
  cp.gop = media::GopStructure{o.gop_n, o.gop_m};
  media::Encoder enc(cp);
  const auto bits = enc.encode(frames);

  // Instance from the setup file.
  app::InstanceParams ip;
  if (!o.setup_file.empty()) {
    ip = app::InstanceParams::fromConfig(sim::Config::fromFile(o.setup_file));
  }
  if (ip.profiler_period == 0) ip.profiler_period = 250;
  if (o.streams > 1 && ip.sram.size_bytes < static_cast<std::size_t>(o.streams) * 16 * 1024) {
    ip.sram.size_bytes = static_cast<std::size_t>(o.streams) * 16 * 1024;
  }
  app::EclipseInstance inst(ip);

  std::vector<std::unique_ptr<app::DecodeApp>> apps;
  for (int s = 0; s < o.streams; ++s) {
    apps.push_back(std::make_unique<app::DecodeApp>(inst, bits));
  }
  const sim::Cycle cycles = inst.run();

  std::uint64_t mbs = 0;
  bool all_exact = true;
  for (auto& a : apps) {
    if (!a->done()) {
      std::fprintf(stderr, "error: a decode did not complete\n");
      return 1;
    }
    mbs += a->macroblocksDecoded();
    const auto out = a->frames();
    for (std::size_t i = 0; i < out.size(); ++i) {
      all_exact = all_exact && out[i] == enc.reconstructed()[i];
    }
  }

  std::printf("eclipse sim: %dx%d, %d frame(s), GOP %s, qscale %d, %d stream(s)\n", o.width,
              o.height, o.frames, cp.gop.pattern().c_str(), o.qscale, o.streams);
  std::printf("  %llu cycles, %llu MBs, %.1f cycles/MB, bit-exact: %s\n",
              static_cast<unsigned long long>(cycles), static_cast<unsigned long long>(mbs),
              static_cast<double>(cycles) / static_cast<double>(mbs), all_exact ? "yes" : "NO");
  std::printf("  buses: sram-rd %.1f%%, sram-wr %.1f%%, system %.1f%%; %llu sync msgs\n",
              100 * inst.sram().readBus().utilization(cycles),
              100 * inst.sram().writeBus().utilization(cycles),
              100 * inst.dram().bus().utilization(cycles),
              static_cast<unsigned long long>(inst.network().messagesSent()));
  for (auto& sh : inst.shells()) {
    std::printf("  %-14s util %5.1f%%  switches %llu\n", sh->name().c_str(),
                100 * sh->utilization(cycles),
                static_cast<unsigned long long>(sh->taskSwitches()));
  }

  // Measurement exports.
  auto series = [&](const app::EclipseInstance::StreamHandle& h, const std::string& name) {
    sim::TimeSeries s(name);
    const auto& src = h.consumer_shell->streams().row(h.consumer_row).fill_series;
    for (auto& [c, v] : src.points()) s.sample(c, v);
    return s;
  };
  const auto rlsq = series(apps[0]->coefStream(), "rlsq_in_fill");
  const auto dct = series(apps[0]->blocksStream(), "dct_in_fill");
  const auto mc = series(apps[0]->resStream(), "mc_in_fill");

  if (o.charts) {
    app::ChartOptions copts;
    copts.width = 100;
    copts.height = 6;
    std::printf("\n%s", app::renderStack({&rlsq, &dct, &mc}, copts).c_str());
  }
  if (!o.csv_prefix.empty()) {
    const std::string path = o.csv_prefix + "_buffer_fill.csv";
    std::ofstream out(path);
    out << app::toCsv({&rlsq, &dct, &mc});
    std::printf("  wrote %s\n", path.c_str());
  }
  return all_exact ? 0 : 1;
}
