// Run-time quality-of-service control (Section 5.4, second use of the
// hardware measurements: "Run-time control for quality-of-service resource
// management in the final product", ref [1]).
//
// Two decode applications share one instance. The foreground app has a
// latency target; a software monitor on the control CPU samples the
// shells' measurement registers over the PI-bus at a regular interval and
// suspends/resumes the background app's tasks (task-table writes over the
// same PI-bus) to keep the foreground on schedule.

#include <cstdio>

#include "eclipse/eclipse.hpp"

using namespace eclipse;

namespace {

/// Enable/disable one application's tasks through the PI-bus, the way a
/// resource manager would.
void setAppEnabled(app::EclipseInstance& inst, const app::DecodeApp& dec, bool enabled) {
  auto poke = [&](shell::Shell& sh, sim::TaskId t) {
    inst.piBus().write(app::mmio::taskReg(sh, t, app::mmio::kTaskEnabled), enabled ? 1 : 0);
  };
  poke(inst.vldShell(), dec.vldTask());
  poke(inst.rlsqShell(), dec.rlsqTask());
  poke(inst.dctShell(), dec.dctTask());
  poke(inst.mcShell(), dec.mcTask());
}

/// Monitor process: samples foreground progress and actuates the
/// background app. Progress = macroblocks through the foreground MC task,
/// read from the measurement fields.
sim::Task<void> qosMonitor(app::EclipseInstance& inst, const app::DecodeApp& fg,
                           const app::DecodeApp& bg, std::uint64_t target_mb_per_interval,
                           sim::Cycle interval, int* throttle_events, bool* done_flag) {
  std::uint64_t last_reads = 0;
  bool bg_running = true;
  while (!*done_flag) {
    co_await inst.simulator().delay(interval);
    // Foreground throughput over the last interval, from the stream-table
    // measurement fields of the MC residual input (1 read per MB).
    const auto& row = fg.resStream().consumer_shell->streams().row(fg.resStream().consumer_row);
    const std::uint64_t reads = row.read_calls;
    const std::uint64_t delta = reads - last_reads;
    last_reads = reads;
    const bool behind = delta < target_mb_per_interval;
    if (behind && bg_running) {
      setAppEnabled(inst, bg, false);
      bg_running = false;
      ++*throttle_events;
    } else if (!behind && !bg_running) {
      setAppEnabled(inst, bg, true);
      bg_running = true;
    }
  }
  if (!bg_running) setAppEnabled(inst, bg, true);  // let the background finish
}

struct Outcome {
  sim::Cycle fg_done = 0;
  sim::Cycle all_done = 0;
  int throttles = 0;
};

Outcome runScenario(const std::vector<std::uint8_t>& fg_bits,
                    const std::vector<std::uint8_t>& bg_bits, bool with_qos) {
  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);
  app::DecodeApp fg(inst, fg_bits);
  app::DecodeApp bg(inst, bg_bits);

  Outcome o;
  bool fg_done_flag = false;
  // Track foreground completion time with a lightweight watcher process.
  inst.simulator().spawn(
      [](app::EclipseInstance& inst, app::DecodeApp& fg, Outcome& o,
         bool& flag) -> sim::Task<void> {
        while (!fg.done()) co_await inst.simulator().delay(500);
        o.fg_done = inst.simulator().now();
        flag = true;
      }(inst, fg, o, fg_done_flag),
      "fg-watch");

  if (with_qos) {
    inst.simulator().spawn(qosMonitor(inst, fg, bg, /*target_mb_per_interval=*/14,
                                      /*interval=*/10000, &o.throttles, &fg_done_flag),
                           "qos-monitor");
  }
  o.all_done = inst.run(500'000'000);
  if (!fg.done() || !bg.done()) std::fprintf(stderr, "warning: scenario incomplete\n");
  // The watcher polls every 500 cycles; if the whole run ended between
  // polls, the foreground finished in the final interval.
  if (o.fg_done == 0 && fg.done()) o.fg_done = o.all_done;
  return o;
}

}  // namespace

int main() {
  media::VideoGenParams vp;
  vp.width = 176;
  vp.height = 144;
  vp.frames = 9;
  vp.detail = 8;
  vp.motion_speed = 4;
  vp.noise_level = 0;
  const auto video = media::generateVideo(vp);
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  cp.qscale = 14;
  media::Encoder enc(cp);
  const auto bits = enc.encode(video);

  const auto plain = runScenario(bits, bits, /*with_qos=*/false);
  const auto qos = runScenario(bits, bits, /*with_qos=*/true);

  std::printf("QoS resource management demo (two decodes, foreground has priority)\n\n");
  std::printf("%-22s %18s %18s %12s\n", "scenario", "foreground done", "everything done",
              "throttles");
  std::printf("%-22s %18llu %18llu %12s\n", "free-for-all",
              static_cast<unsigned long long>(plain.fg_done),
              static_cast<unsigned long long>(plain.all_done), "-");
  std::printf("%-22s %18llu %18llu %12d\n", "QoS monitor active",
              static_cast<unsigned long long>(qos.fg_done),
              static_cast<unsigned long long>(qos.all_done), qos.throttles);
  std::printf("\nforeground latency improved %.1f%% by suspending the background app\n"
              "whenever the measured macroblock rate fell below target — pure software\n"
              "control over the PI-bus, using the shells' measurement registers.\n",
              100.0 * (1.0 - static_cast<double>(qos.fg_done) / plain.fg_done));
  return qos.fg_done < plain.fg_done ? 0 : 1;
}
