// MPEG-2 decoding across all three levels of the Eclipse design trajectory
// (Section 4 / Section 7):
//   1. the Kahn Process Network application model (Figure 2),
//   2. the cycle-level Eclipse instance (Figure 8),
// with the performance-viewer output of Figure 9/10: per-stream buffer
// filling over time, rendered as text charts.

#include <cstdio>

#include "eclipse/app/kpn_media.hpp"
#include "eclipse/eclipse.hpp"

using namespace eclipse;

int main() {
  media::VideoGenParams video;
  video.width = 176;
  video.height = 144;
  video.frames = 9;
  video.detail = 4;
  const auto frames = media::generateVideo(video);

  media::CodecParams codec;
  codec.width = video.width;
  codec.height = video.height;
  codec.qscale = 8;
  media::Encoder encoder(codec);
  const auto bitstream = encoder.encode(frames);

  // --- Level 1: the Kahn application model ---------------------------
  app::KpnDecoder kpn_dec(bitstream);
  std::printf("%s\n", kpn_dec.graph().describe().c_str());
  const auto kpn_frames = kpn_dec.run();
  bool kpn_exact = true;
  for (std::size_t i = 0; i < kpn_frames.size(); ++i) {
    kpn_exact = kpn_exact && kpn_frames[i] == encoder.reconstructed()[i];
  }
  std::printf("KPN decode bit-exact vs golden: %s\n\n", kpn_exact ? "yes" : "NO");

  // --- Level 2: the timed Eclipse instance ----------------------------
  app::InstanceParams ip;
  ip.profiler_period = 500;  // Section 5.4 sampling process
  app::EclipseInstance inst(ip);
  app::DecodeApp dec(inst, bitstream);
  const sim::Cycle cycles = inst.run();

  const auto out = dec.frames();
  bool exact = out.size() == frames.size();
  for (std::size_t i = 0; exact && i < out.size(); ++i) {
    exact = out[i] == encoder.reconstructed()[i];
  }
  std::printf("Eclipse decode: %llu cycles, bit-exact: %s\n",
              static_cast<unsigned long long>(cycles), exact ? "yes" : "NO");

  // --- Figure 9/10 style application views ----------------------------
  auto& rlsq_fill = dec.coefStream().consumer_shell->streams().row(dec.coefStream().consumer_row).fill_series;
  auto& dct_fill = dec.blocksStream().consumer_shell->streams().row(dec.blocksStream().consumer_row).fill_series;
  auto& mc_fill = dec.resStream().consumer_shell->streams().row(dec.resStream().consumer_row).fill_series;

  sim::TimeSeries rlsq_named("available data: RLSQ input [bytes]");
  for (auto& [c, v] : rlsq_fill.points()) rlsq_named.sample(c, v);
  sim::TimeSeries dct_named("available data: DCT input [bytes]");
  for (auto& [c, v] : dct_fill.points()) dct_named.sample(c, v);
  sim::TimeSeries mc_named("available data: MC input [bytes]");
  for (auto& [c, v] : mc_fill.points()) mc_named.sample(c, v);

  app::ChartOptions opts;
  opts.width = 110;
  opts.height = 6;
  std::printf("\n%s\n",
              app::renderStack({&rlsq_named, &dct_named, &mc_named}, opts).c_str());

  std::printf("per-coprocessor utilization:\n");
  for (auto& sh : inst.shells()) {
    std::printf("  %-12s %5.1f%%\n", sh->name().c_str(), 100.0 * sh->utilization(cycles));
  }
  return (exact && kpn_exact) ? 0 : 1;
}
