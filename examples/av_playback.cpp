// Full A/V playback on one Eclipse instance — the complete Figure-8 story:
// the hardware coprocessors decode video while the DSP-CPU runs the three
// software functions the paper assigns to it (de-multiplexing, audio
// decoding — and, in the time-shift example, variable-length encoding).

#include <cstdio>

#include "eclipse/app/av_app.hpp"
#include "eclipse/eclipse.hpp"
#include "eclipse/media/audio.hpp"
#include "eclipse/media/mux.hpp"

using namespace eclipse;

int main() {
  // Produce an A/V transport stream: video + audio elementary streams.
  media::VideoGenParams vp;
  vp.width = 96;
  vp.height = 64;
  vp.frames = 9;
  const auto video_frames = media::generateVideo(vp);
  media::CodecParams cp;
  cp.width = vp.width;
  cp.height = vp.height;
  media::Encoder enc(cp);
  const auto video_es = enc.encode(video_frames);

  const auto pcm = media::audio::generateTone(48000 / 2, 77);  // half a second
  const auto audio_es = media::audio::encode(pcm);

  const auto ts = media::mux::interleave({video_es, audio_es});
  std::printf("transport stream: %zu bytes (%zu packets); video %zu B, audio %zu B\n",
              ts.size(), ts.size() / media::mux::kPacketBytes, video_es.size(),
              audio_es.size());

  // Play it back.
  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);
  app::AvPlaybackApp av(inst, ts);
  const sim::Cycle cycles = inst.run();

  if (!av.done()) {
    std::fprintf(stderr, "playback incomplete\n");
    return 1;
  }
  bool video_exact = true;
  const auto out = av.frames();
  for (std::size_t i = 0; i < out.size(); ++i) {
    video_exact = video_exact && out[i] == enc.reconstructed()[i];
  }
  const bool audio_exact = av.pcm() == media::audio::decode(audio_es);
  std::printf("playback finished at cycle %llu\n", static_cast<unsigned long long>(cycles));
  std::printf("  video: %zu frames, bit-exact %s\n", out.size(), video_exact ? "yes" : "NO");
  std::printf("  audio: %zu samples, bit-exact %s, %.1f dB SNR vs source\n", av.pcm().size(),
              audio_exact ? "yes" : "NO", media::audio::snrDb(pcm, av.pcm()));
  std::printf("  demux: %llu transport packets walked by the CPU\n",
              static_cast<unsigned long long>(av.packetsDemuxed()));
  std::printf("\nprocessor utilization:\n");
  for (auto& sh : inst.shells()) {
    std::printf("  %-14s %5.1f%%  (%llu task switches)\n", sh->name().c_str(),
                100.0 * sh->utilization(cycles),
                static_cast<unsigned long long>(sh->taskSwitches()));
  }
  return (video_exact && audio_exact) ? 0 : 1;
}
