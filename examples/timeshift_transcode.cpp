// Time-shift scenario from Section 6: one Eclipse instance runs an MPEG
// encoding application and an MPEG decoding application *simultaneously*.
// Every coprocessor's task table then holds tasks from both applications —
// e.g. the DCT coprocessor time-shares the encoder's forward DCT, the
// encoder's embedded inverse DCT, and the decoder's inverse DCT.

#include <cstdio>

#include "eclipse/eclipse.hpp"

using namespace eclipse;

int main() {
  // The "live broadcast" being recorded (encoded to disk)...
  media::VideoGenParams live;
  live.width = 96;
  live.height = 64;
  live.frames = 7;
  live.seed = 11;
  const auto live_frames = media::generateVideo(live);

  // ...while an earlier recording is played back (decoded).
  media::VideoGenParams earlier = live;
  earlier.seed = 99;
  const auto earlier_frames = media::generateVideo(earlier);

  media::CodecParams codec;
  codec.width = live.width;
  codec.height = live.height;
  codec.qscale = 8;
  codec.gop = media::GopStructure{6, 3};

  media::Encoder golden_enc(codec);
  const auto earlier_bits = golden_enc.encode(earlier_frames);

  // A larger instance of the template: 64 kB stream memory (a template
  // parameter, Section 2.3) to host both application graphs.
  app::InstanceParams ip;
  ip.sram.size_bytes = 64 * 1024;
  app::EclipseInstance inst(ip);

  app::EncodeApp enc_app(inst, live_frames, codec);
  app::DecodeApp dec_app(inst, earlier_bits);

  const sim::Cycle cycles = inst.run();
  std::printf("time-shift run finished at cycle %llu\n",
              static_cast<unsigned long long>(cycles));

  // Playback correctness: bit-exact vs the golden reconstruction.
  bool dec_ok = dec_app.done();
  const auto dec_frames = dec_app.frames();
  for (std::size_t i = 0; dec_ok && i < dec_frames.size(); ++i) {
    dec_ok = dec_frames[i] == golden_enc.reconstructed()[i];
  }
  std::printf("playback (decode) bit-exact: %s\n", dec_ok ? "yes" : "NO");

  // Recording correctness: the freshly encoded stream must decode well.
  media::Decoder check;
  const auto rec = check.decode(enc_app.bitstream());
  const double psnr = media::averagePsnr(live_frames, rec);
  std::printf("recording (encode) %zu bytes, %.2f dB luma PSNR vs live source\n",
              enc_app.bitstream().size(), psnr);

  std::printf("\ncoprocessor sharing (tasks from both applications):\n");
  for (auto& sh : inst.shells()) {
    int tasks = 0;
    for (std::uint32_t t = 0; t < sh->tasks().capacity(); ++t) {
      if (sh->tasks().row(static_cast<sim::TaskId>(t)).valid) ++tasks;
    }
    std::printf("  %-14s %d task(s), utilization %5.1f%%, %llu switches\n", sh->name().c_str(),
                tasks, 100.0 * sh->utilization(cycles),
                static_cast<unsigned long long>(sh->taskSwitches()));
  }
  return (dec_ok && psnr > 28.0) ? 0 : 1;
}
