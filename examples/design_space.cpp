// Design-space exploration (Section 7): the simulator "parses a setup file
// that contains architectural parameters and collects measurement data".
// This example decodes the same stream under several instance
// configurations — cache sizes, prefetching, bus width — and reports the
// decode time and memory traffic for each.
//
// Usage: design_space [setup_file]
//   With a setup file, runs exactly that configuration. Without one, runs
//   a built-in sweep.

#include <cstdio>
#include <string>
#include <vector>

#include "eclipse/eclipse.hpp"

using namespace eclipse;

namespace {

struct RunResult {
  sim::Cycle cycles = 0;
  double read_bus_util = 0;
  double write_bus_util = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t sync_messages = 0;
};

RunResult runConfig(const app::InstanceParams& ip, const std::vector<std::uint8_t>& bits) {
  app::EclipseInstance inst(ip);
  app::DecodeApp dec(inst, bits);
  RunResult r;
  r.cycles = inst.run();
  if (!dec.done()) std::fprintf(stderr, "warning: decode did not finish\n");
  r.read_bus_util = inst.sram().readBus().utilization(r.cycles);
  r.write_bus_util = inst.sram().writeBus().utilization(r.cycles);
  for (auto& sh : inst.shells()) {
    for (std::uint32_t i = 0; i < sh->streams().capacity(); ++i) {
      const auto& row = sh->streams().row(i);
      if (row.valid) r.cache_misses += row.cache_misses;
    }
  }
  r.sync_messages = inst.network().messagesSent();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  media::VideoGenParams video;
  video.width = 96;
  video.height = 64;
  video.frames = 7;
  const auto frames = media::generateVideo(video);
  media::CodecParams codec;
  codec.width = video.width;
  codec.height = video.height;
  media::Encoder enc(codec);
  const auto bits = enc.encode(frames);

  if (argc > 1) {
    const auto cfg = sim::Config::fromFile(argv[1]);
    const auto ip = app::InstanceParams::fromConfig(cfg);
    const auto r = runConfig(ip, bits);
    std::printf("setup %s: %llu cycles, read-bus %.1f%%, write-bus %.1f%%, misses %llu, sync msgs %llu\n",
                argv[1], static_cast<unsigned long long>(r.cycles), 100 * r.read_bus_util,
                100 * r.write_bus_util, static_cast<unsigned long long>(r.cache_misses),
                static_cast<unsigned long long>(r.sync_messages));
    return 0;
  }

  std::printf("%-44s %12s %9s %9s %10s\n", "configuration", "cycles", "rd-bus%", "wr-bus%",
              "misses");
  struct Variant {
    std::string name;
    app::InstanceParams ip;
  };
  std::vector<Variant> variants;
  {
    Variant v{"baseline (2x64B lines/port, prefetch on)", {}};
    variants.push_back(v);
  }
  {
    Variant v{"no prefetch", {}};
    v.ip.prefetch = false;
    variants.push_back(v);
  }
  {
    Variant v{"single cache line per port", {}};
    v.ip.cache_lines_per_port = 1;
    variants.push_back(v);
  }
  {
    Variant v{"4 cache lines per port", {}};
    v.ip.cache_lines_per_port = 4;
    variants.push_back(v);
  }
  {
    Variant v{"narrow 32-bit stream bus", {}};
    v.ip.sram.bus_width_bytes = 4;
    variants.push_back(v);
  }
  {
    Variant v{"slow bus (arbitration latency 8)", {}};
    v.ip.sram.bus_arbitration_latency = 8;
    variants.push_back(v);
  }

  for (const auto& v : variants) {
    const auto r = runConfig(v.ip, bits);
    std::printf("%-44s %12llu %8.1f%% %8.1f%% %10llu\n", v.name.c_str(),
                static_cast<unsigned long long>(r.cycles), 100 * r.read_bus_util,
                100 * r.write_bus_util, static_cast<unsigned long long>(r.cache_misses));
  }
  return 0;
}
