// eclipse_serve — the network-facing serving daemon (DESIGN §15).
//
// Listens on loopback, speaks the ECL1 binary protocol (or the nc-friendly
// text mode), and serves submitted jobs through the multi-tenant QoS
// dispatcher over an eclipse::farm::Farm.
//
// Signals:
//   SIGTERM / SIGINT  rolling drain: stop admitting, finish every accepted
//                     job, flush its result to its connection, exit.
//   SIGHUP            reload --config (tenant quotas / worker count) live.
//
// Exit status: 0 only when the drain lost nothing — every accepted job
// delivered its result to a still-connected client.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eclipse/serve/server.hpp"

using namespace eclipse;

namespace {

volatile std::sig_atomic_t g_drain = 0;
volatile std::sig_atomic_t g_reload = 0;

void onDrainSignal(int) { g_drain = 1; }
void onReloadSignal(int) { g_reload = 1; }

void usage() {
  std::printf(
      "usage: eclipse_serve [options]\n"
      "  --port N            TCP port on 127.0.0.1 (default 0 = ephemeral;\n"
      "                      the bound port is printed on startup)\n"
      "  --workers N         farm worker threads (default: hardware concurrency)\n"
      "  --queue N           farm queue capacity (default 64)\n"
      "  --lane-threads N    host-thread budget for shard lanes\n"
      "  --tenant SPEC       register a tenant: name[:rate=X,burst=X,quota=N,\n"
      "                      pending=N,weight=X,policy=shed|queue]; repeatable\n"
      "  --default SPEC      QoS template for auto-registered tenants\n"
      "                      (fields only, e.g. rate=20,quota=2,policy=shed)\n"
      "  --no-auto-register  reject jobs from unregistered tenants\n"
      "  --promote-slack-ms X  deadline slack threshold for lane promotion\n"
      "                        (default 100)\n"
      "  --max-connections N   accepted-connection bound (default 64)\n"
      "  --accept-backlog N    kernel accept backlog (default 16)\n"
      "  --config FILE       config file (reloaded on SIGHUP): lines\n"
      "                      'workers N', 'tenant SPEC', 'default FIELDS',\n"
      "                      '#' comments\n"
      "  --quiet             suppress the periodic status line\n");
}

/// Parses the config file into a reload payload (tenants + workers).
/// Startup also applies 'workers' as the farm size.
bool parseConfigFile(const std::string& path, serve::ReloadConfig& out,
                     serve::TenantConfig* default_tenant, std::string& err) {
  std::ifstream is(path);
  if (!is) {
    err = "cannot open " + path;
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd) || cmd[0] == '#') continue;
    if (cmd == "workers") {
      if (!(ls >> out.workers) || out.workers < 1) {
        err = path + ":" + std::to_string(line_no) + ": bad worker count";
        return false;
      }
    } else if (cmd == "tenant") {
      std::string spec;
      ls >> spec;
      serve::TenantConfig cfg;
      std::string terr;
      if (!serve::parseTenantSpec(spec, cfg, terr)) {
        err = path + ":" + std::to_string(line_no) + ": " + terr;
        return false;
      }
      out.tenants.push_back(std::move(cfg));
    } else if (cmd == "default") {
      std::string fields;
      ls >> fields;
      serve::TenantConfig cfg;
      std::string terr;
      if (!serve::parseTenantSpec("default:" + fields, cfg, terr)) {
        err = path + ":" + std::to_string(line_no) + ": " + terr;
        return false;
      }
      if (default_tenant != nullptr) *default_tenant = cfg;
    } else {
      err = path + ":" + std::to_string(line_no) + ": unknown directive " + cmd;
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServeOptions opts;
  opts.default_tenant.name = "default";
  std::string config_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    std::string err;
    if (a == "--port") {
      opts.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (a == "--workers") {
      opts.farm.workers = std::atoi(next());
    } else if (a == "--queue") {
      opts.farm.queue_capacity = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--lane-threads") {
      opts.farm.lane_threads = std::atoi(next());
    } else if (a == "--tenant") {
      serve::TenantConfig cfg;
      if (!serve::parseTenantSpec(next(), cfg, err)) {
        std::fprintf(stderr, "eclipse_serve: %s\n", err.c_str());
        return 2;
      }
      opts.tenants.push_back(std::move(cfg));
    } else if (a == "--default") {
      if (!serve::parseTenantSpec(std::string("default:") + next(), opts.default_tenant, err)) {
        std::fprintf(stderr, "eclipse_serve: %s\n", err.c_str());
        return 2;
      }
    } else if (a == "--no-auto-register") {
      opts.auto_register = false;
    } else if (a == "--promote-slack-ms") {
      opts.promote_slack_ms = std::atof(next());
    } else if (a == "--max-connections") {
      opts.max_connections = std::atoi(next());
    } else if (a == "--accept-backlog") {
      opts.accept_backlog = std::atoi(next());
    } else if (a == "--config") {
      config_path = next();
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      usage();
      return a == "--help" || a == "-h" ? 0 : 2;
    }
  }

  if (!config_path.empty()) {
    serve::ReloadConfig file_cfg;
    std::string err;
    if (!parseConfigFile(config_path, file_cfg, &opts.default_tenant, err)) {
      std::fprintf(stderr, "eclipse_serve: %s\n", err.c_str());
      return 2;
    }
    if (file_cfg.workers > 0) opts.farm.workers = file_cfg.workers;
    for (auto& t : file_cfg.tenants) opts.tenants.push_back(std::move(t));
  }

  struct sigaction sa {};
  sa.sa_handler = onDrainSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  sa.sa_handler = onReloadSignal;
  sigaction(SIGHUP, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  serve::Server server(opts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "eclipse_serve: %s\n", e.what());
    return 1;
  }
  // serve_client --spawn parses this line for the (possibly ephemeral) port.
  std::printf("eclipse_serve: listening on 127.0.0.1:%u (%d workers)\n",
              static_cast<unsigned>(server.port()), server.farm().workerCount());
  std::fflush(stdout);

  int status_tick = 0;
  while (g_drain == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (g_reload != 0) {
      g_reload = 0;
      if (config_path.empty()) {
        std::printf("eclipse_serve: SIGHUP with no --config; ignored\n");
      } else {
        serve::ReloadConfig cfg;
        std::string err;
        if (!parseConfigFile(config_path, cfg, nullptr, err)) {
          std::fprintf(stderr, "eclipse_serve: reload failed: %s\n", err.c_str());
        } else {
          server.reload(cfg);
          std::printf("eclipse_serve: reloaded %s (%zu tenant(s)%s)\n", config_path.c_str(),
                      cfg.tenants.size(),
                      cfg.workers > 0 ? (", workers=" + std::to_string(cfg.workers)).c_str()
                                      : "");
        }
      }
      std::fflush(stdout);
    }
    if (!quiet && ++status_tick % 100 == 0) {  // every ~10 s
      const farm::FarmMetrics m = server.farm().metrics();
      std::printf("eclipse_serve: %llu completed, %llu failed, %zu queued, %d conn(s)\n",
                  static_cast<unsigned long long>(m.completed),
                  static_cast<unsigned long long>(m.failed), m.queue_depth,
                  server.connectionCount());
      std::fflush(stdout);
    }
  }

  std::printf("eclipse_serve: draining...\n");
  std::fflush(stdout);
  server.shutdown();  // finishes + flushes every accepted job

  const farm::FarmMetrics m = server.farm().metrics();
  const std::uint64_t dropped = server.resultsDropped();
  std::printf("eclipse_serve: drained. accepted=%llu completed=%llu failed=%llu dropped=%llu\n",
              static_cast<unsigned long long>(m.accepted),
              static_cast<unsigned long long>(m.completed),
              static_cast<unsigned long long>(m.failed),
              static_cast<unsigned long long>(dropped));
  for (const serve::TenantStats& t : server.dispatcher().tenantStats()) {
    std::printf("  tenant %-12s admitted=%llu shed=%llu completed=%llu failed=%llu "
                "promoted=%llu p50=%.1fms p95=%.1fms p99=%.1fms\n",
                t.config.name.c_str(), static_cast<unsigned long long>(t.admitted),
                static_cast<unsigned long long>(t.shed()),
                static_cast<unsigned long long>(t.completed),
                static_cast<unsigned long long>(t.failed),
                static_cast<unsigned long long>(t.promoted), t.latency.percentile(0.5),
                t.latency.percentile(0.95), t.latency.percentile(0.99));
  }
  std::fflush(stdout);
  return dropped == 0 ? 0 : 1;
}
