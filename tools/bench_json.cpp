// Kernel perf harness: runs the event-kernel benchmarks under a wall-clock
// timer and writes BENCH_kernel.json, so the simulator's perf trajectory is
// tracked from PR to PR (see README.md for the format). Unlike the
// google-benchmark micro suite this runner is dependency-free, emits
// machine-readable output, and has a --smoke mode cheap enough for CI.
//
// Usage: bench_json [--out FILE] [--repeats N] [--smoke]
//                   [--transport | --reconfig | --faults | --farm | --media
//                    | --modes | --shards | --serve]

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "decode_pin.hpp"
#include "eclipse/app/configurator.hpp"
#include "eclipse/app/decode_app.hpp"
#include "eclipse/eclipse.hpp"
#include "eclipse/media/kernels.hpp"
#include "eclipse/coproc/vld.hpp"
#include "eclipse/media/vlc.hpp"
#include "eclipse/serve/client.hpp"
#include "eclipse/serve/jobspec.hpp"
#include "eclipse/serve/server.hpp"
#include "eclipse/sim/prng.hpp"
#include "eclipse/sim/sim_event.hpp"

using namespace eclipse;
using sim::Cycle;

namespace {

struct Result {
  std::string name;
  std::uint64_t events = 0;      // kernel events dispatched per run
  std::uint64_t sim_cycles = 0;  // simulated cycles per run (0 if n/a)
  double wall_s = 0;             // best wall time over repeats
  int repeats = 0;
};

double seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Runs `fn` (which returns {events, sim_cycles}) `repeats` times and keeps
/// the fastest wall time — the standard minimum-of-N noise filter.
template <typename Fn>
Result measure(std::string name, int repeats, Fn&& fn) {
  Result r;
  r.name = std::move(name);
  r.repeats = repeats;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto [events, cycles] = fn();
    const double dt = seconds(t0);
    if (i == 0 || dt < r.wall_s) r.wall_s = dt;
    r.events = events;
    r.sim_cycles = cycles;
  }
  return r;
}

sim::Task<void> storm(sim::Simulator& sim, Cycle stride, int hops) {
  for (int i = 0; i < hops; ++i) co_await sim.delay(stride);
}

sim::Task<void> fanoutWaiter(sim::SimEvent& ev, int rounds, std::uint64_t& wakes) {
  for (int i = 0; i < rounds; ++i) {
    co_await ev.wait();
    ++wakes;
  }
}

sim::Task<void> fanoutNotifier(sim::Simulator& sim, sim::SimEvent& ev, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.delay(1);
    ev.notifyAll();
  }
}

sim::Task<void> semWorker(sim::Simulator& sim, sim::Semaphore& sem, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sem.acquire();
    sim::SemaphoreGuard guard(sem);
    co_await sim.delay(2);
  }
}

std::pair<std::uint64_t, std::uint64_t> runPureDelayStorm(int hops) {
  sim::Simulator sim;
  for (int p = 0; p < 64; ++p) {
    sim.spawn(storm(sim, static_cast<Cycle>(p % 13) + 1, hops), "storm");
  }
  const Cycle end = sim.run();
  return {sim.eventsDispatched(), end};
}

std::pair<std::uint64_t, std::uint64_t> runLongDelayStorm(int hops) {
  sim::Simulator sim;
  for (int p = 0; p < 64; ++p) {
    sim.spawn(storm(sim, static_cast<Cycle>(4096 + 977 * p), hops), "far");
  }
  const Cycle end = sim.run();
  return {sim.eventsDispatched(), end};
}

std::pair<std::uint64_t, std::uint64_t> runMixedFanout(int rounds) {
  sim::Simulator sim;
  sim::SimEvent ev(sim);
  sim::Semaphore sem(sim, 4);
  std::uint64_t wakes = 0;
  for (int p = 0; p < 32; ++p) sim.spawn(fanoutWaiter(ev, rounds, wakes), "waiter");
  sim.spawn(fanoutNotifier(sim, ev, rounds), "notifier");
  for (int p = 0; p < 16; ++p) sim.spawn(semWorker(sim, sem, rounds), "sem");
  const Cycle end = sim.run();
  return {sim.eventsDispatched(), end};
}

std::pair<std::uint64_t, std::uint64_t> runCallbackDispatch(int count) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  for (int i = 0; i < count; ++i) {
    sim.schedule(static_cast<Cycle>(i % 97), [&sink] { ++sink; });
  }
  const Cycle end = sim.run();
  if (sink != static_cast<std::uint64_t>(count)) std::fprintf(stderr, "warning: lost callbacks\n");
  return {sim.eventsDispatched(), end};
}

/// Transport scenario: the standard timed decode, reported as wall-clock
/// plus the simulated bytes that crossed coprocessor ports (the sum of
/// every shell stream row's bytes_transferred counter). bytes/host-second
/// is the figure of merit for the zero-copy transport path: the simulated
/// traffic is pinned by the timing model, so only host efficiency moves it.
struct TransportResult {
  std::uint64_t events = 0;
  std::uint64_t sim_cycles = 0;
  std::uint64_t bytes_moved = 0;  // simulated port traffic, both directions
  double wall_s = 0;
  int repeats = 0;
};

TransportResult runTransport(bool smoke, int repeats) {
  const auto w = eclipse::bench::makeWorkload(96, 80, smoke ? 2 : 5);
  TransportResult r;
  r.repeats = repeats;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, w.bitstream);
    const Cycle cycles = inst.run();
    const double dt = seconds(t0);
    if (!dec.done()) std::fprintf(stderr, "warning: decode incomplete\n");
    std::uint64_t bytes = 0;
    for (const auto& sh : inst.shells()) {
      const auto& table = sh->streams();
      for (std::uint32_t row = 0; row < table.capacity(); ++row) {
        if (table.row(row).valid) bytes += table.row(row).bytes_transferred;
      }
    }
    if (i == 0 || dt < r.wall_s) r.wall_s = dt;
    r.events = inst.simulator().eventsDispatched();
    r.sim_cycles = cycles;
    r.bytes_moved = bytes;  // deterministic: identical every repeat
  }
  return r;
}

void emitTransport(std::FILE* f, const TransportResult& r) {
  const double bps = r.wall_s > 0 ? static_cast<double>(r.bytes_moved) / r.wall_s : 0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-transport-v1\",\n");
  std::fprintf(f, "  \"scenario\": \"timed_decode\",\n");
  std::fprintf(f, "  \"events\": %llu,\n", static_cast<unsigned long long>(r.events));
  std::fprintf(f, "  \"sim_cycles\": %llu,\n", static_cast<unsigned long long>(r.sim_cycles));
  std::fprintf(f, "  \"bytes_moved\": %llu,\n", static_cast<unsigned long long>(r.bytes_moved));
  std::fprintf(f, "  \"wall_s\": %.6f,\n", r.wall_s);
  std::fprintf(f, "  \"bytes_per_host_sec\": %.0f,\n", bps);
  std::fprintf(f, "  \"repeats\": %d\n", r.repeats);
  std::fprintf(f, "}\n");
}

/// Reconfiguration scenario: how fast the control plane can (re)wire the
/// subsystem. One instance stays live while a decode-shaped graph (the four
/// hardware tasks and their internal streams, scheduler-disabled, no sink
/// shell so the shell set stays fixed) is configured and torn down over and
/// over through the PI-bus. Wall time is the host cost of a mode change;
/// the MMIO counts are the simulated cost a real CPU would pay in register
/// traffic. SRAM free bytes must return to the starting value every cycle —
/// a leak in the allocator free-list fails the run.
struct ReconfigResult {
  int cycles = 0;           // launch/teardown round trips measured
  std::size_t tasks = 0;    // graph size, for context
  std::size_t streams = 0;
  double configure_s = 0;   // best wall time of one Configurator::apply
  double teardown_s = 0;    // best wall time of one AppHandle::teardown
  std::uint64_t mmio_writes_configure = 0;  // PI-bus writes per apply
  std::uint64_t mmio_reads_configure = 0;   // PI-bus reads per apply (row scans)
  std::uint64_t mmio_writes_teardown = 0;
};

app::GraphSpec reconfigSpec() {
  const app::DecodeAppConfig cfg;
  app::GraphSpec g("reconfig-probe");
  g.task({.name = "vld",
          .shell = "vld",
          .budget_cycles = cfg.budget_cycles,
          .enabled = false,
          .source = true,
          .software = {}})
      .task({.name = "rlsq",
             .shell = "rlsq",
             .budget_cycles = cfg.budget_cycles,
             .enabled = false,
             .software = {}})
      .task({.name = "idct",
             .shell = "dct",
             .budget_cycles = cfg.budget_cycles,
             .enabled = false,
             .software = {}})
      .task({.name = "mc",
             .shell = "mc",
             .budget_cycles = cfg.budget_cycles,
             .enabled = false,
             .software = {}});
  g.stream("coef", "vld", coproc::VldCoproc::kOutCoef, "rlsq", coproc::RlsqCoproc::kIn,
           cfg.coef_buffer)
      .stream("hdr", "vld", coproc::VldCoproc::kOutHdr, "mc", coproc::McCoproc::kInHdr,
              cfg.hdr_buffer)
      .stream("blocks", "rlsq", coproc::RlsqCoproc::kOut, "idct", coproc::DctCoproc::kIn,
              cfg.blocks_buffer)
      .stream("res", "idct", coproc::DctCoproc::kOut, "mc", coproc::McCoproc::kInRes,
              cfg.res_buffer);
  return g;
}

ReconfigResult runReconfig(bool smoke) {
  const int cycles = smoke ? 20 : 200;
  const app::GraphSpec spec = reconfigSpec();

  app::EclipseInstance inst;
  mem::PiBus& bus = inst.piBus();
  const std::size_t sram_free_initial = inst.sramBytesFree();

  ReconfigResult r;
  r.cycles = cycles;
  r.tasks = spec.tasks().size();
  r.streams = spec.streams().size();
  for (int i = 0; i < cycles; ++i) {
    const std::uint64_t w0 = bus.writeCount();
    const std::uint64_t rd0 = bus.readCount();
    const auto t0 = std::chrono::steady_clock::now();
    app::Configurator configurator(inst);
    app::AppHandle h = configurator.apply(spec);
    const double dt_cfg = seconds(t0);
    const std::uint64_t w1 = bus.writeCount();
    const std::uint64_t rd1 = bus.readCount();

    const auto t1 = std::chrono::steady_clock::now();
    h.teardown();
    const double dt_td = seconds(t1);

    if (i == 0 || dt_cfg < r.configure_s) r.configure_s = dt_cfg;
    if (i == 0 || dt_td < r.teardown_s) r.teardown_s = dt_td;
    r.mmio_writes_configure = w1 - w0;  // deterministic: identical every cycle
    r.mmio_reads_configure = rd1 - rd0;
    r.mmio_writes_teardown = bus.writeCount() - w1;

    if (inst.sramBytesFree() != sram_free_initial) {
      std::fprintf(stderr, "bench_json: SRAM leak after teardown cycle %d (%zu != %zu)\n", i,
                   inst.sramBytesFree(), sram_free_initial);
      std::exit(1);
    }
  }
  return r;
}

void emitReconfig(std::FILE* f, const ReconfigResult& r) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-reconfig-v1\",\n");
  std::fprintf(f, "  \"scenario\": \"decode_shaped_launch_teardown\",\n");
  std::fprintf(f, "  \"graph_tasks\": %zu,\n", r.tasks);
  std::fprintf(f, "  \"graph_streams\": %zu,\n", r.streams);
  std::fprintf(f, "  \"cycles\": %d,\n", r.cycles);
  std::fprintf(f, "  \"configure_wall_us\": %.3f,\n", r.configure_s * 1e6);
  std::fprintf(f, "  \"teardown_wall_us\": %.3f,\n", r.teardown_s * 1e6);
  std::fprintf(f, "  \"mmio_writes_per_configure\": %llu,\n",
               static_cast<unsigned long long>(r.mmio_writes_configure));
  std::fprintf(f, "  \"mmio_reads_per_configure\": %llu,\n",
               static_cast<unsigned long long>(r.mmio_reads_configure));
  std::fprintf(f, "  \"mmio_writes_per_teardown\": %llu\n",
               static_cast<unsigned long long>(r.mmio_writes_teardown));
  std::fprintf(f, "}\n");
}

/// Fault scenario: the robustness machinery's cost and detection latency.
/// Three guarantees are *checked*, not just reported: a null injector, an
/// armed-but-empty injector and an armed watchdog must all leave the
/// no-fault decode cycle count bit-identical. Then one run per fault class
/// measures cycles from injection to fault/stall latch (detect latency)
/// and — where a recovery policy exists — to clip completion.
struct FaultClassResult {
  std::string name;
  std::uint64_t inject_cycle = 0;  ///< cycle the fault fired
  std::uint64_t detect_cycle = 0;  ///< cycle the fault/stall register latched
  std::uint64_t end_cycle = 0;     ///< cycle the run stopped
  std::string outcome;             ///< recovered / starved / deadlocked / ...
  std::uint64_t frames_dropped = 0;
};

struct FaultsResult {
  std::uint64_t baseline_cycles = 0, baseline_events = 0;
  std::uint64_t disarmed_cycles = 0, disarmed_events = 0;
  std::uint64_t watchdog_cycles = 0, watchdog_events = 0;
  double baseline_wall_s = 0, watchdog_wall_s = 0;
  std::vector<FaultClassResult> classes;
};

FaultsResult runFaults(bool smoke) {
  const auto w = eclipse::bench::makeWorkload(96, 80, smoke ? 2 : 5);
  FaultsResult r;

  // Baseline: no injector at all.
  {
    const auto t0 = std::chrono::steady_clock::now();
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, w.bitstream);
    r.baseline_cycles = inst.run();
    r.baseline_wall_s = seconds(t0);
    r.baseline_events = inst.simulator().eventsDispatched();
    if (!dec.done()) std::fprintf(stderr, "warning: baseline decode incomplete\n");
  }

  // Armed injector, empty plan: the branch-on-null becomes a real query on
  // every hook, but nothing may change in simulated time or event count.
  {
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, w.bitstream);
    inst.armFaults(sim::FaultPlan{});
    r.disarmed_cycles = inst.run();
    r.disarmed_events = inst.simulator().eventsDispatched();
  }
  if (r.disarmed_cycles != r.baseline_cycles || r.disarmed_events != r.baseline_events) {
    std::fprintf(stderr, "bench_json: empty fault plan perturbed the decode (%llu/%llu vs %llu/%llu)\n",
                 static_cast<unsigned long long>(r.disarmed_cycles),
                 static_cast<unsigned long long>(r.disarmed_events),
                 static_cast<unsigned long long>(r.baseline_cycles),
                 static_cast<unsigned long long>(r.baseline_events));
    std::exit(1);
  }

  // Watchdog armed, generous timeout, no faults: the scan process adds
  // events but must not move a single cycle of the decode itself.
  {
    const auto t0 = std::chrono::steady_clock::now();
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, w.bitstream);
    inst.armWatchdogs(/*timeout=*/1'000'000, /*period=*/256);
    r.watchdog_cycles = inst.run();
    r.watchdog_wall_s = seconds(t0);
    r.watchdog_events = inst.simulator().eventsDispatched();
    const app::AppHealth h = dec.handle().health();
    if (!h.faults.empty() || !h.stalls.empty()) {
      std::fprintf(stderr, "bench_json: watchdog false positive on a clean decode\n");
      std::exit(1);
    }
  }
  if (r.watchdog_cycles != r.baseline_cycles) {
    std::fprintf(stderr, "bench_json: armed watchdog changed the decode end cycle (%llu vs %llu)\n",
                 static_cast<unsigned long long>(r.watchdog_cycles),
                 static_cast<unsigned long long>(r.baseline_cycles));
    std::exit(1);
  }

  // Class 1: payload corruption with the decode recovery policy enabled —
  // detect at the downstream parse error, recover to clip completion.
  {
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, w.bitstream);
    std::uint64_t detect = 0;
    dec.handle().onFault([&detect](const app::TaskFault& f) {
      if (detect == 0) detect = f.cycle;
    });
    dec.enableRecovery();
    sim::FaultPlan plan;
    sim::FaultSpec f;
    f.kind = sim::FaultKind::CorruptPayload;
    f.shell = inst.vldShell().id();
    f.task = dec.vldTask();
    f.port = coproc::VldCoproc::kOutCoef;
    // Corrupt every coefficient packet inside a bounded window: a single
    // flipped packet can decode to harmless garbage, but a saturated window
    // guarantees a parse fault, and the clean traffic afterwards lets the
    // recovery policy finish the clip.
    f.at_cycle = r.baseline_cycles / 4;
    f.until_cycle = r.baseline_cycles / 2;
    f.count = 0;
    f.xor_mask = 0xff;
    plan.faults.push_back(f);
    inst.armFaults(plan);
    const Cycle end = inst.run(r.baseline_cycles * 8);
    FaultClassResult c;
    c.name = "corrupt-payload";
    c.inject_cycle = inst.faults().triggers().empty() ? 0 : inst.faults().triggers()[0].cycle;
    c.detect_cycle = detect;
    c.end_cycle = end;
    c.outcome = dec.done() ? (detect != 0 ? "recovered" : "completed-harmless")
                           : app::quiescenceName(inst.classifyQuiescence());
    c.frames_dropped = dec.framesDropped();
    r.classes.push_back(c);
  }

  // Class 2: injected task hang, detected by the watchdog's step-overrun
  // check and latched as a Hang fault.
  {
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, w.bitstream);
    sim::FaultPlan plan;
    sim::FaultSpec f;
    f.kind = sim::FaultKind::TaskHang;
    f.shell = inst.rlsqShell().id();
    f.task = dec.rlsqTask();
    f.at_cycle = r.baseline_cycles / 4;
    f.delay_cycles = r.baseline_cycles * 4;
    plan.faults.push_back(f);
    inst.armFaults(plan);
    inst.armWatchdogs(/*timeout=*/20'000, /*period=*/256);
    const Cycle end = inst.run(r.baseline_cycles * 2);
    FaultClassResult c;
    c.name = "task-hang";
    c.inject_cycle = inst.faults().triggers().empty() ? 0 : inst.faults().triggers()[0].cycle;
    const app::AppHealth h = dec.handle().health();
    c.detect_cycle = h.faults.empty() ? 0 : h.faults[0].cycle;
    c.end_cycle = end;
    c.outcome = h.faults.empty() ? "undetected" : "hang-latched";
    r.classes.push_back(c);
  }

  // Class 3: lost putspace messages — the space accounting diverges, the
  // graph wedges, and the watchdog latches stream stalls; the blocked-on
  // walk classifies the quiescence.
  {
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, w.bitstream);
    sim::FaultPlan plan;
    sim::FaultSpec f;
    f.kind = sim::FaultKind::DropPutspace;
    f.shell = inst.rlsqShell().id();
    f.at_cycle = r.baseline_cycles / 4;
    f.count = 0;  // every message from this shell, forever
    plan.faults.push_back(f);
    inst.armFaults(plan);
    inst.armWatchdogs(/*timeout=*/20'000, /*period=*/256);
    const Cycle end = inst.run(r.baseline_cycles * 2);
    FaultClassResult c;
    c.name = "drop-putspace";
    c.inject_cycle = inst.faults().triggers().empty() ? 0 : inst.faults().triggers()[0].cycle;
    const app::AppHealth h = dec.handle().health();
    c.detect_cycle = h.stalls.empty() ? 0 : h.stalls[0].cycle;
    c.end_cycle = end;
    c.outcome = dec.done() ? "completed" : app::quiescenceName(inst.classifyQuiescence());
    r.classes.push_back(c);
  }

  return r;
}

void emitFaults(std::FILE* f, const FaultsResult& r) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-faults-v1\",\n");
  std::fprintf(f, "  \"baseline\": {\"sim_cycles\": %llu, \"events\": %llu, \"wall_s\": %.6f},\n",
               static_cast<unsigned long long>(r.baseline_cycles),
               static_cast<unsigned long long>(r.baseline_events), r.baseline_wall_s);
  std::fprintf(f,
               "  \"injector_disarmed\": {\"sim_cycles\": %llu, \"events\": %llu, "
               "\"overhead_cycles\": %llu, \"overhead_events\": %llu},\n",
               static_cast<unsigned long long>(r.disarmed_cycles),
               static_cast<unsigned long long>(r.disarmed_events),
               static_cast<unsigned long long>(r.disarmed_cycles - r.baseline_cycles),
               static_cast<unsigned long long>(r.disarmed_events - r.baseline_events));
  std::fprintf(f,
               "  \"watchdog_armed\": {\"sim_cycles\": %llu, \"events\": %llu, \"wall_s\": %.6f, "
               "\"overhead_cycles\": %llu, \"extra_events\": %llu},\n",
               static_cast<unsigned long long>(r.watchdog_cycles),
               static_cast<unsigned long long>(r.watchdog_events), r.watchdog_wall_s,
               static_cast<unsigned long long>(r.watchdog_cycles - r.baseline_cycles),
               static_cast<unsigned long long>(r.watchdog_events - r.baseline_events));
  std::fprintf(f, "  \"classes\": [\n");
  for (std::size_t i = 0; i < r.classes.size(); ++i) {
    const FaultClassResult& c = r.classes[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"inject_cycle\": %llu, \"detect_cycle\": %llu, "
                 "\"cycles_to_detect\": %llu, \"end_cycle\": %llu, \"outcome\": \"%s\", "
                 "\"frames_dropped\": %llu}%s\n",
                 c.name.c_str(), static_cast<unsigned long long>(c.inject_cycle),
                 static_cast<unsigned long long>(c.detect_cycle),
                 static_cast<unsigned long long>(
                     c.detect_cycle > c.inject_cycle ? c.detect_cycle - c.inject_cycle : 0),
                 static_cast<unsigned long long>(c.end_cycle), c.outcome.c_str(),
                 static_cast<unsigned long long>(c.frames_dropped),
                 i + 1 < r.classes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

/// Farm scenario: batch-serve a mixed job list at increasing worker
/// counts. Two figures of merit: throughput scaling (jobs/s and latency
/// percentiles per worker count, with the reuse-vs-cold configure cost
/// split) and the determinism contract — every job's simulated fields must
/// be bit-identical across worker counts, enforced in-binary (exit 1).
struct FarmSweepPoint {
  int workers = 0;
  double wall_s = 0;
  double jobs_per_s = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  std::uint64_t completed = 0, failed = 0;
  std::uint64_t reused = 0, cold_builds = 0;
  double build_ms = 0;    // total cold-configure cost across workers
  double recycle_ms = 0;  // total recycle cost across workers
};

struct FarmBenchResult {
  int jobs = 0;
  int host_cores = 0;  ///< hardware_concurrency of the measuring host
  bool deterministic = true;
  std::vector<FarmSweepPoint> points;
};

std::vector<farm::Job> farmBenchJobs(int n) {
  std::vector<farm::Job> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    farm::Job j;
    j.name = "bench-" + std::to_string(i);
    switch (i % 4) {
      case 0:  // the pinned reference decode
        break;
      case 1:  // decode of a coarser clip (distinct prepared workload)
        j.apps[0].workload.qscale = 20;
        break;
      case 2:  // encode
        j.apps[0].kind = farm::AppKind::Encode;
        break;
      case 3:  // dual-decode mix on a larger SRAM (distinct instance shape)
        j.apps.push_back(farm::AppSpec{});
        j.config.set("sram.size_bytes", std::int64_t{64 * 1024});
        break;
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

/// The simulated fields covered by the determinism contract.
struct FarmSimFields {
  sim::Cycle sim_cycles;
  std::uint64_t sim_events, macroblocks;
  bool bit_exact;
  double psnr_db;
  std::uint64_t faults, stalls;
  bool operator==(const FarmSimFields&) const = default;
};

FarmBenchResult runFarm(bool smoke) {
  FarmBenchResult r;
  r.jobs = smoke ? 24 : 200;
  // Scaling curves only mean something relative to the host: a flat curve
  // on a 1-core container is expected, not a regression (ROADMAP PR-5 note).
  r.host_cores = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> worker_counts = smoke ? std::vector<int>{1, 2, 4}
                                               : std::vector<int>{1, 2, 4, 8};
  // One prepared-workload cache across the sweep: video generation and
  // golden encodes are paid once, so the points measure serving, not setup.
  auto cache = std::make_shared<farm::WorkloadCache>();
  std::vector<FarmSimFields> reference;

  for (int workers : worker_counts) {
    farm::FarmOptions opts;
    opts.workers = workers;
    opts.queue_capacity = static_cast<std::size_t>(r.jobs);
    opts.cache = cache;
    farm::Farm f(opts);

    const auto t0 = std::chrono::steady_clock::now();
    auto futs = f.submitBatch(farmBenchJobs(r.jobs));
    std::vector<FarmSimFields> fields;
    fields.reserve(futs.size());
    for (auto& fut : futs) {
      const farm::JobResult jr = fut.get();
      fields.push_back({jr.sim_cycles, jr.sim_events, jr.macroblocks, jr.bit_exact, jr.psnr_db,
                        jr.faults_latched, jr.stalls_latched});
    }
    const double wall = seconds(t0);

    if (reference.empty()) {
      reference = fields;
    } else {
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (!(fields[i] == reference[i])) {
          std::fprintf(stderr,
                       "FARM DETERMINISM VIOLATION: job %zu at %d workers "
                       "(cycles %llu vs %llu, events %llu vs %llu)\n",
                       i, workers, static_cast<unsigned long long>(fields[i].sim_cycles),
                       static_cast<unsigned long long>(reference[i].sim_cycles),
                       static_cast<unsigned long long>(fields[i].sim_events),
                       static_cast<unsigned long long>(reference[i].sim_events));
          r.deterministic = false;
        }
      }
    }

    const farm::FarmMetrics m = f.metrics();
    FarmSweepPoint p;
    p.workers = workers;
    p.wall_s = wall;
    p.jobs_per_s = wall > 0 ? static_cast<double>(r.jobs) / wall : 0;
    p.p50_ms = m.p50_ms;
    p.p95_ms = m.p95_ms;
    p.p99_ms = m.p99_ms;
    p.completed = m.completed;
    p.failed = m.failed;
    p.reused = m.reused();
    p.cold_builds = m.coldBuilds();
    for (const farm::WorkerStats& w : m.workers) {
      p.build_ms += w.build_ms;
      p.recycle_ms += w.recycle_ms;
    }
    r.points.push_back(p);
  }
  return r;
}

void emitFarm(std::FILE* f, const FarmBenchResult& r) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-farm-v1\",\n");
  std::fprintf(f, "  \"jobs\": %d,\n", r.jobs);
  std::fprintf(f, "  \"host_cores\": %d,\n", r.host_cores);
  std::fprintf(f, "  \"deterministic\": %s,\n", r.deterministic ? "true" : "false");
  const double base = r.points.empty() ? 0 : r.points.front().jobs_per_s;
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const FarmSweepPoint& p = r.points[i];
    std::fprintf(f,
                 "    {\"workers\": %d, \"worker_core_ratio\": %.2f, \"wall_s\": %.3f, "
                 "\"jobs_per_s\": %.2f, "
                 "\"speedup\": %.2f, \"p50_ms\": %.2f, \"p95_ms\": %.2f, \"p99_ms\": %.2f, "
                 "\"completed\": %llu, \"failed\": %llu, \"reused\": %llu, "
                 "\"cold_builds\": %llu, \"build_ms\": %.1f, \"recycle_ms\": %.1f}%s\n",
                 p.workers,
                 r.host_cores > 0 ? static_cast<double>(p.workers) / r.host_cores : 0.0,
                 p.wall_s, p.jobs_per_s, base > 0 ? p.jobs_per_s / base : 0, p.p50_ms,
                 p.p95_ms, p.p99_ms, static_cast<unsigned long long>(p.completed),
                 static_cast<unsigned long long>(p.failed),
                 static_cast<unsigned long long>(p.reused),
                 static_cast<unsigned long long>(p.cold_builds), p.build_ms, p.recycle_ms,
                 i + 1 < r.points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

/// Serve scenario (--serve): the serving-tier gate (DESIGN.md §15). Runs an
/// in-process Server (ECL1 binary protocol over loopback) with real Clients
/// and checks the four serving invariants as hard gates (exit 1):
///   * identity_ok  — every result served over the wire is bit-identical,
///                    field for field, to a direct Farm::submitWait oracle
///                    of the same jobspec (same WorkloadCache, 1 worker):
///                    the serving tier adds framing and QoS, never state;
///   * pin_ok       — the served reference decode lands exactly on the
///                    decode pin, and no serve job ever enters the sliced
///                    heartbeat path (supervisedJobs() == 0): serving an
///                    unarmed batch costs nothing;
///   * fairshare_ok — a misbehaving tenant (tiny quota, shed policy,
///                    flooding back-to-back) gets shed while a compliant
///                    tenant's every job still completes — no starvation.
///                    Counters only, no wall-clock asserts (1-core CI);
///   * zero_loss_ok — a rolling drain issued with results still in flight
///                    delivers every accepted result (resultsDropped()==0)
///                    and rejects late submissions with Draining.
/// Plus an open-loop Poisson load sweep (per-tenant latency / queue-age
/// percentiles and shed counts per arrival rate) for the JSON record.
struct ServeTenantPoint {
  std::string tenant;
  std::uint64_t admitted = 0, shed = 0, completed = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0, queue_p95_ms = 0;
};

struct ServeSweepPoint {
  double rate_jobs_s = 0;
  int jobs = 0;
  double wall_s = 0, jobs_per_s = 0;
  std::vector<ServeTenantPoint> tenants;
};

struct ServeBenchResult {
  bool pin_ok = false, identity_ok = false, fairshare_ok = false, zero_loss_ok = false;
  int identity_jobs = 0;
  std::uint64_t supervised_jobs = 0;
  std::uint64_t results_dropped = 0;
  std::uint64_t mallory_admitted = 0, mallory_shed = 0;
  std::uint64_t alice_jobs = 0, alice_completed = 0;
  std::vector<ServeSweepPoint> sweep;

  [[nodiscard]] bool gatesOk() const {
    return pin_ok && identity_ok && fairshare_ok && zero_loss_ok;
  }
};

FarmSimFields wireSimFields(const serve::WireResult& r) {
  return {static_cast<sim::Cycle>(r.sim_cycles), r.sim_events, r.macroblocks,
          r.bit_exact,                           r.psnr_db,    r.faults_latched,
          r.stalls_latched};
}

ServeBenchResult runServe(bool smoke) {
  ServeBenchResult r;
  // One prepared-workload cache shared by every farm below (served and
  // oracle): identical prepared state, and setup is paid once.
  auto cache = std::make_shared<farm::WorkloadCache>();

  // The jobspec mix: the pinned reference decode plus small variants that
  // cover qscale, encode, multi-app and config-override parsing.
  const std::string tiny = " width=32 height=32 frames=1";
  const std::vector<std::string> specs = {
      "pin",  // no fields: exactly the pinned reference decode
      "small" + tiny,
      "coarse" + tiny + " qscale=20",
      "enc kind=encode" + tiny,
      "mix kind=decode+decode" + tiny + " config:sram.size_bytes=65536 priority=high",
  };

  // --- oracle: direct submitWait, no serving tier ----------------------
  std::vector<FarmSimFields> oracle(specs.size());
  bool oracle_ok = true;
  {
    farm::FarmOptions fo;
    fo.workers = 1;
    fo.queue_capacity = 8;
    fo.cache = cache;
    farm::Farm f(fo);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      serve::ParsedSpec ps;
      std::string err;
      if (!serve::parseJobSpec(specs[i], ps, err)) {
        std::fprintf(stderr, "SERVE: oracle spec %zu unparseable: %s\n", i, err.c_str());
        oracle_ok = false;
        continue;
      }
      const farm::JobResult jr = f.submitWait(std::move(ps.job)).get();
      oracle[i] = {jr.sim_cycles,  jr.sim_events,    jr.macroblocks, jr.bit_exact,
                   jr.psnr_db,     jr.faults_latched, jr.stalls_latched};
      if (jr.status != farm::JobStatus::Completed) {
        std::fprintf(stderr, "SERVE: oracle job %zu not Completed\n", i);
        oracle_ok = false;
      }
    }
  }

  // --- gate: wire identity + unarmed pin -------------------------------
  try {
    serve::ServeOptions so;
    so.farm.workers = 2;
    so.farm.queue_capacity = 32;
    so.farm.cache = cache;
    serve::Server server(so);
    server.start();
    serve::Client alice, bob;
    alice.connect("127.0.0.1", server.port(), "alice");
    bob.connect("127.0.0.1", server.port(), "bob");

    // Round-robin the spec mix over two tenant connections, open loop.
    const int reps = smoke ? 2 : 6;
    std::map<std::uint64_t, std::size_t> sent_alice, sent_bob;
    bool all_accepted = true;
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const bool use_alice = (rep + static_cast<int>(i)) % 2 == 0;
        serve::Client& c = use_alice ? alice : bob;
        const auto s = c.submit(specs[i]);
        if (!s.accepted) {
          std::fprintf(stderr, "SERVE: identity submit rejected: %s\n",
                       serve::rejectReasonName(s.reason));
          all_accepted = false;
          continue;
        }
        (use_alice ? sent_alice : sent_bob)[s.req_id] = i;
      }
    }

    bool identical = oracle_ok && all_accepted;
    auto check = [&](serve::Client& c, const std::map<std::uint64_t, std::size_t>& sent) {
      for (const serve::WireResult& wr : c.awaitAll()) {
        ++r.identity_jobs;
        const auto it = sent.find(wr.req_id);
        if (it == sent.end() || wr.status != farm::JobStatus::Completed ||
            !(wireSimFields(wr) == oracle[it->second])) {
          std::fprintf(stderr,
                       "SERVE IDENTITY VIOLATION: req %llu spec %zu "
                       "(cycles %llu vs oracle %llu, events %llu vs %llu)\n",
                       static_cast<unsigned long long>(wr.req_id),
                       it == sent.end() ? static_cast<std::size_t>(-1) : it->second,
                       static_cast<unsigned long long>(wr.sim_cycles),
                       it == sent.end()
                           ? 0ULL
                           : static_cast<unsigned long long>(oracle[it->second].sim_cycles),
                       static_cast<unsigned long long>(wr.sim_events),
                       it == sent.end()
                           ? 0ULL
                           : static_cast<unsigned long long>(oracle[it->second].sim_events));
          identical = false;
        }
      }
    };
    check(alice, sent_alice);
    check(bob, sent_bob);
    r.identity_ok = identical && r.identity_jobs == reps * static_cast<int>(specs.size());

    // Zero overhead on the unarmed batch path: the served pin decode is
    // cycle-exact and nothing entered the sliced heartbeat path.
    const farm::FarmMetrics m = server.farm().metrics();
    r.supervised_jobs = m.supervisedJobs();
    r.pin_ok = oracle[0].sim_cycles == pin::kDecodePinCycles &&
               oracle[0].sim_events == pin::kDecodePinEvents &&
               oracle[0].macroblocks == pin::kDecodePinMacroblocks && oracle[0].bit_exact &&
               r.identity_ok && r.supervised_jobs == 0;

    alice.close();
    bob.close();
    server.shutdown();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "SERVE: identity stage failed: %s\n", e.what());
  }

  // --- gate: fair share under a flooding tenant ------------------------
  try {
    serve::ServeOptions so;
    so.farm.workers = 2;
    so.farm.queue_capacity = 8;
    so.farm.cache = cache;
    serve::TenantConfig mallory;
    mallory.name = "mallory";
    mallory.rate = 50.0;  // paced...
    mallory.burst = 4.0;
    mallory.max_inflight = 1;
    mallory.max_pending = 4;
    mallory.weight = 1.0;
    mallory.policy = serve::OverloadPolicy::Shed;  // ...and shed beyond the burst
    serve::TenantConfig alice_cfg;
    alice_cfg.name = "alice";
    alice_cfg.rate = 0.0;  // compliant tenant: unlimited, generous bounds
    alice_cfg.max_inflight = 4;
    alice_cfg.max_pending = 128;
    alice_cfg.weight = 4.0;
    so.tenants = {mallory, alice_cfg};
    serve::Server server(so);
    server.start();
    serve::Client cm, ca;
    cm.connect("127.0.0.1", server.port(), "mallory");
    ca.connect("127.0.0.1", server.port(), "alice");

    // Mallory floods back-to-back; alice submits her modest batch
    // interleaved. No pacing on the client side — the server's QoS is the
    // only thing standing between mallory and the farm.
    const int mallory_jobs = smoke ? 60 : 150;
    const int alice_jobs = smoke ? 10 : 24;
    r.alice_jobs = static_cast<std::uint64_t>(alice_jobs);
    std::uint64_t alice_accepted = 0;
    int sent_alice = 0;
    for (int n = 0; n < mallory_jobs; ++n) {
      const auto s = cm.submit("flood" + tiny + " seed=" + std::to_string(n % 4));
      if (s.accepted) ++r.mallory_admitted;
      else ++r.mallory_shed;
      if (n % (mallory_jobs / alice_jobs + 1) == 0 && sent_alice < alice_jobs) {
        ++sent_alice;
        if (ca.submit("steady" + tiny).accepted) ++alice_accepted;
      }
    }
    while (sent_alice < alice_jobs) {
      ++sent_alice;
      if (ca.submit("steady" + tiny).accepted) ++alice_accepted;
    }

    for (const serve::WireResult& wr : ca.awaitAll()) {
      if (wr.status == farm::JobStatus::Completed) ++r.alice_completed;
    }
    cm.awaitAll();  // mallory's admitted jobs still finish (shed, not starved)
    r.fairshare_ok = alice_accepted == r.alice_jobs &&
                     r.alice_completed == r.alice_jobs && r.mallory_shed > 0;
    if (!r.fairshare_ok) {
      std::fprintf(stderr,
                   "SERVE FAIRSHARE VIOLATION: alice accepted=%llu completed=%llu of %llu, "
                   "mallory admitted=%llu shed=%llu\n",
                   static_cast<unsigned long long>(alice_accepted),
                   static_cast<unsigned long long>(r.alice_completed),
                   static_cast<unsigned long long>(r.alice_jobs),
                   static_cast<unsigned long long>(r.mallory_admitted),
                   static_cast<unsigned long long>(r.mallory_shed));
    }
    cm.close();
    ca.close();
    server.shutdown();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "SERVE: fairshare stage failed: %s\n", e.what());
  }

  // --- gate: rolling drain loses nothing -------------------------------
  try {
    serve::ServeOptions so;
    so.farm.workers = 2;
    so.farm.queue_capacity = 16;
    so.farm.cache = cache;
    serve::Server server(so);
    server.start();
    serve::Client c;
    c.connect("127.0.0.1", server.port(), "drainee");
    const int n = smoke ? 8 : 16;
    std::uint64_t accepted = 0;
    for (int i = 0; i < n; ++i) {
      if (c.submit("drain" + tiny + " seed=" + std::to_string(i % 4)).accepted) ++accepted;
    }
    server.beginDrain();  // results still in flight
    const auto late = c.submit("late" + tiny);
    const bool late_rejected = !late.accepted && late.reason == serve::RejectReason::Draining;
    std::uint64_t results = 0;
    for (const serve::WireResult& wr : c.awaitAll()) {
      (void)wr;
      ++results;
    }
    server.shutdown();
    r.results_dropped = server.resultsDropped();
    r.zero_loss_ok = late_rejected && accepted == static_cast<std::uint64_t>(n) &&
                     results == accepted && r.results_dropped == 0;
    if (!r.zero_loss_ok) {
      std::fprintf(stderr,
                   "SERVE DRAIN VIOLATION: accepted=%llu results=%llu dropped=%llu "
                   "late_rejected=%d\n",
                   static_cast<unsigned long long>(accepted),
                   static_cast<unsigned long long>(results),
                   static_cast<unsigned long long>(r.results_dropped),
                   late_rejected ? 1 : 0);
    }
    c.close();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "SERVE: drain stage failed: %s\n", e.what());
  }

  // --- open-loop Poisson load sweep (telemetry, not a gate) ------------
  const std::vector<double> rates = smoke ? std::vector<double>{80.0}
                                          : std::vector<double>{40.0, 80.0, 160.0};
  // Seeded arrival jitter, no wall-clock entropy (the serve_client idiom).
  auto splitmix = [](std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  for (const double rate : rates) {
    try {
      serve::ServeOptions so;
      so.farm.workers = 2;
      so.farm.queue_capacity = 32;
      so.farm.cache = cache;
      serve::Server server(so);
      server.start();
      const std::vector<std::string> tenants = {"alice", "bob", "carol"};
      std::vector<serve::Client> clients(tenants.size());
      for (std::size_t i = 0; i < tenants.size(); ++i) {
        clients[i].connect("127.0.0.1", server.port(), tenants[i]);
      }
      ServeSweepPoint p;
      p.rate_jobs_s = rate;
      p.jobs = smoke ? 18 : 60;
      std::uint64_t jitter = 42;
      const auto t0 = std::chrono::steady_clock::now();
      for (int n = 0; n < p.jobs; ++n) {
        clients[static_cast<std::size_t>(n) % clients.size()].submit(
            "load" + tiny + " seed=" + std::to_string(n % 4));
        if (n + 1 < p.jobs) {
          const double u =
              (static_cast<double>(splitmix(jitter) >> 11) + 1.0) / 9007199254740993.0;
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(-std::log(u) / rate * 1000.0));
        }
      }
      for (auto& c : clients) c.awaitAll();
      p.wall_s = seconds(t0);
      p.jobs_per_s = p.wall_s > 0 ? static_cast<double>(p.jobs) / p.wall_s : 0;
      for (const serve::TenantStats& t : server.dispatcher().tenantStats()) {
        ServeTenantPoint tp;
        tp.tenant = t.config.name;
        tp.admitted = t.admitted;
        tp.shed = t.shed();
        tp.completed = t.completed;
        tp.p50_ms = t.latency.percentile(0.5);
        tp.p95_ms = t.latency.percentile(0.95);
        tp.p99_ms = t.latency.percentile(0.99);
        tp.queue_p95_ms = t.queue_age.percentile(0.95);
        p.tenants.push_back(std::move(tp));
      }
      for (auto& c : clients) c.close();
      server.shutdown();
      r.sweep.push_back(std::move(p));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "SERVE: sweep at %.0f jobs/s failed: %s\n", rate, e.what());
    }
  }
  return r;
}

void emitServe(std::FILE* f, const ServeBenchResult& r) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-serve-v1\",\n");
  std::fprintf(f, "  \"pin_ok\": %s,\n", r.pin_ok ? "true" : "false");
  std::fprintf(f, "  \"identity_ok\": %s,\n", r.identity_ok ? "true" : "false");
  std::fprintf(f, "  \"fairshare_ok\": %s,\n", r.fairshare_ok ? "true" : "false");
  std::fprintf(f, "  \"zero_loss_ok\": %s,\n", r.zero_loss_ok ? "true" : "false");
  std::fprintf(f, "  \"identity_jobs\": %d,\n", r.identity_jobs);
  std::fprintf(f, "  \"supervised_jobs\": %llu,\n",
               static_cast<unsigned long long>(r.supervised_jobs));
  std::fprintf(f, "  \"results_dropped\": %llu,\n",
               static_cast<unsigned long long>(r.results_dropped));
  std::fprintf(f,
               "  \"fairshare\": {\"mallory_admitted\": %llu, \"mallory_shed\": %llu, "
               "\"alice_jobs\": %llu, \"alice_completed\": %llu},\n",
               static_cast<unsigned long long>(r.mallory_admitted),
               static_cast<unsigned long long>(r.mallory_shed),
               static_cast<unsigned long long>(r.alice_jobs),
               static_cast<unsigned long long>(r.alice_completed));
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < r.sweep.size(); ++i) {
    const ServeSweepPoint& p = r.sweep[i];
    std::fprintf(f,
                 "    {\"rate_jobs_s\": %.0f, \"jobs\": %d, \"wall_s\": %.3f, "
                 "\"jobs_per_s\": %.2f, \"tenants\": [\n",
                 p.rate_jobs_s, p.jobs, p.wall_s, p.jobs_per_s);
    for (std::size_t j = 0; j < p.tenants.size(); ++j) {
      const ServeTenantPoint& t = p.tenants[j];
      std::fprintf(f,
                   "      {\"tenant\": \"%s\", \"admitted\": %llu, \"shed\": %llu, "
                   "\"completed\": %llu, \"p50_ms\": %.2f, \"p95_ms\": %.2f, "
                   "\"p99_ms\": %.2f, \"queue_p95_ms\": %.2f}%s\n",
                   t.tenant.c_str(), static_cast<unsigned long long>(t.admitted),
                   static_cast<unsigned long long>(t.shed),
                   static_cast<unsigned long long>(t.completed), t.p50_ms, t.p95_ms, t.p99_ms,
                   t.queue_p95_ms, j + 1 < p.tenants.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < r.sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

/// Chaos scenario (--chaos): the supervision-tier gate (DESIGN.md §14).
/// A seeded storm of adversarial jobs — simulated-cycle deadline misses,
/// PR-4 fault storms (task hangs, payload corruption, dropped putspaces)
/// and injected host-side worker hangs — runs on a multi-worker supervised
/// farm, next to a clean oracle farm and an unarmed control farm. Four
/// hard gates (exit 1):
///   * all_terminal      — every accepted job's future resolves terminally
///                         within the harness deadline, whatever was
///                         injected (no lost promises, no wedged farm);
///   * oracle_identical  — every simulated field of every retried /
///                         supervised run is bit-identical to a clean
///                         first run (pin constants for clean and
///                         hang-survivor jobs, a 1-worker unsupervised
///                         oracle farm for deadline and fault-storm jobs);
///   * attempts_identical / quarantine_exact — failed attempts of a
///                         deterministic failure are bit-identical to the
///                         terminal attempt, and the quarantine ledger
///                         holds exactly the jobs that killed two workers
///                         (zero quarantine leaks);
///   * overhead_ok       — the unarmed control farm never enters the
///                         sliced heartbeat path (supervisedJobs() == 0)
///                         and still lands exactly on the decode pin, so
///                         supervision costs nothing unless armed.
struct ChaosJobRecord {
  std::string name, cls, status, cause;
  int attempts = 1;
  std::uint64_t sim_cycles = 0, sim_events = 0;
  bool ok = true;
};

struct ChaosBenchResult {
  int jobs = 0;
  int workers = 0;
  int host_cores = 0;
  bool all_terminal = true;
  bool oracle_identical = true;
  bool attempts_identical = true;
  bool quarantine_exact = true;
  bool overhead_ok = true;
  std::uint64_t retried = 0, retry_succeeded = 0, worker_lost = 0;
  std::uint64_t workers_replaced = 0, quarantined = 0;
  double armed_wall_s = 0.0;
  int unarmed_jobs = 0;
  double unarmed_jobs_per_s = 0.0;
  std::uint64_t unarmed_supervised_jobs = 0;
  std::vector<ChaosJobRecord> records;

  [[nodiscard]] bool gatesOk() const {
    return all_terminal && oracle_identical && attempts_identical && quarantine_exact &&
           overhead_ok;
  }
};

FarmSimFields chaosFields(const farm::JobResult& r) {
  return {r.sim_cycles, r.sim_events,     r.macroblocks,   r.bit_exact,
          r.psnr_db,    r.faults_latched, r.stalls_latched};
}

bool chaosOnPin(const farm::JobResult& r) {
  return r.sim_cycles == pin::kDecodePinCycles && r.sim_events == pin::kDecodePinEvents &&
         r.macroblocks == pin::kDecodePinMacroblocks && r.bit_exact;
}

/// One adversarial job plus what the gate demands of its terminal result.
struct ChaosCase {
  const char* cls = "clean";
  farm::Job job;
  bool require_completed = false;   ///< terminal status must be Completed
  bool require_failed = false;      ///< terminal status must NOT be Completed
  bool require_retry = false;       ///< attempts >= 2 (survived a worker loss)
  bool require_quarantine = false;  ///< terminal status must be Quarantined
  bool require_pin = false;         ///< simulated fields must equal the pin
  int oracle_idx = -1;              ///< index into the oracle-farm results
};

std::vector<ChaosCase> chaosCases(bool smoke, std::vector<farm::Job>& oracle_jobs) {
  std::vector<ChaosCase> cases;
  auto oracle_for = [&](const farm::Job& j) {
    // The clean-first-run oracle: same Job, retry/supervision/chaos
    // stripped. Those fields are host-side only, so the supervised,
    // retried, sliced run must reproduce these simulated fields exactly.
    farm::Job o = j;
    o.retry = farm::RetryPolicy{};
    o.supervise_ms = 0.0;
    o.chaos = farm::HostHangSpec{};
    oracle_jobs.push_back(std::move(o));
    return static_cast<int>(oracle_jobs.size()) - 1;
  };

  // Class 1: clean supervised pin decodes. Armed (retries + heartbeat
  // slicing) but nothing injected: must stay exactly on the decode pin.
  for (int i = 0; i < (smoke ? 4 : 8); ++i) {
    ChaosCase c;
    c.cls = "clean";
    c.job.name = "clean-" + std::to_string(i);
    c.job.supervise_ms = 2000.0;
    c.job.retry.max_attempts = 2;
    c.require_completed = true;
    c.require_pin = true;
    cases.push_back(std::move(c));
  }

  // Class 2: deadline misses. The pin decode needs 144885 cycles; a
  // 60000-cycle deadline fails at exactly that cycle on every attempt.
  for (int i = 0; i < (smoke ? 2 : 3); ++i) {
    ChaosCase c;
    c.cls = "deadline";
    c.job.name = "deadline-" + std::to_string(i);
    c.job.deadline = 60'000;
    c.job.supervise_ms = 2000.0;
    c.job.retry.max_attempts = 3;
    c.require_failed = true;
    c.oracle_idx = oracle_for(c.job);
    cases.push_back(std::move(c));
  }

  // Class 3: seeded PR-4 fault storms (the test_fuzz idiom): task hangs
  // against per-shell watchdogs, payload corruption at the VLD output and
  // dropped putspace credits. Whatever each storm does — latch a fault,
  // stall, or complete with bit_exact=false — it does it deterministically,
  // so the retried terminal run must equal the clean oracle bit for bit.
  const sim::FaultKind kinds[] = {sim::FaultKind::TaskHang, sim::FaultKind::CorruptPayload,
                                  sim::FaultKind::DropPutspace};
  const int per_kind = smoke ? 1 : 2;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per_kind; ++i) {
      const std::uint64_t seed = 11 + static_cast<std::uint64_t>(i);
      sim::Prng rng(seed * 977 + static_cast<std::uint64_t>(kinds[k]));
      sim::FaultSpec spec;
      spec.kind = kinds[k];
      spec.at_cycle = 2'000 + rng.below(60'000);
      switch (kinds[k]) {
        case sim::FaultKind::TaskHang:
          spec.shell = static_cast<std::uint32_t>(rng.below(4));
          spec.task = 0;
          spec.delay_cycles = 10'000 + rng.below(100'000);
          break;
        case sim::FaultKind::CorruptPayload:
          spec.shell = 0;  // VLD
          spec.task = 0;
          spec.port = coproc::VldCoproc::kOutCoef;
          spec.xor_mask = static_cast<std::uint8_t>(1 + rng.below(255));
          break;
        default:  // DropPutspace
          spec.shell = static_cast<std::uint32_t>(rng.below(4));
          spec.count = 3;
          break;
      }
      ChaosCase c;
      c.cls = "storm";
      c.job.name = std::string("storm-") + sim::faultKindName(kinds[k]) + "-" +
                   std::to_string(i);
      c.job.faults.seed = seed;
      c.job.faults.faults.push_back(spec);
      c.job.watchdog_timeout = 20'000;
      c.job.max_cycles = 800'000;
      c.job.supervise_ms = 2000.0;
      c.job.retry.max_attempts = 2;
      c.oracle_idx = oracle_for(c.job);
      cases.push_back(std::move(c));
    }
  }

  // Class 4: a worker hang on the first attempt only. The Supervisor must
  // replace the wedged worker, fail-fast the job (WorkerLost) and the
  // retry must complete on the pin — the hang is host-side noise.
  for (int i = 0; i < (smoke ? 2 : 3); ++i) {
    ChaosCase c;
    c.cls = "hang-once";
    c.job.name = "hang-once-" + std::to_string(i);
    c.job.chaos.hang_ms = 1500.0;
    c.job.chaos.attempts = 1;
    c.job.supervise_ms = 250.0;
    c.job.retry.max_attempts = 3;
    c.require_completed = true;
    c.require_retry = true;
    c.require_pin = true;
    cases.push_back(std::move(c));
  }

  // Class 5: hangs on every attempt. After killing two workers the job
  // must be quarantined — terminal, never re-admitted — with retry budget
  // deliberately left over (quarantine overrides the policy).
  for (int i = 0; i < 2; ++i) {
    ChaosCase c;
    c.cls = "hang-always";
    c.job.name = "hang-always-" + std::to_string(i);
    c.job.chaos.hang_ms = 1500.0;
    c.job.chaos.attempts = 99;
    c.job.supervise_ms = 250.0;
    c.job.retry.max_attempts = 6;
    c.require_quarantine = true;
    cases.push_back(std::move(c));
  }
  return cases;
}

ChaosBenchResult runChaos(bool smoke) {
  ChaosBenchResult r;
  r.workers = 4;
  r.host_cores = static_cast<int>(std::thread::hardware_concurrency());
  auto cache = std::make_shared<farm::WorkloadCache>();

  std::vector<farm::Job> oracle_jobs;
  std::vector<ChaosCase> cases = chaosCases(smoke, oracle_jobs);
  r.jobs = static_cast<int>(cases.size());

  // Clean oracle pass: 1 worker, nothing armed — the reference outcome of
  // every deadline / storm job under the determinism contract.
  std::vector<FarmSimFields> oracle_fields;
  {
    farm::FarmOptions opts;
    opts.workers = 1;
    opts.queue_capacity = oracle_jobs.size() + 1;
    opts.cache = cache;
    farm::Farm oracle(opts);
    auto futs = oracle.submitBatch(std::move(oracle_jobs));
    oracle_fields.reserve(futs.size());
    for (auto& fut : futs) oracle_fields.push_back(chaosFields(fut.get()));
  }

  // The chaos pass: every adversarial class at once on a 4-worker farm.
  std::vector<std::string> expect_quarantine;
  for (const ChaosCase& c : cases) {
    if (c.require_quarantine) expect_quarantine.push_back(c.job.name);
  }
  {
    farm::FarmOptions opts;
    opts.workers = r.workers;
    opts.queue_capacity = cases.size() + 8;
    opts.cache = cache;
    farm::Farm f(opts);

    std::vector<farm::Job> jobs;
    jobs.reserve(cases.size());
    for (const ChaosCase& c : cases) jobs.push_back(c.job);
    const auto t0 = std::chrono::steady_clock::now();
    auto futs = f.submitBatch(std::move(jobs));

    // Terminality gate: bounded waits, not blocking gets — a lost promise
    // or a wedged farm must fail the gate, not hang the bench.
    const auto harness_deadline = t0 + std::chrono::seconds(smoke ? 120 : 300);
    for (std::size_t i = 0; i < futs.size(); ++i) {
      const ChaosCase& c = cases[i];
      ChaosJobRecord rec;
      rec.name = c.job.name;
      rec.cls = c.cls;
      if (futs[i].wait_until(harness_deadline) != std::future_status::ready) {
        r.all_terminal = false;
        rec.status = "UNRESOLVED";
        rec.ok = false;
        r.records.push_back(std::move(rec));
        continue;
      }
      const farm::JobResult jr = futs[i].get();
      rec.status = farm::jobStatusName(jr.status);
      rec.cause = farm::jobErrorName(jr.cause);
      rec.attempts = jr.attempts;
      rec.sim_cycles = jr.sim_cycles;
      rec.sim_events = jr.sim_events;

      bool ok = true;
      if (c.require_completed && jr.status != farm::JobStatus::Completed) ok = false;
      if (c.require_failed && jr.status == farm::JobStatus::Completed) ok = false;
      if (c.require_quarantine && jr.status != farm::JobStatus::Quarantined) ok = false;
      if (c.require_retry && jr.attempts < 2) ok = false;
      if (c.require_pin && !chaosOnPin(jr)) {
        ok = false;
        r.oracle_identical = false;
      }
      if (c.oracle_idx >= 0 &&
          !(chaosFields(jr) == oracle_fields[static_cast<std::size_t>(c.oracle_idx)])) {
        ok = false;
        r.oracle_identical = false;
      }
      // Per-attempt determinism: every prior attempt that actually ran the
      // simulation (i.e. was not a host-side worker loss) must carry the
      // same simulated fields as the terminal attempt of the same
      // deterministic failure.
      if (jr.cause != farm::JobError::WorkerLost &&
          jr.status != farm::JobStatus::Quarantined) {
        for (const farm::AttemptRecord& a : jr.attempts_log) {
          if (a.cause == farm::JobError::WorkerLost) continue;
          if (a.sim_cycles != jr.sim_cycles || a.sim_events != jr.sim_events) {
            std::fprintf(stderr,
                         "CHAOS ATTEMPT DIVERGENCE: %s attempt %d "
                         "(cycles %llu vs %llu, events %llu vs %llu)\n",
                         rec.name.c_str(), a.attempt,
                         static_cast<unsigned long long>(a.sim_cycles),
                         static_cast<unsigned long long>(jr.sim_cycles),
                         static_cast<unsigned long long>(a.sim_events),
                         static_cast<unsigned long long>(jr.sim_events));
            ok = false;
            r.attempts_identical = false;
          }
        }
      }
      rec.ok = ok;
      r.records.push_back(std::move(rec));
    }
    r.armed_wall_s = seconds(t0);

    // Quarantine ledger: exactly the hang-always jobs, each with two
    // worker kills on record, and the counter in agreement — no leaks in
    // either direction.
    const std::vector<farm::QuarantineRecord> ledger = f.quarantined();
    const farm::FarmMetrics m = f.metrics();
    r.retried = m.retried;
    r.retry_succeeded = m.retry_succeeded;
    r.worker_lost = m.worker_lost;
    r.workers_replaced = m.workers_replaced;
    r.quarantined = m.quarantined;
    if (ledger.size() != expect_quarantine.size() || m.quarantined != ledger.size()) {
      r.quarantine_exact = false;
    }
    for (const farm::QuarantineRecord& q : ledger) {
      bool expected = false;
      for (const std::string& name : expect_quarantine) expected |= (name == q.name);
      if (!expected || q.worker_kills < 2) r.quarantine_exact = false;
    }
  }

  // Unarmed control pass: plain pin decodes, default policies. Gate: the
  // sliced heartbeat path never runs (supervisedJobs() == 0) and every
  // result sits exactly on the decode pin — arming is strictly opt-in.
  {
    r.unarmed_jobs = smoke ? 8 : 24;
    farm::FarmOptions opts;
    opts.workers = r.workers;
    opts.queue_capacity = static_cast<std::size_t>(r.unarmed_jobs);
    opts.cache = cache;
    farm::Farm f(opts);
    std::vector<farm::Job> jobs(static_cast<std::size_t>(r.unarmed_jobs));
    for (int i = 0; i < r.unarmed_jobs; ++i) {
      jobs[static_cast<std::size_t>(i)].name = "control-" + std::to_string(i);
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto futs = f.submitBatch(std::move(jobs));
    for (auto& fut : futs) {
      const farm::JobResult jr = fut.get();
      if (jr.status != farm::JobStatus::Completed || !chaosOnPin(jr)) r.overhead_ok = false;
    }
    const double wall = seconds(t0);
    r.unarmed_jobs_per_s = wall > 0 ? r.unarmed_jobs / wall : 0;
    r.unarmed_supervised_jobs = f.metrics().supervisedJobs();
    if (r.unarmed_supervised_jobs != 0) r.overhead_ok = false;
  }
  return r;
}

void emitChaos(std::FILE* f, const ChaosBenchResult& r) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-chaos-v1\",\n");
  std::fprintf(f, "  \"jobs\": %d,\n", r.jobs);
  std::fprintf(f, "  \"workers\": %d,\n", r.workers);
  std::fprintf(f, "  \"host_cores\": %d,\n", r.host_cores);
  std::fprintf(f, "  \"worker_core_ratio\": %.2f,\n",
               r.host_cores > 0 ? static_cast<double>(r.workers) / r.host_cores : 0.0);
  std::fprintf(f,
               "  \"gates\": {\"all_terminal\": %s, \"oracle_identical\": %s, "
               "\"attempts_identical\": %s, \"quarantine_exact\": %s, "
               "\"overhead_ok\": %s},\n",
               r.all_terminal ? "true" : "false", r.oracle_identical ? "true" : "false",
               r.attempts_identical ? "true" : "false", r.quarantine_exact ? "true" : "false",
               r.overhead_ok ? "true" : "false");
  std::fprintf(f,
               "  \"metrics\": {\"retried\": %llu, \"retry_succeeded\": %llu, "
               "\"worker_lost\": %llu, \"workers_replaced\": %llu, "
               "\"quarantined\": %llu},\n",
               static_cast<unsigned long long>(r.retried),
               static_cast<unsigned long long>(r.retry_succeeded),
               static_cast<unsigned long long>(r.worker_lost),
               static_cast<unsigned long long>(r.workers_replaced),
               static_cast<unsigned long long>(r.quarantined));
  std::fprintf(f, "  \"armed_wall_s\": %.3f,\n", r.armed_wall_s);
  std::fprintf(f,
               "  \"unarmed\": {\"jobs\": %d, \"jobs_per_s\": %.2f, "
               "\"supervised_jobs\": %llu},\n",
               r.unarmed_jobs, r.unarmed_jobs_per_s,
               static_cast<unsigned long long>(r.unarmed_supervised_jobs));
  std::fprintf(f, "  \"jobs_detail\": [\n");
  for (std::size_t i = 0; i < r.records.size(); ++i) {
    const ChaosJobRecord& j = r.records[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"class\": \"%s\", \"status\": \"%s\", "
                 "\"cause\": \"%s\", \"attempts\": %d, \"sim_cycles\": %llu, "
                 "\"sim_events\": %llu, \"ok\": %s}%s\n",
                 j.name.c_str(), j.cls.c_str(), j.status.c_str(), j.cause.c_str(), j.attempts,
                 static_cast<unsigned long long>(j.sim_cycles),
                 static_cast<unsigned long long>(j.sim_events), j.ok ? "true" : "false",
                 i + 1 < r.records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

/// Shards scenario: the conservative-PDES kernel (DESIGN.md §13) under two
/// loads, each swept over shard counts {1, 2, 4} with two in-binary gates.
/// (1) The pinned decode: the fusion rule folds every shell of the Figure-8
/// instance onto the memory-hub lane, so a sharded run must be bit-identical
/// to the serial oracle — same cycles/events/macroblocks, same output frames
/// (FNV hash), zero parallel rounds — and on full runs must sit exactly on
/// the decode pin. Wall time measures the engine's overhead on a fused plan
/// (expected: none — single-active rounds run inline, no thread ever
/// starts). (2) A synthetic cross-lane ring storm that genuinely spreads
/// across lanes: total events, end cycle and the commutative token hash must
/// be shard-count-invariant while parallel_rounds > 0 proves the lanes ran
/// concurrent windows.
struct ShardDecodePoint {
  std::uint32_t shards = 1;
  std::uint32_t lanes_used = 1;
  double wall_s = 0;
  std::uint64_t cycles = 0, events = 0, macroblocks = 0;
  std::uint64_t frames_hash = 0;
  std::uint64_t parallel_rounds = 0;
  bool bit_exact = false;
};

struct ShardSynthPoint {
  std::uint32_t shards = 1;
  double wall_s = 0;
  std::uint64_t events = 0, end = 0, hash = 0;
  std::uint64_t parallel_rounds = 0, cross_events = 0;
};

struct ShardsBenchResult {
  bool decode_identical = true;
  bool pin_checked = false, pin_ok = true;
  bool synth_identical = true;
  std::vector<ShardDecodePoint> decode;
  std::vector<ShardSynthPoint> synth;

  [[nodiscard]] bool gatesOk() const { return decode_identical && pin_ok && synth_identical; }
};

std::uint64_t fnvBytes(std::uint64_t h, const std::vector<std::uint8_t>& bytes) {
  for (std::uint8_t b : bytes) h = (h ^ b) * 1099511628211ULL;
  return h;
}

std::uint64_t framesHash(const std::vector<media::Frame>& frames) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const media::Frame& f : frames) {
    h = fnvBytes(h, f.yPlane());
    h = fnvBytes(h, f.cbPlane());
    h = fnvBytes(h, f.crPlane());
  }
  return h;
}

/// One lane-homed generator of the synthetic storm: a ring of `groups`
/// token senders, each delivering into the next group's accumulator through
/// the cross-shard channel path. XOR accumulation is commutative, so the
/// final hash is independent of same-cycle arrival order — the only freedom
/// the conservative windows leave.
sim::Task<void> shardStormGen(sim::Simulator& sim, std::uint32_t g, std::uint32_t groups,
                              std::uint32_t shards, int steps,
                              std::vector<std::uint64_t>& acc) {
  const std::uint32_t dst = (g + 1) % groups;
  for (int k = 0; k < steps; ++k) {
    co_await sim.delay(2);
    const std::uint64_t token =
        (std::uint64_t{g} << 32) ^ (static_cast<std::uint64_t>(k) * 0x9E3779B97F4A7C15ULL);
    sim.scheduleOnShard(dst % shards, 2, [&acc, dst, token] { acc[dst] ^= token; });
  }
}

ShardsBenchResult runShards(bool smoke, int repeats) {
  ShardsBenchResult r;
  const std::vector<std::uint32_t> shard_counts{1, 2, 4};

  // --- pinned decode at every shard count ---
  const auto w = eclipse::bench::makeWorkload(96, 80, smoke ? 2 : 5);
  for (std::uint32_t shards : shard_counts) {
    ShardDecodePoint p;
    p.shards = shards;
    const int n = smoke ? 1 : repeats;
    for (int i = 0; i < n; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      app::EclipseInstance inst;
      if (shards > 1) {
        const app::ShardAssignment& asg = inst.applyShardPlan(app::ShardPlan{.shards = shards});
        p.lanes_used = asg.lanesUsed();
      }
      app::DecodeApp dec(inst, w.bitstream);
      p.cycles = inst.run();
      const double dt = seconds(t0);
      if (i == 0 || dt < p.wall_s) p.wall_s = dt;
      p.events = inst.simulator().eventsDispatched();
      p.parallel_rounds = inst.simulator().shardStats().parallel_rounds;
      if (!dec.done()) {
        std::fprintf(stderr, "shards: decode incomplete at %u shards\n", shards);
        r.decode_identical = false;
        break;
      }
      p.macroblocks = dec.macroblocksDecoded();
      const auto out = dec.frames();
      p.frames_hash = framesHash(out);
      p.bit_exact = out.size() == w.golden.size();
      for (std::size_t f = 0; p.bit_exact && f < out.size(); ++f) {
        p.bit_exact = out[f] == w.golden[f];
      }
    }
    r.decode.push_back(p);
  }
  for (std::size_t i = 1; i < r.decode.size(); ++i) {
    const ShardDecodePoint& a = r.decode.front();
    const ShardDecodePoint& b = r.decode[i];
    if (b.cycles != a.cycles || b.events != a.events || b.macroblocks != a.macroblocks ||
        b.frames_hash != a.frames_hash || b.bit_exact != a.bit_exact) {
      std::fprintf(stderr,
                   "SHARD DETERMINISM VIOLATION: decode at %u shards diverges from serial "
                   "(cycles %llu vs %llu, events %llu vs %llu, hash %llx vs %llx)\n",
                   b.shards, static_cast<unsigned long long>(b.cycles),
                   static_cast<unsigned long long>(a.cycles),
                   static_cast<unsigned long long>(b.events),
                   static_cast<unsigned long long>(a.events),
                   static_cast<unsigned long long>(b.frames_hash),
                   static_cast<unsigned long long>(a.frames_hash));
      r.decode_identical = false;
    }
    if (b.parallel_rounds != 0) {
      std::fprintf(stderr, "shards: fused decode plan ran %llu parallel rounds at %u shards\n",
                   static_cast<unsigned long long>(b.parallel_rounds), b.shards);
      r.decode_identical = false;
    }
  }
  if (!smoke && !r.decode.empty()) {
    r.pin_checked = true;
    const ShardDecodePoint& a = r.decode.front();
    r.pin_ok = a.cycles == eclipse::pin::kDecodePinCycles &&
               a.events == eclipse::pin::kDecodePinEvents &&
               a.macroblocks == eclipse::pin::kDecodePinMacroblocks && a.bit_exact;
    if (!r.pin_ok) {
      std::fprintf(stderr,
                   "shards: decode off the pin (cycles %llu events %llu mbs %llu exact %d)\n",
                   static_cast<unsigned long long>(a.cycles),
                   static_cast<unsigned long long>(a.events),
                   static_cast<unsigned long long>(a.macroblocks), a.bit_exact ? 1 : 0);
    }
  }

  // --- synthetic cross-lane ring storm ---
  const std::uint32_t groups = 4;
  const int steps = smoke ? 2000 : 50000;
  for (std::uint32_t shards : shard_counts) {
    ShardSynthPoint p;
    p.shards = shards;
    const int n = smoke ? 1 : repeats;
    for (int i = 0; i < n; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      sim::Simulator sim;
      sim.setShardCount(shards);
      if (shards > 1) sim.declareCrossShardLatency(2);
      std::vector<std::uint64_t> acc(groups, 0);
      for (std::uint32_t g = 0; g < groups; ++g) {
        sim.spawn(shardStormGen(sim, g, groups, shards, steps, acc), "gen",
                  shards > 1 ? g % shards : 0);
      }
      p.end = sim.run();
      const double dt = seconds(t0);
      if (i == 0 || dt < p.wall_s) p.wall_s = dt;
      p.events = sim.eventsDispatched();
      const sim::ShardStats st = sim.shardStats();
      p.parallel_rounds = st.parallel_rounds;
      p.cross_events = st.cross_events;
      p.hash = 1469598103934665603ULL;
      for (std::uint64_t a : acc) p.hash = (p.hash ^ a) * 1099511628211ULL;
    }
    r.synth.push_back(p);
  }
  for (std::size_t i = 1; i < r.synth.size(); ++i) {
    const ShardSynthPoint& a = r.synth.front();
    const ShardSynthPoint& b = r.synth[i];
    if (b.events != a.events || b.end != a.end || b.hash != a.hash) {
      std::fprintf(stderr,
                   "SHARD DETERMINISM VIOLATION: storm at %u shards diverges "
                   "(events %llu vs %llu, end %llu vs %llu, hash %llx vs %llx)\n",
                   b.shards, static_cast<unsigned long long>(b.events),
                   static_cast<unsigned long long>(a.events),
                   static_cast<unsigned long long>(b.end),
                   static_cast<unsigned long long>(a.end),
                   static_cast<unsigned long long>(b.hash),
                   static_cast<unsigned long long>(a.hash));
      r.synth_identical = false;
    }
    if (b.parallel_rounds == 0) {
      std::fprintf(stderr, "shards: storm at %u shards never ran a parallel round\n", b.shards);
      r.synth_identical = false;
    }
  }
  return r;
}

void emitShards(std::FILE* f, const ShardsBenchResult& r) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-shards-v1\",\n");
  std::fprintf(f, "  \"decode\": {\n");
  std::fprintf(f, "    \"identical\": %s, \"pin_checked\": %s, \"pin_ok\": %s,\n",
               r.decode_identical ? "true" : "false", r.pin_checked ? "true" : "false",
               r.pin_ok ? "true" : "false");
  std::fprintf(f, "    \"points\": [\n");
  for (std::size_t i = 0; i < r.decode.size(); ++i) {
    const ShardDecodePoint& p = r.decode[i];
    std::fprintf(f,
                 "      {\"shards\": %u, \"lanes_used\": %u, \"wall_s\": %.6f, "
                 "\"sim_cycles\": %llu, \"sim_events\": %llu, \"macroblocks\": %llu, "
                 "\"frames_hash\": \"%016llx\", \"parallel_rounds\": %llu, "
                 "\"bit_exact\": %s}%s\n",
                 p.shards, p.lanes_used, p.wall_s, static_cast<unsigned long long>(p.cycles),
                 static_cast<unsigned long long>(p.events),
                 static_cast<unsigned long long>(p.macroblocks),
                 static_cast<unsigned long long>(p.frames_hash),
                 static_cast<unsigned long long>(p.parallel_rounds),
                 p.bit_exact ? "true" : "false", i + 1 < r.decode.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"synth_ring\": {\n");
  std::fprintf(f, "    \"identical\": %s,\n", r.synth_identical ? "true" : "false");
  std::fprintf(f, "    \"points\": [\n");
  for (std::size_t i = 0; i < r.synth.size(); ++i) {
    const ShardSynthPoint& p = r.synth[i];
    std::fprintf(f,
                 "      {\"shards\": %u, \"wall_s\": %.6f, \"events\": %llu, "
                 "\"end_cycle\": %llu, \"hash\": \"%016llx\", \"parallel_rounds\": %llu, "
                 "\"cross_events\": %llu}%s\n",
                 p.shards, p.wall_s, static_cast<unsigned long long>(p.events),
                 static_cast<unsigned long long>(p.end),
                 static_cast<unsigned long long>(p.hash),
                 static_cast<unsigned long long>(p.parallel_rounds),
                 static_cast<unsigned long long>(p.cross_events),
                 i + 1 < r.synth.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"gates_ok\": %s\n", r.gatesOk() ? "true" : "false");
  std::fprintf(f, "}\n");
}

/// Media scenario: host throughput of the vectorized media kernels
/// (DESIGN.md §11), per backend, plus two in-binary correctness gates that
/// make a silently wrong SIMD kernel fail CI: (1) every vector backend must
/// be bit-identical to the scalar oracle on a large randomized input sweep,
/// and (2) the reference timed decode must land on the same simulated
/// cycle/event/macroblock counts — and bit-exact output — under every
/// backend. Only blocks/s may differ between backends; the simulated
/// numbers are backend-invariant by design.
namespace mk = media::kernels;

struct MediaPoint {
  std::string backend;
  double wall_s = 0;
  double per_s = 0;     // kernel calls (blocks) per host second
  double speedup = 0;   // vs scalar on the same inputs; 1.0 for scalar
};

struct MediaKernelBench {
  std::string kernel;
  int iters = 0;
  std::vector<MediaPoint> points;
};

struct MediaDecodePoint {
  std::string backend;
  double wall_s = 0;  // best wall time of the full timed decode
};

struct MediaBenchResult {
  std::vector<std::string> backends;
  std::string best;
  int identity_blocks = 0;
  bool identity_ok = true;
  std::uint64_t pin_cycles = 0, pin_events = 0, pin_macroblocks = 0;
  bool pin_ok = true;
  std::vector<MediaDecodePoint> decode;
  std::vector<MediaKernelBench> kernels;
};

volatile std::uint64_t g_media_sink = 0;  // defeats dead-code elimination

template <typename Fn>
double bestWall(int repeats, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double dt = seconds(t0);
    if (r == 0 || dt < best) best = dt;
  }
  return best;
}

media::Block randomMediaBlock(sim::Prng& rng, int magnitude) {
  media::Block b{};
  for (auto& v : b) {
    v = static_cast<std::int16_t>(static_cast<int>(rng.range(-magnitude, magnitude)));
  }
  return b;
}

/// Bit-identity gate: every vector backend against the scalar oracle on
/// `blocks` randomized inputs per kernel family. Returns false (and prints
/// the first offender) on any mismatch.
bool mediaIdentityGate(int blocks) {
  sim::Prng rng(0xBE7C11ull);
  const auto backends = mk::availableBackends();

  // Pixel planes for the SAD/interp side.
  std::vector<std::uint8_t> plane(128 * 80), cur(128 * 80);
  for (auto& v : plane) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : cur) v = static_cast<std::uint8_t>(rng.below(256));

  for (int i = 0; i < blocks; ++i) {
    const int mag = i % 3 == 0 ? 255 : (i % 3 == 1 ? 2047 : 32767);
    const media::Block in = randomMediaBlock(rng, mag);
    const media::Block lv = randomMediaBlock(rng, 2047);
    const int qscale = 1 + i % 31;
    const media::quant::Matrix& m =
        i % 2 == 0 ? media::quant::flatMatrix() : media::quant::defaultIntraMatrix();
    const auto order = i % 2 == 0 ? media::scan::Order::Zigzag : media::scan::Order::Alternate;
    const int sx = static_cast<int>(rng.below(128 - 17));
    const int sy = static_cast<int>(rng.below(80 - 17));
    const int fx = static_cast<int>(rng.below(2));
    const int fy = static_cast<int>(rng.below(2));

    media::Block ref_f, ref_i, ref_q, ref_d, ref_s;
    std::vector<media::rle::RunLevel> ref_p;
    mk::setBackend(mk::Backend::Scalar);
    {
      const auto& t = mk::active();
      t.dct_forward(in, ref_f);
      t.dct_inverse(in, ref_i);
      t.quantize(in, ref_q, qscale, m);
      t.dequantize(lv, ref_d, qscale, m);
      t.to_scan(in, ref_s, order);
      t.rle_encode(in, ref_p);
    }
    const std::uint8_t* ref_win = plane.data() + sy * 128 + sx;
    const std::uint8_t* cur_win = cur.data() + sy * 128 + sx;
    std::uint32_t ref_sad = 0;
    std::array<std::uint8_t, 256> ref_interp{};
    mk::setBackend(mk::Backend::Scalar);
    ref_sad = mk::active().sad_16xh(cur_win, 128, ref_win, 128, 16, fx, fy);
    mk::active().interp_16xh(ref_interp.data(), 16, ref_win, 128, 16, fx, fy);

    for (const auto b : backends) {
      if (b == mk::Backend::Scalar) continue;
      mk::setBackend(b);
      const auto& t = mk::active();
      media::Block got;
      std::vector<media::rle::RunLevel> got_p;
      t.dct_forward(in, got);
      if (got != ref_f) {
        std::fprintf(stderr, "media identity: dct_forward diverges on %s (block %d)\n", t.name, i);
        return false;
      }
      t.dct_inverse(in, got);
      if (got != ref_i) {
        std::fprintf(stderr, "media identity: dct_inverse diverges on %s (block %d)\n", t.name, i);
        return false;
      }
      t.quantize(in, got, qscale, m);
      if (got != ref_q) {
        std::fprintf(stderr, "media identity: quantize diverges on %s (block %d)\n", t.name, i);
        return false;
      }
      t.dequantize(lv, got, qscale, m);
      if (got != ref_d) {
        std::fprintf(stderr, "media identity: dequantize diverges on %s (block %d)\n", t.name, i);
        return false;
      }
      t.to_scan(in, got, order);
      if (got != ref_s) {
        std::fprintf(stderr, "media identity: to_scan diverges on %s (block %d)\n", t.name, i);
        return false;
      }
      t.rle_encode(in, got_p);
      if (got_p != ref_p) {
        std::fprintf(stderr, "media identity: rle_encode diverges on %s (block %d)\n", t.name, i);
        return false;
      }
      std::array<std::uint8_t, 256> got_interp{};
      if (t.sad_16xh(cur_win, 128, ref_win, 128, 16, fx, fy) != ref_sad) {
        std::fprintf(stderr, "media identity: sad_16xh diverges on %s (block %d)\n", t.name, i);
        return false;
      }
      t.interp_16xh(got_interp.data(), 16, ref_win, 128, 16, fx, fy);
      if (got_interp != ref_interp) {
        std::fprintf(stderr, "media identity: interp_16xh diverges on %s (block %d)\n", t.name, i);
        return false;
      }
    }
  }
  return true;
}

MediaBenchResult runMedia(bool smoke, int repeats) {
  MediaBenchResult r;
  const auto backends = mk::availableBackends();
  for (const auto b : backends) r.backends.emplace_back(mk::backendName(b));
  r.best = mk::backendName(backends.back());

  r.identity_blocks = 10000;
  r.identity_ok = mediaIdentityGate(r.identity_blocks);

  // Decode pin: simulated numbers and decoded frames must be invariant
  // across backends; wall time is the per-backend figure of merit.
  {
    bool first = true;
    for (const auto b : backends) {
      mk::setBackend(b);
      // Regenerate and re-encode under this backend too: the producer side
      // (video generator + encoder) must be bit-identical as well.
      const auto w = eclipse::bench::makeWorkload(96, 80, smoke ? 2 : 5);
      MediaDecodePoint p;
      p.backend = mk::backendName(b);
      std::uint64_t cycles = 0, events = 0, mbs = 0;
      bool bit_exact = false;
      p.wall_s = bestWall(smoke ? 1 : repeats, [&] {
        app::EclipseInstance inst;
        const auto run = eclipse::bench::runDecode(inst, w);
        cycles = run.cycles;
        events = inst.simulator().eventsDispatched();
        mbs = run.macroblocks;
        bit_exact = run.bit_exact;
      });
      if (first) {
        r.pin_cycles = cycles;
        r.pin_events = events;
        r.pin_macroblocks = mbs;
        first = false;
      } else if (cycles != r.pin_cycles || events != r.pin_events || mbs != r.pin_macroblocks) {
        std::fprintf(stderr,
                     "media pin: backend %s moved the decode (%llu/%llu/%llu vs "
                     "%llu/%llu/%llu)\n",
                     p.backend.c_str(), static_cast<unsigned long long>(cycles),
                     static_cast<unsigned long long>(events), static_cast<unsigned long long>(mbs),
                     static_cast<unsigned long long>(r.pin_cycles),
                     static_cast<unsigned long long>(r.pin_events),
                     static_cast<unsigned long long>(r.pin_macroblocks));
        r.pin_ok = false;
      }
      if (!bit_exact) {
        std::fprintf(stderr, "media pin: backend %s output not bit-exact vs golden\n",
                     p.backend.c_str());
        r.pin_ok = false;
      }
      r.decode.push_back(p);
    }
  }

  // Per-kernel throughput. Shared randomized inputs, cycled via index mask
  // so the working set (256 blocks) stays cache-resident and the number
  // measured is kernel arithmetic, not DRAM.
  sim::Prng rng(0x5EEDull);
  constexpr int kMask = 255;
  std::vector<media::Block> coefs, levels, sparse;
  for (int i = 0; i <= kMask; ++i) {
    coefs.push_back(randomMediaBlock(rng, i % 2 == 0 ? 255 : 2047));
    levels.push_back(randomMediaBlock(rng, 2047));
    // Post-quantization distribution for RLE: mostly zeros.
    media::Block sp = randomMediaBlock(rng, 2047);
    for (auto& v : sp) {
      if (rng.below(8) != 0) v = 0;
    }
    sparse.push_back(sp);
  }
  std::vector<std::uint8_t> plane(128 * 80), cur(128 * 80);
  for (auto& v : plane) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : cur) v = static_cast<std::uint8_t>(rng.below(256));

  struct Spec {
    const char* name;
    int iters;
  };
  const int scale = smoke ? 1 : 20;
  const Spec specs[] = {
      {"dct_forward", 10000 * scale},        {"dct_inverse", 10000 * scale},
      {"quantize", 10000 * scale},           {"dequantize", 10000 * scale},
      {"to_scan_zigzag", 20000 * scale},     {"rle_encode", 10000 * scale},
      {"sad_16x16", 25000 * scale},          {"sad_16x16_halfpel", 25000 * scale},
      {"interp_16x16_halfpel", 25000 * scale},
  };

  for (const Spec& s : specs) {
    MediaKernelBench kb;
    kb.kernel = s.name;
    kb.iters = s.iters;
    double scalar_wall = 0;
    for (const auto b : backends) {
      mk::setBackend(b);
      const auto& t = mk::active();
      media::Block out;
      std::vector<media::rle::RunLevel> pairs;
      const std::string name = s.name;
      const double wall = bestWall(repeats, [&] {
        std::uint64_t sink = 0;
        for (int j = 0; j < s.iters; ++j) {
          const media::Block& in = coefs[static_cast<std::size_t>(j & kMask)];
          const std::uint8_t* win = plane.data() + (j % 63) * 128 + (j % 111);
          if (name == "dct_forward") {
            t.dct_forward(in, out);
            sink += static_cast<std::uint64_t>(static_cast<std::uint16_t>(out[0]));
          } else if (name == "dct_inverse") {
            t.dct_inverse(in, out);
            sink += static_cast<std::uint64_t>(static_cast<std::uint16_t>(out[0]));
          } else if (name == "quantize") {
            t.quantize(in, out, 1 + (j & 15), media::quant::defaultIntraMatrix());
            sink += static_cast<std::uint64_t>(static_cast<std::uint16_t>(out[0]));
          } else if (name == "dequantize") {
            t.dequantize(levels[static_cast<std::size_t>(j & kMask)], out, 1 + (j & 15),
                         media::quant::defaultIntraMatrix());
            sink += static_cast<std::uint64_t>(static_cast<std::uint16_t>(out[0]));
          } else if (name == "to_scan_zigzag") {
            t.to_scan(in, out, media::scan::Order::Zigzag);
            sink += static_cast<std::uint64_t>(static_cast<std::uint16_t>(out[0]));
          } else if (name == "rle_encode") {
            t.rle_encode(sparse[static_cast<std::size_t>(j & kMask)], pairs);
            sink += pairs.size();
          } else if (name == "sad_16x16") {
            sink += t.sad_16xh(cur.data() + (j % 57) * 128 + (j % 101), 128, win, 128, 16, 0, 0);
          } else if (name == "sad_16x16_halfpel") {
            sink += t.sad_16xh(cur.data() + (j % 57) * 128 + (j % 101), 128, win, 128, 16, 1, 1);
          } else {  // interp_16x16_halfpel
            std::array<std::uint8_t, 256> dst;
            t.interp_16xh(dst.data(), 16, win, 128, 16, 1, 1);
            sink += dst[0];
          }
        }
        g_media_sink = g_media_sink + sink;
      });
      MediaPoint p;
      p.backend = mk::backendName(b);
      p.wall_s = wall;
      p.per_s = wall > 0 ? static_cast<double>(s.iters) / wall : 0;
      if (b == mk::Backend::Scalar) scalar_wall = wall;
      p.speedup = (wall > 0 && scalar_wall > 0) ? scalar_wall / wall : 0;
      kb.points.push_back(p);
    }
    r.kernels.push_back(kb);
  }

  mk::resetBackendFromEnv();
  return r;
}

void emitMedia(std::FILE* f, const MediaBenchResult& r) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-media-v1\",\n");
  std::fprintf(f, "  \"backends\": [");
  for (std::size_t i = 0; i < r.backends.size(); ++i) {
    std::fprintf(f, "\"%s\"%s", r.backends[i].c_str(), i + 1 < r.backends.size() ? ", " : "");
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"best_backend\": \"%s\",\n", r.best.c_str());
  std::fprintf(f, "  \"identity_blocks\": %d,\n", r.identity_blocks);
  std::fprintf(f, "  \"identity\": \"%s\",\n", r.identity_ok ? "ok" : "MISMATCH");
  std::fprintf(f,
               "  \"decode_pin\": {\"sim_cycles\": %llu, \"events\": %llu, "
               "\"macroblocks\": %llu, \"invariant\": %s},\n",
               static_cast<unsigned long long>(r.pin_cycles),
               static_cast<unsigned long long>(r.pin_events),
               static_cast<unsigned long long>(r.pin_macroblocks), r.pin_ok ? "true" : "false");
  std::fprintf(f, "  \"decode_wall\": [\n");
  for (std::size_t i = 0; i < r.decode.size(); ++i) {
    std::fprintf(f, "    {\"backend\": \"%s\", \"wall_s\": %.6f}%s\n", r.decode[i].backend.c_str(),
                 r.decode[i].wall_s, i + 1 < r.decode.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < r.kernels.size(); ++i) {
    const MediaKernelBench& kb = r.kernels[i];
    std::fprintf(f, "    {\"kernel\": \"%s\", \"iters\": %d, \"points\": [\n", kb.kernel.c_str(),
                 kb.iters);
    for (std::size_t j = 0; j < kb.points.size(); ++j) {
      const MediaPoint& p = kb.points[j];
      std::fprintf(f,
                   "      {\"backend\": \"%s\", \"wall_s\": %.6f, \"blocks_per_s\": %.0f, "
                   "\"speedup_vs_scalar\": %.2f}%s\n",
                   p.backend.c_str(), p.wall_s, p.per_s, p.speedup,
                   j + 1 < kb.points.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < r.kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

/// Mode-set scenario (DESIGN §12): the cost of live diff-based
/// reconfiguration versus cold teardown+relaunch, with hard gates:
///   1. a multi-mode application that never switches must land exactly on
///      the suite-wide decode pin (full runs; smoke uses a 2-frame clip),
///   2. the mid-clip SD->HD segment switch must be seamless — both
///      segments bit-exact against their goldens, zero dropped frames —
///      and must cost fewer MMIO writes than teardown+relaunch,
///   3. the mid-clip field-only switch (degraded mode) must cost zero
///      simulated transition cycles, and reaching completion through it
///      must be cheaper than drain+teardown+relaunch at the same point.
struct ModesResult {
  bool pin_checked = false;  // full runs only (smoke clip is not the pin workload)
  bool pin_ok = true;
  std::uint64_t noswitch_cycles = 0, noswitch_events = 0, noswitch_mbs = 0;

  app::TransitionStats seg;            // the SD->HD diff transition
  std::uint64_t seg_cold_writes = 0;   // teardown + cold relaunch at the boundary
  std::uint64_t seg_dropped = 0;
  bool seamless = false;

  app::TransitionStats mid;              // the field-only degraded switch
  std::uint64_t mid_cold_writes = 0;     // drain + teardown + relaunch
  std::uint64_t mid_cold_drain_cycles = 0;
  std::uint64_t mid_diff_to_done = 0;    // switch decision -> clip complete
  std::uint64_t mid_cold_to_done = 0;
  bool gates_ok = true;
};

app::DecodeAppConfig hdDecodeConfig() {
  app::DecodeAppConfig cfg;
  cfg.coef_buffer = 6144;
  cfg.blocks_buffer = 3072;
  cfg.res_buffer = 3072;
  cfg.pix_buffer = 3072;
  return cfg;
}

bool framesBitExact(const std::vector<media::Frame>& out, const std::vector<media::Frame>& golden) {
  bool ok = out.size() == golden.size();
  for (std::size_t i = 0; ok && i < out.size(); ++i) ok = out[i] == golden[i];
  return ok;
}

ModesResult runModes(bool smoke) {
  ModesResult r;
  const int frames = smoke ? 2 : 5;
  const auto sd = eclipse::bench::makeWorkload(96, 80, frames);
  const auto hd = eclipse::bench::makeWorkload(128, 96, frames);
  const std::vector<app::DecodeApp::Mode> sd_hd = {{"sd", {}}, {"hd", hdDecodeConfig()}};

  // Gate 1: the mode machinery must be invisible when no switch occurs.
  {
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, sd.bitstream, sd_hd);
    r.noswitch_cycles = inst.run();
    r.noswitch_events = inst.simulator().eventsDispatched();
    r.noswitch_mbs = dec.macroblocksDecoded();
    if (!dec.done()) {
      std::fprintf(stderr, "modes: no-switch decode incomplete\n");
      r.gates_ok = false;
    }
    r.pin_checked = !smoke;
    if (r.pin_checked) {
      r.pin_ok = r.noswitch_cycles == pin::kDecodePinCycles &&
                 r.noswitch_events == pin::kDecodePinEvents &&
                 r.noswitch_mbs == pin::kDecodePinMacroblocks;
      if (!r.pin_ok) {
        std::fprintf(stderr, "modes: no-switch decode off the pin (%llu/%llu/%llu)\n",
                     static_cast<unsigned long long>(r.noswitch_cycles),
                     static_cast<unsigned long long>(r.noswitch_events),
                     static_cast<unsigned long long>(r.noswitch_mbs));
      }
    }
  }

  // Gate 2: SD->HD segment switch, diff transition vs cold relaunch.
  {
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, sd.bitstream, sd_hd);
    inst.run();
    const bool seg0_done = dec.done();
    r.seg = dec.switchSegment("hd", hd.bitstream);
    inst.run();
    const bool seg1_done = dec.done();
    r.seg_dropped = dec.framesDropped();
    r.seamless = seg0_done && seg1_done && r.seg_dropped == 0 &&
                 framesBitExact(dec.segmentFrames(0), sd.golden) &&
                 framesBitExact(dec.frames(), hd.golden);
    if (!r.seamless) {
      std::fprintf(stderr, "modes: SD->HD segment switch not seamless\n");
      r.gates_ok = false;
    }
  }
  {
    // Cold comparison: tear the finished SD application down and launch an
    // HD application from scratch at the same boundary.
    app::EclipseInstance inst;
    mem::PiBus& bus = inst.piBus();
    app::DecodeApp dec(inst, sd.bitstream, {{"sd", app::DecodeAppConfig{}}});
    inst.run();
    const std::uint64_t w0 = bus.writeCount();
    dec.teardown();
    app::DecodeApp dec2(inst, hd.bitstream, hdDecodeConfig());
    r.seg_cold_writes = bus.writeCount() - w0;
    inst.run();
    if (!dec2.done()) {
      std::fprintf(stderr, "modes: cold HD relaunch incomplete\n");
      r.gates_ok = false;
    }
  }
  if (r.seg.mmio_writes >= r.seg_cold_writes) {
    std::fprintf(stderr, "modes: diff segment switch not cheaper (%llu vs %llu writes)\n",
                 static_cast<unsigned long long>(r.seg.mmio_writes),
                 static_cast<unsigned long long>(r.seg_cold_writes));
    r.gates_ok = false;
  }

  // Gate 3: mid-clip field-only switch into the degraded (reduced-budget)
  // mode vs drain+teardown+relaunch at the same decision point.
  app::DecodeAppConfig eco;
  eco.budget_cycles = 500;
  const Cycle half = r.noswitch_cycles / 2;
  {
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, sd.bitstream, {{"sd", app::DecodeAppConfig{}}, {"eco", eco}});
    inst.run(half);
    const Cycle c0 = inst.simulator().now();
    r.mid = dec.switchMode("eco");
    inst.run();
    r.mid_diff_to_done = inst.simulator().now() - c0;
    if (!dec.done()) {
      std::fprintf(stderr, "modes: mid-clip diff run incomplete\n");
      r.gates_ok = false;
    }
    if (r.mid.cycles != 0) {
      std::fprintf(stderr, "modes: field-only switch consumed %llu simulated cycles\n",
                   static_cast<unsigned long long>(r.mid.cycles));
      r.gates_ok = false;
    }
  }
  {
    app::EclipseInstance inst;
    mem::PiBus& bus = inst.piBus();
    app::DecodeApp dec(inst, sd.bitstream);
    inst.run(half);
    const Cycle c0 = inst.simulator().now();
    const std::uint64_t w0 = bus.writeCount();
    dec.handle().drain();
    dec.teardown();
    r.mid_cold_drain_cycles = inst.simulator().now() - c0;
    app::DecodeApp dec2(inst, sd.bitstream, eco);
    r.mid_cold_writes = bus.writeCount() - w0;
    inst.run();
    r.mid_cold_to_done = inst.simulator().now() - c0;
    if (!dec2.done()) {
      std::fprintf(stderr, "modes: mid-clip cold run incomplete\n");
      r.gates_ok = false;
    }
  }
  if (r.mid_diff_to_done >= r.mid_cold_to_done) {
    std::fprintf(stderr, "modes: diff mid-clip switch not cheaper to completion (%llu vs %llu)\n",
                 static_cast<unsigned long long>(r.mid_diff_to_done),
                 static_cast<unsigned long long>(r.mid_cold_to_done));
    r.gates_ok = false;
  }
  if (r.mid.mmio_writes >= r.mid_cold_writes) {
    std::fprintf(stderr, "modes: field-only switch not cheaper in writes (%llu vs %llu)\n",
                 static_cast<unsigned long long>(r.mid.mmio_writes),
                 static_cast<unsigned long long>(r.mid_cold_writes));
    r.gates_ok = false;
  }
  r.gates_ok = r.gates_ok && r.pin_ok;
  return r;
}

void emitModes(std::FILE* f, const ModesResult& r) {
  const double ratio = r.seg_cold_writes > 0
                           ? static_cast<double>(r.seg.mmio_writes) /
                                 static_cast<double>(r.seg_cold_writes)
                           : 0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-modes-v1\",\n");
  std::fprintf(f,
               "  \"no_switch\": {\"sim_cycles\": %llu, \"events\": %llu, "
               "\"macroblocks\": %llu, \"pin_checked\": %s, \"pin_ok\": %s},\n",
               static_cast<unsigned long long>(r.noswitch_cycles),
               static_cast<unsigned long long>(r.noswitch_events),
               static_cast<unsigned long long>(r.noswitch_mbs),
               r.pin_checked ? "true" : "false", r.pin_ok ? "true" : "false");
  std::fprintf(f,
               "  \"segment_switch\": {\"diff_mmio_writes\": %llu, \"diff_mmio_reads\": %llu, "
               "\"transition_cycles\": %llu, \"tasks_kept\": %u, \"streams_kept\": %u, "
               "\"streams_rebound\": %u, \"cold_mmio_writes\": %llu, "
               "\"diff_vs_cold_write_ratio\": %.3f, \"frames_dropped\": %llu, "
               "\"seamless\": %s},\n",
               static_cast<unsigned long long>(r.seg.mmio_writes),
               static_cast<unsigned long long>(r.seg.mmio_reads),
               static_cast<unsigned long long>(r.seg.cycles), r.seg.tasks_kept,
               r.seg.streams_kept, r.seg.streams_removed,
               static_cast<unsigned long long>(r.seg_cold_writes), ratio,
               static_cast<unsigned long long>(r.seg_dropped), r.seamless ? "true" : "false");
  std::fprintf(f,
               "  \"midclip_switch\": {\"diff_transition_cycles\": %llu, "
               "\"diff_mmio_writes\": %llu, \"cold_drain_cycles\": %llu, "
               "\"cold_mmio_writes\": %llu, \"diff_cycles_to_done\": %llu, "
               "\"cold_cycles_to_done\": %llu},\n",
               static_cast<unsigned long long>(r.mid.cycles),
               static_cast<unsigned long long>(r.mid.mmio_writes),
               static_cast<unsigned long long>(r.mid_cold_drain_cycles),
               static_cast<unsigned long long>(r.mid_cold_writes),
               static_cast<unsigned long long>(r.mid_diff_to_done),
               static_cast<unsigned long long>(r.mid_cold_to_done));
  std::fprintf(f, "  \"gates_ok\": %s\n", r.gates_ok ? "true" : "false");
  std::fprintf(f, "}\n");
}

void emit(std::FILE* f, const std::vector<Result>& results) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-kernel-v1\",\n");
  std::fprintf(f, "  \"wheel_span\": %llu,\n",
               static_cast<unsigned long long>(sim::EventQueue::kWheelSpan));
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    const double eps = r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, \"sim_cycles\": %llu, "
                 "\"wall_s\": %.6f, \"events_per_sec\": %.0f, "
                 "\"sim_cycles_per_sec\": %.0f, \"repeats\": %d}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.sim_cycles), r.wall_s, eps,
                 r.wall_s > 0 ? static_cast<double>(r.sim_cycles) / r.wall_s : 0,
                 r.repeats, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  int repeats = 5;
  bool smoke = false;
  bool transport = false;
  bool reconfig = false;
  bool faults = false;
  bool farm_bench = false;
  bool chaos_bench = false;
  bool media_bench = false;
  bool modes_bench = false;
  bool shards_bench = false;
  bool serve_bench = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      transport = true;
    } else if (std::strcmp(argv[i], "--reconfig") == 0) {
      reconfig = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults = true;
    } else if (std::strcmp(argv[i], "--farm") == 0) {
      farm_bench = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos_bench = true;
    } else if (std::strcmp(argv[i], "--media") == 0) {
      media_bench = true;
    } else if (std::strcmp(argv[i], "--modes") == 0) {
      modes_bench = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards_bench = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve_bench = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE] [--repeats N] [--smoke] "
                   "[--transport | --reconfig | --faults | --farm | --chaos | --media"
                   " | --modes | --shards | --serve]\n",
                   argv[0]);
      return 2;
    }
  }
  if (repeats < 1) repeats = 1;
  if (out.empty()) {
    out = serve_bench
              ? "BENCH_serve.json"
              : chaos_bench
              ? "BENCH_chaos.json"
              : shards_bench
              ? "BENCH_shards.json"
              : modes_bench
              ? "BENCH_modes.json"
              : media_bench
                    ? "BENCH_media.json"
                    : farm_bench
                          ? "BENCH_farm.json"
                          : (faults ? "BENCH_faults.json"
                                    : (reconfig ? "BENCH_reconfig.json"
                                                : (transport ? "BENCH_transport.json"
                                                             : "BENCH_kernel.json")));
  }

  if (serve_bench) {
    const ServeBenchResult r = runServe(smoke);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
      return 1;
    }
    emitServe(f, r);
    std::fclose(f);
    emitServe(stdout, r);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    // Wire identity to the submitWait oracle, the unarmed decode pin,
    // no-starvation fair share and the zero-loss drain are hard gates.
    return r.gatesOk() ? 0 : 1;
  }

  if (chaos_bench) {
    const ChaosBenchResult r = runChaos(smoke);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
      return 1;
    }
    emitChaos(f, r);
    std::fclose(f);
    emitChaos(stdout, r);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    // Terminality, retry bit-identity, quarantine exactness and the
    // unarmed zero-overhead claim are hard gates, not perf numbers.
    return r.gatesOk() ? 0 : 1;
  }

  if (shards_bench) {
    const ShardsBenchResult r = runShards(smoke, repeats);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
      return 1;
    }
    emitShards(f, r);
    std::fclose(f);
    emitShards(stdout, r);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    // Bit-identity of the sharded kernel to the serial oracle — for the
    // fused decode and the genuinely parallel storm — is a hard gate.
    return r.gatesOk() ? 0 : 1;
  }

  if (modes_bench) {
    const ModesResult r = runModes(smoke);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
      return 1;
    }
    emitModes(f, r);
    std::fclose(f);
    emitModes(stdout, r);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    // Seamlessness, the diff-cheaper-than-cold comparisons, and (on full
    // runs) the no-switch decode pin are hard gates, not perf numbers.
    return r.gates_ok ? 0 : 1;
  }

  if (media_bench) {
    const MediaBenchResult r = runMedia(smoke, repeats);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
      return 1;
    }
    emitMedia(f, r);
    std::fclose(f);
    emitMedia(stdout, r);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    // Bit-identity to the scalar oracle and the backend-invariant decode
    // pin are hard gates, not perf numbers.
    return (r.identity_ok && r.pin_ok) ? 0 : 1;
  }
  if (farm_bench) {
    const FarmBenchResult r = runFarm(smoke);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
      return 1;
    }
    emitFarm(f, r);
    std::fclose(f);
    emitFarm(stdout, r);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    // The determinism contract is a hard invariant, not a perf number.
    return r.deterministic ? 0 : 1;
  }
  if (faults) {
    const FaultsResult r = runFaults(smoke);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
      return 1;
    }
    emitFaults(f, r);
    std::fclose(f);
    emitFaults(stdout, r);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
  }
  if (reconfig) {
    const ReconfigResult r = runReconfig(smoke);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
      return 1;
    }
    emitReconfig(f, r);
    std::fclose(f);
    emitReconfig(stdout, r);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
  }
  if (transport) {
    const TransportResult r = runTransport(smoke, smoke ? 1 : repeats);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
      return 1;
    }
    emitTransport(f, r);
    std::fclose(f);
    emitTransport(stdout, r);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
  }
  const int hops = smoke ? 500 : 20000;
  const int rounds = smoke ? 100 : 2000;
  const int callbacks = smoke ? 10000 : 200000;

  std::vector<Result> results;
  results.push_back(measure("pure_delay_storm", repeats, [&] { return runPureDelayStorm(hops); }));
  results.push_back(measure("long_delay_storm", repeats,
                            [&] { return runLongDelayStorm(smoke ? 100 : 2000); }));
  results.push_back(measure("mixed_fanout", repeats, [&] { return runMixedFanout(rounds); }));
  results.push_back(
      measure("callback_dispatch", repeats, [&] { return runCallbackDispatch(callbacks); }));

  // Reference timed decode: simulated-cycles/sec for the standard workload.
  {
    const auto w = eclipse::bench::makeWorkload(96, 80, smoke ? 2 : 5);
    results.push_back(measure("timed_decode", smoke ? 1 : repeats, [&] {
      app::EclipseInstance inst;
      app::DecodeApp dec(inst, w.bitstream);
      const Cycle cycles = inst.run();
      if (!dec.done()) std::fprintf(stderr, "warning: decode incomplete\n");
      return std::pair<std::uint64_t, std::uint64_t>{inst.simulator().eventsDispatched(), cycles};
    }));
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
    return 1;
  }
  emit(f, results);
  std::fclose(f);
  emit(stdout, results);
  std::fprintf(stderr, "wrote %s\n", out.c_str());
  return 0;
}
