// Kernel perf harness: runs the event-kernel benchmarks under a wall-clock
// timer and writes BENCH_kernel.json, so the simulator's perf trajectory is
// tracked from PR to PR (see README.md for the format). Unlike the
// google-benchmark micro suite this runner is dependency-free, emits
// machine-readable output, and has a --smoke mode cheap enough for CI.
//
// Usage: bench_json [--out FILE] [--repeats N] [--smoke] [--transport | --reconfig]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "eclipse/app/configurator.hpp"
#include "eclipse/app/decode_app.hpp"
#include "eclipse/eclipse.hpp"
#include "eclipse/sim/sim_event.hpp"

using namespace eclipse;
using sim::Cycle;

namespace {

struct Result {
  std::string name;
  std::uint64_t events = 0;      // kernel events dispatched per run
  std::uint64_t sim_cycles = 0;  // simulated cycles per run (0 if n/a)
  double wall_s = 0;             // best wall time over repeats
  int repeats = 0;
};

double seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Runs `fn` (which returns {events, sim_cycles}) `repeats` times and keeps
/// the fastest wall time — the standard minimum-of-N noise filter.
template <typename Fn>
Result measure(std::string name, int repeats, Fn&& fn) {
  Result r;
  r.name = std::move(name);
  r.repeats = repeats;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto [events, cycles] = fn();
    const double dt = seconds(t0);
    if (i == 0 || dt < r.wall_s) r.wall_s = dt;
    r.events = events;
    r.sim_cycles = cycles;
  }
  return r;
}

sim::Task<void> storm(sim::Simulator& sim, Cycle stride, int hops) {
  for (int i = 0; i < hops; ++i) co_await sim.delay(stride);
}

sim::Task<void> fanoutWaiter(sim::SimEvent& ev, int rounds, std::uint64_t& wakes) {
  for (int i = 0; i < rounds; ++i) {
    co_await ev.wait();
    ++wakes;
  }
}

sim::Task<void> fanoutNotifier(sim::Simulator& sim, sim::SimEvent& ev, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.delay(1);
    ev.notifyAll();
  }
}

sim::Task<void> semWorker(sim::Simulator& sim, sim::Semaphore& sem, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sem.acquire();
    sim::SemaphoreGuard guard(sem);
    co_await sim.delay(2);
  }
}

std::pair<std::uint64_t, std::uint64_t> runPureDelayStorm(int hops) {
  sim::Simulator sim;
  for (int p = 0; p < 64; ++p) {
    sim.spawn(storm(sim, static_cast<Cycle>(p % 13) + 1, hops), "storm");
  }
  const Cycle end = sim.run();
  return {sim.eventsDispatched(), end};
}

std::pair<std::uint64_t, std::uint64_t> runLongDelayStorm(int hops) {
  sim::Simulator sim;
  for (int p = 0; p < 64; ++p) {
    sim.spawn(storm(sim, static_cast<Cycle>(4096 + 977 * p), hops), "far");
  }
  const Cycle end = sim.run();
  return {sim.eventsDispatched(), end};
}

std::pair<std::uint64_t, std::uint64_t> runMixedFanout(int rounds) {
  sim::Simulator sim;
  sim::SimEvent ev(sim);
  sim::Semaphore sem(sim, 4);
  std::uint64_t wakes = 0;
  for (int p = 0; p < 32; ++p) sim.spawn(fanoutWaiter(ev, rounds, wakes), "waiter");
  sim.spawn(fanoutNotifier(sim, ev, rounds), "notifier");
  for (int p = 0; p < 16; ++p) sim.spawn(semWorker(sim, sem, rounds), "sem");
  const Cycle end = sim.run();
  return {sim.eventsDispatched(), end};
}

std::pair<std::uint64_t, std::uint64_t> runCallbackDispatch(int count) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  for (int i = 0; i < count; ++i) {
    sim.schedule(static_cast<Cycle>(i % 97), [&sink] { ++sink; });
  }
  const Cycle end = sim.run();
  if (sink != static_cast<std::uint64_t>(count)) std::fprintf(stderr, "warning: lost callbacks\n");
  return {sim.eventsDispatched(), end};
}

/// Transport scenario: the standard timed decode, reported as wall-clock
/// plus the simulated bytes that crossed coprocessor ports (the sum of
/// every shell stream row's bytes_transferred counter). bytes/host-second
/// is the figure of merit for the zero-copy transport path: the simulated
/// traffic is pinned by the timing model, so only host efficiency moves it.
struct TransportResult {
  std::uint64_t events = 0;
  std::uint64_t sim_cycles = 0;
  std::uint64_t bytes_moved = 0;  // simulated port traffic, both directions
  double wall_s = 0;
  int repeats = 0;
};

TransportResult runTransport(bool smoke, int repeats) {
  const auto w = eclipse::bench::makeWorkload(96, 80, smoke ? 2 : 5);
  TransportResult r;
  r.repeats = repeats;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    app::EclipseInstance inst;
    app::DecodeApp dec(inst, w.bitstream);
    const Cycle cycles = inst.run();
    const double dt = seconds(t0);
    if (!dec.done()) std::fprintf(stderr, "warning: decode incomplete\n");
    std::uint64_t bytes = 0;
    for (const auto& sh : inst.shells()) {
      const auto& table = sh->streams();
      for (std::uint32_t row = 0; row < table.capacity(); ++row) {
        if (table.row(row).valid) bytes += table.row(row).bytes_transferred;
      }
    }
    if (i == 0 || dt < r.wall_s) r.wall_s = dt;
    r.events = inst.simulator().eventsDispatched();
    r.sim_cycles = cycles;
    r.bytes_moved = bytes;  // deterministic: identical every repeat
  }
  return r;
}

void emitTransport(std::FILE* f, const TransportResult& r) {
  const double bps = r.wall_s > 0 ? static_cast<double>(r.bytes_moved) / r.wall_s : 0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-transport-v1\",\n");
  std::fprintf(f, "  \"scenario\": \"timed_decode\",\n");
  std::fprintf(f, "  \"events\": %llu,\n", static_cast<unsigned long long>(r.events));
  std::fprintf(f, "  \"sim_cycles\": %llu,\n", static_cast<unsigned long long>(r.sim_cycles));
  std::fprintf(f, "  \"bytes_moved\": %llu,\n", static_cast<unsigned long long>(r.bytes_moved));
  std::fprintf(f, "  \"wall_s\": %.6f,\n", r.wall_s);
  std::fprintf(f, "  \"bytes_per_host_sec\": %.0f,\n", bps);
  std::fprintf(f, "  \"repeats\": %d\n", r.repeats);
  std::fprintf(f, "}\n");
}

/// Reconfiguration scenario: how fast the control plane can (re)wire the
/// subsystem. One instance stays live while a decode-shaped graph (the four
/// hardware tasks and their internal streams, scheduler-disabled, no sink
/// shell so the shell set stays fixed) is configured and torn down over and
/// over through the PI-bus. Wall time is the host cost of a mode change;
/// the MMIO counts are the simulated cost a real CPU would pay in register
/// traffic. SRAM free bytes must return to the starting value every cycle —
/// a leak in the allocator free-list fails the run.
struct ReconfigResult {
  int cycles = 0;           // launch/teardown round trips measured
  std::size_t tasks = 0;    // graph size, for context
  std::size_t streams = 0;
  double configure_s = 0;   // best wall time of one Configurator::apply
  double teardown_s = 0;    // best wall time of one AppHandle::teardown
  std::uint64_t mmio_writes_configure = 0;  // PI-bus writes per apply
  std::uint64_t mmio_reads_configure = 0;   // PI-bus reads per apply (row scans)
  std::uint64_t mmio_writes_teardown = 0;
};

app::GraphSpec reconfigSpec() {
  const app::DecodeAppConfig cfg;
  app::GraphSpec g("reconfig-probe");
  g.task({.name = "vld",
          .shell = "vld",
          .budget_cycles = cfg.budget_cycles,
          .enabled = false,
          .source = true,
          .software = {}})
      .task({.name = "rlsq",
             .shell = "rlsq",
             .budget_cycles = cfg.budget_cycles,
             .enabled = false,
             .software = {}})
      .task({.name = "idct",
             .shell = "dct",
             .budget_cycles = cfg.budget_cycles,
             .enabled = false,
             .software = {}})
      .task({.name = "mc",
             .shell = "mc",
             .budget_cycles = cfg.budget_cycles,
             .enabled = false,
             .software = {}});
  g.stream("coef", "vld", coproc::VldCoproc::kOutCoef, "rlsq", coproc::RlsqCoproc::kIn,
           cfg.coef_buffer)
      .stream("hdr", "vld", coproc::VldCoproc::kOutHdr, "mc", coproc::McCoproc::kInHdr,
              cfg.hdr_buffer)
      .stream("blocks", "rlsq", coproc::RlsqCoproc::kOut, "idct", coproc::DctCoproc::kIn,
              cfg.blocks_buffer)
      .stream("res", "idct", coproc::DctCoproc::kOut, "mc", coproc::McCoproc::kInRes,
              cfg.res_buffer);
  return g;
}

ReconfigResult runReconfig(bool smoke) {
  const int cycles = smoke ? 20 : 200;
  const app::GraphSpec spec = reconfigSpec();

  app::EclipseInstance inst;
  mem::PiBus& bus = inst.piBus();
  const std::size_t sram_free_initial = inst.sramBytesFree();

  ReconfigResult r;
  r.cycles = cycles;
  r.tasks = spec.tasks().size();
  r.streams = spec.streams().size();
  for (int i = 0; i < cycles; ++i) {
    const std::uint64_t w0 = bus.writeCount();
    const std::uint64_t rd0 = bus.readCount();
    const auto t0 = std::chrono::steady_clock::now();
    app::Configurator configurator(inst);
    app::AppHandle h = configurator.apply(spec);
    const double dt_cfg = seconds(t0);
    const std::uint64_t w1 = bus.writeCount();
    const std::uint64_t rd1 = bus.readCount();

    const auto t1 = std::chrono::steady_clock::now();
    h.teardown();
    const double dt_td = seconds(t1);

    if (i == 0 || dt_cfg < r.configure_s) r.configure_s = dt_cfg;
    if (i == 0 || dt_td < r.teardown_s) r.teardown_s = dt_td;
    r.mmio_writes_configure = w1 - w0;  // deterministic: identical every cycle
    r.mmio_reads_configure = rd1 - rd0;
    r.mmio_writes_teardown = bus.writeCount() - w1;

    if (inst.sramBytesFree() != sram_free_initial) {
      std::fprintf(stderr, "bench_json: SRAM leak after teardown cycle %d (%zu != %zu)\n", i,
                   inst.sramBytesFree(), sram_free_initial);
      std::exit(1);
    }
  }
  return r;
}

void emitReconfig(std::FILE* f, const ReconfigResult& r) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-reconfig-v1\",\n");
  std::fprintf(f, "  \"scenario\": \"decode_shaped_launch_teardown\",\n");
  std::fprintf(f, "  \"graph_tasks\": %zu,\n", r.tasks);
  std::fprintf(f, "  \"graph_streams\": %zu,\n", r.streams);
  std::fprintf(f, "  \"cycles\": %d,\n", r.cycles);
  std::fprintf(f, "  \"configure_wall_us\": %.3f,\n", r.configure_s * 1e6);
  std::fprintf(f, "  \"teardown_wall_us\": %.3f,\n", r.teardown_s * 1e6);
  std::fprintf(f, "  \"mmio_writes_per_configure\": %llu,\n",
               static_cast<unsigned long long>(r.mmio_writes_configure));
  std::fprintf(f, "  \"mmio_reads_per_configure\": %llu,\n",
               static_cast<unsigned long long>(r.mmio_reads_configure));
  std::fprintf(f, "  \"mmio_writes_per_teardown\": %llu\n",
               static_cast<unsigned long long>(r.mmio_writes_teardown));
  std::fprintf(f, "}\n");
}

void emit(std::FILE* f, const std::vector<Result>& results) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"eclipse-bench-kernel-v1\",\n");
  std::fprintf(f, "  \"wheel_span\": %llu,\n",
               static_cast<unsigned long long>(sim::EventQueue::kWheelSpan));
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    const double eps = r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, \"sim_cycles\": %llu, "
                 "\"wall_s\": %.6f, \"events_per_sec\": %.0f, "
                 "\"sim_cycles_per_sec\": %.0f, \"repeats\": %d}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.sim_cycles), r.wall_s, eps,
                 r.wall_s > 0 ? static_cast<double>(r.sim_cycles) / r.wall_s : 0,
                 r.repeats, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  int repeats = 5;
  bool smoke = false;
  bool transport = false;
  bool reconfig = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      transport = true;
    } else if (std::strcmp(argv[i], "--reconfig") == 0) {
      reconfig = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE] [--repeats N] [--smoke] [--transport | --reconfig]\n",
                   argv[0]);
      return 2;
    }
  }
  if (repeats < 1) repeats = 1;
  if (out.empty()) {
    out = reconfig ? "BENCH_reconfig.json"
                   : (transport ? "BENCH_transport.json" : "BENCH_kernel.json");
  }

  if (reconfig) {
    const ReconfigResult r = runReconfig(smoke);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
      return 1;
    }
    emitReconfig(f, r);
    std::fclose(f);
    emitReconfig(stdout, r);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
  }
  if (transport) {
    const TransportResult r = runTransport(smoke, smoke ? 1 : repeats);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
      return 1;
    }
    emitTransport(f, r);
    std::fclose(f);
    emitTransport(stdout, r);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
  }
  const int hops = smoke ? 500 : 20000;
  const int rounds = smoke ? 100 : 2000;
  const int callbacks = smoke ? 10000 : 200000;

  std::vector<Result> results;
  results.push_back(measure("pure_delay_storm", repeats, [&] { return runPureDelayStorm(hops); }));
  results.push_back(measure("long_delay_storm", repeats,
                            [&] { return runLongDelayStorm(smoke ? 100 : 2000); }));
  results.push_back(measure("mixed_fanout", repeats, [&] { return runMixedFanout(rounds); }));
  results.push_back(
      measure("callback_dispatch", repeats, [&] { return runCallbackDispatch(callbacks); }));

  // Reference timed decode: simulated-cycles/sec for the standard workload.
  {
    const auto w = eclipse::bench::makeWorkload(96, 80, smoke ? 2 : 5);
    results.push_back(measure("timed_decode", smoke ? 1 : repeats, [&] {
      app::EclipseInstance inst;
      app::DecodeApp dec(inst, w.bitstream);
      const Cycle cycles = inst.run();
      if (!dec.done()) std::fprintf(stderr, "warning: decode incomplete\n");
      return std::pair<std::uint64_t, std::uint64_t>{inst.simulator().eventsDispatched(), cycles};
    }));
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n", out.c_str());
    return 1;
  }
  emit(f, results);
  std::fclose(f);
  emit(stdout, results);
  std::fprintf(stderr, "wrote %s\n", out.c_str());
  return 0;
}
