// graph_dump: configures applications onto an Eclipse instance, then reads
// every shell's stream and task table back over the PI-bus — the same
// register path the configuring CPU uses — and renders what the *hardware*
// thinks the graphs look like as Graphviz DOT and JSON. Because the dump is
// reconstructed purely from MMIO reads, it is an end-to-end check of the
// register map shared by the Configurator and the shells: a field that the
// Configurator writes to the wrong word shows up here as a broken edge.
//
// Usage: graph_dump [--dot FILE] [--json FILE] [--run] [--demo-fault]
//                   [--modes] [--shards N]
//   --run         simulate to completion first, so the measurement registers
//                 (bytes transferred, busy cycles) carry real traffic.
//   --shards N    apply an N-lane ShardPlan before configuring, and render
//                 the resolved assignment: one cluster per populated lane,
//                 cross-shard edges dashed and annotated with the
//                 conservative lookahead. The lane map is a host-plan
//                 attribute (not a hardware register), so it is drawn from
//                 the resolved ShardAssignment, not from MMIO.
//   --demo-fault  latch a fault on the VLD task before dumping, so the
//                 fault-rendering path (salmon node, fault registers in the
//                 JSON) can be exercised and eyeballed without an injector.
//   --modes       run a multi-mode decode through a live SD->HD segment
//                 switch and dump the re-bound graph: the active mode is
//                 rendered in the graph label, re-bound streams are
//                 highlighted blue, and the JSON carries the transition
//                 stats and the diffed stream names.

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "eclipse/app/audio_app.hpp"
#include "eclipse/app/configurator.hpp"
#include "eclipse/app/decode_app.hpp"
#include "eclipse/app/mode_set.hpp"
#include "eclipse/eclipse.hpp"

using namespace eclipse;
namespace mmio = eclipse::app::mmio;

namespace {

struct StreamRowDump {
  std::uint32_t row = 0;
  std::uint32_t task = 0, port = 0, is_producer = 0;
  std::uint32_t base = 0, size = 0, space = 0;
  std::uint32_t remote_shell = 0, remote_row = 0, granted = 0;
  std::uint64_t bytes = 0;
  std::uint32_t stalled = 0;
  std::uint64_t stall_cycle = 0;
};

struct TaskRowDump {
  std::uint32_t slot = 0;
  std::uint32_t enabled = 0, budget = 0, info = 0;
  std::uint64_t busy = 0;
  std::uint32_t blocked = 0;
  std::uint32_t faulted = 0, fault_cause = 0, fault_row = 0, fault_count = 0;
  std::uint64_t fault_cycle = 0;
};

struct ShellDump {
  std::string name;
  std::uint32_t id = 0;
  sim::ShardId shard = 0;  ///< lane from the resolved ShardAssignment
  std::vector<StreamRowDump> streams;
  std::vector<TaskRowDump> tasks;
};

/// Reads one shell's tables back through the PI-bus register window.
ShellDump dumpShell(mem::PiBus& bus, const shell::Shell& sh) {
  ShellDump d;
  d.name = sh.name();
  d.id = sh.id();
  const auto sreg = [&](std::uint32_t row, std::uint32_t f) {
    return bus.read(mmio::streamReg(sh, row, f));
  };
  const auto treg = [&](std::uint32_t slot, std::uint32_t f) {
    return bus.read(mmio::taskReg(sh, static_cast<sim::TaskId>(slot), f));
  };
  for (std::uint32_t row = 0; row < sh.params().max_streams; ++row) {
    if (sreg(row, mmio::kStreamValid) == 0) continue;
    StreamRowDump r;
    r.row = row;
    r.task = sreg(row, mmio::kStreamTask);
    r.port = sreg(row, mmio::kStreamPort);
    r.is_producer = sreg(row, mmio::kStreamIsProducer);
    r.base = sreg(row, mmio::kStreamBase);
    r.size = sreg(row, mmio::kStreamSize);
    r.space = sreg(row, mmio::kStreamSpace);
    r.remote_shell = sreg(row, mmio::kStreamRemoteShell);
    r.remote_row = sreg(row, mmio::kStreamRemoteRow);
    r.granted = sreg(row, mmio::kStreamGranted);
    r.bytes = sreg(row, mmio::kStreamBytesLo) |
              (static_cast<std::uint64_t>(sreg(row, mmio::kStreamBytesHi)) << 32);
    r.stalled = sreg(row, mmio::kStreamStalled);
    r.stall_cycle = sreg(row, mmio::kStreamStallCycleLo) |
                    (static_cast<std::uint64_t>(sreg(row, mmio::kStreamStallCycleHi)) << 32);
    d.streams.push_back(r);
  }
  for (std::uint32_t slot = 0; slot < sh.params().max_tasks; ++slot) {
    if (treg(slot, mmio::kTaskValid) == 0) continue;
    TaskRowDump t;
    t.slot = slot;
    t.enabled = treg(slot, mmio::kTaskEnabled);
    t.budget = treg(slot, mmio::kTaskBudget);
    t.info = treg(slot, mmio::kTaskInfo);
    t.busy = treg(slot, mmio::kTaskBusyLo) |
             (static_cast<std::uint64_t>(treg(slot, mmio::kTaskBusyHi)) << 32);
    t.blocked = treg(slot, mmio::kTaskBlocked);
    t.faulted = treg(slot, mmio::kTaskFaulted);
    t.fault_cause = treg(slot, mmio::kTaskFaultCause);
    t.fault_row = treg(slot, mmio::kTaskFaultRow);
    t.fault_count = treg(slot, mmio::kTaskFaultCount);
    t.fault_cycle = treg(slot, mmio::kTaskFaultCycleLo) |
                    (static_cast<std::uint64_t>(treg(slot, mmio::kTaskFaultCycleHi)) << 32);
    d.tasks.push_back(t);
  }
  return d;
}

std::string nodeId(std::uint32_t shell_id, std::uint32_t task) {
  return "s" + std::to_string(shell_id) + "_t" + std::to_string(task);
}

/// Diff annotations for a --modes dump: which hardware rows the live
/// transition re-bound or added, plus the mode names and transition stats.
struct ModeAnnotations {
  std::string active, from;
  app::TransitionStats st;
  std::set<std::pair<std::uint32_t, std::uint32_t>> diff_edges;  // (shell, producer row)
  std::set<std::pair<std::uint32_t, std::uint32_t>> diff_tasks;  // (shell, slot)
  std::vector<std::string> rebound_streams, kept_streams;
};

void emitDot(std::FILE* f, const std::vector<ShellDump>& shells,
             const ModeAnnotations* mode = nullptr,
             const app::ShardAssignment* asg = nullptr) {
  std::map<std::uint32_t, const ShellDump*> by_id;
  for (const auto& s : shells) by_id[s.id] = &s;

  std::fprintf(f, "digraph eclipse {\n  rankdir=LR;\n  node [shape=box];\n");
  if (mode != nullptr) {
    std::fprintf(f, "  labelloc=t;\n  label=\"active mode: %s (diff from %s — %u streams re-bound, %u kept)\";\n",
                 mode->active.c_str(), mode->from.c_str(), mode->st.streams_removed,
                 mode->st.streams_kept);
  }
  const auto shellCluster = [&](const ShellDump& s) {
    std::fprintf(f, "  subgraph \"cluster_%s\" {\n    label=\"%s\";\n", s.name.c_str(),
                 s.name.c_str());
    for (const auto& t : s.tasks) {
      // Faulted tasks are filled salmon and labeled with the latched cause;
      // merely-disabled tasks stay dashed.
      const bool diffed =
          mode != nullptr && mode->diff_tasks.count({s.id, t.slot}) != 0;
      if (t.faulted != 0) {
        std::fprintf(f, "    %s [label=\"t%u (%s)\" style=filled fillcolor=salmon];\n",
                     nodeId(s.id, t.slot).c_str(), t.slot,
                     shell::faultCauseName(static_cast<shell::FaultCause>(t.fault_cause)));
      } else if (diffed) {
        std::fprintf(f, "    %s [label=\"t%u (diff)\" style=filled fillcolor=lightblue];\n",
                     nodeId(s.id, t.slot).c_str(), t.slot);
      } else {
        std::fprintf(f, "    %s [label=\"t%u%s\"%s];\n", nodeId(s.id, t.slot).c_str(), t.slot,
                     t.enabled != 0 ? "" : " (off)", t.enabled != 0 ? "" : " style=dashed");
      }
    }
    std::fprintf(f, "  }\n");
  };
  if (asg == nullptr) {
    for (const auto& s : shells) {
      if (s.tasks.empty()) continue;
      shellCluster(s);
    }
  } else {
    // One cluster per populated lane, shell clusters nested inside, so the
    // partition the engine actually runs is visible at a glance.
    std::map<sim::ShardId, std::vector<const ShellDump*>> lanes;
    for (const auto& s : shells) {
      if (!s.tasks.empty()) lanes[s.shard].push_back(&s);
    }
    for (const auto& [lane, group] : lanes) {
      std::fprintf(f,
                   "  subgraph \"cluster_shard%u\" {\n"
                   "    label=\"shard %u%s\";\n    style=dashed;\n",
                   lane, lane, lane == asg->hub ? " (memory hub)" : "");
      for (const ShellDump* s : group) shellCluster(*s);
      std::fprintf(f, "  }\n");
    }
  }
  // One edge per producer row: its remote link names the consumer row, and
  // the consumer row's task field names the destination task slot.
  for (const auto& s : shells) {
    for (const auto& r : s.streams) {
      if (r.is_producer == 0) continue;
      const auto it = by_id.find(r.remote_shell);
      if (it == by_id.end()) continue;
      const ShellDump& cs = *it->second;
      std::uint32_t ctask = 0;
      std::uint32_t cstalled = 0;
      for (const auto& cr : cs.streams) {
        if (cr.row == r.remote_row) {
          ctask = cr.task;
          cstalled = cr.stalled;
        }
      }
      // A watchdog stall latch on either side paints the edge orange; a
      // stream the last mode transition re-bound is painted blue. An edge
      // crossing lanes is dashed and carries the conservative lookahead
      // its putspace traffic is synchronized under.
      const bool stalled = r.stalled != 0 || cstalled != 0;
      const bool rebound =
          mode != nullptr && mode->diff_edges.count({s.id, r.row}) != 0;
      const bool cross = asg != nullptr && s.shard != cs.shard;
      std::string label = std::to_string(r.size) + " B";
      if (stalled) label += " STALL";
      if (rebound) label += " REBOUND";
      if (cross) {
        label += " xshard la=" + std::to_string(static_cast<unsigned long long>(asg->lookahead));
      }
      const char* color = stalled ? " color=orange penwidth=2"
                                  : (rebound ? " color=blue penwidth=2"
                                             : (cross ? " style=dashed color=gray40" : ""));
      std::fprintf(f, "  %s -> %s [label=\"%s\"%s];\n", nodeId(s.id, r.task).c_str(),
                   nodeId(cs.id, ctask).c_str(), label.c_str(), color);
    }
  }
  std::fprintf(f, "}\n");
}

void emitJson(std::FILE* f, const std::vector<ShellDump>& shells,
              const ModeAnnotations* mode = nullptr,
              const app::ShardAssignment* asg = nullptr) {
  std::fprintf(f, "{\n  \"schema\": \"eclipse-graph-dump-v1\",\n");
  if (asg != nullptr) {
    std::fprintf(f,
                 "  \"sharding\": {\"shards\": %u, \"lanes_used\": %u, \"hub\": %u, "
                 "\"lookahead\": %llu, \"rule\": \"%s\",\n    \"lanes\": {",
                 asg->shards, asg->lanesUsed(), asg->hub,
                 static_cast<unsigned long long>(asg->lookahead), asg->rule.c_str());
    for (std::size_t i = 0; i < shells.size(); ++i) {
      std::fprintf(f, "\"%s\": %u%s", shells[i].name.c_str(), shells[i].shard,
                   i + 1 < shells.size() ? ", " : "");
    }
    std::fprintf(f, "}},\n");
  }
  if (mode != nullptr) {
    std::fprintf(f,
                 "  \"mode\": {\"active\": \"%s\", \"from\": \"%s\", "
                 "\"transition\": {\"mmio_writes\": %llu, \"mmio_reads\": %llu, "
                 "\"cycles\": %llu, \"tasks_kept\": %u, \"streams_kept\": %u, "
                 "\"streams_rebound\": %u},\n",
                 mode->active.c_str(), mode->from.c_str(),
                 static_cast<unsigned long long>(mode->st.mmio_writes),
                 static_cast<unsigned long long>(mode->st.mmio_reads),
                 static_cast<unsigned long long>(mode->st.cycles), mode->st.tasks_kept,
                 mode->st.streams_kept, mode->st.streams_removed);
    std::fprintf(f, "    \"rebound_streams\": [");
    for (std::size_t i = 0; i < mode->rebound_streams.size(); ++i) {
      std::fprintf(f, "\"%s\"%s", mode->rebound_streams[i].c_str(),
                   i + 1 < mode->rebound_streams.size() ? ", " : "");
    }
    std::fprintf(f, "], \"kept_streams\": [");
    for (std::size_t i = 0; i < mode->kept_streams.size(); ++i) {
      std::fprintf(f, "\"%s\"%s", mode->kept_streams[i].c_str(),
                   i + 1 < mode->kept_streams.size() ? ", " : "");
    }
    std::fprintf(f, "]},\n");
  }
  std::fprintf(f, "  \"shells\": [\n");
  for (std::size_t i = 0; i < shells.size(); ++i) {
    const ShellDump& s = shells[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"id\": %u,\n      \"streams\": [", s.name.c_str(),
                 s.id);
    for (std::size_t j = 0; j < s.streams.size(); ++j) {
      const StreamRowDump& r = s.streams[j];
      std::fprintf(f,
                   "%s\n        {\"row\": %u, \"task\": %u, \"port\": %u, "
                   "\"is_producer\": %u, \"base\": %u, \"size\": %u, \"space\": %u, "
                   "\"remote_shell\": %u, \"remote_row\": %u, \"granted\": %u, "
                   "\"bytes_transferred\": %llu, \"stalled\": %u, \"stall_cycle\": %llu}",
                   j == 0 ? "" : ",", r.row, r.task, r.port, r.is_producer, r.base, r.size,
                   r.space, r.remote_shell, r.remote_row, r.granted,
                   static_cast<unsigned long long>(r.bytes), r.stalled,
                   static_cast<unsigned long long>(r.stall_cycle));
    }
    std::fprintf(f, "%s],\n      \"tasks\": [", s.streams.empty() ? "" : "\n      ");
    for (std::size_t j = 0; j < s.tasks.size(); ++j) {
      const TaskRowDump& t = s.tasks[j];
      std::fprintf(f,
                   "%s\n        {\"slot\": %u, \"enabled\": %u, \"budget\": %u, "
                   "\"info\": %u, \"busy_cycles\": %llu, \"blocked_count\": %u, "
                   "\"faulted\": %u, \"fault_cause\": \"%s\", \"fault_cycle\": %llu, "
                   "\"fault_row\": %u, \"fault_count\": %u}",
                   j == 0 ? "" : ",", t.slot, t.enabled, t.budget, t.info,
                   static_cast<unsigned long long>(t.busy), t.blocked, t.faulted,
                   shell::faultCauseName(static_cast<shell::FaultCause>(t.fault_cause)),
                   static_cast<unsigned long long>(t.fault_cycle), t.fault_row, t.fault_count);
    }
    std::fprintf(f, "%s]\n    }%s\n", s.tasks.empty() ? "" : "\n      ",
                 i + 1 < shells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dot_path = "graph.dot";
  std::string json_path = "graph.json";
  bool run = false;
  bool demo_fault = false;
  bool modes = false;
  std::uint32_t shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0 && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--run") == 0) {
      run = true;
    } else if (std::strcmp(argv[i], "--demo-fault") == 0) {
      demo_fault = true;
    } else if (std::strcmp(argv[i], "--modes") == 0) {
      modes = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--dot FILE] [--json FILE] [--run] [--demo-fault] [--modes]"
                   " [--shards N]\n",
                   argv[0]);
      return 2;
    }
  }

  app::EclipseInstance inst;
  if (shards > 0) inst.applyShardPlan(app::ShardPlan{.shards = shards});
  std::unique_ptr<app::DecodeApp> dec;
  std::unique_ptr<app::AudioDecodeApp> aud;
  ModeAnnotations ann;

  if (modes) {
    // A multi-mode decode driven through a live SD->HD segment switch; the
    // dump shows the hardware's view of the re-bound graph mid-transition
    // annotated with what the diff touched.
    const auto sd = bench::makeWorkload(96, 80, 2);
    const auto hd = bench::makeWorkload(128, 96, 2);
    app::DecodeAppConfig hd_cfg;
    hd_cfg.coef_buffer = 6144;
    hd_cfg.blocks_buffer = 3072;
    hd_cfg.res_buffer = 3072;
    hd_cfg.pix_buffer = 3072;
    dec = std::make_unique<app::DecodeApp>(
        inst, sd.bitstream,
        std::vector<app::DecodeApp::Mode>{{"sd", app::DecodeAppConfig{}}, {"hd", hd_cfg}});
    inst.run();
    if (!dec->done()) {
      std::fprintf(stderr, "graph_dump: SD segment did not complete\n");
      return 1;
    }
    const app::GraphDiff diff = app::diffGraphs(dec->modes().at("sd"), dec->modes().at("hd"));
    ann.from = dec->currentMode();
    ann.st = dec->switchSegment("hd", hd.bitstream);
    ann.active = dec->currentMode();
    std::set<std::string> touched_tasks(diff.tasks_updated.begin(), diff.tasks_updated.end());
    for (const app::TaskSpec& t : diff.tasks_added) touched_tasks.insert(t.name);
    for (const app::AppTask& t : dec->handle().tasks()) {
      if (touched_tasks.count(t.spec.name) != 0) {
        ann.diff_tasks.insert({t.shell->id(), static_cast<std::uint32_t>(t.id)});
      }
    }
    const std::set<std::string> added(diff.streams_removed.begin(), diff.streams_removed.end());
    for (const app::AppStream& s : dec->handle().streams()) {
      if (added.count(s.spec.name) != 0) {
        ann.diff_edges.insert({s.producer_shell->id(), s.producer_row});
        ann.rebound_streams.push_back(s.spec.name);
      } else {
        ann.kept_streams.push_back(s.spec.name);
      }
    }
    if (run) {
      inst.run();
      if (!dec->done()) {
        std::fprintf(stderr, "graph_dump: HD segment did not complete\n");
        return 1;
      }
    }
  } else {
    // Two concurrent applications — a hardware video decode and a software
    // audio decode — so the dump shows multi-application tables.
    const auto w = bench::makeWorkload(96, 80, 2);
    dec = std::make_unique<app::DecodeApp>(inst, w.bitstream);
    aud = std::make_unique<app::AudioDecodeApp>(
        inst, media::audio::encode(media::audio::generateTone(2048, 7)));
    if (run) {
      inst.run();
      if (!dec->done() || !aud->done()) {
        std::fprintf(stderr, "graph_dump: applications did not complete\n");
        return 1;
      }
    }
  }
  if (demo_fault) {
    inst.vldShell().latchFault(dec->vldTask(), shell::FaultCause::Injected, /*row=*/0,
                               "demo fault for rendering");
  }

  std::vector<ShellDump> shells;
  std::size_t valid_tasks = 0, valid_streams = 0;
  for (const auto& sh : inst.shells()) {
    shells.push_back(dumpShell(inst.piBus(), *sh));
    shells.back().shard = inst.shardAssignment().laneOf(shells.back().name);
    valid_tasks += shells.back().tasks.size();
    valid_streams += shells.back().streams.size();
  }
  if (valid_tasks == 0 || valid_streams == 0) {
    std::fprintf(stderr, "graph_dump: tables read back empty over the PI-bus\n");
    return 1;
  }

  std::FILE* fd = std::fopen(dot_path.c_str(), "w");
  std::FILE* fj = std::fopen(json_path.c_str(), "w");
  if (fd == nullptr || fj == nullptr) {
    std::fprintf(stderr, "graph_dump: cannot open output files\n");
    return 1;
  }
  const app::ShardAssignment* asg = inst.shardPlanned() ? &inst.shardAssignment() : nullptr;
  emitDot(fd, shells, modes ? &ann : nullptr, asg);
  emitJson(fj, shells, modes ? &ann : nullptr, asg);
  std::fclose(fd);
  std::fclose(fj);
  std::fprintf(stderr, "graph_dump: %zu tasks, %zu stream rows across %zu shells -> %s, %s\n",
               valid_tasks, valid_streams, shells.size(), dot_path.c_str(), json_path.c_str());
  return 0;
}
