// serve_client — load generator / e2e driver for eclipse_serve.
//
// Submits jobs over the ECL1 binary protocol with open-loop Poisson
// arrivals (seeded, wall-clock-free jitter: exponential inter-arrival
// gaps from a splitmix64 stream) spread round-robin across one connection
// per tenant, then collects every result and prints per-tenant latency.
//
// --spawn PATH runs the whole serving lifecycle in one process: fork/exec
// the daemon on an ephemeral port, drive the load, SIGTERM it mid-flight,
// and verify the rolling drain delivered every accepted result and the
// daemon exited 0 — the CI smoke leg in a single command.
//
// Exit status: 0 when every accepted job returned a result (and, with
// --spawn, the daemon drained cleanly).

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "eclipse/serve/client.hpp"
#include "eclipse/serve/histogram.hpp"

using namespace eclipse;

namespace {

void usage() {
  std::printf(
      "usage: serve_client [options]\n"
      "  --host H          server host (default 127.0.0.1)\n"
      "  --port N          server port (required unless --spawn)\n"
      "  --tenant NAME     add a tenant connection (repeatable;\n"
      "                    default: alice bob carol)\n"
      "  --jobs N          total submissions, round-robin over tenants (default 50)\n"
      "  --rate X          open-loop Poisson arrival rate in jobs/s\n"
      "                    (0 = back-to-back; default 0)\n"
      "  --seed N          arrival-jitter seed (default 1)\n"
      "  --spec S          jobspec for every submission (default: a small decode)\n"
      "  --deadline-ms X   append deadline_ms=X to every spec (lane promotion)\n"
      "  --metrics         fetch and print /metrics before disconnecting\n"
      "  --spawn PATH      fork/exec the eclipse_serve binary at PATH on an\n"
      "                    ephemeral port, drive it, SIGTERM mid-flight, check\n"
      "                    the drain (ignores --host/--port)\n"
      "  --quiet           per-result lines off\n");
}

/// splitmix64: the repo-wide seeded-jitter idiom (no wall-clock entropy).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Exponential inter-arrival gap for a Poisson process at `rate` jobs/s.
double expGapMs(std::uint64_t& state, double rate) {
  const double u =
      (static_cast<double>(splitmix64(state) >> 11) + 1.0) / 9007199254740993.0;  // (0,1]
  return -std::log(u) / rate * 1000.0;
}

struct SpawnedServer {
  pid_t pid = -1;
  int out_fd = -1;  ///< daemon stdout (read the port line; drain it after)
  std::uint16_t port = 0;
};

/// fork/exec the daemon with --port 0 and parse the bound port from its
/// startup line.
bool spawnServer(const std::string& path, SpawnedServer& out) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    ::execl(path.c_str(), path.c_str(), "--port", "0", "--workers", "2", "--quiet",
            static_cast<char*>(nullptr));
    std::perror("serve_client: exec eclipse_serve");
    _exit(127);
  }
  ::close(pipefd[1]);
  out.pid = pid;
  out.out_fd = pipefd[0];

  // Read the "listening on 127.0.0.1:PORT" line.
  std::string line;
  char c;
  while (::read(out.out_fd, &c, 1) == 1) {
    if (c == '\n') {
      const auto pos = line.rfind("127.0.0.1:");
      if (pos != std::string::npos) {
        out.port = static_cast<std::uint16_t>(std::atoi(line.c_str() + pos + 10));
        return out.port != 0;
      }
      line.clear();
    } else {
      line += c;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string spec = "clip width=48 height=32 frames=2";
  std::string spawn_path;
  std::vector<std::string> tenants;
  int port = 0, jobs = 50;
  double rate = 0.0, deadline_ms = 0.0;
  std::uint64_t seed = 1;
  bool quiet = false, want_metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--host") {
      host = next();
    } else if (a == "--port") {
      port = std::atoi(next());
    } else if (a == "--tenant") {
      tenants.emplace_back(next());
    } else if (a == "--jobs") {
      jobs = std::atoi(next());
    } else if (a == "--rate") {
      rate = std::atof(next());
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--spec") {
      spec = next();
    } else if (a == "--deadline-ms") {
      deadline_ms = std::atof(next());
    } else if (a == "--metrics") {
      want_metrics = true;
    } else if (a == "--spawn") {
      spawn_path = next();
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      usage();
      return a == "--help" || a == "-h" ? 0 : 2;
    }
  }
  if (tenants.empty()) tenants = {"alice", "bob", "carol"};

  SpawnedServer daemon;
  if (!spawn_path.empty()) {
    if (!spawnServer(spawn_path, daemon)) {
      std::fprintf(stderr, "serve_client: failed to spawn %s\n", spawn_path.c_str());
      return 1;
    }
    host = "127.0.0.1";
    port = daemon.port;
    std::printf("serve_client: spawned eclipse_serve pid %d on port %d\n",
                static_cast<int>(daemon.pid), port);
  }
  if (port <= 0) {
    usage();
    return 2;
  }

  int exit_code = 0;
  {
    std::vector<serve::Client> clients(tenants.size());
    try {
      for (std::size_t i = 0; i < tenants.size(); ++i) {
        clients[i].connect(host, static_cast<std::uint16_t>(port), tenants[i]);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve_client: %s\n", e.what());
      return 1;
    }

    std::string full_spec = spec;
    if (deadline_ms > 0.0) full_spec += " deadline_ms=" + std::to_string(deadline_ms);

    // Open-loop submission: the arrival clock never waits for results.
    std::vector<std::uint64_t> accepted(tenants.size(), 0), rejected(tenants.size(), 0);
    std::uint64_t jitter = seed;
    const auto t0 = std::chrono::steady_clock::now();
    for (int n = 0; n < jobs; ++n) {
      const std::size_t c = static_cast<std::size_t>(n) % tenants.size();
      try {
        const auto s = clients[c].submit(full_spec + " seed=" + std::to_string(n % 4));
        if (s.accepted) {
          ++accepted[c];
        } else {
          ++rejected[c];
          if (!quiet)
            std::printf("  [rejected] %s #%llu: %s %s\n", tenants[c].c_str(),
                        static_cast<unsigned long long>(s.req_id),
                        serve::rejectReasonName(s.reason), s.detail.c_str());
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "serve_client: submit failed: %s\n", e.what());
        return 1;
      }
      if (rate > 0.0 && n + 1 < jobs) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(expGapMs(jitter, rate)));
      }
    }

    // Mid-flight drain test: signal the daemon while results are pending.
    // The rolling drain must still deliver every accepted result below.
    if (daemon.pid > 0) {
      std::printf("serve_client: SIGTERM with results still in flight...\n");
      ::kill(daemon.pid, SIGTERM);
    }

    std::uint64_t results = 0, completed = 0;
    serve::Histogram latency;
    std::vector<serve::Histogram> per_tenant(tenants.size());
    try {
      for (std::size_t c = 0; c < clients.size(); ++c) {
        for (const serve::WireResult& r : clients[c].awaitAll()) {
          ++results;
          if (r.status == farm::JobStatus::Completed) ++completed;
          latency.record(r.serve_ms);
          per_tenant[c].record(r.serve_ms);
          if (!quiet)
            std::printf("  [%s] %s #%llu %s\n", farm::jobStatusName(r.status),
                        tenants[c].c_str(), static_cast<unsigned long long>(r.req_id),
                        serve::formatResultLine(r).c_str());
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve_client: awaiting results: %s\n", e.what());
      exit_code = 1;
    }

    if (want_metrics && exit_code == 0 && daemon.pid < 0) {
      try {
        std::printf("%s", clients[0].metricsText().c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "serve_client: metrics: %s\n", e.what());
      }
    }

    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::uint64_t total_accepted = 0, total_rejected = 0;
    for (std::size_t c = 0; c < tenants.size(); ++c) {
      total_accepted += accepted[c];
      total_rejected += rejected[c];
      std::printf("tenant %-12s accepted=%llu rejected=%llu p50=%.1fms p95=%.1fms p99=%.1fms\n",
                  tenants[c].c_str(), static_cast<unsigned long long>(accepted[c]),
                  static_cast<unsigned long long>(rejected[c]), per_tenant[c].percentile(0.5),
                  per_tenant[c].percentile(0.95), per_tenant[c].percentile(0.99));
    }
    std::printf("summary: %llu submitted, %llu accepted, %llu rejected, %llu results "
                "(%llu completed) in %.2fs | p50 %.1f ms p95 %.1f ms p99 %.1f ms\n",
                static_cast<unsigned long long>(jobs),
                static_cast<unsigned long long>(total_accepted),
                static_cast<unsigned long long>(total_rejected),
                static_cast<unsigned long long>(results),
                static_cast<unsigned long long>(completed), elapsed_s, latency.percentile(0.5),
                latency.percentile(0.95), latency.percentile(0.99));

    // Zero loss: every accepted job must have produced a result.
    if (results != total_accepted) {
      std::fprintf(stderr, "serve_client: LOST RESULTS: accepted=%llu results=%llu\n",
                   static_cast<unsigned long long>(total_accepted),
                   static_cast<unsigned long long>(results));
      exit_code = 1;
    }
  }  // clients disconnect here

  if (daemon.pid > 0) {
    // Drain the daemon's remaining stdout (its drained-summary lines), then
    // require a clean exit: 0 means its drain also saw zero dropped results.
    char buf[4096];
    ssize_t k;
    while ((k = ::read(daemon.out_fd, buf, sizeof buf)) > 0) {
      ::fwrite(buf, 1, static_cast<std::size_t>(k), stdout);
    }
    ::close(daemon.out_fd);
    int status = 0;
    ::waitpid(daemon.pid, &status, 0);
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::printf("serve_client: daemon %s\n", clean ? "drained cleanly (exit 0)" : "FAILED");
    if (!clean) exit_code = 1;
  }
  return exit_code;
}
