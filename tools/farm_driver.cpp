// farm_driver — batch-serve simulation jobs across worker threads.
//
// Reads a job list (one job per line: a name followed by key=value
// fields), runs it through an eclipse::farm::Farm, and writes per-job
// results as CSV and/or JSON plus an aggregate summary. See
// tools/farm_jobs.example and README.md ("Batch serving") for the format.
//
// Exit status: 0 when every accepted job completed (and verified when
// verification was on), 1 otherwise.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eclipse/farm/farm.hpp"

using namespace eclipse;

namespace {

void usage() {
  std::printf(
      "usage: farm_driver (--jobs FILE | --demo [N]) [options]\n"
      "  --jobs FILE    job list, one job per line (see tools/farm_jobs.example)\n"
      "  --demo [N]     built-in mixed list of N jobs (default 12)\n"
      "  --workers N    worker threads (default: hardware concurrency)\n"
      "  --queue N      queue capacity for admission control (default 64)\n"
      "  --shards N     default shard lanes per job (job lines override with shards=)\n"
      "  --lane-threads N  host-thread budget shared by all jobs' shard lanes\n"
      "                    (default: hardware concurrency; lanes are clamped, not rejected)\n"
      "  --retries N    default retry attempts per job, incl. the first (job lines\n"
      "                 override with retries=; default 1 = never retry)\n"
      "  --deadline N   default simulated-cycle deadline per job (deadline=; 0 = none)\n"
      "  --supervise-ms X  default hung-worker supervision timeout in wall-clock ms\n"
      "                    (supervise_ms=; 0 = unsupervised)\n"
      "  --submit-timeout-ms N  bounded-blocking admission: give up on a job\n"
      "                    whose queue slot does not open within N ms instead of\n"
      "                    blocking (0 = block forever, the default)\n"
      "  --csv FILE     write per-job results as CSV\n"
      "  --json FILE    write per-job results + farm metrics as JSON\n"
      "  --quiet        suppress the per-job progress lines\n"
      "\n"
      "job line:   <name> [key=value ...]\n"
      "  kind=decode|encode|decode+decode+...   applications on one instance\n"
      "  width= height= frames= seed= qscale= gop=N,M detail= motion= noise=\n"
      "  priority=high|normal|low   repeat=N   max_cycles=N   verify=0|1   shards=N\n"
      "  retries=N   backoff_ms=X   deadline=N   supervise_ms=X\n"
      "  config:KEY=VALUE           instance parameter (e.g. config:sram.size_bytes=65536)\n"
      "\n"
      "exit status: 0 only when every job ends Completed (quarantined, deadline-\n"
      "exceeded, stalled or errored jobs all fail the run).\n");
}

/// CLI-level defaults applied to every job a line does not override.
struct JobDefaults {
  unsigned shards = 1;
  int retries = 1;
  std::uint64_t deadline = 0;
  double supervise_ms = 0.0;
};

void applyDefaults(farm::Job& job, const JobDefaults& d) {
  job.shards = d.shards;
  job.retry.max_attempts = d.retries;
  job.deadline = d.deadline;
  job.supervise_ms = d.supervise_ms;
}

bool parseJobLine(const std::string& line, const JobDefaults& defaults,
                  std::vector<farm::Job>& out, std::string& err) {
  std::istringstream is(line);
  std::string name;
  if (!(is >> name)) return true;  // blank
  if (name[0] == '#') return true;

  farm::Job job;
  job.name = name;
  applyDefaults(job, defaults);
  farm::WorkloadDesc wd;  // shared by every app of the job
  std::vector<farm::AppKind> kinds{farm::AppKind::Decode};
  int repeat = 1;

  std::string field;
  while (is >> field) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) {
      err = "field without '=': " + field;
      return false;
    }
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    try {
      if (key == "kind") {
        kinds.clear();
        std::istringstream ks(val);
        std::string k;
        while (std::getline(ks, k, '+')) {
          if (k == "decode") {
            kinds.push_back(farm::AppKind::Decode);
          } else if (k == "encode") {
            kinds.push_back(farm::AppKind::Encode);
          } else {
            err = "unknown kind: " + k;
            return false;
          }
        }
        if (kinds.empty()) {
          err = "empty kind list";
          return false;
        }
      } else if (key == "width") {
        wd.width = std::stoi(val);
      } else if (key == "height") {
        wd.height = std::stoi(val);
      } else if (key == "frames") {
        wd.frames = std::stoi(val);
      } else if (key == "seed") {
        wd.seed = std::stoull(val);
      } else if (key == "qscale") {
        wd.qscale = std::stoi(val);
      } else if (key == "gop") {
        const auto comma = val.find(',');
        wd.gop_n = std::stoi(val.substr(0, comma));
        if (comma != std::string::npos) wd.gop_m = std::stoi(val.substr(comma + 1));
      } else if (key == "detail") {
        wd.detail = std::stoi(val);
      } else if (key == "motion") {
        wd.motion_speed = std::stoi(val);
      } else if (key == "noise") {
        wd.noise_level = std::stod(val);
      } else if (key == "priority") {
        if (val == "high") {
          job.priority = farm::Priority::High;
        } else if (val == "normal") {
          job.priority = farm::Priority::Normal;
        } else if (val == "low") {
          job.priority = farm::Priority::Low;
        } else {
          err = "unknown priority: " + val;
          return false;
        }
      } else if (key == "repeat") {
        repeat = std::stoi(val);
      } else if (key == "max_cycles") {
        job.max_cycles = std::stoull(val);
      } else if (key == "verify") {
        job.verify = val != "0" && val != "false";
      } else if (key == "shards") {
        job.shards = static_cast<std::uint32_t>(std::stoul(val));
      } else if (key == "retries") {
        job.retry.max_attempts = std::stoi(val);
      } else if (key == "backoff_ms") {
        job.retry.backoff_ms = std::stod(val);
      } else if (key == "deadline") {
        job.deadline = std::stoull(val);
      } else if (key == "supervise_ms") {
        job.supervise_ms = std::stod(val);
      } else if (key.rfind("config:", 0) == 0) {
        job.config.set(key.substr(7), val);
      } else {
        err = "unknown field: " + key;
        return false;
      }
    } catch (const std::exception&) {
      err = "bad value for " + key + ": " + val;
      return false;
    }
  }

  job.apps.clear();
  for (farm::AppKind k : kinds) job.apps.push_back(farm::AppSpec{k, wd});
  for (int i = 0; i < repeat; ++i) {
    farm::Job j = job;
    if (repeat > 1) j.name += "-" + std::to_string(i);
    out.push_back(std::move(j));
  }
  return true;
}

std::vector<farm::Job> demoJobs(int n, const JobDefaults& defaults) {
  std::vector<farm::Job> jobs;
  for (int i = 0; i < n; ++i) {
    farm::Job j;
    j.name = "demo-" + std::to_string(i);
    applyDefaults(j, defaults);
    switch (i % 4) {
      case 0:  // pinned decode
        break;
      case 1:  // decode of a different clip
        j.apps[0].workload.qscale = 20;
        break;
      case 2:  // encode
        j.apps[0].kind = farm::AppKind::Encode;
        break;
      case 3:  // dual-decode mix on a larger SRAM
        j.apps.push_back(farm::AppSpec{});
        j.config.set("sram.size_bytes", std::int64_t{64 * 1024});
        break;
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void writeCsv(const std::string& path, const std::vector<farm::JobResult>& results) {
  std::ofstream os(path);
  os << "id,name,tenant,status,cause,attempts,sim_cycles,sim_events,macroblocks,bit_exact,"
        "psnr_db,faults,stalls,worker,lanes,reused,wall_ms,latency_ms,error\n";
  for (const auto& r : results) {
    os << r.id << ',' << r.name << ',' << r.tenant << ',' << farm::jobStatusName(r.status) << ','
       << farm::jobErrorName(r.cause) << ',' << r.attempts << ',' << r.sim_cycles
       << ',' << r.sim_events << ',' << r.macroblocks << ',' << (r.bit_exact ? 1 : 0) << ','
       << r.psnr_db << ',' << r.faults_latched << ',' << r.stalls_latched << ',' << r.worker
       << ',' << r.lanes << ',' << (r.reused_instance ? 1 : 0) << ',' << r.wall_ms << ','
       << r.latency_ms << ',' << r.error << '\n';
  }
}

void writeJson(const std::string& path, const std::vector<farm::JobResult>& results,
               const farm::FarmMetrics& m, int workers) {
  std::ofstream os(path);
  os << "{\n  \"schema\": \"eclipse-farm-results-v1\",\n";
  os << "  \"workers\": " << workers << ",\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\"id\": " << r.id << ", \"name\": \"" << jsonEscape(r.name)
       << (r.tenant.empty() ? "" : "\", \"tenant\": \"" + jsonEscape(r.tenant))
       << "\", \"status\": \"" << farm::jobStatusName(r.status)
       << "\", \"cause\": \"" << farm::jobErrorName(r.cause)
       << "\", \"attempts\": " << r.attempts
       << ", \"sim_cycles\": " << r.sim_cycles << ", \"sim_events\": " << r.sim_events
       << ", \"macroblocks\": " << r.macroblocks
       << ", \"bit_exact\": " << (r.bit_exact ? "true" : "false")
       << ", \"psnr_db\": " << r.psnr_db << ", \"worker\": " << r.worker
       << ", \"lanes\": " << r.lanes
       << ", \"reused\": " << (r.reused_instance ? "true" : "false")
       << ", \"wall_ms\": " << r.wall_ms << ", \"latency_ms\": " << r.latency_ms
       << (r.error.empty() ? "" : ", \"error\": \"" + jsonEscape(r.error) + "\"") << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"metrics\": {\"accepted\": " << m.accepted << ", \"rejected\": " << m.rejected
     << ", \"completed\": " << m.completed << ", \"failed\": " << m.failed
     << ", \"deadline_exceeded\": " << m.deadline_exceeded
     << ", \"fault_latched\": " << m.fault_latched << ", \"worker_lost\": " << m.worker_lost
     << ", \"quarantined\": " << m.quarantined << ", \"retried\": " << m.retried
     << ", \"retry_succeeded\": " << m.retry_succeeded
     << ", \"workers_replaced\": " << m.workers_replaced
     << ", \"jobs_per_s\": " << m.jobs_per_s << ", \"p50_ms\": " << m.p50_ms
     << ", \"p95_ms\": " << m.p95_ms << ", \"p99_ms\": " << m.p99_ms
     << ", \"reused\": " << m.reused() << ", \"cold_builds\": " << m.coldBuilds() << "},\n";
  // Per-lane *now* gauges: 0/0 after a drained run, but live snapshots
  // (e.g. from the serving tier's telemetry) show depth + head age here.
  static const char* kLaneNames[3] = {"high", "normal", "low"};
  os << "  \"lanes\": [";
  for (int i = 0; i < 3; ++i) {
    const farm::LaneGauge& g = m.lanes[static_cast<std::size_t>(i)];
    os << (i > 0 ? ", " : "") << "{\"lane\": \"" << kLaneNames[i]
       << "\", \"depth\": " << g.depth << ", \"oldest_ms\": " << g.oldest_ms << "}";
  }
  os << "]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string jobs_path, csv_path, json_path;
  int demo = 0;
  int submit_timeout_ms = 0;
  bool quiet = false;
  JobDefaults defaults;
  farm::FarmOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--jobs") {
      jobs_path = next();
    } else if (a == "--demo") {
      demo = i + 1 < argc && argv[i + 1][0] != '-' ? std::atoi(argv[++i]) : 12;
    } else if (a == "--workers") {
      opts.workers = std::atoi(next());
    } else if (a == "--queue") {
      opts.queue_capacity = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--shards") {
      defaults.shards = static_cast<unsigned>(std::atoi(next()));
      if (defaults.shards == 0) defaults.shards = 1;
    } else if (a == "--lane-threads") {
      opts.lane_threads = std::atoi(next());
    } else if (a == "--retries") {
      defaults.retries = std::atoi(next());
    } else if (a == "--deadline") {
      defaults.deadline = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--supervise-ms") {
      defaults.supervise_ms = std::atof(next());
    } else if (a == "--submit-timeout-ms") {
      submit_timeout_ms = std::atoi(next());
    } else if (a == "--csv") {
      csv_path = next();
    } else if (a == "--json") {
      json_path = next();
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      usage();
      return a == "--help" || a == "-h" ? 0 : 2;
    }
  }
  if (jobs_path.empty() && demo == 0) {
    usage();
    return 2;
  }

  std::vector<farm::Job> jobs;
  if (!jobs_path.empty()) {
    std::ifstream is(jobs_path);
    if (!is) {
      std::fprintf(stderr, "farm_driver: cannot open %s\n", jobs_path.c_str());
      return 2;
    }
    std::string line, err;
    int line_no = 0;
    while (std::getline(is, line)) {
      ++line_no;
      if (!parseJobLine(line, defaults, jobs, err)) {
        std::fprintf(stderr, "farm_driver: %s:%d: %s\n", jobs_path.c_str(), line_no,
                     err.c_str());
        return 2;
      }
    }
  } else {
    jobs = demoJobs(demo, defaults);
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "farm_driver: no jobs\n");
    return 2;
  }

  farm::Farm f(opts);
  const int workers = f.workerCount();
  std::printf("farm_driver: %zu job(s) on %d worker(s), queue capacity %zu\n", jobs.size(),
              workers, opts.queue_capacity);

  std::vector<std::future<farm::JobResult>> futs;
  bool all_ok = true;
  if (submit_timeout_ms > 0) {
    // Bounded-blocking admission: a job that cannot get a queue slot in
    // time is dropped (and fails the run) instead of stalling the feed.
    futs.reserve(jobs.size());
    for (auto& job : jobs) {
      const std::string name = job.name;
      farm::SubmitTicket t =
          f.submitFor(std::move(job), std::chrono::milliseconds(submit_timeout_ms));
      if (t.admission == farm::Admission::Accepted) {
        futs.push_back(std::move(t.result));
      } else {
        all_ok = false;
        std::printf("  [%s] %-16s admission timed out after %d ms\n",
                    farm::admissionName(t.admission), name.c_str(), submit_timeout_ms);
      }
    }
    jobs.clear();
  } else {
    futs = f.submitBatch(std::move(jobs));
  }
  std::vector<farm::JobResult> results;
  results.reserve(futs.size());
  for (auto& fut : futs) {
    farm::JobResult r = fut.get();
    // Strict: any terminal state other than a clean Completed (quarantine,
    // deadline, stall, latched fault, config error) fails the run.
    const bool ok = r.status == farm::JobStatus::Completed && r.error.empty() &&
                    r.faults_latched == 0;
    all_ok = all_ok && ok;
    if (!quiet) {
      std::printf("  [%s] %-16s %10llu cycles %8llu MBs  worker %d lanes %u attempt%s %d %s%s%s%s\n",
                  farm::jobStatusName(r.status), r.name.c_str(),
                  static_cast<unsigned long long>(r.sim_cycles),
                  static_cast<unsigned long long>(r.macroblocks), r.worker, r.lanes,
                  r.attempts == 1 ? "" : "s", r.attempts,
                  r.reused_instance ? "(reused)" : "(cold)",
                  r.cause == farm::JobError::None ? "" : " cause: ",
                  r.cause == farm::JobError::None ? "" : farm::jobErrorName(r.cause),
                  r.error.empty() ? "" : " error: ");
      if (!quiet && !r.error.empty()) std::printf("      %s\n", r.error.c_str());
    }
    results.push_back(std::move(r));
  }

  const farm::FarmMetrics m = f.metrics();
  std::printf(
      "summary: %llu completed, %llu failed, %llu rejected | %.1f jobs/s | "
      "latency p50 %.1f ms p95 %.1f ms p99 %.1f ms | %llu reused / %llu cold builds\n",
      static_cast<unsigned long long>(m.completed), static_cast<unsigned long long>(m.failed),
      static_cast<unsigned long long>(m.rejected), m.jobs_per_s, m.p50_ms, m.p95_ms, m.p99_ms,
      static_cast<unsigned long long>(m.reused()),
      static_cast<unsigned long long>(m.coldBuilds()));
  std::printf(
      "causes: %llu deadline-exceeded, %llu fault-latched, %llu worker-lost, "
      "%llu quarantined | %llu retried, %llu retry-succeeded, %llu workers replaced\n",
      static_cast<unsigned long long>(m.deadline_exceeded),
      static_cast<unsigned long long>(m.fault_latched),
      static_cast<unsigned long long>(m.worker_lost),
      static_cast<unsigned long long>(m.quarantined),
      static_cast<unsigned long long>(m.retried),
      static_cast<unsigned long long>(m.retry_succeeded),
      static_cast<unsigned long long>(m.workers_replaced));
  for (const farm::QuarantineRecord& q : f.quarantined()) {
    std::printf("quarantined: job %llu (%s) after %d attempt(s), %d worker(s) killed\n",
                static_cast<unsigned long long>(q.id), q.name.c_str(), q.attempts,
                q.worker_kills);
  }

  if (!csv_path.empty()) writeCsv(csv_path, results);
  if (!json_path.empty()) writeJson(json_path, results, m, workers);
  return all_ok ? 0 : 1;
}
