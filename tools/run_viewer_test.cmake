execute_process(COMMAND ${SIM_DRIVER} --width 64 --height 48 --frames 4
                        --csv ${WORK_DIR}/viewer_test
                RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "sim_driver failed: ${rc1}")
endif()
execute_process(COMMAND ${VIEWER} ${WORK_DIR}/viewer_test_buffer_fill.csv --width 60
                OUTPUT_VARIABLE out RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "trace_viewer failed: ${rc2}")
endif()
string(FIND "${out}" "rlsq_in_fill" found)
if(found EQUAL -1)
  message(FATAL_ERROR "viewer output missing series name:\n${out}")
endif()
