// Stand-alone performance viewer.
//
// Section 7: "the viewer is separated from the simulation environment, and
// can also be used to visualize the hardware measurements of Section 5.4."
// This tool reads the CSV files the simulator (or sim_driver --csv) writes
// and renders them as the same text charts / activity lanes, entirely
// independent of the simulation libraries' timed machinery.
//
// Usage: trace_viewer FILE.csv [--width N] [--height N] [--lanes]
//   --lanes renders 0..1-valued columns as activity strips instead of
//   area charts.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eclipse/app/trace.hpp"
#include "eclipse/sim/stats.hpp"

using namespace eclipse;

namespace {

struct Csv {
  std::vector<std::string> columns;         // excluding the cycle column
  std::vector<sim::TimeSeries> series;
};

/// Parses "cycle,name1,name2,..." CSV as written by app::toCsv. Empty
/// cells mean "no sample for this series at this cycle".
Csv parseCsv(std::istream& in) {
  Csv csv;
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("trace_viewer: empty file");
  {
    std::stringstream header(line);
    std::string cell;
    bool first = true;
    while (std::getline(header, cell, ',')) {
      if (first) {
        if (cell != "cycle") throw std::runtime_error("trace_viewer: first column must be 'cycle'");
        first = false;
        continue;
      }
      csv.columns.push_back(cell);
      csv.series.emplace_back(cell);
    }
  }
  if (csv.columns.empty()) throw std::runtime_error("trace_viewer: no data columns");

  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream row(line);
    std::string cell;
    if (!std::getline(row, cell, ',')) continue;
    sim::Cycle cycle = 0;
    try {
      cycle = static_cast<sim::Cycle>(std::stoull(cell));
    } catch (const std::exception&) {
      throw std::runtime_error("trace_viewer: bad cycle value at line " + std::to_string(line_no));
    }
    for (std::size_t col = 0; col < csv.columns.size(); ++col) {
      if (!std::getline(row, cell, ',')) break;
      if (cell.empty()) continue;
      try {
        csv.series[col].sample(cycle, std::stod(cell));
      } catch (const std::exception&) {
        throw std::runtime_error("trace_viewer: bad value at line " + std::to_string(line_no));
      }
    }
  }
  return csv;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  app::ChartOptions opts;
  opts.width = 100;
  opts.height = 6;
  bool lanes = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--width" && i + 1 < argc) {
      opts.width = std::atoi(argv[++i]);
    } else if (a == "--height" && i + 1 < argc) {
      opts.height = std::atoi(argv[++i]);
    } else if (a == "--lanes") {
      lanes = true;
    } else if (!a.empty() && a[0] != '-') {
      path = a;
    } else {
      std::fprintf(stderr, "usage: trace_viewer FILE.csv [--width N] [--height N] [--lanes]\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_viewer FILE.csv [--width N] [--height N] [--lanes]\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_viewer: cannot open %s\n", path.c_str());
    return 1;
  }
  try {
    const Csv csv = parseCsv(in);
    std::vector<const sim::TimeSeries*> refs;
    refs.reserve(csv.series.size());
    for (const auto& s : csv.series) refs.push_back(&s);
    if (lanes) {
      std::printf("%s", app::renderActivityStrips(refs, opts.width).c_str());
    } else {
      std::printf("%s", app::renderStack(refs, opts).c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_viewer: %s\n", e.what());
    return 1;
  }
  return 0;
}
