#include "eclipse/kpn/graph.hpp"

#include <exception>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace eclipse::kpn {

ByteFifo& TaskContext::in(int port) const {
  if (port < 0 || port >= static_cast<int>(inputs_.size()) || inputs_[port] == nullptr) {
    throw std::out_of_range("TaskContext: task '" + name_ + "' has no input port " +
                            std::to_string(port));
  }
  return *inputs_[port];
}

ByteFifo& TaskContext::out(int port) const {
  if (port < 0 || port >= static_cast<int>(outputs_.size()) || outputs_[port] == nullptr) {
    throw std::out_of_range("TaskContext: task '" + name_ + "' has no output port " +
                            std::to_string(port));
  }
  return *outputs_[port];
}

int Graph::addTask(std::string name, TaskFn fn) {
  tasks_.push_back(TaskNode{std::move(name), std::move(fn), {}, {}});
  return static_cast<int>(tasks_.size()) - 1;
}

int Graph::connect(int producer, int out_port, int consumer, int in_port, std::size_t capacity) {
  if (producer < 0 || producer >= static_cast<int>(tasks_.size()) || consumer < 0 ||
      consumer >= static_cast<int>(tasks_.size())) {
    throw std::out_of_range("Graph::connect: unknown task id");
  }
  TaskNode& prod = tasks_[producer];
  TaskNode& cons = tasks_[consumer];
  if (prod.outputs.count(out_port) != 0) {
    throw std::logic_error("Graph::connect: output port " + std::to_string(out_port) +
                           " of '" + prod.name + "' already connected");
  }
  if (cons.inputs.count(in_port) != 0) {
    throw std::logic_error("Graph::connect: input port " + std::to_string(in_port) + " of '" +
                           cons.name + "' already connected");
  }
  auto fifo = std::make_unique<ByteFifo>(
      capacity, prod.name + ":" + std::to_string(out_port) + "->" + cons.name + ":" +
                    std::to_string(in_port));
  ByteFifo* raw = fifo.get();
  edges_.push_back(Edge{producer, out_port, consumer, in_port, std::move(fifo)});
  prod.outputs[out_port] = raw;
  cons.inputs[in_port] = raw;
  return static_cast<int>(edges_.size()) - 1;
}

void Graph::run() {
  std::vector<std::thread> threads;
  threads.reserve(tasks_.size());
  std::mutex error_mu;
  std::exception_ptr first_error;
  failed_task_.clear();

  for (auto& node : tasks_) {
    threads.emplace_back([this, &node, &error_mu, &first_error] {
      TaskContext ctx;
      ctx.name_ = node.name;
      // Densify the sparse port maps into indexable vectors.
      auto densify = [](const std::map<int, ByteFifo*>& ports) {
        std::vector<ByteFifo*> v;
        for (const auto& [idx, fifo] : ports) {
          if (idx >= static_cast<int>(v.size())) v.resize(static_cast<std::size_t>(idx) + 1);
          v[static_cast<std::size_t>(idx)] = fifo;
        }
        return v;
      };
      ctx.inputs_ = densify(node.inputs);
      ctx.outputs_ = densify(node.outputs);
      try {
        node.fn(ctx);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
          failed_task_ = node.name;  // attribution only; the exception is rethrown unchanged
        }
      }
      // Kahn EOF propagation: a finished task closes its outputs so that
      // consumers drain and terminate rather than block forever. Closing on
      // the error path too unblocks the rest of the network.
      for (auto& [idx, fifo] : node.outputs) fifo->close();
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::string Graph::describe() const {
  std::ostringstream ss;
  ss << "KPN graph: " << tasks_.size() << " tasks, " << edges_.size() << " streams\n";
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    ss << "  task[" << i << "] " << tasks_[i].name << " (in=" << tasks_[i].inputs.size()
       << ", out=" << tasks_[i].outputs.size() << ")\n";
  }
  for (const auto& e : edges_) {
    ss << "  stream " << tasks_[static_cast<std::size_t>(e.producer)].name << "." << e.out_port
       << " -> " << tasks_[static_cast<std::size_t>(e.consumer)].name << "." << e.in_port
       << " [" << e.fifo->capacity() << " B]\n";
  }
  return ss.str();
}

std::string Graph::toDot(const std::string& graph_name) const {
  std::ostringstream ss;
  ss << "digraph \"" << graph_name << "\" {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box];\n";
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    ss << "  t" << i << " [label=\"" << tasks_[i].name << "\"";
    if (tasks_[i].name == failed_task_ && !failed_task_.empty()) {
      ss << ", style=filled, fillcolor=salmon";
    }
    ss << "];\n";
  }
  for (const auto& e : edges_) {
    ss << "  t" << e.producer << " -> t" << e.consumer << " [label=\"" << e.out_port << "->"
       << e.in_port << " (" << e.fifo->capacity() << " B)\"];\n";
  }
  ss << "}\n";
  return ss.str();
}

void Graph::setTimeout(std::chrono::milliseconds t) {
  for (auto& e : edges_) e.fifo->setTimeout(t);
}

}  // namespace eclipse::kpn
