#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace eclipse::kpn {

/// Thrown when a blocking FIFO operation times out — in a correctly sized
/// Kahn network this indicates deadlock (insufficient buffer capacity or a
/// cyclic dependency), which Kahn semantics turn into permanent blocking.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bounded byte FIFO with blocking semantics — the functional-model stream.
///
/// Exactly one producer and one consumer (the paper's streams have one
/// producer; multicast is expressed with an explicit fork task). Reading
/// from a stream with insufficient data blocks the consumer; writing to a
/// full stream blocks the producer, which is what bounds Kahn's otherwise
/// unbounded FIFOs to a finite buffer.
class ByteFifo {
 public:
  explicit ByteFifo(std::size_t capacity, std::string name = {})
      : capacity_(capacity), name_(std::move(name)) {
    if (capacity_ == 0) throw std::invalid_argument("ByteFifo: capacity must be > 0");
    data_.resize(capacity_);
  }

  ByteFifo(const ByteFifo&) = delete;
  ByteFifo& operator=(const ByteFifo&) = delete;

  /// Blocks until `out.size()` bytes are available (or EOF). Returns false
  /// if the stream closed before the request could be fully satisfied.
  bool readAll(std::span<std::uint8_t> out) {
    std::unique_lock lock(mu_);
    std::size_t done = 0;
    while (done < out.size()) {
      waitFor(lock, [&] { return fill_ > 0 || closed_; });
      if (fill_ == 0 && closed_) return false;
      const std::size_t n = std::min(out.size() - done, fill_);
      popLocked(out.subspan(done, n));
      done += n;
      cv_.notify_all();
    }
    return true;
  }

  /// Blocks until at least one byte is available; reads up to out.size().
  /// Returns the number of bytes read; 0 means EOF.
  std::size_t readSome(std::span<std::uint8_t> out) {
    std::unique_lock lock(mu_);
    waitFor(lock, [&] { return fill_ > 0 || closed_; });
    if (fill_ == 0) return 0;
    const std::size_t n = std::min(out.size(), fill_);
    popLocked(out.subspan(0, n));
    cv_.notify_all();
    return n;
  }

  /// Blocks until there is room for all of `in`, then appends it.
  /// Throws std::logic_error when writing to a closed stream.
  void write(std::span<const std::uint8_t> in) {
    std::unique_lock lock(mu_);
    std::size_t done = 0;
    while (done < in.size()) {
      if (closed_) throw std::logic_error("ByteFifo: write after close on " + name_);
      waitFor(lock, [&] { return fill_ < capacity_ || closed_; });
      if (closed_) throw std::logic_error("ByteFifo: write after close on " + name_);
      const std::size_t n = std::min(in.size() - done, capacity_ - fill_);
      pushLocked(in.subspan(done, n));
      done += n;
      cv_.notify_all();
    }
  }

  /// Marks end-of-stream; readers drain remaining bytes, then see EOF.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] std::size_t fill() const {
    std::lock_guard lock(mu_);
    return fill_;
  }
  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }
  [[nodiscard]] std::uint64_t totalProduced() const {
    std::lock_guard lock(mu_);
    return produced_;
  }
  [[nodiscard]] std::uint64_t totalConsumed() const {
    std::lock_guard lock(mu_);
    return consumed_;
  }
  [[nodiscard]] std::size_t maxFill() const {
    std::lock_guard lock(mu_);
    return max_fill_;
  }

  /// Blocking-wait timeout; a Kahn deadlock surfaces as DeadlockError.
  void setTimeout(std::chrono::milliseconds t) { timeout_ = t; }

 private:
  template <typename Pred>
  void waitFor(std::unique_lock<std::mutex>& lock, Pred pred) {
    if (!cv_.wait_for(lock, timeout_, pred)) {
      throw DeadlockError("ByteFifo: blocked > timeout on stream '" + name_ +
                          "' (likely Kahn deadlock / undersized buffer)");
    }
  }

  void popLocked(std::span<std::uint8_t> out) {
    for (auto& b : out) {
      b = data_[head_];
      head_ = (head_ + 1) % capacity_;
    }
    fill_ -= out.size();
    consumed_ += out.size();
  }

  void pushLocked(std::span<const std::uint8_t> in) {
    for (auto b : in) {
      data_[tail_] = b;
      tail_ = (tail_ + 1) % capacity_;
    }
    fill_ += in.size();
    produced_ += in.size();
    max_fill_ = std::max(max_fill_, fill_);
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::uint8_t> data_;
  std::size_t capacity_;
  std::string name_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t fill_ = 0;
  std::size_t max_fill_ = 0;
  bool closed_ = false;
  std::uint64_t produced_ = 0;
  std::uint64_t consumed_ = 0;
  std::chrono::milliseconds timeout_{30000};
};

}  // namespace eclipse::kpn
