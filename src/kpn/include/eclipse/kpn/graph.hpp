#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "eclipse/kpn/fifo.hpp"

namespace eclipse::kpn {

class Graph;

/// Per-task view of the network handed to the task function.
///
/// Ports are addressed by small integer ids, exactly like the port_id
/// argument of the Eclipse task-level interface; this keeps functional task
/// code structurally identical to its later coprocessor refinement.
class TaskContext {
 public:
  ByteFifo& in(int port) const;
  ByteFifo& out(int port) const;
  [[nodiscard]] int inputCount() const { return static_cast<int>(inputs_.size()); }
  [[nodiscard]] int outputCount() const { return static_cast<int>(outputs_.size()); }
  [[nodiscard]] const std::string& taskName() const { return name_; }

  /// Reads one trivially-copyable value; false on EOF.
  template <typename T>
  bool read(int port, T& value) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t buf[sizeof(T)];
    if (!in(port).readAll(buf)) return false;
    std::memcpy(&value, buf, sizeof(T));
    return true;
  }

  /// Writes one trivially-copyable value.
  template <typename T>
  void write(int port, const T& value) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t buf[sizeof(T)];
    std::memcpy(buf, &value, sizeof(T));
    out(port).write(buf);
  }

 private:
  friend class Graph;
  std::string name_;
  std::vector<ByteFifo*> inputs_;
  std::vector<ByteFifo*> outputs_;
};

using TaskFn = std::function<void(TaskContext&)>;

/// Runtime-configurable Kahn Process Network (the paper's application
/// model): tasks as nodes, bounded byte streams as edges. Running the graph
/// executes every task on its own thread; Kahn semantics guarantee the
/// observable stream contents are schedule-independent.
class Graph {
 public:
  /// Adds a task; returns its node id.
  int addTask(std::string name, TaskFn fn);

  /// Connects producer's output port to consumer's input port with a FIFO
  /// of `capacity` bytes. Each port may be connected exactly once.
  /// Returns the edge id.
  int connect(int producer, int out_port, int consumer, int in_port, std::size_t capacity);

  /// Executes the network to completion. A task's output streams close
  /// automatically when its function returns, propagating EOF downstream.
  /// Rethrows the first task exception; DeadlockError indicates an
  /// undersized buffer or a dependency cycle.
  void run();

  /// Name of the task whose exception run() rethrew (fault attribution for
  /// the functional model); empty when the last run completed cleanly.
  [[nodiscard]] const std::string& failedTask() const { return failed_task_; }

  [[nodiscard]] std::size_t taskCount() const { return tasks_.size(); }
  [[nodiscard]] std::size_t edgeCount() const { return edges_.size(); }
  [[nodiscard]] const std::string& taskName(int id) const { return tasks_.at(id).name; }
  [[nodiscard]] ByteFifo& edge(int id) { return *edges_.at(id).fifo; }
  [[nodiscard]] const ByteFifo& edge(int id) const { return *edges_.at(id).fifo; }

  /// Human-readable structure dump (nodes and edges), used to reproduce the
  /// Figure-2 style network listings.
  [[nodiscard]] std::string describe() const;

  /// Graphviz DOT rendering of the network (tasks as nodes, streams as
  /// edges labelled with port ids and buffer capacity).
  [[nodiscard]] std::string toDot(const std::string& graph_name = "kpn") const;

  /// Applies a blocking timeout to every edge (deadlock detection budget).
  void setTimeout(std::chrono::milliseconds t);

 private:
  struct TaskNode {
    std::string name;
    TaskFn fn;
    std::map<int, ByteFifo*> inputs;   // in_port -> fifo
    std::map<int, ByteFifo*> outputs;  // out_port -> fifo
  };
  struct Edge {
    int producer;
    int out_port;
    int consumer;
    int in_port;
    std::unique_ptr<ByteFifo> fifo;
  };

  std::vector<TaskNode> tasks_;
  std::vector<Edge> edges_;
  std::string failed_task_;
};

}  // namespace eclipse::kpn
