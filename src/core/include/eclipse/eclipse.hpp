#pragma once

/// \file eclipse.hpp
/// Umbrella header: the public API of the Eclipse library.
///
/// Layering (bottom-up):
///   eclipse::sim    — deterministic event-driven cycle-level kernel
///   eclipse::mem    — SRAM / DRAM / buses / message network / PI-bus
///   eclipse::kpn    — functional Kahn Process Network runtime
///   eclipse::media  — MPEG-2-like codec substrate (stages + golden codecs)
///   eclipse::shell  — the coprocessor shell (the paper's contribution)
///   eclipse::coproc — coprocessors programmed against the five primitives
///   eclipse::app    — instance builder, application graphs, trace output
///   eclipse::farm   — multi-instance batch-serving farm (worker threads)
///
/// Quickstart: see examples/quickstart.cpp.

#include "eclipse/app/audio_app.hpp"
#include "eclipse/app/av_app.hpp"
#include "eclipse/app/decode_app.hpp"
#include "eclipse/app/encode_app.hpp"
#include "eclipse/app/instance.hpp"
#include "eclipse/app/trace.hpp"
#include "eclipse/farm/farm.hpp"
#include "eclipse/kpn/graph.hpp"
#include "eclipse/media/audio.hpp"
#include "eclipse/media/codec.hpp"
#include "eclipse/media/metrics.hpp"
#include "eclipse/media/mux.hpp"
#include "eclipse/media/video_gen.hpp"
#include "eclipse/shell/shell.hpp"
#include "eclipse/sim/config.hpp"
#include "eclipse/sim/simulator.hpp"
