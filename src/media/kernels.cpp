#include "eclipse/media/kernels.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "kernels_impl.hpp"

namespace eclipse::media::kernels {

namespace {

bool cpuSupports(Backend b) {
  switch (b) {
    case Backend::Scalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Backend::Sse2: {
      __builtin_cpu_init();
      return __builtin_cpu_supports("sse2") != 0;
    }
    case Backend::Avx2: {
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx2") != 0;
    }
    case Backend::Neon:
      return false;
#elif defined(__aarch64__)
    case Backend::Sse2:
    case Backend::Avx2:
      return false;
    case Backend::Neon:
      return true;  // NEON is architectural on AArch64
#else
    case Backend::Sse2:
    case Backend::Avx2:
    case Backend::Neon:
      return false;
#endif
  }
  return false;
}

const KernelTable* tableFor(Backend b) {
  switch (b) {
    case Backend::Scalar: return &detail::scalarTable();
    case Backend::Sse2: return detail::sse2Table();
    case Backend::Avx2: return detail::avx2Table();
    case Backend::Neon: return detail::neonTable();
  }
  return nullptr;
}

Backend bestBackend() {
  for (Backend b : {Backend::Avx2, Backend::Neon, Backend::Sse2}) {
    if (available(b)) return b;
  }
  return Backend::Scalar;
}

Backend startupBackend() {
  const char* env = std::getenv("ECLIPSE_SIMD");
  if (env != nullptr && *env != '\0') {
    try {
      const Backend b = parseBackendName(env);
      if (available(b)) return b;
      std::fprintf(stderr, "eclipse: ECLIPSE_SIMD=%s not available on this machine, using %s\n",
                   env, backendName(bestBackend()));
    } catch (const std::invalid_argument&) {
      std::fprintf(stderr, "eclipse: ignoring unknown ECLIPSE_SIMD=%s (use %s)\n", env,
                   "scalar|sse2|avx2|neon");
    }
  }
  return bestBackend();
}

}  // namespace

namespace detail {
// Startup selection runs during dynamic init; backend accessors hide their
// tables behind function-local statics so this is order-safe.
const KernelTable* g_active = tableFor(startupBackend());
}  // namespace detail

Backend backend() noexcept { return detail::g_active->backend; }

const char* backendName(Backend b) noexcept {
  switch (b) {
    case Backend::Scalar: return "scalar";
    case Backend::Sse2: return "sse2";
    case Backend::Avx2: return "avx2";
    case Backend::Neon: return "neon";
  }
  return "?";
}

bool available(Backend b) noexcept {
  return tableFor(b) != nullptr && cpuSupports(b);
}

std::vector<Backend> availableBackends() {
  std::vector<Backend> out;
  for (int i = 0; i < kBackendCount; ++i) {
    const Backend b = static_cast<Backend>(i);
    if (available(b)) out.push_back(b);
  }
  return out;
}

void setBackend(Backend b) {
  if (!available(b)) {
    throw std::invalid_argument(std::string("kernels::setBackend: backend not available: ") +
                                backendName(b));
  }
  detail::g_active = tableFor(b);
}

Backend parseBackendName(const std::string& name) {
  for (int i = 0; i < kBackendCount; ++i) {
    const Backend b = static_cast<Backend>(i);
    if (name == backendName(b)) return b;
  }
  throw std::invalid_argument("kernels: unknown backend name: " + name);
}

void resetBackendFromEnv() { detail::g_active = tableFor(startupBackend()); }

}  // namespace eclipse::media::kernels
