#include "eclipse/media/mux.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace eclipse::media::mux {

std::vector<std::uint8_t> interleave(const std::vector<std::vector<std::uint8_t>>& streams) {
  if (streams.empty() || streams.size() > kMaxStreams) {
    throw std::invalid_argument("mux::interleave: 1..16 streams supported");
  }
  std::vector<std::size_t> pos(streams.size(), 0);
  std::vector<std::uint8_t> out;

  auto remaining = [&](std::size_t s) { return streams[s].size() - pos[s]; };

  while (true) {
    // Pick the stream with the most data left (keeps streams finishing
    // together, like a rate-coupled multiplex).
    std::size_t best = streams.size();
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (remaining(s) == 0) continue;
      if (best == streams.size() || remaining(s) > remaining(best)) best = s;
    }
    if (best == streams.size()) break;

    const auto n = static_cast<std::uint16_t>(
        std::min<std::size_t>(kPayloadBytes, remaining(best)));
    out.push_back(static_cast<std::uint8_t>(best));
    out.push_back(static_cast<std::uint8_t>(n & 0xFF));
    out.push_back(static_cast<std::uint8_t>(n >> 8));
    const std::size_t at = out.size();
    out.resize(at + kPayloadBytes, 0);
    std::memcpy(out.data() + at, streams[best].data() + pos[best], n);
    pos[best] += n;
  }
  return out;
}

Packet parsePacket(std::span<const std::uint8_t> packet) {
  if (packet.size() != kPacketBytes) {
    throw std::runtime_error("mux::parsePacket: bad packet size");
  }
  Packet p;
  p.stream_id = packet[0];
  const std::uint16_t len = static_cast<std::uint16_t>(packet[1] | (packet[2] << 8));
  if (p.stream_id >= kMaxStreams || len > kPayloadBytes) {
    throw std::runtime_error("mux::parsePacket: malformed packet header");
  }
  p.payload = packet.subspan(kHeaderBytes, len);
  return p;
}

std::vector<std::vector<std::uint8_t>> split(std::span<const std::uint8_t> ts) {
  if (ts.size() % kPacketBytes != 0) {
    throw std::runtime_error("mux::split: transport stream size not packet-aligned");
  }
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t at = 0; at < ts.size(); at += kPacketBytes) {
    const Packet p = parsePacket(ts.subspan(at, kPacketBytes));
    if (static_cast<std::size_t>(p.stream_id) >= out.size()) {
      out.resize(static_cast<std::size_t>(p.stream_id) + 1);
    }
    auto& dst = out[static_cast<std::size_t>(p.stream_id)];
    dst.insert(dst.end(), p.payload.begin(), p.payload.end());
  }
  return out;
}

}  // namespace eclipse::media::mux
