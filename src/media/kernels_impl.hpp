#pragma once

// Internal header shared by the media kernel backends (not installed).
// Holds the per-backend table accessors, the fixed-point DCT constants,
// the scan tables (constexpr so SIMD shuffle masks can be built from them
// at compile time) and the scalar entry points that backends reuse as
// per-kernel fallbacks.

#include <array>
#include <cmath>
#include <cstdint>

#include "eclipse/media/kernels.hpp"

namespace eclipse::media::kernels::detail {

// ------------------------------------------------------------------ tables

inline constexpr int kDctShift = 13;  // fixed-point fraction bits
inline constexpr std::int32_t kDctRound = 1 << (kDctShift - 1);

/// K[u][x] = round( (alpha(u)/2) * cos((2x+1) u pi / 16) * 2^kDctShift ) —
/// the exact table the scalar DCT has always used (dct.cpp since PR 1).
struct DctK {
  std::array<std::array<std::int32_t, 8>, 8> k{};
};

inline DctK computeDctK() {
  DctK t;
  for (int u = 0; u < 8; ++u) {
    const double alpha = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
    for (int x = 0; x < 8; ++x) {
      const double c = (alpha / 2.0) * std::cos((2.0 * x + 1.0) * u * M_PI / 16.0);
      t.k[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)] =
          static_cast<std::int32_t>(std::lround(c * (1 << kDctShift)));
    }
  }
  return t;
}

// ISO/IEC 13818-2 Figure 7-2: zigzag scanning order.
inline constexpr std::array<int, 64> kZigzagTable = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// ISO/IEC 13818-2 Figure 7-3: alternate scanning order.
inline constexpr std::array<int, 64> kAlternateTable = {
    0,  8,  16, 24, 1,  9,  2,  10, 17, 25, 32, 40, 48, 56, 57, 49,
    41, 33, 26, 18, 3,  11, 4,  12, 19, 27, 34, 42, 50, 58, 35, 43,
    51, 59, 20, 28, 5,  13, 6,  14, 21, 29, 36, 44, 52, 60, 37, 45,
    53, 61, 22, 30, 7,  15, 23, 31, 38, 46, 54, 62, 39, 47, 55, 63};

/// Destination-indexed permutation over the 64 int16 elements:
/// dest[i] = src[perm[i]]. `toScan` uses the table directly; `fromScan`
/// scatters, which as a gather is the inverse permutation.
inline constexpr std::array<int, 64> scanPerm(const std::array<int, 64>& t, bool inverse) {
  std::array<int, 64> perm{};
  for (int i = 0; i < 64; ++i) {
    if (!inverse) {
      perm[static_cast<std::size_t>(i)] = t[static_cast<std::size_t>(i)];
    } else {
      perm[static_cast<std::size_t>(t[static_cast<std::size_t>(i)])] = i;
    }
  }
  return perm;
}

// ------------------------------------------------------- backend accessors

/// Accessors use function-local statics so cross-TU dynamic-init order
/// cannot hand out a half-built table. A null return means "not compiled
/// for this architecture"; runtime CPU support is checked separately in
/// kernels.cpp.
[[nodiscard]] const KernelTable& scalarTable();
[[nodiscard]] const KernelTable* sse2Table();
[[nodiscard]] const KernelTable* avx2Table();
[[nodiscard]] const KernelTable* neonTable();

// ------------------------------------------------------ scalar entry points
// Reused by SIMD backends for kernels they do not accelerate.

void scalarDctForward(const Block& in, Block& out);
void scalarDctInverse(const Block& in, Block& out);
void scalarQuantize(const Block& coefs, Block& levels, int qscale, const quant::Matrix& m);
void scalarDequantize(const Block& levels, Block& coefs, int qscale, const quant::Matrix& m);
void scalarToScan(const Block& raster, Block& scanned, scan::Order order);
void scalarFromScan(const Block& scanned, Block& raster, scan::Order order);
void scalarRleEncode(const Block& scanned, std::vector<rle::RunLevel>& out);
std::uint32_t scalarSad16xH(const std::uint8_t* cur, int cur_stride, const std::uint8_t* ref,
                            int ref_stride, int h, int fx, int fy);
void scalarInterp16xH(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                      int h, int fx, int fy);
void scalarInterp8xH(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                     int h, int fx, int fy);
void scalarAvgU8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, std::size_t n);
void scalarAddRes8x8(std::uint8_t* dst, int dst_stride, const std::uint8_t* pred, int pred_stride,
                     const std::int16_t* res);
void scalarDiff8x8(std::int16_t* res, const std::uint8_t* cur, int cur_stride,
                   const std::uint8_t* pred, int pred_stride);
void scalarClampStoreRow(const std::int32_t* src, std::uint8_t* dst, std::size_t n);

#if defined(__x86_64__) || defined(__i386__)
// SSE2 entry points, exported so the AVX2 backend can reuse the 8-wide /
// byte-wise kernels where a 256-bit version buys nothing.
void sse2Quantize(const Block& coefs, Block& levels, int qscale, const quant::Matrix& m);
void sse2Dequantize(const Block& levels, Block& coefs, int qscale, const quant::Matrix& m);
void sse2RleEncode(const Block& scanned, std::vector<rle::RunLevel>& out);
std::uint32_t sse2Sad16xH(const std::uint8_t* cur, int cur_stride, const std::uint8_t* ref,
                          int ref_stride, int h, int fx, int fy);
void sse2Interp16xH(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                    int h, int fx, int fy);
void sse2Interp8xH(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                   int h, int fx, int fy);
void sse2AvgU8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, std::size_t n);
void sse2AddRes8x8(std::uint8_t* dst, int dst_stride, const std::uint8_t* pred, int pred_stride,
                   const std::int16_t* res);
void sse2Diff8x8(std::int16_t* res, const std::uint8_t* cur, int cur_stride,
                 const std::uint8_t* pred, int pred_stride);
void sse2ClampStoreRow(const std::int32_t* src, std::uint8_t* dst, std::size_t n);
#endif

/// Verbatim bit-at-a-time VLD (the oracle, vlc.cpp's original getBlock).
void vlcGetBlockBitwise(BitReader& br, std::vector<rle::RunLevel>& out);

/// Table-driven multi-bit VLD: classifies symbols from an 8-bit peek and
/// decodes Exp-Golomb escapes from a 32-bit peek. Falls back to the
/// bitwise oracle near the end of the stream so the number of bits
/// consumed on every path — including throws — matches the oracle exactly
/// (fault recovery resumes parsing from the same BitReader position).
void vlcGetBlockFast(BitReader& br, std::vector<rle::RunLevel>& out);

}  // namespace eclipse::media::kernels::detail
