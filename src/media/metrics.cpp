#include "eclipse/media/metrics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace eclipse::media {

double mse(const std::vector<std::uint8_t>& a, const std::vector<std::uint8_t>& b) {
  if (a.size() != b.size() || a.empty()) throw std::invalid_argument("mse: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

namespace {

double mseToPsnr(double m) {
  if (m <= 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

}  // namespace

double psnrLuma(const Frame& a, const Frame& b) {
  if (!a.sameDimensions(b)) throw std::invalid_argument("psnr: dimension mismatch");
  return mseToPsnr(mse(a.yPlane(), b.yPlane()));
}

double psnr(const Frame& a, const Frame& b) {
  if (!a.sameDimensions(b)) throw std::invalid_argument("psnr: dimension mismatch");
  const double my = mse(a.yPlane(), b.yPlane());
  const double mcb = mse(a.cbPlane(), b.cbPlane());
  const double mcr = mse(a.crPlane(), b.crPlane());
  const double wy = static_cast<double>(a.yPlane().size());
  const double wc = static_cast<double>(a.cbPlane().size());
  const double m = (my * wy + mcb * wc + mcr * wc) / (wy + 2 * wc);
  return mseToPsnr(m);
}

double averagePsnr(const std::vector<Frame>& a, const std::vector<Frame>& b) {
  if (a.size() != b.size() || a.empty()) throw std::invalid_argument("averagePsnr: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += psnrLuma(a[i], b[i]);
  return acc / static_cast<double>(a.size());
}

}  // namespace eclipse::media
