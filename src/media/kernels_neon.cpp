// NEON backend for the media kernels (AArch64 only, where Advanced SIMD is
// architectural — no runtime probe needed). Quantize and run-length encode
// stay on the scalar path: the quantizer needs an exact integer division
// with no NEON equivalent, and RLE is dominated by the output loop.
// Bit-identical to the scalar oracle (DESIGN.md §11).

#include "kernels_impl.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace eclipse::media::kernels::detail {

namespace {

// ----------------------------------------------------------------- tables

struct DctTabs {
  alignas(16) std::int32_t k[8][8];   // K[u][x]
  alignas(16) std::int32_t kt[8][8];  // K transposed: kt[x][u] = K[u][x]

  DctTabs() {
    const DctK t = computeDctK();
    for (int u = 0; u < 8; ++u) {
      for (int x = 0; x < 8; ++x) {
        k[u][x] = t.k[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)];
        kt[x][u] = k[u][x];
      }
    }
  }
};

const DctTabs g_dct;

/// Byte-shuffle indices applying a fixed 64-element int16 permutation with
/// two vqtbl4q lookups (low / high 64 source bytes) per 16 output bytes.
/// 0xFF indexes yield zero, so the two lookups OR together.
struct ScanIdx {
  alignas(16) std::uint8_t lo[8][16];
  alignas(16) std::uint8_t hi[8][16];
};

constexpr ScanIdx buildIdx(const std::array<int, 64>& perm) {
  ScanIdx s{};
  for (int i = 0; i < 64; ++i) {
    const int e = perm[static_cast<std::size_t>(i)];
    for (int half = 0; half < 2; ++half) {
      const int db_abs = 2 * i + half;
      const int sb_abs = 2 * e + half;
      const int j = db_abs / 16, db = db_abs % 16;
      if (sb_abs < 64) {
        s.lo[j][db] = static_cast<std::uint8_t>(sb_abs);
        s.hi[j][db] = 0xFF;
      } else {
        s.lo[j][db] = 0xFF;
        s.hi[j][db] = static_cast<std::uint8_t>(sb_abs - 64);
      }
    }
  }
  return s;
}

constexpr ScanIdx kZigzagFwd = buildIdx(scanPerm(kZigzagTable, false));
constexpr ScanIdx kZigzagInv = buildIdx(scanPerm(kZigzagTable, true));
constexpr ScanIdx kAltFwd = buildIdx(scanPerm(kAlternateTable, false));
constexpr ScanIdx kAltInv = buildIdx(scanPerm(kAlternateTable, true));

// ------------------------------------------------------------------- DCT

/// acc[lane] = kRound + sum_i cols[i][lane] * row[i], then >> kDctShift.
/// `cols[i]` must be the coefficient vector matching input element i.
inline void dctPass8(const std::int16_t* row, const std::int32_t cols[8][8],
                     std::int32_t* out_row) {
  int32x4_t lo = vdupq_n_s32(kDctRound);
  int32x4_t hi = lo;
  for (int i = 0; i < 8; ++i) {
    const std::int32_t s = row[i];
    lo = vmlaq_n_s32(lo, vld1q_s32(cols[i]), s);
    hi = vmlaq_n_s32(hi, vld1q_s32(cols[i] + 4), s);
  }
  vst1q_s32(out_row, vshrq_n_s32(lo, kDctShift));
  vst1q_s32(out_row + 4, vshrq_n_s32(hi, kDctShift));
}

/// Column pass: acc[lane x] = kRound + sum_t tmp[t][x] * f[t], >> shift,
/// saturating narrow (== clamp16).
inline void dctColPass(const std::int32_t* tmp, const std::int32_t* f, std::int16_t* out_row) {
  int32x4_t lo = vdupq_n_s32(kDctRound);
  int32x4_t hi = lo;
  for (int t = 0; t < 8; ++t) {
    lo = vmlaq_n_s32(lo, vld1q_s32(tmp + t * 8), f[t]);
    hi = vmlaq_n_s32(hi, vld1q_s32(tmp + t * 8 + 4), f[t]);
  }
  vst1q_s16(out_row, vcombine_s16(vqmovn_s32(vshrq_n_s32(lo, kDctShift)),
                                  vqmovn_s32(vshrq_n_s32(hi, kDctShift))));
}

void neonDctForward(const Block& in, Block& out) {
  alignas(16) std::int32_t tmp[64];
  // Row pass: tmp[y][u] = sum_x K[u][x] * in[y][x] — lane u, so the
  // coefficient vector for input x is column x of K (a row of kt).
  for (int y = 0; y < 8; ++y) {
    dctPass8(&in[static_cast<std::size_t>(y * 8)], g_dct.kt, tmp + y * 8);
  }
  // Col pass: out[v][u] = clamp16(sum_y tmp[y][u] * K[v][y]).
  for (int v = 0; v < 8; ++v) {
    dctColPass(tmp, g_dct.k[v], &out[static_cast<std::size_t>(v * 8)]);
  }
}

void neonDctInverse(const Block& in, Block& out) {
  alignas(16) std::int32_t tmp[64];
  // Row pass: tmp[v][x] = sum_u in[v][u] * K[u][x] — lane x, coefficient
  // vector for input u is row u of K.
  for (int v = 0; v < 8; ++v) {
    dctPass8(&in[static_cast<std::size_t>(v * 8)], g_dct.k, tmp + v * 8);
  }
  // Col pass: out[y][x] = clamp16(sum_v tmp[v][x] * K[v][y]) — factors are
  // column y of K (a row of kt).
  for (int y = 0; y < 8; ++y) {
    dctColPass(tmp, g_dct.kt[y], &out[static_cast<std::size_t>(y * 8)]);
  }
}

// ------------------------------------------------------------------ quant

void neonDequantize(const Block& levels, Block& coefs, int qscale, const quant::Matrix& m) {
  const int32x4_t fifteen = vdupq_n_s32(15);
  for (int i = 0; i < 64; i += 8) {
    const int16x8_t l16 = vld1q_s16(&levels[static_cast<std::size_t>(i)]);
    const uint16x8_t m16 = vmovl_u8(vld1_u8(&m[static_cast<std::size_t>(i)]));
    const int32x4_t step_lo =
        vmulq_n_s32(vreinterpretq_s32_u32(vmovl_u16(vget_low_u16(m16))), qscale);
    const int32x4_t step_hi =
        vmulq_n_s32(vreinterpretq_s32_u32(vmovl_u16(vget_high_u16(m16))), qscale);
    const int32x4_t p_lo = vmulq_s32(vmovl_s16(vget_low_s16(l16)), step_lo);
    const int32x4_t p_hi = vmulq_s32(vmovl_s16(vget_high_s16(l16)), step_hi);
    // Truncating /16: add 15 to negative values before the arithmetic shift.
    const int32x4_t c_lo =
        vshrq_n_s32(vaddq_s32(p_lo, vandq_s32(vshrq_n_s32(p_lo, 31), fifteen)), 4);
    const int32x4_t c_hi =
        vshrq_n_s32(vaddq_s32(p_hi, vandq_s32(vshrq_n_s32(p_hi, 31), fifteen)), 4);
    // Saturating narrow == clampCoef.
    vst1q_s16(&coefs[static_cast<std::size_t>(i)],
              vcombine_s16(vqmovn_s32(c_lo), vqmovn_s32(c_hi)));
  }
}

// ------------------------------------------------------------------- scan

inline void shuffle64(const std::int16_t* src, std::int16_t* dst, const ScanIdx& S) {
  uint8x16x4_t lo, hi;
  const std::uint8_t* sb = reinterpret_cast<const std::uint8_t*>(src);
  for (int k = 0; k < 4; ++k) {
    lo.val[k] = vld1q_u8(sb + 16 * k);
    hi.val[k] = vld1q_u8(sb + 64 + 16 * k);
  }
  std::uint8_t* db = reinterpret_cast<std::uint8_t*>(dst);
  for (int j = 0; j < 8; ++j) {
    const uint8x16_t r = vorrq_u8(vqtbl4q_u8(lo, vld1q_u8(S.lo[j])),
                                  vqtbl4q_u8(hi, vld1q_u8(S.hi[j])));
    vst1q_u8(db + 16 * j, r);
  }
}

void neonToScan(const Block& raster, Block& scanned, scan::Order order) {
  shuffle64(raster.data(), scanned.data(),
            order == scan::Order::Zigzag ? kZigzagFwd : kAltFwd);
}

void neonFromScan(const Block& scanned, Block& raster, scan::Order order) {
  shuffle64(scanned.data(), raster.data(),
            order == scan::Order::Zigzag ? kZigzagInv : kAltInv);
}

// ------------------------------------------------------------------ motion

inline uint8x16_t predRow16(const std::uint8_t* r0, int stride, int fx, int fy) {
  if (fx == 0 && fy == 0) return vld1q_u8(r0);
  // vrhadd == (a + b + 1) >> 1, exactly the scalar 2-tap filter.
  if (fx != 0 && fy == 0) return vrhaddq_u8(vld1q_u8(r0), vld1q_u8(r0 + 1));
  if (fx == 0) return vrhaddq_u8(vld1q_u8(r0), vld1q_u8(r0 + stride));
  // 4-tap (a+b+c+d+2)/4 widened to 16 bits (nested rounding averages are
  // not bit-exact).
  const uint8x16_t a = vld1q_u8(r0);
  const uint8x16_t b = vld1q_u8(r0 + 1);
  const uint8x16_t c = vld1q_u8(r0 + stride);
  const uint8x16_t d = vld1q_u8(r0 + stride + 1);
  const uint16x8_t lo = vaddq_u16(vaddl_u8(vget_low_u8(a), vget_low_u8(b)),
                                  vaddl_u8(vget_low_u8(c), vget_low_u8(d)));
  const uint16x8_t hi = vaddq_u16(vaddl_u8(vget_high_u8(a), vget_high_u8(b)),
                                  vaddl_u8(vget_high_u8(c), vget_high_u8(d)));
  return vcombine_u8(vmovn_u16(vshrq_n_u16(vaddq_u16(lo, vdupq_n_u16(2)), 2)),
                     vmovn_u16(vshrq_n_u16(vaddq_u16(hi, vdupq_n_u16(2)), 2)));
}

inline uint8x8_t predRow8(const std::uint8_t* r0, int stride, int fx, int fy) {
  if (fx == 0 && fy == 0) return vld1_u8(r0);
  if (fx != 0 && fy == 0) return vrhadd_u8(vld1_u8(r0), vld1_u8(r0 + 1));
  if (fx == 0) return vrhadd_u8(vld1_u8(r0), vld1_u8(r0 + stride));
  const uint16x8_t sum = vaddq_u16(vaddl_u8(vld1_u8(r0), vld1_u8(r0 + 1)),
                                   vaddl_u8(vld1_u8(r0 + stride), vld1_u8(r0 + stride + 1)));
  return vmovn_u16(vshrq_n_u16(vaddq_u16(sum, vdupq_n_u16(2)), 2));
}

std::uint32_t neonSad16xH(const std::uint8_t* cur, int cur_stride, const std::uint8_t* ref,
                          int ref_stride, int h, int fx, int fy) {
  uint32x4_t acc = vdupq_n_u32(0);
  for (int y = 0; y < h; ++y) {
    const uint8x16_t c = vld1q_u8(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    const uint8x16_t p = predRow16(ref + static_cast<std::ptrdiff_t>(y) * ref_stride,
                                   ref_stride, fx, fy);
    acc = vpadalq_u16(acc, vpaddlq_u8(vabdq_u8(c, p)));
  }
  return vaddvq_u32(acc);
}

void neonInterp16xH(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                    int h, int fx, int fy) {
  for (int y = 0; y < h; ++y) {
    vst1q_u8(dst + static_cast<std::ptrdiff_t>(y) * dst_stride,
             predRow16(src + static_cast<std::ptrdiff_t>(y) * src_stride, src_stride, fx, fy));
  }
}

void neonInterp8xH(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                   int h, int fx, int fy) {
  for (int y = 0; y < h; ++y) {
    vst1_u8(dst + static_cast<std::ptrdiff_t>(y) * dst_stride,
            predRow8(src + static_cast<std::ptrdiff_t>(y) * src_stride, src_stride, fx, fy));
  }
}

void neonAvgU8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(out + i, vrhaddq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<std::uint8_t>((a[i] + b[i] + 1) / 2);
}

void neonAddRes8x8(std::uint8_t* dst, int dst_stride, const std::uint8_t* pred, int pred_stride,
                   const std::int16_t* res) {
  for (int y = 0; y < 8; ++y) {
    const int16x8_t p =
        vreinterpretq_s16_u16(vmovl_u8(vld1_u8(pred + static_cast<std::ptrdiff_t>(y) * pred_stride)));
    const int16x8_t r = vld1q_s16(res + y * 8);
    // Saturating add + unsigned saturating narrow == clampPel (pred >= 0,
    // so a saturated endpoint clamps to the same pixel the wide sum would).
    vst1_u8(dst + static_cast<std::ptrdiff_t>(y) * dst_stride, vqmovun_s16(vqaddq_s16(p, r)));
  }
}

void neonDiff8x8(std::int16_t* res, const std::uint8_t* cur, int cur_stride,
                 const std::uint8_t* pred, int pred_stride) {
  for (int y = 0; y < 8; ++y) {
    const int16x8_t c =
        vreinterpretq_s16_u16(vmovl_u8(vld1_u8(cur + static_cast<std::ptrdiff_t>(y) * cur_stride)));
    const int16x8_t p =
        vreinterpretq_s16_u16(vmovl_u8(vld1_u8(pred + static_cast<std::ptrdiff_t>(y) * pred_stride)));
    vst1q_s16(res + y * 8, vsubq_s16(c, p));
  }
}

void neonClampStoreRow(const std::int32_t* src, std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t s16 = vcombine_s16(vqmovn_s32(vld1q_s32(src + i)),
                                       vqmovn_s32(vld1q_s32(src + i + 4)));
    vst1_u8(dst + i, vqmovun_s16(s16));
  }
  for (; i < n; ++i) {
    const std::int32_t v = src[i];
    dst[i] = static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}

}  // namespace

const KernelTable* neonTable() {
  static const KernelTable t = [] {
    KernelTable k;
    k.backend = Backend::Neon;
    k.name = "neon";
    k.dct_forward = neonDctForward;
    k.dct_inverse = neonDctInverse;
    k.quantize = scalarQuantize;  // exact integer division — keep the oracle
    k.dequantize = neonDequantize;
    k.to_scan = neonToScan;
    k.from_scan = neonFromScan;
    k.rle_encode = scalarRleEncode;
    k.sad_16xh = neonSad16xH;
    k.interp_16xh = neonInterp16xH;
    k.interp_8xh = neonInterp8xH;
    k.avg_u8 = neonAvgU8;
    k.add_res_8x8 = neonAddRes8x8;
    k.diff_8x8 = neonDiff8x8;
    k.clamp_store_row = neonClampStoreRow;
    k.vlc_get_block = vlcGetBlockFast;
    return k;
  }();
  return &t;
}

}  // namespace eclipse::media::kernels::detail

#else  // not AArch64

namespace eclipse::media::kernels::detail {
const KernelTable* neonTable() { return nullptr; }
}  // namespace eclipse::media::kernels::detail

#endif
