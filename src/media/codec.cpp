#include "eclipse/media/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "eclipse/media/dct.hpp"
#include "eclipse/media/kernels.hpp"
#include "eclipse/media/vlc.hpp"

namespace eclipse::media {

SeqHeader CodecParams::toSeqHeader(int frame_count) const {
  SeqHeader sh;
  sh.width = static_cast<std::uint16_t>(width);
  sh.height = static_cast<std::uint16_t>(height);
  sh.gop_n = static_cast<std::uint8_t>(gop.n);
  sh.gop_m = static_cast<std::uint8_t>(gop.m);
  sh.qscale = static_cast<std::uint8_t>(qscale);
  sh.frame_count = static_cast<std::uint16_t>(frame_count);
  sh.scan_order = scan_order == scan::Order::Zigzag ? 0 : 1;
  sh.use_intra_matrix = use_intra_matrix ? 1 : 0;
  return sh;
}

CodecParams CodecParams::fromSeqHeader(const SeqHeader& sh) {
  CodecParams p;
  p.width = sh.width;
  p.height = sh.height;
  p.gop = GopStructure{sh.gop_n, sh.gop_m};
  p.qscale = sh.qscale;
  p.scan_order = sh.scan_order == 0 ? scan::Order::Zigzag : scan::Order::Alternate;
  p.use_intra_matrix = sh.use_intra_matrix != 0;
  return p;
}

namespace stages {

namespace {

constexpr std::uint32_t kSeqMagic = 0x454D;  // "EM": Eclipse Media stream

const quant::Matrix& intraMatrix(const SeqHeader& sh) {
  return sh.use_intra_matrix != 0 ? quant::defaultIntraMatrix() : quant::flatMatrix();
}

scan::Order scanOrder(const SeqHeader& sh) {
  return sh.scan_order == 0 ? scan::Order::Zigzag : scan::Order::Alternate;
}

}  // namespace

void writeSeqHeader(BitWriter& bw, const SeqHeader& sh) {
  bw.put(kSeqMagic, 16);
  bw.putUe(sh.width / kMbSize);
  bw.putUe(sh.height / kMbSize);
  bw.putUe(sh.gop_n);
  bw.putUe(sh.gop_m);
  bw.put(sh.qscale, 5);
  bw.putUe(sh.frame_count);
  bw.putBit(sh.scan_order);
  bw.putBit(sh.use_intra_matrix);
}

SeqHeader parseSeqHeader(BitReader& br) {
  if (br.get(16) != kSeqMagic) throw BitstreamError("parseSeqHeader: bad magic");
  SeqHeader sh;
  sh.width = static_cast<std::uint16_t>(br.getUe() * kMbSize);
  sh.height = static_cast<std::uint16_t>(br.getUe() * kMbSize);
  sh.gop_n = static_cast<std::uint8_t>(br.getUe());
  sh.gop_m = static_cast<std::uint8_t>(br.getUe());
  sh.qscale = static_cast<std::uint8_t>(br.get(5));
  sh.frame_count = static_cast<std::uint16_t>(br.getUe());
  sh.scan_order = static_cast<std::uint8_t>(br.getBit());
  sh.use_intra_matrix = static_cast<std::uint8_t>(br.getBit());
  if (sh.width == 0 || sh.height == 0) throw BitstreamError("parseSeqHeader: zero dimensions");
  if (sh.qscale < quant::kMinQscale) throw BitstreamError("parseSeqHeader: bad qscale");
  if (sh.gop_m == 0 || sh.gop_n == 0 || sh.gop_n % sh.gop_m != 0) {
    throw BitstreamError("parseSeqHeader: bad GOP structure");
  }
  return sh;
}

void writePicHeader(BitWriter& bw, const PicHeader& ph) {
  bw.put(static_cast<std::uint32_t>(ph.type), 2);
  bw.putUe(ph.temporal_ref);
  bw.put(ph.qscale, 5);
}

PicHeader parsePicHeader(BitReader& br) {
  PicHeader ph;
  const std::uint32_t t = br.get(2);
  if (t > 2) throw BitstreamError("parsePicHeader: bad picture type");
  ph.type = static_cast<FrameType>(t);
  ph.temporal_ref = static_cast<std::uint16_t>(br.getUe());
  ph.qscale = static_cast<std::uint8_t>(br.get(5));
  if (ph.qscale < quant::kMinQscale) throw BitstreamError("parsePicHeader: bad qscale");
  return ph;
}

void writeMb(BitWriter& bw, const MbHeader& h, const MbCoefs& coefs) {
  bw.put(static_cast<std::uint32_t>(h.mode), 2);
  if (h.mode == MbMode::Forward || h.mode == MbMode::Bidirectional) {
    bw.putSe(h.mv_fwd.x);
    bw.putSe(h.mv_fwd.y);
  }
  if (h.mode == MbMode::Backward || h.mode == MbMode::Bidirectional) {
    bw.putSe(h.mv_bwd.x);
    bw.putSe(h.mv_bwd.y);
  }
  bw.put(h.cbp, 6);
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    if ((h.cbp & (1u << b)) != 0) {
      vlc::putBlock(bw, coefs.blocks[static_cast<std::size_t>(b)]);
    }
  }
}

ParsedMb parseMb(BitReader& br, FrameType pic_type, std::uint16_t mb_x, std::uint16_t mb_y,
                 std::uint8_t pic_qscale) {
  ParsedMb out;
  MbHeader& h = out.header;
  h.mb_x = mb_x;
  h.mb_y = mb_y;
  h.qscale = pic_qscale;
  h.mode = static_cast<MbMode>(br.get(2));
  out.symbols = 1;
  if (pic_type == FrameType::I && h.mode != MbMode::Intra) {
    throw BitstreamError("parseMb: non-intra macroblock in I picture");
  }
  if (pic_type == FrameType::P &&
      (h.mode == MbMode::Backward || h.mode == MbMode::Bidirectional)) {
    throw BitstreamError("parseMb: backward prediction in P picture");
  }
  if (h.mode == MbMode::Forward || h.mode == MbMode::Bidirectional) {
    h.mv_fwd.x = static_cast<std::int16_t>(br.getSe());
    h.mv_fwd.y = static_cast<std::int16_t>(br.getSe());
    out.symbols += 2;
  }
  if (h.mode == MbMode::Backward || h.mode == MbMode::Bidirectional) {
    h.mv_bwd.x = static_cast<std::int16_t>(br.getSe());
    h.mv_bwd.y = static_cast<std::int16_t>(br.getSe());
    out.symbols += 2;
  }
  h.cbp = static_cast<std::uint8_t>(br.get(6));
  out.symbols += 1;
  out.coefs.cbp = h.cbp;
  out.coefs.intra = h.mode == MbMode::Intra ? 1 : 0;
  out.coefs.qscale = pic_qscale;
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    if ((h.cbp & (1u << b)) != 0) {
      out.coefs.blocks[static_cast<std::size_t>(b)] = vlc::getBlock(br);
      out.symbols +=
          static_cast<int>(out.coefs.blocks[static_cast<std::size_t>(b)].size()) + 1;  // + EOB
    }
  }
  return out;
}

void rlsqDecode(const MbCoefs& in, bool intra, const SeqHeader& sh, MbBlocks& out) {
  out.cbp = in.cbp;
  const quant::Matrix& m = intra ? intraMatrix(sh) : quant::flatMatrix();
  const scan::Order order = scanOrder(sh);
  if (in.qscale < quant::kMinQscale || in.qscale > quant::kMaxQscale) {
    throw BitstreamError("rlsqDecode: macroblock qscale out of range");
  }
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    auto& block = out.blocks[static_cast<std::size_t>(b)];
    if ((in.cbp & (1u << b)) == 0) {
      block.fill(0);
      continue;
    }
    Block scanned;
    rle::decode(in.blocks[static_cast<std::size_t>(b)], scanned);
    Block levels;
    scan::fromScan(scanned, levels, order);
    quant::dequantize(levels, block, in.qscale, m);
  }
}

void rlsqEncode(const MbBlocks& in, bool intra, const SeqHeader& sh, int qscale, MbCoefs& out) {
  const quant::Matrix& m = intra ? intraMatrix(sh) : quant::flatMatrix();
  const scan::Order order = scanOrder(sh);
  out.cbp = 0;
  out.intra = intra ? 1 : 0;
  out.qscale = static_cast<std::uint8_t>(qscale);
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    Block levels;
    quant::quantize(in.blocks[static_cast<std::size_t>(b)], levels, qscale, m);
    Block scanned;
    scan::toScan(levels, scanned, order);
    auto pairs = rle::encode(scanned);
    if (!pairs.empty()) {
      out.cbp |= static_cast<std::uint8_t>(1u << b);
      out.blocks[static_cast<std::size_t>(b)] = std::move(pairs);
    } else {
      out.blocks[static_cast<std::size_t>(b)].clear();
    }
  }
}

void idctMb(const MbBlocks& in, MbBlocks& out) {
  out.cbp = in.cbp;
  out.intra = in.intra;
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    if ((in.cbp & (1u << b)) == 0) {
      out.blocks[static_cast<std::size_t>(b)].fill(0);
    } else {
      dct::inverse(in.blocks[static_cast<std::size_t>(b)],
                   out.blocks[static_cast<std::size_t>(b)]);
    }
  }
}

void fdctMb(const MbBlocks& in, MbBlocks& out) {
  out.cbp = in.cbp;
  out.intra = in.intra;
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    dct::forward(in.blocks[static_cast<std::size_t>(b)], out.blocks[static_cast<std::size_t>(b)]);
  }
}

void extractMb(const Frame& f, int mb_x, int mb_y, MbPixels& out) {
  const int px = mb_x * kMbSize;
  const int py = mb_y * kMbSize;
  for (int y = 0; y < kMbSize; ++y) {
    for (int x = 0; x < kMbSize; ++x) {
      out.y[static_cast<std::size_t>(y * kMbSize + x)] = f.yAt(px + x, py + y);
    }
  }
  const int cw = f.width() / 2;
  const auto& cb = f.cbPlane();
  const auto& cr = f.crPlane();
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const std::size_t src = static_cast<std::size_t>((py / 2 + y) * cw + (px / 2 + x));
      out.cb[static_cast<std::size_t>(y * 8 + x)] = cb[src];
      out.cr[static_cast<std::size_t>(y * 8 + x)] = cr[src];
    }
  }
}

void placeMb(Frame& f, int mb_x, int mb_y, const MbPixels& in) {
  const int px = mb_x * kMbSize;
  const int py = mb_y * kMbSize;
  for (int y = 0; y < kMbSize; ++y) {
    for (int x = 0; x < kMbSize; ++x) {
      f.setY(px + x, py + y, in.y[static_cast<std::size_t>(y * kMbSize + x)]);
    }
  }
  const int cw = f.width() / 2;
  auto& cb = f.cbPlane();
  auto& cr = f.crPlane();
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const std::size_t dst = static_cast<std::size_t>((py / 2 + y) * cw + (px / 2 + x));
      cb[dst] = in.cb[static_cast<std::size_t>(y * 8 + x)];
      cr[dst] = in.cr[static_cast<std::size_t>(y * 8 + x)];
    }
  }
}

void predictMb(const MbHeader& h, const Frame* fwd_ref, const Frame* bwd_ref, MbPixels& out) {
  if (h.mode == MbMode::Intra) {
    out.y.fill(128);
    out.cb.fill(128);
    out.cr.fill(128);
    return;
  }
  const int px = h.mb_x * kMbSize;
  const int py = h.mb_y * kMbSize;

  auto predictFrom = [&](const Frame& ref, MotionVector mv, MbPixels& p) {
    motion::predictLuma(ref, px, py, mv, p.y);
    motion::predictChroma(ref.cbPlane(), ref.width() / 2, ref.height() / 2, px / 2, py / 2, mv,
                          p.cb);
    motion::predictChroma(ref.crPlane(), ref.width() / 2, ref.height() / 2, px / 2, py / 2, mv,
                          p.cr);
  };

  switch (h.mode) {
    case MbMode::Forward: {
      if (fwd_ref == nullptr) throw std::logic_error("predictMb: missing forward reference");
      predictFrom(*fwd_ref, h.mv_fwd, out);
      break;
    }
    case MbMode::Backward: {
      if (bwd_ref == nullptr) throw std::logic_error("predictMb: missing backward reference");
      predictFrom(*bwd_ref, h.mv_bwd, out);
      break;
    }
    case MbMode::Bidirectional: {
      if (fwd_ref == nullptr || bwd_ref == nullptr) {
        throw std::logic_error("predictMb: missing reference for bidirectional MB");
      }
      MbPixels f, b;
      predictFrom(*fwd_ref, h.mv_fwd, f);
      predictFrom(*bwd_ref, h.mv_bwd, b);
      motion::average(f.y, b.y, out.y);
      motion::average(f.cb, b.cb, out.cb);
      motion::average(f.cr, b.cr, out.cr);
      break;
    }
    case MbMode::Intra:
      break;  // handled above
  }
}

namespace {

// The six 8x8 blocks of a macroblock as (plane base offset, stride) into
// the MbPixels arrays: four luma quadrants, then Cb, then Cr.
struct BlockGeom {
  std::size_t offset;
  int stride;
};

BlockGeom blockGeom(int b) {
  if (b < 4) {
    return BlockGeom{static_cast<std::size_t>((b / 2) * 8 * kMbSize + (b % 2) * 8), kMbSize};
  }
  return BlockGeom{0, 8};
}

}  // namespace

void residualMb(const MbPixels& cur, const MbPixels& pred, MbBlocks& out) {
  out.cbp = 0x3F;
  const auto& k = kernels::active();
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    const BlockGeom g = blockGeom(b);
    const std::uint8_t* c = b < 4 ? cur.y.data() : (b == 4 ? cur.cb.data() : cur.cr.data());
    const std::uint8_t* p = b < 4 ? pred.y.data() : (b == 4 ? pred.cb.data() : pred.cr.data());
    k.diff_8x8(out.blocks[static_cast<std::size_t>(b)].data(), c + g.offset, g.stride,
               p + g.offset, g.stride);
  }
}

void addResidualMb(const MbPixels& pred, const MbBlocks& residual, MbPixels& out) {
  const auto& k = kernels::active();
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    const BlockGeom g = blockGeom(b);
    const std::uint8_t* p = b < 4 ? pred.y.data() : (b == 4 ? pred.cb.data() : pred.cr.data());
    std::uint8_t* o = b < 4 ? out.y.data() : (b == 4 ? out.cb.data() : out.cr.data());
    k.add_res_8x8(o + g.offset, g.stride, p + g.offset, g.stride,
                  residual.blocks[static_cast<std::size_t>(b)].data());
  }
}

MbHeader decideMbMode(const Frame& src, int mb_x, int mb_y, FrameType pic_type, const Frame* fwd,
                      const Frame* bwd, const motion::SearchParams& search, std::uint8_t qscale) {
  MbHeader h;
  h.mb_x = static_cast<std::uint16_t>(mb_x);
  h.mb_y = static_cast<std::uint16_t>(mb_y);
  h.qscale = qscale;

  if (pic_type == FrameType::I) {
    h.mode = MbMode::Intra;
    return h;
  }

  const std::uint32_t activity = motion::intraActivity(src, mb_x, mb_y);
  motion::SearchResult best_f{}, best_b{};
  std::uint32_t sad_bidi = UINT32_MAX;
  MotionVector mv_f{}, mv_b{};
  std::uint32_t best_sad = UINT32_MAX;
  MbMode best_mode = MbMode::Intra;

  if (fwd != nullptr) {
    best_f = motion::search(src, *fwd, mb_x, mb_y, search);
    if (best_f.sad < best_sad) {
      best_sad = best_f.sad;
      best_mode = MbMode::Forward;
      mv_f = best_f.mv;
    }
  }
  if (pic_type == FrameType::B && bwd != nullptr) {
    best_b = motion::search(src, *bwd, mb_x, mb_y, search);
    if (best_b.sad < best_sad) {
      best_sad = best_b.sad;
      best_mode = MbMode::Backward;
      mv_b = best_b.mv;
    }
    if (fwd != nullptr) {
      // Evaluate the bidirectional average of the two best vectors.
      MbHeader bh;
      bh.mb_x = h.mb_x;
      bh.mb_y = h.mb_y;
      bh.mode = MbMode::Bidirectional;
      bh.mv_fwd = best_f.mv;
      bh.mv_bwd = best_b.mv;
      MbPixels cur_px, pred_px;
      stages::extractMb(src, mb_x, mb_y, cur_px);
      stages::predictMb(bh, fwd, bwd, pred_px);
      sad_bidi = kernels::active().sad_16xh(cur_px.y.data(), kMbSize, pred_px.y.data(), kMbSize,
                                            kMbSize, 0, 0);
      if (sad_bidi < best_sad) {
        best_sad = sad_bidi;
        best_mode = MbMode::Bidirectional;
        mv_f = best_f.mv;
        mv_b = best_b.mv;
      }
    }
  }
  if (best_sad == UINT32_MAX || best_sad > activity) {
    h.mode = MbMode::Intra;
  } else {
    h.mode = best_mode;
    h.mv_fwd = mv_f;
    h.mv_bwd = mv_b;
  }
  return h;
}

}  // namespace stages

std::vector<CodedPicture> codedOrder(int frame_count, const GopStructure& gop) {
  std::vector<CodedPicture> coded;
  coded.reserve(static_cast<std::size_t>(frame_count));
  std::vector<int> pending_b;
  int prev_ref = -1;
  for (int i = 0; i < frame_count; ++i) {
    const FrameType t = gop.typeAt(i);
    if (t == FrameType::B) {
      pending_b.push_back(i);
      continue;
    }
    coded.push_back(CodedPicture{i, t, t == FrameType::P ? prev_ref : -1, -1});
    for (int b : pending_b) {
      coded.push_back(CodedPicture{b, FrameType::B, prev_ref, i});
    }
    pending_b.clear();
    prev_ref = i;
  }
  // Trailing B-frames have no future reference; code them as forward-only
  // P pictures so encoder and decoder agree on the reference used.
  for (int b : pending_b) {
    coded.push_back(CodedPicture{b, FrameType::P, prev_ref, -1});
    prev_ref = b;
  }
  return coded;
}

std::vector<std::uint8_t> Encoder::encode(const std::vector<Frame>& frames) {
  if (frames.empty()) throw std::invalid_argument("Encoder: no frames");
  for (const auto& f : frames) {
    if (f.width() != params_.width || f.height() != params_.height) {
      throw std::invalid_argument("Encoder: frame dimensions do not match params");
    }
  }
  const SeqHeader sh = params_.toSeqHeader(static_cast<int>(frames.size()));
  BitWriter bw;
  stages::writeSeqHeader(bw, sh);

  recon_display_.assign(frames.size(), Frame{});
  stats_.clear();

  const auto order = codedOrder(static_cast<int>(frames.size()), params_.gop);
  const int mb_w = params_.width / kMbSize;
  const int mb_h = params_.height / kMbSize;

  // Rate control state: a damped multiplicative controller on the
  // quantiser scale (coarser quantisation when pictures overshoot).
  double rc_qscale = static_cast<double>(params_.qscale);

  for (const auto& cp : order) {
    const Frame& src = frames[static_cast<std::size_t>(cp.display_idx)];
    const Frame* fwd =
        cp.fwd_ref_display >= 0 ? &recon_display_[static_cast<std::size_t>(cp.fwd_ref_display)]
                                : nullptr;
    const Frame* bwd =
        cp.bwd_ref_display >= 0 ? &recon_display_[static_cast<std::size_t>(cp.bwd_ref_display)]
                                : nullptr;

    PicHeader ph;
    ph.type = cp.type;
    ph.temporal_ref = static_cast<std::uint16_t>(cp.display_idx);
    ph.qscale = static_cast<std::uint8_t>(std::clamp(
        static_cast<int>(std::lround(rc_qscale)), quant::kMinQscale, quant::kMaxQscale));
    const std::size_t pic_start_bits = bw.bitCount();
    stages::writePicHeader(bw, ph);

    PictureStats ps;
    ps.type = cp.type;
    ps.temporal_ref = ph.temporal_ref;

    Frame recon(params_.width, params_.height);

    for (int mb_y = 0; mb_y < mb_h; ++mb_y) {
      for (int mb_x = 0; mb_x < mb_w; ++mb_x) {
        const MbHeader decided =
            stages::decideMbMode(src, mb_x, mb_y, cp.type, fwd, bwd, params_.search, ph.qscale);
        MbHeader h = decided;
        const bool intra = h.mode == MbMode::Intra;
        MbPixels cur_px, pred_px;
        stages::extractMb(src, mb_x, mb_y, cur_px);
        stages::predictMb(h, fwd, bwd, pred_px);

        MbBlocks residual, coefs;
        stages::residualMb(cur_px, pred_px, residual);
        stages::fdctMb(residual, coefs);

        MbCoefs rl;
        stages::rlsqEncode(coefs, intra, sh, ph.qscale, rl);
        h.cbp = rl.cbp;

        stages::writeMb(bw, h, rl);

        switch (h.mode) {
          case MbMode::Intra: ++ps.intra_mbs; break;
          case MbMode::Forward: ++ps.fwd_mbs; break;
          case MbMode::Backward: ++ps.bwd_mbs; break;
          case MbMode::Bidirectional: ++ps.bidi_mbs; break;
        }
        for (int b = 0; b < kBlocksPerMacroblock; ++b) {
          if ((rl.cbp & (1u << b)) != 0) {
            ++ps.coded_blocks;
            ps.symbols += static_cast<std::uint32_t>(rl.blocks[static_cast<std::size_t>(b)].size()) + 1;
          }
        }

        // Closed-loop reconstruction via the exact decoder stages.
        MbBlocks deq, res;
        stages::rlsqDecode(rl, intra, sh, deq);
        stages::idctMb(deq, res);
        MbPixels recon_px;
        stages::addResidualMb(pred_px, res, recon_px);
        stages::placeMb(recon, mb_x, mb_y, recon_px);
      }
    }

    ps.bits = static_cast<std::uint32_t>(bw.bitCount() - pic_start_bits);
    if (params_.target_bits_per_picture > 0) {
      const double ratio = static_cast<double>(ps.bits) /
                           static_cast<double>(params_.target_bits_per_picture);
      rc_qscale = std::clamp(rc_qscale * std::pow(ratio, 0.4),
                             static_cast<double>(quant::kMinQscale),
                             static_cast<double>(quant::kMaxQscale));
    }
    stats_.push_back(ps);
    recon_display_[static_cast<std::size_t>(cp.display_idx)] = std::move(recon);
  }

  return bw.finish();
}

std::vector<Frame> Decoder::decode(std::span<const std::uint8_t> bitstream) {
  BitReader br(bitstream);
  seq_ = stages::parseSeqHeader(br);
  stats_.clear();

  const int mb_w = seq_.width / kMbSize;
  const int mb_h = seq_.height / kMbSize;

  std::map<int, Frame> by_display;
  const Frame* fwd_ref = nullptr;
  const Frame* bwd_ref = nullptr;
  int prev_ref_display = -1;
  int last_ref_display = -1;

  for (int pic = 0; pic < seq_.frame_count; ++pic) {
    const PicHeader ph = stages::parsePicHeader(br);
    const std::size_t pic_start_bits = br.bitPosition();

    PictureStats ps;
    ps.type = ph.type;
    ps.temporal_ref = ph.temporal_ref;

    Frame frame(seq_.width, seq_.height);
    const Frame* use_fwd = ph.type == FrameType::B ? fwd_ref
                           : ph.type == FrameType::P
                               ? (last_ref_display >= 0 ? &by_display.at(last_ref_display) : nullptr)
                               : nullptr;
    const Frame* use_bwd = ph.type == FrameType::B ? bwd_ref : nullptr;

    for (int mb_y = 0; mb_y < mb_h; ++mb_y) {
      for (int mb_x = 0; mb_x < mb_w; ++mb_x) {
        auto parsed = stages::parseMb(br, ph.type, static_cast<std::uint16_t>(mb_x),
                                      static_cast<std::uint16_t>(mb_y), ph.qscale);
        ps.symbols += static_cast<std::uint32_t>(parsed.symbols);
        const bool intra = parsed.header.mode == MbMode::Intra;
        switch (parsed.header.mode) {
          case MbMode::Intra: ++ps.intra_mbs; break;
          case MbMode::Forward: ++ps.fwd_mbs; break;
          case MbMode::Backward: ++ps.bwd_mbs; break;
          case MbMode::Bidirectional: ++ps.bidi_mbs; break;
        }
        for (int b = 0; b < kBlocksPerMacroblock; ++b) {
          if ((parsed.header.cbp & (1u << b)) != 0) ++ps.coded_blocks;
        }

        MbBlocks deq, res;
        stages::rlsqDecode(parsed.coefs, intra, seq_, deq);
        stages::idctMb(deq, res);
        MbPixels pred_px, recon_px;
        stages::predictMb(parsed.header, use_fwd, use_bwd, pred_px);
        stages::addResidualMb(pred_px, res, recon_px);
        stages::placeMb(frame, mb_x, mb_y, recon_px);
      }
    }

    ps.bits = static_cast<std::uint32_t>(br.bitPosition() - pic_start_bits);
    stats_.push_back(ps);

    const int display_idx = ph.temporal_ref;
    by_display[display_idx] = std::move(frame);
    if (ph.type != FrameType::B) {
      prev_ref_display = last_ref_display;
      last_ref_display = display_idx;
      fwd_ref = prev_ref_display >= 0 ? &by_display.at(prev_ref_display) : nullptr;
      bwd_ref = &by_display.at(last_ref_display);
    }
  }

  std::vector<Frame> out;
  out.reserve(by_display.size());
  for (auto& [idx, f] : by_display) out.push_back(std::move(f));
  return out;
}

}  // namespace eclipse::media
