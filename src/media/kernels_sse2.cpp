// SSE2 backend for the media kernels. x86-64 makes SSE2 architectural, so
// this TU needs no special compile flags; runtime gating happens in
// kernels.cpp. Every kernel is bit-identical to the scalar oracle — see
// DESIGN.md §11 for the per-kernel arguments (accumulator width proofs,
// exact-division trick, saturation-as-clamp equivalences).

#include "kernels_impl.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

#include <bit>

namespace eclipse::media::kernels::detail {

namespace {

// ----------------------------------------------------------------- tables

struct DctTabs {
  // Row-pass coefficient pairs for pmaddwd, [x-pair][lane]:
  // fwd_pairs[p][2u+e] = K[u][2p+e] (u = output lane, e = pair element).
  alignas(16) std::int16_t fwd_pairs[4][16];
  // inv_pairs[p][2x+e] = K[2p+e][x] (x = output lane, summing over u).
  alignas(16) std::int16_t inv_pairs[4][16];
  // Column-pass broadcast factors: fwd out[v] uses colF[v][y] = K[v][y],
  // inverse out[y] uses colI[y][v] = K[v][y].
  alignas(16) std::int32_t colF[8][8];
  alignas(16) std::int32_t colI[8][8];

  DctTabs() {
    const DctK t = computeDctK();
    for (int p = 0; p < 4; ++p) {
      for (int l = 0; l < 8; ++l) {
        fwd_pairs[p][2 * l] = static_cast<std::int16_t>(t.k[static_cast<std::size_t>(l)]
                                                           [static_cast<std::size_t>(2 * p)]);
        fwd_pairs[p][2 * l + 1] = static_cast<std::int16_t>(
            t.k[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * p + 1)]);
        inv_pairs[p][2 * l] = static_cast<std::int16_t>(
            t.k[static_cast<std::size_t>(2 * p)][static_cast<std::size_t>(l)]);
        inv_pairs[p][2 * l + 1] = static_cast<std::int16_t>(
            t.k[static_cast<std::size_t>(2 * p + 1)][static_cast<std::size_t>(l)]);
      }
    }
    for (int r = 0; r < 8; ++r) {
      for (int c = 0; c < 8; ++c) {
        colF[r][c] = t.k[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
        colI[r][c] = t.k[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)];
      }
    }
  }
};

const DctTabs g_dct;

// ---------------------------------------------------------------- helpers

/// Low 32 bits of a 32x32 multiply (pmulld is SSE4.1; emulate with two
/// pmuludq — the low half of the product is sign-agnostic).
inline __m128i mullo32(__m128i a, __m128i b) {
  const __m128i even = _mm_mul_epu32(a, b);
  const __m128i odd = _mm_mul_epu32(_mm_srli_si128(a, 4), _mm_srli_si128(b, 4));
  return _mm_unpacklo_epi32(_mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0)),
                            _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0)));
}

/// Broadcasts the int16 pair (r[0], r[1]) into every 32-bit lane, matching
/// the pmaddwd operand layout.
inline __m128i broadcastPair(const std::int16_t* r) {
  const std::uint32_t bits = static_cast<std::uint16_t>(r[0]) |
                             (static_cast<std::uint32_t>(static_cast<std::uint16_t>(r[1])) << 16);
  return _mm_set1_epi32(static_cast<int>(bits));
}

/// One row of the row pass: 8 outputs = (pair-MAC + kDctRound) >> kDctShift.
inline void dctRowPass(const std::int16_t* in_row, const std::int16_t pairs[4][16],
                       std::int32_t* tmp_row) {
  const __m128i round = _mm_set1_epi32(kDctRound);
  __m128i acc0 = round;
  __m128i acc1 = round;
  for (int p = 0; p < 4; ++p) {
    const __m128i pr = broadcastPair(in_row + 2 * p);
    acc0 = _mm_add_epi32(acc0,
                         _mm_madd_epi16(pr, _mm_load_si128(reinterpret_cast<const __m128i*>(
                                                 &pairs[p][0]))));
    acc1 = _mm_add_epi32(acc1,
                         _mm_madd_epi16(pr, _mm_load_si128(reinterpret_cast<const __m128i*>(
                                                 &pairs[p][8]))));
  }
  _mm_store_si128(reinterpret_cast<__m128i*>(tmp_row), _mm_srai_epi32(acc0, kDctShift));
  _mm_store_si128(reinterpret_cast<__m128i*>(tmp_row + 4), _mm_srai_epi32(acc1, kDctShift));
}

/// One output row of the column pass: broadcast-factor MACs over the tmp
/// rows, then (acc + kDctRound) >> kDctShift and clamp16 via packs_epi32
/// (signed saturation IS clamp16).
inline void dctColPass(const std::int32_t* tmp, const std::int32_t* factors,
                       std::int16_t* out_row) {
  const __m128i round = _mm_set1_epi32(kDctRound);
  __m128i acc0 = round;
  __m128i acc1 = round;
  for (int t = 0; t < 8; ++t) {
    const __m128i f = _mm_set1_epi32(factors[t]);
    const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(tmp + t * 8));
    const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(tmp + t * 8 + 4));
    acc0 = _mm_add_epi32(acc0, mullo32(lo, f));
    acc1 = _mm_add_epi32(acc1, mullo32(hi, f));
  }
  acc0 = _mm_srai_epi32(acc0, kDctShift);
  acc1 = _mm_srai_epi32(acc1, kDctShift);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out_row), _mm_packs_epi32(acc0, acc1));
}

}  // namespace

void sse2DctForward(const Block& in, Block& out) {
  alignas(16) std::int32_t tmp[64];
  for (int y = 0; y < 8; ++y) dctRowPass(&in[static_cast<std::size_t>(y * 8)], g_dct.fwd_pairs, tmp + y * 8);
  for (int v = 0; v < 8; ++v) dctColPass(tmp, g_dct.colF[v], &out[static_cast<std::size_t>(v * 8)]);
}

void sse2DctInverse(const Block& in, Block& out) {
  alignas(16) std::int32_t tmp[64];
  for (int v = 0; v < 8; ++v) dctRowPass(&in[static_cast<std::size_t>(v * 8)], g_dct.inv_pairs, tmp + v * 8);
  for (int y = 0; y < 8; ++y) dctColPass(tmp, g_dct.colI[y], &out[static_cast<std::size_t>(y * 8)]);
}

// ------------------------------------------------------------------- quant

namespace {

/// Exact n/step for 0 <= n < 2^20, 0 < step < 2^13 via double division:
/// quotients are either exactly representable or at least 2^-13 away from
/// an integer while the rounding error is below 2^-32, so truncation equals
/// integer division.
inline __m128i div4(__m128i n, __m128i step) {
  const __m128d n_lo = _mm_cvtepi32_pd(n);
  const __m128d n_hi = _mm_cvtepi32_pd(_mm_srli_si128(n, 8));
  const __m128d s_lo = _mm_cvtepi32_pd(step);
  const __m128d s_hi = _mm_cvtepi32_pd(_mm_srli_si128(step, 8));
  const __m128i q_lo = _mm_cvttpd_epi32(_mm_div_pd(n_lo, s_lo));
  const __m128i q_hi = _mm_cvttpd_epi32(_mm_div_pd(n_hi, s_hi));
  return _mm_unpacklo_epi64(q_lo, q_hi);
}

}  // namespace

void sse2Quantize(const Block& coefs, Block& levels, int qscale, const quant::Matrix& m) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i qs = _mm_set1_epi16(static_cast<short>(qscale));
  const __m128i lv_max = _mm_set1_epi16(2047);
  const __m128i lv_min = _mm_set1_epi16(-2047);
  for (int i = 0; i < 64; i += 8) {
    const __m128i c16 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&coefs[static_cast<std::size_t>(i)]));
    const __m128i m8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(&m[static_cast<std::size_t>(i)]));
    const __m128i step16 = _mm_mullo_epi16(_mm_unpacklo_epi8(m8, zero), qs);  // <= 7905

    const __m128i csign = _mm_cmpgt_epi16(zero, c16);
    __m128i q[2];
    for (int half = 0; half < 2; ++half) {
      const __m128i c32 = half == 0 ? _mm_unpacklo_epi16(c16, csign) : _mm_unpackhi_epi16(c16, csign);
      const __m128i s32 = half == 0 ? _mm_unpacklo_epi16(step16, zero) : _mm_unpackhi_epi16(step16, zero);
      const __m128i sign = _mm_srai_epi32(c32, 31);
      const __m128i absc = _mm_sub_epi32(_mm_xor_si128(c32, sign), sign);
      // n = |coef|*16 + step/2; lv = sign * (n / step)
      const __m128i n = _mm_add_epi32(_mm_slli_epi32(absc, 4), _mm_srli_epi32(s32, 1));
      const __m128i qq = div4(n, s32);
      q[half] = _mm_sub_epi32(_mm_xor_si128(qq, sign), sign);
    }
    // packs saturates to +-32767/-32768 first; the tighter +-2047 clamp
    // below makes the chain equal to clampLevel on the exact quotient.
    __m128i lv = _mm_packs_epi32(q[0], q[1]);
    lv = _mm_min_epi16(lv, lv_max);
    lv = _mm_max_epi16(lv, lv_min);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&levels[static_cast<std::size_t>(i)]), lv);
  }
}

void sse2Dequantize(const Block& levels, Block& coefs, int qscale, const quant::Matrix& m) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i qs = _mm_set1_epi16(static_cast<short>(qscale));
  const __m128i fifteen = _mm_set1_epi32(15);
  for (int i = 0; i < 64; i += 8) {
    const __m128i l16 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&levels[static_cast<std::size_t>(i)]));
    const __m128i m8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(&m[static_cast<std::size_t>(i)]));
    const __m128i step16 = _mm_mullo_epi16(_mm_unpacklo_epi8(m8, zero), qs);
    const __m128i lsign = _mm_cmpgt_epi16(zero, l16);
    __m128i c[2];
    for (int half = 0; half < 2; ++half) {
      const __m128i l32 = half == 0 ? _mm_unpacklo_epi16(l16, lsign) : _mm_unpackhi_epi16(l16, lsign);
      const __m128i s32 = half == 0 ? _mm_unpacklo_epi16(step16, zero) : _mm_unpackhi_epi16(step16, zero);
      const __m128i prod = mullo32(l32, s32);  // |prod| < 2^28, exact
      // Truncate-toward-zero /16: add 15 to negatives, then >> 4.
      const __m128i sign = _mm_srai_epi32(prod, 31);
      c[half] = _mm_srai_epi32(_mm_add_epi32(prod, _mm_and_si128(sign, fifteen)), 4);
    }
    // packs_epi32 saturation == clampCoef.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&coefs[static_cast<std::size_t>(i)]),
                     _mm_packs_epi32(c[0], c[1]));
  }
}

// -------------------------------------------------------------------- rle

void sse2RleEncode(const Block& scanned, std::vector<rle::RunLevel>& out) {
  out.clear();
  const __m128i zero = _mm_setzero_si128();
  std::uint64_t nonzero = 0;
  for (int i = 0; i < 64; i += 8) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&scanned[static_cast<std::size_t>(i)]));
    const __m128i z = _mm_cmpeq_epi16(v, zero);
    const int zb = _mm_movemask_epi8(_mm_packs_epi16(z, z)) & 0xFF;
    nonzero |= static_cast<std::uint64_t>(~zb & 0xFF) << i;
  }
  int prev = -1;
  while (nonzero != 0) {
    const int pos = std::countr_zero(nonzero);
    nonzero &= nonzero - 1;
    out.push_back(rle::RunLevel{static_cast<std::uint8_t>(pos - prev - 1),
                                scanned[static_cast<std::size_t>(pos)]});
    prev = pos;
  }
}

// ------------------------------------------------------------------ motion

namespace {

inline __m128i loadu8(const std::uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

/// 16-wide half-pel prediction row; the 4-tap case widens to u16 because
/// pavgb-of-pavgb is NOT bit-exact for (a+b+c+d+2)/4.
inline __m128i predRow16(const std::uint8_t* r0, int ref_stride, int fx, int fy) {
  const std::uint8_t* r1 = r0 + ref_stride;
  if (fx == 0 && fy == 0) return loadu8(r0);
  if (fx != 0 && fy == 0) return _mm_avg_epu8(loadu8(r0), loadu8(r0 + 1));
  if (fx == 0) return _mm_avg_epu8(loadu8(r0), loadu8(r1));
  const __m128i zero = _mm_setzero_si128();
  const __m128i two = _mm_set1_epi16(2);
  const __m128i a = loadu8(r0);
  const __m128i b = loadu8(r0 + 1);
  const __m128i c = loadu8(r1);
  const __m128i d = loadu8(r1 + 1);
  __m128i lo = _mm_add_epi16(_mm_add_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(b, zero)),
                             _mm_add_epi16(_mm_unpacklo_epi8(c, zero), _mm_unpacklo_epi8(d, zero)));
  __m128i hi = _mm_add_epi16(_mm_add_epi16(_mm_unpackhi_epi8(a, zero), _mm_unpackhi_epi8(b, zero)),
                             _mm_add_epi16(_mm_unpackhi_epi8(c, zero), _mm_unpackhi_epi8(d, zero)));
  lo = _mm_srli_epi16(_mm_add_epi16(lo, two), 2);
  hi = _mm_srli_epi16(_mm_add_epi16(hi, two), 2);
  return _mm_packus_epi16(lo, hi);
}

/// 8-wide variant (chroma); loads stay within [0, 8+fx) x rows touched.
inline __m128i predRow8(const std::uint8_t* r0, int ref_stride, int fx, int fy) {
  const std::uint8_t* r1 = r0 + ref_stride;
  if (fx == 0 && fy == 0) return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0));
  if (fx != 0 && fy == 0) {
    return _mm_avg_epu8(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0)),
                        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0 + 1)));
  }
  if (fx == 0) {
    return _mm_avg_epu8(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0)),
                        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r1)));
  }
  const __m128i zero = _mm_setzero_si128();
  const __m128i two = _mm_set1_epi16(2);
  const __m128i a = _mm_unpacklo_epi8(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0)), zero);
  const __m128i b = _mm_unpacklo_epi8(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0 + 1)), zero);
  const __m128i c = _mm_unpacklo_epi8(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(r1)), zero);
  const __m128i d = _mm_unpacklo_epi8(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(r1 + 1)), zero);
  __m128i sum = _mm_add_epi16(_mm_add_epi16(a, b), _mm_add_epi16(c, d));
  sum = _mm_srli_epi16(_mm_add_epi16(sum, two), 2);
  return _mm_packus_epi16(sum, sum);
}

}  // namespace

std::uint32_t sse2Sad16xH(const std::uint8_t* cur, int cur_stride, const std::uint8_t* ref,
                          int ref_stride, int h, int fx, int fy) {
  __m128i acc = _mm_setzero_si128();
  for (int y = 0; y < h; ++y) {
    const __m128i c = loadu8(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    const __m128i p = predRow16(ref + static_cast<std::ptrdiff_t>(y) * ref_stride, ref_stride, fx, fy);
    acc = _mm_add_epi64(acc, _mm_sad_epu8(c, p));
  }
  acc = _mm_add_epi64(acc, _mm_srli_si128(acc, 8));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(acc));
}

void sse2Interp16xH(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                    int h, int fx, int fy) {
  for (int y = 0; y < h; ++y) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + static_cast<std::ptrdiff_t>(y) * dst_stride),
                     predRow16(src + static_cast<std::ptrdiff_t>(y) * src_stride, src_stride, fx, fy));
  }
}

void sse2Interp8xH(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                   int h, int fx, int fy) {
  for (int y = 0; y < h; ++y) {
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + static_cast<std::ptrdiff_t>(y) * dst_stride),
                     predRow8(src + static_cast<std::ptrdiff_t>(y) * src_stride, src_stride, fx, fy));
  }
}

void sse2AvgU8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_avg_epu8(loadu8(a + i), loadu8(b + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<std::uint8_t>((a[i] + b[i] + 1) / 2);
}

void sse2AddRes8x8(std::uint8_t* dst, int dst_stride, const std::uint8_t* pred, int pred_stride,
                   const std::int16_t* res) {
  const __m128i zero = _mm_setzero_si128();
  for (int y = 0; y < 8; ++y) {
    const __m128i p = _mm_unpacklo_epi8(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(pred + static_cast<std::ptrdiff_t>(y) * pred_stride)), zero);
    const __m128i r = _mm_loadu_si128(reinterpret_cast<const __m128i*>(res + y * 8));
    // adds_epi16 saturation keeps overflows on the correct side of the
    // [0,255] clamp that packus applies (clampPel equivalence).
    const __m128i s = _mm_adds_epi16(p, r);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + static_cast<std::ptrdiff_t>(y) * dst_stride),
                     _mm_packus_epi16(s, s));
  }
}

void sse2Diff8x8(std::int16_t* res, const std::uint8_t* cur, int cur_stride,
                 const std::uint8_t* pred, int pred_stride) {
  const __m128i zero = _mm_setzero_si128();
  for (int y = 0; y < 8; ++y) {
    const __m128i c = _mm_unpacklo_epi8(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(cur + static_cast<std::ptrdiff_t>(y) * cur_stride)), zero);
    const __m128i p = _mm_unpacklo_epi8(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(pred + static_cast<std::ptrdiff_t>(y) * pred_stride)), zero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(res + y * 8), _mm_sub_epi16(c, p));
  }
}

void sse2ClampStoreRow(const std::int32_t* src, std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 4));
    const __m128i v16 = _mm_packs_epi32(a, b);
    const __m128i v8 = _mm_packus_epi16(v16, v16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), v8);
  }
  for (; i < n; ++i) {
    const std::int32_t v = src[i];
    dst[i] = static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}

const KernelTable* sse2Table() {
  static const KernelTable t = [] {
    KernelTable k;
    k.backend = Backend::Sse2;
    k.name = "sse2";
    k.dct_forward = sse2DctForward;
    k.dct_inverse = sse2DctInverse;
    k.quantize = sse2Quantize;
    k.dequantize = sse2Dequantize;
    k.to_scan = scalarToScan;  // no pshufb in SSE2; scan stays scalar
    k.from_scan = scalarFromScan;
    k.rle_encode = sse2RleEncode;
    k.sad_16xh = sse2Sad16xH;
    k.interp_16xh = sse2Interp16xH;
    k.interp_8xh = sse2Interp8xH;
    k.avg_u8 = sse2AvgU8;
    k.add_res_8x8 = sse2AddRes8x8;
    k.diff_8x8 = sse2Diff8x8;
    k.clamp_store_row = sse2ClampStoreRow;
    k.vlc_get_block = vlcGetBlockFast;
    return k;
  }();
  return &t;
}

}  // namespace eclipse::media::kernels::detail

#else  // non-x86: backend not compiled in

namespace eclipse::media::kernels::detail {
const KernelTable* sse2Table() { return nullptr; }
}  // namespace eclipse::media::kernels::detail

#endif
