#include "eclipse/media/packets.hpp"

namespace eclipse::media {

void put(ByteWriter& w, const SeqHeader& v) {
  w.u16(v.width);
  w.u16(v.height);
  w.u8(v.gop_n);
  w.u8(v.gop_m);
  w.u8(v.qscale);
  w.u16(v.frame_count);
  w.u8(v.scan_order);
  w.u8(v.use_intra_matrix);
}

void get(ByteReader& r, SeqHeader& v) {
  v.width = r.u16();
  v.height = r.u16();
  v.gop_n = r.u8();
  v.gop_m = r.u8();
  v.qscale = r.u8();
  v.frame_count = r.u16();
  v.scan_order = r.u8();
  v.use_intra_matrix = r.u8();
}

void put(ByteWriter& w, const PicHeader& v) {
  w.u8(static_cast<std::uint8_t>(v.type));
  w.u16(v.temporal_ref);
  w.u8(v.qscale);
}

void get(ByteReader& r, PicHeader& v) {
  v.type = static_cast<FrameType>(r.u8());
  v.temporal_ref = r.u16();
  v.qscale = r.u8();
}

void put(ByteWriter& w, const MbHeader& v) {
  w.u16(v.mb_x);
  w.u16(v.mb_y);
  w.u8(static_cast<std::uint8_t>(v.mode));
  w.i16(v.mv_fwd.x);
  w.i16(v.mv_fwd.y);
  w.i16(v.mv_bwd.x);
  w.i16(v.mv_bwd.y);
  w.u8(v.cbp);
  w.u8(v.qscale);
}

void get(ByteReader& r, MbHeader& v) {
  v.mb_x = r.u16();
  v.mb_y = r.u16();
  v.mode = static_cast<MbMode>(r.u8());
  v.mv_fwd.x = r.i16();
  v.mv_fwd.y = r.i16();
  v.mv_bwd.x = r.i16();
  v.mv_bwd.y = r.i16();
  v.cbp = r.u8();
  v.qscale = r.u8();
}

void put(ByteWriter& w, const MbCoefs& v) {
  w.u8(v.cbp);
  w.u8(v.intra);
  w.u8(v.qscale);
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    if ((v.cbp & (1u << b)) == 0) continue;
    const auto& pairs = v.blocks[static_cast<std::size_t>(b)];
    w.u16(static_cast<std::uint16_t>(pairs.size()));
    for (const auto& p : pairs) {
      w.u8(p.run);
      w.i16(p.level);
    }
  }
}

void get(ByteReader& r, MbCoefs& v) {
  v.cbp = r.u8();
  v.intra = r.u8();
  v.qscale = r.u8();
  for (int b = 0; b < kBlocksPerMacroblock; ++b) {
    auto& pairs = v.blocks[static_cast<std::size_t>(b)];
    pairs.clear();
    if ((v.cbp & (1u << b)) == 0) continue;
    const std::uint16_t n = r.u16();
    pairs.reserve(n);
    for (std::uint16_t i = 0; i < n; ++i) {
      rle::RunLevel p;
      p.run = r.u8();
      p.level = r.i16();
      pairs.push_back(p);
    }
  }
}

void put(ByteWriter& w, const MbBlocks& v) {
  w.u8(v.cbp);
  w.u8(v.intra);
  for (const auto& block : v.blocks) {
    for (const auto c : block) w.i16(c);
  }
}

void get(ByteReader& r, MbBlocks& v) {
  v.cbp = r.u8();
  v.intra = r.u8();
  for (auto& block : v.blocks) {
    for (auto& c : block) c = r.i16();
  }
}

void put(ByteWriter& w, const MbPixels& v) {
  w.bytes(v.y);
  w.bytes(v.cb);
  w.bytes(v.cr);
}

void get(ByteReader& r, MbPixels& v) {
  r.bytes(v.y);
  r.bytes(v.cb);
  r.bytes(v.cr);
}

}  // namespace eclipse::media
