#include "eclipse/media/dct.hpp"

#include <array>
#include <cmath>
#include <cstdint>

namespace eclipse::media::dct {

namespace {

constexpr int kShift = 13;  // fixed-point fraction bits
constexpr std::int32_t kRound = 1 << (kShift - 1);

/// K[u][x] = round( (alpha(u)/2) * cos((2x+1) u pi / 16) * 2^kShift )
struct Tables {
  std::array<std::array<std::int32_t, 8>, 8> fwd{};  // [u][x]
  Tables() {
    for (int u = 0; u < 8; ++u) {
      const double alpha = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      for (int x = 0; x < 8; ++x) {
        const double c = (alpha / 2.0) * std::cos((2.0 * x + 1.0) * u * M_PI / 16.0);
        fwd[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)] =
            static_cast<std::int32_t>(std::lround(c * (1 << kShift)));
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

std::int16_t clamp16(std::int32_t v) {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return static_cast<std::int16_t>(v);
}

}  // namespace

void forward(const Block& in, Block& out) {
  const auto& k = tables().fwd;
  std::array<std::int32_t, 64> tmp{};
  // Rows: tmp[y][u] = sum_x in[y][x] * K[u][x]
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      std::int64_t acc = 0;
      for (int x = 0; x < 8; ++x) {
        acc += static_cast<std::int64_t>(in[static_cast<std::size_t>(y * 8 + x)]) *
               k[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)];
      }
      tmp[static_cast<std::size_t>(y * 8 + u)] =
          static_cast<std::int32_t>((acc + kRound) >> kShift);
    }
  }
  // Columns: out[v][u] = sum_y tmp[y][u] * K[v][y]
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      std::int64_t acc = 0;
      for (int y = 0; y < 8; ++y) {
        acc += static_cast<std::int64_t>(tmp[static_cast<std::size_t>(y * 8 + u)]) *
               k[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      }
      out[static_cast<std::size_t>(v * 8 + u)] =
          clamp16(static_cast<std::int32_t>((acc + kRound) >> kShift));
    }
  }
}

void inverse(const Block& in, Block& out) {
  const auto& k = tables().fwd;
  std::array<std::int32_t, 64> tmp{};
  // Rows: tmp[v][x] = sum_u in[v][u] * K[u][x]
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      std::int64_t acc = 0;
      for (int u = 0; u < 8; ++u) {
        acc += static_cast<std::int64_t>(in[static_cast<std::size_t>(v * 8 + u)]) *
               k[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)];
      }
      tmp[static_cast<std::size_t>(v * 8 + x)] =
          static_cast<std::int32_t>((acc + kRound) >> kShift);
    }
  }
  // Columns: out[y][x] = sum_v tmp[v][x] * K[v][y]
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      std::int64_t acc = 0;
      for (int v = 0; v < 8; ++v) {
        acc += static_cast<std::int64_t>(tmp[static_cast<std::size_t>(v * 8 + x)]) *
               k[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      }
      out[static_cast<std::size_t>(y * 8 + x)] =
          clamp16(static_cast<std::int32_t>((acc + kRound) >> kShift));
    }
  }
}

}  // namespace eclipse::media::dct
