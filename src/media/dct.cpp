#include "eclipse/media/dct.hpp"

#include "eclipse/media/kernels.hpp"

namespace eclipse::media::dct {

// The transform maths lives in the kernel backends (kernels_scalar.cpp is
// the original implementation, verbatim; SIMD backends are bit-identical
// to it). See DESIGN.md §11.

void forward(const Block& in, Block& out) { kernels::active().dct_forward(in, out); }

void inverse(const Block& in, Block& out) { kernels::active().dct_inverse(in, out); }

}  // namespace eclipse::media::dct
