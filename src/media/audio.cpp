#include "eclipse/media/audio.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "eclipse/sim/prng.hpp"

namespace eclipse::media::audio {

namespace {

// Standard IMA ADPCM tables.
constexpr int kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,    19,    21,    23,
    25,    28,    31,    34,    37,    41,    45,    50,    55,    60,    66,    73,    80,
    88,    97,    107,   118,   130,   143,   157,   173,   190,   209,   230,   253,   279,
    307,   337,   371,   408,   449,   494,   544,   598,   658,   724,   796,   876,   963,
    1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,  3024,  3327,
    3660,  4026,  4428,  4871,  5358,  5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487,
    12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

constexpr int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};

int clampi(int v, int lo, int hi) { return v < lo ? lo : (v > hi ? hi : v); }

/// Shared ADPCM state machine: one 4-bit code <-> one sample.
struct Adpcm {
  int predictor = 0;
  int index = 0;

  std::uint8_t encodeSample(int sample) {
    const int step = kStepTable[index];
    int diff = sample - predictor;
    std::uint8_t code = 0;
    if (diff < 0) {
      code = 8;
      diff = -diff;
    }
    int temp = step;
    if (diff >= temp) {
      code |= 4;
      diff -= temp;
    }
    temp >>= 1;
    if (diff >= temp) {
      code |= 2;
      diff -= temp;
    }
    temp >>= 1;
    if (diff >= temp) code |= 1;
    decodeSample(code);  // track the decoder's reconstruction exactly
    return code;
  }

  int decodeSample(std::uint8_t code) {
    const int step = kStepTable[index];
    int diff = step >> 3;
    if ((code & 4) != 0) diff += step;
    if ((code & 2) != 0) diff += step >> 1;
    if ((code & 1) != 0) diff += step >> 2;
    if ((code & 8) != 0) diff = -diff;
    predictor = clampi(predictor + diff, -32768, 32767);
    index = clampi(index + kIndexTable[code], 0, 88);
    return predictor;
  }
};

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto n = out.size();
  out.resize(n + 4);
  std::memcpy(out.data() + n, &v, 4);
}

std::uint32_t getU32(std::span<const std::uint8_t> in, std::size_t at) {
  if (at + 4 > in.size()) throw std::runtime_error("audio: truncated stream");
  std::uint32_t v = 0;
  std::memcpy(&v, in.data() + at, 4);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode(std::span<const std::int16_t> pcm, const AudioParams& params) {
  if (params.block_samples == 0 || params.block_samples % 2 != 0) {
    throw std::invalid_argument("audio::encode: block_samples must be even and > 0");
  }
  std::vector<std::uint8_t> out;
  putU32(out, kAudioMagic);
  putU32(out, params.sample_rate);
  putU32(out, params.block_samples);
  putU32(out, static_cast<std::uint32_t>(pcm.size()));

  Adpcm state;
  for (std::size_t base = 0; base < pcm.size(); base += params.block_samples) {
    // Block header: predictor restart point.
    const auto pred = static_cast<std::int16_t>(state.predictor);
    out.push_back(static_cast<std::uint8_t>(pred & 0xFF));
    out.push_back(static_cast<std::uint8_t>((pred >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>(state.index));
    out.push_back(0);  // pad / reserved
    for (std::uint32_t i = 0; i < params.block_samples; i += 2) {
      const int s0 = base + i < pcm.size() ? pcm[base + i] : 0;
      const int s1 = base + i + 1 < pcm.size() ? pcm[base + i + 1] : 0;
      const std::uint8_t lo = state.encodeSample(s0);
      const std::uint8_t hi = state.encodeSample(s1);
      out.push_back(static_cast<std::uint8_t>(lo | (hi << 4)));
    }
  }
  return out;
}

void decodeBlock(std::span<const std::uint8_t> block, std::uint32_t block_samples,
                 std::vector<std::int16_t>& out) {
  if (block.size() != blockBytes(block_samples)) {
    throw std::runtime_error("audio::decodeBlock: bad block size");
  }
  Adpcm state;
  state.predictor = static_cast<std::int16_t>(block[0] | (block[1] << 8));
  state.index = clampi(block[2], 0, 88);
  for (std::uint32_t i = 0; i < block_samples / 2; ++i) {
    const std::uint8_t byte = block[4 + i];
    out.push_back(static_cast<std::int16_t>(state.decodeSample(byte & 0x0F)));
    out.push_back(static_cast<std::int16_t>(state.decodeSample(byte >> 4)));
  }
}

std::vector<std::int16_t> decode(std::span<const std::uint8_t> bytes) {
  if (getU32(bytes, 0) != kAudioMagic) throw std::runtime_error("audio: bad magic");
  const std::uint32_t block_samples = getU32(bytes, 8);
  const std::uint32_t total = getU32(bytes, 12);
  if (block_samples == 0 || block_samples % 2 != 0) {
    throw std::runtime_error("audio: bad block size");
  }
  std::vector<std::int16_t> out;
  out.reserve(total);
  std::size_t pos = 16;
  const std::size_t bb = blockBytes(block_samples);
  while (out.size() < total) {
    if (pos + bb > bytes.size()) throw std::runtime_error("audio: truncated stream");
    decodeBlock(bytes.subspan(pos, bb), block_samples, out);
    pos += bb;
  }
  out.resize(total);
  return out;
}

double snrDb(std::span<const std::int16_t> original, std::span<const std::int16_t> decoded) {
  if (original.size() != decoded.size() || original.empty()) {
    throw std::invalid_argument("audio::snrDb: size mismatch");
  }
  double signal = 0, noise = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double s = original[i];
    const double n = static_cast<double>(original[i]) - decoded[i];
    signal += s * s;
    noise += n * n;
  }
  if (noise <= 0) return 120.0;
  return 10.0 * std::log10(signal / noise);
}

std::vector<std::int16_t> generateTone(std::size_t samples, std::uint64_t seed) {
  sim::Prng rng(seed);
  const double f1 = 200.0 + rng.uniform() * 800.0;
  const double f2 = 1000.0 + rng.uniform() * 3000.0;
  const double a2 = 0.2 + rng.uniform() * 0.3;
  std::vector<std::int16_t> out(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / 48000.0;
    const double env = 0.6 + 0.4 * std::sin(2 * M_PI * 3.0 * t);
    const double v = env * (std::sin(2 * M_PI * f1 * t) + a2 * std::sin(2 * M_PI * f2 * t));
    out[i] = static_cast<std::int16_t>(clampi(static_cast<int>(std::lround(v * 12000)), -32768, 32767));
  }
  return out;
}

}  // namespace eclipse::media::audio
