#include "eclipse/media/rle.hpp"

#include "eclipse/media/bitstream.hpp"
#include "eclipse/media/kernels.hpp"

namespace eclipse::media::rle {

std::vector<RunLevel> encode(const Block& scanned) {
  std::vector<RunLevel> pairs;
  kernels::active().rle_encode(scanned, pairs);
  return pairs;
}

void decode(const std::vector<RunLevel>& pairs, Block& scanned) {
  scanned.fill(0);
  int pos = 0;
  for (const auto& p : pairs) {
    pos += p.run;
    if (p.level == 0) throw BitstreamError("rle::decode: zero level");
    if (pos >= 64) throw BitstreamError("rle::decode: pairs overflow 8x8 block");
    scanned[static_cast<std::size_t>(pos)] = p.level;
    ++pos;
  }
}

}  // namespace eclipse::media::rle
