#include "eclipse/media/video_gen.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "eclipse/media/kernels.hpp"

namespace eclipse::media {

namespace {

struct MovingObject {
  double x, y;      // top-left, luma pels
  double vx, vy;    // pels per frame
  int w, h;
  std::uint8_t luma;
  std::uint8_t cb;
  std::uint8_t cr;
};

std::uint8_t clampPel(int v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

/// Deterministic object set derived from the seed and scene number, so that
/// generateFrame(i) is reproducible without generating frames 0..i-1.
std::vector<MovingObject> makeObjects(const VideoGenParams& p, int scene) {
  sim::Prng rng(p.seed * 7919 + static_cast<std::uint64_t>(scene) * 104729 + 13);
  std::vector<MovingObject> objs;
  objs.reserve(static_cast<std::size_t>(p.object_count));
  for (int i = 0; i < p.object_count; ++i) {
    MovingObject o{};
    o.w = static_cast<int>(rng.range(p.width / 8, p.width / 3));
    o.h = static_cast<int>(rng.range(p.height / 8, p.height / 3));
    o.x = static_cast<double>(rng.range(0, p.width - o.w));
    o.y = static_cast<double>(rng.range(0, p.height - o.h));
    o.vx = static_cast<double>(rng.range(-p.motion_speed, p.motion_speed));
    o.vy = static_cast<double>(rng.range(-p.motion_speed, p.motion_speed));
    if (o.vx == 0 && o.vy == 0) o.vx = 1;
    o.luma = static_cast<std::uint8_t>(rng.range(40, 220));
    o.cb = static_cast<std::uint8_t>(rng.range(64, 192));
    o.cr = static_cast<std::uint8_t>(rng.range(64, 192));
    objs.push_back(o);
  }
  return objs;
}

}  // namespace

Frame generateFrame(const VideoGenParams& p, int index) {
  Frame f(p.width, p.height);
  const int scene = p.scene_cut_period > 0 ? index / p.scene_cut_period : 0;
  const int t = p.scene_cut_period > 0 ? index % p.scene_cut_period : index;
  const auto& k = kernels::active();

  // Background: diagonal gradient plus sinusoidal texture, translating with
  // time so P-frames see global motion. The floating-point math is kept
  // per-pixel (bit-exactness across backends); only the clamp-and-narrow
  // store is batched per row through the kernel table.
  sim::Prng noise_rng(p.seed * 31 + static_cast<std::uint64_t>(index) * 1000003 + 7);
  const int bg_shift = t * std::max(1, p.motion_speed / 2);
  auto& yp = f.yPlane();
  std::vector<std::int32_t> row(static_cast<std::size_t>(p.width));
  for (int y = 0; y < p.height; ++y) {
    const int gy = y + scene * 23;
    for (int x = 0; x < p.width; ++x) {
      const int gx = x + bg_shift + scene * 37;
      double v = 96.0 + (gx * 48.0) / p.width + (gy * 32.0) / p.height;
      if (p.detail > 0) {
        v += 24.0 * std::sin(gx * 0.18 * p.detail) * std::cos(gy * 0.13 * p.detail);
      }
      if (p.noise_level > 0) {
        v += (noise_rng.uniform() - 0.5) * 2.0 * p.noise_level;
      }
      row[static_cast<std::size_t>(x)] = static_cast<std::int32_t>(std::lround(v));
    }
    k.clamp_store_row(row.data(),
                      yp.data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(p.width),
                      static_cast<std::size_t>(p.width));
  }
  // Chroma background: slow gradients. Cb depends only on x and Cr only on
  // y, so each plane is one computed row (resp. one fill value) per frame.
  const int cw = p.width / 2;
  const int ch = p.height / 2;
  auto& cbp = f.cbPlane();
  auto& crp = f.crPlane();
  std::vector<std::int32_t> cb_row(static_cast<std::size_t>(cw));
  for (int x = 0; x < cw; ++x) {
    cb_row[static_cast<std::size_t>(x)] = 112 + (x + bg_shift / 2) * 24 / cw;
  }
  for (int y = 0; y < ch; ++y) {
    std::uint8_t* cb_dst = cbp.data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(cw);
    k.clamp_store_row(cb_row.data(), cb_dst, static_cast<std::size_t>(cw));
    std::fill_n(crp.data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(cw),
                static_cast<std::size_t>(cw), clampPel(136 - (y + scene * 11) * 24 / ch));
  }

  // Foreground objects translate linearly and bounce off frame edges.
  auto objs = makeObjects(p, scene);
  for (auto& o : objs) {
    double ox = o.x + o.vx * t;
    double oy = o.y + o.vy * t;
    // Reflect into [0, max] (triangle wave) so objects stay in frame.
    auto bounce = [](double v, double max) {
      if (max <= 0) return 0.0;
      const double period = 2.0 * max;
      double m = std::fmod(v, period);
      if (m < 0) m += period;
      return m <= max ? m : period - m;
    };
    ox = bounce(ox, static_cast<double>(p.width - o.w));
    oy = bounce(oy, static_cast<double>(p.height - o.h));
    const int ix = static_cast<int>(std::lround(ox));
    const int iy = static_cast<int>(std::lround(oy));
    const int x0 = std::max(0, ix);
    const int x1 = std::min(p.width, ix + o.w);  // exclusive
    if (x0 >= x1) continue;
    for (int y = std::max(0, iy); y < std::min(p.height, iy + o.h); ++y) {
      std::fill_n(yp.data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(p.width) +
                      static_cast<std::size_t>(x0),
                  static_cast<std::size_t>(x1 - x0), o.luma);
      // Chroma covers columns x0/2 .. (x1-1)/2 inclusive on row y/2.
      const std::size_t c0 = static_cast<std::size_t>(y / 2) * static_cast<std::size_t>(cw) +
                             static_cast<std::size_t>(x0 / 2);
      const std::size_t cn = static_cast<std::size_t>((x1 - 1) / 2 - x0 / 2 + 1);
      std::fill_n(cbp.data() + c0, cn, o.cb);
      std::fill_n(crp.data() + c0, cn, o.cr);
    }
  }
  return f;
}

std::vector<Frame> generateVideo(const VideoGenParams& params) {
  std::vector<Frame> frames;
  frames.reserve(static_cast<std::size_t>(params.frames));
  for (int i = 0; i < params.frames; ++i) frames.push_back(generateFrame(params, i));
  return frames;
}

}  // namespace eclipse::media
