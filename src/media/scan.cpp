#include "eclipse/media/scan.hpp"

namespace eclipse::media::scan {

namespace {

// ISO/IEC 13818-2 Figure 7-2: zigzag scanning order.
constexpr std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// ISO/IEC 13818-2 Figure 7-3: alternate scanning order.
constexpr std::array<int, 64> kAlternate = {
    0,  8,  16, 24, 1,  9,  2,  10, 17, 25, 32, 40, 48, 56, 57, 49,
    41, 33, 26, 18, 3,  11, 4,  12, 19, 27, 34, 42, 50, 58, 35, 43,
    51, 59, 20, 28, 5,  13, 6,  14, 21, 29, 36, 44, 52, 60, 37, 45,
    53, 61, 22, 30, 7,  15, 23, 31, 38, 46, 54, 62, 39, 47, 55, 63};

}  // namespace

const std::array<int, 64>& table(Order order) {
  return order == Order::Zigzag ? kZigzag : kAlternate;
}

void toScan(const Block& raster, Block& scanned, Order order) {
  const auto& t = table(order);
  for (int i = 0; i < 64; ++i) {
    scanned[static_cast<std::size_t>(i)] = raster[static_cast<std::size_t>(t[static_cast<std::size_t>(i)])];
  }
}

void fromScan(const Block& scanned, Block& raster, Order order) {
  const auto& t = table(order);
  for (int i = 0; i < 64; ++i) {
    raster[static_cast<std::size_t>(t[static_cast<std::size_t>(i)])] = scanned[static_cast<std::size_t>(i)];
  }
}

}  // namespace eclipse::media::scan
