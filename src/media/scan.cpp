#include "eclipse/media/scan.hpp"

#include "eclipse/media/kernels.hpp"
#include "kernels_impl.hpp"

namespace eclipse::media::scan {

const std::array<int, 64>& table(Order order) {
  // Single definition of the scan orders: the constexpr tables in
  // kernels_impl.hpp, which the SIMD shuffle masks are also built from.
  return order == Order::Zigzag ? kernels::detail::kZigzagTable
                                : kernels::detail::kAlternateTable;
}

void toScan(const Block& raster, Block& scanned, Order order) {
  kernels::active().to_scan(raster, scanned, order);
}

void fromScan(const Block& scanned, Block& raster, Order order) {
  kernels::active().from_scan(scanned, raster, order);
}

}  // namespace eclipse::media::scan
