#include "eclipse/media/motion.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "eclipse/media/kernels.hpp"

namespace eclipse::media::motion {

namespace {

int clampi(int v, int lo, int hi) { return v < lo ? lo : (v > hi ? hi : v); }

std::uint8_t fullPel(const std::vector<std::uint8_t>& plane, int w, int h, int x, int y) {
  x = clampi(x, 0, w - 1);
  y = clampi(y, 0, h - 1);
  return plane[static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
               static_cast<std::size_t>(x)];
}

/// Top-left full-pel anchor and half-pel fraction of a block read. The
/// window is "fast" (vectorizable) when every sample the interpolator
/// touches — columns [x0, x0+w-1+fx], rows [y0, y0+h-1+fy] — is inside
/// the plane, so the edge clamps in fullPel are all no-ops.
struct Anchor {
  int x0, y0, fx, fy;
  bool fast;
};

Anchor anchorFor(int w, int h, int block_w, int block_h, int cx, int cy) {
  Anchor a{};
  a.x0 = cx >> 1;  // floor division, matching sampleHalfPel's x2 >> 1
  a.y0 = cy >> 1;
  a.fx = cx & 1;
  a.fy = cy & 1;
  a.fast = a.x0 >= 0 && a.y0 >= 0 && a.x0 + block_w - 1 + a.fx < w &&
           a.y0 + block_h - 1 + a.fy < h;
  return a;
}

}  // namespace

std::uint8_t sampleHalfPel(const std::vector<std::uint8_t>& plane, int w, int h, int x2, int y2) {
  const int x = x2 >> 1;
  const int y = y2 >> 1;
  const bool hx = (x2 & 1) != 0;
  const bool hy = (y2 & 1) != 0;
  const int a = fullPel(plane, w, h, x, y);
  if (!hx && !hy) return static_cast<std::uint8_t>(a);
  if (hx && !hy) {
    const int b = fullPel(plane, w, h, x + 1, y);
    return static_cast<std::uint8_t>((a + b + 1) / 2);
  }
  if (!hx) {
    const int b = fullPel(plane, w, h, x, y + 1);
    return static_cast<std::uint8_t>((a + b + 1) / 2);
  }
  const int b = fullPel(plane, w, h, x + 1, y);
  const int c = fullPel(plane, w, h, x, y + 1);
  const int d = fullPel(plane, w, h, x + 1, y + 1);
  return static_cast<std::uint8_t>((a + b + c + d + 2) / 4);
}

void predictLuma(const Frame& ref, int px, int py, MotionVector mv, LumaMb& out) {
  const auto& plane = ref.yPlane();
  const int w = ref.width();
  const int h = ref.height();
  const Anchor a = anchorFor(w, h, kMbSize, kMbSize, 2 * px + mv.x, 2 * py + mv.y);
  if (a.fast) {
    kernels::active().interp_16xh(
        out.data(), kMbSize,
        plane.data() + static_cast<std::ptrdiff_t>(a.y0) * w + a.x0, w, kMbSize, a.fx, a.fy);
    return;
  }
  for (int y = 0; y < kMbSize; ++y) {
    for (int x = 0; x < kMbSize; ++x) {
      out[static_cast<std::size_t>(y * kMbSize + x)] =
          sampleHalfPel(plane, w, h, 2 * (px + x) + mv.x, 2 * (py + y) + mv.y);
    }
  }
}

void predictChroma(const std::vector<std::uint8_t>& plane, int w, int h, int px, int py,
                   MotionVector mv, ChromaMb& out) {
  // MPEG-2: chroma vector = luma vector / 2 (rounding toward zero),
  // still in half-pel units of the chroma grid.
  const int cvx = mv.x / 2;
  const int cvy = mv.y / 2;
  const Anchor a = anchorFor(w, h, 8, 8, 2 * px + cvx, 2 * py + cvy);
  if (a.fast) {
    kernels::active().interp_8xh(
        out.data(), 8, plane.data() + static_cast<std::ptrdiff_t>(a.y0) * w + a.x0, w, 8, a.fx,
        a.fy);
    return;
  }
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      out[static_cast<std::size_t>(y * 8 + x)] =
          sampleHalfPel(plane, w, h, 2 * (px + x) + cvx, 2 * (py + y) + cvy);
    }
  }
}

void average(const LumaMb& a, const LumaMb& b, LumaMb& out) {
  kernels::active().avg_u8(a.data(), b.data(), out.data(), out.size());
}

void average(const ChromaMb& a, const ChromaMb& b, ChromaMb& out) {
  kernels::active().avg_u8(a.data(), b.data(), out.data(), out.size());
}

std::uint32_t sadLuma(const Frame& cur, const Frame& ref, int mb_x, int mb_y, MotionVector mv) {
  const int px = mb_x * kMbSize;
  const int py = mb_y * kMbSize;
  const auto& rplane = ref.yPlane();
  const int w = ref.width();
  const int h = ref.height();
  const Anchor a = anchorFor(w, h, kMbSize, kMbSize, 2 * px + mv.x, 2 * py + mv.y);
  if (a.fast) {
    return kernels::active().sad_16xh(
        cur.yPlane().data() + static_cast<std::ptrdiff_t>(py) * cur.width() + px, cur.width(),
        rplane.data() + static_cast<std::ptrdiff_t>(a.y0) * w + a.x0, w, kMbSize, a.fx, a.fy);
  }
  std::uint32_t sad = 0;
  for (int y = 0; y < kMbSize; ++y) {
    for (int x = 0; x < kMbSize; ++x) {
      const int c = cur.yAt(px + x, py + y);
      const int p = sampleHalfPel(rplane, w, h, 2 * (px + x) + mv.x, 2 * (py + y) + mv.y);
      sad += static_cast<std::uint32_t>(std::abs(c - p));
    }
  }
  return sad;
}

namespace {

SearchResult refineHalfPel(const Frame& cur, const Frame& ref, int mb_x, int mb_y,
                           SearchResult best) {
  // All eight half-pel candidates are anchored on the full-pel winner;
  // `best` must not drift mid-iteration or the candidate set changes.
  const MotionVector center = best.mv;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const MotionVector mv{static_cast<std::int16_t>(center.x + dx),
                            static_cast<std::int16_t>(center.y + dy)};
      const std::uint32_t sad = sadLuma(cur, ref, mb_x, mb_y, mv);
      if (sad < best.sad) best = SearchResult{mv, sad};
    }
  }
  return best;
}

}  // namespace

SearchResult search(const Frame& cur, const Frame& ref, int mb_x, int mb_y,
                    const SearchParams& params) {
  SearchResult best{MotionVector{0, 0}, sadLuma(cur, ref, mb_x, mb_y, MotionVector{0, 0})};

  if (params.algo == SearchParams::Algo::FullSearch) {
    for (int dy = -params.range; dy <= params.range; ++dy) {
      for (int dx = -params.range; dx <= params.range; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const MotionVector mv{static_cast<std::int16_t>(2 * dx),
                              static_cast<std::int16_t>(2 * dy)};
        const std::uint32_t sad = sadLuma(cur, ref, mb_x, mb_y, mv);
        if (sad < best.sad) best = SearchResult{mv, sad};
      }
    }
  } else {
    // Three-step (logarithmic) search at full-pel resolution.
    int step = 1;
    while (2 * step < params.range) step *= 2;
    MotionVector center{0, 0};
    while (step >= 1) {
      SearchResult round_best = best;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const MotionVector mv{static_cast<std::int16_t>(center.x + 2 * dx * step),
                                static_cast<std::int16_t>(center.y + 2 * dy * step)};
          if (std::abs(mv.x) > 2 * params.range || std::abs(mv.y) > 2 * params.range) continue;
          const std::uint32_t sad = sadLuma(cur, ref, mb_x, mb_y, mv);
          if (sad < round_best.sad) round_best = SearchResult{mv, sad};
        }
      }
      best = round_best;
      center = best.mv;
      step /= 2;
    }
  }

  if (params.half_pel) best = refineHalfPel(cur, ref, mb_x, mb_y, best);
  return best;
}

std::uint32_t intraActivity(const Frame& cur, int mb_x, int mb_y) {
  const int px = mb_x * kMbSize;
  const int py = mb_y * kMbSize;
  const std::uint8_t* mb = cur.yPlane().data() +
                           static_cast<std::ptrdiff_t>(py) * cur.width() + px;
  // SAD against a constant row with ref_stride 0: vs zero it sums the
  // pixels, vs the mean it is exactly the activity sum.
  alignas(16) std::uint8_t row[kMbSize] = {};
  const std::uint32_t sum =
      kernels::active().sad_16xh(mb, cur.width(), row, 0, kMbSize, 0, 0);
  const std::uint32_t mean = sum / 256;
  std::fill(std::begin(row), std::end(row), static_cast<std::uint8_t>(mean));
  return kernels::active().sad_16xh(mb, cur.width(), row, 0, kMbSize, 0, 0);
}

}  // namespace eclipse::media::motion
