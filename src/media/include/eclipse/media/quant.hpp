#pragma once

#include <array>

#include "eclipse/media/types.hpp"

namespace eclipse::media::quant {

/// Quantization weight matrix (values scaled so that 16 = unit weight, as
/// in MPEG-2 where the default intra matrix weights high frequencies more).
using Matrix = std::array<std::uint8_t, 64>;

/// Flat matrix (all 16): uniform quantizer.
[[nodiscard]] const Matrix& flatMatrix();

/// MPEG-2 default intra matrix (ISO/IEC 13818-2 6.3.11).
[[nodiscard]] const Matrix& defaultIntraMatrix();

/// Quantizes raster-order coefficients in place of `levels`:
/// level = round(coef * 16 / (qscale * m[i])), clamped to [-2047, 2047].
void quantize(const Block& coefs, Block& levels, int qscale, const Matrix& m);

/// Reconstructs coefficients: coef = level * qscale * m[i] / 16.
void dequantize(const Block& levels, Block& coefs, int qscale, const Matrix& m);

/// Valid quantizer scale range (MPEG-2 quantiser_scale_code is 1..31).
inline constexpr int kMinQscale = 1;
inline constexpr int kMaxQscale = 31;

}  // namespace eclipse::media::quant
