#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "eclipse/media/bitstream.hpp"
#include "eclipse/media/quant.hpp"
#include "eclipse/media/rle.hpp"
#include "eclipse/media/scan.hpp"
#include "eclipse/media/types.hpp"

namespace eclipse::media::kernels {

/// Vector backends for the media substrate. `Scalar` is the original C++
/// code kept verbatim — it is the oracle every other backend must match
/// bit for bit (DESIGN.md §11). Backends only change host wall time; the
/// simulated cost charged by the shells is backend-invariant because the
/// timing model consumes functional outputs (symbol/pair/block counts),
/// never host time.
enum class Backend : int { Scalar = 0, Sse2 = 1, Avx2 = 2, Neon = 3 };

inline constexpr int kBackendCount = 4;

/// One entry per vectorized kernel. Raw-pointer signatures carry explicit
/// strides so the same SAD/interp primitives serve motion.cpp (frame
/// planes), mc.cpp (fetched windows) and codec.cpp (MbPixels arrays).
struct KernelTable {
  Backend backend = Backend::Scalar;
  const char* name = "scalar";

  // 8x8 fixed-point DCT-II, bit-identical kShift/kRound arithmetic.
  void (*dct_forward)(const Block& in, Block& out) = nullptr;
  void (*dct_inverse)(const Block& in, Block& out) = nullptr;

  // Quantizer (qscale already validated by the public wrapper).
  void (*quantize)(const Block& coefs, Block& levels, int qscale,
                   const quant::Matrix& m) = nullptr;
  void (*dequantize)(const Block& levels, Block& coefs, int qscale,
                     const quant::Matrix& m) = nullptr;

  // Coefficient scan reorder for the two built-in orders.
  void (*to_scan)(const Block& raster, Block& scanned, scan::Order order) = nullptr;
  void (*from_scan)(const Block& scanned, Block& raster, scan::Order order) = nullptr;

  // Run-length encode of a scanned block (clears `out` first).
  void (*rle_encode)(const Block& scanned, std::vector<rle::RunLevel>& out) = nullptr;

  // 16-wide SAD / half-pel interpolation over rows that are fully inside
  // the plane (the clamped-edge slow path stays scalar in motion.cpp).
  // fx/fy are the half-pel fraction bits; reads touch [0, 15+fx] x [0, h-1+fy].
  std::uint32_t (*sad_16xh)(const std::uint8_t* cur, int cur_stride, const std::uint8_t* ref,
                            int ref_stride, int h, int fx, int fy) = nullptr;
  void (*interp_16xh)(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                      int h, int fx, int fy) = nullptr;
  void (*interp_8xh)(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                     int h, int fx, int fy) = nullptr;

  // out[i] = (a[i] + b[i] + 1) / 2 (bidirectional average).
  void (*avg_u8)(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out,
                 std::size_t n) = nullptr;

  // Residual math on 8x8 tiles of pixel arrays.
  void (*add_res_8x8)(std::uint8_t* dst, int dst_stride, const std::uint8_t* pred,
                      int pred_stride, const std::int16_t* res) = nullptr;
  void (*diff_8x8)(std::int16_t* res, const std::uint8_t* cur, int cur_stride,
                   const std::uint8_t* pred, int pred_stride) = nullptr;

  // dst[i] = clamp(src[i], 0, 255) — row stores for the video generator.
  void (*clamp_store_row)(const std::int32_t* src, std::uint8_t* dst, std::size_t n) = nullptr;

  // Decodes one block's run/level pairs up to and including EOB
  // (vlc::getBlock semantics, including exception behaviour and the exact
  // number of bits consumed on the throw path).
  void (*vlc_get_block)(BitReader& br, std::vector<rle::RunLevel>& out) = nullptr;
};

namespace detail {
extern const KernelTable* g_active;
}

/// The currently selected backend's kernel table. One pointer load — safe
/// and cheap to call per block.
[[nodiscard]] inline const KernelTable& active() noexcept { return *detail::g_active; }

/// Currently selected backend.
[[nodiscard]] Backend backend() noexcept;

/// Human-readable backend name ("scalar", "sse2", "avx2", "neon").
[[nodiscard]] const char* backendName(Backend b) noexcept;

/// True when the backend is compiled in AND supported by this CPU.
[[nodiscard]] bool available(Backend b) noexcept;

/// All backends usable on this machine (always contains Scalar).
[[nodiscard]] std::vector<Backend> availableBackends();

/// Programmatic override; throws std::invalid_argument if `b` is not
/// available on this machine.
void setBackend(Backend b);

/// Parses "scalar" | "sse2" | "avx2" | "neon" (case-sensitive); throws
/// std::invalid_argument on anything else.
[[nodiscard]] Backend parseBackendName(const std::string& name);

/// Re-applies the startup selection policy: ECLIPSE_SIMD if set and
/// available (unknown/unavailable values warn to stderr and are ignored),
/// otherwise the best available backend.
void resetBackendFromEnv();

}  // namespace eclipse::media::kernels
