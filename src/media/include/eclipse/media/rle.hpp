#pragma once

#include <cstdint>
#include <vector>

#include "eclipse/media/types.hpp"

namespace eclipse::media::rle {

/// One (zero-run, level) pair of the run-length representation of a
/// scanned coefficient block. `level` is never zero.
struct RunLevel {
  std::uint8_t run = 0;
  std::int16_t level = 0;
  bool operator==(const RunLevel&) const = default;
};

/// Run-length encodes a block in scan order. Trailing zeros are implied by
/// end-of-block and produce no pairs.
[[nodiscard]] std::vector<RunLevel> encode(const Block& scanned);

/// Expands pairs back into a 64-coefficient scanned block (zero-filled).
/// Throws BitstreamError if the pairs overflow the block (malformed
/// bitstream content that only surfaces after entropy decoding).
void decode(const std::vector<RunLevel>& pairs, Block& scanned);

}  // namespace eclipse::media::rle
