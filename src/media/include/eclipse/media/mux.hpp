#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eclipse::media::mux {

/// Minimal transport multiplex (the paper's de-multiplexing runs in
/// software on the media processor, Section 6).
///
/// Fixed-size transport packets in the spirit of MPEG-2 TS:
///   u8  stream_id   (0..kMaxStreams-1)
///   u16 payload_len (<= kPayloadBytes; short only in a stream's last packet)
///   u8  payload[kPayloadBytes]  (zero-padded)
/// Packets of the input streams are interleaved round-robin, weighted by
/// remaining stream length so that streams finish together (roughly
/// matching the rate coupling of a real multiplex).
inline constexpr std::size_t kPacketBytes = 188;
inline constexpr std::size_t kHeaderBytes = 3;
inline constexpr std::size_t kPayloadBytes = kPacketBytes - kHeaderBytes;
inline constexpr int kMaxStreams = 16;

/// Interleaves elementary streams into a transport stream.
[[nodiscard]] std::vector<std::uint8_t> interleave(
    const std::vector<std::vector<std::uint8_t>>& streams);

/// Splits a transport stream back into its elementary streams.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> split(std::span<const std::uint8_t> ts);

/// Parses one transport packet; returns its stream id and payload view.
struct Packet {
  int stream_id = 0;
  std::span<const std::uint8_t> payload;
};
[[nodiscard]] Packet parsePacket(std::span<const std::uint8_t> packet);

}  // namespace eclipse::media::mux
