#pragma once

#include "eclipse/media/types.hpp"

namespace eclipse::media {

/// 8x8 forward DCT (DCT-II), fixed-point integer implementation.
///
/// Both the encoder and the decoder use dct::inverse for reconstruction, so
/// encode→decode round trips are bit-exact by construction; the transform
/// accuracy only affects compression quality, not correctness.
namespace dct {

/// Forward transform of spatial samples/residuals into coefficients.
void forward(const Block& in, Block& out);

/// Inverse transform of coefficients into spatial samples/residuals.
void inverse(const Block& in, Block& out);

/// Rough per-block hardware cost in coprocessor cycles; the paper's DCT
/// coprocessor processes one 8x8 block per processing step.
inline constexpr int kCyclesPerBlock = 64;

/// Per-block cycles when the coprocessor is pipelined (Section 7 mentions
/// pipelining the DCT coprocessor as a performance fix).
inline constexpr int kCyclesPerBlockPipelined = 16;

}  // namespace dct

}  // namespace eclipse::media
