#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace eclipse::media {

/// MPEG frame/picture types. I-frames are intra coded, P-frames predict
/// from the previous I/P reference, B-frames predict from the surrounding
/// I/P references in both temporal directions.
enum class FrameType : std::uint8_t { I = 0, P = 1, B = 2 };

[[nodiscard]] inline char frameTypeChar(FrameType t) {
  switch (t) {
    case FrameType::I: return 'I';
    case FrameType::P: return 'P';
    case FrameType::B: return 'B';
  }
  return '?';
}

/// One 8x8 block of samples or coefficients.
using Block = std::array<std::int16_t, 64>;

/// Number of 8x8 blocks in a 4:2:0 macroblock: 4 luma + Cb + Cr.
inline constexpr int kBlocksPerMacroblock = 6;

/// Luma size of a macroblock edge.
inline constexpr int kMbSize = 16;

/// 4:2:0 YCbCr frame. Dimensions must be multiples of 16 (whole
/// macroblocks), as in MPEG-2 main profile usage.
class Frame {
 public:
  Frame() = default;
  Frame(int width, int height) : width_(width), height_(height) {
    if (width <= 0 || height <= 0 || width % kMbSize != 0 || height % kMbSize != 0) {
      throw std::invalid_argument("Frame: dimensions must be positive multiples of 16");
    }
    y_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), 16);
    cb_.assign(static_cast<std::size_t>(width / 2) * static_cast<std::size_t>(height / 2), 128);
    cr_ = cb_;
  }

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int mbWidth() const { return width_ / kMbSize; }
  [[nodiscard]] int mbHeight() const { return height_ / kMbSize; }
  [[nodiscard]] int mbCount() const { return mbWidth() * mbHeight(); }
  [[nodiscard]] bool empty() const { return width_ == 0; }

  [[nodiscard]] std::vector<std::uint8_t>& yPlane() { return y_; }
  [[nodiscard]] std::vector<std::uint8_t>& cbPlane() { return cb_; }
  [[nodiscard]] std::vector<std::uint8_t>& crPlane() { return cr_; }
  [[nodiscard]] const std::vector<std::uint8_t>& yPlane() const { return y_; }
  [[nodiscard]] const std::vector<std::uint8_t>& cbPlane() const { return cb_; }
  [[nodiscard]] const std::vector<std::uint8_t>& crPlane() const { return cr_; }

  [[nodiscard]] std::uint8_t yAt(int x, int y) const {
    return y_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
              static_cast<std::size_t>(x)];
  }
  void setY(int x, int y, std::uint8_t v) {
    y_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
       static_cast<std::size_t>(x)] = v;
  }

  [[nodiscard]] bool sameDimensions(const Frame& other) const {
    return width_ == other.width_ && height_ == other.height_;
  }

  bool operator==(const Frame& other) const {
    return width_ == other.width_ && height_ == other.height_ && y_ == other.y_ &&
           cb_ == other.cb_ && cr_ == other.cr_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> y_;
  std::vector<std::uint8_t> cb_;
  std::vector<std::uint8_t> cr_;
};

/// Group-of-pictures structure: `n` = GOP length (I-frame period),
/// `m` = prediction distance (1 = no B-frames, 3 = two B's between
/// references: the classic IBBPBBP... pattern).
struct GopStructure {
  int n = 9;
  int m = 3;

  /// Frame type of display-order index `i` within the sequence.
  [[nodiscard]] FrameType typeAt(int i) const {
    const int in_gop = i % n;
    if (in_gop == 0) return FrameType::I;
    return in_gop % m == 0 ? FrameType::P : FrameType::B;
  }

  /// Pattern string such as "IBBPBBPBB" for one GOP.
  [[nodiscard]] std::string pattern() const {
    std::string s;
    for (int i = 0; i < n; ++i) s.push_back(frameTypeChar(typeAt(i)));
    return s;
  }
};

/// Motion vector in half-pel units.
struct MotionVector {
  std::int16_t x = 0;
  std::int16_t y = 0;
  bool operator==(const MotionVector&) const = default;
};

/// Macroblock prediction modes.
enum class MbMode : std::uint8_t {
  Intra = 0,
  Forward = 1,   // predict from past reference (P and B frames)
  Backward = 2,  // predict from future reference (B frames only)
  Bidirectional = 3,
};

/// Decoded/encoded macroblock side information ("the packet header" the VLD
/// hands to motion compensation).
struct MbHeader {
  std::uint16_t mb_x = 0;
  std::uint16_t mb_y = 0;
  MbMode mode = MbMode::Intra;
  MotionVector mv_fwd;
  MotionVector mv_bwd;
  std::uint8_t cbp = 0;  // coded block pattern, bit i => block i has coefficients
  std::uint8_t qscale = 8;
};

}  // namespace eclipse::media
