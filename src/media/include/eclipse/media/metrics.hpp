#pragma once

#include <vector>

#include "eclipse/media/types.hpp"

namespace eclipse::media {

/// Mean squared error between two equally-sized sample planes.
[[nodiscard]] double mse(const std::vector<std::uint8_t>& a, const std::vector<std::uint8_t>& b);

/// Peak signal-to-noise ratio (dB) of the luma plane; returns +inf for
/// identical planes.
[[nodiscard]] double psnrLuma(const Frame& a, const Frame& b);

/// PSNR over all three planes (4:2:0 weighted by sample count).
[[nodiscard]] double psnr(const Frame& a, const Frame& b);

/// Average luma PSNR over a sequence.
[[nodiscard]] double averagePsnr(const std::vector<Frame>& a, const std::vector<Frame>& b);

}  // namespace eclipse::media
