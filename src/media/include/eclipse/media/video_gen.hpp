#pragma once

#include <cstdint>
#include <vector>

#include "eclipse/media/types.hpp"
#include "eclipse/sim/prng.hpp"

namespace eclipse::media {

/// Synthetic test-video generator (DESIGN.md substitution 2).
///
/// Real MPEG conformance material is not available offline, so experiments
/// run on generated sequences engineered to exercise the codec the same
/// way: a textured moving background provides non-trivial intra content
/// (VLD/RLSQ load on I-frames), translating foreground objects provide
/// motion (MC load, B-frame bidirectional fetches), and per-frame noise and
/// scene cuts modulate the worst/average load ratio.
struct VideoGenParams {
  int width = 176;
  int height = 144;
  int frames = 9;
  std::uint64_t seed = 1;
  int object_count = 3;      // translating rectangles
  int motion_speed = 2;      // max pels/frame of object and background motion
  double noise_level = 2.0;  // uniform noise amplitude added to every pel
  int detail = 3;            // background texture frequency (0 = flat)
  int scene_cut_period = 0;  // insert a scene change every k frames (0 = never)
};

/// Generates `params.frames` frames in display order.
[[nodiscard]] std::vector<Frame> generateVideo(const VideoGenParams& params);

/// Generates a single frame (frame `index` of the sequence).
[[nodiscard]] Frame generateFrame(const VideoGenParams& params, int index);

}  // namespace eclipse::media
