#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "eclipse/media/motion.hpp"
#include "eclipse/media/rle.hpp"
#include "eclipse/media/types.hpp"

namespace eclipse::media {

/// Little-endian byte-buffer writer for inter-stage packets.
///
/// The decoder/encoder stages exchange *data packets* over Eclipse streams
/// (Section 4.2: "coprocessors operate on logical units of data ...
/// encapsulated in a data packet"). Packets are byte-serialised so the same
/// representation flows through the functional KPN FIFOs and the simulated
/// on-chip stream buffers.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void i16(std::int16_t v) { raw(&v, sizeof v); }
  void bytes(std::span<const std::uint8_t> v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }

  /// Resets for reuse, keeping the allocation (hot-path serialisation).
  void clear() { buf_.clear(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Reader matching ByteWriter. Throws std::runtime_error on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::int16_t i16() { return take<std::int16_t>(); }
  void bytes(std::span<std::uint8_t> out) {
    check(out.size());
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
  }

  [[nodiscard]] bool atEnd() const { return pos_ >= data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T take() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void check(std::size_t n) const {
    if (pos_ + n > data_.size()) throw std::runtime_error("ByteReader: packet underrun");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Tags framing every packet on an inter-stage stream.
enum class PacketTag : std::uint8_t {
  Seq = 1,    // sequence header: once per stream
  Pic = 2,    // picture header: once per coded picture
  Mb = 3,     // one macroblock payload (layout depends on the stream kind)
  Eos = 4,    // end of stream
  Resync = 5, // in-band resync marker: discard stage state, realign at the
              // next picture boundary (fault-recovery protocol, DESIGN §9)
};

/// Sequence-level parameters, carried in the elementary stream and in the
/// first packet of every inter-stage stream.
struct SeqHeader {
  std::uint16_t width = 0;
  std::uint16_t height = 0;
  std::uint8_t gop_n = 9;
  std::uint8_t gop_m = 3;
  std::uint8_t qscale = 8;
  std::uint16_t frame_count = 0;
  std::uint8_t scan_order = 0;        // 0 zigzag, 1 alternate
  std::uint8_t use_intra_matrix = 1;  // weighting matrix for intra blocks
  bool operator==(const SeqHeader&) const = default;
};

/// Picture-level parameters (coded order).
struct PicHeader {
  FrameType type = FrameType::I;
  std::uint16_t temporal_ref = 0;  // display-order index
  std::uint8_t qscale = 8;
  bool operator==(const PicHeader&) const = default;
};

/// VLD → RLSQ payload: run/level pairs for each coded block of one MB.
/// `intra` selects the quantiser matrix downstream; `qscale` is the
/// effective (per-picture) quantiser scale, so rate-controlled streams
/// dequantise correctly without consulting picture state.
struct MbCoefs {
  std::uint8_t cbp = 0;
  std::uint8_t intra = 0;
  std::uint8_t qscale = 8;
  std::array<std::vector<rle::RunLevel>, kBlocksPerMacroblock> blocks;
};

/// RLSQ → DCT and DCT → MC payload: dense blocks (uncoded blocks zero).
/// `intra` rides along so the encoder-side quantiser can pick its matrix.
struct MbBlocks {
  std::uint8_t cbp = 0;
  std::uint8_t intra = 0;
  std::array<Block, kBlocksPerMacroblock> blocks{};
};

/// MC → output payload: reconstructed 4:2:0 macroblock pixels (384 bytes).
struct MbPixels {
  motion::LumaMb y{};
  motion::ChromaMb cb{};
  motion::ChromaMb cr{};
  bool operator==(const MbPixels&) const = default;
};

// --- serialisation -------------------------------------------------------

void put(ByteWriter& w, const SeqHeader& v);
void put(ByteWriter& w, const PicHeader& v);
void put(ByteWriter& w, const MbHeader& v);
void put(ByteWriter& w, const MbCoefs& v);
void put(ByteWriter& w, const MbBlocks& v);
void put(ByteWriter& w, const MbPixels& v);

void get(ByteReader& r, SeqHeader& v);
void get(ByteReader& r, PicHeader& v);
void get(ByteReader& r, MbHeader& v);
void get(ByteReader& r, MbCoefs& v);
void get(ByteReader& r, MbBlocks& v);
void get(ByteReader& r, MbPixels& v);

/// Serialised sizes of the fixed-size packets (for buffer dimensioning).
inline constexpr std::size_t kMbPixelsBytes = 384;
inline constexpr std::size_t kMbBlocksBytes = 2 + 6 * 64 * 2;

/// Convenience: serialises a tagged packet into a fresh byte vector.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> packPacket(PacketTag tag, const T& payload) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(tag));
  put(w, payload);
  return w.take();
}

/// Serialises a tagged packet into a reusable writer (cleared first) and
/// returns a view of the bytes — the allocation-free variant of packPacket
/// for hot paths. The span is valid until the writer is next touched.
template <typename T>
[[nodiscard]] std::span<const std::uint8_t> packPacketInto(ByteWriter& w, PacketTag tag,
                                                           const T& payload) {
  w.clear();
  w.u8(static_cast<std::uint8_t>(tag));
  put(w, payload);
  return w.data();
}

/// Serialises a bare tag (Eos).
[[nodiscard]] inline std::vector<std::uint8_t> packTag(PacketTag tag) {
  return {static_cast<std::uint8_t>(tag)};
}

}  // namespace eclipse::media
