#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eclipse/media/bitstream.hpp"
#include "eclipse/media/motion.hpp"
#include "eclipse/media/packets.hpp"
#include "eclipse/media/quant.hpp"
#include "eclipse/media/scan.hpp"
#include "eclipse/media/types.hpp"

namespace eclipse::media {

/// Codec configuration shared by encoder and decoder.
struct CodecParams {
  int width = 176;
  int height = 144;
  GopStructure gop{9, 3};
  int qscale = 8;
  motion::SearchParams search{};
  scan::Order scan_order = scan::Order::Zigzag;
  bool use_intra_matrix = true;

  /// Rate control: when nonzero, the encoder adapts the per-picture
  /// quantiser scale to steer every coded picture toward this many bits
  /// (a simple multiplicative-damping controller). 0 = constant qscale.
  std::uint32_t target_bits_per_picture = 0;

  [[nodiscard]] SeqHeader toSeqHeader(int frame_count) const;
  [[nodiscard]] static CodecParams fromSeqHeader(const SeqHeader& sh);
};

/// Per-picture workload statistics (coded order) used by the load analyses:
/// the paper's Figure 10 behaviour — bottleneck shifting per frame type —
/// comes precisely from how these quantities vary with FrameType.
struct PictureStats {
  FrameType type = FrameType::I;
  std::uint16_t temporal_ref = 0;
  std::uint32_t bits = 0;          // coded picture size
  std::uint32_t symbols = 0;       // VLC symbols (VLD work)
  std::uint32_t coded_blocks = 0;  // blocks through RLSQ/DCT
  std::uint32_t intra_mbs = 0;
  std::uint32_t fwd_mbs = 0;
  std::uint32_t bwd_mbs = 0;
  std::uint32_t bidi_mbs = 0;
};

/// The per-stage transforms of the codec. The functional Encoder/Decoder,
/// the KPN task graph, and the timed Eclipse coprocessors all call exactly
/// these functions, so all three levels of the design trajectory are
/// bit-identical in their stream contents (Kahn determinism made testable).
namespace stages {

// --- elementary stream syntax (VLE on the encoder, VLD on the decoder) ---

void writeSeqHeader(BitWriter& bw, const SeqHeader& sh);
[[nodiscard]] SeqHeader parseSeqHeader(BitReader& br);
void writePicHeader(BitWriter& bw, const PicHeader& ph);
[[nodiscard]] PicHeader parsePicHeader(BitReader& br);

/// Writes one macroblock: mode, motion vectors, cbp, coded blocks.
void writeMb(BitWriter& bw, const MbHeader& h, const MbCoefs& coefs);

struct ParsedMb {
  MbHeader header;
  MbCoefs coefs;
  int symbols = 0;  // VLC symbols decoded, incl. header fields and EOBs
};

/// Parses one macroblock. Validates that I pictures contain only intra MBs.
[[nodiscard]] ParsedMb parseMb(BitReader& br, FrameType pic_type, std::uint16_t mb_x,
                               std::uint16_t mb_y, std::uint8_t pic_qscale);

// --- RLSQ: run-length (de)coding, (inverse) scan, (de)quantisation ---

/// Decode direction: run/level pairs -> dequantised coefficient blocks.
void rlsqDecode(const MbCoefs& in, bool intra, const SeqHeader& sh, MbBlocks& out);

/// Encode direction: coefficient blocks -> quantised run/level pairs.
/// Sets out.cbp from the surviving nonzero coefficients.
void rlsqEncode(const MbBlocks& in, bool intra, const SeqHeader& sh, int qscale, MbCoefs& out);

// --- DCT coprocessor functions ---

/// Inverse DCT of the coded blocks (uncoded blocks stay zero residual).
void idctMb(const MbBlocks& in, MbBlocks& out);

/// Forward DCT of all six residual blocks.
void fdctMb(const MbBlocks& in, MbBlocks& out);

// --- MC / pixel plumbing ---

/// Block index layout inside a macroblock: 0..3 luma (2x2 raster order),
/// 4 = Cb, 5 = Cr.
void extractMb(const Frame& f, int mb_x, int mb_y, MbPixels& out);
void placeMb(Frame& f, int mb_x, int mb_y, const MbPixels& in);

/// Motion-compensated (or intra flat-128) prediction for one macroblock.
void predictMb(const MbHeader& h, const Frame* fwd_ref, const Frame* bwd_ref, MbPixels& out);

/// Encoder-side mode decision for one macroblock: motion search against
/// the available references, bidirectional evaluation and the intra
/// fallback (SAD vs activity). Returns the header with mode and vectors
/// set (cbp is filled in after quantisation). Used identically by the
/// functional encoder, the KPN encoder tasks and — with the window-fetch
/// variant in the MC/ME coprocessor — the timed Eclipse encoder, keeping
/// all three refinement levels bit-identical.
[[nodiscard]] MbHeader decideMbMode(const Frame& src, int mb_x, int mb_y, FrameType pic_type,
                                    const Frame* fwd, const Frame* bwd,
                                    const motion::SearchParams& search, std::uint8_t qscale);

/// residual = cur - pred, in block layout.
void residualMb(const MbPixels& cur, const MbPixels& pred, MbBlocks& out);

/// recon = clamp(pred + residual).
void addResidualMb(const MbPixels& pred, const MbBlocks& residual, MbPixels& out);

}  // namespace stages

/// One picture in coded (bitstream) order with its reference links.
struct CodedPicture {
  int display_idx = 0;
  FrameType type = FrameType::I;
  int fwd_ref_display = -1;  // display idx of forward reference, -1 if none
  int bwd_ref_display = -1;  // display idx of backward reference, -1 if none
};

/// Computes coded order for `frame_count` display frames under `gop`.
/// Trailing B-frames without a future reference degrade to forward-only.
[[nodiscard]] std::vector<CodedPicture> codedOrder(int frame_count, const GopStructure& gop);

/// Functional (untimed) encoder — the golden model for the Eclipse
/// encoding application and the generator of all synthetic test streams.
class Encoder {
 public:
  explicit Encoder(const CodecParams& params) : params_(params) {}

  /// Encodes display-order frames into an elementary stream.
  [[nodiscard]] std::vector<std::uint8_t> encode(const std::vector<Frame>& frames);

  /// Encoder-side reconstructions in display order. The decoder's output
  /// must equal these bit-exactly (closed reconstruction loop).
  [[nodiscard]] const std::vector<Frame>& reconstructed() const { return recon_display_; }

  [[nodiscard]] const std::vector<PictureStats>& pictureStats() const { return stats_; }

 private:
  CodecParams params_;
  std::vector<Frame> recon_display_;
  std::vector<PictureStats> stats_;
};

/// Functional (untimed) decoder — the golden model for the Eclipse
/// decoding application (Figure 2 network).
class Decoder {
 public:
  /// Decodes an elementary stream; returns frames in display order.
  [[nodiscard]] std::vector<Frame> decode(std::span<const std::uint8_t> bitstream);

  [[nodiscard]] const SeqHeader& seqHeader() const { return seq_; }
  [[nodiscard]] const std::vector<PictureStats>& pictureStats() const { return stats_; }

 private:
  SeqHeader seq_{};
  std::vector<PictureStats> stats_;
};

}  // namespace eclipse::media
