#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eclipse::media::audio {

/// Block-based IMA-ADPCM-style audio codec.
///
/// The paper's instance runs audio decoding in software on the media
/// processor (Section 6 / Figure 8). This substrate provides a small,
/// self-contained audio elementary stream for those software tasks:
/// 4-bit ADPCM with per-block predictor restart (so blocks are
/// independently decodable — the audio analogue of the video packets).
struct AudioParams {
  std::uint32_t sample_rate = 48000;
  std::uint32_t block_samples = 256;  ///< samples per independently coded block
};

/// Coded stream layout:
///   header: u32 magic, u32 sample_rate, u32 block_samples, u32 total_samples
///   per block: i16 predictor, u8 step_index, u8 pad, block_samples/2 code bytes
inline constexpr std::uint32_t kAudioMagic = 0x414D4345;  // "ECMA"

/// Encodes mono 16-bit PCM. The last block is zero-padded.
[[nodiscard]] std::vector<std::uint8_t> encode(std::span<const std::int16_t> pcm,
                                               const AudioParams& params = {});

/// Decodes a stream produced by encode(). Throws std::runtime_error on a
/// malformed stream.
[[nodiscard]] std::vector<std::int16_t> decode(std::span<const std::uint8_t> bytes);

/// Decodes a single block payload (predictor + step + codes) of
/// `block_samples` samples — the unit of work of the software decoder task.
void decodeBlock(std::span<const std::uint8_t> block, std::uint32_t block_samples,
                 std::vector<std::int16_t>& out);

/// Bytes of one coded block (header fields + codes).
[[nodiscard]] constexpr std::size_t blockBytes(std::uint32_t block_samples) {
  return 4 + block_samples / 2;
}

/// Signal-to-noise ratio in dB of the decoded signal vs the original.
[[nodiscard]] double snrDb(std::span<const std::int16_t> original,
                           std::span<const std::int16_t> decoded);

/// Deterministic synthetic test signal: a mix of sinusoids with a slow
/// envelope (seeded), in the style of the synthetic video generator.
[[nodiscard]] std::vector<std::int16_t> generateTone(std::size_t samples, std::uint64_t seed);

}  // namespace eclipse::media::audio
