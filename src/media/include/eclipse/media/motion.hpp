#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "eclipse/media/types.hpp"

namespace eclipse::media::motion {

/// 16x16 luma prediction samples.
using LumaMb = std::array<std::uint8_t, 256>;
/// 8x8 chroma prediction samples.
using ChromaMb = std::array<std::uint8_t, 64>;

/// Motion-search configuration. Vectors are found at full-pel resolution
/// within ±range and optionally refined to half-pel (MPEG-2 style).
struct SearchParams {
  int range = 8;
  bool half_pel = true;
  enum class Algo { FullSearch, ThreeStep } algo = Algo::FullSearch;
};

/// Samples one plane at a half-pel position with bilinear interpolation and
/// edge clamping. (x2, y2) are in half-pel units.
[[nodiscard]] std::uint8_t sampleHalfPel(const std::vector<std::uint8_t>& plane, int w, int h,
                                         int x2, int y2);

/// Fetches the 16x16 luma prediction for the macroblock at pixel position
/// (px, py), displaced by `mv` (half-pel units).
void predictLuma(const Frame& ref, int px, int py, MotionVector mv, LumaMb& out);

/// Fetches an 8x8 chroma prediction; the luma vector is halved per MPEG-2.
void predictChroma(const std::vector<std::uint8_t>& plane, int w, int h, int px, int py,
                   MotionVector mv, ChromaMb& out);

/// Averages two predictions with rounding (bidirectional mode).
void average(const LumaMb& a, const LumaMb& b, LumaMb& out);
void average(const ChromaMb& a, const ChromaMb& b, ChromaMb& out);

/// Sum of absolute differences between the current frame's macroblock at
/// (mb_x, mb_y) and the reference displaced by `mv`.
[[nodiscard]] std::uint32_t sadLuma(const Frame& cur, const Frame& ref, int mb_x, int mb_y,
                                    MotionVector mv);

/// Result of a motion search.
struct SearchResult {
  MotionVector mv;
  std::uint32_t sad = 0;
};

/// Finds the best-matching vector for the macroblock at (mb_x, mb_y).
[[nodiscard]] SearchResult search(const Frame& cur, const Frame& ref, int mb_x, int mb_y,
                                  const SearchParams& params);

/// Mean absolute deviation of the macroblock from its own mean — the
/// classic intra/inter decision activity measure.
[[nodiscard]] std::uint32_t intraActivity(const Frame& cur, int mb_x, int mb_y);

}  // namespace eclipse::media::motion
