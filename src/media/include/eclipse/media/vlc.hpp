#pragma once

#include <vector>

#include "eclipse/media/bitstream.hpp"
#include "eclipse/media/rle.hpp"

namespace eclipse::media::vlc {

/// Variable-length coding of run/level symbols.
///
/// The code is MPEG-2-flavoured but self-defined (see DESIGN.md,
/// substitution 2): a short prefix code covers the statistically common
/// pairs and an escape mechanism covers the rest, so code length — and thus
/// VLD work — is strongly data dependent, which is the property the Eclipse
/// experiments rely on.
///
/// Symbol syntax (MSB first):
///   '0'  run(2) level_minus1(2) sign(1)   common pair: run<4, 1<=|level|<=4
///   '10'                                  end of block
///   '11' ue(run) ue(|level|-1) sign(1)    escape
void putBlock(BitWriter& bw, const std::vector<rle::RunLevel>& pairs);

/// Decodes one block's run/level pairs up to and including EOB.
/// Throws BitstreamError on malformed input.
[[nodiscard]] std::vector<rle::RunLevel> getBlock(BitReader& br);

/// Exact coded size in bits of one pair (for load modelling and tests).
[[nodiscard]] int pairBits(const rle::RunLevel& pair);

/// Coded size of the end-of-block symbol.
inline constexpr int kEobBits = 2;

}  // namespace eclipse::media::vlc
