#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace eclipse::media {

/// Thrown on malformed bitstreams (truncation, out-of-range codes).
class BitstreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// MSB-first bit writer used by the variable-length encoder.
class BitWriter {
 public:
  /// Appends the `count` least-significant bits of `bits`, MSB first.
  void put(std::uint32_t bits, int count) {
    if (count < 0 || count > 32) throw std::invalid_argument("BitWriter::put: bad count");
    for (int i = count - 1; i >= 0; --i) {
      putBit((bits >> i) & 1u);
    }
  }

  void putBit(std::uint32_t bit) {
    acc_ = static_cast<std::uint8_t>((acc_ << 1) | (bit & 1u));
    if (++acc_bits_ == 8) {
      bytes_.push_back(acc_);
      acc_ = 0;
      acc_bits_ = 0;
    }
  }

  /// Unsigned Exp-Golomb code (as in H.26x): 0 -> '1', 1 -> '010', ...
  void putUe(std::uint32_t v) {
    const std::uint64_t code = static_cast<std::uint64_t>(v) + 1;
    int len = 0;
    while ((code >> len) > 1) ++len;
    put(0, len);                                   // len leading zeros
    put(static_cast<std::uint32_t>(code), len + 1);  // code itself
  }

  /// Signed Exp-Golomb: 0 -> 0, 1 -> 1, -1 -> 2, 2 -> 3, -2 -> 4, ...
  void putSe(std::int32_t v) {
    const std::uint32_t mapped =
        v > 0 ? static_cast<std::uint32_t>(2 * v - 1) : static_cast<std::uint32_t>(-2 * v);
    putUe(mapped);
  }

  /// Pads with zero bits to the next byte boundary.
  void align() {
    while (acc_bits_ != 0) putBit(0);
  }

  /// Finishes the stream (byte-aligns) and returns the bytes.
  [[nodiscard]] std::vector<std::uint8_t> finish() {
    align();
    return std::move(bytes_);
  }

  /// Drains the completed bytes so far, leaving any partial byte in the
  /// accumulator. Lets a streaming encoder emit output incrementally.
  [[nodiscard]] std::vector<std::uint8_t> drainFullBytes() {
    std::vector<std::uint8_t> out = std::move(bytes_);
    bytes_.clear();
    return out;
  }

  [[nodiscard]] std::size_t bitCount() const { return bytes_.size() * 8 + acc_bits_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t acc_ = 0;
  int acc_bits_ = 0;
};

/// MSB-first bit reader matching BitWriter.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint32_t getBit() {
    if (pos_ >= data_.size() * 8) throw BitstreamError("BitReader: read past end of stream");
    const std::uint8_t byte = data_[pos_ / 8];
    const std::uint32_t bit = (byte >> (7 - pos_ % 8)) & 1u;
    ++pos_;
    return bit;
  }

  [[nodiscard]] std::uint32_t get(int count) {
    if (count < 0 || count > 32) throw std::invalid_argument("BitReader::get: bad count");
    if (static_cast<std::size_t>(count) > bitsRemaining()) {
      pos_ = data_.size() * 8;  // a bit-at-a-time read would stop here
      throw BitstreamError("BitReader: read past end of stream");
    }
    const std::uint32_t v = peekBits(count);
    pos_ += static_cast<std::size_t>(count);
    return v;
  }

  /// Returns the next `count` (<= 32) bits MSB-first without consuming
  /// them; bits past the end of the stream read as zero.
  [[nodiscard]] std::uint32_t peekBits(int count) const {
    if (count <= 0) return 0;
    const std::size_t byte = pos_ / 8;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t idx = byte + i;
      acc = (acc << 8) | (idx < data_.size() ? data_[idx] : 0u);
    }
    acc <<= pos_ % 8;  // top bits now start at the current position
    return static_cast<std::uint32_t>(acc >> (64 - count));
  }

  /// Advances the position without bounds checks (callers pair this with
  /// peekBits and their own end-of-stream handling).
  void skipBits(int count) { pos_ += static_cast<std::size_t>(count); }

  [[nodiscard]] std::uint32_t getUe() {
    int zeros = 0;
    while (getBit() == 0) {
      if (++zeros > 31) throw BitstreamError("BitReader: malformed Exp-Golomb code");
    }
    std::uint32_t v = 1;
    for (int i = 0; i < zeros; ++i) v = (v << 1) | getBit();
    return v - 1;
  }

  [[nodiscard]] std::int32_t getSe() {
    const std::uint32_t mapped = getUe();
    const auto half = static_cast<std::int32_t>((mapped + 1) / 2);
    return (mapped % 2 == 1) ? half : -half;
  }

  void align() { pos_ = (pos_ + 7) / 8 * 8; }

  [[nodiscard]] std::size_t bitPosition() const { return pos_; }
  [[nodiscard]] std::size_t bitsRemaining() const { return data_.size() * 8 - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ >= data_.size() * 8; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace eclipse::media
