#pragma once

#include <array>

#include "eclipse/media/types.hpp"

namespace eclipse::media::scan {

/// Coefficient scan orders (MPEG-2 has two: the classic zigzag and the
/// "alternate" scan better suited to interlaced material).
enum class Order { Zigzag = 0, Alternate = 1 };

/// Scan table: scanned[i] = block[table[i]].
[[nodiscard]] const std::array<int, 64>& table(Order order);

/// Reorders a block from raster order into scan order.
void toScan(const Block& raster, Block& scanned, Order order = Order::Zigzag);

/// Reorders a block from scan order back into raster order.
void fromScan(const Block& scanned, Block& raster, Order order = Order::Zigzag);

}  // namespace eclipse::media::scan
