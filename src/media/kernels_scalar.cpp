#include <bit>
#include <cstdlib>

#include "kernels_impl.hpp"

namespace eclipse::media::kernels::detail {

namespace {

// Namespace-scope, init-on-load (satellite of PR 6): the table used to be a
// function-local static inside dct.cpp, which made every forward()/inverse()
// call pay the C++11 static-init guard check.
const DctK g_dct_k = computeDctK();

std::int16_t clamp16(std::int32_t v) {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return static_cast<std::int16_t>(v);
}

std::int16_t clampLevel(std::int32_t v) {
  if (v > 2047) return 2047;
  if (v < -2047) return -2047;
  return static_cast<std::int16_t>(v);
}

std::int16_t clampCoef(std::int32_t v) {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return static_cast<std::int16_t>(v);
}

std::uint8_t clampPel(int v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

/// In-bounds bilinear sample: p = src interpolated at (x + fx/2, y + fy/2).
int interpSample(const std::uint8_t* row0, const std::uint8_t* row1, int x, int fx, int fy) {
  const int a = row0[x];
  if (fx == 0 && fy == 0) return a;
  if (fx != 0 && fy == 0) return (a + row0[x + 1] + 1) / 2;
  if (fx == 0) return (a + row1[x] + 1) / 2;
  return (a + row0[x + 1] + row1[x] + row1[x + 1] + 2) / 4;
}

std::uint32_t sadWxH(int w, const std::uint8_t* cur, int cur_stride, const std::uint8_t* ref,
                     int ref_stride, int h, int fx, int fy) {
  std::uint32_t sad = 0;
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* c = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::uint8_t* r0 = ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
    const std::uint8_t* r1 = r0 + ref_stride;
    for (int x = 0; x < w; ++x) {
      sad += static_cast<std::uint32_t>(std::abs(c[x] - interpSample(r0, r1, x, fx, fy)));
    }
  }
  return sad;
}

void interpWxH(int w, std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
               int h, int fx, int fy) {
  for (int y = 0; y < h; ++y) {
    std::uint8_t* d = dst + static_cast<std::ptrdiff_t>(y) * dst_stride;
    const std::uint8_t* r0 = src + static_cast<std::ptrdiff_t>(y) * src_stride;
    const std::uint8_t* r1 = r0 + src_stride;
    for (int x = 0; x < w; ++x) {
      d[x] = static_cast<std::uint8_t>(interpSample(r0, r1, x, fx, fy));
    }
  }
}

// --------------------------------------------------------------------- VLC

struct VlcEntry {
  std::uint8_t kind = 0;  // 0 common pair, 1 EOB, 2 escape
  std::int8_t run = 0;
  std::int16_t level = 0;
};

/// Symbol class from the next 8 bits (MSB-aligned). Common pairs are
/// '0' run(2) level_minus1(2) sign(1) = 6 bits; EOB '10' and the escape
/// prefix '11' are 2 bits.
constexpr std::array<VlcEntry, 256> kVlcLut = [] {
  std::array<VlcEntry, 256> t{};
  for (int b = 0; b < 256; ++b) {
    auto& e = t[static_cast<std::size_t>(b)];
    if ((b & 0x80) == 0) {
      const int run = (b >> 5) & 3;
      const int mag = ((b >> 3) & 3) + 1;
      const int sign = (b >> 2) & 1;
      e.kind = 0;
      e.run = static_cast<std::int8_t>(run);
      e.level = static_cast<std::int16_t>(sign != 0 ? -mag : mag);
    } else if ((b & 0xC0) == 0x80) {
      e.kind = 1;
    } else {
      e.kind = 2;
    }
  }
  return t;
}();

/// Multi-bit Exp-Golomb decode. Caller guarantees at least 63 bits remain
/// (the longest possible code) so every peek window is in-stream and the
/// decode — including the throw semantics (consume 32 zero bits, then
/// throw) — matches BitReader::getUe exactly on arbitrary bit content.
std::uint32_t fastGetUe(BitReader& br) {
  const std::uint32_t w = br.peekBits(32);
  if (w == 0) {
    br.skipBits(32);
    throw BitstreamError("BitReader: malformed Exp-Golomb code");
  }
  const int zeros = std::countl_zero(w);
  br.skipBits(zeros + 1);
  std::uint32_t v = 1;
  if (zeros > 0) {
    v = (1u << zeros) | br.peekBits(zeros);
    br.skipBits(zeros);
  }
  return v - 1;
}

}  // namespace

void vlcGetBlockBitwise(BitReader& br, std::vector<rle::RunLevel>& out) {
  while (true) {
    if (br.getBit() == 0) {
      // common pair
      const std::uint32_t run = br.get(2);
      const std::uint32_t mag = br.get(2) + 1;
      const bool neg = br.getBit() != 0;
      out.push_back(rle::RunLevel{static_cast<std::uint8_t>(run),
                                  static_cast<std::int16_t>(neg ? -static_cast<int>(mag)
                                                                : static_cast<int>(mag))});
      continue;
    }
    if (br.getBit() == 0) return;  // "10": end of block
    // "11": escape
    const std::uint32_t run = br.getUe();
    const std::uint32_t mag = br.getUe() + 1;
    const bool neg = br.getBit() != 0;
    if (run > 63 || mag > 32767) throw BitstreamError("vlc: escape symbol out of range");
    out.push_back(rle::RunLevel{static_cast<std::uint8_t>(run),
                                static_cast<std::int16_t>(neg ? -static_cast<int>(mag)
                                                              : static_cast<int>(mag))});
  }
}

void vlcGetBlockFast(BitReader& br, std::vector<rle::RunLevel>& out) {
  while (true) {
    // Fast path: one 8-bit peek classifies the symbol. The worst case on
    // ARBITRARY bits (corrupted streams reach this decoder through the
    // fault-injection tests) is an escape with two maximal Exp-Golomb
    // codes: 2 + 63 + 63 + 1 = 129 bits. With that many bits remaining
    // every peek window is fully in-stream, so the fast path is
    // bit-for-bit the oracle. Anything shorter decodes at symbol
    // granularity through the oracle so bit consumption on truncation
    // matches it exactly.
    if (br.bitsRemaining() >= 129) {
      const VlcEntry e = kVlcLut[br.peekBits(8)];
      if (e.kind == 0) {
        br.skipBits(6);
        out.push_back(rle::RunLevel{static_cast<std::uint8_t>(e.run), e.level});
        continue;
      }
      if (e.kind == 1) {
        br.skipBits(2);
        return;
      }
      br.skipBits(2);
      const std::uint32_t run = fastGetUe(br);
      const std::uint32_t mag = fastGetUe(br) + 1;
      const bool neg = br.getBit() != 0;
      if (run > 63 || mag > 32767) throw BitstreamError("vlc: escape symbol out of range");
      out.push_back(rle::RunLevel{static_cast<std::uint8_t>(run),
                                  static_cast<std::int16_t>(neg ? -static_cast<int>(mag)
                                                                : static_cast<int>(mag))});
      continue;
    }
    // Near end of stream: one symbol via the oracle, then retry the fast
    // path (EOB returns, throws propagate with oracle bit positions).
    if (br.getBit() == 0) {
      const std::uint32_t run = br.get(2);
      const std::uint32_t mag = br.get(2) + 1;
      const bool neg = br.getBit() != 0;
      out.push_back(rle::RunLevel{static_cast<std::uint8_t>(run),
                                  static_cast<std::int16_t>(neg ? -static_cast<int>(mag)
                                                                : static_cast<int>(mag))});
      continue;
    }
    if (br.getBit() == 0) return;
    const std::uint32_t run = br.getUe();
    const std::uint32_t mag = br.getUe() + 1;
    const bool neg = br.getBit() != 0;
    if (run > 63 || mag > 32767) throw BitstreamError("vlc: escape symbol out of range");
    out.push_back(rle::RunLevel{static_cast<std::uint8_t>(run),
                                static_cast<std::int16_t>(neg ? -static_cast<int>(mag)
                                                              : static_cast<int>(mag))});
  }
}

// ------------------------------------------------------------ 8x8 DCT (oracle)

void scalarDctForward(const Block& in, Block& out) {
  const auto& k = g_dct_k.k;
  std::array<std::int32_t, 64> tmp{};
  // Rows: tmp[y][u] = sum_x in[y][x] * K[u][x]
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      std::int64_t acc = 0;
      for (int x = 0; x < 8; ++x) {
        acc += static_cast<std::int64_t>(in[static_cast<std::size_t>(y * 8 + x)]) *
               k[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)];
      }
      tmp[static_cast<std::size_t>(y * 8 + u)] =
          static_cast<std::int32_t>((acc + kDctRound) >> kDctShift);
    }
  }
  // Columns: out[v][u] = sum_y tmp[y][u] * K[v][y]
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      std::int64_t acc = 0;
      for (int y = 0; y < 8; ++y) {
        acc += static_cast<std::int64_t>(tmp[static_cast<std::size_t>(y * 8 + u)]) *
               k[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      }
      out[static_cast<std::size_t>(v * 8 + u)] =
          clamp16(static_cast<std::int32_t>((acc + kDctRound) >> kDctShift));
    }
  }
}

void scalarDctInverse(const Block& in, Block& out) {
  const auto& k = g_dct_k.k;
  std::array<std::int32_t, 64> tmp{};
  // Rows: tmp[v][x] = sum_u in[v][u] * K[u][x]
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      std::int64_t acc = 0;
      for (int u = 0; u < 8; ++u) {
        acc += static_cast<std::int64_t>(in[static_cast<std::size_t>(v * 8 + u)]) *
               k[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)];
      }
      tmp[static_cast<std::size_t>(v * 8 + x)] =
          static_cast<std::int32_t>((acc + kDctRound) >> kDctShift);
    }
  }
  // Columns: out[y][x] = sum_v tmp[v][x] * K[v][y]
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      std::int64_t acc = 0;
      for (int v = 0; v < 8; ++v) {
        acc += static_cast<std::int64_t>(tmp[static_cast<std::size_t>(v * 8 + x)]) *
               k[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      }
      out[static_cast<std::size_t>(y * 8 + x)] =
          clamp16(static_cast<std::int32_t>((acc + kDctRound) >> kDctShift));
    }
  }
}

// ------------------------------------------------------------------- quant

void scalarQuantize(const Block& coefs, Block& levels, int qscale, const quant::Matrix& m) {
  for (int i = 0; i < 64; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::int32_t step = qscale * m[idx];  // step/16 is the real step
    const std::int32_t c = coefs[idx] * 16;
    // Round half away from zero for symmetry around 0.
    const std::int32_t lv = c >= 0 ? (c + step / 2) / step : -((-c + step / 2) / step);
    levels[idx] = clampLevel(lv);
  }
}

void scalarDequantize(const Block& levels, Block& coefs, int qscale, const quant::Matrix& m) {
  for (int i = 0; i < 64; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::int32_t step = qscale * m[idx];
    const std::int32_t c = levels[idx] * step / 16;
    coefs[idx] = clampCoef(c);
  }
}

// -------------------------------------------------------------------- scan

void scalarToScan(const Block& raster, Block& scanned, scan::Order order) {
  const auto& t = order == scan::Order::Zigzag ? kZigzagTable : kAlternateTable;
  for (int i = 0; i < 64; ++i) {
    scanned[static_cast<std::size_t>(i)] =
        raster[static_cast<std::size_t>(t[static_cast<std::size_t>(i)])];
  }
}

void scalarFromScan(const Block& scanned, Block& raster, scan::Order order) {
  const auto& t = order == scan::Order::Zigzag ? kZigzagTable : kAlternateTable;
  for (int i = 0; i < 64; ++i) {
    raster[static_cast<std::size_t>(t[static_cast<std::size_t>(i)])] =
        scanned[static_cast<std::size_t>(i)];
  }
}

void scalarRleEncode(const Block& scanned, std::vector<rle::RunLevel>& out) {
  out.clear();
  int run = 0;
  for (int i = 0; i < 64; ++i) {
    const std::int16_t v = scanned[static_cast<std::size_t>(i)];
    if (v == 0) {
      ++run;
    } else {
      out.push_back(rle::RunLevel{static_cast<std::uint8_t>(run), v});
      run = 0;
    }
  }
}

// ------------------------------------------------------------------ motion

std::uint32_t scalarSad16xH(const std::uint8_t* cur, int cur_stride, const std::uint8_t* ref,
                            int ref_stride, int h, int fx, int fy) {
  return sadWxH(16, cur, cur_stride, ref, ref_stride, h, fx, fy);
}

void scalarInterp16xH(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                      int h, int fx, int fy) {
  interpWxH(16, dst, dst_stride, src, src_stride, h, fx, fy);
}

void scalarInterp8xH(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                     int h, int fx, int fy) {
  interpWxH(8, dst, dst_stride, src, src_stride, h, fx, fy);
}

void scalarAvgU8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((a[i] + b[i] + 1) / 2);
  }
}

void scalarAddRes8x8(std::uint8_t* dst, int dst_stride, const std::uint8_t* pred, int pred_stride,
                     const std::int16_t* res) {
  for (int y = 0; y < 8; ++y) {
    std::uint8_t* d = dst + static_cast<std::ptrdiff_t>(y) * dst_stride;
    const std::uint8_t* p = pred + static_cast<std::ptrdiff_t>(y) * pred_stride;
    const std::int16_t* r = res + y * 8;
    for (int x = 0; x < 8; ++x) d[x] = clampPel(p[x] + r[x]);
  }
}

void scalarDiff8x8(std::int16_t* res, const std::uint8_t* cur, int cur_stride,
                   const std::uint8_t* pred, int pred_stride) {
  for (int y = 0; y < 8; ++y) {
    std::int16_t* r = res + y * 8;
    const std::uint8_t* c = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::uint8_t* p = pred + static_cast<std::ptrdiff_t>(y) * pred_stride;
    for (int x = 0; x < 8; ++x) r[x] = static_cast<std::int16_t>(c[x] - p[x]);
  }
}

void scalarClampStoreRow(const std::int32_t* src, std::uint8_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = clampPel(src[i]);
}

const KernelTable& scalarTable() {
  static const KernelTable t = [] {
    KernelTable k;
    k.backend = Backend::Scalar;
    k.name = "scalar";
    k.dct_forward = scalarDctForward;
    k.dct_inverse = scalarDctInverse;
    k.quantize = scalarQuantize;
    k.dequantize = scalarDequantize;
    k.to_scan = scalarToScan;
    k.from_scan = scalarFromScan;
    k.rle_encode = scalarRleEncode;
    k.sad_16xh = scalarSad16xH;
    k.interp_16xh = scalarInterp16xH;
    k.interp_8xh = scalarInterp8xH;
    k.avg_u8 = scalarAvgU8;
    k.add_res_8x8 = scalarAddRes8x8;
    k.diff_8x8 = scalarDiff8x8;
    k.clamp_store_row = scalarClampStoreRow;
    k.vlc_get_block = vlcGetBlockBitwise;
    return k;
  }();
  return t;
}

}  // namespace eclipse::media::kernels::detail
