#include "eclipse/media/quant.hpp"

#include <stdexcept>

namespace eclipse::media::quant {

namespace {

constexpr Matrix kFlat = [] {
  Matrix m{};
  for (auto& v : m) v = 16;
  return m;
}();

// ISO/IEC 13818-2 default intra quantiser matrix.
constexpr Matrix kDefaultIntra = {
    8,  16, 19, 22, 26, 27, 29, 34, 16, 16, 22, 24, 27, 29, 34, 37,
    19, 22, 26, 27, 29, 34, 34, 38, 22, 22, 26, 27, 29, 34, 37, 40,
    22, 26, 27, 29, 32, 35, 40, 48, 26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69, 27, 29, 35, 38, 46, 56, 69, 83};

std::int16_t clampLevel(std::int32_t v) {
  if (v > 2047) return 2047;
  if (v < -2047) return -2047;
  return static_cast<std::int16_t>(v);
}

std::int16_t clampCoef(std::int32_t v) {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return static_cast<std::int16_t>(v);
}

void checkQscale(int qscale) {
  if (qscale < kMinQscale || qscale > kMaxQscale) {
    throw std::invalid_argument("quant: qscale out of range [1, 31]");
  }
}

}  // namespace

const Matrix& flatMatrix() { return kFlat; }
const Matrix& defaultIntraMatrix() { return kDefaultIntra; }

void quantize(const Block& coefs, Block& levels, int qscale, const Matrix& m) {
  checkQscale(qscale);
  for (int i = 0; i < 64; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::int32_t step = qscale * m[idx];  // step/16 is the real step
    const std::int32_t c = coefs[idx] * 16;
    // Round half away from zero for symmetry around 0.
    const std::int32_t lv = c >= 0 ? (c + step / 2) / step : -((-c + step / 2) / step);
    levels[idx] = clampLevel(lv);
  }
}

void dequantize(const Block& levels, Block& coefs, int qscale, const Matrix& m) {
  checkQscale(qscale);
  for (int i = 0; i < 64; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::int32_t step = qscale * m[idx];
    const std::int32_t c = levels[idx] * step / 16;
    coefs[idx] = clampCoef(c);
  }
}

}  // namespace eclipse::media::quant
