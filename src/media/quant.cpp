#include "eclipse/media/quant.hpp"

#include <stdexcept>

#include "eclipse/media/kernels.hpp"

namespace eclipse::media::quant {

namespace {

constexpr Matrix kFlat = [] {
  Matrix m{};
  for (auto& v : m) v = 16;
  return m;
}();

// ISO/IEC 13818-2 default intra quantiser matrix.
constexpr Matrix kDefaultIntra = {
    8,  16, 19, 22, 26, 27, 29, 34, 16, 16, 22, 24, 27, 29, 34, 37,
    19, 22, 26, 27, 29, 34, 34, 38, 22, 22, 26, 27, 29, 34, 37, 40,
    22, 26, 27, 29, 32, 35, 40, 48, 26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69, 27, 29, 35, 38, 46, 56, 69, 83};

void checkQscale(int qscale) {
  if (qscale < kMinQscale || qscale > kMaxQscale) {
    throw std::invalid_argument("quant: qscale out of range [1, 31]");
  }
}

}  // namespace

const Matrix& flatMatrix() { return kFlat; }
const Matrix& defaultIntraMatrix() { return kDefaultIntra; }

// Argument validation stays here; the arithmetic lives in the kernel
// backends, which may assume a valid qscale.

void quantize(const Block& coefs, Block& levels, int qscale, const Matrix& m) {
  checkQscale(qscale);
  kernels::active().quantize(coefs, levels, qscale, m);
}

void dequantize(const Block& levels, Block& coefs, int qscale, const Matrix& m) {
  checkQscale(qscale);
  kernels::active().dequantize(levels, coefs, qscale, m);
}

}  // namespace eclipse::media::quant
