// AVX2 backend for the media kernels. This TU is compiled with -mavx2 (see
// src/media/CMakeLists.txt); runtime gating happens in kernels.cpp via
// CPUID, so the rest of the binary never executes VEX-256 instructions on
// machines without them. Bit-identical to the scalar oracle (DESIGN.md §11).

#include "kernels_impl.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace eclipse::media::kernels::detail {

namespace {

// ----------------------------------------------------------------- tables

struct DctTabs {
  // Row-pass pmaddwd pairs: one 256-bit row per x-pair (layout as in the
  // SSE2 backend, lanes u0..u7 resp. x0..x7).
  alignas(32) std::int16_t fwd_pairs[4][16];
  alignas(32) std::int16_t inv_pairs[4][16];
  alignas(32) std::int32_t colF[8][8];
  alignas(32) std::int32_t colI[8][8];

  DctTabs() {
    const DctK t = computeDctK();
    for (int p = 0; p < 4; ++p) {
      for (int l = 0; l < 8; ++l) {
        fwd_pairs[p][2 * l] = static_cast<std::int16_t>(
            t.k[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * p)]);
        fwd_pairs[p][2 * l + 1] = static_cast<std::int16_t>(
            t.k[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * p + 1)]);
        inv_pairs[p][2 * l] = static_cast<std::int16_t>(
            t.k[static_cast<std::size_t>(2 * p)][static_cast<std::size_t>(l)]);
        inv_pairs[p][2 * l + 1] = static_cast<std::int16_t>(
            t.k[static_cast<std::size_t>(2 * p + 1)][static_cast<std::size_t>(l)]);
      }
    }
    for (int r = 0; r < 8; ++r) {
      for (int c = 0; c < 8; ++c) {
        colF[r][c] = t.k[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
        colI[r][c] = t.k[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)];
      }
    }
  }
};

const DctTabs g_dct;

/// pshufb masks applying a fixed 64-element int16 permutation in 32-byte
/// chunks: out chunk j ORs, for every input chunk k, shuffles of the
/// chunk itself (mA, same-lane bytes) and its lane-swapped copy (mB,
/// cross-lane bytes). 0x80 bytes contribute zero.
struct ScanMasks {
  alignas(32) std::uint8_t mA[4][4][32];
  alignas(32) std::uint8_t mB[4][4][32];
};

constexpr ScanMasks buildMasks(const std::array<int, 64>& perm) {
  ScanMasks m{};
  for (int j = 0; j < 4; ++j) {
    for (int k = 0; k < 4; ++k) {
      for (int b = 0; b < 32; ++b) {
        m.mA[j][k][b] = 0x80;
        m.mB[j][k][b] = 0x80;
      }
    }
  }
  for (int i = 0; i < 64; ++i) {
    const int e = perm[static_cast<std::size_t>(i)];
    for (int half = 0; half < 2; ++half) {
      const int db_abs = 2 * i + half;
      const int sb_abs = 2 * e + half;
      const int j = db_abs / 32, db = db_abs % 32, dl = db / 16;
      const int k = sb_abs / 32, sb = sb_abs % 32, sl = sb / 16, so = sb % 16;
      if (sl == dl) {
        m.mA[j][k][db] = static_cast<std::uint8_t>(so);
      } else {
        m.mB[j][k][db] = static_cast<std::uint8_t>(so);
      }
    }
  }
  return m;
}

constexpr ScanMasks kZigzagFwd = buildMasks(scanPerm(kZigzagTable, false));
constexpr ScanMasks kZigzagInv = buildMasks(scanPerm(kZigzagTable, true));
constexpr ScanMasks kAltFwd = buildMasks(scanPerm(kAlternateTable, false));
constexpr ScanMasks kAltInv = buildMasks(scanPerm(kAlternateTable, true));

// ---------------------------------------------------------------- helpers

inline __m256i load256(const void* p) {
  return _mm256_loadu_si256(static_cast<const __m256i*>(p));
}

inline __m256i broadcastPair(const std::int16_t* r) {
  const std::uint32_t bits = static_cast<std::uint16_t>(r[0]) |
                             (static_cast<std::uint32_t>(static_cast<std::uint16_t>(r[1])) << 16);
  return _mm256_set1_epi32(static_cast<int>(bits));
}

inline void dctRowPass(const std::int16_t* in_row, const std::int16_t pairs[4][16],
                       std::int32_t* tmp_row) {
  __m256i acc = _mm256_set1_epi32(kDctRound);
  for (int p = 0; p < 4; ++p) {
    acc = _mm256_add_epi32(
        acc, _mm256_madd_epi16(broadcastPair(in_row + 2 * p),
                               _mm256_load_si256(reinterpret_cast<const __m256i*>(pairs[p]))));
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(tmp_row), _mm256_srai_epi32(acc, kDctShift));
}

inline __m256i dctColAcc(const std::int32_t* tmp, const std::int32_t* factors) {
  __m256i acc = _mm256_set1_epi32(kDctRound);
  for (int t = 0; t < 8; ++t) {
    acc = _mm256_add_epi32(
        acc, _mm256_mullo_epi32(_mm256_load_si256(reinterpret_cast<const __m256i*>(tmp + t * 8)),
                                _mm256_set1_epi32(factors[t])));
  }
  return _mm256_srai_epi32(acc, kDctShift);
}

inline void dctColStorePair(const std::int32_t* tmp, const std::int32_t* f0,
                            const std::int32_t* f1, std::int16_t* out_rows) {
  const __m256i r0 = dctColAcc(tmp, f0);
  const __m256i r1 = dctColAcc(tmp, f1);
  // packs_epi32 saturation == clamp16; fix the lane interleave so the two
  // output rows land contiguously.
  const __m256i p = _mm256_permute4x64_epi64(_mm256_packs_epi32(r0, r1), _MM_SHUFFLE(3, 1, 2, 0));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_rows), p);
}

void avx2DctForward(const Block& in, Block& out) {
  alignas(32) std::int32_t tmp[64];
  for (int y = 0; y < 8; ++y) {
    dctRowPass(&in[static_cast<std::size_t>(y * 8)], g_dct.fwd_pairs, tmp + y * 8);
  }
  for (int v = 0; v < 8; v += 2) {
    dctColStorePair(tmp, g_dct.colF[v], g_dct.colF[v + 1], &out[static_cast<std::size_t>(v * 8)]);
  }
}

void avx2DctInverse(const Block& in, Block& out) {
  alignas(32) std::int32_t tmp[64];
  for (int v = 0; v < 8; ++v) {
    dctRowPass(&in[static_cast<std::size_t>(v * 8)], g_dct.inv_pairs, tmp + v * 8);
  }
  for (int y = 0; y < 8; y += 2) {
    dctColStorePair(tmp, g_dct.colI[y], g_dct.colI[y + 1], &out[static_cast<std::size_t>(y * 8)]);
  }
}

// ------------------------------------------------------------------- quant

void avx2Quantize(const Block& coefs, Block& levels, int qscale, const quant::Matrix& m) {
  const __m256i qs = _mm256_set1_epi32(qscale);
  const __m256i lv_max = _mm256_set1_epi32(2047);
  const __m256i lv_min = _mm256_set1_epi32(-2047);
  for (int i = 0; i < 64; i += 8) {
    const __m256i c32 = _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&coefs[static_cast<std::size_t>(i)])));
    const __m256i step = _mm256_mullo_epi32(
        _mm256_cvtepu8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(&m[static_cast<std::size_t>(i)]))),
        qs);
    const __m256i sign = _mm256_srai_epi32(c32, 31);
    const __m256i absc = _mm256_sub_epi32(_mm256_xor_si256(c32, sign), sign);
    // n = |coef|*16 + step/2; exact n/step via double division (see the
    // SSE2 backend for the error-bound argument).
    const __m256i n = _mm256_add_epi32(_mm256_slli_epi32(absc, 4), _mm256_srli_epi32(step, 1));
    const __m128i q_lo = _mm256_cvttpd_epi32(
        _mm256_div_pd(_mm256_cvtepi32_pd(_mm256_castsi256_si128(n)),
                      _mm256_cvtepi32_pd(_mm256_castsi256_si128(step))));
    const __m128i q_hi = _mm256_cvttpd_epi32(
        _mm256_div_pd(_mm256_cvtepi32_pd(_mm256_extracti128_si256(n, 1)),
                      _mm256_cvtepi32_pd(_mm256_extracti128_si256(step, 1))));
    __m256i q = _mm256_set_m128i(q_hi, q_lo);
    q = _mm256_sub_epi32(_mm256_xor_si256(q, sign), sign);
    q = _mm256_max_epi32(_mm256_min_epi32(q, lv_max), lv_min);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&levels[static_cast<std::size_t>(i)]),
                     _mm_packs_epi32(_mm256_castsi256_si128(q), _mm256_extracti128_si256(q, 1)));
  }
}

void avx2Dequantize(const Block& levels, Block& coefs, int qscale, const quant::Matrix& m) {
  const __m256i qs = _mm256_set1_epi32(qscale);
  const __m256i fifteen = _mm256_set1_epi32(15);
  for (int i = 0; i < 64; i += 8) {
    const __m256i l32 = _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&levels[static_cast<std::size_t>(i)])));
    const __m256i step = _mm256_mullo_epi32(
        _mm256_cvtepu8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(&m[static_cast<std::size_t>(i)]))),
        qs);
    const __m256i prod = _mm256_mullo_epi32(l32, step);
    const __m256i sign = _mm256_srai_epi32(prod, 31);
    const __m256i c =
        _mm256_srai_epi32(_mm256_add_epi32(prod, _mm256_and_si256(sign, fifteen)), 4);
    // packs_epi32 saturation == clampCoef.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&coefs[static_cast<std::size_t>(i)]),
                     _mm_packs_epi32(_mm256_castsi256_si128(c), _mm256_extracti128_si256(c, 1)));
  }
}

// -------------------------------------------------------------------- scan

inline void shuffle64(const std::int16_t* src, std::int16_t* dst, const ScanMasks& M) {
  __m256i in[4], sw[4];
  for (int k = 0; k < 4; ++k) {
    in[k] = load256(src + 16 * k);
    sw[k] = _mm256_permute2x128_si256(in[k], in[k], 0x01);
  }
  for (int j = 0; j < 4; ++j) {
    __m256i r = _mm256_setzero_si256();
    for (int k = 0; k < 4; ++k) {
      r = _mm256_or_si256(
          r, _mm256_shuffle_epi8(in[k],
                                 _mm256_load_si256(reinterpret_cast<const __m256i*>(M.mA[j][k]))));
      r = _mm256_or_si256(
          r, _mm256_shuffle_epi8(sw[k],
                                 _mm256_load_si256(reinterpret_cast<const __m256i*>(M.mB[j][k]))));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 16 * j), r);
  }
}

void avx2ToScan(const Block& raster, Block& scanned, scan::Order order) {
  shuffle64(raster.data(), scanned.data(),
            order == scan::Order::Zigzag ? kZigzagFwd : kAltFwd);
}

void avx2FromScan(const Block& scanned, Block& raster, scan::Order order) {
  shuffle64(scanned.data(), raster.data(),
            order == scan::Order::Zigzag ? kZigzagInv : kAltInv);
}

// --------------------------------------------------------------------- rle

void avx2RleEncode(const Block& scanned, std::vector<rle::RunLevel>& out) {
  out.clear();
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t nonzero = 0;
  for (int i = 0; i < 64; i += 32) {
    const __m256i z0 =
        _mm256_cmpeq_epi16(load256(&scanned[static_cast<std::size_t>(i)]), zero);
    const __m256i z1 =
        _mm256_cmpeq_epi16(load256(&scanned[static_cast<std::size_t>(i + 16)]), zero);
    const __m256i packed =
        _mm256_permute4x64_epi64(_mm256_packs_epi16(z0, z1), _MM_SHUFFLE(3, 1, 2, 0));
    const auto zb = static_cast<std::uint32_t>(_mm256_movemask_epi8(packed));
    nonzero |= static_cast<std::uint64_t>(~zb) << i;
  }
  int prev = -1;
  while (nonzero != 0) {
    const int pos = std::countr_zero(nonzero);
    nonzero &= nonzero - 1;
    out.push_back(rle::RunLevel{static_cast<std::uint8_t>(pos - prev - 1),
                                scanned[static_cast<std::size_t>(pos)]});
    prev = pos;
  }
}

// ------------------------------------------------------------------ motion

/// Two consecutive 16-byte rows in one 256-bit register.
inline __m256i load2rows(const std::uint8_t* r, int stride) {
  return _mm256_inserti128_si256(
      _mm256_castsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(r))),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + stride)), 1);
}

/// Half-pel prediction for rows y and y+1 (r0 points at row y).
inline __m256i predRows16x2(const std::uint8_t* r0, int stride, int fx, int fy) {
  if (fx == 0 && fy == 0) return load2rows(r0, stride);
  if (fx != 0 && fy == 0) return _mm256_avg_epu8(load2rows(r0, stride), load2rows(r0 + 1, stride));
  if (fx == 0) return _mm256_avg_epu8(load2rows(r0, stride), load2rows(r0 + stride, stride));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i two = _mm256_set1_epi16(2);
  const __m256i a = load2rows(r0, stride);
  const __m256i b = load2rows(r0 + 1, stride);
  const __m256i c = load2rows(r0 + stride, stride);
  const __m256i d = load2rows(r0 + stride + 1, stride);
  __m256i lo = _mm256_add_epi16(
      _mm256_add_epi16(_mm256_unpacklo_epi8(a, zero), _mm256_unpacklo_epi8(b, zero)),
      _mm256_add_epi16(_mm256_unpacklo_epi8(c, zero), _mm256_unpacklo_epi8(d, zero)));
  __m256i hi = _mm256_add_epi16(
      _mm256_add_epi16(_mm256_unpackhi_epi8(a, zero), _mm256_unpackhi_epi8(b, zero)),
      _mm256_add_epi16(_mm256_unpackhi_epi8(c, zero), _mm256_unpackhi_epi8(d, zero)));
  lo = _mm256_srli_epi16(_mm256_add_epi16(lo, two), 2);
  hi = _mm256_srli_epi16(_mm256_add_epi16(hi, two), 2);
  // unpack/pack operate per lane, so byte positions survive the round trip.
  return _mm256_packus_epi16(lo, hi);
}

std::uint32_t avx2Sad16xH(const std::uint8_t* cur, int cur_stride, const std::uint8_t* ref,
                          int ref_stride, int h, int fx, int fy) {
  __m256i acc = _mm256_setzero_si256();
  int y = 0;
  for (; y + 2 <= h; y += 2) {
    const __m256i c = load2rows(cur + static_cast<std::ptrdiff_t>(y) * cur_stride, cur_stride);
    const __m256i p = predRows16x2(ref + static_cast<std::ptrdiff_t>(y) * ref_stride, ref_stride, fx, fy);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(c, p));
  }
  __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc), _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi64(s, _mm_srli_si128(s, 8));
  std::uint32_t sad = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
  if (y < h) {  // odd h tail
    sad += sse2Sad16xH(cur + static_cast<std::ptrdiff_t>(y) * cur_stride, cur_stride,
                       ref + static_cast<std::ptrdiff_t>(y) * ref_stride, ref_stride, h - y, fx, fy);
  }
  return sad;
}

void avx2Interp16xH(std::uint8_t* dst, int dst_stride, const std::uint8_t* src, int src_stride,
                    int h, int fx, int fy) {
  int y = 0;
  for (; y + 2 <= h; y += 2) {
    const __m256i p = predRows16x2(src + static_cast<std::ptrdiff_t>(y) * src_stride, src_stride, fx, fy);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + static_cast<std::ptrdiff_t>(y) * dst_stride),
                     _mm256_castsi256_si128(p));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + static_cast<std::ptrdiff_t>(y + 1) * dst_stride),
        _mm256_extracti128_si256(p, 1));
  }
  if (y < h) {
    sse2Interp16xH(dst + static_cast<std::ptrdiff_t>(y) * dst_stride, dst_stride,
                   src + static_cast<std::ptrdiff_t>(y) * src_stride, src_stride, h - y, fx, fy);
  }
}

void avx2AvgU8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_avg_epu8(load256(a + i), load256(b + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<std::uint8_t>((a[i] + b[i] + 1) / 2);
}

}  // namespace

const KernelTable* avx2Table() {
  static const KernelTable t = [] {
    KernelTable k;
    k.backend = Backend::Avx2;
    k.name = "avx2";
    k.dct_forward = avx2DctForward;
    k.dct_inverse = avx2DctInverse;
    k.quantize = avx2Quantize;
    k.dequantize = avx2Dequantize;
    k.to_scan = avx2ToScan;
    k.from_scan = avx2FromScan;
    k.rle_encode = avx2RleEncode;
    k.sad_16xh = avx2Sad16xH;
    k.interp_16xh = avx2Interp16xH;
    k.interp_8xh = sse2Interp8xH;  // 8-wide: 128-bit is already full width
    k.avg_u8 = avx2AvgU8;
    k.add_res_8x8 = sse2AddRes8x8;
    k.diff_8x8 = sse2Diff8x8;
    k.clamp_store_row = sse2ClampStoreRow;
    k.vlc_get_block = vlcGetBlockFast;
    return k;
  }();
  return &t;
}

}  // namespace eclipse::media::kernels::detail

#else  // AVX2 not compiled in

namespace eclipse::media::kernels::detail {
const KernelTable* avx2Table() { return nullptr; }
}  // namespace eclipse::media::kernels::detail

#endif
