#include "eclipse/media/vlc.hpp"

#include <cmath>
#include <cstdlib>

namespace eclipse::media::vlc {

namespace {

bool isCommon(const rle::RunLevel& p) {
  return p.run < 4 && p.level != 0 && std::abs(p.level) <= 4;
}

int ueBits(std::uint32_t v) {
  int len = 0;
  const std::uint64_t code = static_cast<std::uint64_t>(v) + 1;
  while ((code >> len) > 1) ++len;
  return 2 * len + 1;
}

}  // namespace

void putBlock(BitWriter& bw, const std::vector<rle::RunLevel>& pairs) {
  for (const auto& p : pairs) {
    if (isCommon(p)) {
      bw.putBit(0);
      bw.put(p.run, 2);
      bw.put(static_cast<std::uint32_t>(std::abs(p.level) - 1), 2);
      bw.putBit(p.level < 0 ? 1 : 0);
    } else {
      bw.put(0b11, 2);
      bw.putUe(p.run);
      bw.putUe(static_cast<std::uint32_t>(std::abs(p.level) - 1));
      bw.putBit(p.level < 0 ? 1 : 0);
    }
  }
  bw.put(0b10, 2);  // end of block
}

std::vector<rle::RunLevel> getBlock(BitReader& br) {
  std::vector<rle::RunLevel> pairs;
  while (true) {
    if (br.getBit() == 0) {
      // common pair
      const std::uint32_t run = br.get(2);
      const std::uint32_t mag = br.get(2) + 1;
      const bool neg = br.getBit() != 0;
      pairs.push_back(rle::RunLevel{static_cast<std::uint8_t>(run),
                                    static_cast<std::int16_t>(neg ? -static_cast<int>(mag)
                                                                  : static_cast<int>(mag))});
      continue;
    }
    if (br.getBit() == 0) return pairs;  // "10": end of block
    // "11": escape
    const std::uint32_t run = br.getUe();
    const std::uint32_t mag = br.getUe() + 1;
    const bool neg = br.getBit() != 0;
    if (run > 63 || mag > 32767) throw BitstreamError("vlc: escape symbol out of range");
    pairs.push_back(rle::RunLevel{static_cast<std::uint8_t>(run),
                                  static_cast<std::int16_t>(neg ? -static_cast<int>(mag)
                                                                : static_cast<int>(mag))});
  }
}

int pairBits(const rle::RunLevel& pair) {
  if (isCommon(pair)) return 6;
  return 2 + ueBits(pair.run) + ueBits(static_cast<std::uint32_t>(std::abs(pair.level) - 1)) + 1;
}

}  // namespace eclipse::media::vlc
