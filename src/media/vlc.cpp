#include "eclipse/media/vlc.hpp"

#include <cmath>
#include <cstdlib>

#include "eclipse/media/kernels.hpp"

namespace eclipse::media::vlc {

namespace {

bool isCommon(const rle::RunLevel& p) {
  return p.run < 4 && p.level != 0 && std::abs(p.level) <= 4;
}

int ueBits(std::uint32_t v) {
  int len = 0;
  const std::uint64_t code = static_cast<std::uint64_t>(v) + 1;
  while ((code >> len) > 1) ++len;
  return 2 * len + 1;
}

}  // namespace

void putBlock(BitWriter& bw, const std::vector<rle::RunLevel>& pairs) {
  for (const auto& p : pairs) {
    if (isCommon(p)) {
      bw.putBit(0);
      bw.put(p.run, 2);
      bw.put(static_cast<std::uint32_t>(std::abs(p.level) - 1), 2);
      bw.putBit(p.level < 0 ? 1 : 0);
    } else {
      bw.put(0b11, 2);
      bw.putUe(p.run);
      bw.putUe(static_cast<std::uint32_t>(std::abs(p.level) - 1));
      bw.putBit(p.level < 0 ? 1 : 0);
    }
  }
  bw.put(0b10, 2);  // end of block
}

std::vector<rle::RunLevel> getBlock(BitReader& br) {
  // Decode goes through the kernel table: the scalar backend is the
  // original bit-at-a-time loop, SIMD backends use a table-driven
  // multi-bit decoder with identical output, exceptions and bit
  // consumption (fault recovery resumes from the reader's position).
  std::vector<rle::RunLevel> pairs;
  kernels::active().vlc_get_block(br, pairs);
  return pairs;
}

int pairBits(const rle::RunLevel& pair) {
  if (isCommon(pair)) return 6;
  return 2 + ueBits(pair.run) + ueBits(static_cast<std::uint32_t>(std::abs(pair.level) - 1)) + 1;
}

}  // namespace eclipse::media::vlc
