#include "eclipse/app/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace eclipse::app {

namespace {

/// Resamples a series into `width` buckets over [t0, t1] (bucket mean;
/// carries the previous value through empty buckets).
std::vector<double> resample(const sim::TimeSeries& s, sim::Cycle t0, sim::Cycle t1, int width) {
  std::vector<double> out(static_cast<std::size_t>(width), 0.0);
  if (s.empty() || t1 <= t0) return out;
  std::vector<double> sums(static_cast<std::size_t>(width), 0.0);
  std::vector<int> counts(static_cast<std::size_t>(width), 0);
  const double span = static_cast<double>(t1 - t0);
  for (const auto& [c, v] : s.points()) {
    if (c < t0 || c > t1) continue;
    int b = static_cast<int>(static_cast<double>(c - t0) / span * width);
    b = std::min(b, width - 1);
    sums[static_cast<std::size_t>(b)] += v;
    counts[static_cast<std::size_t>(b)] += 1;
  }
  double last = 0.0;
  for (int b = 0; b < width; ++b) {
    if (counts[static_cast<std::size_t>(b)] > 0) {
      last = sums[static_cast<std::size_t>(b)] / counts[static_cast<std::size_t>(b)];
    }
    out[static_cast<std::size_t>(b)] = last;
  }
  return out;
}

void timeSpan(const std::vector<const sim::TimeSeries*>& series, sim::Cycle& t0, sim::Cycle& t1) {
  t0 = ~0ULL;
  t1 = 0;
  for (const auto* s : series) {
    if (s == nullptr || s->empty()) continue;
    t0 = std::min(t0, s->points().front().first);
    t1 = std::max(t1, s->points().back().first);
  }
  if (t0 > t1) {
    t0 = 0;
    t1 = 0;
  }
}

std::string renderPanel(const sim::TimeSeries& s, sim::Cycle t0, sim::Cycle t1,
                        const ChartOptions& opts) {
  std::ostringstream ss;
  const auto vals = resample(s, t0, t1, opts.width);
  double vmax = 0.0;
  for (double v : vals) vmax = std::max(vmax, v);
  ss << s.name() << "  (max " << vmax << ")\n";
  if (vmax <= 0.0) vmax = 1.0;
  for (int row = opts.height - 1; row >= 0; --row) {
    const double lo = vmax * row / opts.height;
    ss << (opts.show_scale && row == opts.height - 1 ? '+' : '|');
    for (int col = 0; col < opts.width; ++col) {
      ss << (vals[static_cast<std::size_t>(col)] > lo ? '#' : ' ');
    }
    ss << '\n';
  }
  ss << '+' << std::string(static_cast<std::size_t>(opts.width), '-') << '\n';
  return ss.str();
}

}  // namespace

std::string renderSeries(const sim::TimeSeries& series, const ChartOptions& opts) {
  sim::Cycle t0 = 0, t1 = 0;
  std::vector<const sim::TimeSeries*> v{&series};
  timeSpan(v, t0, t1);
  return renderPanel(series, t0, t1, opts);
}

std::string renderStack(const std::vector<const sim::TimeSeries*>& series,
                        const ChartOptions& opts) {
  sim::Cycle t0 = 0, t1 = 0;
  timeSpan(series, t0, t1);
  std::ostringstream ss;
  ss << "cycles " << t0 << " .. " << t1 << "\n";
  for (const auto* s : series) {
    if (s != nullptr) ss << renderPanel(*s, t0, t1, opts);
  }
  return ss.str();
}

std::string toCsv(const std::vector<const sim::TimeSeries*>& series) {
  std::map<sim::Cycle, std::vector<double>> rows;
  std::map<sim::Cycle, std::vector<bool>> present;
  const std::size_t n = series.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (series[i] == nullptr) continue;
    for (const auto& [c, v] : series[i]->points()) {
      auto& row = rows[c];
      auto& pres = present[c];
      row.resize(n, 0.0);
      pres.resize(n, false);
      row[i] = v;
      pres[i] = true;
    }
  }
  std::ostringstream ss;
  ss << "cycle";
  for (const auto* s : series) ss << ',' << (s != nullptr ? s->name() : "");
  ss << '\n';
  for (const auto& [c, row] : rows) {
    ss << c;
    const auto& pres = present[c];
    for (std::size_t i = 0; i < n; ++i) {
      ss << ',';
      if (i < row.size() && pres[i]) ss << row[i];
    }
    ss << '\n';
  }
  return ss.str();
}

std::string renderActivityStrips(const std::vector<const sim::TimeSeries*>& series, int width) {
  sim::Cycle t0 = 0, t1 = 0;
  timeSpan(series, t0, t1);
  std::ostringstream ss;
  ss << "activity lanes, cycles " << t0 << " .. " << t1 << "\n";
  std::size_t label_width = 0;
  for (const auto* s : series) {
    if (s != nullptr) label_width = std::max(label_width, s->name().size());
  }
  for (const auto* s : series) {
    if (s == nullptr) continue;
    const auto vals = resample(*s, t0, t1, width);
    ss << s->name() << std::string(label_width - s->name().size(), ' ') << " |";
    for (const double v : vals) {
      ss << (v < 0.125 ? ' ' : v < 0.5 ? '.' : v < 0.875 ? ':' : '#');
    }
    ss << "|\n";
  }
  return ss.str();
}

sim::TimeSeries differentiate(const sim::TimeSeries& cumulative, std::string name) {
  sim::TimeSeries out(std::move(name));
  const auto& pts = cumulative.points();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double dv = pts[i].second - pts[i - 1].second;
    const double dt = static_cast<double>(pts[i].first - pts[i - 1].first);
    out.sample(pts[i].first, dt > 0 ? dv / dt : 0.0);
  }
  return out;
}

}  // namespace eclipse::app
