#include "eclipse/app/av_app.hpp"

#include <stdexcept>

#include "eclipse/media/mux.hpp"

namespace eclipse::app {

struct AvPlaybackApp::DemuxState {
  sim::Addr ts_addr = 0;
  std::size_t ts_bytes = 0;
  std::size_t pos = 0;
  std::uint64_t packets = 0;
  int video_stream_id = 0;
  int audio_stream_id = 1;
  std::uint64_t video_bytes = 0;
  std::uint64_t audio_bytes = 0;
  bool started_pipelines = false;
};

AvPlaybackApp::AvPlaybackApp(EclipseInstance& inst, std::vector<std::uint8_t> transport_stream,
                             const AvLayout& layout)
    : inst_(inst) {
  // Function/timing split (DESIGN.md): the elementary streams are
  // recovered functionally up front so the video/audio applications can be
  // configured, while the demux *timing* — per-packet transport walk, the
  // staging writes, and the run-time enabling of the consumer tasks — is
  // modelled by the software demux task below.
  auto streams = media::mux::split(transport_stream);
  const auto vs = static_cast<std::size_t>(layout.video_stream_id);
  const auto as = static_cast<std::size_t>(layout.audio_stream_id);
  if (vs >= streams.size() || as >= streams.size()) {
    throw std::invalid_argument("AvPlaybackApp: stream ids not present in the multiplex");
  }

  DecodeAppConfig vcfg;
  vcfg.vld_enabled = false;  // enabled by the demux task at run time
  video_ = std::make_unique<DecodeApp>(inst, std::move(streams[vs]), vcfg);

  // The audio application is a mode family: it boots with the feeder held
  // back (the demux enables it once the stream is staged), and the decoder
  // subgraph can be detached ("bypass") and re-attached ("play") live.
  AudioAppConfig boot;
  boot.feeder_enabled = false;
  AudioAppConfig play;
  AudioAppConfig bypass;
  bypass.bypass = true;
  audio_ = std::make_unique<AudioDecodeApp>(
      inst, std::move(streams[as]),
      std::vector<AudioDecodeApp::Mode>{{"boot", boot}, {"play", play}, {"bypass", bypass}});

  demux_ = std::make_shared<DemuxState>();
  demux_->ts_bytes = transport_stream.size();
  demux_->ts_addr = inst.allocDram(transport_stream.size());
  demux_->video_stream_id = layout.video_stream_id;
  demux_->audio_stream_id = layout.audio_stream_id;
  inst.dram().storage().write(demux_->ts_addr, transport_stream);

  auto demux_step = [this](sim::TaskId task, std::uint32_t) -> sim::Task<void> {
    auto& st = *demux_;
    if (st.pos >= st.ts_bytes) {
      if (!st.started_pipelines) {
        // Run-time application control: the CPU enables the consumers'
        // task-table entries (over the PI-bus) once their streams are
        // staged.
        video_->handle().setTaskEnabled("vld", true);
        audio_->handle().setTaskEnabled("feeder", true);
        st.started_pipelines = true;
      }
      inst_.cpu().finish(task);
      co_return;
    }
    // One transport packet per processing step.
    std::vector<std::uint8_t> pkt(media::mux::kPacketBytes);
    co_await inst_.dram().read(st.ts_addr + st.pos, pkt, static_cast<int>(inst_.cpuShell().id()));
    const auto parsed = media::mux::parsePacket(pkt);
    st.pos += media::mux::kPacketBytes;
    ++st.packets;
    // Header inspection + payload routing cost (software loop).
    co_await inst_.simulator().delay(8 + parsed.payload.size() / 4);
    // Staging write of the payload to the destination elementary-stream
    // area (timing only; contents were placed functionally above).
    co_await inst_.dram().touchWrite(parsed.payload.size(), static_cast<int>(inst_.cpuShell().id()));
    if (parsed.stream_id == st.video_stream_id) {
      st.video_bytes += parsed.payload.size();
    } else if (parsed.stream_id == st.audio_stream_id) {
      st.audio_bytes += parsed.payload.size();
    }
  };

  GraphSpec g("av-demux");
  g.task({.name = "demux", .shell = "dsp-cpu", .budget_cycles = 2000,
          .software = std::move(demux_step)});
  Configurator configurator(inst);
  demux_handle_ = configurator.apply(g);
  demux_handle_.adoptDram(demux_->ts_addr, transport_stream.size());
  t_demux_ = demux_handle_.taskId("demux");
}

TransitionStats AvPlaybackApp::detachAudioDecode() { return audio_->switchMode("bypass"); }

TransitionStats AvPlaybackApp::attachAudioDecode() { return audio_->switchMode("play"); }

void AvPlaybackApp::teardown() {
  demux_handle_.teardown();
  video_->teardown();
  audio_->teardown();
}

bool AvPlaybackApp::done() const { return video_->done() && audio_->done(); }

std::uint64_t AvPlaybackApp::packetsDemuxed() const { return demux_->packets; }

}  // namespace eclipse::app
