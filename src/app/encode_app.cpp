#include "eclipse/app/encode_app.hpp"

namespace eclipse::app {

GraphSpec EncodeApp::spec(const EncodeAppConfig& cfg, const std::string& sink_shell,
                          coproc::SoftCpu::StepHandler source_step,
                          coproc::SoftCpu::StepHandler vle_step, const std::string& name) {
  GraphSpec g(name);
  const std::uint32_t b = cfg.budget_cycles;
  g.task({.name = "src",
          .shell = "dsp-cpu",
          .budget_cycles = b,
          .source = true,
          .software = std::move(source_step)})
      .task({.name = "vle", .shell = "dsp-cpu", .budget_cycles = b, .software = std::move(vle_step)})
      .task({.name = "me", .shell = "mc", .budget_cycles = b, .software = {}})
      .task({.name = "recon", .shell = "mc", .budget_cycles = b, .software = {}})
      .task({.name = "fdct", .shell = "dct", .budget_cycles = b,
             .task_info = coproc::kDctInfoForward, .software = {}})
      .task({.name = "idct", .shell = "dct", .budget_cycles = b, .software = {}})
      .task({.name = "qrle", .shell = "rlsq", .budget_cycles = b,
             .task_info = coproc::kRlsqInfoEncode, .software = {}})
      .task({.name = "deq", .shell = "rlsq", .budget_cycles = b, .software = {}})
      .task({.name = "sink", .shell = sink_shell, .budget_cycles = b, .software = {}});

  // Forward path.
  g.stream("cur", "src", coproc::EncoderSource::kOut, "me", coproc::McCoproc::kInCur,
           cfg.cur_buffer)
      .stream("res", "me", coproc::McCoproc::kOutRes, "fdct", coproc::DctCoproc::kIn,
              cfg.res_buffer)
      .stream("hdr", "me", coproc::McCoproc::kOutHdrVle, "vle", coproc::VleTask::kInHdr,
              cfg.hdr_buffer)
      .stream("qin", "fdct", coproc::DctCoproc::kOut, "qrle", coproc::RlsqCoproc::kIn,
              cfg.res_buffer)
      .stream("coef", "qrle", coproc::RlsqCoproc::kOut, "vle", coproc::VleTask::kInCoef,
              cfg.coef_buffer)
      .stream("chunks", "vle", coproc::VleTask::kOut, "sink", coproc::ByteSink::kIn,
              cfg.chunk_buffer);

  // Embedded-decoder reconstruction loop.
  g.stream("hdr-rec", "me", coproc::McCoproc::kOutHdrRec, "recon", coproc::McCoproc::kInHdr,
           cfg.hdr_buffer)
      .stream("coef-rec", "qrle", coproc::RlsqCoproc::kOutRecon, "deq", coproc::RlsqCoproc::kIn,
              cfg.coef_buffer)
      .stream("res-rec", "deq", coproc::RlsqCoproc::kOut, "idct", coproc::DctCoproc::kIn,
              cfg.res_buffer)
      .stream("pix-rec", "idct", coproc::DctCoproc::kOut, "recon", coproc::McCoproc::kInRes,
              cfg.res_buffer)
      .stream("tokens", "recon", coproc::McCoproc::kOutToken, "src",
              coproc::EncoderSource::kInToken, cfg.token_buffer);
  return g;
}

GraphSpec EncodeApp::modeSpec(const std::string& name, const EncodeAppConfig& cfg) const {
  return spec(
      cfg, sink_->shell().name(),
      [this](sim::TaskId t, std::uint32_t info) { return source_->step(t, info); },
      [this](sim::TaskId t, std::uint32_t info) { return vle_->step(t, info); }, name);
}

void EncodeApp::init(const media::CodecParams& params, int frame_count) {
  const media::SeqHeader sh = params.toSeqHeader(frame_count);

  // Shared off-chip reconstruction frame store for ME and RECON.
  const std::size_t store_bytes =
      static_cast<std::size_t>(coproc::McCoproc::frameSlotBytes(sh)) * 3;
  const sim::Addr store = inst_.allocDram(store_bytes);

  Configurator configurator(inst_);
  handle_ = configurator.apply(modes_.modes().front(), [&](AppHandle& h) {
    coproc::McTaskConfig me_cfg;
    me_cfg.kind = coproc::McTaskKind::MotionEst;
    me_cfg.frame_store_base = store;
    inst_.mc().configureTask(h.taskId("me"), me_cfg);

    coproc::McTaskConfig rec_cfg;
    rec_cfg.kind = coproc::McTaskKind::EncodeRecon;
    rec_cfg.frame_store_base = store;
    inst_.mc().configureTask(h.taskId("recon"), rec_cfg);
  });
  handle_.adoptDram(store, store_bytes);
  handle_.addCleanup([this] {
    if (!sink_->done()) inst_.deregisterApp();
  });

  t_me_ = handle_.taskId("me");
  t_recon_ = handle_.taskId("recon");
  t_fdct_ = handle_.taskId("fdct");
  t_idct_ = handle_.taskId("idct");
  t_qrle_ = handle_.taskId("qrle");
  t_deq_ = handle_.taskId("deq");
}

EncodeApp::EncodeApp(EclipseInstance& inst, std::vector<media::Frame> frames,
                     const media::CodecParams& params, const EncodeAppConfig& cfg)
    : inst_(inst) {
  const int frame_count = static_cast<int>(frames.size());
  auto on_done = inst.registerApp();
  sink_ = &inst.createByteSink(std::move(on_done));

  // Software tasks on the DSP-CPU.
  source_ = std::make_unique<coproc::EncoderSource>(inst.cpu(), std::move(frames), params);
  vle_ = std::make_unique<coproc::VleTask>(inst.cpu());

  modes_.mode(modeSpec("encode", cfg));
  init(params, frame_count);
}

EncodeApp::EncodeApp(EclipseInstance& inst, std::vector<media::Frame> frames,
                     const media::CodecParams& params, std::vector<Mode> modes)
    : inst_(inst) {
  if (modes.empty()) throw GraphSpecError("EncodeApp: empty mode list");
  const int frame_count = static_cast<int>(frames.size());
  auto on_done = inst.registerApp();
  sink_ = &inst.createByteSink(std::move(on_done));

  source_ = std::make_unique<coproc::EncoderSource>(inst.cpu(), std::move(frames), params);
  vle_ = std::make_unique<coproc::VleTask>(inst.cpu());

  for (const Mode& m : modes) modes_.mode(modeSpec(m.first, m.second));
  modes_.validate(inst);
  // Apply order keeps the first listed mode first even if names differ.
  init(params, frame_count);
}

TransitionStats EncodeApp::switchMode(std::string_view mode_name) {
  return handle_.switchMode(modes_, mode_name);
}

bool EncodeApp::done() const { return sink_->done(); }

const std::vector<std::uint8_t>& EncodeApp::bitstream() const { return sink_->bytes(); }

}  // namespace eclipse::app
