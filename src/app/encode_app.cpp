#include "eclipse/app/encode_app.hpp"

namespace eclipse::app {

EncodeApp::EncodeApp(EclipseInstance& inst, std::vector<media::Frame> frames,
                     const media::CodecParams& params, const EncodeAppConfig& cfg)
    : inst_(inst) {
  const media::SeqHeader sh = params.toSeqHeader(static_cast<int>(frames.size()));

  auto on_done = inst.registerApp();
  sink_ = &inst.createByteSink(std::move(on_done));

  // Task slots: two tasks on each of DCT, RLSQ and MC/ME, two on the CPU.
  t_src_ = inst.allocTask(inst.cpuShell());
  t_vle_ = inst.allocTask(inst.cpuShell());
  t_me_ = inst.allocTask(inst.mcShell());
  t_recon_ = inst.allocTask(inst.mcShell());
  t_fdct_ = inst.allocTask(inst.dctShell());
  t_idct_ = inst.allocTask(inst.dctShell());
  t_qrle_ = inst.allocTask(inst.rlsqShell());
  t_deq_ = inst.allocTask(inst.rlsqShell());
  t_sink_ = inst.allocTask(sink_->shell());

  // Shared off-chip reconstruction frame store for ME and RECON.
  const sim::Addr store = inst.allocDram(
      static_cast<std::size_t>(coproc::McCoproc::frameSlotBytes(sh)) * 3);
  coproc::McTaskConfig me_cfg;
  me_cfg.kind = coproc::McTaskKind::MotionEst;
  me_cfg.frame_store_base = store;
  inst.mc().configureTask(t_me_, me_cfg);
  coproc::McTaskConfig rec_cfg;
  rec_cfg.kind = coproc::McTaskKind::EncodeRecon;
  rec_cfg.frame_store_base = store;
  inst.mc().configureTask(t_recon_, rec_cfg);

  // Software tasks on the DSP-CPU.
  source_ = std::make_unique<coproc::EncoderSource>(inst.cpu(), std::move(frames), params);
  vle_ = std::make_unique<coproc::VleTask>(inst.cpu());
  inst.cpu().registerTask(t_src_, [this](sim::TaskId t, std::uint32_t info) {
    return source_->step(t, info);
  });
  inst.cpu().registerTask(t_vle_, [this](sim::TaskId t, std::uint32_t info) {
    return vle_->step(t, info);
  });

  using EP = EclipseInstance::Endpoint;
  auto& cpu_sh = inst.cpuShell();
  auto& mc_sh = inst.mcShell();
  auto& dct_sh = inst.dctShell();
  auto& rlsq_sh = inst.rlsqShell();

  // Forward path.
  inst.connectStream(EP{&cpu_sh, t_src_, coproc::EncoderSource::kOut},
                     EP{&mc_sh, t_me_, coproc::McCoproc::kInCur}, cfg.cur_buffer);
  inst.connectStream(EP{&mc_sh, t_me_, coproc::McCoproc::kOutRes},
                     EP{&dct_sh, t_fdct_, coproc::DctCoproc::kIn}, cfg.res_buffer);
  inst.connectStream(EP{&mc_sh, t_me_, coproc::McCoproc::kOutHdrVle},
                     EP{&cpu_sh, t_vle_, coproc::VleTask::kInHdr}, cfg.hdr_buffer);
  inst.connectStream(EP{&dct_sh, t_fdct_, coproc::DctCoproc::kOut},
                     EP{&rlsq_sh, t_qrle_, coproc::RlsqCoproc::kIn}, cfg.res_buffer);
  inst.connectStream(EP{&rlsq_sh, t_qrle_, coproc::RlsqCoproc::kOut},
                     EP{&cpu_sh, t_vle_, coproc::VleTask::kInCoef}, cfg.coef_buffer);
  inst.connectStream(EP{&cpu_sh, t_vle_, coproc::VleTask::kOut},
                     EP{&sink_->shell(), t_sink_, coproc::ByteSink::kIn}, cfg.chunk_buffer);

  // Embedded-decoder reconstruction loop.
  inst.connectStream(EP{&mc_sh, t_me_, coproc::McCoproc::kOutHdrRec},
                     EP{&mc_sh, t_recon_, coproc::McCoproc::kInHdr}, cfg.hdr_buffer);
  inst.connectStream(EP{&rlsq_sh, t_qrle_, coproc::RlsqCoproc::kOutRecon},
                     EP{&rlsq_sh, t_deq_, coproc::RlsqCoproc::kIn}, cfg.coef_buffer);
  inst.connectStream(EP{&rlsq_sh, t_deq_, coproc::RlsqCoproc::kOut},
                     EP{&dct_sh, t_idct_, coproc::DctCoproc::kIn}, cfg.res_buffer);
  inst.connectStream(EP{&dct_sh, t_idct_, coproc::DctCoproc::kOut},
                     EP{&mc_sh, t_recon_, coproc::McCoproc::kInRes}, cfg.res_buffer);
  inst.connectStream(EP{&mc_sh, t_recon_, coproc::McCoproc::kOutToken},
                     EP{&cpu_sh, t_src_, coproc::EncoderSource::kInToken}, cfg.token_buffer);

  // Task-table entries: direction bits select the shared hardware's mode.
  const shell::TaskConfig tc{true, cfg.budget_cycles, 0};
  cpu_sh.configureTask(t_src_, tc);
  cpu_sh.configureTask(t_vle_, tc);
  mc_sh.configureTask(t_me_, tc);
  mc_sh.configureTask(t_recon_, tc);
  dct_sh.configureTask(t_fdct_, shell::TaskConfig{true, cfg.budget_cycles, coproc::kDctInfoForward});
  dct_sh.configureTask(t_idct_, tc);
  rlsq_sh.configureTask(t_qrle_, shell::TaskConfig{true, cfg.budget_cycles, coproc::kRlsqInfoEncode});
  rlsq_sh.configureTask(t_deq_, tc);
  sink_->shell().configureTask(t_sink_, tc);
}

bool EncodeApp::done() const { return sink_->done(); }

const std::vector<std::uint8_t>& EncodeApp::bitstream() const { return sink_->bytes(); }

}  // namespace eclipse::app
