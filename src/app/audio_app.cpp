#include "eclipse/app/audio_app.hpp"

#include <cstring>
#include <stdexcept>

#include "eclipse/coproc/limits.hpp"
#include "eclipse/coproc/packet_io.hpp"
#include "eclipse/media/packets.hpp"

namespace eclipse::app {

namespace {

using coproc::packet_io::frameBytes;
using coproc::withCtl;

std::uint32_t getU32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  std::memcpy(&v, in.data() + at, 4);
  return v;
}

}  // namespace

struct AudioDecodeApp::FeederState {
  sim::Addr dram_addr = 0;
  std::size_t stream_bytes = 0;
  std::uint32_t block_samples = 0;
  std::uint32_t total_samples = 0;
  std::size_t pos = 16;  // past the stream header
  std::uint32_t samples_fed = 0;
  bool eos_sent = false;
  std::vector<std::uint8_t> pkt;  // reusable coded-block packet buffer
};

struct AudioDecodeApp::DecoderState {
  std::uint32_t block_samples = 0;
  sim::Cycle cycles_per_sample = 6;
  bool done = false;
  std::vector<std::int16_t> samples;  // reusable decode buffer
  std::vector<std::uint8_t> out;      // reusable PCM packet buffer
};

// Feeder: one coded block per processing step, fetched from off-chip. The
// same step serves both topologies — port 0 leads to the decoder in play
// mode and straight to the sink in bypass mode.
coproc::SoftCpu::StepHandler AudioDecodeApp::feederStep() const {
  return [this, block_frame = block_frame_](sim::TaskId task,
                                            std::uint32_t) -> sim::Task<void> {
    auto& sh = inst_.cpuShell();
    auto& st = *feeder_;
    if (st.eos_sent) {
      inst_.cpu().finish(task);
      co_return;
    }
    if (!co_await sh.getSpace(task, 0, withCtl(block_frame))) co_return;
    if (st.samples_fed >= st.total_samples) {
      co_await coproc::packet_io::write(sh, task, 0, media::packTag(media::PacketTag::Eos),
                                        /*wait=*/false);
      st.eos_sent = true;
      inst_.cpu().finish(task);
      co_return;
    }
    const std::size_t bb = media::audio::blockBytes(st.block_samples);
    if (st.pos + bb > st.stream_bytes) {
      throw std::runtime_error("AudioDecodeApp: truncated audio stream");
    }
    st.pkt.resize(1 + bb);
    st.pkt[0] = static_cast<std::uint8_t>(media::PacketTag::Mb);
    co_await inst_.dram().read(st.dram_addr + st.pos,
                               std::span<std::uint8_t>(st.pkt).subspan(1),
                               static_cast<int>(sh.id()));
    st.pos += bb;
    st.samples_fed += st.block_samples;
    co_await coproc::packet_io::write(sh, task, 0, st.pkt, /*wait=*/false);
  };
}

// Decoder: one block per processing step.
coproc::SoftCpu::StepHandler AudioDecodeApp::decoderStep() const {
  return [this, pcm_frame = pcm_frame_](sim::TaskId task, std::uint32_t) -> sim::Task<void> {
    auto& sh = inst_.cpuShell();
    auto& st = *decoder_;
    if (!co_await sh.getSpace(task, 1, withCtl(pcm_frame))) co_return;
    const coproc::packet_io::Packet p = co_await coproc::packet_io::tryReadView(sh, task, 0);
    if (p.status == coproc::packet_io::ReadStatus::Blocked) co_return;
    if (coproc::packet_io::tagOf(p.bytes) == media::PacketTag::Eos) {
      co_await coproc::packet_io::write(sh, task, 1, media::packTag(media::PacketTag::Eos),
                                        /*wait=*/false);
      st.done = true;
      inst_.cpu().finish(task);
      co_return;
    }
    // Decode straight out of the committed view (fully consumed before
    // the delay suspension below). decodeBlock appends, so reset first.
    st.samples.clear();
    media::audio::decodeBlock(coproc::packet_io::payloadOf(p.bytes), st.block_samples,
                              st.samples);
    co_await inst_.simulator().delay(static_cast<sim::Cycle>(st.samples.size()) *
                                     st.cycles_per_sample);
    st.out.resize(1 + st.samples.size() * 2);
    st.out[0] = static_cast<std::uint8_t>(media::PacketTag::Mb);
    std::memcpy(st.out.data() + 1, st.samples.data(), st.samples.size() * 2);
    co_await coproc::packet_io::write(sh, task, 1, st.out, /*wait=*/false);
  };
}

GraphSpec AudioDecodeApp::modeSpec(const std::string& name, const AudioAppConfig& cfg) const {
  GraphSpec g(name);
  g.task({.name = "feeder",
          .shell = "dsp-cpu",
          .budget_cycles = cfg.budget_cycles,
          .enabled = cfg.feeder_enabled,
          .source = true,
          .software = feederStep()});
  if (cfg.bypass) {
    g.task({.name = "sink",
            .shell = sink_->shell().name(),
            .budget_cycles = cfg.budget_cycles,
            .software = {}});
    g.stream("raw", "feeder", 0, "sink", coproc::ByteSink::kIn, cfg.block_buffer);
    return g;
  }
  g.task({.name = "decoder",
          .shell = "dsp-cpu",
          .budget_cycles = cfg.budget_cycles,
          .software = decoderStep()})
      .task({.name = "sink",
             .shell = sink_->shell().name(),
             .budget_cycles = cfg.budget_cycles,
             .software = {}});
  g.stream("blocks", "feeder", 0, "decoder", 0, cfg.block_buffer)
      .stream("pcm", "decoder", 1, "sink", coproc::ByteSink::kIn, cfg.pcm_buffer);
  return g;
}

void AudioDecodeApp::initStreams(std::vector<std::uint8_t>& coded_stream) {
  if (coded_stream.size() < 16 || getU32(coded_stream, 0) != media::audio::kAudioMagic) {
    throw std::invalid_argument("AudioDecodeApp: not an audio elementary stream");
  }
  const std::uint32_t block_samples = getU32(coded_stream, 8);
  total_samples_ = getU32(coded_stream, 12);

  auto on_done = inst_.registerApp();
  sink_ = &inst_.createByteSink(std::move(on_done));

  // The coded stream lives off-chip, like the video elementary streams.
  const sim::Addr addr = inst_.allocDram(coded_stream.size());
  inst_.dram().storage().write(addr, coded_stream);

  feeder_ = std::make_shared<FeederState>();
  feeder_->dram_addr = addr;
  feeder_->stream_bytes = coded_stream.size();
  feeder_->block_samples = block_samples;
  feeder_->total_samples = total_samples_;

  block_frame_ =
      frameBytes(1 + static_cast<std::uint32_t>(media::audio::blockBytes(block_samples)));
  pcm_frame_ = frameBytes(1 + block_samples * 2);
}

void AudioDecodeApp::cacheTaskIds() {
  t_feeder_ = handle_.taskId("feeder");
  t_decoder_ = 0;
  for (const AppTask& t : handle_.tasks()) {
    if (t.spec.name == "decoder") t_decoder_ = t.id;
  }
}

AudioDecodeApp::AudioDecodeApp(EclipseInstance& inst, std::vector<std::uint8_t> coded_stream,
                               const AudioAppConfig& cfg)
    : inst_(inst) {
  initStreams(coded_stream);
  decoder_ = std::make_shared<DecoderState>();
  decoder_->block_samples = feeder_->block_samples;
  decoder_->cycles_per_sample = cfg.cycles_per_sample;

  modes_.mode(modeSpec("audio", cfg));
  Configurator configurator(inst);
  handle_ = configurator.apply(modes_.modes().front());
  handle_.adoptDram(feeder_->dram_addr, feeder_->stream_bytes);
  handle_.addCleanup([this] {
    if (!sink_->done()) inst_.deregisterApp();
  });
  cacheTaskIds();
}

AudioDecodeApp::AudioDecodeApp(EclipseInstance& inst, std::vector<std::uint8_t> coded_stream,
                               std::vector<Mode> modes)
    : inst_(inst) {
  if (modes.empty()) throw GraphSpecError("AudioDecodeApp: empty mode list");
  initStreams(coded_stream);
  decoder_ = std::make_shared<DecoderState>();
  decoder_->block_samples = feeder_->block_samples;
  decoder_->cycles_per_sample = modes.front().second.cycles_per_sample;

  for (const Mode& m : modes) modes_.mode(modeSpec(m.first, m.second));
  modes_.validate(inst);
  Configurator configurator(inst);
  handle_ = configurator.apply(modes_.at(modes.front().first));
  handle_.adoptDram(feeder_->dram_addr, feeder_->stream_bytes);
  handle_.addCleanup([this] {
    if (!sink_->done()) inst_.deregisterApp();
  });
  cacheTaskIds();
}

TransitionStats AudioDecodeApp::switchMode(std::string_view mode_name) {
  const TransitionStats st = handle_.switchMode(modes_, mode_name);
  cacheTaskIds();
  return st;
}

bool AudioDecodeApp::done() const { return sink_->done(); }

std::vector<std::int16_t> AudioDecodeApp::pcm() const {
  const auto& bytes = sink_->bytes();
  std::vector<std::int16_t> out(bytes.size() / 2);
  std::memcpy(out.data(), bytes.data(), out.size() * 2);
  out.resize(total_samples_);
  return out;
}

const std::vector<std::uint8_t>& AudioDecodeApp::sinkBytes() const { return sink_->bytes(); }

}  // namespace eclipse::app
