#include "eclipse/app/partition.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "eclipse/app/graph_spec.hpp"

namespace eclipse::app {

std::uint32_t ShardAssignment::lanesUsed() const {
  std::set<sim::ShardId> used;
  for (const auto& [name, lane] : shell_shard) used.insert(lane);
  return used.empty() ? 1 : static_cast<std::uint32_t>(used.size());
}

ShardAssignment computePartition(const std::vector<std::string>& shells, const ShardPlan& plan,
                                 sim::Cycle message_latency) {
  ShardAssignment asg;
  asg.shards = plan.shards == 0 ? 1 : plan.shards;
  if (asg.shards == 1) {
    for (const auto& name : shells) asg.shell_shard[name] = 0;
    asg.rule = "serial (1 shard)";
    return asg;
  }

  if (!plan.split_memory_hub) {
    // Fusion rule: every shell on this instance streams through the shared
    // SRAM, whose FIFO bus arbitration is a zero-lookahead coupling. All of
    // them fuse onto the hub lane; bit-identity with the serial oracle is
    // structural (one populated lane executes in serial event order).
    for (const auto& name : shells) {
      auto it = plan.pin.find(name);
      if (it != plan.pin.end() && it->second != asg.hub) {
        throw std::logic_error(
            "ShardPlan: pin of '" + name + "' to lane " + std::to_string(it->second) +
            " conflicts with the memory-hub fusion rule; set split_memory_hub "
            "(bus-silent scenarios only) to distribute shells");
      }
      asg.shell_shard[name] = asg.hub;
    }
    asg.rule = "fused: all shells share the SRAM/system buses (zero-lookahead "
               "FIFO arbitration); single populated lane = serial event order";
    return asg;
  }

  // Split mode: honor pins, then greedy least-loaded bin-pack of the rest,
  // heaviest first. Deterministic: weights tie-break by shell name, lane
  // ties by lowest id.
  std::vector<std::uint64_t> lane_load(asg.shards, 0);
  std::vector<std::string> unpinned;
  for (const auto& name : shells) {
    auto it = plan.pin.find(name);
    if (it != plan.pin.end()) {
      if (it->second >= asg.shards) {
        throw std::logic_error("ShardPlan: pin of '" + name + "' targets lane " +
                               std::to_string(it->second) + " but the plan has " +
                               std::to_string(asg.shards) + " shards");
      }
      asg.shell_shard[name] = it->second;
      lane_load[it->second] += std::max<std::uint32_t>(1, [&] {
        auto h = plan.load_hint.find(name);
        return h == plan.load_hint.end() ? 1u : h->second;
      }());
    } else {
      unpinned.push_back(name);
    }
  }
  auto weightOf = [&](const std::string& name) -> std::uint32_t {
    auto h = plan.load_hint.find(name);
    return h == plan.load_hint.end() ? 1u : std::max<std::uint32_t>(1, h->second);
  };
  std::sort(unpinned.begin(), unpinned.end(), [&](const std::string& a, const std::string& b) {
    const std::uint32_t wa = weightOf(a);
    const std::uint32_t wb = weightOf(b);
    return wa != wb ? wa > wb : a < b;
  });
  for (const auto& name : unpinned) {
    std::size_t best = 0;
    for (std::size_t l = 1; l < lane_load.size(); ++l) {
      if (lane_load[l] < lane_load[best]) best = l;
    }
    asg.shell_shard[name] = static_cast<sim::ShardId>(best);
    lane_load[best] += weightOf(name);
  }
  if (asg.lanesUsed() > 1) {
    // The putspace latency is the conservative lookahead for cross-lane
    // traffic. With a zero latency there is no legal window width: fail at
    // plan time with the reason, instead of letting the engine throw on the
    // first cross-lane putspace mid-run.
    if (message_latency == 0) {
      throw std::logic_error(
          "ShardPlan: split_memory_hub spread shells over " +
          std::to_string(asg.lanesUsed()) +
          " lanes but network.message_latency is 0; the putspace latency is the "
          "conservative cross-shard lookahead and must be >= 1 cycle (raise the "
          "latency, or pin every shell to one lane)");
    }
    asg.lookahead = message_latency;
  }
  asg.rule = "split memory hub (bus-silent): load-balanced bin-pack, lookahead = "
             "putspace latency " + std::to_string(message_latency);
  return asg;
}

std::map<std::string, std::uint32_t> graphLoadHints(const GraphSpec& spec) {
  std::map<std::string, std::uint32_t> hints;
  // A task's shell pays for its scheduling slot; every stream endpoint adds
  // transport work on the shell owning that port.
  std::map<std::string, std::string> task_shell;
  for (const auto& t : spec.tasks()) {
    task_shell[t.name] = t.shell;
    hints[t.shell] += 4;
  }
  for (const auto& s : spec.streams()) {
    auto p = task_shell.find(s.producer.task);
    if (p != task_shell.end()) hints[p->second] += 1;
    auto c = task_shell.find(s.consumer.task);
    if (c != task_shell.end()) hints[c->second] += 1;
  }
  return hints;
}

ShardPlan planForGraphs(std::uint32_t shards, const std::vector<const GraphSpec*>& graphs) {
  ShardPlan plan;
  plan.shards = shards;
  for (const GraphSpec* g : graphs) {
    if (g == nullptr) continue;
    for (const auto& [shell, w] : graphLoadHints(*g)) plan.load_hint[shell] += w;
  }
  return plan;
}

}  // namespace eclipse::app
