#include "eclipse/app/decode_app.hpp"

#include "eclipse/media/bitstream.hpp"
#include "eclipse/media/codec.hpp"

namespace eclipse::app {

DecodeApp::DecodeApp(EclipseInstance& inst, std::vector<std::uint8_t> bitstream,
                     const DecodeAppConfig& cfg)
    : inst_(inst) {
  // Peek at the sequence header to size the off-chip frame store.
  media::BitReader br(bitstream);
  const media::SeqHeader sh = media::stages::parseSeqHeader(br);

  auto on_done = inst.registerApp();
  sink_ = &inst.createFrameSink(std::move(on_done));

  // Task slots on each coprocessor.
  t_vld_ = inst.allocTask(inst.vldShell());
  t_rlsq_ = inst.allocTask(inst.rlsqShell());
  t_dct_ = inst.allocTask(inst.dctShell());
  t_mc_ = inst.allocTask(inst.mcShell());
  t_sink_ = inst.allocTask(sink_->shell());

  // Off-chip resources: the compressed stream and a 3-slot frame store.
  const sim::Addr bs_addr = inst.allocDram(bitstream.size());
  inst.dram().storage().write(bs_addr, bitstream);
  const sim::Addr store = inst.allocDram(
      static_cast<std::size_t>(coproc::McCoproc::frameSlotBytes(sh)) * 3);

  coproc::VldTaskConfig vc;
  vc.bitstream_addr = bs_addr;
  vc.bitstream_bytes = static_cast<std::uint32_t>(bitstream.size());
  inst.vld().configureTask(t_vld_, vc);

  coproc::McTaskConfig mcc;
  mcc.kind = coproc::McTaskKind::DecodeRecon;
  mcc.frame_store_base = store;
  mcc.frame_store_slots = 3;
  inst.mc().configureTask(t_mc_, mcc);

  // Stream FIFOs in on-chip SRAM (Figure 3).
  using EP = EclipseInstance::Endpoint;
  s_coef_ = inst.connectStream(EP{&inst.vldShell(), t_vld_, coproc::VldCoproc::kOutCoef},
                               EP{&inst.rlsqShell(), t_rlsq_, coproc::RlsqCoproc::kIn},
                               cfg.coef_buffer);
  s_hdr_ = inst.connectStream(EP{&inst.vldShell(), t_vld_, coproc::VldCoproc::kOutHdr},
                              EP{&inst.mcShell(), t_mc_, coproc::McCoproc::kInHdr},
                              cfg.hdr_buffer);
  s_blocks_ = inst.connectStream(EP{&inst.rlsqShell(), t_rlsq_, coproc::RlsqCoproc::kOut},
                                 EP{&inst.dctShell(), t_dct_, coproc::DctCoproc::kIn},
                                 cfg.blocks_buffer);
  s_res_ = inst.connectStream(EP{&inst.dctShell(), t_dct_, coproc::DctCoproc::kOut},
                              EP{&inst.mcShell(), t_mc_, coproc::McCoproc::kInRes},
                              cfg.res_buffer);
  s_pix_ = inst.connectStream(EP{&inst.mcShell(), t_mc_, coproc::McCoproc::kOutPix},
                              EP{&sink_->shell(), t_sink_, coproc::FrameSink::kIn},
                              cfg.pix_buffer);

  // Task-table entries: budgets and parameter words (Section 5.3).
  const shell::TaskConfig tc{true, cfg.budget_cycles, 0};
  inst.vldShell().configureTask(t_vld_, shell::TaskConfig{cfg.vld_enabled, cfg.budget_cycles, 0});
  inst.rlsqShell().configureTask(t_rlsq_, tc);  // info 0 = decode direction
  inst.dctShell().configureTask(t_dct_, tc);    // info 0 = inverse DCT
  inst.mcShell().configureTask(t_mc_, tc);
  sink_->shell().configureTask(t_sink_, tc);
}

bool DecodeApp::done() const { return sink_->done(); }

std::vector<media::Frame> DecodeApp::frames() const { return sink_->framesInDisplayOrder(); }

std::uint64_t DecodeApp::macroblocksDecoded() const { return sink_->macroblocksReceived(); }

}  // namespace eclipse::app
