#include "eclipse/app/decode_app.hpp"

#include <stdexcept>

#include "eclipse/media/bitstream.hpp"
#include "eclipse/media/codec.hpp"

namespace eclipse::app {

namespace {

EclipseInstance::StreamHandle toStreamHandle(const AppStream& s) {
  return EclipseInstance::StreamHandle{s.producer_shell, s.producer_row, s.consumer_shell,
                                       s.consumer_row,   s.buffer_base,  s.spec.buffer_bytes};
}

}  // namespace

GraphSpec DecodeApp::spec(const DecodeAppConfig& cfg, const std::string& sink_shell,
                          const std::string& name) {
  GraphSpec g(name);
  g.task({.name = "vld",
          .shell = "vld",
          .budget_cycles = cfg.budget_cycles,
          .enabled = cfg.vld_enabled,
          .source = true, .software = {}})
      .task({.name = "rlsq", .shell = "rlsq", .budget_cycles = cfg.budget_cycles, .software = {}})
      .task({.name = "idct", .shell = "dct", .budget_cycles = cfg.budget_cycles, .software = {}})
      .task({.name = "mc", .shell = "mc", .budget_cycles = cfg.budget_cycles, .software = {}})
      .task({.name = "sink", .shell = sink_shell, .budget_cycles = cfg.budget_cycles, .software = {}});
  // Stream FIFOs in on-chip SRAM (Figure 3).
  g.stream("coef", "vld", coproc::VldCoproc::kOutCoef, "rlsq", coproc::RlsqCoproc::kIn,
           cfg.coef_buffer)
      .stream("hdr", "vld", coproc::VldCoproc::kOutHdr, "mc", coproc::McCoproc::kInHdr,
              cfg.hdr_buffer)
      .stream("blocks", "rlsq", coproc::RlsqCoproc::kOut, "idct", coproc::DctCoproc::kIn,
              cfg.blocks_buffer)
      .stream("res", "idct", coproc::DctCoproc::kOut, "mc", coproc::McCoproc::kInRes,
              cfg.res_buffer)
      .stream("pix", "mc", coproc::McCoproc::kOutPix, "sink", coproc::FrameSink::kIn,
              cfg.pix_buffer);
  return g;
}

ModeSet DecodeApp::modeSet(const std::vector<Mode>& modes, const std::string& sink_shell) {
  ModeSet set("decode-modes");
  for (const Mode& m : modes) set.mode(spec(m.second, sink_shell, m.first));
  return set;
}

std::function<void(AppHandle&)> DecodeApp::stageBitstream(std::vector<std::uint8_t> bitstream) {
  // Peek at the sequence header to size the off-chip frame store.
  media::BitReader br(bitstream);
  const media::SeqHeader sh = media::stages::parseSeqHeader(br);

  // Off-chip resources: the compressed stream and a 3-slot frame store.
  const sim::Addr bs_addr = inst_.allocDram(bitstream.size());
  inst_.dram().storage().write(bs_addr, bitstream);
  const std::size_t bs_bytes = bitstream.size();
  const std::size_t store_bytes =
      static_cast<std::size_t>(coproc::McCoproc::frameSlotBytes(sh)) * 3;
  const sim::Addr store = inst_.allocDram(store_bytes);

  return [this, bs_addr, bs_bytes, store, store_bytes](AppHandle& h) {
    coproc::VldTaskConfig vc;
    vc.bitstream_addr = bs_addr;
    vc.bitstream_bytes = static_cast<std::uint32_t>(bs_bytes);
    inst_.vld().configureTask(h.taskId("vld"), vc);

    coproc::McTaskConfig mcc;
    mcc.kind = coproc::McTaskKind::DecodeRecon;
    mcc.frame_store_base = store;
    mcc.frame_store_slots = 3;
    inst_.mc().configureTask(h.taskId("mc"), mcc);

    h.adoptDram(bs_addr, bs_bytes);
    h.adoptDram(store, store_bytes);
  };
}

void DecodeApp::cacheHandles() {
  t_vld_ = handle_.taskId("vld");
  t_rlsq_ = handle_.taskId("rlsq");
  t_dct_ = handle_.taskId("idct");
  t_mc_ = handle_.taskId("mc");
  s_coef_ = toStreamHandle(handle_.stream("coef"));
  s_hdr_ = toStreamHandle(handle_.stream("hdr"));
  s_blocks_ = toStreamHandle(handle_.stream("blocks"));
  s_res_ = toStreamHandle(handle_.stream("res"));
  s_pix_ = toStreamHandle(handle_.stream("pix"));
}

DecodeApp::DecodeApp(EclipseInstance& inst, std::vector<std::uint8_t> bitstream,
                     const DecodeAppConfig& cfg)
    : inst_(inst) {
  auto on_done = inst.registerApp();
  sink_ = &inst.createFrameSink(std::move(on_done));
  modes_.mode(spec(cfg, sink_->shell().name()));

  Configurator configurator(inst);
  handle_ = configurator.apply(modes_.modes().front(), stageBitstream(std::move(bitstream)));
  handle_.addCleanup([this] {
    if (!sink_->done()) inst_.deregisterApp();
  });
  cacheHandles();
}

DecodeApp::DecodeApp(EclipseInstance& inst, std::vector<std::uint8_t> bitstream,
                     std::vector<Mode> modes)
    : inst_(inst) {
  if (modes.empty()) throw GraphSpecError("DecodeApp: empty mode list");
  auto on_done = inst.registerApp();
  sink_ = &inst.createFrameSink(std::move(on_done));
  modes_ = modeSet(modes, sink_->shell().name());
  modes_.validate(inst);

  Configurator configurator(inst);
  handle_ = configurator.apply(modes_.at(modes.front().first),
                               stageBitstream(std::move(bitstream)));
  handle_.addCleanup([this] {
    if (!sink_->done()) inst_.deregisterApp();
  });
  cacheHandles();
}

TransitionStats DecodeApp::switchMode(std::string_view mode_name) {
  TransitionStats st = handle_.switchMode(modes_, mode_name);
  cacheHandles();
  return st;
}

TransitionStats DecodeApp::switchSegment(std::string_view mode_name,
                                         std::vector<std::uint8_t> bitstream) {
  if (!sink_->done()) {
    throw std::logic_error("DecodeApp::switchSegment: current segment not finished");
  }
  sink_->rearm(inst_.registerApp());
  TransitionStats st = handle_.switchTo(modes_.at(mode_name), stageBitstream(std::move(bitstream)));
  // Every task parked itself at the previous segment's Eos (self-disable on
  // finishTask); the enable refresh below restarts the pipeline on the new
  // bitstream. Count the writes into the transition's cost.
  const std::uint64_t w0 = inst_.piBus().writeCount();
  handle_.resume();
  st.mmio_writes += inst_.piBus().writeCount() - w0;
  cacheHandles();
  return st;
}

void DecodeApp::enableRecovery() {
  handle_.onFault([this](const TaskFault& f) {
    ++recoveries_;
    if (f.task == "vld") {
      // The source itself is unparseable: emit Eos downstream so the clip
      // terminates cleanly with whatever was decoded.
      inst_.vld().requestAbort(t_vld_);
      handle_.clearFault("vld", /*reenable=*/true);
      return;
    }
    // A downstream stage choked (typically on a corrupted packet it
    // already consumed). Send Resync markers from the VLD, put the
    // stateless stages into discard-until-marker mode, and re-enable the
    // faulted task; the VLD parses forward to the next I-frame.
    inst_.vld().requestResync(t_vld_);
    inst_.rlsq().requestDiscard(t_rlsq_);
    inst_.dct().requestDiscard(t_dct_);
    handle_.clearFault(f.task, /*reenable=*/true);
  });
}

void DecodeApp::enableDegradedFallback(std::string degraded_mode) {
  modes_.at(degraded_mode);  // fail fast on an unknown mode
  degraded_mode_ = std::move(degraded_mode);
  handle_.onFault([this](const TaskFault& f) {
    ++recoveries_;
    if (f.task == "vld") {
      inst_.vld().requestAbort(t_vld_);
      handle_.clearFault("vld", /*reenable=*/true);
    } else {
      inst_.vld().requestResync(t_vld_);
      inst_.rlsq().requestDiscard(t_rlsq_);
      inst_.dct().requestDiscard(t_dct_);
      handle_.clearFault(f.task, /*reenable=*/true);
    }
    // First contained fault drops the clip into the degraded mode: a
    // field-only transition (same topology, reduced budgets), so it runs
    // to completion inside this callback without advancing the simulation.
    if (!degraded_ && handle_.currentMode() != degraded_mode_) {
      degraded_ = true;
      handle_.switchMode(modes_, degraded_mode_);
      cacheHandles();
    }
  });
}

std::uint64_t DecodeApp::framesDropped() const { return sink_->framesDropped(); }

std::size_t DecodeApp::segmentsCompleted() const { return sink_->segmentsCompleted(); }

std::vector<media::Frame> DecodeApp::segmentFrames(std::size_t i) const {
  return sink_->segmentFrames(i);
}

bool DecodeApp::done() const { return sink_->done(); }

std::vector<media::Frame> DecodeApp::frames() const { return sink_->framesInDisplayOrder(); }

std::uint64_t DecodeApp::macroblocksDecoded() const { return sink_->macroblocksReceived(); }

}  // namespace eclipse::app
