#include "eclipse/app/decode_app.hpp"

#include "eclipse/media/bitstream.hpp"
#include "eclipse/media/codec.hpp"

namespace eclipse::app {

namespace {

EclipseInstance::StreamHandle toStreamHandle(const AppStream& s) {
  return EclipseInstance::StreamHandle{s.producer_shell, s.producer_row, s.consumer_shell,
                                       s.consumer_row,   s.buffer_base,  s.spec.buffer_bytes};
}

}  // namespace

GraphSpec DecodeApp::spec(const DecodeAppConfig& cfg, const std::string& sink_shell) {
  GraphSpec g("decode");
  g.task({.name = "vld",
          .shell = "vld",
          .budget_cycles = cfg.budget_cycles,
          .enabled = cfg.vld_enabled,
          .source = true, .software = {}})
      .task({.name = "rlsq", .shell = "rlsq", .budget_cycles = cfg.budget_cycles, .software = {}})
      .task({.name = "idct", .shell = "dct", .budget_cycles = cfg.budget_cycles, .software = {}})
      .task({.name = "mc", .shell = "mc", .budget_cycles = cfg.budget_cycles, .software = {}})
      .task({.name = "sink", .shell = sink_shell, .budget_cycles = cfg.budget_cycles, .software = {}});
  // Stream FIFOs in on-chip SRAM (Figure 3).
  g.stream("coef", "vld", coproc::VldCoproc::kOutCoef, "rlsq", coproc::RlsqCoproc::kIn,
           cfg.coef_buffer)
      .stream("hdr", "vld", coproc::VldCoproc::kOutHdr, "mc", coproc::McCoproc::kInHdr,
              cfg.hdr_buffer)
      .stream("blocks", "rlsq", coproc::RlsqCoproc::kOut, "idct", coproc::DctCoproc::kIn,
              cfg.blocks_buffer)
      .stream("res", "idct", coproc::DctCoproc::kOut, "mc", coproc::McCoproc::kInRes,
              cfg.res_buffer)
      .stream("pix", "mc", coproc::McCoproc::kOutPix, "sink", coproc::FrameSink::kIn,
              cfg.pix_buffer);
  return g;
}

DecodeApp::DecodeApp(EclipseInstance& inst, std::vector<std::uint8_t> bitstream,
                     const DecodeAppConfig& cfg)
    : inst_(inst) {
  // Peek at the sequence header to size the off-chip frame store.
  media::BitReader br(bitstream);
  const media::SeqHeader sh = media::stages::parseSeqHeader(br);

  auto on_done = inst.registerApp();
  sink_ = &inst.createFrameSink(std::move(on_done));

  // Off-chip resources: the compressed stream and a 3-slot frame store.
  const sim::Addr bs_addr = inst.allocDram(bitstream.size());
  inst.dram().storage().write(bs_addr, bitstream);
  const std::size_t store_bytes =
      static_cast<std::size_t>(coproc::McCoproc::frameSlotBytes(sh)) * 3;
  const sim::Addr store = inst.allocDram(store_bytes);

  Configurator configurator(inst);
  handle_ = configurator.apply(
      spec(cfg, sink_->shell().name()), [&](AppHandle& h) {
        coproc::VldTaskConfig vc;
        vc.bitstream_addr = bs_addr;
        vc.bitstream_bytes = static_cast<std::uint32_t>(bitstream.size());
        inst.vld().configureTask(h.taskId("vld"), vc);

        coproc::McTaskConfig mcc;
        mcc.kind = coproc::McTaskKind::DecodeRecon;
        mcc.frame_store_base = store;
        mcc.frame_store_slots = 3;
        inst.mc().configureTask(h.taskId("mc"), mcc);
      });
  handle_.adoptDram(bs_addr, bitstream.size());
  handle_.adoptDram(store, store_bytes);
  handle_.addCleanup([this] {
    if (!sink_->done()) inst_.deregisterApp();
  });

  t_vld_ = handle_.taskId("vld");
  t_rlsq_ = handle_.taskId("rlsq");
  t_dct_ = handle_.taskId("idct");
  t_mc_ = handle_.taskId("mc");
  s_coef_ = toStreamHandle(handle_.stream("coef"));
  s_hdr_ = toStreamHandle(handle_.stream("hdr"));
  s_blocks_ = toStreamHandle(handle_.stream("blocks"));
  s_res_ = toStreamHandle(handle_.stream("res"));
  s_pix_ = toStreamHandle(handle_.stream("pix"));
}

void DecodeApp::enableRecovery() {
  handle_.onFault([this](const TaskFault& f) {
    ++recoveries_;
    if (f.task == "vld") {
      // The source itself is unparseable: emit Eos downstream so the clip
      // terminates cleanly with whatever was decoded.
      inst_.vld().requestAbort(t_vld_);
      handle_.clearFault("vld", /*reenable=*/true);
      return;
    }
    // A downstream stage choked (typically on a corrupted packet it
    // already consumed). Send Resync markers from the VLD, put the
    // stateless stages into discard-until-marker mode, and re-enable the
    // faulted task; the VLD parses forward to the next I-frame.
    inst_.vld().requestResync(t_vld_);
    inst_.rlsq().requestDiscard(t_rlsq_);
    inst_.dct().requestDiscard(t_dct_);
    handle_.clearFault(f.task, /*reenable=*/true);
  });
}

std::uint64_t DecodeApp::framesDropped() const { return sink_->framesDropped(); }

bool DecodeApp::done() const { return sink_->done(); }

std::vector<media::Frame> DecodeApp::frames() const { return sink_->framesInDisplayOrder(); }

std::uint64_t DecodeApp::macroblocksDecoded() const { return sink_->macroblocksReceived(); }

}  // namespace eclipse::app
