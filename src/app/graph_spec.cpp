#include "eclipse/app/graph_spec.hpp"

#include <map>
#include <set>
#include <utility>

#include "eclipse/app/instance.hpp"

namespace eclipse::app {

const TaskSpec* GraphSpec::findTask(std::string_view task_name) const {
  for (const TaskSpec& t : tasks_) {
    if (t.name == task_name) return &t;
  }
  return nullptr;
}

void GraphSpec::validateStructure() const {
  auto fail = [this](const std::string& msg) {
    throw GraphSpecError("GraphSpec '" + name_ + "': " + msg);
  };

  if (tasks_.empty()) fail("graph has no tasks");

  std::set<std::string> task_names;
  for (const TaskSpec& t : tasks_) {
    if (t.name.empty()) fail("task with empty name");
    if (!task_names.insert(t.name).second) fail("duplicate task name '" + t.name + "'");
  }

  std::set<std::string> stream_names;
  // Endpoint uniqueness: the shell resolves (task, port) without a
  // direction, so a port id may appear in at most one stream endpoint per
  // task — in either role.
  std::set<std::pair<std::string, sim::PortId>> bound_ports;
  for (const StreamSpec& s : streams_) {
    if (s.name.empty()) fail("stream with empty name");
    if (!stream_names.insert(s.name).second) fail("duplicate stream name '" + s.name + "'");
    for (const PortRef* ep : {&s.producer, &s.consumer}) {
      if (task_names.count(ep->task) == 0) {
        fail("stream '" + s.name + "' references unknown task '" + ep->task +
             "' (dangling port)");
      }
      if (!bound_ports.insert({ep->task, ep->port}).second) {
        fail("port " + std::to_string(ep->port) + " of task '" + ep->task +
             "' is bound to more than one stream endpoint");
      }
    }
  }
}

void GraphSpec::validate(EclipseInstance& inst) const {
  auto fail = [this](const std::string& msg) {
    throw GraphSpecError("GraphSpec '" + name_ + "': " + msg);
  };

  validateStructure();

  // --- Capacity checks against the instance ---------------------------
  std::map<shell::Shell*, std::uint32_t> tasks_needed;
  std::map<std::string, shell::Shell*> task_shell;
  for (const TaskSpec& t : tasks_) {
    shell::Shell* sh = inst.findShell(t.shell);
    if (sh == nullptr) fail("task '" + t.name + "' names unknown shell '" + t.shell + "'");
    task_shell[t.name] = sh;
    ++tasks_needed[sh];
    const bool is_cpu = inst.softCpuAt(*sh) != nullptr;
    if (is_cpu && !t.software) {
      fail("task '" + t.name + "' runs on software shell '" + t.shell +
           "' but has no software step handler");
    }
    if (!is_cpu && t.software) {
      fail("task '" + t.name + "' binds a software step to hardware shell '" + t.shell + "'");
    }
  }
  for (const auto& [sh, needed] : tasks_needed) {
    const std::uint32_t free = inst.freeTaskSlots(*sh);
    if (needed > free) {
      fail("shell '" + sh->name() + "' has " + std::to_string(free) + " free task slots, " +
           std::to_string(needed) + " needed");
    }
  }

  std::map<shell::Shell*, std::uint32_t> rows_needed;
  std::size_t sram_needed = 0;
  const std::uint32_t line = inst.params().cache_line_bytes;
  for (const StreamSpec& s : streams_) {
    if (s.buffer_bytes == 0 || s.buffer_bytes % line != 0) {
      fail("stream '" + s.name + "' buffer of " + std::to_string(s.buffer_bytes) +
           " bytes is not a positive multiple of the " + std::to_string(line) +
           "-byte cache line");
    }
    sram_needed += s.buffer_bytes;
    ++rows_needed[task_shell.at(s.producer.task)];
    ++rows_needed[task_shell.at(s.consumer.task)];
  }
  for (const auto& [sh, needed] : rows_needed) {
    std::uint32_t free = 0;
    for (std::uint32_t i = 0; i < sh->streams().capacity(); ++i) {
      if (!sh->streams().row(i).valid) ++free;
    }
    if (needed > free) {
      fail("shell '" + sh->name() + "' has " + std::to_string(free) + " free stream rows, " +
           std::to_string(needed) + " needed");
    }
  }
  if (sram_needed > inst.sramBytesFree()) {
    fail("graph needs " + std::to_string(sram_needed) + " bytes of SRAM, " +
         std::to_string(inst.sramBytesFree()) + " free");
  }
}

}  // namespace eclipse::app
