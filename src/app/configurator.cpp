#include "eclipse/app/configurator.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

namespace eclipse::app {

namespace {

/// First stream-table row of `sh` whose valid bit reads back 0 over the
/// PI-bus — the same first-free-row policy the direct configureStream path
/// uses, so MMIO-configured graphs land in identical rows.
std::uint32_t findFreeStreamRow(mem::PiBus& bus, const shell::Shell& sh) {
  for (std::uint32_t row = 0; row < sh.params().max_streams; ++row) {
    if (bus.read(mmio::streamReg(sh, row, mmio::kStreamValid)) == 0) return row;
  }
  throw std::runtime_error("Configurator: no free stream row on shell '" + sh.name() + "'");
}

}  // namespace

// ---------------------------------------------------------------------
// AppHandle
// ---------------------------------------------------------------------

void AppHandle::requireLive() const {
  if (inst_ == nullptr) throw std::logic_error("AppHandle: empty handle");
  if (torn_down_) throw std::logic_error("AppHandle '" + name_ + "': already torn down");
}

sim::TaskId AppHandle::taskId(std::string_view task_name) const {
  for (const AppTask& t : tasks_) {
    if (t.spec.name == task_name) return t.id;
  }
  throw std::out_of_range("AppHandle '" + name_ + "': no task named '" +
                          std::string(task_name) + "'");
}

shell::Shell& AppHandle::taskShell(std::string_view task_name) const {
  for (const AppTask& t : tasks_) {
    if (t.spec.name == task_name) return *t.shell;
  }
  throw std::out_of_range("AppHandle '" + name_ + "': no task named '" +
                          std::string(task_name) + "'");
}

const AppStream& AppHandle::stream(std::string_view stream_name) const {
  for (const AppStream& s : streams_) {
    if (s.spec.name == stream_name) return s;
  }
  throw std::out_of_range("AppHandle '" + name_ + "': no stream named '" +
                          std::string(stream_name) + "'");
}

void AppHandle::setTaskEnabled(std::string_view task_name, bool enabled) {
  requireLive();
  for (const AppTask& t : tasks_) {
    if (t.spec.name == task_name) {
      inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), enabled ? 1 : 0);
      return;
    }
  }
  throw std::out_of_range("AppHandle '" + name_ + "': no task named '" +
                          std::string(task_name) + "'");
}

void AppHandle::pause() {
  requireLive();
  for (const AppTask& t : tasks_) {
    inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), 0);
  }
  paused_ = true;
}

void AppHandle::resume() {
  requireLive();
  for (const AppTask& t : tasks_) {
    if (t.spec.enabled) {
      inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), 1);
    }
  }
  paused_ = false;
}

AppHealth AppHandle::health() const {
  requireLive();
  AppHealth h;
  mem::PiBus& bus = inst_->piBus();
  for (const AppTask& t : tasks_) {
    if (bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaulted)) == 0) continue;
    TaskFault f;
    f.task = t.spec.name;
    f.shell = t.shell->name();
    f.id = t.id;
    f.cause = bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaultCause));
    f.cycle = static_cast<sim::Cycle>(
                  bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaultCycleLo))) |
              (static_cast<sim::Cycle>(
                   bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaultCycleHi)))
               << 32);
    f.row = static_cast<std::int32_t>(
        bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaultRow)));
    f.count = bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaultCount));
    h.faults.push_back(std::move(f));
  }
  for (const AppStream& s : streams_) {
    auto check = [&](const shell::Shell& sh, std::uint32_t row, bool producer_side) {
      if (bus.read(mmio::streamReg(sh, row, mmio::kStreamStalled)) == 0) return;
      StreamStall st;
      st.stream = s.spec.name;
      st.producer_side = producer_side;
      st.cycle = static_cast<sim::Cycle>(
                     bus.read(mmio::streamReg(sh, row, mmio::kStreamStallCycleLo))) |
                 (static_cast<sim::Cycle>(
                      bus.read(mmio::streamReg(sh, row, mmio::kStreamStallCycleHi)))
                  << 32);
      h.stalls.push_back(std::move(st));
    };
    check(*s.producer_shell, s.producer_row, true);
    check(*s.consumer_shell, s.consumer_row, false);
  }
  std::vector<const shell::Shell*> seen;
  for (const AppTask& t : tasks_) {
    if (std::find(seen.begin(), seen.end(), t.shell) != seen.end()) continue;
    seen.push_back(t.shell);
    h.late_sync_drops += bus.read(mmio::ctlReg(*t.shell, mmio::kCtlLateSyncDrops));
  }
  return h;
}

void AppHandle::onFault(std::function<void(const TaskFault&)> fn) {
  requireLive();
  // One shared copy of the callback; one observer per hosting shell. The
  // lambdas must not capture `this`: the handle is movable and the
  // observers outlive any particular address it lives at.
  auto shared = std::make_shared<std::function<void(const TaskFault&)>>(std::move(fn));
  std::vector<shell::Shell*> seen;
  for (const AppTask& t : tasks_) {
    if (std::find(seen.begin(), seen.end(), t.shell) != seen.end()) continue;
    seen.push_back(t.shell);
    shell::Shell* sh = t.shell;
    std::map<sim::TaskId, std::string> names;
    for (const AppTask& u : tasks_) {
      if (u.shell == sh) names[u.id] = u.spec.name;
    }
    const int id = sh->addFaultObserver(
        [names, shell_name = sh->name(), shared](sim::TaskId task, const shell::TaskRow& row) {
          const auto it = names.find(task);
          if (it == names.end()) return;  // another application's task on a shared shell
          TaskFault f;
          f.task = it->second;
          f.shell = shell_name;
          f.id = task;
          f.cause = static_cast<std::uint32_t>(row.fault_cause);
          f.cycle = row.fault_cycle;
          f.row = row.fault_row;
          f.count = row.fault_count;
          (*shared)(f);
        });
    fault_observers_.emplace_back(sh, id);
  }
}

void AppHandle::clearFault(std::string_view task_name, bool reenable) {
  requireLive();
  for (const AppTask& t : tasks_) {
    if (t.spec.name != task_name) continue;
    inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaulted), 0);
    if (reenable) {
      inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), 1);
    }
    return;
  }
  throw std::out_of_range("AppHandle '" + name_ + "': no task named '" +
                          std::string(task_name) + "'");
}

void AppHandle::repairStream(std::string_view stream_name) {
  requireLive();
  const AppStream& s = stream(stream_name);
  mem::PiBus& bus = inst_->piBus();
  auto pos64 = [&](const shell::Shell& sh, std::uint32_t row) {
    return static_cast<std::uint64_t>(bus.read(mmio::streamReg(sh, row, mmio::kStreamPosLo))) |
           (static_cast<std::uint64_t>(bus.read(mmio::streamReg(sh, row, mmio::kStreamPosHi)))
            << 32);
  };
  // Committed positions are the ground truth; the space registers are the
  // derived (and possibly corrupted/stale) view. in_flight counts bytes
  // written but not yet released by the consumer.
  const std::uint64_t in_flight =
      pos64(*s.producer_shell, s.producer_row) - pos64(*s.consumer_shell, s.consumer_row);
  bus.write(mmio::streamReg(*s.producer_shell, s.producer_row, mmio::kStreamSpace),
            static_cast<std::uint32_t>(s.spec.buffer_bytes - in_flight));
  bus.write(mmio::streamReg(*s.consumer_shell, s.consumer_row, mmio::kStreamSpace),
            static_cast<std::uint32_t>(in_flight));
  bus.write(mmio::streamReg(*s.producer_shell, s.producer_row, mmio::kStreamStalled), 0);
  bus.write(mmio::streamReg(*s.consumer_shell, s.consumer_row, mmio::kStreamStalled), 0);
}

bool AppHandle::quiesced() const {
  if (inst_ == nullptr || torn_down_) return true;
  for (const AppStream& s : streams_) {
    const std::uint32_t producer_room =
        inst_->piBus().read(mmio::streamReg(*s.producer_shell, s.producer_row, mmio::kStreamSpace));
    const std::uint32_t consumer_data =
        inst_->piBus().read(mmio::streamReg(*s.consumer_shell, s.consumer_row, mmio::kStreamSpace));
    // Empty and settled: the producer sees the whole buffer free again and
    // the consumer sees nothing to read (no putspace message in flight).
    if (producer_room != s.spec.buffer_bytes || consumer_data != 0) return false;
  }
  return true;
}

bool AppHandle::drain(sim::Cycle max_cycles, sim::Cycle slice) {
  requireLive();
  if (slice == 0) throw std::invalid_argument("AppHandle::drain: zero slice");
  // Stop injecting new data; the rest of the graph keeps running and
  // consumes whatever is still buffered in the FIFOs.
  for (const AppTask& t : tasks_) {
    if (t.spec.source) {
      inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), 0);
    }
  }
  const sim::Cycle deadline = inst_->simulator().now() + max_cycles;
  while (!quiesced()) {
    const sim::Cycle before = inst_->simulator().now();
    if (before >= deadline) return false;
    inst_->run(std::min(deadline, before + slice));
    if (inst_->simulator().now() == before) {
      // The event queue ran dry without advancing time: the state is
      // final, so one last check decides.
      return quiesced();
    }
  }
  return true;
}

void AppHandle::teardown() {
  if (inst_ == nullptr || torn_down_) return;
  for (const auto& [sh, id] : fault_observers_) sh->removeFaultObserver(id);
  fault_observers_.clear();
  mem::PiBus& bus = inst_->piBus();
  // Task rows first, so the schedulers stop selecting the tasks; clearing
  // the valid bit resets the row for the next application.
  for (const AppTask& t : tasks_) {
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), 0);
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskValid), 0);
    if (t.spec.software) {
      if (coproc::SoftCpu* cpu = inst_->softCpuAt(*t.shell)) cpu->unregisterTask(t.id);
    }
    inst_->freeTask(*t.shell, t.id);
  }
  // Stream rows next; clearing valid resets position/space state and
  // releases the port cache.
  for (const AppStream& s : streams_) {
    bus.write(mmio::streamReg(*s.producer_shell, s.producer_row, mmio::kStreamValid), 0);
    bus.write(mmio::streamReg(*s.consumer_shell, s.consumer_row, mmio::kStreamValid), 0);
    inst_->freeSram(s.buffer_base, s.spec.buffer_bytes);
  }
  for (const auto& [addr, bytes] : dram_regions_) inst_->freeDram(addr, bytes);
  dram_regions_.clear();
  for (const auto& fn : cleanups_) fn();
  cleanups_.clear();
  torn_down_ = true;
}

void AppHandle::adoptDram(sim::Addr addr, std::size_t bytes) {
  requireLive();
  dram_regions_.emplace_back(addr, bytes);
}

void AppHandle::addCleanup(std::function<void()> fn) {
  requireLive();
  cleanups_.push_back(std::move(fn));
}

// ---------------------------------------------------------------------
// Configurator
// ---------------------------------------------------------------------

AppHandle Configurator::apply(const GraphSpec& spec,
                              const std::function<void(AppHandle&)>& before_enable) {
  spec.validate(inst_);

  AppHandle handle;
  handle.inst_ = &inst_;
  handle.name_ = spec.name();
  mem::PiBus& bus = inst_.piBus();

  // Phase 1: allocate a task slot per task, in spec order (the legacy
  // hand-wired applications allocated in the same order, which keeps slot
  // ids — and therefore all downstream timing — identical).
  for (const TaskSpec& t : spec.tasks()) {
    shell::Shell& sh = inst_.shell(t.shell);
    const sim::TaskId id = inst_.allocTask(sh);
    if (t.software) inst_.softCpuAt(sh)->registerTask(id, t.software);
    handle.tasks_.push_back(AppTask{t, &sh, id});
  }

  // Phase 2: allocate each stream's FIFO and program both stream-table
  // rows over the PI-bus — fields first, valid bit last (the valid write
  // instantiates the port cache), then patch the producer's remote row id
  // once the consumer row is known. Streams are fully programmed before
  // any task is enabled, so a freshly scheduled task can never look up a
  // half-wired port.
  for (const StreamSpec& s : spec.streams()) {
    AppStream as;
    as.spec = s;
    as.producer_shell = &handle.taskShell(s.producer.task);
    as.consumer_shell = &handle.taskShell(s.consumer.task);
    as.buffer_base = inst_.allocSram(s.buffer_bytes);

    const shell::Shell& psh = *as.producer_shell;
    as.producer_row = findFreeStreamRow(bus, psh);
    bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamTask),
              static_cast<std::uint32_t>(handle.taskId(s.producer.task)));
    bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamPort),
              static_cast<std::uint32_t>(s.producer.port));
    bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamIsProducer), 1);
    bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamBase),
              static_cast<std::uint32_t>(as.buffer_base));
    bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamSize), s.buffer_bytes);
    bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamSpace), s.buffer_bytes);
    bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamRemoteShell),
              as.consumer_shell->id());
    bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamValid), 1);

    const shell::Shell& csh = *as.consumer_shell;
    as.consumer_row = findFreeStreamRow(bus, csh);
    bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamTask),
              static_cast<std::uint32_t>(handle.taskId(s.consumer.task)));
    bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamPort),
              static_cast<std::uint32_t>(s.consumer.port));
    bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamIsProducer), 0);
    bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamBase),
              static_cast<std::uint32_t>(as.buffer_base));
    bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamSize), s.buffer_bytes);
    bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamSpace), 0);
    bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamRemoteShell), psh.id());
    bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamRemoteRow), as.producer_row);
    bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamValid), 1);

    bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamRemoteRow), as.consumer_row);
    handle.streams_.push_back(as);
  }

  // Coprocessor-specific parameter setup (needs task ids, must precede the
  // first scheduling opportunity).
  if (before_enable) before_enable(handle);

  // Phase 3: make the task rows valid and enable them. The enable write is
  // last — it wakes the shell scheduler on an already-consistent graph.
  for (const AppTask& t : handle.tasks_) {
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskBudget), t.spec.budget_cycles);
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskInfo), t.spec.task_info);
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskValid), 1);
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), t.spec.enabled ? 1 : 0);
  }

  return handle;
}

}  // namespace eclipse::app
