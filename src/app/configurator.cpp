#include "eclipse/app/configurator.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>

namespace eclipse::app {

namespace {

/// First stream-table row of `sh` whose valid bit reads back 0 over the
/// PI-bus — the same first-free-row policy the direct configureStream path
/// uses, so MMIO-configured graphs land in identical rows.
std::uint32_t findFreeStreamRow(mem::PiBus& bus, const shell::Shell& sh) {
  for (std::uint32_t row = 0; row < sh.params().max_streams; ++row) {
    if (bus.read(mmio::streamReg(sh, row, mmio::kStreamValid)) == 0) return row;
  }
  throw std::runtime_error("Configurator: no free stream row on shell '" + sh.name() + "'");
}

}  // namespace

// ---------------------------------------------------------------------
// AppHandle
// ---------------------------------------------------------------------

void AppHandle::requireLive() const {
  if (inst_ == nullptr) throw std::logic_error("AppHandle: empty handle");
  if (torn_down_) throw std::logic_error("AppHandle '" + name_ + "': already torn down");
}

sim::TaskId AppHandle::taskId(std::string_view task_name) const {
  for (const AppTask& t : tasks_) {
    if (t.spec.name == task_name) return t.id;
  }
  throw std::out_of_range("AppHandle '" + name_ + "': no task named '" +
                          std::string(task_name) + "'");
}

shell::Shell& AppHandle::taskShell(std::string_view task_name) const {
  for (const AppTask& t : tasks_) {
    if (t.spec.name == task_name) return *t.shell;
  }
  throw std::out_of_range("AppHandle '" + name_ + "': no task named '" +
                          std::string(task_name) + "'");
}

const AppStream& AppHandle::stream(std::string_view stream_name) const {
  for (const AppStream& s : streams_) {
    if (s.spec.name == stream_name) return s;
  }
  throw std::out_of_range("AppHandle '" + name_ + "': no stream named '" +
                          std::string(stream_name) + "'");
}

void AppHandle::setTaskEnabled(std::string_view task_name, bool enabled) {
  requireLive();
  for (const AppTask& t : tasks_) {
    if (t.spec.name == task_name) {
      inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), enabled ? 1 : 0);
      return;
    }
  }
  throw std::out_of_range("AppHandle '" + name_ + "': no task named '" +
                          std::string(task_name) + "'");
}

void AppHandle::pause() {
  requireLive();
  for (const AppTask& t : tasks_) {
    inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), 0);
  }
  paused_ = true;
}

void AppHandle::resume() {
  requireLive();
  for (const AppTask& t : tasks_) {
    if (t.spec.enabled) {
      inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), 1);
    }
  }
  paused_ = false;
}

AppHealth AppHandle::health() const {
  requireLive();
  AppHealth h;
  mem::PiBus& bus = inst_->piBus();
  for (const AppTask& t : tasks_) {
    if (bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaulted)) == 0) continue;
    TaskFault f;
    f.task = t.spec.name;
    f.shell = t.shell->name();
    f.id = t.id;
    f.cause = bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaultCause));
    f.cycle = static_cast<sim::Cycle>(
                  bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaultCycleLo))) |
              (static_cast<sim::Cycle>(
                   bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaultCycleHi)))
               << 32);
    f.row = static_cast<std::int32_t>(
        bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaultRow)));
    f.count = bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaultCount));
    h.faults.push_back(std::move(f));
  }
  for (const AppStream& s : streams_) {
    auto check = [&](const shell::Shell& sh, std::uint32_t row, bool producer_side) {
      if (bus.read(mmio::streamReg(sh, row, mmio::kStreamStalled)) == 0) return;
      StreamStall st;
      st.stream = s.spec.name;
      st.producer_side = producer_side;
      st.cycle = static_cast<sim::Cycle>(
                     bus.read(mmio::streamReg(sh, row, mmio::kStreamStallCycleLo))) |
                 (static_cast<sim::Cycle>(
                      bus.read(mmio::streamReg(sh, row, mmio::kStreamStallCycleHi)))
                  << 32);
      h.stalls.push_back(std::move(st));
    };
    check(*s.producer_shell, s.producer_row, true);
    check(*s.consumer_shell, s.consumer_row, false);
  }
  std::vector<const shell::Shell*> seen;
  for (const AppTask& t : tasks_) {
    if (std::find(seen.begin(), seen.end(), t.shell) != seen.end()) continue;
    seen.push_back(t.shell);
    h.late_sync_drops += bus.read(mmio::ctlReg(*t.shell, mmio::kCtlLateSyncDrops));
  }
  return h;
}

void AppHandle::onFault(std::function<void(const TaskFault&)> fn) {
  requireLive();
  // One shared copy of the callback; one observer per hosting shell. The
  // lambdas must not capture `this`: the handle is movable and the
  // observers outlive any particular address it lives at.
  auto shared = std::make_shared<std::function<void(const TaskFault&)>>(std::move(fn));
  std::vector<shell::Shell*> seen;
  for (const AppTask& t : tasks_) {
    if (std::find(seen.begin(), seen.end(), t.shell) != seen.end()) continue;
    seen.push_back(t.shell);
    shell::Shell* sh = t.shell;
    std::map<sim::TaskId, std::string> names;
    for (const AppTask& u : tasks_) {
      if (u.shell == sh) names[u.id] = u.spec.name;
    }
    const int id = sh->addFaultObserver(
        [names, shell_name = sh->name(), shared](sim::TaskId task, const shell::TaskRow& row) {
          const auto it = names.find(task);
          if (it == names.end()) return;  // another application's task on a shared shell
          TaskFault f;
          f.task = it->second;
          f.shell = shell_name;
          f.id = task;
          f.cause = static_cast<std::uint32_t>(row.fault_cause);
          f.cycle = row.fault_cycle;
          f.row = row.fault_row;
          f.count = row.fault_count;
          (*shared)(f);
        });
    fault_observers_.emplace_back(sh, id);
  }
}

void AppHandle::clearFault(std::string_view task_name, bool reenable) {
  requireLive();
  for (const AppTask& t : tasks_) {
    if (t.spec.name != task_name) continue;
    inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskFaulted), 0);
    if (reenable) {
      inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), 1);
    }
    return;
  }
  throw std::out_of_range("AppHandle '" + name_ + "': no task named '" +
                          std::string(task_name) + "'");
}

void AppHandle::repairStream(std::string_view stream_name) {
  requireLive();
  const AppStream& s = stream(stream_name);
  mem::PiBus& bus = inst_->piBus();
  auto pos64 = [&](const shell::Shell& sh, std::uint32_t row) {
    return static_cast<std::uint64_t>(bus.read(mmio::streamReg(sh, row, mmio::kStreamPosLo))) |
           (static_cast<std::uint64_t>(bus.read(mmio::streamReg(sh, row, mmio::kStreamPosHi)))
            << 32);
  };
  // Committed positions are the ground truth; the space registers are the
  // derived (and possibly corrupted/stale) view. in_flight counts bytes
  // written but not yet released by the consumer.
  const std::uint64_t in_flight =
      pos64(*s.producer_shell, s.producer_row) - pos64(*s.consumer_shell, s.consumer_row);
  bus.write(mmio::streamReg(*s.producer_shell, s.producer_row, mmio::kStreamSpace),
            static_cast<std::uint32_t>(s.spec.buffer_bytes - in_flight));
  bus.write(mmio::streamReg(*s.consumer_shell, s.consumer_row, mmio::kStreamSpace),
            static_cast<std::uint32_t>(in_flight));
  bus.write(mmio::streamReg(*s.producer_shell, s.producer_row, mmio::kStreamStalled), 0);
  bus.write(mmio::streamReg(*s.consumer_shell, s.consumer_row, mmio::kStreamStalled), 0);
}

bool AppHandle::streamsSettled(const std::vector<const AppStream*>& subset) const {
  for (const AppStream* s : subset) {
    const std::uint32_t producer_room = inst_->piBus().read(
        mmio::streamReg(*s->producer_shell, s->producer_row, mmio::kStreamSpace));
    const std::uint32_t consumer_data = inst_->piBus().read(
        mmio::streamReg(*s->consumer_shell, s->consumer_row, mmio::kStreamSpace));
    // Empty and settled: the producer sees the whole buffer free again and
    // the consumer sees nothing to read (no putspace message in flight).
    if (producer_room != s->spec.buffer_bytes || consumer_data != 0) return false;
  }
  return true;
}

bool AppHandle::quiesced() const {
  if (inst_ == nullptr || torn_down_) return true;
  std::vector<const AppStream*> all;
  all.reserve(streams_.size());
  for (const AppStream& s : streams_) all.push_back(&s);
  return streamsSettled(all);
}

bool AppHandle::drain(sim::Cycle max_cycles, sim::Cycle slice) {
  requireLive();
  if (slice == 0) throw std::invalid_argument("AppHandle::drain: zero slice");
  // Stop injecting new data; the rest of the graph keeps running and
  // consumes whatever is still buffered in the FIFOs.
  for (const AppTask& t : tasks_) {
    if (t.spec.source) {
      inst_->piBus().write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), 0);
    }
  }
  const sim::Cycle deadline = inst_->simulator().now() + max_cycles;
  while (!quiesced()) {
    const sim::Cycle before = inst_->simulator().now();
    if (before >= deadline) return false;
    inst_->run(std::min(deadline, before + slice));
    if (inst_->simulator().now() == before) {
      // The event queue ran dry without advancing time: the state is
      // final, so one last check decides.
      return quiesced();
    }
  }
  return true;
}

void AppHandle::teardown(bool force) {
  if (inst_ == nullptr || torn_down_) return;
  if (!force && !quiesced()) {
    // Residual FIFO bytes are harmless once no task can run (a finished
    // graph's reference/feedback streams legitimately end non-empty, every
    // task having disabled itself at Eos). A graph with an enabled task
    // may be mid-transaction — discarding it needs an explicit force.
    bool inert = true;
    for (const AppTask& t : tasks_) {
      if (inst_->piBus().read(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled)) != 0) {
        inert = false;
        break;
      }
    }
    if (!inert) {
      throw std::logic_error("AppHandle '" + name_ +
                             "': teardown on an undrained graph — tasks are still enabled and "
                             "stream FIFOs hold data (drain() first, or pass force to discard a "
                             "wedged graph)");
    }
  }
  for (const auto& [sh, id] : fault_observers_) sh->removeFaultObserver(id);
  fault_observers_.clear();
  mem::PiBus& bus = inst_->piBus();
  // Task rows first, so the schedulers stop selecting the tasks; clearing
  // the valid bit resets the row for the next application.
  for (const AppTask& t : tasks_) {
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), 0);
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskValid), 0);
    if (t.spec.software) {
      if (coproc::SoftCpu* cpu = inst_->softCpuAt(*t.shell)) cpu->unregisterTask(t.id);
    }
    inst_->freeTask(*t.shell, t.id);
  }
  // Stream rows next; clearing valid resets position/space state and
  // releases the port cache.
  for (const AppStream& s : streams_) {
    bus.write(mmio::streamReg(*s.producer_shell, s.producer_row, mmio::kStreamValid), 0);
    bus.write(mmio::streamReg(*s.consumer_shell, s.consumer_row, mmio::kStreamValid), 0);
    inst_->freeSram(s.buffer_base, s.spec.buffer_bytes);
  }
  for (const auto& [addr, bytes] : dram_regions_) inst_->freeDram(addr, bytes);
  dram_regions_.clear();
  for (const auto& fn : cleanups_) fn();
  cleanups_.clear();
  torn_down_ = true;
}

AppStream AppHandle::programStream(const StreamSpec& s) {
  mem::PiBus& bus = inst_->piBus();
  AppStream as;
  as.spec = s;
  as.producer_shell = &taskShell(s.producer.task);
  as.consumer_shell = &taskShell(s.consumer.task);
  as.buffer_base = inst_->allocSram(s.buffer_bytes);

  const shell::Shell& psh = *as.producer_shell;
  as.producer_row = findFreeStreamRow(bus, psh);
  bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamTask),
            static_cast<std::uint32_t>(taskId(s.producer.task)));
  bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamPort),
            static_cast<std::uint32_t>(s.producer.port));
  bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamIsProducer), 1);
  bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamBase),
            static_cast<std::uint32_t>(as.buffer_base));
  bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamSize), s.buffer_bytes);
  bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamSpace), s.buffer_bytes);
  bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamRemoteShell),
            as.consumer_shell->id());
  bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamValid), 1);

  const shell::Shell& csh = *as.consumer_shell;
  as.consumer_row = findFreeStreamRow(bus, csh);
  bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamTask),
            static_cast<std::uint32_t>(taskId(s.consumer.task)));
  bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamPort),
            static_cast<std::uint32_t>(s.consumer.port));
  bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamIsProducer), 0);
  bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamBase),
            static_cast<std::uint32_t>(as.buffer_base));
  bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamSize), s.buffer_bytes);
  bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamSpace), 0);
  bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamRemoteShell), psh.id());
  bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamRemoteRow), as.producer_row);
  bus.write(mmio::streamReg(csh, as.consumer_row, mmio::kStreamValid), 1);

  bus.write(mmio::streamReg(psh, as.producer_row, mmio::kStreamRemoteRow), as.consumer_row);
  return as;
}

TransitionStats AppHandle::switchTo(const GraphSpec& target,
                                    const std::function<void(AppHandle&)>& before_enable,
                                    sim::Cycle max_drain_cycles, sim::Cycle slice) {
  requireLive();
  if (slice == 0) throw std::invalid_argument("AppHandle::switchTo: zero slice");
  target.validateStructure();

  // The currently programmed graph, rebuilt from the placed elements.
  GraphSpec current(mode_);
  for (const AppTask& t : tasks_) current.task(t.spec);
  for (const AppStream& s : streams_) current.stream(s.spec);
  const GraphDiff d = diffGraphs(current, target);

  // Interface reconciliation before the first MMIO write: kept tasks must
  // keep their shell and software-ness (the slot stays in place), added
  // tasks must land on known shells with matching bindings, added buffers
  // must respect the cache-line constraint.
  for (const TaskSpec& t : target.tasks()) {
    if (const TaskSpec* cur = current.findTask(t.name)) {
      if (cur->shell != t.shell) {
        throw GraphSpecError("switchTo '" + name_ + "': task '" + t.name + "' moves from shell '" +
                             cur->shell + "' to '" + t.shell + "' — rename the task if it moves");
      }
      if (bool(cur->software) != bool(t.software)) {
        throw GraphSpecError("switchTo '" + name_ + "': task '" + t.name +
                             "' switches between software and hardware");
      }
    } else {
      shell::Shell& sh = inst_->shell(t.shell);
      if ((inst_->softCpuAt(sh) != nullptr) != bool(t.software)) {
        throw GraphSpecError("switchTo '" + name_ + "': task '" + t.name +
                             "' software binding does not match shell '" + t.shell + "'");
      }
    }
  }
  const std::uint32_t line = inst_->params().cache_line_bytes;
  for (const StreamSpec& s : d.streams_added) {
    if (s.buffer_bytes == 0 || s.buffer_bytes % line != 0) {
      throw GraphSpecError("switchTo '" + name_ + "': stream '" + s.name + "' buffer of " +
                           std::to_string(s.buffer_bytes) + " bytes is not a positive multiple " +
                           "of the " + std::to_string(line) + "-byte cache line");
    }
  }

  mem::PiBus& bus = inst_->piBus();
  const sim::Cycle t0 = inst_->simulator().now();
  const std::uint64_t w0 = bus.writeCount();
  const std::uint64_t r0 = bus.readCount();

  TransitionStats st;
  st.from = mode_;
  st.to = target.name();
  st.tasks_added = static_cast<std::uint32_t>(d.tasks_added.size());
  st.tasks_removed = static_cast<std::uint32_t>(d.tasks_removed.size());
  st.tasks_updated = static_cast<std::uint32_t>(d.tasks_updated.size());
  st.tasks_kept = static_cast<std::uint32_t>(d.tasks_kept.size());
  st.streams_added = static_cast<std::uint32_t>(d.streams_added.size());
  st.streams_removed = static_cast<std::uint32_t>(d.streams_removed.size());
  st.streams_kept = static_cast<std::uint32_t>(d.streams_kept.size());

  // ---- Phase 1: drain only the affected subgraph ----------------------
  // Every stream that can still feed data into a removed stream (reverse
  // reachability over consumer-task -> produced-stream edges, cycles
  // included) must settle before any row is re-bound; only the sources
  // feeding that closure are gated. The rest of the graph keeps running.
  if (!d.streams_removed.empty()) {
    std::set<std::string> closure(d.streams_removed.begin(), d.streams_removed.end());
    bool grew = true;
    while (grew) {
      grew = false;
      for (const AppStream& s : streams_) {
        if (closure.count(s.spec.name) != 0) continue;
        for (const AppStream& t : streams_) {
          if (closure.count(t.spec.name) != 0 && t.spec.producer.task == s.spec.consumer.task) {
            closure.insert(s.spec.name);
            grew = true;
            break;
          }
        }
      }
    }
    for (const AppTask& t : tasks_) {
      if (!t.spec.source) continue;
      bool feeds_closure = false;
      for (const AppStream& s : streams_) {
        feeds_closure = feeds_closure ||
                        (s.spec.producer.task == t.spec.name && closure.count(s.spec.name) != 0);
      }
      if (feeds_closure) {
        bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), 0);
      }
    }
    std::vector<const AppStream*> subset;
    for (const AppStream& s : streams_) {
      if (closure.count(s.spec.name) != 0) subset.push_back(&s);
    }
    // A finished subgraph cannot settle: its tasks self-disabled at Eos,
    // and whatever trailing bytes remain in the closure FIFOs are exactly
    // what the removal discards. Only a live closure — some task on one of
    // its streams still enabled — needs draining.
    bool closure_live = false;
    for (const AppTask& t : tasks_) {
      bool touches = false;
      for (const AppStream* s : subset) {
        touches = touches || s->spec.producer.task == t.spec.name ||
                  s->spec.consumer.task == t.spec.name;
      }
      if (touches && bus.read(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled)) != 0) {
        closure_live = true;
        break;
      }
    }
    if (closure_live) {
      const sim::Cycle deadline = inst_->simulator().now() + max_drain_cycles;
      while (!streamsSettled(subset)) {
        const sim::Cycle before = inst_->simulator().now();
        const bool dry_or_late = before >= deadline;
        if (!dry_or_late) inst_->run(std::min(deadline, before + slice));
        if (dry_or_late || inst_->simulator().now() == before) {
          if (streamsSettled(subset)) break;
          throw std::runtime_error("AppHandle '" + name_ + "': mode transition to '" +
                                   target.name() + "' could not drain the affected subgraph");
        }
      }
      st.drained = true;
    }
  }

  // ---- Phase 2: invalidate and free only the removed elements ---------
  for (const std::string& nm : d.tasks_removed) {
    for (auto it = tasks_.begin(); it != tasks_.end(); ++it) {
      if (it->spec.name != nm) continue;
      bus.write(mmio::taskReg(*it->shell, it->id, mmio::kTaskEnabled), 0);
      bus.write(mmio::taskReg(*it->shell, it->id, mmio::kTaskValid), 0);
      if (it->spec.software) {
        if (coproc::SoftCpu* cpu = inst_->softCpuAt(*it->shell)) cpu->unregisterTask(it->id);
      }
      inst_->freeTask(*it->shell, it->id);
      tasks_.erase(it);
      break;
    }
  }
  for (const std::string& nm : d.streams_removed) {
    for (auto it = streams_.begin(); it != streams_.end(); ++it) {
      if (it->spec.name != nm) continue;
      bus.write(mmio::streamReg(*it->producer_shell, it->producer_row, mmio::kStreamValid), 0);
      bus.write(mmio::streamReg(*it->consumer_shell, it->consumer_row, mmio::kStreamValid), 0);
      inst_->freeSram(it->buffer_base, it->spec.buffer_bytes);
      streams_.erase(it);
      break;
    }
  }

  // ---- Phase 3: allocate/program added elements, rebind the rest ------
  // Tasks first (stream rows reference task ids); kept tasks keep their
  // slots, software handlers are refreshed from the target spec.
  std::set<std::string> added_tasks;
  for (const TaskSpec& t : d.tasks_added) added_tasks.insert(t.name);
  std::vector<AppTask> new_tasks;
  new_tasks.reserve(target.tasks().size());
  for (const TaskSpec& tspec : target.tasks()) {
    AppTask* existing = nullptr;
    for (AppTask& t : tasks_) {
      if (t.spec.name == tspec.name) {
        existing = &t;
        break;
      }
    }
    if (existing != nullptr) {
      AppTask t = *existing;
      t.spec = tspec;
      if (t.spec.software) inst_->softCpuAt(*t.shell)->registerTask(t.id, t.spec.software);
      new_tasks.push_back(std::move(t));
    } else {
      shell::Shell& sh = inst_->shell(tspec.shell);
      const sim::TaskId id = inst_->allocTask(sh);
      if (tspec.software) inst_->softCpuAt(sh)->registerTask(id, tspec.software);
      new_tasks.push_back(AppTask{tspec, &sh, id});
    }
  }
  tasks_ = std::move(new_tasks);

  std::vector<AppStream> new_streams;
  new_streams.reserve(target.streams().size());
  for (const StreamSpec& sspec : target.streams()) {
    AppStream* kept = nullptr;
    for (AppStream& s : streams_) {
      if (s.spec.name == sspec.name) {
        kept = &s;  // survivors of phase 2 are exactly the kept streams
        break;
      }
    }
    if (kept != nullptr) {
      AppStream s = *kept;
      s.spec = sspec;
      new_streams.push_back(std::move(s));
    } else {
      new_streams.push_back(programStream(sspec));
    }
  }
  streams_ = std::move(new_streams);

  // Coprocessor-specific parameter setup (needs the new task ids, must
  // precede the first scheduling opportunity of the target mode).
  if (before_enable) before_enable(*this);

  // Enables last, on an already-consistent graph. Kept tasks only get the
  // writes the diff demands: changed scalar fields, plus — when any row
  // was re-bound — a blocked-latch clear and an enable refresh so tasks
  // parked on a stale row re-evaluate against the new stream table.
  const bool rebind = d.touchesStreams();
  for (const AppTask& t : tasks_) {
    if (added_tasks.count(t.spec.name) != 0) {
      bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskBudget), t.spec.budget_cycles);
      bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskInfo), t.spec.task_info);
      bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskValid), 1);
      bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), t.spec.enabled ? 1 : 0);
      continue;
    }
    const TaskSpec* prev = current.findTask(t.spec.name);
    if (prev->budget_cycles != t.spec.budget_cycles) {
      bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskBudget), t.spec.budget_cycles);
    }
    if (prev->task_info != t.spec.task_info) {
      bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskInfo), t.spec.task_info);
    }
    if (rebind) {
      bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskBlocked), 0);
      bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), t.spec.enabled ? 1 : 0);
    } else if (prev->enabled != t.spec.enabled) {
      bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), t.spec.enabled ? 1 : 0);
    }
  }

  st.cycles = inst_->simulator().now() - t0;
  st.mmio_writes = bus.writeCount() - w0;
  st.mmio_reads = bus.readCount() - r0;
  mode_ = target.name();
  paused_ = false;
  last_transition_ = st;
  return st;
}

TransitionStats AppHandle::switchMode(const ModeSet& modes, std::string_view mode_name,
                                      const std::function<void(AppHandle&)>& before_enable) {
  return switchTo(modes.at(mode_name), before_enable);
}

void AppHandle::adoptDram(sim::Addr addr, std::size_t bytes) {
  requireLive();
  dram_regions_.emplace_back(addr, bytes);
}

void AppHandle::addCleanup(std::function<void()> fn) {
  requireLive();
  cleanups_.push_back(std::move(fn));
}

// ---------------------------------------------------------------------
// Configurator
// ---------------------------------------------------------------------

AppHandle Configurator::apply(const GraphSpec& spec,
                              const std::function<void(AppHandle&)>& before_enable) {
  spec.validate(inst_);

  AppHandle handle;
  handle.inst_ = &inst_;
  handle.name_ = spec.name();
  handle.mode_ = spec.name();
  mem::PiBus& bus = inst_.piBus();

  // Phase 1: allocate a task slot per task, in spec order (the legacy
  // hand-wired applications allocated in the same order, which keeps slot
  // ids — and therefore all downstream timing — identical).
  for (const TaskSpec& t : spec.tasks()) {
    shell::Shell& sh = inst_.shell(t.shell);
    const sim::TaskId id = inst_.allocTask(sh);
    if (t.software) inst_.softCpuAt(sh)->registerTask(id, t.software);
    handle.tasks_.push_back(AppTask{t, &sh, id});
  }

  // Phase 2: allocate each stream's FIFO and program both stream-table
  // rows over the PI-bus — fields first, valid bit last (the valid write
  // instantiates the port cache), then patch the producer's remote row id
  // once the consumer row is known. Streams are fully programmed before
  // any task is enabled, so a freshly scheduled task can never look up a
  // half-wired port.
  for (const StreamSpec& s : spec.streams()) {
    handle.streams_.push_back(handle.programStream(s));
  }

  // Coprocessor-specific parameter setup (needs task ids, must precede the
  // first scheduling opportunity).
  if (before_enable) before_enable(handle);

  // Phase 3: make the task rows valid and enable them. The enable write is
  // last — it wakes the shell scheduler on an already-consistent graph.
  for (const AppTask& t : handle.tasks_) {
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskBudget), t.spec.budget_cycles);
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskInfo), t.spec.task_info);
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskValid), 1);
    bus.write(mmio::taskReg(*t.shell, t.id, mmio::kTaskEnabled), t.spec.enabled ? 1 : 0);
  }

  return handle;
}

}  // namespace eclipse::app
