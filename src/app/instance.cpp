#include "eclipse/app/instance.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "eclipse/app/configurator.hpp"

namespace eclipse::app {

InstanceParams InstanceParams::fromConfig(const sim::Config& cfg) {
  InstanceParams p;
  p.sram.size_bytes = static_cast<std::size_t>(cfg.getInt("sram.size_bytes", static_cast<std::int64_t>(p.sram.size_bytes)));
  p.sram.bus_width_bytes = static_cast<std::uint32_t>(cfg.getInt("sram.bus_width_bytes", p.sram.bus_width_bytes));
  p.sram.bus_arbitration_latency = static_cast<sim::Cycle>(cfg.getInt("sram.bus_arbitration_latency", static_cast<std::int64_t>(p.sram.bus_arbitration_latency)));
  p.sram.access_latency = static_cast<sim::Cycle>(cfg.getInt("sram.access_latency", static_cast<std::int64_t>(p.sram.access_latency)));
  p.dram.size_bytes = static_cast<std::size_t>(cfg.getInt("dram.size_bytes", static_cast<std::int64_t>(p.dram.size_bytes)));
  p.dram.bus_width_bytes = static_cast<std::uint32_t>(cfg.getInt("dram.bus_width_bytes", p.dram.bus_width_bytes));
  p.dram.bus_arbitration_latency = static_cast<sim::Cycle>(cfg.getInt("dram.bus_arbitration_latency", static_cast<std::int64_t>(p.dram.bus_arbitration_latency)));
  p.dram.access_latency = static_cast<sim::Cycle>(cfg.getInt("dram.access_latency", static_cast<std::int64_t>(p.dram.access_latency)));
  p.message_latency = static_cast<sim::Cycle>(cfg.getInt("network.message_latency", static_cast<std::int64_t>(p.message_latency)));
  p.cache_line_bytes = static_cast<std::uint32_t>(cfg.getInt("shell.cache_line_bytes", p.cache_line_bytes));
  p.cache_lines_per_port = static_cast<std::uint32_t>(cfg.getInt("shell.cache_lines_per_port", p.cache_lines_per_port));
  p.prefetch = cfg.getBool("shell.prefetch", p.prefetch);
  p.sync_latency = static_cast<sim::Cycle>(cfg.getInt("shell.sync_latency", static_cast<std::int64_t>(p.sync_latency)));
  p.gettask_latency = static_cast<sim::Cycle>(cfg.getInt("shell.gettask_latency", static_cast<std::int64_t>(p.gettask_latency)));
  p.io_latency = static_cast<sim::Cycle>(cfg.getInt("shell.io_latency", static_cast<std::int64_t>(p.io_latency)));
  p.port_width_bytes = static_cast<std::uint32_t>(cfg.getInt("shell.port_width_bytes", p.port_width_bytes));
  p.profiler_period = static_cast<sim::Cycle>(cfg.getInt("shell.profiler_period", static_cast<std::int64_t>(p.profiler_period)));
  p.best_guess = cfg.getBool("shell.best_guess", p.best_guess);
  p.vld.cycles_per_symbol = static_cast<sim::Cycle>(cfg.getInt("vld.cycles_per_symbol", static_cast<std::int64_t>(p.vld.cycles_per_symbol)));
  p.vld.fetch_chunk = static_cast<std::uint32_t>(cfg.getInt("vld.fetch_chunk", p.vld.fetch_chunk));
  p.rlsq.cycles_per_pair = static_cast<sim::Cycle>(cfg.getInt("rlsq.cycles_per_pair", static_cast<std::int64_t>(p.rlsq.cycles_per_pair)));
  p.rlsq.cycles_per_block = static_cast<sim::Cycle>(cfg.getInt("rlsq.cycles_per_block", static_cast<std::int64_t>(p.rlsq.cycles_per_block)));
  p.dct.cycles_per_block = static_cast<sim::Cycle>(cfg.getInt("dct.cycles_per_block", static_cast<std::int64_t>(p.dct.cycles_per_block)));
  p.dct.pipelined = cfg.getBool("dct.pipelined", p.dct.pipelined);
  p.mc.cycles_per_block_add = static_cast<sim::Cycle>(cfg.getInt("mc.cycles_per_block_add", static_cast<std::int64_t>(p.mc.cycles_per_block_add)));
  p.mc.cycles_per_candidate = static_cast<sim::Cycle>(cfg.getInt("mc.cycles_per_candidate", static_cast<std::int64_t>(p.mc.cycles_per_candidate)));
  p.mc.search_range = static_cast<int>(cfg.getInt("mc.search_range", p.mc.search_range));
  return p;
}

EclipseInstance::EclipseInstance(const InstanceParams& params) : params_(params) {
  pi_bus_.bindSimulator(&sim_);  // shard-affinity checks; untimed model otherwise
  sram_ = std::make_unique<mem::SharedSram>(sim_, params_.sram);
  dram_ = std::make_unique<mem::OffChipMemory>(sim_, params_.dram);
  network_ = std::make_unique<mem::MessageNetwork>(sim_, params_.message_latency);

  sram_free_.push_back(Region{0, sram_->storage().size()});
  dram_free_.push_back(Region{0, dram_->storage().size()});

  // The five computation modules of the Figure-8 instance, each behind its
  // own shell instance derived from the shell template.
  vld_ = std::make_unique<coproc::VldCoproc>(sim_, makeShell("vld"), *dram_, params_.vld);
  rlsq_ = std::make_unique<coproc::RlsqCoproc>(sim_, makeShell("rlsq"), params_.rlsq);
  dct_ = std::make_unique<coproc::DctCoproc>(sim_, makeShell("dct"), params_.dct);
  mc_ = std::make_unique<coproc::McCoproc>(sim_, makeShell("mc"), *dram_, params_.mc);
  cpu_ = std::make_unique<coproc::SoftCpu>(sim_, makeShell("dsp-cpu"));
}

shell::Shell& EclipseInstance::makeShell(const std::string& name) {
  shell::ShellParams sp;
  sp.id = next_shell_id_++;
  sp.name = name;
  sp.port_width_bytes = params_.port_width_bytes;
  sp.cache_line_bytes = params_.cache_line_bytes;
  sp.cache_lines_per_port = params_.cache_lines_per_port;
  sp.prefetch = params_.prefetch;
  sp.sync_latency = params_.sync_latency;
  sp.gettask_latency = params_.gettask_latency;
  sp.io_latency = params_.io_latency;
  sp.max_tasks = params_.max_tasks;
  sp.max_streams = params_.max_streams;
  sp.profiler_period = params_.profiler_period;
  sp.best_guess = params_.best_guess;
  auto sh = std::make_unique<shell::Shell>(sim_, sp, *sram_, *network_);
  sh->mapMmio(pi_bus_, mmioBase(*sh));
  if (shard_planned_ && sim_.sharded()) {
    // Shells created after partitioning (application sinks) follow the
    // plan: an explicit pin wins, otherwise they join the hub lane — sinks
    // read their payload over the SRAM buses, so the fusion rule applies.
    // A pin obeys the same plan-time rules computePartition enforces:
    // in range, and never off the hub lane under a fused plan.
    sim::ShardId lane = shard_assignment_.hub;
    auto it = shard_plan_.pin.find(name);
    if (it != shard_plan_.pin.end()) {
      if (it->second >= shard_assignment_.shards) {
        throw std::logic_error("ShardPlan: pin of '" + name + "' targets lane " +
                               std::to_string(it->second) + " but the plan has " +
                               std::to_string(shard_assignment_.shards) + " shards");
      }
      if (!shard_plan_.split_memory_hub && it->second != shard_assignment_.hub) {
        throw std::logic_error(
            "ShardPlan: pin of '" + name + "' to lane " + std::to_string(it->second) +
            " conflicts with the memory-hub fusion rule; set split_memory_hub "
            "(bus-silent scenarios only) to distribute shells");
      }
      lane = it->second;
    }
    sh->setShard(lane);
    network_->setShellShard(sh->params().id, lane);
    pi_bus_.setWindowShard(mmioBase(*sh), lane);
    shard_assignment_.shell_shard[name] = lane;
    if (shard_assignment_.lookahead == 0 && shard_assignment_.lanesUsed() > 1) {
      // This shell opened a second populated lane after applyShardPlan:
      // declare the cross-lane lookahead now, under the same zero-latency
      // rule computePartition applies at plan time.
      if (params_.message_latency == 0) {
        throw std::logic_error(
            "ShardPlan: shell '" + name + "' opens a second populated lane but "
            "network.message_latency is 0; the putspace latency is the "
            "conservative cross-shard lookahead and must be >= 1 cycle");
      }
      shard_assignment_.lookahead = params_.message_latency;
      sim_.declareCrossShardLatency(params_.message_latency);
    }
  }
  shells_.push_back(std::move(sh));
  task_used_.emplace_back(sp.max_tasks, false);
  return *shells_.back();
}

shell::Shell* EclipseInstance::findShell(std::string_view name) {
  for (auto& sh : shells_) {
    if (sh->name() == name) return sh.get();
  }
  return nullptr;
}

shell::Shell& EclipseInstance::shell(std::string_view name) {
  if (shell::Shell* sh = findShell(name)) return *sh;
  std::string known;
  for (auto& sh : shells_) {
    if (!known.empty()) known += ", ";
    known += sh->name();
  }
  throw std::out_of_range("EclipseInstance: no shell named '" + std::string(name) +
                          "' (known: " + known + ")");
}

coproc::SoftCpu* EclipseInstance::softCpuAt(const shell::Shell& sh) {
  if (cpu_ && &cpu_->shell() == &sh) return cpu_.get();
  return nullptr;
}

coproc::FrameSink& EclipseInstance::createFrameSink(std::function<void()> on_done) {
  auto& sh = makeShell("frame-sink-" + std::to_string(next_shell_id_));
  auto sink = std::make_unique<coproc::FrameSink>(sim_, sh, std::move(on_done));
  auto& ref = *sink;
  extra_coprocs_.push_back(std::move(sink));
  if (started_) {
    ref.start();
    if (params_.profiler_period > 0) sh.startProfiler();
  }
  return ref;
}

coproc::ByteSink& EclipseInstance::createByteSink(std::function<void()> on_done) {
  auto& sh = makeShell("byte-sink-" + std::to_string(next_shell_id_));
  auto sink = std::make_unique<coproc::ByteSink>(sim_, sh, std::move(on_done));
  auto& ref = *sink;
  extra_coprocs_.push_back(std::move(sink));
  if (started_) {
    ref.start();
    if (params_.profiler_period > 0) sh.startProfiler();
  }
  return ref;
}

// ---------------------------------------------------------------------
// Memory and task-slot resource management
// ---------------------------------------------------------------------

sim::Addr EclipseInstance::allocRegion(std::vector<Region>& free_list, std::uint64_t bytes,
                                       const char* what) {
  // First fit over the address-sorted free list: on a fresh instance this
  // degenerates to the classic bump allocator (identical addresses), while
  // teardown returns holes that later applications reuse.
  for (auto it = free_list.begin(); it != free_list.end(); ++it) {
    if (it->bytes >= bytes) {
      const sim::Addr addr = it->addr;
      it->addr += bytes;
      it->bytes -= bytes;
      if (it->bytes == 0) free_list.erase(it);
      return addr;
    }
  }
  throw std::runtime_error(std::string("EclipseInstance: out of ") + what);
}

void EclipseInstance::freeRegion(std::vector<Region>& free_list, sim::Addr addr,
                                 std::uint64_t bytes, const char* what) {
  if (bytes == 0) return;
  auto it = std::lower_bound(free_list.begin(), free_list.end(), addr,
                             [](const Region& r, sim::Addr a) { return r.addr < a; });
  // Overlap with a neighbouring free region means a double free or a
  // mis-sized free — fail loudly instead of corrupting the allocator.
  if (it != free_list.end() && addr + bytes > it->addr) {
    throw std::logic_error(std::string("EclipseInstance: double free in ") + what);
  }
  if (it != free_list.begin()) {
    auto prev = std::prev(it);
    if (prev->addr + prev->bytes > addr) {
      throw std::logic_error(std::string("EclipseInstance: double free in ") + what);
    }
  }
  it = free_list.insert(it, Region{addr, bytes});
  // Coalesce with the successor, then the predecessor.
  if (auto next = std::next(it); next != free_list.end() && it->addr + it->bytes == next->addr) {
    it->bytes += next->bytes;
    free_list.erase(next);
  }
  if (it != free_list.begin()) {
    auto prev = std::prev(it);
    if (prev->addr + prev->bytes == it->addr) {
      prev->bytes += it->bytes;
      free_list.erase(it);
    }
  }
}

std::size_t EclipseInstance::regionBytes(const std::vector<Region>& free_list) {
  std::size_t total = 0;
  for (const Region& r : free_list) total += r.bytes;
  return total;
}

sim::Addr EclipseInstance::allocSram(std::uint32_t bytes) {
  const std::uint32_t line = params_.cache_line_bytes;
  const std::uint32_t rounded = (bytes + line - 1) / line * line;
  return allocRegion(sram_free_, rounded, "on-chip SRAM");
}

void EclipseInstance::freeSram(sim::Addr addr, std::uint32_t bytes) {
  const std::uint32_t line = params_.cache_line_bytes;
  const std::uint32_t rounded = (bytes + line - 1) / line * line;
  freeRegion(sram_free_, addr, rounded, "on-chip SRAM");
}

std::size_t EclipseInstance::sramBytesFree() const { return regionBytes(sram_free_); }

sim::Addr EclipseInstance::allocDram(std::size_t bytes) {
  const std::size_t rounded = (bytes + 63) / 64 * 64;
  return allocRegion(dram_free_, rounded, "off-chip memory");
}

void EclipseInstance::freeDram(sim::Addr addr, std::size_t bytes) {
  const std::size_t rounded = (bytes + 63) / 64 * 64;
  freeRegion(dram_free_, addr, rounded, "off-chip memory");
}

std::size_t EclipseInstance::dramBytesFree() const { return regionBytes(dram_free_); }

sim::TaskId EclipseInstance::allocTask(shell::Shell& sh) {
  std::vector<bool>& used = task_used_.at(sh.id());
  for (std::size_t i = 0; i < used.size(); ++i) {
    if (!used[i]) {
      used[i] = true;
      return static_cast<sim::TaskId>(i);
    }
  }
  throw std::runtime_error("EclipseInstance: task table of " + sh.name() + " is full");
}

std::uint32_t EclipseInstance::freeTaskSlots(const shell::Shell& sh) const {
  const std::vector<bool>& used = task_used_.at(sh.id());
  std::uint32_t free = 0;
  for (bool u : used) {
    if (!u) ++free;
  }
  return free;
}

void EclipseInstance::freeTask(shell::Shell& sh, sim::TaskId task) {
  std::vector<bool>& used = task_used_.at(sh.id());
  const auto idx = static_cast<std::size_t>(task);
  if (idx >= used.size() || !used[idx]) {
    throw std::logic_error("EclipseInstance: freeing unallocated task slot on " + sh.name());
  }
  used[idx] = false;
}

EclipseInstance::StreamHandle EclipseInstance::connectStream(const Endpoint& producer,
                                                             const Endpoint& consumer,
                                                             std::uint32_t buffer_bytes) {
  const sim::Addr base = allocSram(buffer_bytes);

  shell::StreamConfig pc;
  pc.task = producer.task;
  pc.port = producer.port;
  pc.is_producer = true;
  pc.buffer_base = base;
  pc.buffer_bytes = buffer_bytes;
  pc.remote_shell = consumer.shell->id();
  pc.remote_row = 0;  // patched below
  pc.initial_space = buffer_bytes;
  const std::uint32_t prow = producer.shell->configureStream(pc);

  shell::StreamConfig cc;
  cc.task = consumer.task;
  cc.port = consumer.port;
  cc.is_producer = false;
  cc.buffer_base = base;
  cc.buffer_bytes = buffer_bytes;
  cc.remote_shell = producer.shell->id();
  cc.remote_row = prow;
  cc.initial_space = 0;
  const std::uint32_t crow = consumer.shell->configureStream(cc);

  producer.shell->streams().row(prow).remote_row = crow;

  return StreamHandle{producer.shell, prow, consumer.shell, crow, base, buffer_bytes};
}

const ShardAssignment& EclipseInstance::applyShardPlan(const ShardPlan& plan) {
  if (started_) {
    throw std::logic_error("EclipseInstance::applyShardPlan must precede start()");
  }
  std::vector<std::string> names;
  names.reserve(shells_.size());
  for (auto& sh : shells_) names.push_back(sh->name());
  ShardAssignment asg = computePartition(names, plan, params_.message_latency);
  sim_.setShardCount(asg.shards);
  shard_plan_ = plan;
  shard_assignment_ = std::move(asg);
  shard_planned_ = true;
  if (sim_.sharded()) {
    sram_->setHomeShard(shard_assignment_.hub);
    dram_->setHomeShard(shard_assignment_.hub);
    for (auto& sh : shells_) {
      const sim::ShardId lane = shard_assignment_.laneOf(sh->name());
      sh->setShard(lane);
      network_->setShellShard(sh->id(), lane);
      pi_bus_.setWindowShard(mmioBase(*sh), lane);
    }
    // The putspace network is the only cross-lane transport; its modeled
    // delivery latency is the conservative lookahead. A single populated
    // lane needs no windows at all (infinite lookahead).
    if (shard_assignment_.lookahead > 0) {
      sim_.declareCrossShardLatency(shard_assignment_.lookahead);
    }
  }
  return shard_assignment_;
}

void EclipseInstance::start() {
  if (started_) return;
  started_ = true;
  vld_->start();
  rlsq_->start();
  dct_->start();
  mc_->start();
  cpu_->start();
  for (auto& c : extra_coprocs_) c->start();
  if (params_.profiler_period > 0) {
    for (auto& sh : shells_) sh->startProfiler();
  }
}

std::function<void()> EclipseInstance::registerApp() {
  ++pending_apps_;
  return [this] {
    if (--pending_apps_ <= 0) sim_.stop();
  };
}

void EclipseInstance::deregisterApp() {
  if (pending_apps_ <= 0) {
    throw std::logic_error("EclipseInstance: deregisterApp without a pending application");
  }
  --pending_apps_;
}

sim::Cycle EclipseInstance::run(sim::Cycle until) {
  start();
  return sim_.run(until);
}

bool EclipseInstance::recycle() {
  if (pending_apps_ != 0 || !sim_.quiescent()) return false;
  // A valid task row means some application was not torn down — reusing
  // the instance under it would not be cold-equivalent.
  for (auto& sh : shells_) {
    for (std::uint32_t i = 0; i < sh->tasks().capacity(); ++i) {
      if (sh->tasks().row(static_cast<sim::TaskId>(i)).valid) return false;
    }
  }

  // Order matters: coroutine frames reference shells and coprocessors, so
  // they go first; sink coprocessors reference their shells, so they go
  // before the shells they front.
  sim_.destroyProcesses();
  extra_coprocs_.clear();
  while (shells_.size() > kFixedShells) {
    shell::Shell& sh = *shells_.back();
    network_->detach(sh.id());
    pi_bus_.detach(mmioBase(sh));
    shells_.pop_back();
    task_used_.pop_back();
    --next_shell_id_;
  }
  for (auto& sh : shells_) sh->recycle();
  vld_->reset();
  rlsq_->reset();
  dct_->reset();
  mc_->reset();
  cpu_->reset();
  injector_.clear();
  sim_.setFaultInjector(nullptr);
  started_ = false;  // next run() re-spawns every control loop cold
  return true;
}

// ---------------------------------------------------------------------
// Fault injection and quiescence classification (DESIGN §9)
// ---------------------------------------------------------------------

void EclipseInstance::armFaults(const sim::FaultPlan& plan) {
  injector_.clear();
  for (const sim::FaultSpec& f : plan.faults) {
    if (f.kind == sim::FaultKind::BitFlipSram || f.kind == sim::FaultKind::BitFlipDram) {
      // State-mutating faults fire as one-shot events at their trigger
      // cycle; the injector only keeps the trigger log for them.
      sim_.scheduleAt(f.at_cycle, [this, f] {
        auto storage = f.kind == sim::FaultKind::BitFlipSram ? sram_->storage().view()
                                                             : dram_->storage().view();
        if (f.addr < storage.size()) {
          storage[f.addr] ^= static_cast<std::uint8_t>(1u << (f.bit % 8));
        }
        injector_.logTrigger(sim::FaultTrigger{f.kind, sim_.now(), f.shell, f.task,
                                               static_cast<std::uint32_t>(f.addr)});
      });
    } else {
      injector_.arm(f);
    }
  }
  sim_.setFaultInjector(&injector_);
}

void EclipseInstance::armWatchdogs(sim::Cycle timeout, sim::Cycle period) {
  // Programmed over the PI-bus like any other table state; the period must
  // land before the timeout because the timeout write arms the scan.
  for (auto& sh : shells_) {
    pi_bus_.write(mmio::ctlReg(*sh, mmio::kCtlWatchdogPeriod),
                  static_cast<std::uint32_t>(period));
    pi_bus_.write(mmio::ctlReg(*sh, mmio::kCtlWatchdogTimeout),
                  static_cast<std::uint32_t>(timeout));
  }
}

Quiescence EclipseInstance::classifyQuiescence() {
  auto findShellById = [&](std::uint32_t id) -> shell::Shell* {
    for (auto& sh : shells_) {
      if (sh->id() == id) return sh.get();
    }
    return nullptr;
  };

  bool any_enabled = false;
  for (auto& sh : shells_) {
    for (std::uint32_t i = 0; i < sh->tasks().capacity(); ++i) {
      const shell::TaskRow& t = sh->tasks().row(static_cast<sim::TaskId>(i));
      if (!t.valid || !t.enabled) continue;
      any_enabled = true;
      if (!t.blocked) return Quiescence::Running;
    }
  }
  if (!any_enabled) return Quiescence::Done;

  // Every enabled task is blocked. Walk each wait chain: blocked_row names
  // the starving access point, whose remote row names the task being
  // waited on. Revisiting a task on the chain is a deadlock cycle; a chain
  // ending anywhere else (disabled task, faulted task, unconfigured row)
  // is starvation — re-enabling the chain's end could restart the graph.
  for (auto& sh0 : shells_) {
    for (std::uint32_t i0 = 0; i0 < sh0->tasks().capacity(); ++i0) {
      const shell::TaskRow& t0 = sh0->tasks().row(static_cast<sim::TaskId>(i0));
      if (!t0.valid || !t0.enabled || !t0.blocked) continue;
      std::vector<std::pair<std::uint32_t, sim::TaskId>> visited;
      shell::Shell* sh = sh0.get();
      auto task = static_cast<sim::TaskId>(i0);
      while (true) {
        const auto key = std::make_pair(sh->id(), task);
        if (std::find(visited.begin(), visited.end(), key) != visited.end()) {
          return Quiescence::Deadlocked;
        }
        visited.push_back(key);
        const shell::TaskRow& t = sh->tasks().row(task);
        if (!t.valid || !t.enabled || !t.blocked || t.blocked_row < 0) break;
        const shell::StreamRow& row =
            sh->streams().row(static_cast<std::uint32_t>(t.blocked_row));
        if (!row.valid) break;
        shell::Shell* remote = findShellById(row.remote_shell);
        if (remote == nullptr) break;
        const shell::StreamRow& rrow = remote->streams().row(row.remote_row);
        if (!rrow.valid) break;
        sh = remote;
        task = rrow.task;
      }
    }
  }
  return Quiescence::Starved;
}

}  // namespace eclipse::app
