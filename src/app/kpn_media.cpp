#include "eclipse/app/kpn_media.hpp"

#include <array>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#include "eclipse/media/bitstream.hpp"
#include "eclipse/media/packets.hpp"

namespace eclipse::app {

namespace {

using media::PacketTag;

/// Length-framed packet transport over KPN byte FIFOs — the same wire
/// format as coproc::packet_io, with Kahn blocking semantics.
void kpnWrite(kpn::ByteFifo& fifo, std::span<const std::uint8_t> packet) {
  const auto len = static_cast<std::uint32_t>(packet.size());
  std::uint8_t hdr[4];
  std::memcpy(hdr, &len, sizeof len);
  fifo.write(hdr);
  fifo.write(packet);
}

/// Returns the packet (tag + payload) or nullopt at end of stream.
std::optional<std::vector<std::uint8_t>> kpnRead(kpn::ByteFifo& fifo) {
  std::uint8_t hdr[4];
  if (!fifo.readAll(hdr)) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, hdr, sizeof len);
  std::vector<std::uint8_t> pkt(len);
  if (!fifo.readAll(pkt)) throw std::runtime_error("kpn packet truncated");
  return pkt;
}

PacketTag tagOf(const std::vector<std::uint8_t>& pkt) { return static_cast<PacketTag>(pkt.at(0)); }

std::span<const std::uint8_t> payload(const std::vector<std::uint8_t>& pkt) {
  return std::span<const std::uint8_t>(pkt).subspan(1);
}

}  // namespace

KpnDecoder::KpnDecoder(std::vector<std::uint8_t> bitstream, std::size_t fifo_bytes) {
  // --- VLD: parse the elementary stream into coef + header packets ---
  const int vld = graph_.addTask("vld", [bits = std::move(bitstream)](kpn::TaskContext& ctx) {
    media::BitReader br(bits);
    const media::SeqHeader seq = media::stages::parseSeqHeader(br);
    const auto seq_pkt = media::packPacket(PacketTag::Seq, seq);
    kpnWrite(ctx.out(0), seq_pkt);
    kpnWrite(ctx.out(1), seq_pkt);
    const int mb_count = (seq.width / media::kMbSize) * (seq.height / media::kMbSize);
    const int mb_w = seq.width / media::kMbSize;
    for (int pic = 0; pic < seq.frame_count; ++pic) {
      const media::PicHeader ph = media::stages::parsePicHeader(br);
      const auto pic_pkt = media::packPacket(PacketTag::Pic, ph);
      kpnWrite(ctx.out(0), pic_pkt);
      kpnWrite(ctx.out(1), pic_pkt);
      for (int mb = 0; mb < mb_count; ++mb) {
        auto parsed = media::stages::parseMb(br, ph.type, static_cast<std::uint16_t>(mb % mb_w),
                                             static_cast<std::uint16_t>(mb / mb_w), ph.qscale);
        kpnWrite(ctx.out(0), media::packPacket(PacketTag::Mb, parsed.coefs));
        kpnWrite(ctx.out(1), media::packPacket(PacketTag::Mb, parsed.header));
      }
    }
    const auto eos = media::packTag(PacketTag::Eos);
    kpnWrite(ctx.out(0), eos);
    kpnWrite(ctx.out(1), eos);
  });

  // --- RLSQ: run-length decode + inverse scan + dequantise ---
  const int rlsq = graph_.addTask("rlsq", [](kpn::TaskContext& ctx) {
    media::SeqHeader seq;
    while (auto pkt = kpnRead(ctx.in(0))) {
      if (tagOf(*pkt) == PacketTag::Mb) {
        media::MbCoefs coefs;
        media::ByteReader r(payload(*pkt));
        media::get(r, coefs);
        media::MbBlocks out;
        media::stages::rlsqDecode(coefs, coefs.intra != 0, seq, out);
        out.intra = coefs.intra;
        kpnWrite(ctx.out(0), media::packPacket(PacketTag::Mb, out));
        continue;
      }
      if (tagOf(*pkt) == PacketTag::Seq) {
        media::ByteReader r(payload(*pkt));
        media::get(r, seq);
      }
      kpnWrite(ctx.out(0), *pkt);
      if (tagOf(*pkt) == PacketTag::Eos) return;
    }
  });

  // --- inverse DCT ---
  const int idct = graph_.addTask("idct", [](kpn::TaskContext& ctx) {
    while (auto pkt = kpnRead(ctx.in(0))) {
      if (tagOf(*pkt) == PacketTag::Mb) {
        media::MbBlocks in, out;
        media::ByteReader r(payload(*pkt));
        media::get(r, in);
        media::stages::idctMb(in, out);
        kpnWrite(ctx.out(0), media::packPacket(PacketTag::Mb, out));
        continue;
      }
      kpnWrite(ctx.out(0), *pkt);
      if (tagOf(*pkt) == PacketTag::Eos) return;
    }
  });

  // --- MC: prediction + reconstruction (references kept as local frames,
  // the functional analogue of the off-chip frame store) ---
  const int mc = graph_.addTask("mc", [](kpn::TaskContext& ctx) {
    media::SeqHeader seq;
    media::PicHeader pic;
    media::Frame refs[3];
    int slot_prev = -1, slot_last = -1, write_slot = -1;
    bool prev_pic_ref = false;
    int mb_index = 0;
    while (auto hdr_pkt = kpnRead(ctx.in(0))) {
      const auto tag = tagOf(*hdr_pkt);
      if (tag == PacketTag::Eos) {
        kpnWrite(ctx.out(0), *hdr_pkt);
        return;
      }
      auto res_pkt = kpnRead(ctx.in(1));
      if (!res_pkt || tagOf(*res_pkt) != tag) {
        throw std::runtime_error("kpn mc: streams out of step");
      }
      switch (tag) {
        case PacketTag::Seq: {
          media::ByteReader r(payload(*hdr_pkt));
          media::get(r, seq);
          for (auto& f : refs) f = media::Frame(seq.width, seq.height);
          kpnWrite(ctx.out(0), *hdr_pkt);
          break;
        }
        case PacketTag::Pic: {
          media::ByteReader r(payload(*hdr_pkt));
          media::get(r, pic);
          if (prev_pic_ref) {
            slot_prev = slot_last;
            slot_last = write_slot;
          }
          const bool is_ref = pic.type != media::FrameType::B;
          if (is_ref) {
            for (int s = 0; s < 3; ++s) {
              if (s != slot_prev && s != slot_last) {
                write_slot = s;
                break;
              }
            }
          }
          prev_pic_ref = is_ref;
          mb_index = 0;
          kpnWrite(ctx.out(0), *hdr_pkt);
          break;
        }
        case PacketTag::Mb: {
          media::MbHeader h;
          media::MbBlocks residual;
          media::ByteReader rh(payload(*hdr_pkt));
          media::get(rh, h);
          media::ByteReader rr(payload(*res_pkt));
          media::get(rr, residual);
          const media::Frame* fwd =
              pic.type == media::FrameType::B
                  ? (slot_prev >= 0 ? &refs[slot_prev] : nullptr)
                  : (slot_last >= 0 ? &refs[slot_last] : nullptr);
          const media::Frame* bwd = slot_last >= 0 ? &refs[slot_last] : nullptr;
          media::MbPixels pred, recon;
          media::stages::predictMb(h, fwd, bwd, pred);
          media::stages::addResidualMb(pred, residual, recon);
          if (pic.type != media::FrameType::B) {
            media::stages::placeMb(refs[write_slot], h.mb_x, h.mb_y, recon);
          }
          kpnWrite(ctx.out(0), media::packPacket(PacketTag::Mb, recon));
          ++mb_index;
          break;
        }
        default:
          throw std::runtime_error("kpn mc: unexpected tag");
      }
    }
  });

  // --- sink: assemble display frames ---
  const int sink = graph_.addTask("sink", [this](kpn::TaskContext& ctx) {
    media::SeqHeader seq;
    media::PicHeader pic;
    std::map<int, media::Frame> by_display;
    int mb_index = 0;
    while (auto pkt = kpnRead(ctx.in(0))) {
      switch (tagOf(*pkt)) {
        case PacketTag::Seq: {
          media::ByteReader r(payload(*pkt));
          media::get(r, seq);
          break;
        }
        case PacketTag::Pic: {
          media::ByteReader r(payload(*pkt));
          media::get(r, pic);
          by_display.emplace(pic.temporal_ref, media::Frame(seq.width, seq.height));
          mb_index = 0;
          break;
        }
        case PacketTag::Mb: {
          media::MbPixels px;
          media::ByteReader r(payload(*pkt));
          media::get(r, px);
          const int mb_w = seq.width / media::kMbSize;
          media::stages::placeMb(by_display.at(pic.temporal_ref), mb_index % mb_w,
                                 mb_index / mb_w, px);
          ++mb_index;
          break;
        }
        case PacketTag::Resync:
          break;  // never emitted by the functional pipeline; tolerated
        case PacketTag::Eos: {
          for (auto& [idx, f] : by_display) result_.push_back(std::move(f));
          return;
        }
      }
    }
  });

  e_coef_ = graph_.connect(vld, 0, rlsq, 0, fifo_bytes);
  e_hdr_ = graph_.connect(vld, 1, mc, 0, fifo_bytes);
  e_blocks_ = graph_.connect(rlsq, 0, idct, 0, fifo_bytes);
  e_res_ = graph_.connect(idct, 0, mc, 1, fifo_bytes);
  e_pix_ = graph_.connect(mc, 0, sink, 0, fifo_bytes);
}

std::vector<media::Frame> KpnDecoder::run() {
  graph_.run();
  return std::move(result_);
}

// ---------------------------------------------------------------------
// KPN encoder
// ---------------------------------------------------------------------

/// Shared reference frame store (the functional stand-in for the off-chip
/// store both MC/ME tasks point at). Slot rotation state is tracked
/// independently by each task from the Pic packets it sees, exactly like
/// the McCoproc task kinds.
struct KpnEncoder::RefStore {
  std::array<media::Frame, 3> slots;
};

namespace {

/// Slot rotation mirroring McCoproc::onPicHeader.
struct SlotTracker {
  int prev = -1;
  int last = -1;
  int write = -1;
  bool prev_pic_was_ref = false;

  void onPic(const media::PicHeader& ph) {
    if (prev_pic_was_ref) {
      prev = last;
      last = write;
    }
    const bool is_ref = ph.type != media::FrameType::B;
    if (is_ref) {
      for (int s = 0; s < 3; ++s) {
        if (s != prev && s != last) {
          write = s;
          break;
        }
      }
    }
    prev_pic_was_ref = is_ref;
  }

  [[nodiscard]] const media::Frame* fwdRef(const KpnEncoder::RefStore& store,
                                           media::FrameType type) const {
    const int s = type == media::FrameType::B ? prev : last;
    return s >= 0 ? &store.slots[static_cast<std::size_t>(s)] : nullptr;
  }
  [[nodiscard]] const media::Frame* bwdRef(const KpnEncoder::RefStore& store) const {
    return last >= 0 ? &store.slots[static_cast<std::size_t>(last)] : nullptr;
  }
};

}  // namespace

KpnEncoder::KpnEncoder(std::vector<media::Frame> frames, const media::CodecParams& params,
                       std::size_t fifo_bytes) {
  if (frames.empty()) throw std::invalid_argument("KpnEncoder: no frames");
  auto store = std::make_shared<RefStore>();
  const media::SeqHeader seq = params.toSeqHeader(static_cast<int>(frames.size()));
  const int mb_w = params.width / media::kMbSize;
  const int mb_h = params.height / media::kMbSize;
  const int mb_count = mb_w * mb_h;

  // --- source: coded-order reordering, gated by frame-done tokens ---
  const int src = graph_.addTask(
      "src", [frames = std::move(frames), params, seq, mb_count, mb_w](kpn::TaskContext& ctx) {
        const auto order = media::codedOrder(static_cast<int>(frames.size()), params.gop);
        kpnWrite(ctx.out(0), media::packPacket(PacketTag::Seq, seq));
        int refs_emitted = 0;
        int tokens = 0;
        for (const auto& cp : order) {
          if (cp.type != media::FrameType::I) {
            while (tokens < refs_emitted) {
              auto tok = kpnRead(ctx.in(0));
              if (!tok) throw std::runtime_error("kpn src: token stream ended early");
              ++tokens;
            }
          }
          media::PicHeader ph;
          ph.type = cp.type;
          ph.temporal_ref = static_cast<std::uint16_t>(cp.display_idx);
          ph.qscale = seq.qscale;
          kpnWrite(ctx.out(0), media::packPacket(PacketTag::Pic, ph));
          for (int m = 0; m < mb_count; ++m) {
            media::MbPixels px;
            media::stages::extractMb(frames[static_cast<std::size_t>(cp.display_idx)], m % mb_w,
                                     m / mb_w, px);
            kpnWrite(ctx.out(0), media::packPacket(PacketTag::Mb, px));
          }
          if (cp.type != media::FrameType::B) ++refs_emitted;
        }
        kpnWrite(ctx.out(0), media::packTag(PacketTag::Eos));
      });

  // --- motion estimation ---
  const int me = graph_.addTask("me", [store, params, mb_w](kpn::TaskContext& ctx) {
    media::SeqHeader sh;
    media::PicHeader pic;
    SlotTracker slots;
    media::Frame scratch;
    int mb_index = 0;
    while (auto pkt = kpnRead(ctx.in(0))) {
      switch (tagOf(*pkt)) {
        case PacketTag::Seq: {
          media::ByteReader r(payload(*pkt));
          media::get(r, sh);
          scratch = media::Frame(sh.width, sh.height);
          for (auto& s : store->slots) s = media::Frame(sh.width, sh.height);
          kpnWrite(ctx.out(0), *pkt);
          kpnWrite(ctx.out(1), *pkt);
          kpnWrite(ctx.out(2), *pkt);
          break;
        }
        case PacketTag::Pic: {
          media::ByteReader r(payload(*pkt));
          media::get(r, pic);
          slots.onPic(pic);
          mb_index = 0;
          kpnWrite(ctx.out(0), *pkt);
          kpnWrite(ctx.out(1), *pkt);
          if (pic.type != media::FrameType::B) kpnWrite(ctx.out(2), *pkt);
          break;
        }
        case PacketTag::Mb: {
          media::MbPixels cur;
          media::ByteReader r(payload(*pkt));
          media::get(r, cur);
          const int mb_x = mb_index % mb_w;
          const int mb_y = mb_index / mb_w;
          media::stages::placeMb(scratch, mb_x, mb_y, cur);
          const media::Frame* fwd = slots.fwdRef(*store, pic.type);
          const media::Frame* bwd = slots.bwdRef(*store);
          media::MbHeader h = media::stages::decideMbMode(scratch, mb_x, mb_y, pic.type, fwd,
                                                          bwd, params.search, sh.qscale);
          media::MbPixels pred;
          media::stages::predictMb(h, fwd, bwd, pred);
          media::MbBlocks residual;
          media::stages::residualMb(cur, pred, residual);
          residual.intra = h.mode == media::MbMode::Intra ? 1 : 0;
          kpnWrite(ctx.out(0), media::packPacket(PacketTag::Mb, residual));
          const auto hdr_pkt = media::packPacket(PacketTag::Mb, h);
          kpnWrite(ctx.out(1), hdr_pkt);
          if (pic.type != media::FrameType::B) kpnWrite(ctx.out(2), hdr_pkt);
          ++mb_index;
          break;
        }
        case PacketTag::Resync:
          break;  // never emitted by the functional pipeline; tolerated
        case PacketTag::Eos: {
          kpnWrite(ctx.out(0), *pkt);
          kpnWrite(ctx.out(1), *pkt);
          kpnWrite(ctx.out(2), *pkt);
          return;
        }
      }
    }
  });

  // --- forward DCT ---
  const int fdct = graph_.addTask("fdct", [](kpn::TaskContext& ctx) {
    while (auto pkt = kpnRead(ctx.in(0))) {
      if (tagOf(*pkt) == PacketTag::Mb) {
        media::MbBlocks in, out;
        media::ByteReader r(payload(*pkt));
        media::get(r, in);
        media::stages::fdctMb(in, out);
        kpnWrite(ctx.out(0), media::packPacket(PacketTag::Mb, out));
        continue;
      }
      kpnWrite(ctx.out(0), *pkt);
      if (tagOf(*pkt) == PacketTag::Eos) return;
    }
  });

  // --- quantise + scan + RLE, with the recon-loop side stream ---
  const int qrle = graph_.addTask("qrle", [](kpn::TaskContext& ctx) {
    media::SeqHeader sh;
    media::PicHeader cur_pic;
    bool pic_is_ref = false;
    while (auto pkt = kpnRead(ctx.in(0))) {
      switch (tagOf(*pkt)) {
        case PacketTag::Seq: {
          media::ByteReader r(payload(*pkt));
          media::get(r, sh);
          kpnWrite(ctx.out(0), *pkt);
          kpnWrite(ctx.out(1), *pkt);
          break;
        }
        case PacketTag::Pic: {
          media::ByteReader r(payload(*pkt));
          media::get(r, cur_pic);
          pic_is_ref = cur_pic.type != media::FrameType::B;
          kpnWrite(ctx.out(0), *pkt);
          if (pic_is_ref) kpnWrite(ctx.out(1), *pkt);
          break;
        }
        case PacketTag::Mb: {
          media::MbBlocks in;
          media::ByteReader r(payload(*pkt));
          media::get(r, in);
          media::MbCoefs out;
          media::stages::rlsqEncode(in, in.intra != 0, sh,
                                    cur_pic.qscale != 0 ? cur_pic.qscale : sh.qscale, out);
          const auto out_pkt = media::packPacket(PacketTag::Mb, out);
          kpnWrite(ctx.out(0), out_pkt);
          if (pic_is_ref) kpnWrite(ctx.out(1), out_pkt);
          break;
        }
        case PacketTag::Resync:
          break;  // never emitted by the functional pipeline; tolerated
        case PacketTag::Eos: {
          kpnWrite(ctx.out(0), *pkt);
          kpnWrite(ctx.out(1), *pkt);
          return;
        }
      }
    }
  });

  // --- dequantise (decode direction of RLSQ) ---
  const int deq = graph_.addTask("deq", [](kpn::TaskContext& ctx) {
    media::SeqHeader sh;
    while (auto pkt = kpnRead(ctx.in(0))) {
      switch (tagOf(*pkt)) {
        case PacketTag::Seq: {
          media::ByteReader r(payload(*pkt));
          media::get(r, sh);
          kpnWrite(ctx.out(0), *pkt);
          break;
        }
        case PacketTag::Mb: {
          media::MbCoefs coefs;
          media::ByteReader r(payload(*pkt));
          media::get(r, coefs);
          media::MbBlocks out;
          media::stages::rlsqDecode(coefs, coefs.intra != 0, sh, out);
          out.intra = coefs.intra;
          kpnWrite(ctx.out(0), media::packPacket(PacketTag::Mb, out));
          break;
        }
        default:
          kpnWrite(ctx.out(0), *pkt);
          if (tagOf(*pkt) == PacketTag::Eos) return;
      }
    }
  });

  // --- inverse DCT of the reconstruction loop ---
  const int idct = graph_.addTask("idct", [](kpn::TaskContext& ctx) {
    while (auto pkt = kpnRead(ctx.in(0))) {
      if (tagOf(*pkt) == PacketTag::Mb) {
        media::MbBlocks in, out;
        media::ByteReader r(payload(*pkt));
        media::get(r, in);
        media::stages::idctMb(in, out);
        kpnWrite(ctx.out(0), media::packPacket(PacketTag::Mb, out));
        continue;
      }
      kpnWrite(ctx.out(0), *pkt);
      if (tagOf(*pkt) == PacketTag::Eos) return;
    }
  });

  // --- reconstruction: rebuild reference frames, emit frame-done tokens ---
  const int recon = graph_.addTask("recon", [store, mb_count](kpn::TaskContext& ctx) {
    media::SeqHeader sh;
    media::PicHeader pic;
    SlotTracker slots;
    int mb_index = 0;
    while (auto res_pkt = kpnRead(ctx.in(0))) {
      const auto tag = tagOf(*res_pkt);
      if (tag == PacketTag::Eos) {
        kpnWrite(ctx.out(0), *res_pkt);
        return;
      }
      auto hdr_pkt = kpnRead(ctx.in(1));
      if (!hdr_pkt || tagOf(*hdr_pkt) != tag) {
        throw std::runtime_error("kpn recon: streams out of step");
      }
      switch (tag) {
        case PacketTag::Seq: {
          media::ByteReader r(payload(*res_pkt));
          media::get(r, sh);
          break;
        }
        case PacketTag::Pic: {
          media::ByteReader r(payload(*res_pkt));
          media::get(r, pic);
          slots.onPic(pic);
          mb_index = 0;
          break;
        }
        case PacketTag::Mb: {
          media::MbBlocks residual;
          media::ByteReader rr(payload(*res_pkt));
          media::get(rr, residual);
          media::MbHeader h;
          media::ByteReader rh(payload(*hdr_pkt));
          media::get(rh, h);
          const media::Frame* fwd = slots.fwdRef(*store, pic.type);
          const media::Frame* bwd = slots.bwdRef(*store);
          media::MbPixels pred, out;
          media::stages::predictMb(h, fwd, bwd, pred);
          media::stages::addResidualMb(pred, residual, out);
          media::stages::placeMb(store->slots[static_cast<std::size_t>(slots.write)], h.mb_x,
                                 h.mb_y, out);
          if (++mb_index >= mb_count) {
            kpnWrite(ctx.out(0), media::packPacket(PacketTag::Pic, pic));  // token
          }
          break;
        }
        default:
          throw std::runtime_error("kpn recon: unexpected tag");
      }
    }
  });

  // --- variable-length encoder: pairs headers with coefficients ---
  const int vle = graph_.addTask("vle", [this](kpn::TaskContext& ctx) {
    media::BitWriter bw;
    media::SeqHeader sh;
    while (auto hdr_pkt = kpnRead(ctx.in(0))) {
      const auto tag = tagOf(*hdr_pkt);
      auto coef_pkt = kpnRead(ctx.in(1));
      if (!coef_pkt || tagOf(*coef_pkt) != tag) {
        throw std::runtime_error("kpn vle: streams out of step");
      }
      switch (tag) {
        case PacketTag::Seq: {
          media::ByteReader r(payload(*hdr_pkt));
          media::get(r, sh);
          media::stages::writeSeqHeader(bw, sh);
          break;
        }
        case PacketTag::Pic: {
          media::PicHeader ph;
          media::ByteReader r(payload(*hdr_pkt));
          media::get(r, ph);
          media::stages::writePicHeader(bw, ph);
          break;
        }
        case PacketTag::Mb: {
          media::MbHeader h;
          media::ByteReader rh(payload(*hdr_pkt));
          media::get(rh, h);
          media::MbCoefs coefs;
          media::ByteReader rc(payload(*coef_pkt));
          media::get(rc, coefs);
          h.cbp = coefs.cbp;
          media::stages::writeMb(bw, h, coefs);
          break;
        }
        case PacketTag::Resync:
          break;  // never emitted by the functional pipeline; tolerated
        case PacketTag::Eos: {
          result_ = bw.finish();
          return;
        }
      }
    }
  });

  graph_.connect(src, 0, me, 0, fifo_bytes);
  graph_.connect(me, 0, fdct, 0, fifo_bytes);
  graph_.connect(me, 1, vle, 0, fifo_bytes);
  graph_.connect(me, 2, recon, 1, fifo_bytes);
  graph_.connect(fdct, 0, qrle, 0, fifo_bytes);
  graph_.connect(qrle, 0, vle, 1, fifo_bytes);
  graph_.connect(qrle, 1, deq, 0, fifo_bytes);
  graph_.connect(deq, 0, idct, 0, fifo_bytes);
  graph_.connect(idct, 0, recon, 0, fifo_bytes);
  graph_.connect(recon, 0, src, 0, fifo_bytes);  // frame-done tokens
}

std::vector<std::uint8_t> KpnEncoder::run() {
  graph_.run();
  return std::move(result_);
}

}  // namespace eclipse::app
